#!/usr/bin/env bash
# bench.sh — record this commit's performance as machine-readable JSON.
#
# Runs the curated kernel micro-benchmarks (the ones behind the paper's
# figures) via `dlrmbench -benchjson` and writes BENCH_<date>.json in the
# repo root (or $1 if given), then prints the wall/alloc delta against the
# newest previously committed BENCH_*.json (cmd/benchdiff) so perf PR
# descriptions can quote it directly. The delta is informational here — the
# CI bench-gate job is what enforces it; a regression does not fail this
# script.
#
# Usage:
#   scripts/bench.sh                # writes ./BENCH_YYYY-MM-DD.json
#   scripts/bench.sh out/perf.json  # custom path
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%F).json}"

go run ./cmd/dlrmbench -benchjson "$out"

# Delta vs the newest committed baseline. benchdiff excludes $out itself
# from baseline discovery, so writing into the repo root is safe; a missing
# baseline (fresh clone) or a regression only prints, never fails the
# recording run.
echo
echo "Delta vs newest committed BENCH_*.json (informational; CI gate enforces):"
go run ./cmd/benchdiff -new "$out" || true

# Also append the raw `go test -bench` view for the full benchmark index;
# useful for eyeballing but the JSON is the canonical record.
echo
echo "Spot check (go test -bench, 1 iteration):"
go test -run '^$' -bench 'Fig5BlockedFWD|Fig7RaceFree|Fig16FP32' -benchtime=1x -benchmem . | grep -E 'Benchmark|ok'

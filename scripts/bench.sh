#!/usr/bin/env bash
# bench.sh — record this commit's performance as machine-readable JSON.
#
# Runs the curated kernel micro-benchmarks (the ones behind the paper's
# figures) via `dlrmbench -benchjson` and writes BENCH_<date>.json in the
# repo root (or the given path), then prints the wall/alloc delta against
# the newest previously committed BENCH_*.json (cmd/benchdiff) so perf PR
# descriptions can quote it directly. The delta is informational here — the
# CI bench-gate job is what enforces it; a regression does not fail this
# script.
#
# -quick runs only the gate-relevant distributed/loader cases (the ones
# that move when the distributed path changes), writes to a temp file, and
# diffs that subset against the committed baseline — a fast regression
# check while iterating, not a baseline to commit.
#
# Usage:
#   scripts/bench.sh                # writes ./BENCH_YYYY-MM-DD.json (full suite)
#   scripts/bench.sh out/perf.json  # custom path, full suite
#   scripts/bench.sh -quick         # gate-relevant subset, temp file, delta only
set -euo pipefail

cd "$(dirname "$0")/.."

# The gate-relevant subset: the simulated-cluster iteration cases (every
# Fig9/Fig12 variant incl. flat-sync/sharded/overlap/hier/tuned) plus the
# streaming-loader production case.
quick_filter='^(Fig9|Fig12|Loader)'

# Case renames across committed baselines (PR 6: the Bucketed cases became
# the headline defaults) — keeps the informational diff from reporting
# superseded names as lost coverage when the baseline predates the rename.
renamed='Fig9Strong64RBucketed=Fig9Strong64R,Fig12Weak64RBucketed=Fig12Weak64R'

if [[ "${1:-}" == "-quick" ]]; then
  out="$(mktemp -t bench-quick-XXXX.json)"
  trap 'rm -f "$out"' EXIT
  go run ./cmd/dlrmbench -benchjson "$out" -benchfilter "$quick_filter"
  echo
  echo "Quick delta vs newest committed BENCH_*.json (gate-relevant cases only):"
  go run ./cmd/benchdiff -new "$out" -filter "$quick_filter" -renamed "$renamed" || true
  exit 0
fi

out="${1:-BENCH_$(date +%F).json}"

go run ./cmd/dlrmbench -benchjson "$out"

# Delta vs the newest committed baseline. benchdiff excludes $out itself
# from baseline discovery, so writing into the repo root is safe; a missing
# baseline (fresh clone) or a regression only prints, never fails the
# recording run.
echo
echo "Delta vs newest committed BENCH_*.json (informational; CI gate enforces):"
go run ./cmd/benchdiff -new "$out" -renamed "$renamed" || true

# Also append the raw `go test -bench` view for the full benchmark index;
# useful for eyeballing but the JSON is the canonical record.
echo
echo "Spot check (go test -bench, 1 iteration):"
go test -run '^$' -bench 'Fig5BlockedFWD|Fig7RaceFree|Fig16FP32' -benchtime=1x -benchmem . | grep -E 'Benchmark|ok'

#!/usr/bin/env bash
# bench.sh — record this commit's performance as machine-readable JSON.
#
# Runs the curated kernel micro-benchmarks (the ones behind the paper's
# figures) via `dlrmbench -benchjson` and writes BENCH_<date>.json in the
# repo root (or $1 if given). Future PRs diff these files to track the perf
# trajectory: ns_per_op for speed, allocs_per_op for the zero-allocation
# steady-state invariant.
#
# Usage:
#   scripts/bench.sh                # writes ./BENCH_YYYY-MM-DD.json
#   scripts/bench.sh out/perf.json  # custom path
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%F).json}"

go run ./cmd/dlrmbench -benchjson "$out"

# Also append the raw `go test -bench` view for the full benchmark index;
# useful for eyeballing but the JSON is the canonical record.
echo
echo "Spot check (go test -bench, 1 iteration):"
go test -run '^$' -bench 'Fig5BlockedFWD|Fig7RaceFree|Fig16FP32' -benchtime=1x -benchmem . | grep -E 'Benchmark|ok'

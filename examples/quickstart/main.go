// Quickstart: build a small DLRM, train it on a synthetic click log for a
// few hundred iterations, and watch ROC AUC climb. This exercises the whole
// public pipeline: config → model → trainer → dataset → metrics.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/par"
)

func main() {
	// A laptop-sized DLRM: 4 embedding tables, 16-dim embeddings, small
	// bottom/top MLPs. Table I's Small/Large/MLPerf configs are available
	// as core.Small etc.; they need more memory and time.
	cfg := core.Config{
		Name:      "Quickstart",
		MB:        128,
		GlobalMB:  256,
		LocalMB:   64,
		Lookups:   3,
		Tables:    4,
		EmbDim:    16,
		Rows:      []int{2000, 1000, 5000, 500},
		DenseIn:   8,
		BotHidden: []int{32},
		TopHidden: []int{64, 32},
	}

	// Synthetic Criteo-style click log: Zipf-skewed categorical features
	// and labels planted by a logistic teacher, so there is signal to learn.
	ds := data.NewClickLog(42, cfg.DenseIn, cfg.Rows, cfg.Lookups)

	model := core.NewModel(cfg, 16, 1)
	trainer := core.NewTrainer(model, par.Default, embedding.RaceFree, 1.0, core.FP32)

	eval := ds.Batch(1<<20, 4096) // held-out batch for AUC
	fmt.Printf("initial AUC: %.4f (random ≈ 0.5)\n", trainer.EvalAUC(eval))

	for i := 0; i < 400; i++ {
		loss := trainer.Step(ds.Batch(i, cfg.MB))
		if (i+1)%100 == 0 {
			fmt.Printf("iter %3d  loss %.4f  AUC %.4f\n", i+1, loss, trainer.EvalAUC(eval))
		}
	}
	fmt.Printf("final AUC: %.4f\n", trainer.EvalAUC(eval))
}

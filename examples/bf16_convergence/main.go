// BF16-convergence: the §VII experiment in miniature. Trains the same
// MLPerf-shaped DLRM under four numerics — FP32, Split-SGD-BF16, the
// 8-LSB-only split, and FP24 (1-8-15) — and prints ROC AUC through one
// epoch. Expected shape (Fig. 16): the BF16 split tracks FP32 to within
// noise because its optimizer state restores exact FP32 updates, FP24
// trails (it loses low-order update bits every step), and the 8-LSB split
// is not enough.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/par"
)

func main() {
	rows := data.ScaleRows(data.CriteoTBRows, 1.0/4096)
	cfg := core.Config{
		Name: "MLPerf-mini", MB: 128, GlobalMB: 128, LocalMB: 128,
		Lookups: 1, Tables: 26, EmbDim: 16, Rows: rows,
		DenseIn: 13, BotHidden: []int{32}, TopHidden: []int{64, 32},
	}
	ds := data.NewClickLog(1234, cfg.DenseIn, cfg.Rows, cfg.Lookups)
	eval := ds.Batch(1<<20, 4096)

	precisions := []core.Precision{core.FP32, core.BF16Split, core.BF16Split8LSB, core.FP24}
	const iters, checkpoints = 300, 10

	aucs := make([][]float64, len(precisions))
	for pi, prec := range precisions {
		m := core.NewModel(cfg, 16, 77)
		tr := core.NewTrainer(m, par.Default, embedding.RaceFree, 0.5, prec)
		for i := 0; i < iters; i++ {
			tr.Step(ds.Batch(i, cfg.MB))
			if (i+1)%(iters/checkpoints) == 0 {
				aucs[pi] = append(aucs[pi], tr.EvalAUC(eval))
			}
		}
		fmt.Printf("trained %s\n", prec)
	}

	fmt.Printf("\n%-10s", "% epoch")
	for _, p := range precisions {
		fmt.Printf("  %-22s", p)
	}
	fmt.Println()
	for cp := 0; cp < checkpoints; cp++ {
		fmt.Printf("%-10d", (cp+1)*100/checkpoints)
		for pi := range precisions {
			fmt.Printf("  %-22.4f", aucs[pi][cp])
		}
		fmt.Println()
	}
	fmt.Println("\npaper (full Criteo TB): FP32 0.8027, BF16 SplitSGD 0.8027, FP24 0.7947;")
	fmt.Println("8 extra LSBs are not enough to reach reference accuracy (§VII).")
}

// Cluster-scaling: runs the paper's MLPerf configuration on the simulated
// 64-socket OPA cluster and the 8-socket UPI node, sweeping rank counts and
// communication strategies, and prints the strong-scaling picture of
// Figs. 9 and 15 — who wins (native alltoall with a CCL-style backend), by
// how much, and where the twisted hypercube stops helping.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// pools and workspaces are shared by every run in the sweep, so rank worker
// teams and communication buffers persist across DistConfig.Run calls.
var (
	pools      = cluster.NewPools()
	workspaces = core.NewDistWorkspaces()
)

// loaderFor mirrors the paper's setup: only the MLPerf runs carry the
// §VI-D2 global-read loader artifact.
func loaderFor(cfg core.Config) core.LoaderMode {
	if cfg.Name == "MLPerf" {
		return core.LoaderGlobalMB
	}
	return core.LoaderNone
}

func run(cfg core.Config, topo fabric.Topology, sock perfmodel.Socket, ranks int, v core.Variant) *core.DistResult {
	gn := cfg.GlobalMB - cfg.GlobalMB%ranks
	res, err := core.DistConfig{
		Cfg: cfg, Ranks: ranks, GlobalN: gn, Iters: 3,
		Variant: v, Topo: topo, Socket: sock,
		Loader:     loaderFor(cfg),
		Pools:      pools,
		Workspaces: workspaces,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	defer pools.Close()
	cfg := core.MLPerf

	fmt.Println("MLPerf strong scaling on the simulated OPA cluster (GN=16384):")
	fmt.Printf("%-6s", "ranks")
	for _, v := range core.Variants {
		fmt.Printf("  %-18s", v.Name())
	}
	fmt.Println()
	base := run(cfg, fabric.NewPrunedFatTree(1, 12.5e9), perfmodel.CLX8280, 1,
		core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend}).IterSeconds
	for _, r := range []int{2, 4, 8, 16, 26} {
		topo := fabric.NewPrunedFatTree(r, 12.5e9)
		fmt.Printf("%-6d", r)
		for _, v := range core.Variants {
			res := run(cfg, topo, perfmodel.CLX8280, r, v)
			fmt.Printf("  %6.1fms (%4.1fx)  ", res.IterSeconds*1e3, base/res.IterSeconds)
		}
		fmt.Println()
	}

	fmt.Println("\nSame model on the 8-socket shared-memory node (UPI twisted hypercube):")
	fmt.Printf("%-6s  %-10s  %-12s  %-12s\n", "ranks", "compute", "allreduce", "alltoall")
	hyper := fabric.NewTwistedHypercube(22e9)
	for _, r := range []int{1, 2, 4, 8} {
		res, err := core.DistConfig{
			Cfg: cfg, Ranks: r, GlobalN: cfg.GlobalMB - cfg.GlobalMB%r, Iters: 3,
			Variant:  core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend},
			Blocking: true,
			Topo:     hyper, Socket: perfmodel.SKX8180,
			Pools: pools, Workspaces: workspaces,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d  %7.1fms  %9.1fms  %9.1fms\n", r,
			res.ComputePerIter*1e3,
			res.WaitPerIter["allreduce"]*1e3,
			res.WaitPerIter["alltoall"]*1e3)
	}
	fmt.Println("\nNote how alltoall stops improving from 4 to 8 sockets: 2-hop pairs")
	fmt.Println("of the twisted hypercube contend for the same UPI links (Fig. 15).")
}

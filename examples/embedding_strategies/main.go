// Embedding-strategies: the §III-A story in isolation. Compares the four
// sparse-update strategies (Reference dense-gradient, Atomic-XCHG,
// RTM-style locks, Race-Free partitioning) plus the fused backward+update
// under uniform and Zipf-skewed indices, printing ms per update sweep.
//
// On a multi-core host the Zipf column shows Atomic/RTM degrading from hot
// cache-line contention while Race-Free holds steady (Fig. 7's 10×); on a
// single core the gap compresses to the pure instruction overheads.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/embedding"
	"repro/internal/par"
)

func main() {
	const (
		rows    = 500_000
		embDim  = 64
		bags    = 2048
		lookups = 50
		iters   = 5
	)
	rng := rand.New(rand.NewSource(1))
	pool := par.Default
	fmt.Printf("table: %d rows × %d, batch: %d bags × %d lookups, %d workers\n\n",
		rows, embDim, bags, lookups, pool.NumWorkers())

	dists := []embedding.IndexDist{embedding.Uniform{}, embedding.Zipf{S: 1.05}}
	fmt.Printf("%-22s  %-12s  %-12s\n", "strategy", "uniform", "zipf(1.05)")
	fmt.Printf("%-22s  %-12s  %-12s\n", "--------", "-------", "----------")

	timeOf := map[string][2]float64{}
	for di, dist := range dists {
		batch := embedding.MakeBatch(rng, dist, bags, lookups, rows)
		dOut := make([]float32, bags*embDim)
		for i := range dOut {
			dOut[i] = rng.Float32() - 0.5
		}
		dW := make([]float32, batch.NumLookups()*embDim)

		for _, strat := range embedding.Strategies {
			tab := embedding.NewTable(rows, embDim, rng, 0.01)
			tab.Backward(pool, batch, dOut, dW)
			tab.Update(pool, strat, batch, dW, 1e-6) // warm-up
			start := time.Now()
			for i := 0; i < iters; i++ {
				tab.Update(pool, strat, batch, dW, 1e-6)
			}
			v := timeOf[strat.String()]
			v[di] = time.Since(start).Seconds() * 1e3 / iters
			timeOf[strat.String()] = v
		}

		// The fused backward+update (§III-A, up to 1.6× standalone).
		tab := embedding.NewTable(rows, embDim, rng, 0.01)
		tab.FusedBackwardUpdate(pool, batch, dOut, 1e-6)
		start := time.Now()
		for i := 0; i < iters; i++ {
			tab.FusedBackwardUpdate(pool, batch, dOut, 1e-6)
		}
		v := timeOf["Fused bwd+upd"]
		v[di] = time.Since(start).Seconds() * 1e3 / iters
		timeOf["Fused bwd+upd"] = v
	}

	order := []string{"Reference", "Atomic XCHG", "RTM", "Race Free", "Fused bwd+upd"}
	for _, name := range order {
		v := timeOf[name]
		fmt.Printf("%-22s  %8.2f ms   %8.2f ms\n", name, v[0], v[1])
	}
	fmt.Println("\nReference scales with table rows; the others with batch lookups.")
}

// Sharded-loader: the data pipeline end to end — per-rank streaming
// loaders that shard at the source (each rank materializes only its N/R
// sample slice plus its owned tables' global-batch columns), verified to
// reassemble the global minibatch exactly; a single-socket training loop
// fed by the prefetching loader; and the modeled cluster-level consequence:
// the §VI-D2 global-read artifact grows with rank count under weak scaling
// while the sharded pipeline stays flat.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/fabric"
	"repro/internal/par"
	"repro/internal/perfmodel"
)

func main() {
	rows := []int{4000, 900, 350, 2200}
	ds := data.NewClickLog(42, 8, rows, 3)
	const globalN, ranks = 96, 4

	// 1. Per-rank sharded loaders reassemble the global batch exactly.
	fmt.Printf("sharding %d samples across %d ranks (tables round-robin):\n", globalN, ranks)
	loaders := make([]*data.ShardedLoader, ranks)
	owned := make([][]int, ranks)
	for r := 0; r < ranks; r++ {
		for t := r; t < len(rows); t += ranks {
			owned[r] = append(owned[r], t)
		}
		loaders[r] = data.NewShardedLoader(data.LoaderConfig{
			DS: ds, GlobalN: globalN, Rank: r, Ranks: ranks, Owned: owned[r],
		})
		defer loaders[r].Close()
	}
	global := ds.Batch(0, globalN)
	for r := 0; r < ranks; r++ {
		rb := loaders[r].Next()
		lo := globalN * r / ranks
		for s := 0; s < rb.Local.N; s++ {
			if rb.Local.Labels[s] != global.Labels[lo+s] {
				log.Fatalf("rank %d sample %d: shard diverges from global batch", r, s)
			}
		}
		lookups := 0
		for _, b := range rb.Local.Sparse {
			lookups += b.NumLookups()
		}
		fmt.Printf("  rank %d: samples [%2d,%2d), %d shard lookups, owns tables %v over all %d samples\n",
			r, lo, globalN*(r+1)/ranks, lookups, owned[r], globalN)
	}
	fmt.Println("  every shard matches its global-batch slice exactly")

	// 2. Steady-state batch production is allocation-free: the loader
	// cycles two staging buffers while the consumer trains.
	var before, after runtime.MemStats
	ld := loaders[0]
	ld.Next() // warm the staging buffers
	runtime.ReadMemStats(&before)
	const probe = 50
	for i := 0; i < probe; i++ {
		ld.Next()
	}
	runtime.ReadMemStats(&after)
	fmt.Printf("\nsteady-state loader production: %d mallocs across %d batches\n",
		after.Mallocs-before.Mallocs, probe)

	// 3. Single-socket training through the prefetching loader.
	cfg := core.Config{
		Name: "LoaderDemo", MB: 64, GlobalMB: 64, LocalMB: 64,
		Lookups: 3, Tables: len(rows), EmbDim: 16, Rows: rows,
		DenseIn: 8, BotHidden: []int{32}, TopHidden: []int{64},
	}
	model := core.NewModel(cfg, 16, 1)
	tr := core.NewTrainer(model, par.Default, embedding.RaceFree, 0.5, core.FP32)
	batchLd := data.NewBatchLoader(ds, cfg.MB, 0)
	defer batchLd.Close()
	fmt.Println("\ntraining through the streaming loader (prefetch overlaps Step):")
	err := tr.Run(core.RunOpts{
		Loader: batchLd,
		Iters:  30,
		Each: func(it int, loss float64) {
			if (it+1)%10 == 0 {
				fmt.Printf("  iter %2d  loss %.4f\n", it+1, loss)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. The cluster-level story: weak-scaling MLPerf with the artifact vs
	// the sharded pipeline (virtual time on the simulated OPA cluster).
	fmt.Println("\nMLPerf weak scaling, modeled loader time per iteration:")
	fmt.Printf("  %-6s  %-14s  %-14s\n", "ranks", "global-read", "sharded")
	for _, r := range []int{2, 8, 26} {
		var ms [2]float64
		for i, mode := range []core.LoaderMode{core.LoaderGlobalMB, core.LoaderSharded} {
			res, err := core.DistConfig{
				Cfg: core.MLPerf, Ranks: r, GlobalN: core.MLPerf.LocalMB * r, Iters: 2,
				Variant: core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend},
				Topo:    fabric.NewPrunedFatTree(r, 12.5e9),
				Socket:  perfmodel.CLX8280,
				Loader:  mode,
			}.Run()
			if err != nil {
				log.Fatal(err)
			}
			ms[i] = res.PrepPerIter["loader"] * 1e3
		}
		fmt.Printf("  %-6d  %10.2f ms  %10.2f ms\n", r, ms[0], ms[1])
	}
	fmt.Println("the artifact's loader grows with rank count; the sharded pipeline stays flat")
}

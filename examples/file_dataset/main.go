// File-dataset: the storage pipeline end to end — generate a click-log
// file (what `cmd/dlrmdata` does), load it back with the record-format
// reader, train a DLRM on it, and checkpoint the trained model to disk.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/par"
)

func main() {
	dir, err := os.MkdirTemp("", "dlrm-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rows := []int{2000, 1000, 500, 3000}
	cfg := core.Config{
		Name: "FileDemo", MB: 128, GlobalMB: 128, LocalMB: 128,
		Lookups: 2, Tables: len(rows), EmbDim: 16, Rows: rows,
		DenseIn: 8, BotHidden: []int{32}, TopHidden: []int{64},
	}

	// 1. Generate a dataset file.
	path := filepath.Join(dir, "train.clog")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	gen := data.NewClickLog(21, cfg.DenseIn, rows, cfg.Lookups)
	if err := data.WriteDataset(f, gen, 20_000, 1024, cfg.Lookups); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s (%.1f MB, 20000 samples)\n", path, float64(info.Size())/1e6)

	// 2. Load it back and train from the file.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := data.OpenFileDataset(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	model := core.NewModel(cfg, 16, 1)
	tr := core.NewTrainer(model, par.Default, embedding.RaceFree, 1.0, core.FP32)
	eval := ds.Batch(100, 4096) // tail of the file as holdout
	fmt.Printf("initial AUC %.4f\n", tr.EvalAUC(eval))
	for i := 0; i < 120; i++ {
		tr.Step(ds.Batch(i, cfg.MB))
	}
	fmt.Printf("trained AUC %.4f\n", tr.EvalAUC(eval))

	// 3. Checkpoint and restore.
	var ckpt bytes.Buffer
	if err := model.Save(&ckpt); err != nil {
		log.Fatal(err)
	}
	restored := core.NewModel(cfg, 16, 999)
	if err := restored.Load(bytes.NewReader(ckpt.Bytes())); err != nil {
		log.Fatal(err)
	}
	tr2 := core.NewTrainer(restored, par.Default, embedding.RaceFree, 1.0, core.FP32)
	fmt.Printf("restored-model AUC %.4f (checkpoint %d bytes)\n", tr2.EvalAUC(eval), ckpt.Len())
}

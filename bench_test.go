// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper, so `go test -bench=. -benchmem` regenerates the
// whole evaluation in miniature. The dlrmbench command produces the full
// formatted tables; these benches give the per-operation timings and
// allocation profiles behind them.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/gemm"
	"repro/internal/par"
	"repro/internal/perfmodel"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// --- Table I / Table II ----------------------------------------------------

// BenchmarkTable2Characteristics times the analytic Table II computation
// (Eqs. 1-2) — trivially fast, included for completeness of the per-table
// index.
func BenchmarkTable2Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range core.Configs {
			_ = c.TableBytes()
			_ = c.AllreduceBytes()
			_ = c.AlltoallBytes(c.GlobalMB)
		}
	}
}

// --- Fig. 5: MLP kernels ----------------------------------------------------

func fig5Data(n, ck int) (*tensor.Acts, *tensor.Weights, *tensor.Acts, *tensor.Dense, *tensor.Dense, *tensor.Dense) {
	rng := rand.New(rand.NewSource(1))
	xD := tensor.NewDense(n, ck)
	xD.Randomize(rng, 1)
	wD := tensor.NewDense(ck, ck)
	wD.Randomize(rng, 1)
	x := tensor.PackActs(xD, 16, 32)
	w := tensor.PackWeights(wD, 32, 32)
	y := tensor.NewActs(n, ck, 16, 32)
	yD := tensor.NewDense(n, ck)
	return x, w, y, xD, wD, yD
}

func BenchmarkFig5BlockedFWD(b *testing.B) {
	// Shared fixture: dlrmbench -benchjson measures the identical workload.
	x, w, y := experiments.Fig5BlockedCase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemm.Forward(par.Default, w, x, y)
	}
	reportGFLOPS(b, 256, 512)
}

func BenchmarkFig5FBStyleFWD(b *testing.B) {
	_, _, _, xD, wD, yD := fig5Data(256, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemm.FBStyleNT(par.Default, xD, wD, yD)
	}
	reportGFLOPS(b, 256, 512)
}

func BenchmarkFig5MKLStyleFWD(b *testing.B) {
	_, _, _, xD, wD, yD := fig5Data(256, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemm.MKLStyleNT(par.Default, xD, wD, yD)
	}
	reportGFLOPS(b, 256, 512)
}

func BenchmarkFig5BlockedBWDW(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n, ck := 256, 512
	dyD := tensor.NewDense(n, ck)
	dyD.Randomize(rng, 1)
	xD := tensor.NewDense(n, ck)
	xD.Randomize(rng, 1)
	dy := tensor.PackActs(dyD, 16, 32)
	x := tensor.PackActs(xD, 16, 32)
	dw := tensor.NewWeights(ck, ck, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gemm.BackwardWeights(par.Default, dy, x, dw)
	}
	reportGFLOPS(b, n, ck)
}

func reportGFLOPS(b *testing.B, n, ck int) {
	flops := 2 * float64(n) * float64(ck) * float64(ck)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// --- Fig. 2/6: communication overlap ----------------------------------------

func BenchmarkFig6OverlapSimulation(b *testing.B) {
	o := experiments.DefaultFig6Opts()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig6(o)
	}
}

// --- Fig. 7/8: single-socket DLRM per update strategy -----------------------

// benchFig7 runs one full training iteration of a scaled Small config
// (fixture shared with dlrmbench -benchjson).
func benchFig7(b *testing.B, strat embedding.Strategy) {
	tr, mb := experiments.Fig7StepCase(strat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(mb)
	}
}

func BenchmarkFig7Reference(b *testing.B)  { benchFig7(b, embedding.Reference) }
func BenchmarkFig7AtomicXchg(b *testing.B) { benchFig7(b, embedding.AtomicXchg) }
func BenchmarkFig7RTM(b *testing.B)        { benchFig7(b, embedding.RTMStyle) }
func BenchmarkFig7RaceFree(b *testing.B)   { benchFig7(b, embedding.RaceFree) }

// BenchmarkFig8EmbeddingPhase isolates the embedding sweep that Fig. 8's
// breakdown attributes (forward + backward + race-free update).
func BenchmarkFig8EmbeddingPhase(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tab := embedding.NewTable(100_000, 64, rng, 0.01)
	batch := embedding.MakeBatch(rng, embedding.Zipf{S: 1.05}, 2048, 50, tab.M)
	out := make([]float32, 2048*64)
	dW := make([]float32, batch.NumLookups()*64)
	b.SetBytes(int64(perfmodel.EmbeddingFwdBytes(1, 2048, 50, 64)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Forward(par.Default, batch, out)
		tab.Backward(par.Default, batch, out, dW)
		tab.Update(par.Default, embedding.RaceFree, batch, dW, 1e-6)
	}
}

// --- Figs. 9-14: simulated cluster scaling ----------------------------------

func benchDist(b *testing.B, cfg core.Config, ranks int, v core.Variant, weak bool) {
	gn := cfg.GlobalMB
	if weak {
		gn = cfg.LocalMB * ranks
	}
	// Shared fixture recipe (warmed-up, persistent per-rank pools and
	// workspaces): dlrmbench -benchjson measures the identical workloads.
	dc, done := experiments.DistCase(cfg, ranks, gn, v)
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.RunDistributed(dc)
		b.ReportMetric(res.IterSeconds*1e3, "virtual-ms/iter")
	}
}

func BenchmarkFig9StrongScaling64R(b *testing.B) {
	// Shared fixture: dlrmbench -benchjson measures the identical workload.
	dc, done := experiments.Fig9DistCase()
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.RunDistributed(dc)
		b.ReportMetric(res.IterSeconds*1e3, "virtual-ms/iter")
	}
}

func BenchmarkFig10BreakdownMPI(b *testing.B) {
	benchDist(b, core.Large, 16, core.Variant{Strategy: core.Alltoall, Backend: cluster.MPIBackend}, false)
}

func BenchmarkFig11ScatterList(b *testing.B) {
	benchDist(b, core.MLPerf, 8, core.Variant{Strategy: core.ScatterList, Backend: cluster.MPIBackend}, false)
}

func BenchmarkFig12WeakScaling64R(b *testing.B) {
	// Shared fixture: dlrmbench -benchjson measures the identical workload.
	dc, done := experiments.Fig12DistCase()
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.RunDistributed(dc)
		b.ReportMetric(res.IterSeconds*1e3, "virtual-ms/iter")
	}
}

// benchDistFixture runs a prebuilt shared fixture (see benchcases.go).
func benchDistFixture(b *testing.B, mk func() (core.DistConfig, func())) {
	dc, done := mk()
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.RunDistributed(dc)
		b.ReportMetric(res.IterSeconds*1e3, "virtual-ms/iter")
	}
}

// The data-pipeline variants of the Figs. 9/12 headline runs: sharded
// streaming loader vs the §VI-D2 global-read artifact (fixtures shared
// with dlrmbench -benchjson).
func BenchmarkFig9Strong64RSharded(b *testing.B) {
	benchDistFixture(b, experiments.Fig9DistShardedCase)
}
func BenchmarkFig12Weak64RSharded(b *testing.B) {
	benchDistFixture(b, experiments.Fig12DistShardedCase)
}
func BenchmarkFig12Weak64RGlobalMB(b *testing.B) {
	benchDistFixture(b, experiments.Fig12DistGlobalMBCase)
}

// The overlap-aware pipeline variants of the Figs. 9/12 headline runs:
// async backward redistribution with deferred waits and per-collective CCL
// channels, plus the hierarchical two-level allreduce (fixtures shared with
// dlrmbench -benchjson; virtual-ms/iter deltas vs the sync cases are the
// comm-hiding figures of docs/PERF.md).
func BenchmarkFig9Strong64ROverlap(b *testing.B) {
	benchDistFixture(b, experiments.Fig9DistOverlapCase)
}
func BenchmarkFig12Weak64ROverlap(b *testing.B) {
	benchDistFixture(b, experiments.Fig12DistOverlapCase)
}
func BenchmarkFig9Strong64RHier(b *testing.B) {
	benchDistFixture(b, experiments.Fig9DistHierCase)
}
func BenchmarkFig12Weak64RHier(b *testing.B) {
	benchDistFixture(b, experiments.Fig12DistHierCase)
}

// The pre-flip flat-sync schedule, kept as an explicitly-configured
// measured baseline now that the headline Fig9/Fig12 cases run the default
// bucketed+overlapped schedule (the former Bucketed benchmarks; benchdiff
// -renamed maps their archived names onto the headline ones).
func BenchmarkFig9Strong64RFlatSync(b *testing.B) {
	benchDistFixture(b, experiments.Fig9DistFlatSyncCase)
}
func BenchmarkFig12Weak64RFlatSync(b *testing.B) {
	benchDistFixture(b, experiments.Fig12DistFlatSyncCase)
}

// The autotuned-schedule variants: the headline runs under whatever
// schedule core.AutotuneDistConfig picks for the shape, tracked so a tuner
// regression shows up next to the default-schedule cases.
func BenchmarkFig9Strong64RTuned(b *testing.B) {
	benchDistFixture(b, experiments.Fig9DistTunedCase)
}
func BenchmarkFig12Weak64RTuned(b *testing.B) {
	benchDistFixture(b, experiments.Fig12DistTunedCase)
}

// The contention-charged variants: the headline bucketed+overlapped runs
// with the contention-aware fabric model on, so concurrent bucket
// allreduces pay for the shared 2:1 trunk. Tracked next to the default
// cases: their virtual-ms/iter gap is the honest-sharing cost of the
// overlapped schedule, and a silent change to the sharing discipline moves
// these rows while leaving the contention-off cases bit-identical.
func BenchmarkFig9Strong64RContention(b *testing.B) {
	benchDistFixture(b, experiments.Fig9DistContentionCase)
}
func BenchmarkFig12Weak64RContention(b *testing.B) {
	benchDistFixture(b, experiments.Fig12DistContentionCase)
}

// BenchmarkFig9Strong64REmbStore is the headline strong-scaling run with a
// 256 MiB per-rank hot-row cache over the default cold tier: the coldtier
// fetch/write-back charges ride the virtual clock, and the benchdiff gate
// keeps the tiered schedule's host-side dispatch allocation-free (fixture
// shared with dlrmbench -benchjson).
func BenchmarkFig9Strong64REmbStore(b *testing.B) {
	benchDistFixture(b, experiments.Fig9DistEmbStoreCase)
}

// BenchmarkFig9Strong64RServing replays the serving tier at the Fig. 9
// cluster shape (Large over 64 sockets, SLO policy, 1.5x capacity);
// virtual-p99 rides along as the virtual-ms/iter metric, so the benchdiff
// gate flags a serving cost-model drift the same way it flags a training
// schedule drift (fixture shared with dlrmbench -benchjson).
func BenchmarkFig9Strong64RServing(b *testing.B) {
	sc, done := experiments.Fig9ServingCase()
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := serve.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.P99*1e3, "virtual-ms/iter")
	}
}

// BenchmarkFig9Strong64RChurn runs the elastic driver through one full
// fail/recover cycle at the Fig. 9 cluster shape: rank 13 dies after
// iteration 4 of 8 under a 3-iteration checkpoint cadence, survivors
// restore from the newest durable shard checkpoint and replay. Effective
// virtual ms/iter — recovery overhead amortized over productive iterations
// — rides along so the benchdiff gate flags drift in the
// detect/restore/replay cost model (fixture shared with dlrmbench
// -benchjson).
func BenchmarkFig9Strong64RChurn(b *testing.B) {
	ec, done := experiments.Fig9ChurnCase()
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunElastic(ec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EffectiveIterSeconds()*1e3, "virtual-ms/iter")
	}
}

// BenchmarkLoaderShardedNext measures steady-state per-rank batch
// production by the sharded streaming loader (fixture shared with
// dlrmbench -benchjson); -benchmem documents the zero-allocation property.
func BenchmarkLoaderShardedNext(b *testing.B) {
	ld, done := experiments.LoaderNextCase()
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ld.Next()
	}
}

func BenchmarkFig13WeakBreakdownCCL(b *testing.B) {
	benchDist(b, core.MLPerf, 16, core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend}, true)
}

func BenchmarkFig14WeakCommDetail(b *testing.B) {
	benchDist(b, core.MLPerf, 26, core.Variant{Strategy: core.Alltoall, Backend: cluster.MPIBackend}, true)
}

// BenchmarkFig15TwistedHypercube runs the 8-socket shared-memory node.
func BenchmarkFig15TwistedHypercube(b *testing.B) {
	pools := cluster.NewPools()
	defer pools.Close()
	dc := core.DistConfig{
		Cfg: core.MLPerf, Ranks: 8, GlobalN: core.MLPerf.GlobalMB, Iters: 1,
		Variant:     core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend},
		Blocking:    true,
		Topo:        fabric.NewTwistedHypercube(22e9),
		Socket:      perfmodel.SKX8180,
		Sync:        true, // Fig. 15 instruments the paper's flat-sync schedule
		BucketBytes: core.FlatBuckets,
		Pools:       pools,
		Workspaces:  core.NewDistWorkspaces(),
	}
	core.RunDistributed(dc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.RunDistributed(dc)
		b.ReportMetric(res.WaitPerIter["alltoall"]*1e3, "alltoall-ms")
	}
}

// --- Fig. 16: mixed-precision training --------------------------------------

func benchFig16(b *testing.B, prec core.Precision) {
	// Shared fixture: dlrmbench -benchjson measures the identical workload.
	tr, mb := experiments.Fig16StepCase(prec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(mb)
	}
}

func BenchmarkFig16FP32(b *testing.B)      { benchFig16(b, core.FP32) }
func BenchmarkFig16BF16Split(b *testing.B) { benchFig16(b, core.BF16Split) }
func BenchmarkFig16FP24(b *testing.B)      { benchFig16(b, core.FP24) }

// --- §III-A: fused embedding backward+update --------------------------------

func BenchmarkEmbeddingFusedUpdate(b *testing.B) {
	tab, batch, dOut := experiments.FusedEmbeddingCase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.FusedBackwardUpdate(par.Default, batch, dOut, 1e-6)
	}
}

func BenchmarkEmbeddingTwoStepUpdate(b *testing.B) {
	tab, batch, dOut := experiments.FusedEmbeddingCase()
	dW := make([]float32, batch.NumLookups()*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Backward(par.Default, batch, dOut, dW)
		tab.Update(par.Default, embedding.RaceFree, batch, dW, 1e-6)
	}
}

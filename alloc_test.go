// Allocation-regression tests: the steady-state training iteration must not
// allocate. The paper's single-socket speedups depend on the hot loop paying
// only for FLOPs and memory traffic; in Go the equivalent discipline is
// zero heap allocations per step after warmup (no GC pressure, no goroutine
// churn), which these tests pin down with testing.AllocsPerRun. A change
// that reintroduces a per-iteration make/closure/boxing shows up here as a
// hard failure rather than a silent ns/op regression.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/gemm"
	"repro/internal/mlp"
	"repro/internal/par"
	"repro/internal/tensor"
)

// assertZeroAllocs runs fn through AllocsPerRun after a warmup call and
// fails if any steady-state run allocates.
func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warmup: first call may size workspaces
	fn()
	if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
		t.Errorf("%s: %v allocs per steady-state run, want 0", name, allocs)
	}
}

func trainerFor(t *testing.T, prec core.Precision) (*core.Trainer, *data.MiniBatch) {
	t.Helper()
	rows := data.ScaleRows(data.CriteoTBRows, 1.0/16384)
	cfg := core.Config{
		Name: "alloc-mini", MB: 64, GlobalMB: 64, LocalMB: 64,
		Lookups: 2, Tables: 8, EmbDim: 16, Rows: rows[:8],
		DenseIn: 13, BotHidden: []int{32}, TopHidden: []int{64, 32},
	}
	ds := data.NewClickLog(1, cfg.DenseIn, cfg.Rows, cfg.Lookups)
	m := core.NewModel(cfg, 16, 1)
	tr := core.NewTrainer(m, par.Default, embedding.RaceFree, 0.1, prec)
	return tr, ds.Batch(0, cfg.MB)
}

func TestTrainerStepZeroAllocsFP32(t *testing.T) {
	tr, mb := trainerFor(t, core.FP32)
	assertZeroAllocs(t, "Trainer.Step/FP32", func() { tr.Step(mb) })
}

func TestTrainerStepZeroAllocsFP32Fused(t *testing.T) {
	tr, mb := trainerFor(t, core.FP32)
	tr.FusedEmbedding = true
	assertZeroAllocs(t, "Trainer.Step/FP32+fused", func() { tr.Step(mb) })
}

func TestTrainerStepZeroAllocsBF16Split(t *testing.T) {
	tr, mb := trainerFor(t, core.BF16Split)
	assertZeroAllocs(t, "Trainer.Step/BF16Split", func() { tr.Step(mb) })
}

func TestTrainerStepZeroAllocsFP24(t *testing.T) {
	tr, mb := trainerFor(t, core.FP24)
	assertZeroAllocs(t, "Trainer.Step/FP24", func() { tr.Step(mb) })
}

func TestGemmForwardZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xD := tensor.NewDense(64, 128)
	xD.Randomize(rng, 1)
	wD := tensor.NewDense(128, 128)
	wD.Randomize(rng, 1)
	x := tensor.PackActs(xD, 16, 32)
	w := tensor.PackWeights(wD, 32, 32)
	y := tensor.NewActs(64, 128, 16, 32)
	assertZeroAllocs(t, "gemm.Forward", func() { gemm.Forward(par.Default, w, x, y) })
	assertZeroAllocs(t, "gemm.ForwardSkipZeros", func() { gemm.ForwardSkipZeros(par.Default, w, x, y) })

	dw := tensor.NewWeights(128, 128, 32, 32)
	assertZeroAllocs(t, "gemm.BackwardWeights", func() { gemm.BackwardWeights(par.Default, y, x, dw) })
}

func TestMLPStackZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := mlp.New([]int{64, 128, 128, 32}, 16, mlp.ReLU, mlp.None, rng)
	xD := tensor.NewDense(64, 64)
	xD.Randomize(rng, 1)
	x := tensor.PackActs(xD, 16, mlp.BlockPick(64, 64))

	var y *tensor.Acts
	assertZeroAllocs(t, "mlp.MLP.Forward", func() { y = m.Forward(par.Default, x) })

	dy := y.Clone()
	assertZeroAllocs(t, "mlp.MLP.Backward", func() { m.Backward(par.Default, dy, true) })

	// A full train cycle (forward, backward, SGD step) must also be free of
	// steady-state allocations: Step invalidates the cached transposes, so
	// this additionally covers the in-place re-transpose path.
	assertZeroAllocs(t, "mlp.MLP.train-cycle", func() {
		out := m.Forward(par.Default, x)
		copy(dy.Data, out.Data)
		m.Backward(par.Default, dy, false)
		m.Step(0.01)
	})
}

func TestEmbeddingKernelsZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := embedding.NewTable(10_000, 32, rng, 0.01)
	batch := embedding.MakeBatch(rng, embedding.Uniform{}, 256, 10, tab.M)
	out := make([]float32, 256*32)
	dW := make([]float32, batch.NumLookups()*32)
	assertZeroAllocs(t, "embedding.Forward", func() { tab.Forward(par.Default, batch, out) })
	assertZeroAllocs(t, "embedding.Backward", func() { tab.Backward(par.Default, batch, out, dW) })
	assertZeroAllocs(t, "embedding.Update/RaceFree", func() {
		tab.Update(par.Default, embedding.RaceFree, batch, dW, 1e-6)
	})
	assertZeroAllocs(t, "embedding.FusedBackwardUpdate", func() {
		tab.FusedBackwardUpdate(par.Default, batch, out, 1e-6)
	})
}

//go:build !race

package embstore

// raceEnabled mirrors race_on_test.go for plain builds.
const raceEnabled = false

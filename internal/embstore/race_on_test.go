//go:build race

package embstore

// raceEnabled reports that this binary was built with the race detector,
// whose shadow-memory bookkeeping perturbs allocation counts; the
// allocation-regression tests skip themselves under it (the plain CI test
// step still enforces them).
const raceEnabled = true

package embstore

import (
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/par"
)

// twinTables builds two identically initialized table shards, so the tiered
// and untiered paths can run side by side and be compared bit-for-bit.
func twinTables(nTables, m, e int) (ref, tiered []*embedding.Table) {
	for t := 0; t < nTables; t++ {
		ref = append(ref, embedding.NewTable(m, e, rand.New(rand.NewSource(int64(100+t))), 0.05))
		tiered = append(tiered, embedding.NewTable(m, e, rand.New(rand.NewSource(int64(100+t))), 0.05))
	}
	return
}

// oneRowBatch is a single-bag, single-lookup batch for row r.
func oneRowBatch(r int32) *embedding.Batch {
	return &embedding.Batch{Indices: []int32{r}, Offsets: []int32{0, 1}}
}

// TestCachedPathBitIdentical is the core cache invariant: at ANY budget —
// nothing cached, eviction-heavy, comfortable, everything resident — the
// store's forward outputs are bit-identical to Table.Forward every
// iteration, and after Flush the tables hold bit-identical weights to a
// shard trained with Table.Update(RaceFree). Zipf traffic keeps the hot
// head cached while the tail churns through admission and eviction.
func TestCachedPathBitIdentical(t *testing.T) {
	const (
		nTables = 3
		m       = 512
		e       = 8
		iters   = 40
		lr      = float32(0.05)
	)
	rowBytes := 4*e + RowOverheadBytes
	for _, budget := range []int{0, 3 * rowBytes, 64 * rowBytes, nTables * m * rowBytes} {
		ref, tiered := twinTables(nTables, m, e)
		st, err := New(budget, tiered)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		outRef := make([]float32, 32*e)
		outSt := make([]float32, 32*e)
		for it := 0; it < iters; it++ {
			for li := 0; li < nTables; li++ {
				b := embedding.MakeBatch(rng, embedding.Zipf{S: 1.05}, 32, 4, m)
				ref[li].Forward(par.Default, b, outRef)
				st.Forward(li, b, outSt)
				for i := range outRef {
					if outRef[i] != outSt[i] {
						t.Fatalf("budget=%d iter=%d table=%d: forward diverges at %d: %v vs %v",
							budget, it, li, i, outRef[i], outSt[i])
					}
				}
				dW := make([]float32, b.NumLookups()*e)
				for i := range dW {
					dW[i] = rng.Float32() - 0.5
				}
				ref[li].Update(par.Default, embedding.RaceFree, b, dW, lr)
				st.Update(li, b, dW, lr)
			}
		}
		st.Flush()
		for li := 0; li < nTables; li++ {
			for i := range ref[li].W {
				if ref[li].W[i] != tiered[li].W[i] {
					t.Fatalf("budget=%d table=%d: weights diverge at %d: %v vs %v",
						budget, li, i, ref[li].W[i], tiered[li].W[i])
				}
			}
		}
		if budget >= 64*rowBytes && st.Stats.Hits == 0 {
			t.Errorf("budget=%d: Zipf traffic produced no cache hits", budget)
		}
		if budget == 3*rowBytes && st.Stats.Evictions == 0 {
			t.Errorf("budget=%d: eviction-sized cache never evicted", budget)
		}
	}
}

// TestEvictionNeverExceedsBudget hammers a tiny cache with far more
// distinct rows than it can hold (touching each twice so the doorkeeper
// admits them) and checks occupancy and accounted bytes never exceed the
// construction budget.
func TestEvictionNeverExceedsBudget(t *testing.T) {
	const m, e = 4096, 8
	rowBytes := 4*e + RowOverheadBytes
	budget := 5*rowBytes + rowBytes/2 // deliberately not row-aligned
	tabs := []*embedding.Table{embedding.NewTable(m, e, rand.New(rand.NewSource(1)), 0.05)}
	st, err := New(budget, tabs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes() > budget {
		t.Fatalf("Bytes() %d exceeds budget %d at construction", st.Bytes(), budget)
	}
	out := make([]float32, e)
	for r := int32(0); r < 1000; r++ {
		st.Forward(0, oneRowBatch(r), out)
		st.Forward(0, oneRowBatch(r), out) // repeat miss → admitted
		if st.Len() > st.CapRows() {
			t.Fatalf("occupancy %d exceeds capacity %d", st.Len(), st.CapRows())
		}
		if st.Bytes() > budget {
			t.Fatalf("Bytes() %d exceeds budget %d", st.Bytes(), budget)
		}
	}
	if st.Stats.Evictions == 0 {
		t.Error("1000 admitted rows through a 5-row cache never evicted")
	}
}

// TestDirtyWriteBackBeforeEviction updates one row through the cache, then
// churns enough other rows through to evict it, and checks — without any
// Flush — that the authoritative table row received the update before the
// slot was reused.
func TestDirtyWriteBackBeforeEviction(t *testing.T) {
	const m, e = 256, 4
	rowBytes := 4*e + RowOverheadBytes
	tabs := []*embedding.Table{embedding.NewTable(m, e, rand.New(rand.NewSource(2)), 0.05)}
	st, err := New(2*rowBytes, tabs)
	if err != nil {
		t.Fatal(err)
	}
	const hot = int32(5)
	lr := float32(0.1)
	d1 := []float32{1, 2, 3, 4}
	d2 := []float32{5, 6, 7, 8}
	want := make([]float32, e)
	copy(want, tabs[0].Row(int(hot)))
	for i := range want {
		want[i] -= lr * d1[i] // first update passes through to the table
	}
	for i := range want {
		want[i] -= lr * d2[i] // second admits, then updates the cached copy
	}
	st.Update(0, oneRowBatch(hot), d1, lr)
	st.Update(0, oneRowBatch(hot), d2, lr)
	if st.Len() != 1 {
		t.Fatalf("row not admitted on repeat miss: occupancy %d", st.Len())
	}
	out := make([]float32, e)
	for r := int32(100); r < 140; r++ {
		st.Forward(0, oneRowBatch(r), out)
		st.Forward(0, oneRowBatch(r), out)
	}
	if got := st.lookup(packKey(0, hot)); got >= 0 {
		t.Fatal("hot row survived the churn; test needs more eviction pressure")
	}
	for i, w := range want {
		if tabs[0].Row(int(hot))[i] != w {
			t.Fatalf("table row lost the dirty update at %d: %v want %v",
				i, tabs[0].Row(int(hot))[i], w)
		}
	}
	if st.Stats.Writebacks == 0 {
		t.Error("eviction of a dirty row recorded no write-back")
	}
}

// TestAdmissionFiltersOneShotScan: a scan that touches every row exactly
// once — the canonical cache-killer — admits nothing, because the exact
// doorkeeper requires a repeat miss. A genuinely hot row then earns its
// slot on the second touch.
func TestAdmissionFiltersOneShotScan(t *testing.T) {
	const m, e = 8192, 8
	tabs := []*embedding.Table{embedding.NewTable(m, e, rand.New(rand.NewSource(3)), 0.05)}
	st, err := New(64*(4*e+RowOverheadBytes), tabs)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, e)
	for r := int32(0); r < 2000; r++ {
		st.Forward(0, oneRowBatch(r), out)
	}
	if st.Stats.Admits != 0 || st.Len() != 0 {
		t.Fatalf("one-shot scan admitted %d rows (occupancy %d), want 0", st.Stats.Admits, st.Len())
	}
	st.Forward(0, oneRowBatch(42), out)
	st.Forward(0, oneRowBatch(42), out)
	if st.Stats.Admits != 1 {
		t.Fatalf("repeat-missed row not admitted: %d admits", st.Stats.Admits)
	}
	st.Forward(0, oneRowBatch(42), out)
	if st.Stats.Hits != 1 {
		t.Fatalf("admitted row not hit: %d hits", st.Stats.Hits)
	}
}

// TestMeasuredHitRateTracksModel drives steady Zipf traffic and checks the
// measured hit rate lands near the analytic HitRate the cost models charge
// — CLOCK + doorkeeper approximate keep-the-head LFU, so the tolerance is
// loose, but a broken generator or a thrashing policy both land far out.
func TestMeasuredHitRateTracksModel(t *testing.T) {
	const m, e, skew = 20000, 8, 1.05
	budget := 1000 * (4*e + RowOverheadBytes)
	tabs := []*embedding.Table{embedding.NewTable(m, e, rand.New(rand.NewSource(4)), 0.05)}
	st, err := New(budget, tabs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	out := make([]float32, 64*e)
	for it := 0; it < 200; it++ {
		b := embedding.MakeBatch(rng, embedding.Zipf{S: skew}, 64, 4, m)
		st.Forward(0, b, out)
		if it == 99 {
			st.ResetStats() // discard the cold-start window
		}
	}
	model := HitRate(budget, e, []int{m}, skew)
	got := st.Stats.HitRate()
	if diff := got - model; diff < -0.15 || diff > 0.15 {
		t.Errorf("measured hit rate %.3f vs modeled %.3f (tolerance 0.15)", got, model)
	}
}

// TestZeroBudgetPassThrough: a zero budget must behave exactly like no
// store at all — pure table access, nothing cached, nothing admitted.
func TestZeroBudgetPassThrough(t *testing.T) {
	const m, e = 128, 8
	ref, tiered := twinTables(1, m, e)
	st, err := New(0, tiered)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	b := embedding.MakeBatch(rng, embedding.Uniform{}, 16, 4, m)
	outRef := make([]float32, 16*e)
	outSt := make([]float32, 16*e)
	ref[0].Forward(par.Default, b, outRef)
	st.Forward(0, b, outSt)
	for i := range outRef {
		if outRef[i] != outSt[i] {
			t.Fatalf("pass-through forward diverges at %d", i)
		}
	}
	if st.CapRows() != 0 || st.Bytes() != 0 || st.Stats.Admits != 0 {
		t.Errorf("zero budget cached something: cap=%d bytes=%d admits=%d",
			st.CapRows(), st.Bytes(), st.Stats.Admits)
	}
}

// TestStoreSteadyStateZeroAllocs pins the repo's allocation convention for
// the new tier: once constructed, Forward/Update/Flush traffic — hits,
// misses, admissions, evictions, write-backs — allocates nothing.
func TestStoreSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	const m, e = 4096, 16
	tabs := []*embedding.Table{embedding.NewTable(m, e, rand.New(rand.NewSource(8)), 0.05)}
	st, err := New(128*(4*e+RowOverheadBytes), tabs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	batches := make([]*embedding.Batch, 8)
	dWs := make([][]float32, 8)
	for i := range batches {
		batches[i] = embedding.MakeBatch(rng, embedding.Zipf{S: 1.05}, 32, 4, m)
		dWs[i] = make([]float32, batches[i].NumLookups()*e)
	}
	out := make([]float32, 32*e)
	i := 0
	step := func() {
		b := batches[i%len(batches)]
		st.Forward(0, b, out)
		st.Update(0, b, dWs[i%len(dWs)], 0.01)
		i++
	}
	step()
	step()
	st.Flush()
	if got := testing.AllocsPerRun(20, step); got != 0 {
		t.Errorf("%v allocs per steady-state store iteration, want 0", got)
	}
	if got := testing.AllocsPerRun(5, st.Flush); got != 0 {
		t.Errorf("%v allocs per Flush, want 0", got)
	}
}

// TestRowsForBudget pins the capacity arithmetic and its edge cases.
func TestRowsForBudget(t *testing.T) {
	rowBytes := 4*16 + RowOverheadBytes
	for _, tc := range []struct{ budget, e, want int }{
		{0, 16, 0},
		{-5, 16, 0},
		{rowBytes - 1, 16, 0},
		{rowBytes, 16, 1},
		{10*rowBytes + 3, 16, 10},
	} {
		if got := RowsForBudget(tc.budget, tc.e); got != tc.want {
			t.Errorf("RowsForBudget(%d, %d) = %d, want %d", tc.budget, tc.e, got, tc.want)
		}
	}
}

// Package embstore provides a tiered embedding parameter store: each rank's
// (or serving replica's) table shard keeps its Zipf-hot rows in a
// fixed-byte-budget cache in front of the authoritative in-RAM tables,
// modeling the HugeCTR/HEAT design where larger-than-memory tables put cold
// rows behind a slower tier. The cache is an open-addressed row index over a
// preallocated row arena with a CLOCK eviction hand and a doorkeeper
// admission filter (a row must miss twice while holding its doorkeeper
// position to earn a slot, so one-shot cold scans never displace the hot
// head), and
// optimizer updates write back through it with dirty-row tracking: a dirty
// row is flushed to its table before its slot is reused, and Flush drains
// the rest, so the tables always converge to exactly the untiered values.
//
// Everything is preallocated at construction; steady-state Forward/Update
// traffic performs zero heap allocations (enforced by alloc_test.go per the
// repo's differencing-test convention). The store itself moves no modeled
// time — the cold tier's bandwidth/latency cost is charged by the callers
// (internal/core on the rank's virtual clock, internal/serve in the replica
// cost model) using the analytic hit rate from HitRate / Zipf.HeadMass.
package embstore

import (
	"fmt"

	"repro/internal/embedding"
)

// RowOverheadBytes is the per-cached-row metadata charge counted against
// the byte budget: the index entry (key + slot), the reverse key, the CLOCK
// reference bit, the dirty bit, and the amortized doorkeeper entries.
const RowOverheadBytes = 64

// RowsForBudget returns how many rows of embedding dim e a cache of budget
// bytes can hold, metadata included. Zero or negative budgets hold nothing.
func RowsForBudget(budget, e int) int {
	if budget <= 0 || e <= 0 {
		return 0
	}
	return budget / (4*e + RowOverheadBytes)
}

// HitRate returns the modeled steady-state cache hit rate when budget bytes
// front a shard of tables with the given row counts (all at embedding dim
// e) under Zipf(skew) traffic: the budget splits evenly across the shard's
// tables, each table's share captures its analytic head mass
// (Zipf.HeadMass), and tables are averaged uniformly because the workload
// draws the same lookup count from each. This is the number the timing-mode
// cold-tier charge and the serving cost model both consume; the functional
// store's measured Stats converge to it (tested).
func HitRate(budget, e int, rows []int, skew float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	perTable := RowsForBudget(budget, e) / len(rows)
	z := embedding.Zipf{S: skew}
	var sum float64
	for _, m := range rows {
		sum += z.HeadMass(perTable, m)
	}
	return sum / float64(len(rows))
}

// Stats counts cache traffic since construction or the last ResetStats.
type Stats struct {
	Hits       int64 // accesses served from a cached row
	Misses     int64 // accesses that went to the authoritative table
	Admits     int64 // rows copied into the cache
	Evictions  int64 // slots reclaimed by the CLOCK hand
	Writebacks int64 // dirty rows flushed to their table (evict or Flush)
}

// HitRate returns the measured hit fraction, 0 if there was no traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Store is the tiered front for one shard's tables. It is not safe for
// concurrent use; in the distributed trainer each rank owns one.
type Store struct {
	tables []*embedding.Table
	e      int
	budget int

	capRows int // cache capacity in rows
	used    int // slots handed out so far (== capRows once warm)

	rows    []float32 // capRows × e cached row copies
	slotKey []uint64  // slot → packed (table, row) key; 0 = free
	ref     []uint8   // CLOCK reference bits
	dirty   []bool    // cached copy diverges from the table
	hand    int       // CLOCK hand

	keys  []uint64 // open-addressed index: packed key, 0 = empty
	slots []int32  // index position → arena slot
	mask  uint64   // len(keys) - 1

	// Doorkeeper: a direct-mapped (key, count) table over recent misses.
	// A row is admitted only on its second miss while it still owns its
	// doorkeeper position; a colliding newer key takes the position over,
	// so counts age out by replacement and a one-shot scan — every key
	// seen exactly once — can never earn a slot.
	admKey  []uint64
	admCnt  []uint8
	admMask uint64

	Stats Stats
}

// New builds a store over the shard's tables with the given byte budget.
// All tables must share one embedding dim (the configs guarantee it). A
// zero budget yields a pure pass-through store: every access goes straight
// to its table and nothing is ever cached.
func New(budget int, tables []*embedding.Table) (*Store, error) {
	s := &Store{tables: tables, budget: budget}
	for _, t := range tables {
		if s.e == 0 {
			s.e = t.E
		} else if t.E != s.e {
			return nil, fmt.Errorf("embstore: mixed embedding dims %d and %d in one shard", s.e, t.E)
		}
	}
	s.capRows = RowsForBudget(budget, s.e)
	if s.capRows == 0 {
		return s, nil
	}
	idxSize := 8
	for idxSize < 2*s.capRows {
		idxSize *= 2
	}
	s.rows = make([]float32, s.capRows*s.e)
	s.slotKey = make([]uint64, s.capRows)
	s.ref = make([]uint8, s.capRows)
	s.dirty = make([]bool, s.capRows)
	s.keys = make([]uint64, idxSize)
	s.slots = make([]int32, idxSize)
	s.mask = uint64(idxSize - 1)
	s.admKey = make([]uint64, idxSize)
	s.admCnt = make([]uint8, idxSize)
	s.admMask = uint64(idxSize - 1)
	return s, nil
}

// CapRows returns the cache capacity in rows.
func (s *Store) CapRows() int { return s.capRows }

// Len returns how many rows are currently cached.
func (s *Store) Len() int { return s.used }

// Bytes returns the bytes the cache accounts for (rows plus metadata);
// never exceeds the construction budget.
func (s *Store) Bytes() int { return s.capRows * (4*s.e + RowOverheadBytes) }

// ResetStats zeroes the traffic counters (cached rows stay).
func (s *Store) ResetStats() { s.Stats = Stats{} }

// mix is the 64-bit finalizer (murmur3 fmix64) used for both the row index
// and the doorkeeper positions.
func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 33
	return k
}

// packKey packs (local table, row) into a nonzero index key.
func packKey(li int, r int32) uint64 {
	return uint64(li+1)<<32 | uint64(uint32(r))
}

// lookup returns the arena slot for key, or -1.
func (s *Store) lookup(key uint64) int32 {
	i := mix(key) & s.mask
	for {
		switch s.keys[i] {
		case key:
			return s.slots[i]
		case 0:
			return -1
		}
		i = (i + 1) & s.mask
	}
}

// insert adds key → slot; the index is sized for ≤50% load so a free
// position always exists within the probe chain.
func (s *Store) insert(key uint64, slot int32) {
	i := mix(key) & s.mask
	for s.keys[i] != 0 {
		i = (i + 1) & s.mask
	}
	s.keys[i] = key
	s.slots[i] = slot
}

// del removes key with backward-shift deletion, keeping probe chains
// intact without tombstones.
func (s *Store) del(key uint64) {
	i := mix(key) & s.mask
	for s.keys[i] != key {
		i = (i + 1) & s.mask
	}
	j := i
	for {
		j = (j + 1) & s.mask
		k := s.keys[j]
		if k == 0 {
			break
		}
		// k may fill the hole at i iff its home position precedes i in
		// the cyclic probe order ending at j.
		if (j-(mix(k)&s.mask))&s.mask >= (j-i)&s.mask {
			s.keys[i] = k
			s.slots[i] = s.slots[j]
			i = j
		}
	}
	s.keys[i] = 0
	s.slots[i] = 0
}

// victim advances the CLOCK hand to the next slot with a clear reference
// bit, giving recently touched rows a second chance.
func (s *Store) victim() int32 {
	for {
		if s.ref[s.hand] == 0 {
			v := s.hand
			s.hand++
			if s.hand == s.capRows {
				s.hand = 0
			}
			return int32(v)
		}
		s.ref[s.hand] = 0
		s.hand++
		if s.hand == s.capRows {
			s.hand = 0
		}
	}
}

// writeBack flushes slot's cached copy to its authoritative table row.
func (s *Store) writeBack(slot int32) {
	key := s.slotKey[slot]
	li := int(key>>32) - 1
	r := int(uint32(key))
	copy(s.tables[li].Row(r), s.rows[int(slot)*s.e:(int(slot)+1)*s.e])
	s.dirty[slot] = false
	s.Stats.Writebacks++
}

// access returns the current storage for (table li, row r): the cached copy
// when present (authoritative until written back), the table row otherwise.
// Misses pass through the doorkeeper; a repeat miss admits the row,
// evicting the CLOCK victim — after writing it back if dirty — once the
// cache is full. write marks the returned row dirty if it is
// cache-resident.
func (s *Store) access(li int, r int32, write bool) []float32 {
	tab := s.tables[li]
	if s.capRows == 0 {
		s.Stats.Misses++
		return tab.Row(int(r))
	}
	key := packKey(li, r)
	if slot := s.lookup(key); slot >= 0 {
		s.Stats.Hits++
		s.ref[slot] = 1
		if write {
			s.dirty[slot] = true
		}
		return s.rows[int(slot)*s.e : (int(slot)+1)*s.e]
	}
	s.Stats.Misses++
	h := mix(key) & s.admMask
	if s.admKey[h] != key {
		s.admKey[h] = key // take the position over; the old key ages out
		s.admCnt[h] = 1
		return tab.Row(int(r)) // one-shot so far: not worth a slot
	}
	if s.admCnt[h] < 255 {
		s.admCnt[h]++
	}
	var slot int32
	if s.used < s.capRows {
		slot = int32(s.used)
		s.used++
	} else {
		slot = s.victim()
		if s.dirty[slot] {
			s.writeBack(slot)
		}
		s.del(s.slotKey[slot])
		s.Stats.Evictions++
	}
	copy(s.rows[int(slot)*s.e:(int(slot)+1)*s.e], tab.Row(int(r)))
	s.insert(key, slot)
	s.slotKey[slot] = key
	s.ref[slot] = 1
	s.dirty[slot] = write
	s.Stats.Admits++
	return s.rows[int(slot)*s.e : (int(slot)+1)*s.e]
}

// Forward computes the batch's bag sums for local table li into out
// (NumBags × e), reading rows through the cache. The per-bag accumulation
// order matches Table.Forward exactly (zero, then += in lookup order), and
// a cached copy is bit-for-bit the table row it shadows, so the result is
// bit-identical to the untiered path.
func (s *Store) Forward(li int, b *embedding.Batch, out []float32) {
	e := s.e
	for bag := 0; bag < b.NumBags(); bag++ {
		y := out[bag*e : (bag+1)*e]
		for i := range y {
			y[i] = 0
		}
		for _, r := range b.Indices[b.Offsets[bag]:b.Offsets[bag+1]] {
			row := s.access(li, r, false)
			for i := range y {
				y[i] += row[i]
			}
		}
	}
}

// Update applies the SGD step row[i] -= lr·dW[s·e+i] for every lookup s in
// ascending order, writing through the cache with dirty marking. The
// race-free update strategy applies per-row deltas in exactly this lookup
// order (each worker scans all lookups and claims its row range), so the
// cached path is bit-identical to Table.Update with embedding.RaceFree.
func (s *Store) Update(li int, b *embedding.Batch, dW []float32, lr float32) {
	e := s.e
	for j := 0; j < b.NumLookups(); j++ {
		row := s.access(li, b.Indices[j], true)
		src := dW[j*e : (j+1)*e]
		for i := range row {
			row[i] -= lr * src[i]
		}
	}
}

// Flush writes every dirty cached row back to its table. Call before
// inspecting or checkpointing the tables; afterwards the tables hold
// exactly the values the untiered path would.
func (s *Store) Flush() {
	for slot := 0; slot < s.used; slot++ {
		if s.dirty[slot] {
			s.writeBack(int32(slot))
		}
	}
}

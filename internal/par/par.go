// Package par provides the thread-level parallel substrate used by every
// compute kernel in this repository. It is the Go substitute for the OpenMP
// `#pragma omp parallel for` constructs in the paper: a fixed-size worker
// pool with static range partitioning, so that the same data decompositions
// (and the same race conditions, and the same fixes) arise as in the C++
// kernels the paper describes.
//
// Workers are persistent: NewPool launches its goroutines once and every
// parallel region is handed to them over per-worker channels, mirroring how
// an OpenMP runtime parks its thread team between parallel regions instead
// of re-spawning it. This keeps the per-region cost to one channel send and
// receive per worker — no goroutine creation, no allocation — which matters
// because DLRM's hot loop issues dozens of small parallel regions per
// iteration (see docs/PERF.md for the handoff protocol).
//
// Work items are closures receiving (tid, lo, hi) half-open ranges, and
// partitioning is the exact integer split the paper's Algorithm 4 uses:
//
//	lo = (n * tid) / nThreads
//	hi = (n * (tid+1)) / nThreads
//
// Allocation-free dispatch: the plain ForN/ForEachWorker/Run2D entry points
// take closures, and a closure that captures variables costs one heap
// allocation at the call site. Steady-state kernels that must not allocate
// use the *Arg variants instead: the body is a package-level function (a
// static func value, never allocated) and the per-call state travels through
// a persistent args struct passed as `arg any` (a pointer conversion, never
// allocated). See gemm, mlp, embedding, and interaction for the pattern.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Chunk returns the half-open range [lo, hi) assigned to partition tid out
// of parts when statically splitting n items. It matches the split used by
// the paper's race-free embedding update (Algorithm 4): every index in
// [0, n) belongs to exactly one partition and partitions are contiguous and
// balanced to within one element.
func Chunk(n, parts, tid int) (lo, hi int) {
	if parts <= 0 {
		return 0, n
	}
	lo = n * tid / parts
	hi = n * (tid + 1) / parts
	return lo, hi
}

// region dispatch modes.
const (
	modeIdle   = iota
	modeForN   // nbody over Chunk(n, active, tid)
	modeWorker // wbody once per worker
	mode2D     // dbody per flattened (row, col) cell of the tid's chunk
)

// state is the part of a pool shared with its worker goroutines. It is
// split from Pool so that an abandoned Pool can be garbage collected: the
// workers reference only the state, and a runtime cleanup on the Pool shuts
// them down once the Pool itself becomes unreachable.
type state struct {
	workers int         // immutable after NewPool
	closed  atomic.Bool // set by close; closed pools run regions serially

	// mu serializes parallel regions: concurrent submitters (e.g. simulated
	// ranks sharing one pool) queue up rather than corrupting the region
	// descriptor below.
	mu   sync.Mutex
	wg   sync.WaitGroup
	wake []chan struct{} // one per helper worker (tid 1..workers-1)

	// Region descriptor, valid from wake to wg.Wait. The channel send
	// publishes these fields to the workers (happens-before), and wg.Done /
	// wg.Wait publishes completion back.
	mode   int
	n      int // item count (ForN) or cell count (2D)
	cols   int // 2D column count
	active int // number of participating partitions
	nbody  func(arg any, tid, lo, hi int)
	wbody  func(arg any, tid, workers int)
	dbody  func(arg any, tid, row, col int)
	arg    any

	closeOnce sync.Once

	attach sync.Map // *StateKey -> any, per-pool kernel state
}

// Pool is a fixed set of persistent workers over which parallel-for loops
// execute. Regions are serialized: concurrent submissions from different
// goroutines are safe and run one after another. Pools model a CPU socket:
// NumWorkers() plays the role of the core count T in the paper, and kernels
// that dedicate S cores to communication use a Pool of T-S workers for
// compute.
//
// The submitting goroutine participates as tid 0, so a Pool of n workers
// runs n-1 goroutines. A region body must not submit another region to the
// same pool (no nested parallelism, as in the paper's flat OpenMP regions).
type Pool struct {
	s *state
}

// NewPool returns a pool of n workers. n <= 0 selects GOMAXPROCS. The
// helper goroutines persist until Close; an unreferenced Pool is also shut
// down by the garbage collector.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &state{workers: n}
	if n > 1 {
		s.wake = make([]chan struct{}, n)
		for tid := 1; tid < n; tid++ {
			s.wake[tid] = make(chan struct{}, 1)
			go s.worker(tid)
		}
	}
	p := &Pool{s: s}
	runtime.AddCleanup(p, func(st *state) { st.close() }, s)
	return p
}

// Default is a shared pool sized to the machine.
var Default = NewPool(0)

// NumWorkers reports the number of workers (the T in the paper's T-S split).
func (p *Pool) NumWorkers() int { return p.s.workers }

// Close shuts down the helper goroutines. Further use of the pool runs
// regions on the calling goroutine only. Close is idempotent and safe to
// call concurrently with region submission.
func (p *Pool) Close() { p.s.close() }

// Closed reports whether the pool has been shut down (its helpers exited
// and regions now run serially). Lifecycle tests use this to pin ownership
// rules — e.g. that a transient pool set is closed when its run finishes.
func (p *Pool) Closed() bool { return p.s.closed.Load() }

func (s *state) close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed.Store(true)
		for tid := 1; tid < s.workers; tid++ {
			close(s.wake[tid])
		}
		s.mu.Unlock()
	})
}

// worker is the persistent helper loop for tid: park on the wake channel,
// execute the published region chunk, signal completion.
func (s *state) worker(tid int) {
	for range s.wake[tid] {
		s.runChunk(tid)
		s.wg.Done()
	}
}

// runChunk executes tid's share of the current region.
func (s *state) runChunk(tid int) {
	switch s.mode {
	case modeForN:
		lo, hi := Chunk(s.n, s.active, tid)
		s.nbody(s.arg, tid, lo, hi)
	case modeWorker:
		s.wbody(s.arg, tid, s.active)
	case mode2D:
		lo, hi := Chunk(s.n, s.active, tid)
		for i := lo; i < hi; i++ {
			s.dbody(s.arg, tid, i/s.cols, i%s.cols)
		}
	}
}

// run publishes the region descriptor already stored in s (under s.mu),
// wakes active-1 helpers, executes tid 0's chunk inline, and waits. The
// wait is deferred so that a panic in tid 0's chunk still drains the
// helpers before unwinding, leaving the pool reusable if the panic is
// recovered upstream.
func (s *state) run(active int) {
	s.active = active
	s.wg.Add(active - 1)
	for tid := 1; tid < active; tid++ {
		s.wake[tid] <- struct{}{}
	}
	defer func() {
		s.wg.Wait()
		s.mode = modeIdle
		s.nbody, s.wbody, s.dbody, s.arg = nil, nil, nil, nil
	}()
	s.runChunk(0)
}

// ForNArg runs body(arg, tid, lo, hi) on each worker with [lo,hi) a static
// chunk of [0,n). body should be a package-level function and arg a pointer
// to a persistent args struct: then the call performs no allocation, which
// is what keeps the steady-state training step allocation-free.
func (p *Pool) ForNArg(n int, body func(arg any, tid, lo, hi int), arg any) {
	s := p.s
	w := s.workers
	if w <= 1 || n <= 1 || s.closed.Load() {
		body(arg, 0, 0, n)
		return
	}
	if w > n {
		w = n
	}
	s.mu.Lock()
	defer s.mu.Unlock()  // deferred so a panicking body cannot wedge the pool
	if s.closed.Load() { // closed while waiting for the lock
		body(arg, 0, 0, n)
		return
	}
	s.mode, s.n, s.nbody, s.arg = modeForN, n, body, arg
	s.run(w)
}

// ForEachWorkerArg runs body(arg, tid, nWorkers) once per worker. See
// ForNArg for the allocation-free calling convention.
func (p *Pool) ForEachWorkerArg(body func(arg any, tid, workers int), arg any) {
	s := p.s
	if s.workers <= 1 || s.closed.Load() {
		body(arg, 0, 1)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		body(arg, 0, 1)
		return
	}
	s.mode, s.wbody, s.arg = modeWorker, body, arg
	s.run(s.workers)
}

// Run2DArg partitions a rows×cols block grid among the workers, assigning
// each worker a contiguous run of flattened (row, col) cells, and invokes
// body for every cell it owns. See ForNArg for the allocation-free calling
// convention.
func (p *Pool) Run2DArg(rows, cols int, body func(arg any, tid, row, col int), arg any) {
	s := p.s
	total := rows * cols
	if s.workers <= 1 || total <= 1 || s.closed.Load() {
		for i := 0; i < total; i++ {
			body(arg, 0, i/cols, i%cols)
		}
		return
	}
	w := s.workers
	if w > total {
		w = total
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		for i := 0; i < total; i++ {
			body(arg, 0, i/cols, i%cols)
		}
		return
	}
	s.mode, s.n, s.cols, s.dbody, s.arg = mode2D, total, cols, body, arg
	s.run(w)
}

// forNAdapter / workerAdapter / run2DAdapter let the closure-based entry
// points reuse the Arg machinery: the closure itself rides in arg (func
// values are pointer-shaped, so the conversion does not allocate — only the
// closure's own creation at the caller might).
func forNAdapter(arg any, tid, lo, hi int)    { arg.(func(tid, lo, hi int))(tid, lo, hi) }
func workerAdapter(arg any, tid, workers int) { arg.(func(tid, workers int))(tid, workers) }
func run2DAdapter(arg any, tid, row, col int) { arg.(func(tid, row, col int))(tid, row, col) }

// ForN runs body(tid, lo, hi) on each worker with [lo,hi) a static chunk of
// [0,n). It blocks until every worker finishes. Chunks follow Chunk, so a
// worker may receive an empty range when n < workers. Hot paths should use
// ForNArg, which avoids the closure allocation.
func (p *Pool) ForN(n int, body func(tid, lo, hi int)) {
	p.ForNArg(n, forNAdapter, body)
}

// ForEachWorker runs body(tid, nWorkers) once per worker regardless of any
// iteration count. Kernels that hand-partition 2-D iteration spaces (such as
// the blocked GEMMs of Algorithm 5, line 1) use this entry point and compute
// their own work assignment from tid.
func (p *Pool) ForEachWorker(body func(tid, workers int)) {
	p.ForEachWorkerArg(workerAdapter, body)
}

// Run2D partitions a rows×cols block grid among the workers, assigning each
// worker a contiguous run of flattened (row, col) cells, and invokes body for
// every cell it owns. This is the "assign output work items" step of
// Algorithm 5: output blocks are distributed, inputs are shared read-only.
func (p *Pool) Run2D(rows, cols int, body func(tid, row, col int)) {
	p.Run2DArg(rows, cols, run2DAdapter, body)
}

// StateKey identifies a per-pool kernel-state attachment. Each client
// package allocates one key at init time and uses it for every pool.
type StateKey struct{ name string }

// NewStateKey returns a fresh attachment key; name is for debugging only.
func NewStateKey(name string) *StateKey { return &StateKey{name: name} }

// Attached returns the kernel state attached to the pool under key,
// invoking create(p) exactly once per (pool, key) to build it. Lookups
// after the first are allocation-free, which lets compute kernels keep
// per-pool, per-worker scratch storage (e.g. the GEMM tile pointer lists)
// alive across calls instead of reallocating it inside every parallel
// region. create must be a package-level function to keep the call site
// allocation-free.
func (p *Pool) Attached(key *StateKey, create func(p *Pool) any) any {
	if v, ok := p.s.attach.Load(key); ok {
		return v
	}
	v, _ := p.s.attach.LoadOrStore(key, create(p))
	return v
}

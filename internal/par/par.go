// Package par provides the thread-level parallel substrate used by every
// compute kernel in this repository. It is the Go substitute for the OpenMP
// `#pragma omp parallel for` constructs in the paper: a fixed-size worker
// pool with static range partitioning, so that the same data decompositions
// (and the same race conditions, and the same fixes) arise as in the C++
// kernels the paper describes.
//
// The pool is deliberately simple: workers are goroutines, work items are
// closures receiving (tid, lo, hi) half-open ranges, and partitioning is the
// exact integer split the paper's Algorithm 4 uses:
//
//	lo = (n * tid) / nThreads
//	hi = (n * (tid+1)) / nThreads
package par

import (
	"runtime"
	"sync"
)

// Chunk returns the half-open range [lo, hi) assigned to partition tid out
// of parts when statically splitting n items. It matches the split used by
// the paper's race-free embedding update (Algorithm 4): every index in
// [0, n) belongs to exactly one partition and partitions are contiguous and
// balanced to within one element.
func Chunk(n, parts, tid int) (lo, hi int) {
	if parts <= 0 {
		return 0, n
	}
	lo = n * tid / parts
	hi = n * (tid + 1) / parts
	return lo, hi
}

// Pool is a fixed set of workers over which parallel-for loops execute.
// A Pool is safe for sequential reuse; a single ForN call runs to completion
// before returning. Pools model a CPU socket: NumWorkers() plays the role of
// the core count T in the paper, and kernels that dedicate S cores to
// communication use a Pool of T-S workers for compute.
type Pool struct {
	workers int
}

// NewPool returns a pool of n workers. n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Default is a shared pool sized to the machine.
var Default = NewPool(0)

// NumWorkers reports the number of workers (the T in the paper's T-S split).
func (p *Pool) NumWorkers() int { return p.workers }

// ForN runs body(tid, lo, hi) on each worker with [lo,hi) a static chunk of
// [0,n). It blocks until every worker finishes. Chunks follow Chunk, so a
// worker may receive an empty range when n < workers.
func (p *Pool) ForN(n int, body func(tid, lo, hi int)) {
	w := p.workers
	if w <= 1 || n <= 1 {
		body(0, 0, n)
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for tid := 0; tid < w; tid++ {
		go func(tid int) {
			defer wg.Done()
			lo, hi := Chunk(n, w, tid)
			body(tid, lo, hi)
		}(tid)
	}
	wg.Wait()
}

// ForEachWorker runs body(tid, nWorkers) once per worker regardless of any
// iteration count. Kernels that hand-partition 2-D iteration spaces (such as
// the blocked GEMMs of Algorithm 5, line 1) use this entry point and compute
// their own work assignment from tid.
func (p *Pool) ForEachWorker(body func(tid, workers int)) {
	w := p.workers
	if w <= 1 {
		body(0, 1)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for tid := 0; tid < w; tid++ {
		go func(tid int) {
			defer wg.Done()
			body(tid, w)
		}(tid)
	}
	wg.Wait()
}

// Run2D partitions a rows×cols block grid among the workers, assigning each
// worker a contiguous run of flattened (row, col) cells, and invokes body for
// every cell it owns. This is the "assign output work items" step of
// Algorithm 5: output blocks are distributed, inputs are shared read-only.
func (p *Pool) Run2D(rows, cols int, body func(tid, row, col int)) {
	total := rows * cols
	p.ForN(total, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(tid, i/cols, i%cols)
		}
	})
}

package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunkCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 28, 100, 1023} {
		for _, parts := range []int{1, 2, 3, 7, 28, 56} {
			next := 0
			for tid := 0; tid < parts; tid++ {
				lo, hi := Chunk(n, parts, tid)
				if lo != next {
					t.Fatalf("n=%d parts=%d tid=%d: lo=%d want %d", n, parts, tid, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d parts=%d tid=%d: hi=%d < lo=%d", n, parts, tid, hi, lo)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d parts=%d: coverage ends at %d", n, parts, next)
			}
		}
	}
}

func TestChunkBalance(t *testing.T) {
	// Chunks differ in size by at most 1.
	prop := func(n uint16, parts uint8) bool {
		nn, pp := int(n), int(parts)
		if pp == 0 {
			pp = 1
		}
		minSz, maxSz := nn, 0
		for tid := 0; tid < pp; tid++ {
			lo, hi := Chunk(nn, pp, tid)
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkDefaultParts(t *testing.T) {
	lo, hi := Chunk(10, 0, 3)
	if lo != 0 || hi != 10 {
		t.Fatalf("parts<=0 should return full range, got [%d,%d)", lo, hi)
	}
}

func TestForNVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		p := NewPool(workers)
		const n = 1000
		counts := make([]int32, n)
		p.ForN(n, func(tid, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForNSmallN(t *testing.T) {
	p := NewPool(8)
	var visited int32
	p.ForN(1, func(tid, lo, hi int) {
		atomic.AddInt32(&visited, int32(hi-lo))
	})
	if visited != 1 {
		t.Fatalf("visited %d, want 1", visited)
	}
	p.ForN(0, func(tid, lo, hi int) {
		atomic.AddInt32(&visited, int32(hi-lo))
	})
	if visited != 1 {
		t.Fatalf("n=0 must visit nothing")
	}
}

func TestForEachWorkerRunsAll(t *testing.T) {
	p := NewPool(6)
	seen := make([]int32, 6)
	p.ForEachWorker(func(tid, workers int) {
		if workers != 6 {
			t.Errorf("workers=%d want 6", workers)
		}
		atomic.AddInt32(&seen[tid], 1)
	})
	for tid, c := range seen {
		if c != 1 {
			t.Fatalf("tid %d ran %d times", tid, c)
		}
	}
}

func TestRun2DCoversGrid(t *testing.T) {
	p := NewPool(4)
	const rows, cols = 13, 7
	var grid [rows][cols]int32
	p.Run2D(rows, cols, func(tid, r, c int) {
		atomic.AddInt32(&grid[r][c], 1)
	})
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if grid[r][c] != 1 {
				t.Fatalf("cell (%d,%d) visited %d times", r, c, grid[r][c])
			}
		}
	}
}

type sumArgs struct {
	counts []int32
}

func sumBody(arg any, tid, lo, hi int) {
	a := arg.(*sumArgs)
	for i := lo; i < hi; i++ {
		atomic.AddInt32(&a.counts[i], 1)
	}
}

func TestForNArgVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		p := NewPool(workers)
		const n = 1000
		a := &sumArgs{counts: make([]int32, n)}
		p.ForNArg(n, sumBody, a)
		for i, c := range a.counts {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
		p.Close()
	}
}

func TestForNArgZeroAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	a := &sumArgs{counts: make([]int32, 256)}
	allocs := testing.AllocsPerRun(100, func() {
		p.ForNArg(256, sumBody, a)
	})
	if allocs != 0 {
		t.Fatalf("ForNArg allocated %v times per run, want 0", allocs)
	}
}

func TestPoolReuseManyRegions(t *testing.T) {
	// Persistent workers must survive thousands of handoffs.
	p := NewPool(7)
	defer p.Close()
	var total int64
	for i := 0; i < 2000; i++ {
		p.ForN(97, func(tid, lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
	}
	if total != 2000*97 {
		t.Fatalf("total=%d want %d", total, 2000*97)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	// Simulated ranks share one pool (see core/dist_test.go); regions from
	// different goroutines must serialize, not corrupt each other.
	p := NewPool(3)
	defer p.Close()
	const goroutines, n = 8, 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	results := make([][]int32, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			counts := make([]int32, n)
			for iter := 0; iter < 50; iter++ {
				p.ForN(n, func(tid, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
			}
			results[g] = counts
		}(g)
	}
	wg.Wait()
	for g, counts := range results {
		for i, c := range counts {
			if c != 50 {
				t.Fatalf("goroutine %d index %d visited %d times, want 50", g, i, c)
			}
		}
	}
}

func TestPanicInBodyDoesNotWedgePool(t *testing.T) {
	// A panic in tid 0's chunk (the submitter's inline share) that is
	// recovered upstream must leave the pool usable: mutex released,
	// WaitGroup drained.
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic to propagate")
			}
		}()
		p.ForN(100, func(tid, lo, hi int) {
			if tid == 0 {
				panic("kernel failure")
			}
		})
	}()
	var total int32
	p.ForN(50, func(tid, lo, hi int) {
		atomic.AddInt32(&total, int32(hi-lo))
	})
	if total != 50 {
		t.Fatalf("pool wedged after recovered panic: total=%d", total)
	}
}

func TestCloseFallsBackToSerial(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // idempotent
	var visited int32
	p.ForN(100, func(tid, lo, hi int) {
		if tid != 0 {
			t.Errorf("closed pool used helper tid %d", tid)
		}
		atomic.AddInt32(&visited, int32(hi-lo))
	})
	if visited != 100 {
		t.Fatalf("visited %d want 100", visited)
	}
	p.ForEachWorker(func(tid, workers int) {
		if workers != 1 {
			t.Errorf("closed pool reported %d workers", workers)
		}
	})
}

var testKey = NewStateKey("par-test")

type attachState struct{ created int32 }

func newAttachState(p *Pool) any { return &attachState{created: 1} }

func TestAttachedCreatesOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	v1 := p.Attached(testKey, newAttachState).(*attachState)
	v2 := p.Attached(testKey, newAttachState).(*attachState)
	if v1 != v2 {
		t.Fatal("Attached returned different values for the same key")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if p.Attached(testKey, newAttachState) != v1 {
			t.Fatal("Attached changed value")
		}
	})
	if allocs != 0 {
		t.Fatalf("Attached hit path allocated %v times per run, want 0", allocs)
	}
}

func TestRun2DArgCoversGrid(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const rows, cols = 13, 7
	a := &sumArgs{counts: make([]int32, rows*cols)}
	p.Run2DArg(rows, cols, func(arg any, tid, r, c int) {
		atomic.AddInt32(&arg.(*sumArgs).counts[r*cols+c], 1)
	}, a)
	for i, c := range a.counts {
		if c != 1 {
			t.Fatalf("cell %d visited %d times", i, c)
		}
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(-1).NumWorkers() <= 0 {
		t.Fatal("default pool must have at least one worker")
	}
	if NewPool(3).NumWorkers() != 3 {
		t.Fatal("explicit worker count not honored")
	}
}

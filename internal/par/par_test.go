package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunkCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 28, 100, 1023} {
		for _, parts := range []int{1, 2, 3, 7, 28, 56} {
			next := 0
			for tid := 0; tid < parts; tid++ {
				lo, hi := Chunk(n, parts, tid)
				if lo != next {
					t.Fatalf("n=%d parts=%d tid=%d: lo=%d want %d", n, parts, tid, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d parts=%d tid=%d: hi=%d < lo=%d", n, parts, tid, hi, lo)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d parts=%d: coverage ends at %d", n, parts, next)
			}
		}
	}
}

func TestChunkBalance(t *testing.T) {
	// Chunks differ in size by at most 1.
	prop := func(n uint16, parts uint8) bool {
		nn, pp := int(n), int(parts)
		if pp == 0 {
			pp = 1
		}
		minSz, maxSz := nn, 0
		for tid := 0; tid < pp; tid++ {
			lo, hi := Chunk(nn, pp, tid)
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkDefaultParts(t *testing.T) {
	lo, hi := Chunk(10, 0, 3)
	if lo != 0 || hi != 10 {
		t.Fatalf("parts<=0 should return full range, got [%d,%d)", lo, hi)
	}
}

func TestForNVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		p := NewPool(workers)
		const n = 1000
		counts := make([]int32, n)
		p.ForN(n, func(tid, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForNSmallN(t *testing.T) {
	p := NewPool(8)
	var visited int32
	p.ForN(1, func(tid, lo, hi int) {
		atomic.AddInt32(&visited, int32(hi-lo))
	})
	if visited != 1 {
		t.Fatalf("visited %d, want 1", visited)
	}
	p.ForN(0, func(tid, lo, hi int) {
		atomic.AddInt32(&visited, int32(hi-lo))
	})
	if visited != 1 {
		t.Fatalf("n=0 must visit nothing")
	}
}

func TestForEachWorkerRunsAll(t *testing.T) {
	p := NewPool(6)
	seen := make([]int32, 6)
	p.ForEachWorker(func(tid, workers int) {
		if workers != 6 {
			t.Errorf("workers=%d want 6", workers)
		}
		atomic.AddInt32(&seen[tid], 1)
	})
	for tid, c := range seen {
		if c != 1 {
			t.Fatalf("tid %d ran %d times", tid, c)
		}
	}
}

func TestRun2DCoversGrid(t *testing.T) {
	p := NewPool(4)
	const rows, cols = 13, 7
	var grid [rows][cols]int32
	p.Run2D(rows, cols, func(tid, r, c int) {
		atomic.AddInt32(&grid[r][c], 1)
	})
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if grid[r][c] != 1 {
				t.Fatalf("cell (%d,%d) visited %d times", r, c, grid[r][c])
			}
		}
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(-1).NumWorkers() <= 0 {
		t.Fatal("default pool must have at least one worker")
	}
	if NewPool(3).NumWorkers() != 3 {
		t.Fatal("explicit worker count not honored")
	}
}

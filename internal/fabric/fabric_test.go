package fabric

import (
	"math"
	"testing"
)

func TestTwistedHypercubeDegreeAndDiameter(t *testing.T) {
	h := NewTwistedHypercube(22e9)
	// Every socket must have exactly 3 one-hop neighbours (3 UPI links).
	for a := 0; a < 8; a++ {
		oneHop := 0
		for b := 0; b < 8; b++ {
			if a == b {
				continue
			}
			hops := h.Hops(a, b)
			if hops < 1 || hops > 2 {
				t.Fatalf("hops(%d,%d)=%d, diameter must be 2", a, b, hops)
			}
			if hops == 1 {
				oneHop++
			}
		}
		if oneHop != 3 {
			t.Fatalf("socket %d has %d one-hop neighbours, want 3", a, oneHop)
		}
	}
}

func TestTwistedHypercubeRouteValidity(t *testing.T) {
	h := NewTwistedHypercube(22e9)
	for a := 0; a < 8; a++ {
		if len(h.Route(a, a)) != 0 {
			t.Fatal("self route must be empty")
		}
		for b := 0; b < 8; b++ {
			if a == b {
				continue
			}
			r := h.Route(a, b)
			for _, link := range r {
				if link < 0 || link >= 12 {
					t.Fatalf("route(%d,%d) uses invalid link %d", a, b, link)
				}
			}
		}
	}
}

func TestTwistedHypercubeAggregateBandwidth(t *testing.T) {
	// 12 unique UPI links at ~22 GB/s ⇒ ~260 GB/s aggregate (§V-A).
	h := NewTwistedHypercube(22e9)
	links := map[int]bool{}
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if a != b && h.Hops(a, b) == 1 {
				links[h.Route(a, b)[0]] = true
			}
		}
	}
	if len(links) != 12 {
		t.Fatalf("expected 12 unique links, got %d", len(links))
	}
	agg := float64(len(links)) * h.LinkBandwidth(0)
	if agg < 250e9 || agg > 270e9 {
		t.Fatalf("aggregate UPI bandwidth %.0f GB/s, want ≈264", agg/1e9)
	}
}

func TestPhaseTimeSingleFlow(t *testing.T) {
	h := NewTwistedHypercube(22e9)
	// 22 GB over a single direct link should take ~1 s.
	d := PhaseTime(h, []Flow{{Src: 0, Dst: 1, Bytes: 22e9}})
	if math.Abs(d-1) > 0.01 {
		t.Fatalf("single-link phase time %g, want ≈1s", d)
	}
	// Same volume over a 2-hop pair costs the same per link (pipelined
	// model), so duration is similar but latency doubles.
	far := -1
	for b := 1; b < 8; b++ {
		if h.Hops(0, b) == 2 {
			far = b
			break
		}
	}
	d2 := PhaseTime(h, []Flow{{Src: 0, Dst: far, Bytes: 22e9}})
	if d2 < d {
		t.Fatal("2-hop flow cannot be faster than 1-hop")
	}
}

func TestPhaseTimeContention(t *testing.T) {
	h := NewTwistedHypercube(22e9)
	// Two flows sharing the same link take twice as long as one.
	one := PhaseTime(h, []Flow{{Src: 0, Dst: 1, Bytes: 22e9}})
	two := PhaseTime(h, []Flow{
		{Src: 0, Dst: 1, Bytes: 22e9},
		{Src: 0, Dst: 1, Bytes: 22e9},
	})
	if math.Abs(two-2*one)/one > 0.05 {
		t.Fatalf("contention not modeled: one=%g two=%g", one, two)
	}
}

func TestPhaseTimeEmptyAndSelfFlows(t *testing.T) {
	h := NewTwistedHypercube(22e9)
	if PhaseTime(h, nil) != 0 {
		t.Fatal("empty phase must cost 0")
	}
	if PhaseTime(h, []Flow{{Src: 3, Dst: 3, Bytes: 1e9}}) != 0 {
		t.Fatal("self flow must cost 0")
	}
	if PhaseTime(h, []Flow{{Src: 0, Dst: 1, Bytes: 0}}) != 0 {
		t.Fatal("zero-byte flow must cost 0")
	}
}

func TestFatTreeRoutes(t *testing.T) {
	f := NewPrunedFatTree(64, 12.5e9)
	// Same leaf: two host links, no trunk.
	r := f.Route(0, 31)
	if len(r) != 2 {
		t.Fatalf("intra-leaf route length %d, want 2", len(r))
	}
	for _, l := range r {
		if l == 64 {
			t.Fatal("intra-leaf route must not use trunk")
		}
	}
	// Cross leaf: host up, trunk, host down.
	r = f.Route(0, 63)
	if len(r) != 3 || r[1] < 128 {
		t.Fatalf("cross-leaf route %v, want host-trunk-host", r)
	}
	if len(f.Route(5, 5)) != 0 {
		t.Fatal("self route must be empty")
	}
}

func TestFatTreePruning(t *testing.T) {
	f := NewPrunedFatTree(64, 12.5e9)
	// Bisection = trunk = 16 links ⇒ 200 GB/s (§V-B).
	if math.Abs(f.Bisection()-200e9) > 1e9 {
		t.Fatalf("bisection %.0f GB/s, want 200", f.Bisection()/1e9)
	}
	// All 32 sockets of leaf 0 sending cross-leaf at once must be limited by
	// the 2:1 pruned trunk, i.e. take about twice as long as the same
	// traffic spread within the leaf.
	var cross, intra []Flow
	for s := 0; s < 32; s++ {
		cross = append(cross, Flow{Src: s, Dst: 32 + s, Bytes: 1e9})
		intra = append(intra, Flow{Src: s, Dst: (s + 16) % 32, Bytes: 1e9})
	}
	tc := PhaseTime(f, cross)
	ti := PhaseTime(f, intra)
	ratio := tc / ti
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("trunk pruning ratio %.2f, want ≈2 (cross=%g intra=%g)", ratio, tc, ti)
	}
}

func TestFatTreeLatencyAndOverhead(t *testing.T) {
	f := NewPrunedFatTree(64, 12.5e9)
	if f.Latency(0, 1) != 1e-6 || f.Latency(0, 63) != 2e-6 {
		t.Fatal("latency model wrong")
	}
	if f.CopyOverhead() <= 1 {
		t.Fatal("NIC fabric must have copy overhead > 1 (§V-C)")
	}
	h := NewTwistedHypercube(22e9)
	if h.CopyOverhead() != 1 {
		t.Fatal("UPI non-temporal stores have no copy overhead")
	}
}

func TestFatTreeSmallConfigs(t *testing.T) {
	for _, n := range []int{1, 2, 8, 26, 32} {
		f := NewPrunedFatTree(n, 12.5e9)
		if f.NumSockets() != n {
			t.Fatalf("NumSockets=%d want %d", f.NumSockets(), n)
		}
		if n > 1 {
			if d := PhaseTime(f, []Flow{{Src: 0, Dst: n - 1, Bytes: 12.5e9}}); d <= 0 {
				t.Fatal("transfer must take time")
			}
		}
	}
	if !math.IsInf(NewPrunedFatTree(16, 12.5e9).Bisection(), 1) {
		t.Fatal("single-leaf system is non-blocking")
	}
}

func TestFatTreeBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64 sockets")
		}
	}()
	NewPrunedFatTree(65, 12.5e9)
}

func TestDegradedLinkBecomesBottleneck(t *testing.T) {
	base := NewPrunedFatTree(8, 12.5e9)
	// Slow socket 3's uplink to 10% of nominal.
	deg := NewDegraded(base, map[int]float64{3: 0.1})
	flows := []Flow{{Src: 3, Dst: 5, Bytes: 1e9}}
	healthy := PhaseTime(base, flows)
	broken := PhaseTime(deg, flows)
	if broken < 9*healthy {
		t.Fatalf("degraded link not limiting: %.3g vs %.3g", broken, healthy)
	}
	// Traffic avoiding the bad link is unaffected.
	other := []Flow{{Src: 1, Dst: 2, Bytes: 1e9}}
	if PhaseTime(deg, other) != PhaseTime(base, other) {
		t.Fatal("unrelated traffic affected by degradation")
	}
	if deg.Name() == base.Name() {
		t.Fatal("degraded topology should be labeled")
	}
}

func TestDegradedDragsCollectives(t *testing.T) {
	// A single slow UPI link must slow any alltoall phase that crosses it —
	// the all-links-used pairwise exchange always does on 8 sockets.
	base := NewTwistedHypercube(22e9)
	deg := NewDegraded(base, map[int]float64{0: 0.25})
	var flows []Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, Flow{Src: i, Dst: i ^ 1, Bytes: 1e8})
	}
	if PhaseTime(deg, flows) <= PhaseTime(base, flows) {
		t.Fatal("alltoall phase must slow through a degraded link")
	}
}

// Package fabric models the two interconnects of §V at link granularity:
// the UPI twisted hypercube of the 8-socket Inspur TS860M5 node (Fig. 3) and
// the Intel OmniPath pruned fat-tree of the 64-socket cluster (Fig. 4).
// Collective cost estimation works by placing flows on routes and charging
// the bottleneck link — which is what makes, e.g., the twisted hypercube's
// 2-hop pairs limit alltoall scaling from 4 to 8 sockets (Fig. 15).
package fabric

import (
	"fmt"
	"math"
)

// Flow is one point-to-point transfer of Bytes from Src to Dst.
type Flow struct {
	Src, Dst int
	Bytes    float64
}

// Topology describes an interconnect between sockets.
type Topology interface {
	// Name labels the topology in experiment output.
	Name() string
	// NumSockets returns the endpoint count.
	NumSockets() int
	// Route returns the link IDs traversed from a to b (empty for a==b).
	Route(a, b int) []int
	// LinkBandwidth returns bytes/s of one direction of link id.
	LinkBandwidth(id int) float64
	// Latency returns the end-to-end latency in seconds between a and b.
	Latency(a, b int) float64
	// CopyOverhead is a multiplier ≥ 1 on bytes that models software copies
	// through the network stack (≈1 for UPI non-temporal stores, >1 for a
	// NIC-based fabric, per §V-C).
	CopyOverhead() float64
}

// PhaseTime returns the duration of a communication phase in which all
// flows proceed concurrently: every flow's bytes are placed on each link of
// its route, and the phase lasts until the most loaded link drains, plus
// the largest path latency. A phase with no flows costs zero.
//
// This convenience entry point allocates a fresh accumulator per call; cost
// models invoked on every simulated collective hold a Scratch and use its
// PhaseTime method instead.
func PhaseTime(t Topology, flows []Flow) float64 {
	var s Scratch
	return s.PhaseTime(t, flows)
}

// Scratch is a reusable link-load accumulator for PhaseTime. Link IDs are
// small dense integers in every modeled topology, so loads live in a slice
// grown monotonically to the largest ID seen; after warmup a phase
// evaluation performs no heap allocation. Not safe for concurrent use.
type Scratch struct {
	load     []float64
	touched  []int // link IDs with non-zero load, for O(flows) reset
	acc      *LoadSet
	accScale float64 // phase multiplicity for accumulation (0 ⇒ 1)
}

// LoadSet aggregates per-link byte loads across phases — one collective's
// total footprint on every link it touches, the record the contention epoch
// shares bandwidth over. Like Scratch it indexes by dense link ID and
// reuses its slices, so accumulating and copying allocate nothing after
// warmup. Not safe for concurrent use.
type LoadSet struct {
	load    []float64
	touched []int
}

// Reset clears the set for reuse, zeroing only the touched entries.
func (ls *LoadSet) Reset() {
	for _, link := range ls.touched {
		ls.load[link] = 0
	}
	ls.touched = ls.touched[:0]
}

// Add accumulates bytes onto link id.
func (ls *LoadSet) Add(link int, bytes float64) {
	for link >= len(ls.load) {
		ls.load = append(ls.load, 0)
	}
	if ls.load[link] == 0 {
		ls.touched = append(ls.touched, link)
	}
	ls.load[link] += bytes
}

// Links returns the IDs with non-zero load. The slice is owned by the set
// and valid until the next Reset.
func (ls *LoadSet) Links() []int { return ls.touched }

// Load returns the accumulated bytes on link id.
func (ls *LoadSet) Load(link int) float64 {
	if link >= len(ls.load) {
		return 0
	}
	return ls.load[link]
}

// CopyFrom resets ls and copies src's loads into it, reusing capacity.
func (ls *LoadSet) CopyFrom(src *LoadSet) {
	ls.Reset()
	for _, link := range src.touched {
		ls.Add(link, src.load[link])
	}
}

// Accumulate directs every subsequent PhaseTime call to also add each
// flow's per-link bytes (copy overhead included) into ls, until called
// again; nil detaches. It returns the previously attached set, so scopes
// that must not pollute the caller's aggregate (e.g. probing candidate
// algorithms before charging the winner) can save and restore. This is the
// hook the contention model uses to collect a collective's whole-operation
// link footprint from the existing multi-phase cost models without
// duplicating them.
func (s *Scratch) Accumulate(ls *LoadSet) *LoadSet {
	prev := s.acc
	s.acc = ls
	return prev
}

// PhaseTimeN charges n identical phases of the given flows: the returned
// duration is n × PhaseTime, and the flows' per-link loads accumulate
// n-fold into any attached LoadSet. Cost models that price "k phases of
// this exchange pattern" by multiplying a single placement must use this
// entry point, or a collective's aggregate link footprint would count only
// one of its phases.
func (s *Scratch) PhaseTimeN(t Topology, flows []Flow, n float64) float64 {
	s.accScale = n
	d := s.PhaseTime(t, flows)
	s.accScale = 0
	return n * d
}

// PhaseTime is the allocation-free (after warmup) variant of the package
// function: the receiver keeps the per-link load table across calls.
func (s *Scratch) PhaseTime(t Topology, flows []Flow) float64 {
	s.touched = s.touched[:0]
	var maxLat float64
	ov := t.CopyOverhead()
	for _, f := range flows {
		if f.Src == f.Dst || f.Bytes <= 0 {
			continue
		}
		for _, link := range t.Route(f.Src, f.Dst) {
			for link >= len(s.load) {
				s.load = append(s.load, 0)
			}
			if s.load[link] == 0 {
				s.touched = append(s.touched, link)
			}
			s.load[link] += f.Bytes * ov
			if s.acc != nil {
				scale := s.accScale
				if scale == 0 {
					scale = 1
				}
				s.acc.Add(link, f.Bytes*ov*scale)
			}
		}
		if l := t.Latency(f.Src, f.Dst); l > maxLat {
			maxLat = l
		}
	}
	var worst float64
	for _, link := range s.touched {
		if d := s.load[link] / t.LinkBandwidth(link); d > worst {
			worst = d
		}
	}
	for _, link := range s.touched {
		s.load[link] = 0
	}
	if worst == 0 {
		return 0
	}
	return worst + maxLat
}

// TwistedHypercube is the 8-socket UPI fabric of Fig. 3: every socket has 3
// UPI links; sockets are arranged so that 3 neighbours are one hop away and
// the remaining 4 are two hops (diameter 2). Each link carries ~22 GB/s per
// direction; 12 unique links give ~260 GB/s aggregate.
type TwistedHypercube struct {
	adj      [8][8]int // link id +1, or 0 if not adjacent
	routeTbl [8][8][]int
	linkBW   float64
}

// NewTwistedHypercube builds the 8-socket twisted hypercube with the given
// per-direction link bandwidth in bytes/s (the paper's UPI ≈ 22e9).
func NewTwistedHypercube(linkBW float64) *TwistedHypercube {
	t := &TwistedHypercube{linkBW: linkBW}
	edges := [][2]int{
		// dimension 0
		{0, 1}, {2, 3}, {4, 5}, {6, 7},
		// dimension 1
		{0, 2}, {1, 3}, {4, 6}, {5, 7},
		// dimension 2, twisted: straight edges (0,4),(2,6) but crossed
		// (1,7),(3,5), which cuts the diameter from 3 to 2.
		{0, 4}, {2, 6}, {1, 7}, {3, 5},
	}
	for id, e := range edges {
		t.adj[e[0]][e[1]] = id + 1
		t.adj[e[1]][e[0]] = id + 1
	}
	// Precompute shortest routes by BFS (diameter is 2, so at most 2 links).
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if a == b {
				continue
			}
			if l := t.adj[a][b]; l != 0 {
				t.routeTbl[a][b] = []int{l - 1}
				continue
			}
			found := false
			for mid := 0; mid < 8 && !found; mid++ {
				if t.adj[a][mid] != 0 && t.adj[mid][b] != 0 {
					t.routeTbl[a][b] = []int{t.adj[a][mid] - 1, t.adj[mid][b] - 1}
					found = true
				}
			}
			if !found {
				panic(fmt.Sprintf("fabric: twisted hypercube diameter >2 between %d and %d", a, b))
			}
		}
	}
	return t
}

// Name implements Topology.
func (t *TwistedHypercube) Name() string { return "UPI twisted hypercube (8S)" }

// NumSockets implements Topology.
func (t *TwistedHypercube) NumSockets() int { return 8 }

// Route implements Topology.
func (t *TwistedHypercube) Route(a, b int) []int { return t.routeTbl[a][b] }

// LinkBandwidth implements Topology.
func (t *TwistedHypercube) LinkBandwidth(int) float64 { return t.linkBW }

// Latency implements Topology: sub-microsecond per UPI hop.
func (t *TwistedHypercube) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	return 0.3e-6 * float64(len(t.routeTbl[a][b]))
}

// CopyOverhead implements Topology: UPI non-temporal full-cacheline stores
// move data without extra software copies (§V-C).
func (t *TwistedHypercube) CopyOverhead() float64 { return 1.0 }

// Hops returns the hop count between two sockets (tests and analysis).
func (t *TwistedHypercube) Hops(a, b int) int { return len(t.routeTbl[a][b]) }

// PrunedFatTree is the 64-socket OPA cluster of Fig. 4: every socket has its
// own 100G adapter; sockets 0..31 hang off leaf switch 0 and 32..63 off leaf
// switch 1; the two leaves connect through a root trunk pruned 2:1 (16
// uplinks for 32 downlinks per leaf).
type PrunedFatTree struct {
	sockets int
	hostBW  float64 // per-adapter bytes/s
	trunkBW float64 // aggregated leaf-root bytes/s
	perLeaf int
	latency float64
	copyOvh float64
	// routeTbl[a*sockets+b] is the precomputed link list of route a→b,
	// all views into one backing array: Route is on the per-flow path of
	// every modeled collective and must not allocate.
	routeTbl [][]int
}

// NewPrunedFatTree builds the OPA cluster model for the given socket count
// (≤ 64). hostBW is the adapter bandwidth (100G ≈ 12.5e9 B/s); the trunk is
// pruned to half the leaf's aggregate host bandwidth (the paper's 2:1, 16
// uplinks for 32 downlinks per leaf).
func NewPrunedFatTree(sockets int, hostBW float64) *PrunedFatTree {
	return NewPrunedFatTreeUplinks(sockets, hostBW, 16)
}

// NewPrunedFatTreeUplinks is NewPrunedFatTree with an explicit per-leaf
// uplink count — the oversubscription knob of the contention sweeps: 32
// uplinks is a non-blocking 1:1 tree, 16 the paper's 2:1 pruning, 8 a 4:1
// trunk, and so on.
func NewPrunedFatTreeUplinks(sockets int, hostBW float64, uplinks int) *PrunedFatTree {
	if sockets < 1 || sockets > 64 {
		panic(fmt.Sprintf("fabric: fat tree supports 1..64 sockets, got %d", sockets))
	}
	if uplinks < 1 {
		panic(fmt.Sprintf("fabric: fat tree needs at least 1 uplink per leaf, got %d", uplinks))
	}
	p := &PrunedFatTree{
		sockets: sockets,
		hostBW:  hostBW,
		trunkBW: float64(uplinks) * hostBW,
		perLeaf: 32,
		latency: 1e-6, // §V-B: 100G connectivity at 1 µs latency
		copyOvh: 1.25, // data is copied through the NIC stack (§V-C)
	}
	p.routeTbl = make([][]int, sockets*sockets)
	backing := make([]int, 0, 3*sockets*sockets)
	for a := 0; a < sockets; a++ {
		for b := 0; b < sockets; b++ {
			if a == b {
				continue
			}
			start := len(backing)
			backing = append(backing, p.upLink(a))
			if p.leafOf(a) != p.leafOf(b) {
				backing = append(backing, p.trunkLink(p.leafOf(a)))
			}
			backing = append(backing, p.downLink(b))
			p.routeTbl[a*sockets+b] = backing[start:len(backing):len(backing)]
		}
	}
	return p
}

// Link IDs (OPA links are full duplex, so each direction is its own
// resource): id s in [0, sockets) is socket s's uplink (socket→leaf);
// sockets+s is its downlink (leaf→socket); 2*sockets and 2*sockets+1 are the
// two directions of the pruned root trunk.
func (p *PrunedFatTree) upLink(s int) int   { return s }
func (p *PrunedFatTree) downLink(s int) int { return p.sockets + s }
func (p *PrunedFatTree) trunkLink(fromLeaf int) int {
	return 2*p.sockets + fromLeaf
}

func (p *PrunedFatTree) leafOf(s int) int { return s / p.perLeaf }

// Name implements Topology.
func (p *PrunedFatTree) Name() string { return "OPA pruned fat-tree (64S)" }

// NumSockets implements Topology.
func (p *PrunedFatTree) NumSockets() int { return p.sockets }

// Route implements Topology.
func (p *PrunedFatTree) Route(a, b int) []int {
	return p.routeTbl[a*p.sockets+b]
}

// LinkBandwidth implements Topology.
func (p *PrunedFatTree) LinkBandwidth(id int) float64 {
	if id >= 2*p.sockets {
		return p.trunkBW
	}
	return p.hostBW
}

// Latency implements Topology.
func (p *PrunedFatTree) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	if p.leafOf(a) == p.leafOf(b) {
		return p.latency
	}
	return 2 * p.latency
}

// CopyOverhead implements Topology.
func (p *PrunedFatTree) CopyOverhead() float64 { return p.copyOvh }

// Bisection returns the bisection bandwidth of the configured system in
// bytes/s (tests compare it against the paper's 200 GB/s between leaves).
func (p *PrunedFatTree) Bisection() float64 {
	if p.sockets <= p.perLeaf {
		return math.Inf(1) // single leaf, non-blocking
	}
	return p.trunkBW
}

// TrunkLinks returns the link IDs of the pruned root trunk's two
// directions, or nil when the configured system fits a single leaf and no
// route crosses the trunk. The failure-injection and contention sweeps use
// these to degrade or oversubscribe the shared bottleneck by ID.
func (p *PrunedFatTree) TrunkLinks() []int {
	if p.sockets <= p.perLeaf {
		return nil
	}
	return []int{p.trunkLink(0), p.trunkLink(1)}
}

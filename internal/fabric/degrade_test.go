package fabric

import (
	"math"
	"testing"
)

// mustPanic runs f and fails the test unless it panics.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}

func TestNewDegradedValidatesFactors(t *testing.T) {
	base := NewPrunedFatTree(64, 12.5e9)
	// The documented domain is (0, 1]: a zero/negative factor used to be
	// silently ignored by the bandwidth lookup and a factor > 1 sped the
	// link up — both now panic at construction.
	mustPanic(t, "factor 0", func() { NewDegraded(base, map[int]float64{3: 0}) })
	mustPanic(t, "negative factor", func() { NewDegraded(base, map[int]float64{3: -0.5}) })
	mustPanic(t, "factor > 1", func() { NewDegraded(base, map[int]float64{3: 1.5}) })
	// Boundary and interior values are fine.
	deg := NewDegraded(base, map[int]float64{3: 1.0, 4: 0.25})
	if bw := deg.LinkBandwidth(4); bw != 0.25*base.LinkBandwidth(4) {
		t.Fatalf("factor 0.25 not applied: %g", bw)
	}
	if bw := deg.LinkBandwidth(3); bw != base.LinkBandwidth(3) {
		t.Fatalf("factor 1.0 must be identity: %g", bw)
	}
}

func TestDegradedBisectionSeesDerating(t *testing.T) {
	base := NewPrunedFatTree(64, 12.5e9)
	trunk := base.TrunkLinks()
	if len(trunk) != 2 {
		t.Fatalf("64-socket tree must expose 2 trunk directions, got %v", trunk)
	}
	// Derate one trunk direction to 40%: the embedded PrunedFatTree's
	// concrete Bisection would still report the healthy 200 GB/s; the
	// wrapper must report the worse derated direction.
	deg := NewDegraded(base, map[int]float64{trunk[0]: 0.4})
	want := 0.4 * base.Bisection()
	if got := deg.Bisection(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("degraded bisection %g, want %g (healthy %g)", got, want, base.Bisection())
	}
	// Stacked wrappers compose factors.
	deg2 := NewDegraded(deg, map[int]float64{trunk[0]: 0.5})
	if got, want := deg2.Bisection(), 0.2*base.Bisection(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("stacked degraded bisection %g, want %g", got, want)
	}
	// A non-trunk derating leaves the cut alone.
	if got := NewDegraded(base, map[int]float64{0: 0.1}).Bisection(); got != base.Bisection() {
		t.Fatalf("uplink derating changed bisection: %g", got)
	}
	// Single-leaf trees stay non-blocking through the wrapper.
	small := NewDegraded(NewPrunedFatTree(16, 12.5e9), map[int]float64{0: 0.5})
	if !math.IsInf(small.Bisection(), 1) {
		t.Fatal("degraded single-leaf tree must stay non-blocking")
	}
	// Asking a bisection of a topology that has none is a bug, not a zero.
	mustPanic(t, "hypercube bisection", func() {
		NewDegraded(NewTwistedHypercube(22e9), map[int]float64{0: 0.5}).Bisection()
	})
}

func TestDegradedHopsForwarding(t *testing.T) {
	deg := NewDegraded(NewTwistedHypercube(22e9), map[int]float64{0: 0.5})
	base := NewTwistedHypercube(22e9)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if deg.Hops(a, b) != base.Hops(a, b) {
				t.Fatalf("hops(%d,%d) changed under derating", a, b)
			}
		}
	}
}

func TestPrunedFatTreeUplinks(t *testing.T) {
	// The default 16-uplink tree is the paper's 2:1 pruning; fewer uplinks
	// oversubscribe the trunk proportionally.
	full := NewPrunedFatTreeUplinks(64, 12.5e9, 32)
	if math.Abs(full.Bisection()-32*12.5e9) > 1e-3 {
		t.Fatalf("32-uplink bisection %g, want non-blocking 400 GB/s", full.Bisection())
	}
	if def := NewPrunedFatTree(64, 12.5e9); def.Bisection() != NewPrunedFatTreeUplinks(64, 12.5e9, 16).Bisection() {
		t.Fatalf("default tree must equal 16 uplinks: %g", def.Bisection())
	}
	quarter := NewPrunedFatTreeUplinks(64, 12.5e9, 4)
	if math.Abs(quarter.Bisection()-4*12.5e9) > 1e-3 {
		t.Fatalf("4-uplink bisection %g, want 50 GB/s", quarter.Bisection())
	}
	// The trunk paces cross-leaf phases in proportion.
	var cross []Flow
	for s := 0; s < 32; s++ {
		cross = append(cross, Flow{Src: s, Dst: 32 + s, Bytes: 1e9})
	}
	t16 := PhaseTime(NewPrunedFatTreeUplinks(64, 12.5e9, 16), cross)
	t4 := PhaseTime(quarter, cross)
	if ratio := t4 / t16; ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4x oversubscription should pace ≈4x: got %.2f", ratio)
	}
	mustPanic(t, "zero uplinks", func() { NewPrunedFatTreeUplinks(64, 12.5e9, 0) })
}

func TestScratchAccumulate(t *testing.T) {
	topo := NewPrunedFatTree(64, 12.5e9)
	flows := []Flow{{Src: 0, Dst: 63, Bytes: 1e9}} // up, trunk, down
	var s Scratch
	var ls LoadSet
	if prev := s.Accumulate(&ls); prev != nil {
		t.Fatal("fresh scratch must have no accumulator")
	}
	one := s.PhaseTime(topo, flows)
	links := append([]int(nil), ls.Links()...)
	if len(links) != 3 {
		t.Fatalf("cross-leaf flow must touch 3 links, got %v", links)
	}
	ov := topo.CopyOverhead()
	for _, l := range links {
		if got := ls.Load(l); math.Abs(got-1e9*ov) > 1 {
			t.Fatalf("link %d load %g, want %g", l, got, 1e9*ov)
		}
	}
	// PhaseTimeN scales both the returned time and the accumulated loads.
	ls.Reset()
	n := s.PhaseTimeN(topo, flows, 5)
	if math.Abs(n-5*one) > 1e-15 {
		t.Fatalf("PhaseTimeN time %g, want %g", n, 5*one)
	}
	for _, l := range ls.Links() {
		if got := ls.Load(l); math.Abs(got-5e9*ov) > 1 {
			t.Fatalf("PhaseTimeN link %d load %g, want %g", l, got, 5e9*ov)
		}
	}
	// Detach: further phases accumulate nowhere; prev round-trips.
	if prev := s.Accumulate(nil); prev != &ls {
		t.Fatal("Accumulate must return the previous set")
	}
	before := ls.Load(links[0])
	s.PhaseTime(topo, flows)
	if ls.Load(links[0]) != before {
		t.Fatal("detached accumulator must not collect loads")
	}
	// CopyFrom reproduces loads and touched set.
	var cp LoadSet
	cp.CopyFrom(&ls)
	for _, l := range ls.Links() {
		if cp.Load(l) != ls.Load(l) {
			t.Fatalf("CopyFrom mismatch on link %d", l)
		}
	}
}

package fabric

import (
	"fmt"
	"math"
)

// Degraded wraps a Topology with per-link bandwidth derating — the
// failure-injection hook: a flapping link, a misseated cable, or a switch
// port stuck at a lower rate. Routes are unchanged (the fabric does not
// reroute), so degraded links become bottlenecks exactly as they do on a
// real cluster where a single slow link drags every collective that
// crosses it.
type Degraded struct {
	Topology
	// Factors maps link id → bandwidth multiplier in (0, 1].
	Factors map[int]float64
}

// NewDegraded wraps topo, derating the given links. Factors must lie in
// (0, 1]: a non-positive factor would silently disable the derating and a
// factor above 1 would speed the link up — both almost certainly a typo in
// a failure scenario, so both panic.
func NewDegraded(topo Topology, factors map[int]float64) *Degraded {
	for id, f := range factors {
		if f <= 0 || f > 1 {
			panic(fmt.Sprintf("fabric: NewDegraded factor %g for link %d outside (0, 1]", f, id))
		}
	}
	return &Degraded{Topology: topo, Factors: factors}
}

// LinkBandwidth implements Topology.
func (d *Degraded) LinkBandwidth(id int) float64 {
	bw := d.Topology.LinkBandwidth(id)
	if f, ok := d.Factors[id]; ok {
		return bw * f
	}
	return bw
}

// Name implements Topology.
func (d *Degraded) Name() string { return d.Topology.Name() + " (degraded)" }

// Bisection forwards PrunedFatTree.Bisection through the wrapper with the
// derating applied: the embedded Topology's concrete method would report
// the healthy trunk, so code that type-asserts for Bisection on a degraded
// tree would silently see undegraded numbers. The reported cut is the
// worse direction of the (possibly stacked) derated trunk. Wrapping a
// topology without a bisection notion panics — asking is a bug.
func (d *Degraded) Bisection() float64 {
	topo := d.Topology
	for {
		dd, ok := topo.(*Degraded)
		if !ok {
			break
		}
		topo = dd.Topology
	}
	p, ok := topo.(*PrunedFatTree)
	if !ok {
		panic(fmt.Sprintf("fabric: Degraded.Bisection: wrapped topology %T has no bisection", topo))
	}
	trunk := p.TrunkLinks()
	if trunk == nil {
		return math.Inf(1) // single leaf, non-blocking
	}
	bw := math.Inf(1)
	for _, id := range trunk {
		// d.LinkBandwidth composes every Degraded layer's factors.
		if b := d.LinkBandwidth(id); b < bw {
			bw = b
		}
	}
	return bw
}

// Hops returns the hop count between two sockets. Derating changes link
// speeds, never routes, so this simply counts the unchanged route —
// keeping TwistedHypercube.Hops-style analyses correct through the
// wrapper instead of unreachable behind the embedded interface.
func (d *Degraded) Hops(a, b int) int {
	if a == b {
		return 0
	}
	return len(d.Route(a, b))
}

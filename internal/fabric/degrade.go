package fabric

// Degraded wraps a Topology with per-link bandwidth derating — the
// failure-injection hook: a flapping link, a misseated cable, or a switch
// port stuck at a lower rate. Routes are unchanged (the fabric does not
// reroute), so degraded links become bottlenecks exactly as they do on a
// real cluster where a single slow link drags every collective that
// crosses it.
type Degraded struct {
	Topology
	// Factors maps link id → bandwidth multiplier in (0, 1].
	Factors map[int]float64
}

// NewDegraded wraps topo, derating the given links.
func NewDegraded(topo Topology, factors map[int]float64) *Degraded {
	return &Degraded{Topology: topo, Factors: factors}
}

// LinkBandwidth implements Topology.
func (d *Degraded) LinkBandwidth(id int) float64 {
	bw := d.Topology.LinkBandwidth(id)
	if f, ok := d.Factors[id]; ok && f > 0 {
		return bw * f
	}
	return bw
}

// Name implements Topology.
func (d *Degraded) Name() string { return d.Topology.Name() + " (degraded)" }

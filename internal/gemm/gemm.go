// Package gemm implements the matrix-multiplication engines behind the MLP
// layers: the batch-reduce GEMM micro-kernel and the blocked fully-connected
// kernels of Algorithm 5 (forward, backward-by-data, backward-by-weights),
// plus the two baselines the paper's Fig. 5 compares against (a Facebook
// style thread-blocked GEMM and a PyTorch/MKL style large multithreaded
// GEMM).
//
// All fast paths operate on the blocked layouts from internal/tensor:
//
//	weights     W  [Kb][Cb][bc][bk]
//	activations X  [Cb][Nb][bn][bc]
//	outputs     Y  [Kb][Nb][bn][bk]   (the Acts layout of the next layer)
package gemm

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/tensor"
)

// BatchReduceKernel performs the batch-reduce GEMM micro-kernel:
//
//	out[bn][bk] += Σ_i  B_i(bn×bc) · A_i(bc×bk)
//
// where A_i are weight tiles (input-feature major, output contiguous) and
// B_i are activation tiles (sample major, input-feature contiguous). This is
// the JIT-ed kernel of the paper in pure Go: the inner loop broadcasts one
// input scalar against a contiguous run of bk outputs, which the compiler
// vectorizes after bounds-check elimination.
//
// If zeroOut is true the output tile is cleared before accumulation.
func BatchReduceKernel(aTiles, bTiles [][]float32, out []float32, bn, bc, bk int, zeroOut bool) {
	if zeroOut {
		for i := range out {
			out[i] = 0
		}
	}
	for t := range aTiles {
		a := aTiles[t]
		b := bTiles[t]
		for ni := 0; ni < bn; ni++ {
			bRow := b[ni*bc : ni*bc+bc]
			yRow := out[ni*bk : ni*bk+bk]
			// Unroll the reduction dimension 4-wide: four broadcast
			// multiply-adds per output store, which is what keeps the
			// scalar kernel from being store-bound.
			ci := 0
			for ; ci+4 <= bc; ci += 4 {
				x0, x1, x2, x3 := bRow[ci], bRow[ci+1], bRow[ci+2], bRow[ci+3]
				if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
					continue
				}
				a0 := a[ci*bk : ci*bk+bk]
				a1 := a[(ci+1)*bk : (ci+1)*bk+bk]
				a2 := a[(ci+2)*bk : (ci+2)*bk+bk]
				a3 := a[(ci+3)*bk : (ci+3)*bk+bk]
				for ki := range yRow {
					yRow[ki] += x0*a0[ki] + x1*a1[ki] + x2*a2[ki] + x3*a3[ki]
				}
			}
			for ; ci < bc; ci++ {
				x := bRow[ci]
				if x == 0 {
					continue
				}
				aRow := a[ci*bk : ci*bk+bk]
				for ki := range yRow {
					yRow[ki] += x * aRow[ki]
				}
			}
		}
	}
}

// Forward computes Y = X · Wᵀ over blocked tensors (logical Y[N×K] from
// X[N×C] and W[K×C]) following Algorithm 5: each worker owns a set of output
// blocks, gathers the A/B tile pointer lists over the reduction dimension
// Cb, and issues one batch-reduce GEMM per output block.
func Forward(p *par.Pool, w *tensor.Weights, x *tensor.Acts, y *tensor.Acts) {
	if x.C != w.C || x.BC != w.BC {
		panic(fmt.Sprintf("gemm: forward C mismatch x(C=%d,bc=%d) w(C=%d,bc=%d)", x.C, x.BC, w.C, w.BC))
	}
	if y.N != x.N || y.BN != x.BN || y.C != w.K || y.BC != w.BK {
		panic(fmt.Sprintf("gemm: forward Y shape mismatch y(N=%d,C=%d) want (N=%d,K=%d)", y.N, y.C, x.N, w.K))
	}
	bn, bc, bk := x.BN, x.BC, w.BK
	cb := w.Cb
	run2DScratch(p, w.Kb, x.Nb, cb, func(s *Scratch, kb, nb int) {
		for i := 0; i < cb; i++ {
			s.A[i] = w.Block(kb, i)
			s.B[i] = x.Block(i, nb)
		}
		BatchReduceKernel(s.A[:cb], s.B[:cb], y.Block(kb, nb), bn, bc, bk, true)
	})
}

// BackwardData computes dX = dY · W over blocked tensors (logical dX[N×C]
// from dY[N×K] and W[K×C]). It reuses the forward kernel with the logically
// transposed weights; callers that run many iterations should pre-transpose
// once per weight update via tensor.Weights.TransposeBlocked.
func BackwardData(p *par.Pool, wT *tensor.Weights, dy *tensor.Acts, dx *tensor.Acts) {
	// wT is W transposed: logical C×K blocked [Cb][Kb][bk][bc].
	Forward(p, wT, dy, dx)
}

// BackwardWeights computes dW = dYᵀ · X over blocked tensors (logical
// dW[K×C] from dY[N×K] and X[N×C]), reducing over the minibatch dimension.
// The activation layout [Cb][Nb][bn][bc] was chosen precisely so this pass
// sees the same contiguous tile accesses as the forward pass.
func BackwardWeights(p *par.Pool, dy *tensor.Acts, x *tensor.Acts, dw *tensor.Weights) {
	if dy.N != x.N || dy.BN != x.BN {
		panic("gemm: backwardWeights N mismatch")
	}
	if dw.K != dy.C || dw.BK != dy.BC || dw.C != x.C || dw.BC != x.BC {
		panic("gemm: backwardWeights dW shape mismatch")
	}
	bn, bc, bk := x.BN, x.BC, dw.BK
	nb := x.Nb
	p.Run2D(dw.Kb, dw.Cb, func(tid, kb, cb int) {
		out := dw.Block(kb, cb)
		for i := range out {
			out[i] = 0
		}
		for n := 0; n < nb; n++ {
			dyTile := dy.Block(kb, n) // bn×bk, sample major
			xTile := x.Block(cb, n)   // bn×bc, sample major
			// Reduce over the samples 4-wide per output store (see
			// BatchReduceKernel).
			ni := 0
			for ; ni+4 <= bn; ni += 4 {
				dy0 := dyTile[ni*bk : ni*bk+bk]
				dy1 := dyTile[(ni+1)*bk : (ni+1)*bk+bk]
				dy2 := dyTile[(ni+2)*bk : (ni+2)*bk+bk]
				dy3 := dyTile[(ni+3)*bk : (ni+3)*bk+bk]
				for ci := 0; ci < bc; ci++ {
					x0 := xTile[ni*bc+ci]
					x1 := xTile[(ni+1)*bc+ci]
					x2 := xTile[(ni+2)*bc+ci]
					x3 := xTile[(ni+3)*bc+ci]
					if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
						continue
					}
					dwRow := out[ci*bk : ci*bk+bk]
					for ki := range dwRow {
						dwRow[ki] += x0*dy0[ki] + x1*dy1[ki] + x2*dy2[ki] + x3*dy3[ki]
					}
				}
			}
			for ; ni < bn; ni++ {
				dyRow := dyTile[ni*bk : ni*bk+bk]
				xRow := xTile[ni*bc : ni*bc+bc]
				for ci := 0; ci < bc; ci++ {
					xv := xRow[ci]
					if xv == 0 {
						continue
					}
					dwRow := out[ci*bk : ci*bk+bk]
					for ki := range dwRow {
						dwRow[ki] += xv * dyRow[ki]
					}
				}
			}
		}
	})
}

// Scratch holds per-worker tile pointer lists so the hot loop does not
// allocate. Capacity is the reduction block count.
type Scratch struct {
	A, B [][]float32
}

// newScratch returns a Scratch able to hold n tiles.
func newScratch(n int) *Scratch {
	return &Scratch{A: make([][]float32, n), B: make([][]float32, n)}
}

// run2DScratch partitions a rows×cols output-block grid across the pool,
// giving each worker a private Scratch sized for the reduction dimension.
// This realizes line 1 of Algorithm 5 ("assign output work items").
func run2DScratch(p *par.Pool, rows, cols, scratchN int, body func(s *Scratch, row, col int)) {
	total := rows * cols
	p.ForN(total, func(tid, lo, hi int) {
		s := newScratch(scratchN)
		for i := lo; i < hi; i++ {
			body(s, i/cols, i%cols)
		}
	})
}

// Package gemm implements the matrix-multiplication engines behind the MLP
// layers: the batch-reduce GEMM micro-kernel and the blocked fully-connected
// kernels of Algorithm 5 (forward, backward-by-data, backward-by-weights),
// plus the two baselines the paper's Fig. 5 compares against (a Facebook
// style thread-blocked GEMM and a PyTorch/MKL style large multithreaded
// GEMM).
//
// All fast paths operate on the blocked layouts from internal/tensor:
//
//	weights     W  [Kb][Cb][bc][bk]
//	activations X  [Cb][Nb][bn][bc]
//	outputs     Y  [Kb][Nb][bn][bk]   (the Acts layout of the next layer)
//
// The blocked kernels are allocation-free in steady state: per-worker tile
// pointer lists (Scratch) are cached on the pool via par.Attached, and the
// parallel bodies are package-level functions dispatched through
// par.Pool.ForNArg with a persistent per-pool argument block, so repeated
// calls perform zero heap allocations (asserted by the allocation-regression
// tests).
package gemm

import (
	"fmt"
	"sync"

	"repro/internal/par"
	"repro/internal/tensor"
)

// BatchReduceKernel performs the batch-reduce GEMM micro-kernel:
//
//	out[bn][bk] += Σ_i  B_i(bn×bc) · A_i(bc×bk)
//
// where A_i are weight tiles (input-feature major, output contiguous) and
// B_i are activation tiles (sample major, input-feature contiguous). This is
// the JIT-ed kernel of the paper in pure Go: the inner loop broadcasts one
// input scalar against a contiguous run of bk outputs, which the compiler
// vectorizes after bounds-check elimination.
//
// This is the dense variant: like the paper's JIT-ed kernel it carries no
// data-dependent branches, so on dense activations the unrolled FMA stream
// runs unperturbed. Callers whose B tiles are sparse (many exact zeros, e.g.
// one-hot or heavily ReLU-thinned inputs) should select
// BatchReduceKernelSkipZeros instead.
//
// If zeroOut is true the output tile is cleared before accumulation.
func BatchReduceKernel(aTiles, bTiles [][]float32, out []float32, bn, bc, bk int, zeroOut bool) {
	if zeroOut {
		for i := range out {
			out[i] = 0
		}
	}
	for t := range aTiles {
		a := aTiles[t]
		b := bTiles[t]
		for ni := 0; ni < bn; ni++ {
			bRow := b[ni*bc : ni*bc+bc]
			yRow := out[ni*bk : ni*bk+bk]
			// Unroll the reduction dimension 4-wide: four broadcast
			// multiply-adds per output store, which is what keeps the
			// scalar kernel from being store-bound.
			ci := 0
			for ; ci+4 <= bc; ci += 4 {
				x0, x1, x2, x3 := bRow[ci], bRow[ci+1], bRow[ci+2], bRow[ci+3]
				a0 := a[ci*bk : ci*bk+bk]
				a1 := a[(ci+1)*bk : (ci+1)*bk+bk]
				a2 := a[(ci+2)*bk : (ci+2)*bk+bk]
				a3 := a[(ci+3)*bk : (ci+3)*bk+bk]
				for ki := range yRow {
					yRow[ki] += x0*a0[ki] + x1*a1[ki] + x2*a2[ki] + x3*a3[ki]
				}
			}
			for ; ci < bc; ci++ {
				x := bRow[ci]
				aRow := a[ci*bk : ci*bk+bk]
				for ki := range yRow {
					yRow[ki] += x * aRow[ki]
				}
			}
		}
	}
}

// BatchReduceKernelSkipZeros is the sparsity-aware variant of
// BatchReduceKernel: groups of four (and single) activation scalars that are
// exactly zero skip their multiply-add entirely. On activations with real
// sparsity (embedding-style one-hot inputs, interaction gradients) the
// skipped memory traffic wins; on dense activations the checks are pure
// branch overhead, which is why the dense MLP path uses BatchReduceKernel.
func BatchReduceKernelSkipZeros(aTiles, bTiles [][]float32, out []float32, bn, bc, bk int, zeroOut bool) {
	if zeroOut {
		for i := range out {
			out[i] = 0
		}
	}
	for t := range aTiles {
		a := aTiles[t]
		b := bTiles[t]
		for ni := 0; ni < bn; ni++ {
			bRow := b[ni*bc : ni*bc+bc]
			yRow := out[ni*bk : ni*bk+bk]
			ci := 0
			for ; ci+4 <= bc; ci += 4 {
				x0, x1, x2, x3 := bRow[ci], bRow[ci+1], bRow[ci+2], bRow[ci+3]
				if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
					continue
				}
				a0 := a[ci*bk : ci*bk+bk]
				a1 := a[(ci+1)*bk : (ci+1)*bk+bk]
				a2 := a[(ci+2)*bk : (ci+2)*bk+bk]
				a3 := a[(ci+3)*bk : (ci+3)*bk+bk]
				for ki := range yRow {
					yRow[ki] += x0*a0[ki] + x1*a1[ki] + x2*a2[ki] + x3*a3[ki]
				}
			}
			for ; ci < bc; ci++ {
				x := bRow[ci]
				if x == 0 {
					continue
				}
				aRow := a[ci*bk : ci*bk+bk]
				for ki := range yRow {
					yRow[ki] += x * aRow[ki]
				}
			}
		}
	}
}

// Scratch holds per-worker tile pointer lists so the hot loop does not
// allocate. Capacity is the reduction block count; it grows monotonically
// and is cached per (pool, worker) across calls.
type Scratch struct {
	A, B [][]float32
}

// newScratch returns a Scratch able to hold n tiles.
func newScratch(n int) *Scratch {
	return &Scratch{A: make([][]float32, n), B: make([][]float32, n)}
}

// gemmKey identifies this package's per-pool kernel state.
var gemmKey = par.NewStateKey("gemm")

// poolState is the per-pool kernel state: cached per-worker scratch plus the
// argument blocks the static parallel bodies read. mu serializes kernels
// submitted to the same pool from different goroutines (e.g. simulated
// ranks sharing a compute pool).
type poolState struct {
	mu      sync.Mutex
	scratch []*Scratch
	fwd     fwdArgs
	bwdW    bwdWArgs
}

func newPoolState(p *par.Pool) any {
	return &poolState{scratch: make([]*Scratch, p.NumWorkers())}
}

func state(p *par.Pool) *poolState {
	return p.Attached(gemmKey, newPoolState).(*poolState)
}

// worker returns tid's cached Scratch resized to hold n tiles.
func (st *poolState) worker(tid, n int) *Scratch {
	s := st.scratch[tid]
	if s == nil || cap(s.A) < n {
		s = newScratch(n)
		st.scratch[tid] = s
	}
	s.A, s.B = s.A[:n], s.B[:n]
	return s
}

// fwdArgs carries one Forward call's parameters to the static body.
type fwdArgs struct {
	st         *poolState
	w          *tensor.Weights
	x, y       *tensor.Acts
	cols       int // Nb: output-block grid columns
	cb         int // reduction block count
	bn, bc, bk int
	skipZeros  bool
}

func fwdBody(arg any, tid, lo, hi int) {
	a := arg.(*fwdArgs)
	s := a.st.worker(tid, a.cb)
	kern := BatchReduceKernel
	if a.skipZeros {
		kern = BatchReduceKernelSkipZeros
	}
	for i := lo; i < hi; i++ {
		kb, nb := i/a.cols, i%a.cols
		for j := 0; j < a.cb; j++ {
			s.A[j] = a.w.Block(kb, j)
			s.B[j] = a.x.Block(j, nb)
		}
		kern(s.A, s.B, a.y.Block(kb, nb), a.bn, a.bc, a.bk, true)
	}
}

// Forward computes Y = X · Wᵀ over blocked tensors (logical Y[N×K] from
// X[N×C] and W[K×C]) following Algorithm 5: each worker owns a set of output
// blocks, gathers the A/B tile pointer lists over the reduction dimension
// Cb, and issues one batch-reduce GEMM per output block. Dense micro-kernel;
// see ForwardSkipZeros for sparse activations.
func Forward(p *par.Pool, w *tensor.Weights, x *tensor.Acts, y *tensor.Acts) {
	forward(p, w, x, y, false)
}

// ForwardSkipZeros is Forward with the sparsity-aware micro-kernel, for
// callers whose activations carry many exact zeros (embedding-style inputs,
// ReLU-thinned tensors on the backward-by-data path).
func ForwardSkipZeros(p *par.Pool, w *tensor.Weights, x *tensor.Acts, y *tensor.Acts) {
	forward(p, w, x, y, true)
}

func forward(p *par.Pool, w *tensor.Weights, x *tensor.Acts, y *tensor.Acts, skipZeros bool) {
	if x.C != w.C || x.BC != w.BC {
		panic(fmt.Sprintf("gemm: forward C mismatch x(C=%d,bc=%d) w(C=%d,bc=%d)", x.C, x.BC, w.C, w.BC))
	}
	if y.N != x.N || y.BN != x.BN || y.C != w.K || y.BC != w.BK {
		panic(fmt.Sprintf("gemm: forward Y shape mismatch y(N=%d,C=%d) want (N=%d,K=%d)", y.N, y.C, x.N, w.K))
	}
	st := state(p)
	st.mu.Lock()
	defer st.mu.Unlock() // deferred so a panicking kernel cannot wedge the state
	a := &st.fwd
	a.st, a.w, a.x, a.y = st, w, x, y
	a.cols, a.cb = x.Nb, w.Cb
	a.bn, a.bc, a.bk = x.BN, x.BC, w.BK
	a.skipZeros = skipZeros
	p.ForNArg(w.Kb*x.Nb, fwdBody, a)
	a.w, a.x, a.y = nil, nil, nil
}

// BackwardData computes dX = dY · W over blocked tensors (logical dX[N×C]
// from dY[N×K] and W[K×C]). It reuses the forward kernel with the logically
// transposed weights; callers that run many iterations should pre-transpose
// once per weight update via tensor.Weights.TransposeBlocked.
func BackwardData(p *par.Pool, wT *tensor.Weights, dy *tensor.Acts, dx *tensor.Acts) {
	// wT is W transposed: logical C×K blocked [Cb][Kb][bk][bc].
	forward(p, wT, dy, dx, false)
}

// BackwardDataSkipZeros is BackwardData with the sparsity-aware kernel: dY
// downstream of a ReLU carries exact zeros wherever the unit was inactive.
func BackwardDataSkipZeros(p *par.Pool, wT *tensor.Weights, dy *tensor.Acts, dx *tensor.Acts) {
	forward(p, wT, dy, dx, true)
}

// bwdWArgs carries one BackwardWeights call's parameters to the static body.
type bwdWArgs struct {
	dy, x      *tensor.Acts
	dw         *tensor.Weights
	cols       int // Cb: weight-block grid columns
	nb         int
	bn, bc, bk int
	skipZeros  bool
}

func bwdWBody(arg any, tid, lo, hi int) {
	a := arg.(*bwdWArgs)
	for i := lo; i < hi; i++ {
		kb, cb := i/a.cols, i%a.cols
		out := a.dw.Block(kb, cb)
		for j := range out {
			out[j] = 0
		}
		if a.skipZeros {
			bwdWBlockSkipZeros(a, kb, cb, out)
		} else {
			bwdWBlock(a, kb, cb, out)
		}
	}
}

// bwdWBlock accumulates one dW block, dense inner loops.
func bwdWBlock(a *bwdWArgs, kb, cb int, out []float32) {
	bn, bc, bk := a.bn, a.bc, a.bk
	for n := 0; n < a.nb; n++ {
		dyTile := a.dy.Block(kb, n) // bn×bk, sample major
		xTile := a.x.Block(cb, n)   // bn×bc, sample major
		// Reduce over the samples 4-wide per output store (see
		// BatchReduceKernel).
		ni := 0
		for ; ni+4 <= bn; ni += 4 {
			dy0 := dyTile[ni*bk : ni*bk+bk]
			dy1 := dyTile[(ni+1)*bk : (ni+1)*bk+bk]
			dy2 := dyTile[(ni+2)*bk : (ni+2)*bk+bk]
			dy3 := dyTile[(ni+3)*bk : (ni+3)*bk+bk]
			for ci := 0; ci < bc; ci++ {
				x0 := xTile[ni*bc+ci]
				x1 := xTile[(ni+1)*bc+ci]
				x2 := xTile[(ni+2)*bc+ci]
				x3 := xTile[(ni+3)*bc+ci]
				dwRow := out[ci*bk : ci*bk+bk]
				for ki := range dwRow {
					dwRow[ki] += x0*dy0[ki] + x1*dy1[ki] + x2*dy2[ki] + x3*dy3[ki]
				}
			}
		}
		for ; ni < bn; ni++ {
			dyRow := dyTile[ni*bk : ni*bk+bk]
			xRow := xTile[ni*bc : ni*bc+bc]
			for ci := 0; ci < bc; ci++ {
				xv := xRow[ci]
				dwRow := out[ci*bk : ci*bk+bk]
				for ki := range dwRow {
					dwRow[ki] += xv * dyRow[ki]
				}
			}
		}
	}
}

// bwdWBlockSkipZeros accumulates one dW block skipping all-zero activation
// groups — profitable when X is a ReLU output with real sparsity.
func bwdWBlockSkipZeros(a *bwdWArgs, kb, cb int, out []float32) {
	bn, bc, bk := a.bn, a.bc, a.bk
	for n := 0; n < a.nb; n++ {
		dyTile := a.dy.Block(kb, n)
		xTile := a.x.Block(cb, n)
		ni := 0
		for ; ni+4 <= bn; ni += 4 {
			dy0 := dyTile[ni*bk : ni*bk+bk]
			dy1 := dyTile[(ni+1)*bk : (ni+1)*bk+bk]
			dy2 := dyTile[(ni+2)*bk : (ni+2)*bk+bk]
			dy3 := dyTile[(ni+3)*bk : (ni+3)*bk+bk]
			for ci := 0; ci < bc; ci++ {
				x0 := xTile[ni*bc+ci]
				x1 := xTile[(ni+1)*bc+ci]
				x2 := xTile[(ni+2)*bc+ci]
				x3 := xTile[(ni+3)*bc+ci]
				if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
					continue
				}
				dwRow := out[ci*bk : ci*bk+bk]
				for ki := range dwRow {
					dwRow[ki] += x0*dy0[ki] + x1*dy1[ki] + x2*dy2[ki] + x3*dy3[ki]
				}
			}
		}
		for ; ni < bn; ni++ {
			dyRow := dyTile[ni*bk : ni*bk+bk]
			xRow := xTile[ni*bc : ni*bc+bc]
			for ci := 0; ci < bc; ci++ {
				xv := xRow[ci]
				if xv == 0 {
					continue
				}
				dwRow := out[ci*bk : ci*bk+bk]
				for ki := range dwRow {
					dwRow[ki] += xv * dyRow[ki]
				}
			}
		}
	}
}

// BackwardWeights computes dW = dYᵀ · X over blocked tensors (logical
// dW[K×C] from dY[N×K] and X[N×C]), reducing over the minibatch dimension.
// The activation layout [Cb][Nb][bn][bc] was chosen precisely so this pass
// sees the same contiguous tile accesses as the forward pass. Dense inner
// loops; see BackwardWeightsSkipZeros for sparse activations.
func BackwardWeights(p *par.Pool, dy *tensor.Acts, x *tensor.Acts, dw *tensor.Weights) {
	backwardWeights(p, dy, x, dw, false)
}

// BackwardWeightsSkipZeros is BackwardWeights with the sparsity-aware inner
// loop, for callers whose saved activations carry many exact zeros (e.g.
// post-ReLU hidden activations).
func BackwardWeightsSkipZeros(p *par.Pool, dy *tensor.Acts, x *tensor.Acts, dw *tensor.Weights) {
	backwardWeights(p, dy, x, dw, true)
}

func backwardWeights(p *par.Pool, dy *tensor.Acts, x *tensor.Acts, dw *tensor.Weights, skipZeros bool) {
	if dy.N != x.N || dy.BN != x.BN {
		panic("gemm: backwardWeights N mismatch")
	}
	if dw.K != dy.C || dw.BK != dy.BC || dw.C != x.C || dw.BC != x.BC {
		panic("gemm: backwardWeights dW shape mismatch")
	}
	st := state(p)
	st.mu.Lock()
	defer st.mu.Unlock()
	a := &st.bwdW
	a.dy, a.x, a.dw = dy, x, dw
	a.cols, a.nb = dw.Cb, x.Nb
	a.bn, a.bc, a.bk = x.BN, x.BC, dw.BK
	a.skipZeros = skipZeros
	p.ForNArg(dw.Kb*dw.Cb, bwdWBody, a)
	a.dy, a.x, a.dw = nil, nil, nil
}

package gemm

import (
	"repro/internal/par"
	"repro/internal/tensor"
)

// Backward-pass baselines for the Fig. 5 comparison: the same two
// implementation styles as the forward baselines, applied to the
// backward-by-data (dX = dY·W) and backward-by-weights (dW = dYᵀ·X) passes.

// MKLStyleNN computes dX = dY · W (dX: N×C, dY: N×K, W: K×C) as one large
// row-parallel GEMM without packing.
func MKLStyleNN(p *par.Pool, dy, w, dx *tensor.Dense) {
	if dy.Cols != w.Rows || dx.Rows != dy.Rows || dx.Cols != w.Cols {
		panic("gemm: MKLStyleNN shape mismatch")
	}
	p.ForN(dy.Rows, func(tid, lo, hi int) {
		for n := lo; n < hi; n++ {
			dxRow := dx.Row(n)
			for c := range dxRow {
				dxRow[c] = 0
			}
			dyRow := dy.Row(n)
			for k := 0; k < dy.Cols; k++ {
				g := dyRow[k]
				if g == 0 {
					continue
				}
				wRow := w.Row(k)
				for c := range dxRow {
					dxRow[c] += g * wRow[c]
				}
			}
		}
	})
}

// MKLStyleTN computes dW = dYᵀ · X (dW: K×C, dY: N×K, X: N×C) parallelized
// over output rows (K), the natural large-GEMM decomposition.
func MKLStyleTN(p *par.Pool, dy, x, dw *tensor.Dense) {
	if dy.Rows != x.Rows || dw.Rows != dy.Cols || dw.Cols != x.Cols {
		panic("gemm: MKLStyleTN shape mismatch")
	}
	p.ForN(dw.Rows, func(tid, lo, hi int) {
		for k := lo; k < hi; k++ {
			dwRow := dw.Row(k)
			for c := range dwRow {
				dwRow[c] = 0
			}
			for n := 0; n < dy.Rows; n++ {
				g := dy.At(n, k)
				if g == 0 {
					continue
				}
				xRow := x.Row(n)
				for c := range dwRow {
					dwRow[c] += g * xRow[c]
				}
			}
		}
	})
}

// FBStyleNN computes dX = dY · W with the 2-D tiled decomposition.
func FBStyleNN(p *par.Pool, dy, w, dx *tensor.Dense) {
	if dy.Cols != w.Rows || dx.Rows != dy.Rows || dx.Cols != w.Cols {
		panic("gemm: FBStyleNN shape mismatch")
	}
	const nTile, cTile, kTile = 16, 64, 128
	nBlocks := (dx.Rows + nTile - 1) / nTile
	cBlocks := (dx.Cols + cTile - 1) / cTile
	p.Run2D(cBlocks, nBlocks, func(tid, cb, nb int) {
		n0, n1 := nb*nTile, min((nb+1)*nTile, dx.Rows)
		c0, c1 := cb*cTile, min((cb+1)*cTile, dx.Cols)
		for n := n0; n < n1; n++ {
			row := dx.Row(n)
			for c := c0; c < c1; c++ {
				row[c] = 0
			}
		}
		for k0 := 0; k0 < dy.Cols; k0 += kTile {
			k1 := min(k0+kTile, dy.Cols)
			for n := n0; n < n1; n++ {
				dyRow := dy.Row(n)
				dxRow := dx.Row(n)
				for k := k0; k < k1; k++ {
					g := dyRow[k]
					if g == 0 {
						continue
					}
					wRow := w.Row(k)
					for c := c0; c < c1; c++ {
						dxRow[c] += g * wRow[c]
					}
				}
			}
		}
	})
}

// FBStyleTN computes dW = dYᵀ · X with the 2-D tiled decomposition.
func FBStyleTN(p *par.Pool, dy, x, dw *tensor.Dense) {
	if dy.Rows != x.Rows || dw.Rows != dy.Cols || dw.Cols != x.Cols {
		panic("gemm: FBStyleTN shape mismatch")
	}
	const kTile, cTile = 32, 128
	kBlocks := (dw.Rows + kTile - 1) / kTile
	cBlocks := (dw.Cols + cTile - 1) / cTile
	p.Run2D(kBlocks, cBlocks, func(tid, kb, cb int) {
		k0, k1 := kb*kTile, min((kb+1)*kTile, dw.Rows)
		c0, c1 := cb*cTile, min((cb+1)*cTile, dw.Cols)
		for k := k0; k < k1; k++ {
			row := dw.Row(k)
			for c := c0; c < c1; c++ {
				row[c] = 0
			}
		}
		for n := 0; n < dy.Rows; n++ {
			dyRow := dy.Row(n)
			xRow := x.Row(n)
			for k := k0; k < k1; k++ {
				g := dyRow[k]
				if g == 0 {
					continue
				}
				dwRow := dw.Row(k)
				for c := c0; c < c1; c++ {
					dwRow[c] += g * xRow[c]
				}
			}
		}
	})
}

package gemm

import (
	"repro/internal/par"
	"repro/internal/tensor"
)

// NaiveNT computes Y = X · Wᵀ with a single-threaded triple loop over dense
// row-major matrices (Y: N×K, X: N×C, W: K×C). It is the correctness oracle
// for every fast kernel and the "reference implementation" end of the
// paper's 110× comparison.
func NaiveNT(x, w, y *tensor.Dense) {
	if x.Cols != w.Cols || y.Rows != x.Rows || y.Cols != w.Rows {
		panic("gemm: NaiveNT shape mismatch")
	}
	for n := 0; n < x.Rows; n++ {
		xRow := x.Row(n)
		yRow := y.Row(n)
		for k := 0; k < w.Rows; k++ {
			wRow := w.Row(k)
			var acc float32
			for c := range xRow {
				acc += xRow[c] * wRow[c]
			}
			yRow[k] = acc
		}
	}
}

// NaiveTN computes dW = dYᵀ · X single-threaded (dW: K×C, dY: N×K, X: N×C),
// the oracle for the backward-by-weights pass.
func NaiveTN(dy, x, dw *tensor.Dense) {
	if dy.Rows != x.Rows || dw.Rows != dy.Cols || dw.Cols != x.Cols {
		panic("gemm: NaiveTN shape mismatch")
	}
	dw.Zero()
	for n := 0; n < dy.Rows; n++ {
		dyRow := dy.Row(n)
		xRow := x.Row(n)
		for k := 0; k < dy.Cols; k++ {
			g := dyRow[k]
			if g == 0 {
				continue
			}
			dwRow := dw.Row(k)
			for c := range xRow {
				dwRow[c] += g * xRow[c]
			}
		}
	}
}

// NaiveNN computes dX = dY · W single-threaded (dX: N×C, dY: N×K, W: K×C),
// the oracle for the backward-by-data pass.
func NaiveNN(dy, w, dx *tensor.Dense) {
	if dy.Cols != w.Rows || dx.Rows != dy.Rows || dx.Cols != w.Cols {
		panic("gemm: NaiveNN shape mismatch")
	}
	dx.Zero()
	for n := 0; n < dy.Rows; n++ {
		dyRow := dy.Row(n)
		dxRow := dx.Row(n)
		for k := 0; k < dy.Cols; k++ {
			g := dyRow[k]
			if g == 0 {
				continue
			}
			wRow := w.Row(k)
			for c := range dxRow {
				dxRow[c] += g * wRow[c]
			}
		}
	}
}

// MKLStyleNT computes Y = X · Wᵀ the way the stock PyTorch path does: one
// large multithreaded GEMM over unblocked row-major tensors, parallelized
// over output rows with a modest k-tile for cache reuse but no packing.
// With small minibatches its parallelism and reuse are limited — this is the
// green-bar baseline in Fig. 5.
func MKLStyleNT(p *par.Pool, x, w, y *tensor.Dense) {
	if x.Cols != w.Cols || y.Rows != x.Rows || y.Cols != w.Rows {
		panic("gemm: MKLStyleNT shape mismatch")
	}
	const kTile = 64
	p.ForN(y.Rows, func(tid, lo, hi int) {
		for n := lo; n < hi; n++ {
			xRow := x.Row(n)
			yRow := y.Row(n)
			for k0 := 0; k0 < w.Rows; k0 += kTile {
				k1 := min(k0+kTile, w.Rows)
				for k := k0; k < k1; k++ {
					wRow := w.Row(k)
					var acc float32
					for c := range xRow {
						acc += xRow[c] * wRow[c]
					}
					yRow[k] = acc
				}
			}
		}
	})
}

// FBStyleNT computes Y = X · Wᵀ following the Facebook multisocket MLP code
// the paper benchmarks (blue bars in Fig. 5): thread-aware 2-D blocking of
// the output with serial per-tile GEMM calls over the unblocked layout. It
// reaches efficiency comparable to the batch-reduce kernel but without the
// packed tensor format.
func FBStyleNT(p *par.Pool, x, w, y *tensor.Dense) {
	if x.Cols != w.Cols || y.Rows != x.Rows || y.Cols != w.Rows {
		panic("gemm: FBStyleNT shape mismatch")
	}
	const nTile, kTile, cTile = 16, 64, 128
	nBlocks := (y.Rows + nTile - 1) / nTile
	kBlocks := (y.Cols + kTile - 1) / kTile
	p.Run2D(kBlocks, nBlocks, func(tid, kb, nb int) {
		n0, n1 := nb*nTile, min((nb+1)*nTile, y.Rows)
		k0, k1 := kb*kTile, min((kb+1)*kTile, y.Cols)
		for n := n0; n < n1; n++ {
			yRow := y.Row(n)
			for k := k0; k < k1; k++ {
				yRow[k] = 0
			}
		}
		for c0 := 0; c0 < x.Cols; c0 += cTile {
			c1 := min(c0+cTile, x.Cols)
			for n := n0; n < n1; n++ {
				xRow := x.Row(n)
				yRow := y.Row(n)
				for k := k0; k < k1; k++ {
					wRow := w.Row(k)
					acc := yRow[k]
					for c := c0; c < c1; c++ {
						acc += xRow[c] * wRow[c]
					}
					yRow[k] = acc
				}
			}
		}
	})
}

package gemm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/par"
	"repro/internal/tensor"
)

func randDense(rng *rand.Rand, r, c int) *tensor.Dense {
	d := tensor.NewDense(r, c)
	d.Randomize(rng, 1)
	return d
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := par.NewPool(4)
	for _, tc := range []struct{ n, c, k, bn, bc, bk int }{
		{16, 32, 64, 4, 8, 16},
		{32, 64, 32, 16, 16, 16},
		{8, 8, 8, 8, 8, 8},
		{64, 128, 96, 16, 32, 32},
	} {
		xD := randDense(rng, tc.n, tc.c)
		wD := randDense(rng, tc.k, tc.c)
		want := tensor.NewDense(tc.n, tc.k)
		NaiveNT(xD, wD, want)

		x := tensor.PackActs(xD, tc.bn, tc.bc)
		w := tensor.PackWeights(wD, tc.bk, tc.bc)
		y := tensor.NewActs(tc.n, tc.k, tc.bn, tc.bk)
		Forward(pool, w, x, y)
		if !tensor.AllClose(y.Unpack(), want, 1e-4, 1e-4) {
			t.Fatalf("forward mismatch for %+v (max diff %g)", tc, tensor.MaxAbsDiff(y.Unpack(), want))
		}
	}
}

func TestBackwardDataMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := par.NewPool(4)
	n, c, k := 32, 48, 64
	bn, bc, bk := 8, 16, 16
	dyD := randDense(rng, n, k)
	wD := randDense(rng, k, c)
	want := tensor.NewDense(n, c)
	NaiveNN(dyD, wD, want)

	w := tensor.PackWeights(wD, bk, bc)
	wT := w.TransposeBlocked()
	dy := tensor.PackActs(dyD, bn, bk)
	dx := tensor.NewActs(n, c, bn, bc)
	BackwardData(pool, wT, dy, dx)
	if !tensor.AllClose(dx.Unpack(), want, 1e-4, 1e-4) {
		t.Fatalf("backward-data mismatch (max diff %g)", tensor.MaxAbsDiff(dx.Unpack(), want))
	}
}

func TestBackwardWeightsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := par.NewPool(4)
	n, c, k := 64, 32, 48
	bn, bc, bk := 16, 16, 8
	dyD := randDense(rng, n, k)
	xD := randDense(rng, n, c)
	want := tensor.NewDense(k, c)
	NaiveTN(dyD, xD, want)

	dy := tensor.PackActs(dyD, bn, bk)
	x := tensor.PackActs(xD, bn, bc)
	dw := tensor.NewWeights(k, c, bk, bc)
	BackwardWeights(pool, dy, x, dw)
	if !tensor.AllClose(dw.Unpack(), want, 1e-4, 1e-4) {
		t.Fatalf("backward-weights mismatch (max diff %g)", tensor.MaxAbsDiff(dw.Unpack(), want))
	}
}

func TestReferenceBaselinesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := par.NewPool(3)
	n, c, k := 33, 70, 45 // deliberately non-multiples to exercise edge tiles
	x := randDense(rng, n, c)
	w := randDense(rng, k, c)
	want := tensor.NewDense(n, k)
	NaiveNT(x, w, want)

	got := tensor.NewDense(n, k)
	MKLStyleNT(pool, x, w, got)
	if !tensor.AllClose(got, want, 1e-4, 1e-4) {
		t.Fatal("MKLStyleNT mismatch")
	}
	got.Zero()
	FBStyleNT(pool, x, w, got)
	if !tensor.AllClose(got, want, 1e-4, 1e-4) {
		t.Fatal("FBStyleNT mismatch")
	}
}

func TestBatchReduceKernelAccumulates(t *testing.T) {
	// Two batched tiles must sum; zeroOut=false must accumulate on top.
	bn, bc, bk := 2, 2, 2
	a1 := []float32{1, 0, 0, 1} // identity (bc×bk, ci-major)
	a2 := []float32{2, 0, 0, 2}
	b1 := []float32{1, 2, 3, 4} // bn×bc sample major
	b2 := []float32{1, 1, 1, 1}
	out := make([]float32, bn*bk)
	BatchReduceKernel([][]float32{a1, a2}, [][]float32{b1, b2}, out, bn, bc, bk, true)
	// b1·a1 = b1; b2·a2 = 2*b2 => out = b1 + 2.
	want := []float32{3, 4, 5, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d]=%g want %g", i, out[i], want[i])
		}
	}
	BatchReduceKernel([][]float32{a1}, [][]float32{b1}, out, bn, bc, bk, false)
	if out[0] != 4 {
		t.Fatalf("accumulate failed: out[0]=%g want 4", out[0])
	}
}

func TestForwardPropertyVsNaive(t *testing.T) {
	pool := par.NewPool(2)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bn := []int{2, 4, 8}[rng.Intn(3)]
		bc := []int{2, 4, 8}[rng.Intn(3)]
		bk := []int{2, 4, 8}[rng.Intn(3)]
		n := bn * (1 + rng.Intn(3))
		c := bc * (1 + rng.Intn(3))
		k := bk * (1 + rng.Intn(3))
		xD := randDense(rng, n, c)
		wD := randDense(rng, k, c)
		want := tensor.NewDense(n, k)
		NaiveNT(xD, wD, want)
		y := tensor.NewActs(n, k, bn, bk)
		Forward(pool, tensor.PackWeights(wD, bk, bc), tensor.PackActs(xD, bn, bc), y)
		return tensor.AllClose(y.Unpack(), want, 1e-4, 1e-4)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardShapePanics(t *testing.T) {
	pool := par.NewPool(1)
	w := tensor.NewWeights(8, 8, 4, 4)
	x := tensor.NewActs(8, 16, 4, 4) // C mismatch
	y := tensor.NewActs(8, 8, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Forward(pool, w, x, y)
}

func BenchmarkForwardBlocked1024(b *testing.B) {
	benchForward(b, Forward)
}

func benchForward(b *testing.B, fn func(*par.Pool, *tensor.Weights, *tensor.Acts, *tensor.Acts)) {
	rng := rand.New(rand.NewSource(7))
	pool := par.Default
	n, c, k := 256, 1024, 1024
	x := tensor.PackActs(randDense(rng, n, c), 16, 32)
	w := tensor.PackWeights(randDense(rng, k, c), 32, 32)
	y := tensor.NewActs(n, k, 16, 32)
	b.SetBytes(int64(4 * (n*c + k*c + n*k)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(pool, w, x, y)
	}
	flops := 2 * float64(n) * float64(c) * float64(k)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func TestBackwardBaselinesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pool := par.NewPool(3)
	n, c, k := 37, 53, 29
	dy := randDense(rng, n, k)
	x := randDense(rng, n, c)
	w := randDense(rng, k, c)

	wantDX := tensor.NewDense(n, c)
	NaiveNN(dy, w, wantDX)
	gotDX := tensor.NewDense(n, c)
	MKLStyleNN(pool, dy, w, gotDX)
	if !tensor.AllClose(gotDX, wantDX, 1e-4, 1e-4) {
		t.Fatal("MKLStyleNN mismatch")
	}
	gotDX.Zero()
	FBStyleNN(pool, dy, w, gotDX)
	if !tensor.AllClose(gotDX, wantDX, 1e-4, 1e-4) {
		t.Fatal("FBStyleNN mismatch")
	}

	wantDW := tensor.NewDense(k, c)
	NaiveTN(dy, x, wantDW)
	gotDW := tensor.NewDense(k, c)
	MKLStyleTN(pool, dy, x, gotDW)
	if !tensor.AllClose(gotDW, wantDW, 1e-4, 1e-4) {
		t.Fatal("MKLStyleTN mismatch")
	}
	gotDW.Zero()
	FBStyleTN(pool, dy, x, gotDW)
	if !tensor.AllClose(gotDW, wantDW, 1e-4, 1e-4) {
		t.Fatal("FBStyleTN mismatch")
	}
}

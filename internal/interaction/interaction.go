// Package interaction implements DLRM's feature-interaction operators that
// combine the bottom-MLP output with the embedding-table outputs (§II): the
// trivial Concat op and the default self dot-product op, which computes per
// sample the Gram matrix of the stacked feature vectors — a batched GEMM —
// and keeps the strictly-lower triangle, concatenated after the dense
// features.
//
// Both operators are allocation-free in steady state: per-worker feature
// pointer lists are cached on the operator and the parallel bodies are
// package-level functions dispatched through par.Pool.ForNArg.
package interaction

import (
	"fmt"

	"repro/internal/par"
)

// Op is the interface both interaction operators satisfy: DLRM treats the
// interaction as a pluggable component (§II names concat and the default
// self dot product).
type Op interface {
	// OutputDim returns the per-sample output width.
	OutputDim() int
	// Forward combines the bottom feature and table outputs into out.
	Forward(p *par.Pool, n int, bottom []float32, emb [][]float32, out []float32)
	// Backward distributes dOut into dBottom and dEmb.
	Backward(p *par.Pool, dOut, dBottom []float32, dEmb [][]float32)
}

var (
	_ Op = (*Dot)(nil)
	_ Op = (*Concat)(nil)
)

// dotScratch is one worker's feature/gradient pointer lists, reused across
// calls so the hot loop does not allocate.
type dotScratch struct {
	feats, grads [][]float32
}

// Dot is the self dot-product interaction over S sparse features plus the
// dense feature, all of dimension E. Its forward output per sample is the
// dense feature followed by the (S+1)·S/2 strictly-lower-triangular entries
// of the (S+1)×(S+1) Gram matrix.
type Dot struct {
	S, E int

	// saved inputs for backward, one row per sample
	savedBottom []float32   // N×E
	savedEmb    [][]float32 // S slices of N×E
	n           int

	// per-worker scratch plus the per-call state the static bodies read
	ws         []dotScratch
	curOut     []float32
	curDOut    []float32
	curDBottom []float32
	curDEmb    [][]float32
}

// NewDot returns a Dot interaction for S embedding tables of dimension E.
func NewDot(s, e int) *Dot { return &Dot{S: s, E: e} }

// OutputDim returns E + (S+1)·S/2.
func (d *Dot) OutputDim() int { return d.E + (d.S+1)*d.S/2 }

// NumPairs returns the number of interaction terms (S+1)·S/2.
func (d *Dot) NumPairs() int { return (d.S + 1) * d.S / 2 }

// ensureScratch sizes the per-worker pointer lists for the pool.
func (d *Dot) ensureScratch(workers int) {
	if len(d.ws) >= workers {
		return
	}
	ws := make([]dotScratch, workers)
	copy(ws, d.ws)
	for i := range ws {
		if ws[i].feats == nil {
			ws[i].feats = make([][]float32, d.S+1)
			ws[i].grads = make([][]float32, d.S+1)
		}
	}
	d.ws = ws
}

// dotFwdBody computes the interaction rows for samples [lo, hi).
func dotFwdBody(arg any, tid, lo, hi int) {
	d := arg.(*Dot)
	e, s, od := d.E, d.S, d.OutputDim()
	bottom, emb, out := d.savedBottom, d.savedEmb, d.curOut
	// feats[i] points at row vector i of sample: 0=bottom, 1..S=tables.
	feats := d.ws[tid].feats
	for smp := lo; smp < hi; smp++ {
		feats[0] = bottom[smp*e : (smp+1)*e]
		for t := 0; t < s; t++ {
			feats[t+1] = emb[t][smp*e : (smp+1)*e]
		}
		row := out[smp*od : (smp+1)*od]
		copy(row[:e], feats[0])
		pos := e
		for i := 1; i <= s; i++ {
			fi := feats[i]
			for j := 0; j < i; j++ {
				fj := feats[j]
				var acc float32
				for k := 0; k < e; k++ {
					acc += fi[k] * fj[k]
				}
				row[pos] = acc
				pos++
			}
		}
	}
}

// Forward computes the interaction for a minibatch. bottom is N×E row-major
// (the bottom-MLP output); emb[t] is N×E row-major (table t's bag outputs).
// out must hold N×OutputDim().
func (d *Dot) Forward(p *par.Pool, n int, bottom []float32, emb [][]float32, out []float32) {
	d.check(n, bottom, emb)
	od := d.OutputDim()
	if len(out) != n*od {
		panic(fmt.Sprintf("interaction: out len %d want %d", len(out), n*od))
	}
	d.savedBottom, d.savedEmb, d.n = bottom, emb, n
	d.ensureScratch(p.NumWorkers())
	d.curOut = out
	p.ForNArg(n, dotFwdBody, d)
	d.curOut = nil
}

// dotBwdBody distributes the output gradient for samples [lo, hi).
func dotBwdBody(arg any, tid, lo, hi int) {
	d := arg.(*Dot)
	e, s, od := d.E, d.S, d.OutputDim()
	bottom, emb := d.savedBottom, d.savedEmb
	dOut, dBottom, dEmb := d.curDOut, d.curDBottom, d.curDEmb
	feats, grads := d.ws[tid].feats, d.ws[tid].grads
	for smp := lo; smp < hi; smp++ {
		feats[0] = bottom[smp*e : (smp+1)*e]
		grads[0] = dBottom[smp*e : (smp+1)*e]
		for t := 0; t < s; t++ {
			feats[t+1] = emb[t][smp*e : (smp+1)*e]
			grads[t+1] = dEmb[t][smp*e : (smp+1)*e]
		}
		row := dOut[smp*od : (smp+1)*od]
		// Concat part: dBottom starts as the dense slice of dOut.
		copy(grads[0], row[:e])
		for t := 1; t <= s; t++ {
			g := grads[t]
			for k := range g {
				g[k] = 0
			}
		}
		// Dot part: out[pos] = <f_i, f_j> ⇒ df_i += g·f_j, df_j += g·f_i.
		pos := e
		for i := 1; i <= s; i++ {
			fi, gi := feats[i], grads[i]
			for j := 0; j < i; j++ {
				fj, gj := feats[j], grads[j]
				g := row[pos]
				pos++
				if g == 0 {
					continue
				}
				for k := 0; k < e; k++ {
					gi[k] += g * fj[k]
					gj[k] += g * fi[k]
				}
			}
		}
	}
}

// Backward consumes dOut (N×OutputDim) and writes gradients for the bottom
// feature (dBottom, N×E) and each table output (dEmb[t], N×E). The buffers
// must be preallocated; they are overwritten, not accumulated into.
func (d *Dot) Backward(p *par.Pool, dOut, dBottom []float32, dEmb [][]float32) {
	n, e, s := d.n, d.E, d.S
	od := d.OutputDim()
	if len(dOut) != n*od || len(dBottom) != n*e || len(dEmb) != s {
		panic("interaction: backward size mismatch")
	}
	d.ensureScratch(p.NumWorkers())
	d.curDOut, d.curDBottom, d.curDEmb = dOut, dBottom, dEmb
	p.ForNArg(n, dotBwdBody, d)
	d.curDOut, d.curDBottom, d.curDEmb = nil, nil, nil
}

func (d *Dot) check(n int, bottom []float32, emb [][]float32) {
	if len(bottom) != n*d.E {
		panic(fmt.Sprintf("interaction: bottom len %d want %d", len(bottom), n*d.E))
	}
	if len(emb) != d.S {
		panic(fmt.Sprintf("interaction: got %d tables want %d", len(emb), d.S))
	}
	for t, z := range emb {
		if len(z) != n*d.E {
			panic(fmt.Sprintf("interaction: table %d len %d want %d", t, len(z), n*d.E))
		}
	}
}

// Concat is the simple interaction: per sample, the concatenation of the
// dense feature and all table outputs.
type Concat struct {
	S, E int
	n    int

	// per-call state for the static bodies
	curBottom  []float32
	curEmb     [][]float32
	curOut     []float32
	curDOut    []float32
	curDBottom []float32
	curDEmb    [][]float32
}

// NewConcat returns a Concat interaction for S tables of dimension E.
func NewConcat(s, e int) *Concat { return &Concat{S: s, E: e} }

// OutputDim returns (S+1)·E.
func (c *Concat) OutputDim() int { return (c.S + 1) * c.E }

// concatFwdBody writes [bottom | emb_1 | ... | emb_S] rows for [lo, hi).
func concatFwdBody(arg any, tid, lo, hi int) {
	c := arg.(*Concat)
	od, e := c.OutputDim(), c.E
	bottom, emb, out := c.curBottom, c.curEmb, c.curOut
	for smp := lo; smp < hi; smp++ {
		row := out[smp*od : (smp+1)*od]
		copy(row[:e], bottom[smp*e:(smp+1)*e])
		for t := 0; t < c.S; t++ {
			copy(row[(t+1)*e:(t+2)*e], emb[t][smp*e:(smp+1)*e])
		}
	}
}

// Forward writes [bottom | emb_1 | ... | emb_S] per sample into out
// (N×OutputDim).
func (c *Concat) Forward(p *par.Pool, n int, bottom []float32, emb [][]float32, out []float32) {
	od := c.OutputDim()
	if len(out) != n*od {
		panic("interaction: concat out size mismatch")
	}
	c.n = n
	c.curBottom, c.curEmb, c.curOut = bottom, emb, out
	p.ForNArg(n, concatFwdBody, c)
	c.curBottom, c.curEmb, c.curOut = nil, nil, nil
}

// concatBwdBody splits dOut rows back into dBottom and dEmb for [lo, hi).
func concatBwdBody(arg any, tid, lo, hi int) {
	c := arg.(*Concat)
	od, e := c.OutputDim(), c.E
	dOut, dBottom, dEmb := c.curDOut, c.curDBottom, c.curDEmb
	for smp := lo; smp < hi; smp++ {
		row := dOut[smp*od : (smp+1)*od]
		copy(dBottom[smp*e:(smp+1)*e], row[:e])
		for t := 0; t < c.S; t++ {
			copy(dEmb[t][smp*e:(smp+1)*e], row[(t+1)*e:(t+2)*e])
		}
	}
}

// Backward splits dOut back into dBottom and dEmb.
func (c *Concat) Backward(p *par.Pool, dOut, dBottom []float32, dEmb [][]float32) {
	c.curDOut, c.curDBottom, c.curDEmb = dOut, dBottom, dEmb
	p.ForNArg(c.n, concatBwdBody, c)
	c.curDOut, c.curDBottom, c.curDEmb = nil, nil, nil
}

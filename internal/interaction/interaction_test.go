package interaction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
)

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

func TestDotForwardValues(t *testing.T) {
	// S=2, E=2, N=1, hand-computed.
	d := NewDot(2, 2)
	pool := par.NewPool(1)
	bottom := []float32{1, 2}
	emb := [][]float32{{3, 4}, {5, 6}}
	out := make([]float32, d.OutputDim())
	d.Forward(pool, 1, bottom, emb, out)
	// concat: [1 2], pairs: <e1,b>=3+8=11, <e2,b>=5+12=17, <e2,e1>=15+24=39
	want := []float32{1, 2, 11, 17, 39}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d]=%g want %g (out=%v)", i, out[i], want[i], out)
		}
	}
}

func TestDotOutputDim(t *testing.T) {
	if NewDot(8, 64).OutputDim() != 64+36 {
		t.Fatal("OutputDim wrong for S=8")
	}
	if NewDot(26, 128).OutputDim() != 128+27*26/2 {
		t.Fatal("OutputDim wrong for S=26")
	}
	if NewDot(3, 4).NumPairs() != 6 {
		t.Fatal("NumPairs wrong")
	}
}

// TestDotBackwardNumerically checks the analytic gradients against central
// differences of L = Σ out·coef.
func TestDotBackwardNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := par.NewPool(2)
	const n, s, e = 3, 4, 5
	d := NewDot(s, e)
	bottom := randVec(rng, n*e)
	emb := make([][]float32, s)
	for i := range emb {
		emb[i] = randVec(rng, n*e)
	}
	coef := randVec(rng, n*d.OutputDim())

	lossOf := func() float64 {
		out := make([]float32, n*d.OutputDim())
		d.Forward(pool, n, bottom, emb, out)
		var l float64
		for i := range out {
			l += float64(out[i]) * float64(coef[i])
		}
		return l
	}

	out := make([]float32, n*d.OutputDim())
	d.Forward(pool, n, bottom, emb, out)
	dBottom := make([]float32, n*e)
	dEmb := make([][]float32, s)
	for i := range dEmb {
		dEmb[i] = make([]float32, n*e)
	}
	d.Backward(pool, coef, dBottom, dEmb)

	const eps = 1e-3
	check := func(name string, vec, grad []float32) {
		for trial := 0; trial < 10; trial++ {
			i := rng.Intn(len(vec))
			orig := vec[i]
			vec[i] = orig + eps
			lp := lossOf()
			vec[i] = orig - eps
			lm := lossOf()
			vec[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-float64(grad[i])) > 1e-2*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: numeric %g analytic %g", name, i, num, grad[i])
			}
		}
	}
	check("bottom", bottom, dBottom)
	for ti := range emb {
		check("emb", emb[ti], dEmb[ti])
	}
}

func TestConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := par.NewPool(2)
	const n, s, e = 4, 3, 6
	c := NewConcat(s, e)
	bottom := randVec(rng, n*e)
	emb := make([][]float32, s)
	for i := range emb {
		emb[i] = randVec(rng, n*e)
	}
	out := make([]float32, n*c.OutputDim())
	c.Forward(pool, n, bottom, emb, out)
	// Backward of identity gradient must reproduce the inputs.
	dBottom := make([]float32, n*e)
	dEmb := make([][]float32, s)
	for i := range dEmb {
		dEmb[i] = make([]float32, n*e)
	}
	c.Backward(pool, out, dBottom, dEmb)
	for i := range bottom {
		if dBottom[i] != bottom[i] {
			t.Fatal("concat backward lost bottom values")
		}
	}
	for ti := range emb {
		for i := range emb[ti] {
			if dEmb[ti][i] != emb[ti][i] {
				t.Fatal("concat backward lost table values")
			}
		}
	}
}

func TestDotShapePanics(t *testing.T) {
	d := NewDot(2, 4)
	pool := par.NewPool(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong table count")
		}
	}()
	d.Forward(pool, 1, make([]float32, 4), [][]float32{make([]float32, 4)}, make([]float32, d.OutputDim()))
}

// Package optim implements the optimizers compared in §VII: plain FP32 SGD,
// Split-SGD-BF16 (hi/lo split storage, FP32-accurate update, no master
// weights), quantized SGD (weights kept in a reduced precision such as FP24,
// losing low bits every step), and the classic master-weight mixed-precision
// SGD that Split-SGD makes unnecessary.
//
// Optimizers are per-tensor: a model enumerates its parameter tensors (e.g.
// mlp.MLP.VisitParams) and binds one optimizer instance to each. Step takes
// the gradient tensor for the bound parameters.
package optim

import "repro/internal/bf16"

// Optimizer updates one bound parameter tensor from a gradient tensor.
type Optimizer interface {
	// Step applies one update with learning rate lr.
	Step(grad []float32, lr float32)
	// Name identifies the optimizer variant in experiment output.
	Name() string
	// StateBytes reports optimizer-owned state (excluding the model's own
	// working weights) — the capacity-overhead comparison of §VII.
	StateBytes() int
}

// SGD is the reference FP32 stochastic gradient descent.
type SGD struct {
	Params []float32
}

// NewSGD binds plain SGD to params.
func NewSGD(params []float32) *SGD { return &SGD{Params: params} }

// Step implements Optimizer.
func (s *SGD) Step(grad []float32, lr float32) {
	if len(grad) != len(s.Params) {
		panic("optim: SGD grad length mismatch")
	}
	for i := range s.Params {
		s.Params[i] -= lr * grad[i]
	}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "FP32 SGD" }

// StateBytes implements Optimizer: plain SGD has no extra state.
func (s *SGD) StateBytes() int { return 0 }

// SplitSGD is Split-SGD-BF16 (§VII): the model's working weights hold the
// BF16 (hi) view used by forward/backward, while the optimizer keeps the
// 16 LSBs. The update recomposes exact FP32, applies SGD, re-splits, and
// refreshes the working weights. Total storage equals FP32 training (16+16
// bits), versus 48 bits for FP16+master-weights.
type SplitSGD struct {
	Params []float32 // model working weights, always the BF16 view
	split  *bf16.Split
	// LimitLoTo8Bits enables the §VII ablation that keeps only 8 extra LSBs.
	LimitLoTo8Bits bool
}

// NewSplitSGD binds Split-SGD to params, initializing the split state from
// the current FP32 values and immediately rounding the working weights to
// their BF16 view.
func NewSplitSGD(params []float32) *SplitSGD {
	s := &SplitSGD{Params: params, split: bf16.NewSplit(params)}
	s.split.WriteHiTo(params)
	return s
}

// Step implements Optimizer.
func (s *SplitSGD) Step(grad []float32, lr float32) {
	if len(grad) != len(s.Params) {
		panic("optim: SplitSGD grad length mismatch")
	}
	s.split.SGDStep(grad, lr)
	if s.LimitLoTo8Bits {
		s.split.LoBits8()
	}
	s.split.WriteHiTo(s.Params)
}

// Name implements Optimizer.
func (s *SplitSGD) Name() string {
	if s.LimitLoTo8Bits {
		return "BF16 SplitSGD (8 LSB)"
	}
	return "BF16 SplitSGD"
}

// StateBytes implements Optimizer: the Lo tensor, 2 bytes per weight.
func (s *SplitSGD) StateBytes() int { return 2 * len(s.Params) }

// Exact materializes the exact FP32 weights (hi|lo) into dst, used by tests
// and checkpointing.
func (s *SplitSGD) Exact(dst []float32) { s.split.Compose(dst) }

// QuantizedSGD keeps the weights themselves in a reduced precision: the
// update runs in FP32 on the quantized weights and the result is immediately
// re-quantized, so low-order bits of every update are lost. With
// Quant=bf16.RoundFP24 this is the FP24 (1-8-15) curve of Fig. 16.
type QuantizedSGD struct {
	Params  []float32
	Quant   func(float32) float32
	Variant string
}

// NewQuantizedSGD binds quantized SGD to params, quantizing them in place.
func NewQuantizedSGD(params []float32, quant func(float32) float32, name string) *QuantizedSGD {
	for i := range params {
		params[i] = quant(params[i])
	}
	return &QuantizedSGD{Params: params, Quant: quant, Variant: name}
}

// Step implements Optimizer.
func (q *QuantizedSGD) Step(grad []float32, lr float32) {
	if len(grad) != len(q.Params) {
		panic("optim: QuantizedSGD grad length mismatch")
	}
	for i := range q.Params {
		q.Params[i] = q.Quant(q.Params[i] - lr*grad[i])
	}
}

// Name implements Optimizer.
func (q *QuantizedSGD) Name() string { return q.Variant }

// StateBytes implements Optimizer.
func (q *QuantizedSGD) StateBytes() int { return 0 }

// MasterSGD is the classic mixed-precision scheme Split-SGD replaces: a full
// FP32 master copy is updated and the working weights are its quantized
// image. Storage overhead: +4 bytes per weight (the 200%/3× figure of §VII
// when the working weights are 16-bit).
type MasterSGD struct {
	Params  []float32
	Master  []float32
	Quant   func(float32) float32
	Variant string
}

// NewMasterSGD binds master-weight SGD to params.
func NewMasterSGD(params []float32, quant func(float32) float32, name string) *MasterSGD {
	m := &MasterSGD{
		Params:  params,
		Master:  append([]float32(nil), params...),
		Quant:   quant,
		Variant: name,
	}
	for i := range params {
		params[i] = quant(params[i])
	}
	return m
}

// Step implements Optimizer.
func (m *MasterSGD) Step(grad []float32, lr float32) {
	if len(grad) != len(m.Params) {
		panic("optim: MasterSGD grad length mismatch")
	}
	for i := range m.Master {
		m.Master[i] -= lr * grad[i]
		m.Params[i] = m.Quant(m.Master[i])
	}
}

// Name implements Optimizer.
func (m *MasterSGD) Name() string { return m.Variant }

// StateBytes implements Optimizer: the FP32 master copy.
func (m *MasterSGD) StateBytes() int { return 4 * len(m.Master) }

package optim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bf16"
)

func randSlice(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

func TestSGDStep(t *testing.T) {
	p := []float32{1, 2, 3}
	NewSGD(p).Step([]float32{1, 1, 1}, 0.5)
	want := []float32{0.5, 1.5, 2.5}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("p[%d]=%g want %g", i, p[i], want[i])
		}
	}
}

func TestSplitSGDTracksFP32Exactly(t *testing.T) {
	// The exact (hi|lo) trajectory must equal plain FP32 SGD bit-for-bit,
	// while the working weights are the BF16 rounding of it.
	rng := rand.New(rand.NewSource(1))
	n := 64
	init := randSlice(rng, n)
	ref := append([]float32(nil), init...)
	work := append([]float32(nil), init...)
	s := NewSplitSGD(work)
	refOpt := NewSGD(ref)
	for iter := 0; iter < 100; iter++ {
		g := randSlice(rng, n)
		s.Step(g, 0.01)
		refOpt.Step(g, 0.01)
	}
	exact := make([]float32, n)
	s.Exact(exact)
	for i := range exact {
		if exact[i] != ref[i] {
			t.Fatalf("split trajectory diverged at %d: %g != %g", i, exact[i], ref[i])
		}
		if work[i] != bf16.Round(exact[i]) {
			// Working weights are the truncated-hi view, which differs from
			// RNE rounding; check it is the truncation instead.
			hiOnly := math.Float32frombits(math.Float32bits(exact[i]) &^ 0xFFFF)
			if work[i] != hiOnly {
				t.Fatalf("working weights not the BF16 view at %d", i)
			}
		}
	}
}

func TestSplitSGD8LSBStalls(t *testing.T) {
	work := []float32{1}
	s := NewSplitSGD(work)
	s.LimitLoTo8Bits = true
	for i := 0; i < 500; i++ {
		s.Step([]float32{-1e-7}, 1)
	}
	exact := make([]float32, 1)
	s.Exact(exact)
	if exact[0] != 1 {
		t.Fatalf("8-LSB split should stall on tiny updates, got %g", exact[0])
	}
	full := NewSplitSGD([]float32{1})
	for i := 0; i < 500; i++ {
		full.Step([]float32{-1e-7}, 1)
	}
	full.Exact(exact)
	if exact[0] <= 1 {
		t.Fatal("full split must accumulate tiny updates")
	}
}

func TestQuantizedSGDLosesLowBits(t *testing.T) {
	// FP24 weights cannot accumulate updates below their mantissa
	// resolution relative to the weight magnitude.
	p := []float32{1}
	q := NewQuantizedSGD(p, bf16.RoundFP24, "FP24")
	for i := 0; i < 500; i++ {
		q.Step([]float32{-1e-8}, 1)
	}
	if p[0] != 1 {
		t.Fatalf("FP24 should stall on 1e-8 updates around 1.0, got %g", p[0])
	}
	// But it does accumulate updates above resolution.
	q.Step([]float32{-1e-3}, 1)
	if p[0] <= 1 {
		t.Fatal("FP24 must apply resolvable updates")
	}
}

func TestMasterSGDAccumulatesDespiteQuantizedWeights(t *testing.T) {
	// With a master copy, tiny updates accumulate in FP32 even though the
	// working weights are BF16 — the property that costs 3× storage.
	p := []float32{1}
	m := NewMasterSGD(p, bf16.Round, "BF16+master")
	for i := 0; i < 100000; i++ {
		m.Step([]float32{-1e-7}, 1)
	}
	if m.Master[0] <= 1 {
		t.Fatal("master weights must accumulate")
	}
	if p[0] <= 1 {
		t.Fatal("after enough accumulation the quantized view must move too")
	}
}

func TestStateBytes(t *testing.T) {
	p := randSlice(rand.New(rand.NewSource(2)), 100)
	if NewSGD(append([]float32(nil), p...)).StateBytes() != 0 {
		t.Fatal("SGD state should be 0")
	}
	if NewSplitSGD(append([]float32(nil), p...)).StateBytes() != 200 {
		t.Fatal("SplitSGD state should be 2B/weight")
	}
	if NewMasterSGD(append([]float32(nil), p...), bf16.Round, "m").StateBytes() != 400 {
		t.Fatal("MasterSGD state should be 4B/weight")
	}
}

func TestNames(t *testing.T) {
	p := []float32{1}
	s := NewSplitSGD(append([]float32(nil), p...))
	if s.Name() != "BF16 SplitSGD" {
		t.Fatal("name")
	}
	s.LimitLoTo8Bits = true
	if s.Name() != "BF16 SplitSGD (8 LSB)" {
		t.Fatal("8lsb name")
	}
	if NewQuantizedSGD(append([]float32(nil), p...), bf16.RoundFP24, "FP24 (1-8-15)").Name() != "FP24 (1-8-15)" {
		t.Fatal("quantized name")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGD([]float32{1, 2}).Step([]float32{1}, 0.1)
}

func TestLRScheduleWarmupPlateauDecay(t *testing.T) {
	s := LRSchedule{Base: 1, WarmupSteps: 10, DecayStart: 20, DecaySteps: 10, EndLR: 0.01}
	// Warmup: linear from Base/10 to Base.
	if s.At(0) != 0.1 || s.At(9) != 1 {
		t.Fatalf("warmup wrong: %g, %g", s.At(0), s.At(9))
	}
	// Plateau.
	if s.At(15) != 1 {
		t.Fatalf("plateau wrong: %g", s.At(15))
	}
	// Decay is monotone decreasing, quadratic, and lands at EndLR.
	prev := s.At(20)
	for i := 21; i < 30; i++ {
		cur := s.At(i)
		if cur >= prev {
			t.Fatalf("decay not monotone at %d: %g >= %g", i, cur, prev)
		}
		prev = cur
	}
	if s.At(30) != 0.01 || s.At(1000) != 0.01 {
		t.Fatal("decay must land at EndLR")
	}
}

func TestConstantLR(t *testing.T) {
	s := ConstantLR(0.5)
	for _, step := range []int{0, 7, 1 << 20} {
		if s.At(step) != 0.5 {
			t.Fatal("constant schedule must not vary")
		}
	}
}

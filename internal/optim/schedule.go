package optim

// LRSchedule is the MLPerf DLRM learning-rate policy the benchmark the
// paper proposes uses for its convergence runs (§V-D): linear warmup from
// zero over WarmupSteps, a constant plateau, then polynomial decay of
// degree 2 from DecayStart over DecaySteps down to EndLR.
type LRSchedule struct {
	Base        float32
	WarmupSteps int
	DecayStart  int
	DecaySteps  int
	EndLR       float32
}

// ConstantLR returns a schedule that always yields lr.
func ConstantLR(lr float32) LRSchedule { return LRSchedule{Base: lr} }

// At returns the learning rate for step t (0-based).
func (s LRSchedule) At(t int) float32 {
	if s.WarmupSteps > 0 && t < s.WarmupSteps {
		return s.Base * float32(t+1) / float32(s.WarmupSteps)
	}
	if s.DecaySteps > 0 && t >= s.DecayStart {
		k := t - s.DecayStart
		if k >= s.DecaySteps {
			return s.EndLR
		}
		frac := 1 - float32(k)/float32(s.DecaySteps)
		return s.EndLR + (s.Base-s.EndLR)*frac*frac
	}
	return s.Base
}

// Package data generates the training workloads. The paper uses a random
// dataset for the Small/Large configs and the Criteo Terabyte click logs for
// the MLPerf config; Criteo is not redistributable, so ClickLog is the
// synthetic substitute: categorical features drawn from Zipf distributions
// over each table's rows (reproducing the hot-row contention that drives
// Fig. 7/8's MLPerf results) and labels planted by a logistic teacher over
// latent row scores (so ROC AUC climbs toward a known ceiling, which is what
// Fig. 16's convergence comparison needs).
package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// MiniBatch is one training batch: dense features, one sparse batch per
// embedding table, and binary labels.
type MiniBatch struct {
	N      int
	Dense  *tensor.Dense      // N×D
	Sparse []*embedding.Batch // per table
	Labels []float32          // N
}

// Dataset produces deterministic minibatches by index.
type Dataset interface {
	// Batch materializes minibatch i with n samples.
	Batch(i, n int) *MiniBatch
	// NumTables returns the sparse feature count.
	NumTables() int
	// DenseDim returns the dense feature width.
	DenseDim() int
}

// Random is the uniform synthetic dataset used for the Small and Large
// configurations (§VI-D2): indices uniform over each table, dense features
// standard uniform, labels Bernoulli(1/2). There is nothing to learn; it
// exists to exercise performance.
type Random struct {
	Seed    int64
	D       int // dense features
	Tables  int
	Rows    int // rows per table
	Lookups int // P
}

// NumTables implements Dataset.
func (r *Random) NumTables() int { return r.Tables }

// DenseDim implements Dataset.
func (r *Random) DenseDim() int { return r.D }

// Batch implements Dataset.
func (r *Random) Batch(i, n int) *MiniBatch {
	rng := rand.New(rand.NewSource(r.Seed ^ int64(i)*0x5851F42D4C957F2D))
	mb := &MiniBatch{
		N:      n,
		Dense:  tensor.NewDense(n, r.D),
		Labels: make([]float32, n),
	}
	mb.Dense.Randomize(rng, 1)
	for t := 0; t < r.Tables; t++ {
		mb.Sparse = append(mb.Sparse, embedding.MakeBatch(rng, embedding.Uniform{}, n, r.Lookups, r.Rows))
	}
	for s := 0; s < n; s++ {
		if rng.Float32() > 0.5 {
			mb.Labels[s] = 1
		}
	}
	return mb
}

// ClickLog is the synthetic Criteo-Terabyte substitute. Each table t has a
// latent per-row score u_t[m] ~ N(0, TableSignal); the label of a sample is
// Bernoulli(σ(bias + w·dense + Σ_t mean_s u_t[idx_s])). Indices follow
// Zipf(Skew), dense features are log-normal-ish like click counters.
type ClickLog struct {
	Seed    int64
	D       int
	Rows    []int // per-table row counts (Criteo tables are wildly uneven)
	Lookups int
	Skew    float64 // Zipf exponent, ≈1.05 for click logs

	// Teacher parameters.
	TableSignal float64 // stddev of latent row scores
	DenseSignal float64 // scale of dense teacher weights
	Bias        float64 // prior log-odds (negative: clicks are rare-ish)

	denseW []float64
	// latent scores are generated lazily per (table,row) by hashing so huge
	// tables need no storage.
}

// NewClickLog builds a click-log dataset with sensible teacher defaults.
func NewClickLog(seed int64, d int, rows []int, lookups int) *ClickLog {
	c := &ClickLog{
		Seed: seed, D: d, Rows: rows, Lookups: lookups,
		Skew: 1.05, TableSignal: 0.6, DenseSignal: 0.4, Bias: -0.4,
	}
	rng := rand.New(rand.NewSource(seed))
	c.denseW = make([]float64, d)
	for i := range c.denseW {
		c.denseW[i] = rng.NormFloat64() * c.DenseSignal
	}
	return c
}

// NumTables implements Dataset.
func (c *ClickLog) NumTables() int { return len(c.Rows) }

// DenseDim implements Dataset.
func (c *ClickLog) DenseDim() int { return c.D }

// latent returns the teacher's hidden score for (table, row), computed by
// hashing so it is stable without materializing huge score tables.
func (c *ClickLog) latent(table int, row int32) float64 {
	h := uint64(c.Seed) ^ uint64(table)<<32 ^ uint64(uint32(row))
	// splitmix64
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	// map to approximately N(0,1) via sum of uniforms
	u1 := float64(h&0xFFFFFFFF) / float64(1<<32)
	u2 := float64(h>>32) / float64(1<<32)
	z := math.Sqrt(-2*math.Log(u1+1e-12)) * math.Cos(2*math.Pi*u2)
	return z * c.TableSignal
}

// Batch implements Dataset.
func (c *ClickLog) Batch(i, n int) *MiniBatch {
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5DEECE66D ^ int64(i)*0x5851F42D4C957F2D))
	mb := &MiniBatch{
		N:      n,
		Dense:  tensor.NewDense(n, c.D),
		Labels: make([]float32, n),
	}
	zipf := embedding.Zipf{S: c.Skew}
	for range c.Rows {
		mb.Sparse = append(mb.Sparse, &embedding.Batch{Offsets: make([]int32, n+1)})
	}
	logits := make([]float64, n)
	for s := 0; s < n; s++ {
		logits[s] = c.Bias
		for j := 0; j < c.D; j++ {
			// counter-like features: |N(0,1)| compressed by log1p, centered
			// so the teacher's dense term is ~zero-mean.
			v := math.Log1p(math.Abs(rng.NormFloat64())*3) - 1.2
			mb.Dense.Set(s, j, float32(v))
			logits[s] += c.denseW[j] * v
		}
	}
	for t, rows := range c.Rows {
		b := mb.Sparse[t]
		for s := 0; s < n; s++ {
			b.Offsets[s] = int32(len(b.Indices))
			var acc float64
			for l := 0; l < c.Lookups; l++ {
				idx := zipf.Draw(rng, rows)
				b.Indices = append(b.Indices, idx)
				acc += c.latent(t, idx)
			}
			logits[s] += acc / float64(c.Lookups)
		}
		b.Offsets[n] = int32(len(b.Indices))
	}
	for s := 0; s < n; s++ {
		pCTR := 1 / (1 + math.Exp(-logits[s]))
		if rng.Float64() < pCTR {
			mb.Labels[s] = 1
		}
	}
	return mb
}

// Shard returns the view of mb owned by rank r of R under minibatch
// (data) parallelism: samples [r·N/R, (r+1)·N/R).
func (mb *MiniBatch) Shard(r, R int) *MiniBatch {
	lo := mb.N * r / R
	hi := mb.N * (r + 1) / R
	n := hi - lo
	out := &MiniBatch{N: n, Dense: tensor.NewDense(n, mb.Dense.Cols), Labels: mb.Labels[lo:hi]}
	copy(out.Dense.Data, mb.Dense.Data[lo*mb.Dense.Cols:hi*mb.Dense.Cols])
	for _, b := range mb.Sparse {
		sb := &embedding.Batch{Offsets: make([]int32, n+1)}
		base := b.Offsets[lo]
		sb.Indices = append(sb.Indices, b.Indices[b.Offsets[lo]:b.Offsets[hi]]...)
		for i := 0; i <= n; i++ {
			sb.Offsets[i] = b.Offsets[lo+i] - base
		}
		out.Sparse = append(out.Sparse, sb)
	}
	return out
}

// Validate sanity-checks the batch against table row counts.
func (mb *MiniBatch) Validate(rows []int) error {
	if len(mb.Sparse) != len(rows) {
		return fmt.Errorf("data: %d sparse batches for %d tables", len(mb.Sparse), len(rows))
	}
	if mb.Dense.Rows != mb.N || len(mb.Labels) != mb.N {
		return fmt.Errorf("data: dense/label rows mismatch")
	}
	for t, b := range mb.Sparse {
		if b.NumBags() != mb.N {
			return fmt.Errorf("data: table %d has %d bags want %d", t, b.NumBags(), mb.N)
		}
		if err := b.Validate(rows[t]); err != nil {
			return err
		}
	}
	return nil
}

// CriteoTBRows are the 26 categorical-table cardinalities of the Criteo
// Terabyte dataset as used by the MLPerf DLRM benchmark, capped at 40M rows
// (Table I: "#rows per table: up to 40M").
var CriteoTBRows = []int{
	39884406, 39043, 17289, 7420, 20263, 3, 7120, 1543, 63, 38532951,
	2953546, 403346, 10, 2208, 11938, 155, 4, 976, 14, 39979771,
	25641295, 39664984, 585935, 12972, 108, 36,
}

// ScaleRows returns row counts scaled by f (at least 1 row), used to fit
// paper-scale configs into test memory while preserving relative skew.
func ScaleRows(rows []int, f float64) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		s := int(float64(r) * f)
		if s < 1 {
			s = 1
		}
		out[i] = s
	}
	return out
}

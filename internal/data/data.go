// Package data generates the training workloads. The paper uses a random
// dataset for the Small/Large configs and the Criteo Terabyte click logs for
// the MLPerf config; Criteo is not redistributable, so ClickLog is the
// synthetic substitute: categorical features drawn from Zipf distributions
// over each table's rows (reproducing the hot-row contention that drives
// Fig. 7/8's MLPerf results) and labels planted by a logistic teacher over
// latent row scores (so ROC AUC climbs toward a known ceiling, which is what
// Fig. 16's convergence comparison needs).
//
// Every dataset is randomly addressable at sample granularity: FillRange
// materializes any sample slice of a batch, and FillTableColumn one table's
// bags over any slice, both into caller-owned buffers. That is the property
// the sharded per-rank loaders (loader.go) are built on — a rank reads only
// its N/R slice plus its owned tables' columns, never the full global
// minibatch the §VI-D2 framework loader re-reads on every rank.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// MiniBatch is one training batch: dense features, one sparse batch per
// embedding table, and binary labels.
type MiniBatch struct {
	N      int
	Dense  *tensor.Dense      // N×D
	Sparse []*embedding.Batch // per table
	Labels []float32          // N
}

// Reset prepares mb for reuse as an n-sample batch with d dense features
// and `tables` sparse tables: shapes are set, sparse offsets rebased to an
// empty state, and storage is reallocated only on capacity growth — the
// repeated-fill contract the streaming loaders rely on for their
// zero-allocation steady state.
func (mb *MiniBatch) Reset(n, d, tables int) {
	mb.N = n
	if mb.Dense == nil {
		mb.Dense = &tensor.Dense{}
	}
	mb.Dense.Rows, mb.Dense.Cols = n, d
	mb.Dense.Data = ensureF32(&mb.Dense.Data, n*d)
	mb.Labels = ensureF32(&mb.Labels, n)
	if len(mb.Sparse) != tables {
		grown := make([]*embedding.Batch, tables)
		copy(grown, mb.Sparse)
		mb.Sparse = grown
	}
	for t := range mb.Sparse {
		if mb.Sparse[t] == nil {
			mb.Sparse[t] = &embedding.Batch{}
		}
		mb.Sparse[t].Reset(n)
	}
}

// ensureF32 returns *buf resized to n elements, reallocating only on
// capacity growth.
func ensureF32(buf *[]float32, n int) []float32 {
	s := *buf
	if cap(s) < n {
		s = make([]float32, n)
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}

// Dataset produces deterministic minibatches by index. Samples are
// individually addressable: FillRange and FillTableColumn materialize any
// slice of a batch into caller-owned buffers, so per-rank sharded loading
// reads exactly its share of the data. Implementations are safe for
// concurrent fills of distinct buffers (the rank goroutines of a simulated
// cluster share one Dataset).
type Dataset interface {
	// Batch materializes minibatch i with n samples. It allocates; hot
	// paths use FillRange with a reused MiniBatch instead.
	Batch(i, n int) *MiniBatch
	// FillRange materializes samples [lo, hi) of minibatch i (n samples
	// total) into mb, reusing mb's buffers: global sample lo becomes mb
	// sample 0 and sparse offsets are rebased to start at 0.
	// FillRange(i, n, 0, n, mb) is the full batch. n matters only to
	// file-backed datasets (epoch wrap-around); generated datasets derive
	// samples from (i, sample) alone.
	FillRange(i, n, lo, hi int, mb *MiniBatch)
	// FillTableColumn materializes table t's bags for samples [lo, hi) of
	// minibatch i into b — the model-parallel "column read" a table owner
	// needs without materializing any other table.
	FillTableColumn(i, n, t, lo, hi int, b *embedding.Batch)
	// NumTables returns the sparse feature count.
	NumTables() int
	// DenseDim returns the dense feature width.
	DenseDim() int
}

// materialize is the shared allocating Batch implementation.
func materialize(ds Dataset, i, n int) *MiniBatch {
	mb := &MiniBatch{}
	ds.FillRange(i, n, 0, n, mb)
	return mb
}

// Random is the uniform synthetic dataset used for the Small and Large
// configurations (§VI-D2): indices uniform over each table, dense features
// uniform in [-1, 1], labels Bernoulli(1/2). There is nothing to learn; it
// exists to exercise performance.
type Random struct {
	Seed    int64
	D       int // dense features
	Tables  int
	Rows    int // rows per table
	Lookups int // P
}

// NumTables implements Dataset.
func (r *Random) NumTables() int { return r.Tables }

// DenseDim implements Dataset.
func (r *Random) DenseDim() int { return r.D }

// Batch implements Dataset.
func (r *Random) Batch(i, n int) *MiniBatch { return materialize(r, i, n) }

// FillRange implements Dataset.
func (r *Random) FillRange(i, n, lo, hi int, mb *MiniBatch) {
	mb.Reset(hi-lo, r.D, r.Tables)
	for s := lo; s < hi; s++ {
		g := sampleStream(r.Seed, randomTag, i, s)
		row := mb.Dense.Row(s - lo)
		for j := range row {
			row[j] = g.f32()*2 - 1
		}
		if g.f32() > 0.5 {
			mb.Labels[s-lo] = 1
		} else {
			mb.Labels[s-lo] = 0
		}
	}
	for t := 0; t < r.Tables; t++ {
		r.FillTableColumn(i, n, t, lo, hi, mb.Sparse[t])
	}
}

// FillTableColumn implements Dataset.
func (r *Random) FillTableColumn(i, n, t, lo, hi int, b *embedding.Batch) {
	b.Reset(hi - lo)
	u := embedding.Uniform{}
	for s := lo; s < hi; s++ {
		g := tableStream(r.Seed, randomTag, i, s, t)
		for l := 0; l < r.Lookups; l++ {
			b.Indices = append(b.Indices, u.DrawU(g.f64(), r.Rows))
		}
		b.Offsets[s-lo+1] = int32(len(b.Indices))
	}
}

// ClickLog is the synthetic Criteo-Terabyte substitute. Each table t has a
// latent per-row score u_t[m] ~ N(0, TableSignal); the label of a sample is
// Bernoulli(σ(bias + w·dense + Σ_t mean_s u_t[idx_s])). Indices follow
// Zipf(Skew), dense features are log-normal-ish like click counters.
type ClickLog struct {
	Seed    int64
	D       int
	Rows    []int // per-table row counts (Criteo tables are wildly uneven)
	Lookups int
	Skew    float64 // Zipf exponent, ≈1.05 for click logs

	// Teacher parameters.
	TableSignal float64 // stddev of latent row scores
	DenseSignal float64 // scale of dense teacher weights
	Bias        float64 // prior log-odds (negative: clicks are rare-ish)

	denseW []float64
	// latent scores are generated lazily per (table,row) by hashing so huge
	// tables need no storage.
}

// NewClickLog builds a click-log dataset with sensible teacher defaults.
func NewClickLog(seed int64, d int, rows []int, lookups int) *ClickLog {
	c := &ClickLog{
		Seed: seed, D: d, Rows: rows, Lookups: lookups,
		Skew: 1.05, TableSignal: 0.6, DenseSignal: 0.4, Bias: -0.4,
	}
	rng := rand.New(rand.NewSource(seed))
	c.denseW = make([]float64, d)
	for i := range c.denseW {
		c.denseW[i] = rng.NormFloat64() * c.DenseSignal
	}
	return c
}

// NumTables implements Dataset.
func (c *ClickLog) NumTables() int { return len(c.Rows) }

// DenseDim implements Dataset.
func (c *ClickLog) DenseDim() int { return c.D }

// latent returns the teacher's hidden score for (table, row), computed by
// hashing so it is stable without materializing huge score tables.
func (c *ClickLog) latent(table int, row int32) float64 {
	h := uint64(c.Seed) ^ uint64(table)<<32 ^ uint64(uint32(row))
	// splitmix64
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	// map to approximately N(0,1) via sum of uniforms
	u1 := float64(h&0xFFFFFFFF) / float64(1<<32)
	u2 := float64(h>>32) / float64(1<<32)
	z := math.Sqrt(-2*math.Log(u1+1e-12)) * math.Cos(2*math.Pi*u2)
	return z * c.TableSignal
}

// Batch implements Dataset.
func (c *ClickLog) Batch(i, n int) *MiniBatch { return materialize(c, i, n) }

// FillRange implements Dataset. The teacher label of sample s needs the
// latent scores of every table's lookups for s — all regenerated here from
// the per-(sample, table) streams, so the label a shard computes is
// bit-identical to the one the full-batch read computes.
func (c *ClickLog) FillRange(i, n, lo, hi int, mb *MiniBatch) {
	mb.Reset(hi-lo, c.D, len(c.Rows))
	zipf := embedding.Zipf{S: c.Skew}
	for s := lo; s < hi; s++ {
		g := sampleStream(c.Seed, clickTag, i, s)
		logit := c.Bias
		row := mb.Dense.Row(s - lo)
		for j := range row {
			// counter-like features: |N(0,1)| compressed by log1p, centered
			// so the teacher's dense term is ~zero-mean.
			v := math.Log1p(math.Abs(g.norm())*3) - 1.2
			row[j] = float32(v)
			logit += c.denseW[j] * v
		}
		for t, rows := range c.Rows {
			gt := tableStream(c.Seed, clickTag, i, s, t)
			b := mb.Sparse[t]
			var acc float64
			for l := 0; l < c.Lookups; l++ {
				idx := zipf.DrawU(gt.f64(), rows)
				b.Indices = append(b.Indices, idx)
				acc += c.latent(t, idx)
			}
			b.Offsets[s-lo+1] = int32(len(b.Indices))
			logit += acc / float64(c.Lookups)
		}
		pCTR := 1 / (1 + math.Exp(-logit))
		lbl := sampleStream(c.Seed, clickLblTag, i, s)
		if lbl.f64() < pCTR {
			mb.Labels[s-lo] = 1
		} else {
			mb.Labels[s-lo] = 0
		}
	}
}

// FillTableColumn implements Dataset.
func (c *ClickLog) FillTableColumn(i, n, t, lo, hi int, b *embedding.Batch) {
	b.Reset(hi - lo)
	zipf := embedding.Zipf{S: c.Skew}
	rows := c.Rows[t]
	for s := lo; s < hi; s++ {
		gt := tableStream(c.Seed, clickTag, i, s, t)
		for l := 0; l < c.Lookups; l++ {
			b.Indices = append(b.Indices, zipf.DrawU(gt.f64(), rows))
		}
		b.Offsets[s-lo+1] = int32(len(b.Indices))
	}
}

// ShardInto copies rank r of R's sample shard of mb — samples
// [r·N/R, (r+1)·N/R) under minibatch (data) parallelism — into out,
// reusing out's buffers. Sparse offsets are rebased so each shard batch
// stands on its own, including ragged and empty bags.
func (mb *MiniBatch) ShardInto(r, R int, out *MiniBatch) {
	lo, hi := ShardRange(mb.N, r, R)
	n := hi - lo
	out.Reset(n, mb.Dense.Cols, len(mb.Sparse))
	copy(out.Dense.Data, mb.Dense.Data[lo*mb.Dense.Cols:hi*mb.Dense.Cols])
	copy(out.Labels, mb.Labels[lo:hi])
	for t, b := range mb.Sparse {
		sb := out.Sparse[t]
		base := b.Offsets[lo]
		sb.Indices = append(sb.Indices, b.Indices[base:b.Offsets[hi]]...)
		for i := 0; i <= n; i++ {
			sb.Offsets[i] = b.Offsets[lo+i] - base
		}
	}
}

// Shard returns a freshly allocated copy of the view ShardInto fills.
func (mb *MiniBatch) Shard(r, R int) *MiniBatch {
	out := &MiniBatch{}
	mb.ShardInto(r, R, out)
	return out
}

// Validate sanity-checks the batch against table row counts.
func (mb *MiniBatch) Validate(rows []int) error {
	if len(mb.Sparse) != len(rows) {
		return fmt.Errorf("data: %d sparse batches for %d tables", len(mb.Sparse), len(rows))
	}
	if mb.Dense.Rows != mb.N || len(mb.Labels) != mb.N {
		return fmt.Errorf("data: dense/label rows mismatch")
	}
	for t, b := range mb.Sparse {
		if b.NumBags() != mb.N {
			return fmt.Errorf("data: table %d has %d bags want %d", t, b.NumBags(), mb.N)
		}
		if err := b.Validate(rows[t]); err != nil {
			return err
		}
	}
	return nil
}

// CriteoTBRows are the 26 categorical-table cardinalities of the Criteo
// Terabyte dataset as used by the MLPerf DLRM benchmark, capped at 40M rows
// (Table I: "#rows per table: up to 40M").
var CriteoTBRows = []int{
	39884406, 39043, 17289, 7420, 20263, 3, 7120, 1543, 63, 38532951,
	2953546, 403346, 10, 2208, 11938, 155, 4, 976, 14, 39979771,
	25641295, 39664984, 585935, 12972, 108, 36,
}

// ScaleRows returns row counts scaled by f (at least 1 row), used to fit
// paper-scale configs into test memory while preserving relative skew.
func ScaleRows(rows []int, f float64) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		s := int(float64(r) * f)
		if s < 1 {
			s = 1
		}
		out[i] = s
	}
	return out
}

package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// Binary record format for click-log datasets — the stand-in for the Criteo
// Terabyte day files. A stream is a header (magic, dense width, table
// count, lookups per table) followed by fixed-size records: one float32
// label, D float32 dense features, and S·P int32 table indices. Fixed-size
// records let a loader seek to any sample, which is what minibatch sharding
// over a file needs.

const fileMagic = 0x434C4F47 // "CLOG"

// WriteDataset materializes n samples from ds (drawn as consecutive batches
// of batchN) into w. Variable-size bags are not supported by the fixed
// record format; ds must produce exactly lookups indices per bag.
func WriteDataset(w io.Writer, ds Dataset, n, batchN, lookups int) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{fileMagic, uint32(ds.DenseDim()), uint32(ds.NumTables()), uint32(lookups), uint32(n)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	written := 0
	for batch := 0; written < n; batch++ {
		mb := ds.Batch(batch, batchN)
		for s := 0; s < mb.N && written < n; s++ {
			if err := binary.Write(bw, binary.LittleEndian, mb.Labels[s]); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, mb.Dense.Row(s)); err != nil {
				return err
			}
			for t, b := range mb.Sparse {
				lo, hi := b.Offsets[s], b.Offsets[s+1]
				if int(hi-lo) != lookups {
					return fmt.Errorf("data: table %d bag %d has %d lookups, format needs %d",
						t, s, hi-lo, lookups)
				}
				if err := binary.Write(bw, binary.LittleEndian, b.Indices[lo:hi]); err != nil {
					return err
				}
			}
			written++
		}
	}
	return bw.Flush()
}

// FileDataset serves minibatches from a record stream written by
// WriteDataset, loaded into memory (the paper's loader also materializes
// the batch; a terabyte-scale variant would mmap).
type FileDataset struct {
	D, Tables, Lookups, N int

	labels  []float32
	dense   []float32
	indices []int32 // N × Tables × Lookups
}

// OpenFileDataset parses a record stream.
func OpenFileDataset(r io.Reader) (*FileDataset, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("data: dataset header: %w", err)
	}
	if hdr[0] != fileMagic {
		return nil, fmt.Errorf("data: not a click-log dataset (magic %08x)", hdr[0])
	}
	f := &FileDataset{
		D: int(hdr[1]), Tables: int(hdr[2]), Lookups: int(hdr[3]), N: int(hdr[4]),
	}
	f.labels = make([]float32, f.N)
	f.dense = make([]float32, f.N*f.D)
	f.indices = make([]int32, f.N*f.Tables*f.Lookups)
	per := f.Tables * f.Lookups
	for s := 0; s < f.N; s++ {
		if err := binary.Read(br, binary.LittleEndian, &f.labels[s]); err != nil {
			return nil, fmt.Errorf("data: record %d: %w", s, err)
		}
		if err := binary.Read(br, binary.LittleEndian, f.dense[s*f.D:(s+1)*f.D]); err != nil {
			return nil, fmt.Errorf("data: record %d dense: %w", s, err)
		}
		if err := binary.Read(br, binary.LittleEndian, f.indices[s*per:(s+1)*per]); err != nil {
			return nil, fmt.Errorf("data: record %d indices: %w", s, err)
		}
	}
	return f, nil
}

// NumTables implements Dataset.
func (f *FileDataset) NumTables() int { return f.Tables }

// DenseDim implements Dataset.
func (f *FileDataset) DenseDim() int { return f.D }

// Batch implements Dataset: batch i covers samples [i·n, (i+1)·n) modulo
// the dataset size (wrapping like epoch iteration does).
func (f *FileDataset) Batch(i, n int) *MiniBatch {
	mb := &MiniBatch{
		N:      n,
		Dense:  tensor.NewDense(n, f.D),
		Labels: make([]float32, n),
	}
	for t := 0; t < f.Tables; t++ {
		b := &embedding.Batch{
			Indices: make([]int32, 0, n*f.Lookups),
			Offsets: make([]int32, n+1),
		}
		mb.Sparse = append(mb.Sparse, b)
	}
	per := f.Tables * f.Lookups
	for s := 0; s < n; s++ {
		src := (i*n + s) % f.N
		mb.Labels[s] = f.labels[src]
		copy(mb.Dense.Row(s), f.dense[src*f.D:(src+1)*f.D])
		rec := f.indices[src*per : (src+1)*per]
		for t := 0; t < f.Tables; t++ {
			b := mb.Sparse[t]
			b.Offsets[s] = int32(len(b.Indices))
			b.Indices = append(b.Indices, rec[t*f.Lookups:(t+1)*f.Lookups]...)
		}
	}
	for t := 0; t < f.Tables; t++ {
		mb.Sparse[t].Offsets[n] = int32(len(mb.Sparse[t].Indices))
	}
	return mb
}

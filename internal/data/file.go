package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/embedding"
)

// Binary record format for click-log datasets — the stand-in for the Criteo
// Terabyte day files. A stream is a header (magic, dense width, table
// count, lookups per table) followed by fixed-size records: one float32
// label, D float32 dense features, and S·P int32 table indices. Fixed-size
// records let a loader seek to any sample, which is what minibatch sharding
// over a file needs.

const fileMagic = 0x434C4F47 // "CLOG"

// WriteDataset materializes n samples from ds (drawn as consecutive batches
// of batchN) into w. Variable-size bags are not supported by the fixed
// record format; ds must produce exactly lookups indices per bag.
func WriteDataset(w io.Writer, ds Dataset, n, batchN, lookups int) error {
	return WriteDatasetShard(w, ds, 0, 1, n, batchN, lookups)
}

// WriteDatasetShard writes rank r of R's sample shard of each consecutive
// batchN-sample batch of ds — the per-rank split of the source data a
// sharded file loader serves — until n global samples have been covered.
// Batches are staged through one reused MiniBatch, so writing streams
// rather than accumulating garbage. R=1 writes the full dataset.
func WriteDatasetShard(w io.Writer, ds Dataset, r, R, n, batchN, lookups int) error {
	bw := bufio.NewWriter(w)
	batches := (n + batchN - 1) / batchN
	// The shard's record count: each global batch (the last may be partial)
	// contributes its [r·bn/R, (r+1)·bn/R) slice.
	total := 0
	for batch := 0; batch < batches; batch++ {
		bn := min(batchN, n-batch*batchN)
		total += bn*(r+1)/R - bn*r/R
	}
	hdr := []uint32{fileMagic, uint32(ds.DenseDim()), uint32(ds.NumTables()), uint32(lookups),
		uint32(total)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	mb := &MiniBatch{}
	for batch := 0; batch < batches; batch++ {
		bn := min(batchN, n-batch*batchN)
		ds.FillRange(batch, batchN, bn*r/R, bn*(r+1)/R, mb)
		for s := 0; s < mb.N; s++ {
			if err := binary.Write(bw, binary.LittleEndian, mb.Labels[s]); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, mb.Dense.Row(s)); err != nil {
				return err
			}
			for t, b := range mb.Sparse {
				blo, bhi := b.Offsets[s], b.Offsets[s+1]
				if int(bhi-blo) != lookups {
					return fmt.Errorf("data: table %d bag %d has %d lookups, format needs %d",
						t, s, bhi-blo, lookups)
				}
				if err := binary.Write(bw, binary.LittleEndian, b.Indices[blo:bhi]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// FileDataset serves minibatches from a record stream written by
// WriteDataset, loaded into memory (the paper's loader also materializes
// the batch; a terabyte-scale variant would mmap).
type FileDataset struct {
	D, Tables, Lookups, N int

	labels  []float32
	dense   []float32
	indices []int32 // N × Tables × Lookups
}

// OpenFileDataset parses a record stream.
func OpenFileDataset(r io.Reader) (*FileDataset, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("data: dataset header: %w", err)
	}
	if hdr[0] != fileMagic {
		return nil, fmt.Errorf("data: not a click-log dataset (magic %08x)", hdr[0])
	}
	f := &FileDataset{
		D: int(hdr[1]), Tables: int(hdr[2]), Lookups: int(hdr[3]), N: int(hdr[4]),
	}
	f.labels = make([]float32, f.N)
	f.dense = make([]float32, f.N*f.D)
	f.indices = make([]int32, f.N*f.Tables*f.Lookups)
	per := f.Tables * f.Lookups
	for s := 0; s < f.N; s++ {
		if err := binary.Read(br, binary.LittleEndian, &f.labels[s]); err != nil {
			return nil, fmt.Errorf("data: record %d: %w", s, err)
		}
		if err := binary.Read(br, binary.LittleEndian, f.dense[s*f.D:(s+1)*f.D]); err != nil {
			return nil, fmt.Errorf("data: record %d dense: %w", s, err)
		}
		if err := binary.Read(br, binary.LittleEndian, f.indices[s*per:(s+1)*per]); err != nil {
			return nil, fmt.Errorf("data: record %d indices: %w", s, err)
		}
	}
	return f, nil
}

// NumTables implements Dataset.
func (f *FileDataset) NumTables() int { return f.Tables }

// DenseDim implements Dataset.
func (f *FileDataset) DenseDim() int { return f.D }

// Batch implements Dataset: batch i covers samples [i·n, (i+1)·n) modulo
// the dataset size (wrapping like epoch iteration does).
func (f *FileDataset) Batch(i, n int) *MiniBatch { return materialize(f, i, n) }

// FillRange implements Dataset.
func (f *FileDataset) FillRange(i, n, lo, hi int, mb *MiniBatch) {
	mb.Reset(hi-lo, f.D, f.Tables)
	per := f.Tables * f.Lookups
	for s := lo; s < hi; s++ {
		src := (i*n + s) % f.N
		out := s - lo
		mb.Labels[out] = f.labels[src]
		copy(mb.Dense.Row(out), f.dense[src*f.D:(src+1)*f.D])
		rec := f.indices[src*per : (src+1)*per]
		for t := 0; t < f.Tables; t++ {
			b := mb.Sparse[t]
			b.Indices = append(b.Indices, rec[t*f.Lookups:(t+1)*f.Lookups]...)
			b.Offsets[out+1] = int32(len(b.Indices))
		}
	}
}

// FillTableColumn implements Dataset.
func (f *FileDataset) FillTableColumn(i, n, t, lo, hi int, b *embedding.Batch) {
	b.Reset(hi - lo)
	per := f.Tables * f.Lookups
	for s := lo; s < hi; s++ {
		src := (i*n+s)%f.N*per + t*f.Lookups
		b.Indices = append(b.Indices, f.indices[src:src+f.Lookups]...)
		b.Offsets[s-lo+1] = int32(len(b.Indices))
	}
}

// Allocation-regression tests for the streaming loader, the data-pipeline
// sibling of internal/core/dist_alloc_test.go: once the staging buffers
// have reached steady-state capacity, producing a per-rank batch must
// perform zero heap allocations, so data loading adds no GC pressure to
// the zero-allocation training iteration PRs 1–2 established. The producer
// runs on its own goroutine, so per-batch allocations are measured by
// differencing whole loader sessions of different lengths
// (testing.AllocsPerRun counts mallocs process-wide): the fixed per-session
// overhead — loader struct, channels, goroutine — cancels and only the
// steady-state per-batch cost remains.
package data

import "testing"

// loaderAllocsPerBatch returns the marginal allocations per Next after
// warmup, for a loader over ds with the given owned tables.
func loaderAllocsPerBatch(t *testing.T, ds Dataset, globalN int, owned []int) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	bufs := &LoaderBuffers{}
	run := func(batches int) func() {
		return func() {
			ld := NewShardedLoader(LoaderConfig{
				DS: ds, GlobalN: globalN, Rank: 1, Ranks: 4, Owned: owned, Buffers: bufs,
			})
			for k := 0; k < batches; k++ {
				ld.Next()
			}
			ld.Close()
		}
	}
	const short, long = 2, 12
	run(long)() // warmup: sizes the staging buffers, fills sudog pools
	aShort := testing.AllocsPerRun(5, run(short))
	aLong := testing.AllocsPerRun(5, run(long))
	return (aLong - aShort) / float64(long-short)
}

// TestShardedLoaderSteadyStateZeroAllocs pins the loader half of the
// zero-allocation invariant for every dataset kind, with and without
// owned-table column reads.
func TestShardedLoaderSteadyStateZeroAllocs(t *testing.T) {
	for name, ds := range testDatasets(t) {
		owned := []int{0, ds.NumTables() - 1}
		if got := loaderAllocsPerBatch(t, ds, 24, owned); got != 0 {
			t.Errorf("%s: %v allocs per steady-state batch, want 0", name, got)
		}
		if got := loaderAllocsPerBatch(t, ds, 24, nil); got != 0 {
			t.Errorf("%s (no owned): %v allocs per steady-state batch, want 0", name, got)
		}
	}
}

// TestGlobalReadLoaderSteadyStateAllocs documents that even the artifact
// loader reuses its staging buffers (its cost is the O(GlobalN) read, not
// the allocator), so loader-mode comparisons measure data volume only.
func TestGlobalReadLoaderSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	ds := NewClickLog(5, 4, []int{200, 40}, 2)
	bufs := &LoaderBuffers{}
	ld := NewGlobalReadLoader(LoaderConfig{DS: ds, GlobalN: 24, Rank: 0, Ranks: 4, Owned: []int{0}, Buffers: bufs})
	ld.Next()
	ld.Next()
	if allocs := testing.AllocsPerRun(10, func() { ld.Next() }); allocs != 0 {
		t.Errorf("global-read loader: %v allocs per warmed-up batch, want 0", allocs)
	}
}

package data

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// testDatasets returns one instance of every Dataset implementation, all
// with ragged-friendly shapes (uneven row counts, multi-lookup bags).
func testDatasets(t *testing.T) map[string]Dataset {
	t.Helper()
	rows := []int{1000, 37, 4, 2100}
	click := NewClickLog(11, 6, rows, 3)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, click, 96, 24, 3); err != nil {
		t.Fatal(err)
	}
	file, err := OpenFileDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Dataset{
		"Random":   &Random{Seed: 5, D: 8, Tables: 3, Rows: 64, Lookups: 4},
		"ClickLog": click,
		"File":     file,
	}
}

func sameBatchSlice(t *testing.T, label string, global *MiniBatch, gLo int, shard *MiniBatch) {
	t.Helper()
	d := global.Dense.Cols
	for s := 0; s < shard.N; s++ {
		if shard.Labels[s] != global.Labels[gLo+s] {
			t.Fatalf("%s: label %d mismatch", label, s)
		}
		for c := 0; c < d; c++ {
			if shard.Dense.At(s, c) != global.Dense.At(gLo+s, c) {
				t.Fatalf("%s: dense (%d,%d) mismatch", label, s, c)
			}
		}
	}
	for ti := range global.Sparse {
		sameColumnSlice(t, fmt.Sprintf("%s table %d", label, ti), global.Sparse[ti], gLo, shard.Sparse[ti], shard.N)
	}
}

func sameColumnSlice(t *testing.T, label string, g *embedding.Batch, gLo int, b *embedding.Batch, n int) {
	t.Helper()
	if b.NumBags() != n {
		t.Fatalf("%s: %d bags want %d", label, b.NumBags(), n)
	}
	if b.Offsets[0] != 0 {
		t.Fatalf("%s: offsets not rebased (start %d)", label, b.Offsets[0])
	}
	for s := 0; s < n; s++ {
		sLo, sHi := b.Offsets[s], b.Offsets[s+1]
		gL, gH := g.Offsets[gLo+s], g.Offsets[gLo+s+1]
		if sHi-sLo != gH-gL {
			t.Fatalf("%s: bag %d size %d want %d", label, s, sHi-sLo, gH-gL)
		}
		for k := int32(0); k < sHi-sLo; k++ {
			if b.Indices[sLo+k] != g.Indices[gL+k] {
				t.Fatalf("%s: bag %d index %d mismatch", label, s, k)
			}
		}
	}
}

// TestFillRangeReassemblesGlobalBatch is the sharding property test: for
// every dataset and random rank counts 2–8, the concatenation of the
// per-rank FillRange slices must reproduce Dataset.Batch exactly — dense
// features, labels, and sparse offsets/indices — including the uneven
// shard boundaries a non-divisible N produces.
func TestFillRangeReassemblesGlobalBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for name, ds := range testDatasets(t) {
		for trial := 0; trial < 6; trial++ {
			R := 2 + rng.Intn(7) // 2..8
			n := 16 + rng.Intn(80)
			it := rng.Intn(5)
			global := ds.Batch(it, n)
			shard := &MiniBatch{} // reused across ranks: catches stale-buffer bugs
			covered := 0
			for r := 0; r < R; r++ {
				lo, hi := n*r/R, n*(r+1)/R
				ds.FillRange(it, n, lo, hi, shard)
				if shard.N != hi-lo {
					t.Fatalf("%s R=%d rank %d: shard size %d want %d", name, R, r, shard.N, hi-lo)
				}
				sameBatchSlice(t, fmt.Sprintf("%s R=%d rank %d", name, R, r), global, lo, shard)
				covered += shard.N
			}
			if covered != n {
				t.Fatalf("%s R=%d: shards cover %d of %d samples", name, R, covered, n)
			}
		}
	}
}

// TestFillTableColumnMatchesBatch checks the model-parallel column read: a
// table owner regenerating one table's bags over any sample range must get
// exactly the global batch's column.
func TestFillTableColumnMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, ds := range testDatasets(t) {
		n := 48
		global := ds.Batch(3, n)
		col := &embedding.Batch{}
		for ti := 0; ti < ds.NumTables(); ti++ {
			for trial := 0; trial < 4; trial++ {
				lo := rng.Intn(n)
				hi := lo + 1 + rng.Intn(n-lo)
				ds.FillTableColumn(3, n, ti, lo, hi, col)
				sameColumnSlice(t, fmt.Sprintf("%s col %d [%d,%d)", name, ti, lo, hi),
					global.Sparse[ti], lo, col, hi-lo)
			}
		}
	}
}

// TestShardedLoaderMatchesGlobalBatch drives the full loader: per-rank
// ShardedLoaders must stream batches whose concatenation reproduces the
// global batch sequence, with owned-table columns equal to the global
// batch's columns.
func TestShardedLoaderMatchesGlobalBatch(t *testing.T) {
	for name, ds := range testDatasets(t) {
		const R, n, iters = 3, 30, 4
		owned := make([][]int, R)
		for ti := 0; ti < ds.NumTables(); ti++ {
			owned[ti%R] = append(owned[ti%R], ti)
		}
		loaders := make([]*ShardedLoader, R)
		for r := 0; r < R; r++ {
			loaders[r] = NewShardedLoader(LoaderConfig{
				DS: ds, GlobalN: n, Rank: r, Ranks: R, Owned: owned[r], Start: 1,
			})
			defer loaders[r].Close()
		}
		for it := 1; it <= iters; it++ {
			global := ds.Batch(it, n)
			for r := 0; r < R; r++ {
				rb := loaders[r].Next()
				if rb.Iter != it {
					t.Fatalf("%s rank %d: iter %d want %d", name, r, rb.Iter, it)
				}
				sameBatchSlice(t, fmt.Sprintf("%s rank %d iter %d", name, r, it), global, n*r/R, rb.Local)
				for li, ti := range owned[r] {
					sameColumnSlice(t, fmt.Sprintf("%s rank %d owned %d", name, r, ti),
						global.Sparse[ti], 0, rb.Owned[li], n)
				}
			}
		}
	}
}

// TestGlobalReadLoaderMatchesSharded pins the baseline-vs-fixed
// equivalence: the artifact loader and the sharded loader must produce
// bit-identical RankBatches (that is what makes the loss-parity acceptance
// check trivial to reason about).
func TestGlobalReadLoaderMatchesSharded(t *testing.T) {
	ds := NewClickLog(21, 5, []int{300, 11, 90}, 2)
	const R, n = 4, 24
	owned := []int{1, 2}
	sh := NewShardedLoader(LoaderConfig{DS: ds, GlobalN: n, Rank: 1, Ranks: R, Owned: owned})
	defer sh.Close()
	gl := NewGlobalReadLoader(LoaderConfig{DS: ds, GlobalN: n, Rank: 1, Ranks: R, Owned: owned})
	defer gl.Close()
	for it := 0; it < 3; it++ {
		a, b := sh.Next(), gl.Next()
		if a.Iter != b.Iter {
			t.Fatalf("iter skew: %d vs %d", a.Iter, b.Iter)
		}
		sameBatchSlice(t, "sharded vs global local", b.Local, 0, a.Local)
		for li := range owned {
			sameColumnSlice(t, fmt.Sprintf("owned %d", li), b.Owned[li], 0, a.Owned[li], n)
		}
	}
}

// TestLoaderBuffersReuseAcrossLoaders checks the cross-run story the
// distributed workspaces rely on: successive loaders borrowing one
// LoaderBuffers — including switching between the artifact and sharded
// kinds — keep producing correct batches.
func TestLoaderBuffersReuseAcrossLoaders(t *testing.T) {
	ds := NewClickLog(3, 4, []int{120, 60}, 2)
	bufs := &LoaderBuffers{}
	const R, n = 2, 20
	owned := []int{0}
	for round := 0; round < 3; round++ {
		var ld Loader
		if round%2 == 0 {
			ld = NewGlobalReadLoader(LoaderConfig{DS: ds, GlobalN: n, Rank: 0, Ranks: R, Owned: owned, Buffers: bufs})
		} else {
			ld = NewShardedLoader(LoaderConfig{DS: ds, GlobalN: n, Rank: 0, Ranks: R, Owned: owned, Buffers: bufs})
		}
		for it := 0; it < 3; it++ {
			rb := ld.Next()
			global := ds.Batch(it, n)
			sameBatchSlice(t, fmt.Sprintf("round %d iter %d", round, it), global, 0, rb.Local)
			sameColumnSlice(t, "owned col", global.Sparse[0], 0, rb.Owned[0], n)
		}
		ld.Close()
	}
}

// TestShardIntoRaggedAndEmptyBags is the regression test for the sparse
// offset rebasing of MiniBatch.Shard/ShardInto over ragged lookups
// (variable bag sizes, including empty bags and shard slices whose tables
// contribute zero indices). The reported failure mode — a ClickLog shard
// coming back with empty sparse batches — must stay impossible.
func TestShardIntoRaggedAndEmptyBags(t *testing.T) {
	// A ClickLog shard must never lose its lookups.
	ds := NewClickLog(13, 4, []int{500, 3, 77}, 5)
	mb := ds.Batch(2, 17)
	out := &MiniBatch{}
	for r := 0; r < 4; r++ {
		mb.ShardInto(r, 4, out)
		if err := out.Validate([]int{500, 3, 77}); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		for ti, b := range out.Sparse {
			if b.NumLookups() != out.N*5 {
				t.Errorf("rank %d table %d: %d lookups want %d (empty-shard regression)",
					r, ti, b.NumLookups(), out.N*5)
			}
		}
		sameBatchSlice(t, fmt.Sprintf("clicklog rank %d", r), mb, mb.N*r/4, out)
	}

	// Ragged case: hand-built batch with variable and empty bags.
	rng := rand.New(rand.NewSource(9))
	ragged := &MiniBatch{N: 10, Dense: tensor.NewDense(10, 2), Labels: make([]float32, 10)}
	ragged.Sparse = []*embedding.Batch{
		embedding.MakeVariableBatch(rng, embedding.Uniform{}, 10, 0, 6, 40),
		embedding.MakeVariableBatch(rng, embedding.Uniform{}, 10, 0, 1, 40),
	}
	for R := 2; R <= 8; R++ {
		for r := 0; r < R; r++ {
			ragged.ShardInto(r, R, out)
			if err := out.Validate([]int{40, 40}); err != nil {
				t.Fatalf("ragged R=%d rank %d: %v", R, r, err)
			}
			sameBatchSlice(t, fmt.Sprintf("ragged R=%d rank %d", R, r), ragged, ragged.N*r/R, out)
		}
	}
}

func TestShardRangePartitions(t *testing.T) {
	// The sharding contract the elastic layer leans on: for every rank
	// count (including the R-1 shapes a failure rescales to, and globalN
	// not divisible by ranks), the per-rank ranges are contiguous,
	// non-overlapping, and exactly cover [0, globalN).
	for _, globalN := range []int{1, 7, 48, 64, 840, 2048} {
		for ranks := 1; ranks <= 9 && ranks <= globalN; ranks++ {
			next := 0
			for r := 0; r < ranks; r++ {
				lo, hi := ShardRange(globalN, r, ranks)
				if lo != next {
					t.Fatalf("N=%d R=%d: rank %d starts at %d, want %d", globalN, ranks, r, lo, next)
				}
				if hi < lo {
					t.Fatalf("N=%d R=%d: rank %d has negative range [%d,%d)", globalN, ranks, r, lo, hi)
				}
				next = hi
			}
			if next != globalN {
				t.Fatalf("N=%d R=%d: ranges end at %d, want %d", globalN, ranks, next, globalN)
			}
		}
	}
}

package data

import (
	"bytes"
	"math"
	"testing"
)

func TestRandomBatchShape(t *testing.T) {
	ds := &Random{Seed: 1, D: 16, Tables: 4, Rows: 100, Lookups: 5}
	mb := ds.Batch(0, 32)
	if err := mb.Validate([]int{100, 100, 100, 100}); err != nil {
		t.Fatal(err)
	}
	if mb.Dense.Rows != 32 || mb.Dense.Cols != 16 {
		t.Fatal("dense shape wrong")
	}
	for _, b := range mb.Sparse {
		if b.NumLookups() != 32*5 {
			t.Fatal("lookup count wrong")
		}
	}
}

func TestBatchDeterministicByIndex(t *testing.T) {
	ds := &Random{Seed: 7, D: 4, Tables: 2, Rows: 50, Lookups: 3}
	a := ds.Batch(3, 16)
	b := ds.Batch(3, 16)
	for i := range a.Dense.Data {
		if a.Dense.Data[i] != b.Dense.Data[i] {
			t.Fatal("same batch index must be deterministic")
		}
	}
	c := ds.Batch(4, 16)
	same := true
	for i := range a.Dense.Data {
		if a.Dense.Data[i] != c.Dense.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different batch indices must differ")
	}
}

func TestClickLogLabelsLearnable(t *testing.T) {
	// The planted teacher must make labels predictable from its own logits:
	// check the empirical CTR of samples whose hot rows have positive latent
	// scores exceeds those with negative — indirectly, by checking overall
	// label rate is sane and correlated with table identity via repeats.
	ds := NewClickLog(11, 8, []int{1000, 1000}, 2)
	mb := ds.Batch(0, 4096)
	if err := mb.Validate([]int{1000, 1000}); err != nil {
		t.Fatal(err)
	}
	var pos float64
	for _, l := range mb.Labels {
		pos += float64(l)
	}
	rate := pos / float64(mb.N)
	if rate < 0.15 || rate > 0.85 {
		t.Fatalf("label rate %.3f out of sane range", rate)
	}
}

func TestClickLogZipfSkewPresent(t *testing.T) {
	ds := NewClickLog(3, 4, []int{100000}, 1)
	mb := ds.Batch(0, 8192)
	hot := 0
	for _, ix := range mb.Sparse[0].Indices {
		if ix < 100 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(mb.Sparse[0].Indices))
	if frac < 0.3 {
		t.Fatalf("click-log indices not skewed enough: top-100 gets %.3f", frac)
	}
}

func TestLatentStableAndZeroMeanish(t *testing.T) {
	ds := NewClickLog(5, 4, []int{1000}, 1)
	if ds.latent(0, 42) != ds.latent(0, 42) {
		t.Fatal("latent must be deterministic")
	}
	if ds.latent(0, 42) == ds.latent(1, 42) {
		t.Fatal("latent must differ across tables")
	}
	var sum, sumSq float64
	const n = 10000
	for i := int32(0); i < n; i++ {
		v := ds.latent(0, i)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Fatalf("latent mean %.3f not ≈0", mean)
	}
	if math.Abs(std-ds.TableSignal) > 0.1 {
		t.Fatalf("latent std %.3f want ≈%.2f", std, ds.TableSignal)
	}
}

func TestShardPartitionsBatch(t *testing.T) {
	ds := &Random{Seed: 2, D: 4, Tables: 3, Rows: 64, Lookups: 2}
	mb := ds.Batch(0, 12)
	const R = 4
	total := 0
	for r := 0; r < R; r++ {
		sh := mb.Shard(r, R)
		if err := sh.Validate([]int{64, 64, 64}); err != nil {
			t.Fatalf("shard %d invalid: %v", r, err)
		}
		total += sh.N
		// Shard rows must match the global batch.
		lo := mb.N * r / R
		for i := 0; i < sh.N; i++ {
			for c := 0; c < 4; c++ {
				if sh.Dense.At(i, c) != mb.Dense.At(lo+i, c) {
					t.Fatal("shard dense rows mismatch")
				}
			}
			if sh.Labels[i] != mb.Labels[lo+i] {
				t.Fatal("shard labels mismatch")
			}
		}
		// Sparse: shard bag s must equal global bag lo+s.
		for ti, b := range sh.Sparse {
			g := mb.Sparse[ti]
			for s := 0; s < sh.N; s++ {
				sLo, sHi := b.Offsets[s], b.Offsets[s+1]
				gLo, gHi := g.Offsets[lo+s], g.Offsets[lo+s+1]
				if sHi-sLo != gHi-gLo {
					t.Fatal("shard bag size mismatch")
				}
				for k := int32(0); k < sHi-sLo; k++ {
					if b.Indices[sLo+k] != g.Indices[gLo+k] {
						t.Fatal("shard bag indices mismatch")
					}
				}
			}
		}
	}
	if total != mb.N {
		t.Fatalf("shards cover %d of %d samples", total, mb.N)
	}
}

func TestCriteoTBRows(t *testing.T) {
	if len(CriteoTBRows) != 26 {
		t.Fatalf("MLPerf DLRM has 26 tables, got %d", len(CriteoTBRows))
	}
	var sum, maxRows int
	for _, r := range CriteoTBRows {
		sum += r
		if r > maxRows {
			maxRows = r
		}
	}
	if maxRows > 40_000_000 {
		t.Fatal("rows must be capped at 40M (Table I)")
	}
	// Total table memory at E=128: ≈96 GB (Table II says 98).
	gb := float64(sum) * 128 * 4 / 1e9
	if gb < 90 || gb > 105 {
		t.Fatalf("MLPerf table capacity %.1f GB, want ≈98", gb)
	}
}

func TestScaleRows(t *testing.T) {
	rows := ScaleRows([]int{1000, 3, 40_000_000}, 0.001)
	if rows[0] != 1 || rows[1] != 1 || rows[2] != 40000 {
		t.Fatalf("ScaleRows wrong: %v", rows)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	ds := &Random{Seed: 1, D: 4, Tables: 2, Rows: 10, Lookups: 1}
	mb := ds.Batch(0, 4)
	if err := mb.Validate([]int{10}); err == nil {
		t.Fatal("table count mismatch not caught")
	}
	if err := mb.Validate([]int{10, 2}); err == nil {
		t.Fatal("out-of-range indices not caught")
	}
}

func TestFileDatasetRoundTrip(t *testing.T) {
	src := NewClickLog(9, 6, []int{100, 200}, 3)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, src, 50, 16, 3); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFileDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if f.N != 50 || f.D != 6 || f.Tables != 2 || f.Lookups != 3 {
		t.Fatalf("header wrong: %+v", f)
	}
	// The first batch must reproduce the source samples exactly.
	want := src.Batch(0, 16)
	got := f.Batch(0, 16)
	if err := got.Validate([]int{100, 200}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		if got.Labels[s] != want.Labels[s] {
			t.Fatalf("label %d mismatch", s)
		}
		for c := 0; c < 6; c++ {
			if got.Dense.At(s, c) != want.Dense.At(s, c) {
				t.Fatalf("dense (%d,%d) mismatch", s, c)
			}
		}
		for ti := range got.Sparse {
			gl, gh := got.Sparse[ti].Offsets[s], got.Sparse[ti].Offsets[s+1]
			wl := want.Sparse[ti].Offsets[s]
			for k := int32(0); k < gh-gl; k++ {
				if got.Sparse[ti].Indices[gl+k] != want.Sparse[ti].Indices[wl+k] {
					t.Fatalf("indices mismatch sample %d table %d", s, ti)
				}
			}
		}
	}
}

func TestFileDatasetWraps(t *testing.T) {
	src := NewClickLog(9, 4, []int{50}, 2)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, src, 10, 10, 2); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFileDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// A batch past the end wraps around rather than failing.
	mb := f.Batch(3, 8) // samples 24..31 mod 10
	if mb.N != 8 {
		t.Fatal("wrapped batch wrong size")
	}
	first := f.Batch(0, 10)
	if mb.Labels[0] != first.Labels[4] { // 24 mod 10 = 4
		t.Fatal("wrap offset wrong")
	}
}

func TestOpenFileDatasetRejectsGarbage(t *testing.T) {
	if _, err := OpenFileDataset(bytes.NewReader([]byte("garbage bytes here........"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWriteDatasetRejectsVariableBags(t *testing.T) {
	src := NewClickLog(9, 4, []int{50}, 2)
	var buf bytes.Buffer
	// Claim 3 lookups while the source produces 2: must error.
	if err := WriteDataset(&buf, src, 10, 10, 3); err == nil {
		t.Fatal("lookups mismatch accepted")
	}
}

func TestWriteDatasetShardSplitsBatches(t *testing.T) {
	src := NewClickLog(9, 5, []int{100, 40}, 2)
	const n, batchN, R = 40, 16, 3
	var full bytes.Buffer
	if err := WriteDataset(&full, src, n, batchN, 2); err != nil {
		t.Fatal(err)
	}
	fullDS, err := OpenFileDataset(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Each shard writer must emit exactly rank r's slice of every global
	// batch; together the shards repartition the full file.
	total := 0
	for r := 0; r < R; r++ {
		var buf bytes.Buffer
		if err := WriteDatasetShard(&buf, src, r, R, n, batchN, 2); err != nil {
			t.Fatal(err)
		}
		sh, err := OpenFileDataset(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		total += sh.N
		// Walk the shard's records against the full file's batches.
		rec := 0
		for batch := 0; batch*batchN < n; batch++ {
			bn := min(batchN, n-batch*batchN)
			lo, hi := bn*r/R, bn*(r+1)/R
			for s := lo; s < hi; s++ {
				want := fullDS.Batch(0, fullDS.N) // whole file as one batch
				got := sh.Batch(0, sh.N)
				gsrc := batch*batchN + s
				if got.Labels[rec] != want.Labels[gsrc] {
					t.Fatalf("rank %d record %d: label mismatch vs global sample %d", r, rec, gsrc)
				}
				for c := 0; c < 5; c++ {
					if got.Dense.At(rec, c) != want.Dense.At(gsrc, c) {
						t.Fatalf("rank %d record %d dense col %d mismatch", r, rec, c)
					}
				}
				rec++
			}
		}
		if rec != sh.N {
			t.Fatalf("rank %d: walked %d records, file has %d", r, rec, sh.N)
		}
	}
	if total != n {
		t.Fatalf("shards hold %d of %d samples", total, n)
	}
}

package data

import (
	"math"
	"math/rand"

	"repro/internal/embedding"
)

// RequestLog is the serving-traffic dataset: every request belongs to an
// *entity* (a user/item pair key) drawn Zipf(EntitySkew) over a fixed
// Universe, and an entity's table rows are a pure function of (entity,
// table) — so when a hot entity recurs, the very same embedding rows recur
// with it. That per-request hot-row reuse is what a tiered parameter store
// (internal/embstore) or a result cache can actually exploit; ClickLog, by
// contrast, draws every sample's bags independently, making requests
// exchangeable — Zipf-hot rows but no repeated row *sets*.
//
// Like every dataset here it is counter-based and randomly addressable:
// sample (i, s) derives its entity from its own stream, and the entity's
// profile streams are keyed by the entity alone, so any slice of any batch
// is re-materializable bit-identically — shards, replays, and the serving
// dispatcher's arbitrary batch boundaries all see the same requests.
type RequestLog struct {
	Seed    int64
	D       int
	Rows    []int // per-table row counts
	Lookups int

	// Universe is the entity-id space requests draw from; EntitySkew the
	// Zipf exponent of traffic over it (the head entities are the hot
	// requests). RowSkew shapes which rows an entity's profile references
	// within each table.
	Universe   int
	EntitySkew float64
	RowSkew    float64

	// Teacher parameters (the ClickLog teacher over entity profiles).
	TableSignal float64
	DenseSignal float64
	Bias        float64

	denseW []float64
}

// NewRequestLog builds a serving request log with click-log defaults:
// Criteo-like 1.05 skew for both entities and rows, a 100k-entity universe,
// and the ClickLog teacher so functional predictions have structure.
func NewRequestLog(seed int64, d int, rows []int, lookups int) *RequestLog {
	r := &RequestLog{
		Seed: seed, D: d, Rows: rows, Lookups: lookups,
		Universe: 100_000, EntitySkew: 1.05, RowSkew: 1.05,
		TableSignal: 0.6, DenseSignal: 0.4, Bias: -0.4,
	}
	rng := rand.New(rand.NewSource(seed))
	r.denseW = make([]float64, d)
	for i := range r.denseW {
		r.denseW[i] = rng.NormFloat64() * r.DenseSignal
	}
	return r
}

// NumTables implements Dataset.
func (r *RequestLog) NumTables() int { return len(r.Rows) }

// DenseDim implements Dataset.
func (r *RequestLog) DenseDim() int { return r.D }

// Entity returns the entity request (i, s) belongs to — exported so
// serving-side caches and tests can key on it.
func (r *RequestLog) Entity(i, s int) int32 {
	g := sampleStream(r.Seed, reqTag, i, s)
	return embedding.Zipf{S: r.EntitySkew}.DrawU(g.f64(), r.Universe)
}

// entityRows appends entity e's row set for table t to b.Indices — the
// same rows on every request of e, which is the whole point.
func (r *RequestLog) entityRows(e int32, t int, b *embedding.Batch) {
	g := tableStream(r.Seed, reqProfTag, int(e), 0, t)
	zipf := embedding.Zipf{S: r.RowSkew}
	for l := 0; l < r.Lookups; l++ {
		b.Indices = append(b.Indices, zipf.DrawU(g.f64(), r.Rows[t]))
	}
}

// latent mirrors ClickLog's hashed teacher score for (table, row).
func (r *RequestLog) latent(table int, row int32) float64 {
	h := uint64(r.Seed) ^ uint64(table)<<32 ^ uint64(uint32(row))
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	u1 := float64(h&0xFFFFFFFF) / float64(1<<32)
	u2 := float64(h>>32) / float64(1<<32)
	z := math.Sqrt(-2*math.Log(u1+1e-12)) * math.Cos(2*math.Pi*u2)
	return z * r.TableSignal
}

// Batch implements Dataset.
func (r *RequestLog) Batch(i, n int) *MiniBatch { return materialize(r, i, n) }

// FillRange implements Dataset: dense features come from the entity's
// profile stream (a returning user presents the same features), the label
// is a per-request Bernoulli draw under the teacher's click probability.
func (r *RequestLog) FillRange(i, n, lo, hi int, mb *MiniBatch) {
	mb.Reset(hi-lo, r.D, len(r.Rows))
	for s := lo; s < hi; s++ {
		e := r.Entity(i, s)
		gd := sampleStream(r.Seed, reqProfTag, int(e), -1)
		logit := r.Bias
		row := mb.Dense.Row(s - lo)
		for j := range row {
			v := math.Log1p(math.Abs(gd.norm())*3) - 1.2
			row[j] = float32(v)
			logit += r.denseW[j] * v
		}
		for t := range r.Rows {
			b := mb.Sparse[t]
			base := len(b.Indices)
			r.entityRows(e, t, b)
			var acc float64
			for _, idx := range b.Indices[base:] {
				acc += r.latent(t, idx)
			}
			b.Offsets[s-lo+1] = int32(len(b.Indices))
			logit += acc / float64(r.Lookups)
		}
		pCTR := 1 / (1 + math.Exp(-logit))
		lbl := sampleStream(r.Seed, reqLblTag, i, s)
		if lbl.f64() < pCTR {
			mb.Labels[s-lo] = 1
		} else {
			mb.Labels[s-lo] = 0
		}
	}
}

// FillTableColumn implements Dataset.
func (r *RequestLog) FillTableColumn(i, n, t, lo, hi int, b *embedding.Batch) {
	b.Reset(hi - lo)
	for s := lo; s < hi; s++ {
		r.entityRows(r.Entity(i, s), t, b)
		b.Offsets[s-lo+1] = int32(len(b.Indices))
	}
}

package data

import "math"

// Per-sample counter-based random streams.
//
// The original generators drew one sequential rand.Rand stream per batch,
// which forces whoever wants sample s to first generate samples 0..s-1 —
// exactly the "every rank reads the full global minibatch" access pattern
// of the §VI-D2 loader artifact. Sharded loading needs random access: rank
// r must materialize samples [r·N/R, (r+1)·N/R) — and, for the tables it
// owns under model parallelism, one table's column over ALL samples —
// without touching the rest. So every (batch, sample) and every (batch,
// sample, table) pair seeds its own splitmix64 stream, derived purely from
// the dataset seed and those coordinates. Streams are value types on the
// caller's stack: generation performs no heap allocation and is safe for
// concurrent fills of distinct buffers.
type sampleRNG struct {
	s uint64
}

// splitmix64 is the stream generator: tiny state, cheap seeding, passes
// BigCrush — exactly what per-sample seeding needs (a rand.Rand would cost
// an allocation and a ~2 KiB reseed per sample).
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// streamSeed hashes the four stream coordinates into a seed. Each
// coordinate passes through one splitmix round before mixing so that
// adjacent (batch, sample) pairs land in unrelated states.
func streamSeed(seed int64, tag uint64, batch, sub int) sampleRNG {
	s := uint64(seed) ^ tag
	splitmix64(&s)
	s ^= uint64(batch) * 0x5851F42D4C957F2D
	splitmix64(&s)
	s ^= uint64(sub) * 0xDA942042E4DD58B5
	splitmix64(&s)
	return sampleRNG{s}
}

// sampleStream returns the stream for sample `sample` of batch `batch`
// (dense features and the label draw).
func sampleStream(seed int64, tag uint64, batch, sample int) sampleRNG {
	return streamSeed(seed, tag, batch, sample)
}

// tableStream returns the stream for table t's lookups of sample `sample`
// of batch `batch` — independent of sampleStream so a table column can be
// regenerated on its own.
func tableStream(seed int64, tag uint64, batch, sample, t int) sampleRNG {
	return streamSeed(seed, tag^(0x9E3779B97F4A7C15*uint64(t+1)), batch, sample)
}

// Stream tags keep the datasets' draws disjoint even under equal seeds.
const (
	randomTag   = 0x52414E44 // "RAND"
	clickTag    = 0x434C4943 // "CLIC"
	clickLblTag = 0x4C41424C // "LABL"
	reqTag      = 0x52455155 // "REQU" — request→entity draws
	reqProfTag  = 0x50524F46 // "PROF" — entity profiles (rows, dense)
	reqLblTag   = 0x524C424C // "RLBL" — request label draws
)

// u64 returns the next raw 64-bit value.
func (g *sampleRNG) u64() uint64 { return splitmix64(&g.s) }

// f64 returns a uniform float64 in [0, 1).
func (g *sampleRNG) f64() float64 {
	return float64(g.u64()>>11) / (1 << 53)
}

// f32 returns a uniform float32 in [0, 1).
func (g *sampleRNG) f32() float32 {
	return float32(g.u64()>>40) / (1 << 24)
}

// norm returns a standard normal via Box-Muller (two uniforms per call; the
// second root is discarded to keep the stream's draw count fixed per call).
func (g *sampleRNG) norm() float64 {
	u1 := g.f64()
	u2 := g.f64()
	return math.Sqrt(-2*math.Log(u1+1e-300)) * math.Cos(2*math.Pi*u2)
}

package data

import (
	"fmt"
	"sync"

	"repro/internal/embedding"
)

// RankBatch is what one rank consumes each iteration under the paper's
// hybrid parallelism: its N/R sample shard (dense features, labels, and the
// shard's bags for every table — the data-parallel inputs), plus, for each
// embedding table the rank owns under model parallelism, that table's bags
// over the FULL global minibatch (the model-parallel inputs the alltoall
// redistributes). Owned is indexed by local table position, matching the
// order of the owned-table id list the loader was built with.
type RankBatch struct {
	Iter  int
	Local *MiniBatch
	Owned []*embedding.Batch

	// store backs Owned when the loader fills columns itself (sharded
	// mode); the artifact loader instead aliases Owned into its global
	// staging buffer. Sharded fills re-bind Owned to store every batch, so
	// alternating loader kinds over one LoaderBuffers cannot leave a slot
	// aliased into another buffer.
	store []embedding.Batch
}

// Loader streams per-rank batches. Next returns the next iteration's batch;
// the returned RankBatch and everything it points into are owned by the
// loader and valid only until the following Next call. Close releases any
// prefetch resources and is idempotent; Next must not be called after
// Close.
type Loader interface {
	Next() *RankBatch
	Close()
}

// LoaderConfig describes the slice of a dataset one rank's loader serves.
type LoaderConfig struct {
	DS      Dataset
	GlobalN int // global minibatch size N
	Rank    int // this rank r
	Ranks   int // rank count R (0 ⇒ 1)
	// Owned lists the table ids this rank owns under model parallelism;
	// their full-batch columns are materialized into RankBatch.Owned. nil
	// for pure data parallelism (single socket).
	Owned []int
	// Start is the first batch index served (batch indices feed
	// Dataset.FillRange, so a loader can resume mid-stream).
	Start int
	// Buffers optionally supplies persistent staging storage. Loaders are
	// cheap, per-run objects; the buffers are where the batch memory lives.
	// Passing the same LoaderBuffers to successive loaders (as the
	// per-rank distributed workspaces do) makes every fill after the first
	// run reuse storage. nil ⇒ the loader owns private buffers.
	Buffers *LoaderBuffers
}

// ShardRange returns the half-open sample range [lo, hi) of the global
// minibatch that rank `rank` of `ranks` reads — the sharding contract the
// sharded loader, MiniBatch.ShardInto, and the elastic resharding checks
// all share. For any rank count the ranges are contiguous, non-overlapping,
// and exactly partition [0, globalN), so after a failure redistributes data
// shards (R → R−1) the survivors' slices still cover every sample once.
func ShardRange(globalN, rank, ranks int) (lo, hi int) {
	return globalN * rank / ranks, globalN * (rank + 1) / ranks
}

func (c *LoaderConfig) normalize() {
	if c.Ranks == 0 {
		c.Ranks = 1
	}
	if c.Rank < 0 || c.Rank >= c.Ranks {
		panic(fmt.Sprintf("data: loader rank %d of %d", c.Rank, c.Ranks))
	}
	if c.Buffers == nil {
		c.Buffers = &LoaderBuffers{}
	}
	c.Buffers.setup()
}

// LoaderBuffers owns the staging storage loaders fill batches into: the two
// RankBatch slots a double-buffered loader cycles through, and the global
// MiniBatch the artifact loader materializes. A LoaderBuffers outlives the
// (cheap) loader objects borrowing it — e.g. across the many RunDistributed
// calls of a figure sweep — so steady-state batch production allocates
// nothing. It may back at most one live loader at a time.
type LoaderBuffers struct {
	local  [2]MiniBatch
	ring   [2]RankBatch
	global MiniBatch
	once   sync.Once
}

func (lb *LoaderBuffers) setup() {
	lb.once.Do(func() {
		for k := range lb.ring {
			lb.ring[k].Local = &lb.local[k]
		}
	})
}

// ensureOwnedSlice sizes the Owned pointer list to nOwned entries.
func (rb *RankBatch) ensureOwnedSlice(nOwned int) {
	if len(rb.Owned) != nOwned {
		grown := make([]*embedding.Batch, nOwned)
		copy(grown, rb.Owned)
		rb.Owned = grown
	}
}

// bindOwnedStore points Owned at nOwned batches of this slot's private
// backing storage (growing it monotonically, a struct copy preserving each
// batch's slices).
func (rb *RankBatch) bindOwnedStore(nOwned int) {
	rb.ensureOwnedSlice(nOwned)
	if len(rb.store) < nOwned {
		grown := make([]embedding.Batch, nOwned)
		copy(grown, rb.store)
		rb.store = grown
	}
	for i := 0; i < nOwned; i++ {
		rb.Owned[i] = &rb.store[i]
	}
}

// ShardedLoader is the fixed data pipeline: each rank reads ONLY its N/R
// sample slice (sparse offsets rebased at the source) plus its owned
// tables' full-batch columns — ≈2/R of the global batch instead of the
// §VI-D2 artifact's full read — and production is double-buffered: a
// prefetch goroutine fills one RankBatch while the trainer consumes the
// other, so generation overlaps compute. After the two staging buffers have
// reached steady-state capacity, Next performs zero heap allocations
// (enforced by loader_alloc_test.go).
type ShardedLoader struct {
	cfg   LoaderConfig
	free  chan *RankBatch // consumer → producer: buffer ready for refill
	ready chan *RankBatch // producer → consumer: filled batch
	stop  chan struct{}
	done  chan struct{} // closed when the producer has exited
	prev  *RankBatch
	once  sync.Once
}

// NewShardedLoader starts the prefetch pipeline for one rank.
func NewShardedLoader(c LoaderConfig) *ShardedLoader {
	c.normalize()
	l := &ShardedLoader{
		cfg:   c,
		free:  make(chan *RankBatch, 2),
		ready: make(chan *RankBatch, 2),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	l.free <- &c.Buffers.ring[0]
	l.free <- &c.Buffers.ring[1]
	go l.produce()
	return l
}

// produce runs on the prefetch goroutine, filling staging buffers as the
// consumer recycles them. The channel handoff is the happens-before edge
// publishing each fill; with both buffers in flight the producer stays one
// batch ahead of the trainer.
func (l *ShardedLoader) produce() {
	defer close(l.done)
	c := &l.cfg
	lo, hi := ShardRange(c.GlobalN, c.Rank, c.Ranks)
	for it := c.Start; ; it++ {
		var rb *RankBatch
		select {
		case rb = <-l.free:
		case <-l.stop:
			return
		}
		rb.Iter = it
		c.DS.FillRange(it, c.GlobalN, lo, hi, rb.Local)
		rb.bindOwnedStore(len(c.Owned))
		for li, t := range c.Owned {
			c.DS.FillTableColumn(it, c.GlobalN, t, 0, c.GlobalN, rb.Owned[li])
		}
		select {
		case l.ready <- rb:
		case <-l.stop:
			return
		}
	}
}

// Next implements Loader: it recycles the previously returned buffer to the
// producer and hands out the next prefetched batch.
func (l *ShardedLoader) Next() *RankBatch {
	if l.prev != nil {
		l.free <- l.prev
	}
	rb := <-l.ready
	l.prev = rb
	return rb
}

// NextBatch returns the next batch's sample shard — the whole minibatch for
// a single-rank loader, which is the convenient single-socket entry point.
func (l *ShardedLoader) NextBatch() *MiniBatch { return l.Next().Local }

// Close implements Loader. It stops the prefetch goroutine and waits for
// it to exit, so a successor loader borrowing the same LoaderBuffers (the
// per-rank workspaces hand one across runs) can never observe a stale
// producer still filling them. The wait cannot block: the producer's sends
// go to channels deep enough for every staging buffer, so it always
// reaches its stop check.
func (l *ShardedLoader) Close() {
	l.once.Do(func() { close(l.stop) })
	<-l.done
}

// NewBatchLoader returns a single-rank streaming loader over ds — a
// prefetching, buffer-reusing replacement for calling ds.Batch in a
// training loop — starting at batch index start with n samples per batch.
func NewBatchLoader(ds Dataset, n, start int) *ShardedLoader {
	return NewShardedLoader(LoaderConfig{DS: ds, GlobalN: n, Start: start})
}

// GlobalReadLoader reproduces the §VI-D2 framework loader artifact: every
// rank materializes the FULL global minibatch and then carves out its
// shard, so per-rank loading work is O(N) instead of O(N/R) and grows with
// the rank count under weak scaling (Fig. 13's MLPerf compute growth). It
// is deliberately synchronous — the framework path it models has no
// prefetch pipeline — and exists as the baseline the sharded loader is
// measured against; its batches are bit-identical to ShardedLoader's.
type GlobalReadLoader struct {
	cfg LoaderConfig
	it  int
}

// NewGlobalReadLoader builds the artifact loader for one rank.
func NewGlobalReadLoader(c LoaderConfig) *GlobalReadLoader {
	c.normalize()
	return &GlobalReadLoader{cfg: c, it: c.Start}
}

// Next implements Loader: a full global-batch read, then the shard copy.
// Owned columns alias the global staging buffer (the framework loader
// already holds the whole batch, so owners index straight into it).
func (l *GlobalReadLoader) Next() *RankBatch {
	c := &l.cfg
	g := &c.Buffers.global
	rb := &c.Buffers.ring[0]
	c.DS.FillRange(l.it, c.GlobalN, 0, c.GlobalN, g)
	g.ShardInto(c.Rank, c.Ranks, rb.Local)
	rb.ensureOwnedSlice(len(c.Owned))
	for li, t := range c.Owned {
		rb.Owned[li] = g.Sparse[t]
	}
	rb.Iter = l.it
	l.it++
	return rb
}

// Close implements Loader (nothing to release).
func (l *GlobalReadLoader) Close() {}

//go:build !race

package data

// raceEnabled mirrors race_on_test.go for plain builds.
const raceEnabled = false

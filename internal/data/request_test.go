package data

import (
	"testing"

	"repro/internal/embedding"
)

func testRequestLog() *RequestLog {
	return NewRequestLog(7, 8, []int{200, 300, 100, 250}, 3)
}

// TestRequestLogEntityRowReuse is the dataset's reason to exist: two
// requests that draw the same entity must present bit-identical sparse
// rows in every table — that recurrence is what a hot-row cache exploits.
func TestRequestLogEntityRowReuse(t *testing.T) {
	rl := testRequestLog()
	const n = 256
	// Find two distinct (batch, sample) coordinates sharing an entity.
	type coord struct{ i, s int }
	seen := map[int32]coord{}
	var a, b coord
	found := false
	for i := 0; i < 8 && !found; i++ {
		for s := 0; s < n; s++ {
			e := rl.Entity(i, s)
			if prev, ok := seen[e]; ok && (prev.i != i || prev.s != s) {
				a, b, found = prev, coord{i, s}, true
				break
			}
			seen[e] = coord{i, s}
		}
	}
	if !found {
		t.Fatal("no repeated entity in 8×256 requests — skew defaults broken")
	}
	bag := func(b *embedding.Batch, s int) []int32 {
		return b.Indices[b.Offsets[s]:b.Offsets[s+1]]
	}
	ma := rl.Batch(a.i, n)
	mb := rl.Batch(b.i, n)
	for tb := range rl.Rows {
		ra := bag(ma.Sparse[tb], a.s)
		rb := bag(mb.Sparse[tb], b.s)
		if len(ra) != rl.Lookups {
			t.Fatalf("table %d: %d lookups, want %d", tb, len(ra), rl.Lookups)
		}
		for l := range ra {
			if ra[l] != rb[l] {
				t.Fatalf("table %d lookup %d: same entity, rows %d vs %d",
					tb, l, ra[l], rb[l])
			}
		}
	}
}

// TestRequestLogEntitySkew checks the entity draws actually follow the
// configured Zipf: the measured head mass over the top-k entities must
// track the analytic CDF.
func TestRequestLogEntitySkew(t *testing.T) {
	rl := testRequestLog()
	const n = 50_000
	hits := 0
	const head = 1000
	for s := 0; s < n; s++ {
		if int(rl.Entity(0, s)) < head {
			hits++
		}
	}
	want := embedding.Zipf{S: rl.EntitySkew}.HeadMass(head, rl.Universe)
	got := float64(hits) / n
	if d := got - want; d < -0.03 || d > 0.03 {
		t.Errorf("top-%d entity mass %.4f, analytic %.4f", head, got, want)
	}
}

// TestRequestLogColumnMatchesRange: the random-access column fill must
// agree bit-for-bit with the full-range fill — the model-parallel loader
// contract every dataset honors.
func TestRequestLogColumnMatchesRange(t *testing.T) {
	rl := testRequestLog()
	const n = 64
	mb := &MiniBatch{}
	rl.FillRange(3, n, 0, n, mb)
	var col embedding.Batch
	for tb := range rl.Rows {
		rl.FillTableColumn(3, n, tb, 0, n, &col)
		if len(col.Indices) != len(mb.Sparse[tb].Indices) {
			t.Fatalf("table %d: column %d indices, range %d",
				tb, len(col.Indices), len(mb.Sparse[tb].Indices))
		}
		for i := range col.Indices {
			if col.Indices[i] != mb.Sparse[tb].Indices[i] {
				t.Fatalf("table %d index %d: column %d, range %d",
					tb, i, col.Indices[i], mb.Sparse[tb].Indices[i])
			}
		}
	}
}

// TestRequestLogDeterministic: repeated materialization of the same batch
// is bit-identical, and the batch passes the structural validator.
func TestRequestLogDeterministic(t *testing.T) {
	rl := testRequestLog()
	const n = 64
	a := rl.Batch(5, n)
	b := rl.Batch(5, n)
	if err := a.Validate(rl.Rows); err != nil {
		t.Fatalf("batch invalid: %v", err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d differs across fills", i)
		}
	}
	for i := range a.Dense.Data {
		if a.Dense.Data[i] != b.Dense.Data[i] {
			t.Fatalf("dense %d differs across fills", i)
		}
	}
	ones := 0
	for _, l := range a.Labels {
		if l == 1 {
			ones++
		}
	}
	if ones == 0 || ones == n {
		t.Errorf("degenerate labels: %d/%d positive", ones, n)
	}
}

package mlp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
	"repro/internal/tensor"
)

func naiveLayerForward(x, w *tensor.Dense, bias []float32, act Activation) *tensor.Dense {
	y := tensor.NewDense(x.Rows, w.Rows)
	for n := 0; n < x.Rows; n++ {
		for k := 0; k < w.Rows; k++ {
			var acc float64
			for c := 0; c < x.Cols; c++ {
				acc += float64(x.At(n, c)) * float64(w.At(k, c))
			}
			acc += float64(bias[k])
			switch act {
			case ReLU:
				if acc < 0 {
					acc = 0
				}
			case Sigmoid:
				acc = 1 / (1 + math.Exp(-acc))
			}
			y.Set(n, k, float32(acc))
		}
	}
	return y
}

func TestBlockPick(t *testing.T) {
	cases := []struct{ dim, cap, want int }{
		{1024, 64, 64}, {13, 64, 13}, {1, 64, 1}, {48, 64, 48}, {100, 64, 50},
		{1008, 64, 63}, {7, 4, 1},
	}
	for _, c := range cases {
		if got := BlockPick(c.dim, c.cap); got != c.want {
			t.Errorf("BlockPick(%d,%d)=%d want %d", c.dim, c.cap, got, c.want)
		}
	}
}

func TestLayerForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := par.NewPool(4)
	for _, act := range []Activation{None, ReLU, Sigmoid} {
		l := NewLayer(32, 48, 8, act, rng)
		xD := tensor.NewDense(16, 32)
		xD.Randomize(rng, 1)
		x := tensor.PackActs(xD, 8, l.BC)
		y := l.Forward(pool, x).Unpack()
		want := naiveLayerForward(xD, l.W.Unpack(), l.Bias, act)
		if !tensor.AllClose(y, want, 1e-4, 1e-5) {
			t.Fatalf("act=%d forward mismatch (max %g)", act, tensor.MaxAbsDiff(y, want))
		}
	}
}

func TestMLPForwardStack(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := par.NewPool(4)
	m := New([]int{16, 32, 8}, 4, ReLU, None, rng)
	xD := tensor.NewDense(8, 16)
	xD.Randomize(rng, 1)
	y := m.ForwardDense(pool, xD).Unpack()

	h := naiveLayerForward(xD, m.Layers[0].W.Unpack(), m.Layers[0].Bias, ReLU)
	want := naiveLayerForward(h, m.Layers[1].W.Unpack(), m.Layers[1].Bias, None)
	if !tensor.AllClose(y, want, 1e-4, 1e-5) {
		t.Fatalf("stack mismatch (max %g)", tensor.MaxAbsDiff(y, want))
	}
}

// TestGradientsNumerically verifies backward against central finite
// differences of the scalar loss L = Σ y²/2, for which dL/dy = y.
func TestGradientsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := par.NewPool(2)
	m := New([]int{6, 10, 4}, 2, ReLU, None, rng)
	xD := tensor.NewDense(4, 6)
	xD.Randomize(rng, 1)

	loss := func() float64 {
		y := m.ForwardDense(pool, xD).Unpack()
		var s float64
		for _, v := range y.Data {
			s += float64(v) * float64(v) / 2
		}
		return s
	}

	// Analytic gradients.
	y := m.ForwardDense(pool, xD)
	dy := y.Clone()
	dx := m.Backward(pool, dy, true)

	const eps = 1e-3
	checkTensor := func(name string, params []float32, grads []float32, count int) {
		for trial := 0; trial < count; trial++ {
			i := rng.Intn(len(params))
			orig := params[i]
			params[i] = orig + eps
			m.InvalidateTransposes()
			lp := loss()
			params[i] = orig - eps
			m.InvalidateTransposes()
			lm := loss()
			params[i] = orig
			m.InvalidateTransposes()
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(grads[i])
			if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: numeric %g analytic %g", name, i, numeric, analytic)
			}
		}
	}
	for li, l := range m.Layers {
		checkTensor("W", l.W.Data, l.DW.Data, 8)
		checkTensor("b", l.Bias, l.DBias, 4)
		_ = li
	}

	// Input gradient via finite differences too.
	dxD := dx.Unpack()
	for trial := 0; trial < 8; trial++ {
		i := rng.Intn(len(xD.Data))
		orig := xD.Data[i]
		xD.Data[i] = orig + eps
		lp := loss()
		xD.Data[i] = orig - eps
		lm := loss()
		xD.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dxD.Data[i])
		if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
			t.Errorf("dX[%d]: numeric %g analytic %g", i, numeric, analytic)
		}
	}
}

func TestStepReducesQuadraticLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := par.NewPool(2)
	m := New([]int{8, 16, 2}, 4, ReLU, None, rng)
	xD := tensor.NewDense(8, 8)
	xD.Randomize(rng, 1)

	lossOf := func(y *tensor.Acts) float64 {
		var s float64
		for _, v := range y.Data {
			s += float64(v) * float64(v) / 2
		}
		return s
	}
	y0 := m.ForwardDense(pool, xD)
	l0 := lossOf(y0)
	for iter := 0; iter < 20; iter++ {
		y := m.ForwardDense(pool, xD)
		m.Backward(pool, y.Clone(), false)
		m.Step(0.01)
	}
	l1 := lossOf(m.ForwardDense(pool, xD))
	if l1 >= l0 {
		t.Fatalf("SGD failed to reduce loss: %g -> %g", l0, l1)
	}
}

func TestStepInvalidatesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pool := par.NewPool(1)
	l := NewLayer(8, 8, 4, None, rng)
	x := tensor.NewActs(4, 8, 4, l.BC)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	y := l.Forward(pool, x)
	_ = l.Backward(pool, y.Clone(), true) // populates transpose cache
	wBefore := l.W.At(0, 0)
	l.Step(1) // mutates W, must invalidate cache
	if l.W.At(0, 0) == wBefore && l.DW.At(0, 0) != 0 {
		t.Fatal("Step did not update weights")
	}
	// After the step, a fresh backward must use the *new* weights: compare
	// dX against naive computation with current W.
	y2 := l.Forward(pool, x)
	dx := l.Backward(pool, y2.Clone(), true)
	dzD := y2.Unpack() // act=None so dz = dy = y2
	want := tensor.NewDense(4, 8)
	for n := 0; n < 4; n++ {
		for c := 0; c < 8; c++ {
			var acc float32
			for k := 0; k < 8; k++ {
				acc += dzD.At(n, k) * l.W.At(k, c)
			}
			want.Set(n, c, acc)
		}
	}
	if !tensor.AllClose(dx.Unpack(), want, 1e-4, 1e-5) {
		t.Fatal("backward used stale transposed weights after Step")
	}
}

func TestVisitParamsGradsAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := New([]int{4, 6, 2}, 2, ReLU, None, rng)
	var pNames, gNames []string
	var pLens, gLens []int
	m.VisitParams(func(n string, p []float32) { pNames = append(pNames, n); pLens = append(pLens, len(p)) })
	m.VisitGrads(func(n string, g []float32) { gNames = append(gNames, n); gLens = append(gLens, len(g)) })
	if len(pNames) != 4 || len(gNames) != 4 {
		t.Fatalf("expected 4 tensors, got %d/%d", len(pNames), len(gNames))
	}
	for i := range pNames {
		if pNames[i] != gNames[i] || pLens[i] != gLens[i] {
			t.Fatalf("params/grads misaligned at %d: %s/%d vs %s/%d", i, pNames[i], pLens[i], gNames[i], gLens[i])
		}
	}
	wantBytes := 4 * (4*6 + 6 + 6*2 + 2)
	if m.ParamBytes() != wantBytes {
		t.Fatalf("ParamBytes=%d want %d", m.ParamBytes(), wantBytes)
	}
}

func TestFlopsPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New([]int{10, 20, 5}, 2, ReLU, None, rng)
	want := 2.0 * (10*20 + 20*5)
	if m.FlopsPerSample() != want {
		t.Fatalf("FlopsPerSample=%g want %g", m.FlopsPerSample(), want)
	}
}

func TestMLPerfShapes(t *testing.T) {
	// The MLPerf config has a 13-wide input and a 1-wide output; ensure the
	// degenerate block sizes work end to end.
	rng := rand.New(rand.NewSource(8))
	pool := par.NewPool(4)
	bot := New([]int{13, 512, 256, 128}, 16, ReLU, ReLU, rng)
	top := New([]int{128, 512, 512, 256, 1}, 16, ReLU, None, rng)
	x := tensor.NewDense(32, 13)
	x.Randomize(rng, 1)
	h := bot.ForwardDense(pool, x)
	if h.C != 128 {
		t.Fatalf("bottom output C=%d", h.C)
	}
	hD := h.Unpack()
	y := top.ForwardDense(pool, hD)
	if y.C != 1 || y.N != 32 {
		t.Fatalf("top output %dx%d", y.N, y.C)
	}
	top.Backward(pool, y.Clone(), true)
	bot.Backward(pool, h.Clone(), false)
	top.Step(0.1)
	bot.Step(0.1)
}

// TestBackwardVisitMatchesBackward pins the layer-stepped refactor: driving
// the stack through BackwardVisit (the distributed bucketed path) must
// produce bit-identical gradients and dX to the plain Backward the fused
// single-socket path uses, and the visitor must fire once per layer in
// backward execution order (last layer first), after that layer's DW is
// written.
func TestBackwardVisitMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := par.NewPool(4)
	defer pool.Close()
	build := func() *MLP { return New([]int{16, 32, 24, 8}, 4, ReLU, None, rand.New(rand.NewSource(7))) }
	ref, m := build(), build()

	xD := tensor.NewDense(8, 16)
	xD.Randomize(rng, 1)
	dyD := tensor.NewDense(8, 8)
	dyD.Randomize(rng, 1)

	refOut := ref.ForwardDense(pool, xD).Clone()
	refDX := ref.Backward(pool, tensor.PackActs(dyD, 4, refOut.BC), true).Clone()

	out := m.ForwardDense(pool, xD)
	var order []int
	dx := m.BackwardVisit(pool, tensor.PackActs(dyD, 4, out.BC), true, func(i int) {
		order = append(order, i)
		// The visited layer's gradients must be final when the callback
		// fires: compare against the reference run's same layer.
		for _, g := range [][]float32{m.Layers[i].DW.Data, m.Layers[i].DBias} {
			for j := range g {
				_ = g[j] // touch: slice must be fully materialized
			}
		}
		refG, gotG := ref.Layers[i].DW.Data, m.Layers[i].DW.Data
		for j := range gotG {
			if gotG[j] != refG[j] {
				t.Fatalf("layer %d DW[%d] not final at visit: %g vs %g", i, j, gotG[j], refG[j])
			}
		}
	})
	if want := []int{2, 1, 0}; len(order) != len(want) {
		t.Fatalf("visited %v, want %v", order, want)
	} else {
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("visit order %v, want %v", order, want)
			}
		}
	}
	for i := range dx.Data {
		if dx.Data[i] != refDX.Data[i] {
			t.Fatalf("dX[%d] = %g, want %g", i, dx.Data[i], refDX.Data[i])
		}
	}
	for li := range m.Layers {
		for j := range m.Layers[li].DBias {
			if m.Layers[li].DBias[j] != ref.Layers[li].DBias[j] {
				t.Fatalf("layer %d DBias[%d] diverged", li, j)
			}
		}
	}
}

// TestLayerGradHelpers checks the per-layer gradient accounting the bucket
// plans rely on: LayerGradLen sums to the VisitGrads total in order, and
// VisitLayerGrads emits exactly layer i's slice of that order.
func TestLayerGradHelpers(t *testing.T) {
	m := New([]int{16, 32, 8}, 4, ReLU, None, rand.New(rand.NewSource(3)))
	var total int
	m.VisitGrads(func(_ string, g []float32) { total += len(g) })
	var sum int
	for i := range m.Layers {
		sum += m.LayerGradLen(i)
		var ln int
		m.VisitLayerGrads(i, func(_ string, g []float32) { ln += len(g) })
		if ln != m.LayerGradLen(i) {
			t.Fatalf("layer %d: VisitLayerGrads len %d != LayerGradLen %d", i, ln, m.LayerGradLen(i))
		}
	}
	if sum != total {
		t.Fatalf("per-layer grad lengths sum to %d, VisitGrads total %d", sum, total)
	}
}

// TestStepLayersMatchesStep checks that stepping the stack bucket by bucket
// equals one whole-stack Step.
func TestStepLayersMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pool := par.NewPool(2)
	defer pool.Close()
	build := func() *MLP { return New([]int{8, 16, 16, 4}, 4, ReLU, None, rand.New(rand.NewSource(9))) }
	a, b := build(), build()
	xD := tensor.NewDense(8, 8)
	xD.Randomize(rng, 1)
	dyD := tensor.NewDense(8, 4)
	dyD.Randomize(rng, 1)
	for _, m := range []*MLP{a, b} {
		out := m.ForwardDense(pool, xD)
		m.Backward(pool, tensor.PackActs(dyD, 4, out.BC), false)
	}
	a.Step(0.25)
	b.StepLayers(2, 2, 0.25)
	b.StepLayers(0, 1, 0.25)
	for li := range a.Layers {
		for j := range a.Layers[li].W.Data {
			if a.Layers[li].W.Data[j] != b.Layers[li].W.Data[j] {
				t.Fatalf("layer %d W[%d]: Step vs StepLayers diverged", li, j)
			}
		}
	}
}

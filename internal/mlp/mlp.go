// Package mlp builds multi-layer perceptrons from the blocked GEMM kernels:
// fully-connected layers with fused bias and activation (the paper fuses
// ReLU into the GEMM epilogue while the C tile is hot in cache), the three
// training passes (forward, backward-by-data, backward-by-weights), and a
// stack type used for DLRM's bottom and top MLPs.
package mlp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gemm"
	"repro/internal/par"
	"repro/internal/tensor"
)

// Activation selects the fused epilogue of a fully-connected layer.
type Activation int

const (
	// None leaves the GEMM output linear (used before a fused
	// sigmoid+cross-entropy loss).
	None Activation = iota
	// ReLU clamps negatives to zero.
	ReLU
	// Sigmoid applies the logistic function.
	Sigmoid
)

// BlockPick returns the largest block size ≤ cap that divides dim. The
// paper's configs are mostly powers of two, but MLPerf's 13 dense features
// and final K=1 need degenerate blocks.
func BlockPick(dim, cap int) int {
	if dim <= 0 {
		panic(fmt.Sprintf("mlp: BlockPick dim=%d", dim))
	}
	for b := cap; b > 1; b-- {
		if dim%b == 0 {
			return b
		}
	}
	return 1
}

// Layer is one fully-connected layer y = act(W·x + bias) over blocked
// tensors, with storage for the gradients the optimizer consumes.
//
// Layers own their activation workspaces: Forward writes into a per-layer
// output tensor reused across calls (reallocated only when the minibatch
// shape changes), and Backward likewise reuses per-layer dz/dx tensors.
// Consequently the tensor returned by Forward is overwritten by the next
// Forward call on the same layer — callers that need to retain an output
// across steps must Clone it.
type Layer struct {
	C, K       int // input/output features
	BN, BC, BK int // block sizes (BN fixed by the owning MLP)
	Act        Activation

	// SparseInput marks layers whose input activations carry many exact
	// zeros (e.g. the output of an upstream ReLU). Such layers select the
	// sparsity-aware GEMM kernels for the passes that stream the input
	// (forward, backward-by-weights); dense layers use the branch-free
	// kernels.
	SparseInput bool

	W    *tensor.Weights
	Bias []float32

	// Gradients written by Backward.
	DW    *tensor.Weights
	DBias []float32

	// Cached transpose for backward-by-data; re-transposed in place after
	// every weight change (see InvalidateTranspose).
	wT      *tensor.Weights
	wTValid bool

	// Saved forward tensors for backward.
	savedX *tensor.Acts
	savedY *tensor.Acts

	// Reused workspaces (see type comment) and the per-call state the
	// static parallel bodies read; keeping the bodies package-level
	// functions and the state on the layer makes the hot path
	// allocation-free (no closure captures).
	y, dz, dx *tensor.Acts
	cur       *tensor.Acts // tensor the current parallel body operates on
}

// NewLayer constructs a layer with Kaiming-uniform init (scale 1/√C), which
// the convergence experiments need to reach reference accuracy.
func NewLayer(c, k, bn int, act Activation, rng *rand.Rand) *Layer {
	bc := BlockPick(c, 64)
	bk := BlockPick(k, 64)
	l := &Layer{
		C: c, K: k, BN: bn, BC: bc, BK: bk, Act: act,
		W:     tensor.NewWeights(k, c, bk, bc),
		Bias:  make([]float32, k),
		DW:    tensor.NewWeights(k, c, bk, bc),
		DBias: make([]float32, k),
	}
	scale := float32(1 / math.Sqrt(float64(c)))
	for i := range l.W.Data {
		l.W.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	for i := range l.Bias {
		l.Bias[i] = (rng.Float32()*2 - 1) * scale
	}
	return l
}

// InvalidateTranspose marks the cached Wᵀ stale; the optimizer must call
// this (or Layer.Step does) after mutating W. The transpose buffer itself is
// kept and rewritten in place on the next backward-by-data pass.
func (l *Layer) InvalidateTranspose() { l.wTValid = false }

// transposed returns the cached blocked transpose of W, re-transposing into
// the persistent buffer when stale.
func (l *Layer) transposed() *tensor.Weights {
	if !l.wTValid {
		if l.wT == nil {
			l.wT = tensor.NewWeights(l.W.C, l.W.K, l.W.BC, l.W.BK)
		}
		l.W.TransposeBlockedInto(l.wT)
		l.wTValid = true
	}
	return l.wT
}

// Forward computes y = act(W·x + bias). The input tensor is retained until
// the next Backward call; the returned output is a per-layer workspace
// overwritten by the next Forward.
func (l *Layer) Forward(p *par.Pool, x *tensor.Acts) *tensor.Acts {
	if x.C != l.C {
		panic(fmt.Sprintf("mlp: layer forward C=%d want %d", x.C, l.C))
	}
	y := tensor.EnsureActs(&l.y, x.N, l.K, x.BN, l.BK)
	if l.SparseInput {
		gemm.ForwardSkipZeros(p, l.W, x, y)
	} else {
		gemm.Forward(p, l.W, x, y)
	}
	l.applyBiasAct(p, y)
	l.savedX = x
	l.savedY = y
	return y
}

// biasActBody is the fused bias+activation epilogue over one output block.
func biasActBody(arg any, tid, kb, nb int) {
	l := arg.(*Layer)
	y := l.cur
	bk, bn := y.BC, y.BN // y's "C" is this layer's K
	blk := y.Block(kb, nb)
	bias := l.Bias[kb*bk : (kb+1)*bk]
	for ni := 0; ni < bn; ni++ {
		row := blk[ni*bk : (ni+1)*bk]
		switch l.Act {
		case None:
			for i := range row {
				row[i] += bias[i]
			}
		case ReLU:
			for i := range row {
				v := row[i] + bias[i]
				if v < 0 {
					v = 0
				}
				row[i] = v
			}
		case Sigmoid:
			for i := range row {
				row[i] = sigmoid32(row[i] + bias[i])
			}
		}
	}
}

// applyBiasAct adds the bias and applies the activation in one sweep over
// the blocked output — the fused epilogue.
func (l *Layer) applyBiasAct(p *par.Pool, y *tensor.Acts) {
	l.cur = y
	p.Run2DArg(y.Cb, y.Nb, biasActBody, l)
	l.cur = nil
}

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Backward consumes dY (gradient w.r.t. the activated output), writes DW and
// DBias, and returns dX. When wantDX is false (first layer of the bottom
// MLP) the backward-by-data GEMM is skipped. The returned dX is a per-layer
// workspace overwritten by the next Backward.
func (l *Layer) Backward(p *par.Pool, dy *tensor.Acts, wantDX bool) *tensor.Acts {
	if l.savedX == nil || l.savedY == nil {
		panic("mlp: Backward before Forward")
	}
	// Backprop through the activation on a copy of dy so callers may reuse
	// their gradient tensor; the copy lives in the layer's workspace.
	dz := tensor.EnsureActs(&l.dz, dy.N, dy.C, dy.BN, dy.BC)
	copy(dz.Data, dy.Data)
	l.backwardAct(p, dz)

	// Bias gradient: column sums of dz.
	l.biasGrad(p, dz)

	if l.SparseInput {
		gemm.BackwardWeightsSkipZeros(p, dz, l.savedX, l.DW)
	} else {
		gemm.BackwardWeights(p, dz, l.savedX, l.DW)
	}
	if !wantDX {
		return nil
	}
	dx := tensor.EnsureActs(&l.dx, dz.N, l.C, dz.BN, l.BC)
	if l.Act == ReLU {
		// dz was just zeroed wherever this layer's ReLU was inactive, so
		// the sparsity-aware kernel skips real work here.
		gemm.BackwardDataSkipZeros(p, l.transposed(), dz, dx)
	} else {
		gemm.BackwardData(p, l.transposed(), dz, dx)
	}
	return dx
}

// backActBody multiplies one chunk of dz by act'(y) using the saved output.
func backActBody(arg any, tid, lo, hi int) {
	l := arg.(*Layer)
	dz, y := l.cur, l.savedY
	start, end := lo*64, hi*64
	if end > len(dz.Data) {
		end = len(dz.Data)
	}
	switch l.Act {
	case ReLU:
		for i := start; i < end; i++ {
			if y.Data[i] <= 0 {
				dz.Data[i] = 0
			}
		}
	case Sigmoid:
		for i := start; i < end; i++ {
			s := y.Data[i]
			dz.Data[i] *= s * (1 - s)
		}
	}
}

// backwardAct multiplies dz by act'(y) elementwise using the saved output.
func (l *Layer) backwardAct(p *par.Pool, dz *tensor.Acts) {
	if l.Act == None {
		return
	}
	l.cur = dz
	p.ForNArg(len(dz.Data)/64+1, backActBody, l)
	l.cur = nil
}

// biasGradBody writes DBias[k] = Σ_n dz[n][k] for the feature blocks in
// [lo, hi).
func biasGradBody(arg any, tid, lo, hi int) {
	l := arg.(*Layer)
	dz := l.cur
	bk := dz.BC
	for kb := lo; kb < hi; kb++ {
		out := l.DBias[kb*bk : (kb+1)*bk]
		for i := range out {
			out[i] = 0
		}
		for nb := 0; nb < dz.Nb; nb++ {
			blk := dz.Block(kb, nb)
			for ni := 0; ni < dz.BN; ni++ {
				row := blk[ni*bk : (ni+1)*bk]
				for i := range out {
					out[i] += row[i]
				}
			}
		}
	}
}

// biasGrad writes DBias[k] = Σ_n dz[n][k].
func (l *Layer) biasGrad(p *par.Pool, dz *tensor.Acts) {
	l.cur = dz
	p.ForNArg(dz.Cb, biasGradBody, l)
	l.cur = nil
}

// Step applies plain SGD: W -= lr·DW, Bias -= lr·DBias, and invalidates the
// transpose cache. Distributed trainers that allreduce gradients first call
// this afterwards.
func (l *Layer) Step(lr float32) {
	for i := range l.W.Data {
		l.W.Data[i] -= lr * l.DW.Data[i]
	}
	for i := range l.Bias {
		l.Bias[i] -= lr * l.DBias[i]
	}
	l.InvalidateTranspose()
}

// MLP is a stack of fully-connected layers sharing a minibatch blocking.
type MLP struct {
	Sizes  []int // len = layers+1: input, hidden..., output
	BN     int
	Layers []*Layer
}

// New builds an MLP with the given feature sizes (sizes[0] is the input
// width). All layers use hiddenAct except the last, which uses lastAct.
// bn is the minibatch block size; the minibatch N passed to Forward must be
// divisible by it.
func New(sizes []int, bn int, hiddenAct, lastAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("mlp: need at least input and output sizes")
	}
	m := &MLP{Sizes: sizes, BN: bn}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = lastAct
		}
		l := NewLayer(sizes[i], sizes[i+1], bn, act, rng)
		// Hidden layers past the first consume the upstream activation's
		// output; when that activation is ReLU the input carries exact
		// zeros, so those layers select the sparsity-aware GEMM kernels.
		// The first layer sees the dense framework input and keeps the
		// branch-free kernels (the Fig. 5 configuration).
		l.SparseInput = i > 0 && hiddenAct == ReLU
		m.Layers = append(m.Layers, l)
	}
	return m
}

// Forward runs the stack on a dense N×C input and returns the blocked
// output.
func (m *MLP) Forward(p *par.Pool, x *tensor.Acts) *tensor.Acts {
	cur := x
	for _, l := range m.Layers {
		cur = l.Forward(p, cur)
	}
	return cur
}

// ForwardDense packs a dense input and runs Forward.
func (m *MLP) ForwardDense(p *par.Pool, x *tensor.Dense) *tensor.Acts {
	bc := BlockPick(x.Cols, 64)
	return m.Forward(p, tensor.PackActs(x, m.BN, bc))
}

// Backward runs the stack's backward passes from the output gradient,
// filling every layer's DW/DBias. When wantDX is true the gradient w.r.t.
// the network input is returned (DLRM needs it for the bottom MLP→embedding
// interaction path).
func (m *MLP) Backward(p *par.Pool, dy *tensor.Acts, wantDX bool) *tensor.Acts {
	return m.BackwardVisit(p, dy, wantDX, nil)
}

// BackwardVisit is the layer-stepped Backward: it runs the stack's backward
// passes from the output gradient and invokes onLayer(i) immediately after
// layer i's DW/DBias are materialized (layers are visited last to first, the
// backward execution order). Distributed trainers use the callback to issue
// each gradient bucket's allreduce the moment its layers are complete
// (Fig. 2's bucketed overlap); a nil onLayer makes this exactly Backward.
func (m *MLP) BackwardVisit(p *par.Pool, dy *tensor.Acts, wantDX bool, onLayer func(i int)) *tensor.Acts {
	cur := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		need := wantDX || i > 0
		cur = m.BackwardLayer(p, i, cur, need)
		if onLayer != nil {
			onLayer(i)
		}
	}
	return cur
}

// BackwardLayer runs layer i's backward pass alone: dy is the gradient
// w.r.t. that layer's activated output, and the returned dX (nil when
// wantDX is false) feeds layer i−1. Callers driving the stack manually must
// step layers from last to first, matching BackwardVisit.
func (m *MLP) BackwardLayer(p *par.Pool, i int, dy *tensor.Acts, wantDX bool) *tensor.Acts {
	return m.Layers[i].Backward(p, dy, wantDX)
}

// Step applies SGD to every layer.
func (m *MLP) Step(lr float32) {
	for _, l := range m.Layers {
		l.Step(lr)
	}
}

// VisitParams calls fn for every parameter tensor (weights then bias, per
// layer). Distributed trainers and alternative optimizers use this to
// enumerate state.
func (m *MLP) VisitParams(fn func(name string, p []float32)) {
	for i, l := range m.Layers {
		fn(fmt.Sprintf("layer%d.W", i), l.W.Data)
		fn(fmt.Sprintf("layer%d.b", i), l.Bias)
	}
}

// VisitGrads calls fn for every gradient tensor in the same order as
// VisitParams.
func (m *MLP) VisitGrads(fn func(name string, g []float32)) {
	for i, l := range m.Layers {
		fn(fmt.Sprintf("layer%d.W", i), l.DW.Data)
		fn(fmt.Sprintf("layer%d.b", i), l.DBias)
	}
}

// LayerGradLen returns the flat gradient length of layer i (weights then
// bias) — layer i's share of the VisitGrads order. Bucketed allreduce plans
// carve the flat gradient buffer by these lengths.
func (m *MLP) LayerGradLen(i int) int {
	l := m.Layers[i]
	return len(l.DW.Data) + len(l.DBias)
}

// VisitLayerGrads calls fn for layer i's gradient tensors only (weights
// then bias), in the same order VisitGrads emits them.
func (m *MLP) VisitLayerGrads(i int, fn func(name string, g []float32)) {
	l := m.Layers[i]
	fn(fmt.Sprintf("layer%d.W", i), l.DW.Data)
	fn(fmt.Sprintf("layer%d.b", i), l.DBias)
}

// StepLayers applies SGD to the layers in [lo, hi] only — the per-bucket
// slice of the optimizer pass that follows a bucketed gradient allreduce.
// StepLayers(0, len(Layers)-1, lr) is exactly Step(lr).
func (m *MLP) StepLayers(lo, hi int, lr float32) {
	for i := lo; i <= hi; i++ {
		m.Layers[i].Step(lr)
	}
}

// InvalidateTransposes drops every layer's cached Wᵀ; callers that mutate
// weights through VisitParams must invoke it.
func (m *MLP) InvalidateTransposes() {
	for _, l := range m.Layers {
		l.InvalidateTranspose()
	}
}

// ParamBytes returns the total parameter size in bytes, the per-rank
// allreduce volume of Eq. 1 (Σ_l f_i·f_o + f_o, times 4 bytes).
func (m *MLP) ParamBytes() int {
	total := 0
	m.VisitParams(func(_ string, p []float32) { total += 4 * len(p) })
	return total
}

// FlopsPerSample returns the forward FLOP count per sample (2·C·K summed
// over layers); backward-by-data and backward-by-weights each cost the same
// again, which the performance model uses.
func (m *MLP) FlopsPerSample() float64 {
	var f float64
	for i := 0; i+1 < len(m.Sizes); i++ {
		f += 2 * float64(m.Sizes[i]) * float64(m.Sizes[i+1])
	}
	return f
}

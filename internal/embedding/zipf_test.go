package embedding

import (
	"math"
	"testing"
)

// zipfTestU is a tiny counter-based uniform stream (splitmix64 finalizer on
// the draw counter) so the statistical test below is deterministic: same
// draws every run, no rand.Rand state to seed or share.
func zipfTestU(i uint64) float64 {
	i += 0x9E3779B97F4A7C15
	z := i
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// TestZipfDrawSkewMatchesAnalyticCDF checks the generator is actually
// skewed the way the tiered-store cost model assumes: the empirical mass
// DrawU places on the head [0, k) must match Zipf.HeadMass — the CDF of
// the continuous analogue DrawU inverts — within a tolerance a few times
// the binomial standard error. The embstore figure's hit-rate axis and the
// cold-tier timing charge both ride on this.
func TestZipfDrawSkewMatchesAnalyticCDF(t *testing.T) {
	const (
		m = 100_000
		n = 200_000
	)
	var ctr uint64
	for _, s := range []float64{0.8, 1.0, 1.05, 1.2} {
		z := Zipf{S: s}
		heads := []int{10, 100, 1_000, 10_000}
		counts := make([]int, len(heads))
		for i := 0; i < n; i++ {
			r := int(z.DrawU(zipfTestU(ctr), m))
			ctr++
			for j, k := range heads {
				if r < k {
					counts[j]++
				}
			}
		}
		for j, k := range heads {
			emp := float64(counts[j]) / n
			ana := z.HeadMass(k, m)
			// DrawU floors the continuous draw, so the discrete head mass
			// sits slightly above F(k+1); allow 5σ plus that bias margin.
			tol := 5*math.Sqrt(ana*(1-ana)/n) + 0.004
			if math.Abs(emp-ana) > tol {
				t.Errorf("s=%.2f head %d/%d: empirical mass %.4f vs analytic %.4f (tol %.4f)",
					s, k, m, emp, ana, tol)
			}
		}
	}
}

// TestZipfHeadMassProperties pins the CDF's edge cases and shape: bounds at
// the extremes, monotone in the head size, and — for any fixed small head —
// monotone in the skew (hotter traffic concentrates more mass), which is
// what makes the embstore figure's skew axis move.
func TestZipfHeadMassProperties(t *testing.T) {
	const m = 50_000
	for _, s := range []float64{0.5, 0.8, 1.0, 1.05, 1.2, 2.0} {
		z := Zipf{S: s}
		if got := z.HeadMass(0, m); got != 0 {
			t.Errorf("s=%v: HeadMass(0) = %v, want 0", s, got)
		}
		if got := z.HeadMass(-3, m); got != 0 {
			t.Errorf("s=%v: HeadMass(-3) = %v, want 0", s, got)
		}
		if got := z.HeadMass(m, m); got != 1 {
			t.Errorf("s=%v: HeadMass(m) = %v, want 1", s, got)
		}
		if got := z.HeadMass(m+10, m); got != 1 {
			t.Errorf("s=%v: HeadMass(m+10) = %v, want 1", s, got)
		}
		prev := 0.0
		for _, k := range []int{1, 10, 100, 1_000, 10_000, m} {
			h := z.HeadMass(k, m)
			if h < prev {
				t.Errorf("s=%v: HeadMass not monotone at k=%d: %v < %v", s, k, h, prev)
			}
			prev = h
		}
	}
	for _, k := range []int{10, 100, 1_000} {
		prev := 0.0
		for _, s := range []float64{0.5, 0.8, 1.0, 1.05, 1.2, 2.0} {
			h := Zipf{S: s}.HeadMass(k, m)
			if h <= prev {
				t.Errorf("k=%d: HeadMass not increasing in skew at s=%v: %v <= %v", k, s, h, prev)
			}
			prev = h
		}
	}
	// s <= 0 falls back to s = 1, matching DrawU's fallback.
	if a, b := (Zipf{S: 0}).HeadMass(100, m), (Zipf{S: 1}).HeadMass(100, m); a != b {
		t.Errorf("s=0 fallback: %v != s=1 mass %v", a, b)
	}
}

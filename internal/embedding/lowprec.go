package embedding

import (
	"repro/internal/bf16"
	"repro/internal/par"
)

// splitBody applies the Split-SGD update for the rows tid owns.
func splitBody(arg any, tid, workers int) {
	t := arg.(*Table)
	b, dW, lr, split, e := t.ka.b, t.ka.dW, t.ka.lr, t.ka.split, t.E
	ns := b.NumLookups()
	mStart, mEnd := par.Chunk(t.M, workers, tid)
	for s := 0; s < ns; s++ {
		ind := int(b.Indices[s])
		if ind < mStart || ind >= mEnd {
			continue
		}
		src := dW[s*e : (s+1)*e]
		base := ind * e
		for i := 0; i < e; i++ {
			w := split.At(base+i) - lr*src[i]
			split.SetFP32(base+i, w)
			t.W[base+i] = split.HiFloat(base + i)
		}
	}
}

// UpdateSplitRaceFree applies the sparse SGD update at full FP32 accuracy
// against a Split-SGD-BF16 table: t.W holds the BF16 (hi) working view used
// by forward/backward, split holds the exact hi/lo state. Touched rows are
// recomposed, updated in FP32, re-split, and their BF16 view refreshed —
// the embedding-table side of §VII, where the capacity savings matter most.
// Uses Algorithm 4's race-free row partitioning, so it is deterministic.
func (t *Table) UpdateSplitRaceFree(p *par.Pool, split *bf16.Split, b *Batch, dW []float32, lr float32) {
	if split.Len() != len(t.W) {
		panic("embedding: split length mismatch")
	}
	t.ka.b, t.ka.dW, t.ka.lr, t.ka.split = b, dW, lr, split
	p.ForEachWorkerArg(splitBody, t)
	t.ka.b, t.ka.dW, t.ka.split = nil, nil, nil
}

// quantBody applies the re-quantizing update for the rows tid owns.
func quantBody(arg any, tid, workers int) {
	t := arg.(*Table)
	b, dW, lr, quant, e := t.ka.b, t.ka.dW, t.ka.lr, t.ka.quant, t.E
	ns := b.NumLookups()
	mStart, mEnd := par.Chunk(t.M, workers, tid)
	for s := 0; s < ns; s++ {
		ind := int(b.Indices[s])
		if ind < mStart || ind >= mEnd {
			continue
		}
		row := t.Row(ind)
		src := dW[s*e : (s+1)*e]
		for i := range row {
			row[i] = quant(row[i] - lr*src[i])
		}
	}
}

// UpdateQuantRaceFree applies the sparse update with the weights stored in a
// reduced precision: each touched element is updated in FP32 and immediately
// re-quantized (e.g. quant = bf16.RoundFP24 for the FP24 curve of Fig. 16).
// Race-free row partitioning, deterministic.
func (t *Table) UpdateQuantRaceFree(p *par.Pool, b *Batch, dW []float32, lr float32, quant func(float32) float32) {
	t.ka.b, t.ka.dW, t.ka.lr, t.ka.quant = b, dW, lr, quant
	p.ForEachWorkerArg(quantBody, t)
	t.ka.b, t.ka.dW, t.ka.quant = nil, nil, nil
}

// QuantizeTable rounds every table element with quant (used to initialize
// reduced-precision tables).
func (t *Table) QuantizeTable(quant func(float32) float32) {
	for i := range t.W {
		t.W[i] = quant(t.W[i])
	}
}

// fp16StochBody applies the stochastically-rounded FP16 update for the rows
// tid owns, drawing noise from a per-thread splitmix64 stream.
func fp16StochBody(arg any, tid, workers int) {
	t := arg.(*Table)
	b, dW, lr, e := t.ka.b, t.ka.dW, t.ka.lr, t.E
	ns := b.NumLookups()
	mStart, mEnd := par.Chunk(t.M, workers, tid)
	state := t.ka.seed ^ uint64(tid)*0x9E3779B97F4A7C15
	for s := 0; s < ns; s++ {
		ind := int(b.Indices[s])
		if ind < mStart || ind >= mEnd {
			continue
		}
		row := t.Row(ind)
		src := dW[s*e : (s+1)*e]
		for i := range row {
			state += 0x9E3779B97F4A7C15
			z := state
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			z ^= z >> 31
			u := float32(z>>40) / float32(1<<24)
			row[i] = bf16.StochasticRoundFP16(row[i]-lr*src[i], u)
		}
	}
}

// UpdateFP16StochasticRaceFree applies the sparse update with the table
// stored in FP16 and stochastic rounding on every write — the
// low-precision embedding-table training of [13] that §VII reports could
// not train DLRM to state of the art with plain SGD. Race-free row
// partitioning; the rounding noise is drawn from a per-thread splitmix64
// stream seeded by the row index, so runs are reproducible.
func (t *Table) UpdateFP16StochasticRaceFree(p *par.Pool, b *Batch, dW []float32, lr float32, seed uint64) {
	t.ka.b, t.ka.dW, t.ka.lr, t.ka.seed = b, dW, lr, seed
	p.ForEachWorkerArg(fp16StochBody, t)
	t.ka.b, t.ka.dW = nil, nil
}

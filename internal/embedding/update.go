package embedding

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/par"
)

// Strategy selects the sparse-update implementation for Algorithm 3.
type Strategy int

const (
	// Reference reproduces the pre-optimization framework path the paper's
	// Fig. 7 calls "Reference": a functionality-first kernel that scatters
	// the sparse gradients into a dense M×E buffer and then applies a dense
	// update over the whole table, single-threaded. Its cost scales with M,
	// not NS — this is why 99% of DLRM time sat in one kernel.
	Reference Strategy = iota
	// AtomicXchg parallelizes over the NS lookups and resolves the race on
	// repeated rows with a floating-point atomic add built from
	// compare-and-swap on the float bits (the paper's atomic-xchg loop).
	AtomicXchg
	// RTMStyle emulates the Intel RTM transactional section with striped
	// per-row spin locks: the row update runs as one locked (vectorizable)
	// critical section, mirroring a cache-line transaction. Like real RTM it
	// is cheap when indices are unique and degrades when hot rows collide.
	RTMStyle
	// RaceFree is Algorithm 4: rows are range-partitioned over threads and
	// every thread scans the full index list, applying only updates that
	// land in its own range. No synchronization, deterministic, and immune
	// to cache-line thrashing — at the price of redundant index scans and
	// potential imbalance when indices cluster.
	RaceFree
)

// String returns the Fig. 7 label for the strategy.
func (s Strategy) String() string {
	switch s {
	case Reference:
		return "Reference"
	case AtomicXchg:
		return "Atomic XCHG"
	case RTMStyle:
		return "RTM"
	case RaceFree:
		return "Race Free"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all update strategies in Fig. 7 order.
var Strategies = []Strategy{Reference, AtomicXchg, RTMStyle, RaceFree}

// rtmStripes is the lock-stripe count for RTMStyle. A power of two well
// above the worker count keeps false lock sharing rare, as cache-line
// granularity does for real RTM.
const rtmStripes = 1024

var rtmLocks [rtmStripes]sync.Mutex

// Update applies W[I[s]] += -lr·dW[s] for all NS lookups (Algorithm 3) using
// the selected strategy. dW holds NS rows of E as produced by Backward.
func (t *Table) Update(p *par.Pool, strat Strategy, b *Batch, dW []float32, lr float32) {
	ns := b.NumLookups()
	if len(dW) != ns*t.E {
		panic(fmt.Sprintf("embedding: update dW len %d want %d", len(dW), ns*t.E))
	}
	switch strat {
	case Reference:
		t.updateReference(b, dW, lr)
	case AtomicXchg:
		t.updateAtomic(p, b, dW, lr)
	case RTMStyle:
		t.updateRTM(p, b, dW, lr)
	case RaceFree:
		t.updateRaceFree(p, b, dW, lr)
	default:
		panic(fmt.Sprintf("embedding: unknown strategy %d", strat))
	}
}

// updateReference: dense scatter + whole-table dense update, single thread.
func (t *Table) updateReference(b *Batch, dW []float32, lr float32) {
	dense := make([]float32, t.M*t.E)
	e := t.E
	for s := 0; s < b.NumLookups(); s++ {
		ind := int(b.Indices[s])
		dst := dense[ind*e : (ind+1)*e]
		src := dW[s*e : (s+1)*e]
		for i := range dst {
			dst[i] += src[i]
		}
	}
	for i := range t.W {
		t.W[i] -= lr * dense[i]
	}
}

// atomicAddFloat32 adds delta to *addr with a CAS loop on the float bits —
// the software equivalent of the paper's atomic-xchg float add.
func atomicAddFloat32(addr *float32, delta float32) {
	bits := (*uint32)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint32(bits)
		nv := math.Float32bits(math.Float32frombits(old) + delta)
		if atomic.CompareAndSwapUint32(bits, old, nv) {
			return
		}
	}
}

// atomicBody applies the lookups in [lo, hi) with CAS float adds.
func atomicBody(arg any, tid, lo, hi int) {
	t := arg.(*Table)
	b, dW, lr, e := t.ka.b, t.ka.dW, t.ka.lr, t.E
	for s := lo; s < hi; s++ {
		ind := int(b.Indices[s])
		row := t.Row(ind)
		src := dW[s*e : (s+1)*e]
		for i := range row {
			atomicAddFloat32(&row[i], -lr*src[i])
		}
	}
}

func (t *Table) updateAtomic(p *par.Pool, b *Batch, dW []float32, lr float32) {
	t.ka.b, t.ka.dW, t.ka.lr = b, dW, lr
	p.ForNArg(b.NumLookups(), atomicBody, t)
	t.ka.b, t.ka.dW = nil, nil
}

// rtmBody applies the lookups in [lo, hi) under striped row locks.
func rtmBody(arg any, tid, lo, hi int) {
	t := arg.(*Table)
	b, dW, lr, e := t.ka.b, t.ka.dW, t.ka.lr, t.E
	for s := lo; s < hi; s++ {
		ind := int(b.Indices[s])
		src := dW[s*e : (s+1)*e]
		mu := &rtmLocks[ind&(rtmStripes-1)]
		mu.Lock()
		row := t.Row(ind)
		for i := range row {
			row[i] -= lr * src[i]
		}
		mu.Unlock()
	}
}

func (t *Table) updateRTM(p *par.Pool, b *Batch, dW []float32, lr float32) {
	t.ka.b, t.ka.dW, t.ka.lr = b, dW, lr
	p.ForNArg(b.NumLookups(), rtmBody, t)
	t.ka.b, t.ka.dW = nil, nil
}

// raceFreeBody scans all lookups, applying only those owned by tid
// (Algorithm 4).
func raceFreeBody(arg any, tid, workers int) {
	t := arg.(*Table)
	b, dW, lr, e := t.ka.b, t.ka.dW, t.ka.lr, t.E
	ns := b.NumLookups()
	mStart, mEnd := par.Chunk(t.M, workers, tid)
	for s := 0; s < ns; s++ {
		ind := int(b.Indices[s])
		if ind < mStart || ind >= mEnd {
			continue
		}
		row := t.Row(ind)
		src := dW[s*e : (s+1)*e]
		for i := range row {
			row[i] -= lr * src[i]
		}
	}
}

func (t *Table) updateRaceFree(p *par.Pool, b *Batch, dW []float32, lr float32) {
	t.ka.b, t.ka.dW, t.ka.lr = b, dW, lr
	p.ForEachWorkerArg(raceFreeBody, t)
	t.ka.b, t.ka.dW = nil, nil
}

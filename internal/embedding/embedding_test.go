package embedding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/par"
)

func serialForward(t *Table, b *Batch) []float32 {
	n := b.NumBags()
	out := make([]float32, n*t.E)
	for bag := 0; bag < n; bag++ {
		for s := b.Offsets[bag]; s < b.Offsets[bag+1]; s++ {
			row := t.Row(int(b.Indices[s]))
			for i := 0; i < t.E; i++ {
				out[bag*t.E+i] += row[i]
			}
		}
	}
	return out
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := NewTable(100, 16, rng, 1)
	b := MakeBatch(rng, Uniform{}, 32, 5, tab.M)
	pool := par.NewPool(4)
	out := make([]float32, 32*16)
	tab.Forward(pool, b, out)
	want := serialForward(tab, b)
	if maxAbsDiff(out, want) > 1e-6 {
		t.Fatal("parallel forward differs from serial")
	}
}

func TestForwardEmptyBags(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := NewTable(50, 8, rng, 1)
	b := MakeVariableBatch(rng, Uniform{}, 20, 0, 3, tab.M)
	if err := b.Validate(tab.M); err != nil {
		t.Fatal(err)
	}
	pool := par.NewPool(3)
	out := make([]float32, 20*8)
	for i := range out {
		out[i] = 99 // must be overwritten even for empty bags
	}
	tab.Forward(pool, b, out)
	for bag := 0; bag < 20; bag++ {
		if b.Offsets[bag] == b.Offsets[bag+1] {
			for i := 0; i < 8; i++ {
				if out[bag*8+i] != 0 {
					t.Fatalf("empty bag %d row not zeroed", bag)
				}
			}
		}
	}
}

func TestBackwardReplicatesBagGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := NewTable(40, 4, rng, 1)
	b := MakeBatch(rng, Uniform{}, 10, 3, tab.M)
	dOut := make([]float32, 10*4)
	for i := range dOut {
		dOut[i] = rng.Float32()
	}
	dW := make([]float32, b.NumLookups()*4)
	tab.Backward(par.NewPool(4), b, dOut, dW)
	for bag := 0; bag < 10; bag++ {
		for s := b.Offsets[bag]; s < b.Offsets[bag+1]; s++ {
			for i := 0; i < 4; i++ {
				if dW[int(s)*4+i] != dOut[bag*4+i] {
					t.Fatalf("dW row %d != dOut bag %d", s, bag)
				}
			}
		}
	}
}

// TestUpdateStrategiesAgree checks every strategy produces the same table as
// the serial reference, within FP reassociation tolerance, under both
// uniform and heavily skewed indices.
func TestUpdateStrategiesAgree(t *testing.T) {
	pool := par.NewPool(8)
	for _, dist := range []IndexDist{Uniform{}, Zipf{S: 1.05}} {
		rng := rand.New(rand.NewSource(4))
		base := NewTable(64, 8, rng, 1)
		b := MakeBatch(rng, dist, 128, 10, base.M)
		dW := make([]float32, b.NumLookups()*8)
		for i := range dW {
			dW[i] = rng.Float32() - 0.5
		}
		want := base.Clone()
		want.updateReference(b, dW, 0.1)
		for _, strat := range []Strategy{AtomicXchg, RTMStyle, RaceFree} {
			got := base.Clone()
			got.Update(pool, strat, b, dW, 0.1)
			if d := maxAbsDiff(got.W, want.W); d > 1e-4 {
				t.Errorf("%s/%s: max diff vs reference %g", strat, dist.Name(), d)
			}
		}
	}
}

func TestRaceFreeDeterministic(t *testing.T) {
	// RaceFree must be bit-identical across runs and worker counts with the
	// same input order, since each row's updates are applied in index order
	// by exactly one worker.
	rng := rand.New(rand.NewSource(5))
	base := NewTable(32, 4, rng, 1)
	b := MakeBatch(rng, Zipf{S: 1.1}, 64, 8, base.M)
	dW := make([]float32, b.NumLookups()*4)
	for i := range dW {
		dW[i] = rng.Float32()
	}
	var prev []float32
	for _, workers := range []int{1, 2, 7} {
		got := base.Clone()
		got.Update(par.NewPool(workers), RaceFree, b, dW, 0.05)
		if prev != nil {
			for i := range got.W {
				if got.W[i] != prev[i] {
					t.Fatalf("RaceFree not deterministic across worker counts at %d", i)
				}
			}
		}
		prev = got.W
	}
}

func TestFusedMatchesBackwardPlusUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pool := par.NewPool(4)
	base := NewTable(48, 8, rng, 1)
	b := MakeBatch(rng, Uniform{}, 32, 4, base.M)
	dOut := make([]float32, 32*8)
	for i := range dOut {
		dOut[i] = rng.Float32() - 0.5
	}

	twoStep := base.Clone()
	dW := make([]float32, b.NumLookups()*8)
	twoStep.Backward(pool, b, dOut, dW)
	twoStep.Update(pool, RaceFree, b, dW, 0.1)

	fused := base.Clone()
	fused.FusedBackwardUpdate(pool, b, dOut, 0.1)

	if d := maxAbsDiff(twoStep.W, fused.W); d > 1e-5 {
		t.Fatalf("fused differs from two-step by %g", d)
	}
}

func TestUpdateStrategyProperty(t *testing.T) {
	// Property: for random batches, AtomicXchg ≈ RaceFree ≈ serial reference.
	pool := par.NewPool(4)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 8 + rng.Intn(64)
		e := 1 + rng.Intn(16)
		tab := NewTable(m, e, rng, 1)
		b := MakeVariableBatch(rng, Zipf{S: 1}, 1+rng.Intn(50), 0, 6, m)
		dW := make([]float32, b.NumLookups()*e)
		for i := range dW {
			dW[i] = rng.Float32()
		}
		want := tab.Clone()
		want.updateReference(b, dW, 0.01)
		a := tab.Clone()
		a.Update(pool, AtomicXchg, b, dW, 0.01)
		r := tab.Clone()
		r.Update(pool, RaceFree, b, dW, 0.01)
		return maxAbsDiff(a.W, want.W) < 1e-4 && maxAbsDiff(r.W, want.W) < 1e-4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchValidate(t *testing.T) {
	good := &Batch{Indices: []int32{0, 1, 2}, Offsets: []int32{0, 2, 3}}
	if err := good.Validate(5); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	bad := []*Batch{
		{Indices: []int32{0}, Offsets: []int32{1, 1}},       // offset[0] != 0
		{Indices: []int32{0}, Offsets: []int32{0, 2}},       // offsets[N] != NS
		{Indices: []int32{0, 9}, Offsets: []int32{0, 2}},    // index out of range
		{Indices: []int32{0, 1}, Offsets: []int32{0, 2, 1}}, // not monotone... offsets[2]=1 < 2
	}
	for i, b := range bad {
		if err := b.Validate(5); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Zipf(1) over 1e5 rows must put far more mass on row 0 than uniform.
	rng := rand.New(rand.NewSource(7))
	const m, draws = 100000, 20000
	var hot int
	z := Zipf{S: 1.05}
	for i := 0; i < draws; i++ {
		if z.Draw(rng, m) < 10 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.2 {
		t.Fatalf("Zipf skew too weak: %.3f of draws in top-10 rows", frac)
	}
	var uniHot int
	u := Uniform{}
	for i := 0; i < draws; i++ {
		if u.Draw(rng, m) < 10 {
			uniHot++
		}
	}
	if float64(uniHot)/draws > 0.01 {
		t.Fatal("uniform unexpectedly skewed")
	}
}

func TestZipfDrawInRange(t *testing.T) {
	prop := func(seed int64, sTimes10 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		z := Zipf{S: 0.5 + float64(sTimes10%20)/10}
		for i := 0; i < 100; i++ {
			m := 1 + rng.Intn(1000)
			r := z.Draw(rng, m)
			if r < 0 || int(r) >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdateStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	pool := par.Default
	tab := NewTable(1_000_000, 64, rng, 0.01)
	for _, dist := range []IndexDist{Uniform{}, Zipf{S: 1.05}} {
		batch := MakeBatch(rng, dist, 2048, 50, tab.M)
		dW := make([]float32, batch.NumLookups()*tab.E)
		for i := range dW {
			dW[i] = rng.Float32()
		}
		for _, strat := range []Strategy{AtomicXchg, RTMStyle, RaceFree} {
			b.Run(dist.Name()+"/"+strat.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tab.Update(pool, strat, batch, dW, 1e-6)
				}
			})
		}
	}
}

func BenchmarkEmbeddingFusedVsTwoStep(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pool := par.Default
	tab := NewTable(1_000_000, 64, rng, 0.01)
	batch := MakeBatch(rng, Uniform{}, 2048, 50, tab.M)
	dOut := make([]float32, 2048*tab.E)
	for i := range dOut {
		dOut[i] = rng.Float32()
	}
	b.Run("two-step", func(b *testing.B) {
		dW := make([]float32, batch.NumLookups()*tab.E)
		for i := 0; i < b.N; i++ {
			tab.Backward(pool, batch, dOut, dW)
			tab.Update(pool, RaceFree, batch, dW, 1e-6)
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.FusedBackwardUpdate(pool, batch, dOut, 1e-6)
		}
	})
}

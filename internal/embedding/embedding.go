// Package embedding implements the sparse EmbeddingBag layer of DLRM:
// multi-hot lookups into a table W ∈ R^{M×E} with sum pooling (Algorithm 1),
// the backward pass producing per-lookup gradient rows (Algorithm 2), and
// the optimizer-side sparse update (Algorithm 3) in the four strategies the
// paper evaluates — Reference, AtomicXchg, RTM-style, and RaceFree
// (Algorithm 4) — plus the fused backward+update variant of §III-A.
//
// A minibatch of bags is encoded exactly like the framework kernel the paper
// patches: Indices holds the concatenated lookup rows of all bags and
// Offsets[n] .. Offsets[n+1] delimit bag n, so NS = Offsets[N] is the total
// number of lookups.
package embedding

import (
	"fmt"
	"math/rand"

	"repro/internal/bf16"
	"repro/internal/par"
)

// Table is one embedding table: M rows of dimension E, stored row-major in a
// single slice so a bag lookup streams whole cache lines, the GUPS-like
// access pattern §II describes.
type Table struct {
	M, E int
	W    []float32

	// ka carries one kernel call's parameters to the package-level parallel
	// bodies, so the hot path dispatches through par.Pool.ForNArg /
	// ForEachWorkerArg without allocating closures. A table runs one kernel
	// at a time (kernels on distinct tables are independent).
	ka kernArgs
}

// kernArgs is the per-call state shared by every Table kernel body.
type kernArgs struct {
	b     *Batch
	out   []float32
	dOut  []float32
	dW    []float32
	lr    float32
	split *bf16.Split
	quant func(float32) float32
	seed  uint64
}

// NewTable allocates an M×E table initialized uniform in [-scale, scale].
func NewTable(m, e int, rng *rand.Rand, scale float32) *Table {
	t := &Table{M: m, E: e, W: make([]float32, m*e)}
	for i := range t.W {
		t.W[i] = (rng.Float32()*2 - 1) * scale
	}
	return t
}

// Row returns row i of the table, aliasing its storage.
func (t *Table) Row(i int) []float32 { return t.W[i*t.E : (i+1)*t.E] }

// Clone returns a deep copy of the table (used by the strategy-equivalence
// tests and the distributed trainer's replication checks).
func (t *Table) Clone() *Table {
	c := &Table{M: t.M, E: t.E, W: make([]float32, len(t.W))}
	copy(c.W, t.W)
	return c
}

// Batch is one minibatch of bags for a single table.
type Batch struct {
	Indices []int32 // concatenated lookup rows, len NS
	Offsets []int32 // len N+1, Offsets[0]=0, Offsets[N]=NS
}

// NumBags returns N.
func (b *Batch) NumBags() int { return len(b.Offsets) - 1 }

// Reset prepares b for refilling with n bags: offsets are sized to n+1 with
// Offsets[0] = 0 and the index list is truncated (capacity retained), so a
// fill loop of appends reallocates nothing once the batch has reached its
// steady-state lookup count.
func (b *Batch) Reset(n int) {
	if cap(b.Offsets) < n+1 {
		b.Offsets = make([]int32, n+1)
	} else {
		b.Offsets = b.Offsets[:n+1]
	}
	b.Offsets[0] = 0
	b.Indices = b.Indices[:0]
}

// NumLookups returns NS.
func (b *Batch) NumLookups() int { return len(b.Indices) }

// Validate checks the offsets are monotone and the indices are in range for
// a table of m rows.
func (b *Batch) Validate(m int) error {
	if len(b.Offsets) == 0 || b.Offsets[0] != 0 {
		return fmt.Errorf("embedding: offsets must start at 0")
	}
	for i := 1; i < len(b.Offsets); i++ {
		if b.Offsets[i] < b.Offsets[i-1] {
			return fmt.Errorf("embedding: offsets not monotone at %d", i)
		}
	}
	if int(b.Offsets[len(b.Offsets)-1]) != len(b.Indices) {
		return fmt.Errorf("embedding: offsets[N]=%d != len(indices)=%d",
			b.Offsets[len(b.Offsets)-1], len(b.Indices))
	}
	for i, ix := range b.Indices {
		if ix < 0 || int(ix) >= m {
			return fmt.Errorf("embedding: index %d out of range [0,%d) at %d", ix, m, i)
		}
	}
	return nil
}

// fwdBody computes the bag sums for bags [lo, hi).
func fwdBody(arg any, tid, lo, hi int) {
	t := arg.(*Table)
	b, out, e := t.ka.b, t.ka.out, t.E
	for bag := lo; bag < hi; bag++ {
		y := out[bag*e : (bag+1)*e]
		for i := range y {
			y[i] = 0
		}
		start, end := b.Offsets[bag], b.Offsets[bag+1]
		for s := start; s < end; s++ {
			row := t.Row(int(b.Indices[s]))
			for i := range y {
				y[i] += row[i]
			}
		}
	}
}

// Forward computes out[n] = Σ_{s∈bag n} W[I[s]] (Algorithm 1). out must
// hold N*E float32s, laid out N rows of E. Parallel over bags; every bag
// writes a disjoint output row so no synchronization is needed.
func (t *Table) Forward(p *par.Pool, b *Batch, out []float32) {
	n := b.NumBags()
	if len(out) != n*t.E {
		panic(fmt.Sprintf("embedding: forward out len %d want %d", len(out), n*t.E))
	}
	t.ka.b, t.ka.out = b, out
	p.ForNArg(n, fwdBody, t)
	t.ka.b, t.ka.out = nil, nil
}

// bwdBody materializes per-lookup gradient rows for bags [lo, hi).
func bwdBody(arg any, tid, lo, hi int) {
	t := arg.(*Table)
	b, dOut, dW, e := t.ka.b, t.ka.dOut, t.ka.dW, t.E
	for bag := lo; bag < hi; bag++ {
		g := dOut[bag*e : (bag+1)*e]
		start, end := b.Offsets[bag], b.Offsets[bag+1]
		for s := start; s < end; s++ {
			copy(dW[int(s)*e:(int(s)+1)*e], g)
		}
	}
}

// Backward materializes the per-lookup gradient rows dW[s] = dOut[bag(s)]
// (Algorithm 2). dW must hold NS*E float32s. Parallel over bags; lookups of
// different bags occupy disjoint dW rows.
func (t *Table) Backward(p *par.Pool, b *Batch, dOut, dW []float32) {
	n := b.NumBags()
	if len(dOut) != n*t.E {
		panic("embedding: backward dOut size mismatch")
	}
	if len(dW) != b.NumLookups()*t.E {
		panic("embedding: backward dW size mismatch")
	}
	t.ka.b, t.ka.dOut, t.ka.dW = b, dOut, dW
	p.ForNArg(n, bwdBody, t)
	t.ka.b, t.ka.dOut, t.ka.dW = nil, nil, nil
}

// fusedBody applies the fused backward+update for the rows tid owns.
func fusedBody(arg any, tid, workers int) {
	t := arg.(*Table)
	b, dOut, lr, e := t.ka.b, t.ka.dOut, t.ka.lr, t.E
	n := b.NumBags()
	mStart, mEnd := par.Chunk(t.M, workers, tid)
	for bag := 0; bag < n; bag++ {
		start, end := b.Offsets[bag], b.Offsets[bag+1]
		if start == end {
			continue
		}
		g := dOut[bag*e : (bag+1)*e]
		for s := start; s < end; s++ {
			ind := int(b.Indices[s])
			if ind < mStart || ind >= mEnd {
				continue
			}
			row := t.Row(ind)
			for i := range row {
				row[i] -= lr * g[i]
			}
		}
	}
}

// FusedBackwardUpdate applies W[I[s]] += -lr·dOut[bag(s)] directly, skipping
// the dW materialization of Algorithm 2 (§III-A reports up to 1.6× for the
// standalone fused variant). It uses the race-free row partitioning of
// Algorithm 4, so it is deterministic.
func (t *Table) FusedBackwardUpdate(p *par.Pool, b *Batch, dOut []float32, lr float32) {
	t.ka.b, t.ka.dOut, t.ka.lr = b, dOut, lr
	p.ForEachWorkerArg(fusedBody, t)
	t.ka.b, t.ka.dOut = nil, nil
}

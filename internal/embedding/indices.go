package embedding

import (
	"math"
	"math/rand"
)

// IndexDist describes how lookup indices are drawn from a table's rows.
// The paper's Small/Large configs use a random (uniform) dataset; the MLPerf
// config uses the Criteo Terabyte logs whose categorical values are heavily
// skewed — that skew is what causes the contention Fig. 7/8 expose, so the
// synthetic substitute must reproduce it.
type IndexDist interface {
	// Draw returns a row index in [0, m).
	Draw(rng *rand.Rand, m int) int32
	// Name labels the distribution in experiment output.
	Name() string
}

// Uniform draws rows independently and uniformly — the "very little
// contention" regime where all update strategies perform alike.
type Uniform struct{}

// Draw implements IndexDist.
func (Uniform) Draw(rng *rand.Rand, m int) int32 { return int32(rng.Intn(m)) }

// DrawU maps a uniform u ∈ [0, 1) to a row index — the inverse-CDF core of
// Draw, usable with any uniform source (the per-sample counter-based
// streams of the data package feed it without a rand.Rand).
func (Uniform) DrawU(u float64, m int) int32 {
	r := int32(u * float64(m))
	if int(r) >= m {
		r = int32(m - 1)
	}
	return r
}

// Name implements IndexDist.
func (Uniform) Name() string { return "uniform" }

// Zipf draws rows from a Zipf(s) distribution over [0, m): row r has
// probability ∝ 1/(r+1)^s. Criteo-like click logs have s ≈ 1, concentrating
// a large fraction of lookups on a handful of hot rows — the regime where
// atomic and RTM-style updates thrash cache lines across cores and the
// race-free algorithm wins by up to 10×.
type Zipf struct {
	S float64
}

// Draw implements IndexDist using inverse-CDF sampling on a harmonic
// approximation; adequate for workload generation and allocation-free.
func (z Zipf) Draw(rng *rand.Rand, m int) int32 { return z.DrawU(rng.Float64(), m) }

// DrawU maps a uniform u ∈ [0, 1) to a Zipf-distributed row index — the
// inverse-CDF core of Draw, usable with any uniform source.
func (z Zipf) DrawU(u float64, m int) int32 {
	s := z.S
	if s <= 0 {
		s = 1
	}
	// Inverse CDF of the continuous analogue p(x) ∝ x^-s on [1, m+1).
	var x float64
	if s == 1 {
		x = math.Exp(u * math.Log(float64(m)+1))
	} else {
		hi := math.Pow(float64(m)+1, 1-s)
		x = math.Pow(u*(hi-1)+1, 1/(1-s))
	}
	r := int32(x) - 1
	if r < 0 {
		r = 0
	}
	if int(r) >= m {
		r = int32(m - 1)
	}
	return r
}

// Name implements IndexDist.
func (z Zipf) Name() string { return "zipf" }

// HeadMass returns the probability that DrawU lands in the head [0, k) of a
// table with m rows — the analytic hit rate of a cache holding the k
// hottest rows under this skew. It is the CDF of the same continuous
// analogue DrawU inverts (p(x) ∝ x^-s on [1, m+1)), so empirical head
// frequencies converge to it; the tiered-store cost model and the draw-skew
// statistical test both consume it.
func (z Zipf) HeadMass(k, m int) float64 {
	if m <= 0 || k <= 0 {
		return 0
	}
	if k >= m {
		return 1
	}
	s := z.S
	if s <= 0 {
		s = 1
	}
	// P(row < k) = F(k+1) with F the CDF of p(x) ∝ x^-s on [1, m+1).
	if s == 1 {
		return math.Log(float64(k)+1) / math.Log(float64(m)+1)
	}
	hi := math.Pow(float64(m)+1, 1-s)
	return (math.Pow(float64(k)+1, 1-s) - 1) / (hi - 1)
}

// MakeBatch draws a batch of n bags with exactly perBag lookups each from
// dist over a table of m rows. perBag is the paper's P ("average look-ups
// per table", Table I).
func MakeBatch(rng *rand.Rand, dist IndexDist, n, perBag, m int) *Batch {
	b := &Batch{
		Indices: make([]int32, 0, n*perBag),
		Offsets: make([]int32, n+1),
	}
	for bag := 0; bag < n; bag++ {
		b.Offsets[bag] = int32(len(b.Indices))
		for s := 0; s < perBag; s++ {
			b.Indices = append(b.Indices, dist.Draw(rng, m))
		}
	}
	b.Offsets[n] = int32(len(b.Indices))
	return b
}

// MakeVariableBatch draws bags whose sizes vary uniformly in [minPer,
// maxPer], exercising the offset bookkeeping (including empty bags when
// minPer is 0).
func MakeVariableBatch(rng *rand.Rand, dist IndexDist, n, minPer, maxPer, m int) *Batch {
	b := &Batch{Offsets: make([]int32, n+1)}
	for bag := 0; bag < n; bag++ {
		b.Offsets[bag] = int32(len(b.Indices))
		k := minPer
		if maxPer > minPer {
			k += rng.Intn(maxPer - minPer + 1)
		}
		for s := 0; s < k; s++ {
			b.Indices = append(b.Indices, dist.Draw(rng, m))
		}
	}
	b.Offsets[n] = int32(len(b.Indices))
	return b
}

package bf16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripExactForBF16Values(t *testing.T) {
	// Values already representable in BF16 must survive unchanged.
	for _, f := range []float32{0, 1, -1, 0.5, 2, 65536, -0.25, 1.5} {
		if Round(f) != f {
			t.Errorf("Round(%g)=%g, should be exact", f, Round(f))
		}
	}
}

func TestFromFloat32RNE(t *testing.T) {
	// 1 + 2^-8 is exactly halfway between BF16 neighbours 1.0 (mantissa
	// ...0000000) and 1+2^-7 (...0000001); RNE must pick the even one (1.0).
	halfway := float32(1) + float32(math.Pow(2, -8))
	if got := Round(halfway); got != 1.0 {
		t.Errorf("RNE halfway: Round(1+2^-8)=%g want 1", got)
	}
	// 1 + 3·2^-8 is halfway between 1+2^-7 and 1+2^-6; even neighbour is 1+2^-6.
	halfway2 := float32(1) + 3*float32(math.Pow(2, -8))
	want := float32(1) + float32(math.Pow(2, -6))
	if got := Round(halfway2); got != want {
		t.Errorf("RNE halfway2: got %g want %g", got, want)
	}
}

func TestRoundErrorBound(t *testing.T) {
	prop := func(f float32) bool {
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
			return true
		}
		r := Round(f)
		if f == 0 {
			return r == 0
		}
		if math.IsInf(float64(r), 0) {
			// RNE may round the largest half-ulp of float32 up to +Inf —
			// only legitimate within half a BF16 ulp of the max.
			return math.Abs(float64(f)) > 3.38e38
		}
		// Relative error bounded by 2^-8 for normal numbers.
		rel := math.Abs(float64(r-f)) / math.Abs(float64(f))
		return rel <= math.Pow(2, -8)+1e-12 || math.Abs(float64(f)) < 1e-37
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNaNPreserved(t *testing.T) {
	nan := float32(math.NaN())
	if r := ToFloat32(FromFloat32(nan)); !math.IsNaN(float64(r)) {
		t.Fatal("NaN not preserved through BF16")
	}
}

func TestDotMatchesRoundedFP32(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float32, 64)
	b := make([]float32, 64)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
		b[i] = rng.Float32()*2 - 1
	}
	got := Dot(a, b)
	var want float32
	for i := range a {
		want += Round(a[i]) * Round(b[i])
	}
	if got != want {
		t.Fatalf("Dot=%g want %g", got, want)
	}
}

func TestFP24RoundExactness(t *testing.T) {
	// FP24 keeps 15 mantissa bits: 1 + 2^-15 must be representable,
	// 1 + 2^-16 must round away.
	v := float32(1) + float32(math.Pow(2, -15))
	if RoundFP24(v) != v {
		t.Fatal("1+2^-15 should be exact in FP24")
	}
	w := float32(1) + float32(math.Pow(2, -17))
	if RoundFP24(w) == w {
		t.Fatal("1+2^-17 should not be exact in FP24")
	}
	if RoundFP24(w) != 1.0 {
		t.Fatalf("1+2^-17 should round to 1, got %g", RoundFP24(w))
	}
}

func TestFP24FinerThanBF16(t *testing.T) {
	// FP24 must preserve more precision than BF16 on random values.
	rng := rand.New(rand.NewSource(2))
	var bfErr, fp24Err float64
	for i := 0; i < 1000; i++ {
		f := rng.Float32()*2 - 1
		bfErr += math.Abs(float64(Round(f) - f))
		fp24Err += math.Abs(float64(RoundFP24(f) - f))
	}
	if fp24Err >= bfErr/10 {
		t.Fatalf("FP24 error %g not ≪ BF16 error %g", fp24Err, bfErr)
	}
}

func TestFP16RoundTripAndRange(t *testing.T) {
	for _, f := range []float32{0, 1, -1, 0.5, 1024, 65504} {
		if got := RoundFP16(f); got != f {
			t.Errorf("RoundFP16(%g)=%g, should be exact", f, got)
		}
	}
	// Overflow: max half is 65504; 1e6 must saturate to +Inf.
	if got := RoundFP16(1e6); !math.IsInf(float64(got), 1) {
		t.Errorf("RoundFP16(1e6)=%g want +Inf", got)
	}
	// Tiny values flush toward the subnormal range (and below 2^-24 to 0).
	if got := RoundFP16(1e-10); got != 0 {
		t.Errorf("RoundFP16(1e-10)=%g want 0", got)
	}
	// BF16 keeps the range that FP16 loses — the paper's argument for BF16.
	if math.IsInf(float64(Round(1e6)), 0) {
		t.Error("BF16 must represent 1e6 without overflow")
	}
}

func TestFP16Subnormals(t *testing.T) {
	// 2^-24 is the smallest positive half subnormal.
	v := float32(math.Pow(2, -24))
	if got := RoundFP16(v); got != v {
		t.Errorf("smallest half subnormal: got %g want %g", got, v)
	}
	prop := func(f float32) bool {
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
			return true
		}
		r := RoundFP16(f)
		if math.IsInf(float64(r), 0) {
			return math.Abs(float64(f)) > 65504
		}
		return math.Abs(float64(r-f)) <= math.Max(math.Abs(float64(f))*math.Pow(2, -11), math.Pow(2, -25))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitComposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := make([]float32, 256)
	for i := range w {
		w[i] = rng.Float32()*100 - 50
	}
	s := NewSplit(w)
	out := make([]float32, 256)
	s.Compose(out)
	for i := range w {
		if out[i] != w[i] {
			t.Fatalf("split compose not exact at %d: %g != %g", i, out[i], w[i])
		}
	}
}

func TestSplitHiIsBF16Truncation(t *testing.T) {
	// Hi is the truncated (not rounded) upper half — together with Lo it is
	// exact, and HiFloat equals the FP32 with low bits cleared.
	w := []float32{1.23456789, -9.87654321e-3}
	s := NewSplit(w)
	for i := range w {
		bits := math.Float32bits(w[i]) &^ 0xFFFF
		if s.HiFloat(i) != math.Float32frombits(bits) {
			t.Fatalf("HiFloat(%d) wrong", i)
		}
	}
}

func TestSplitSGDStepExactFP32(t *testing.T) {
	// Split-SGD must track plain FP32 SGD bit-for-bit.
	rng := rand.New(rand.NewSource(4))
	n := 128
	w := make([]float32, n)
	ref := make([]float32, n)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
		ref[i] = w[i]
	}
	s := NewSplit(w)
	for iter := 0; iter < 50; iter++ {
		g := make([]float32, n)
		for i := range g {
			g[i] = rng.Float32()*0.2 - 0.1
		}
		s.SGDStep(g, 0.01)
		for i := range ref {
			ref[i] -= 0.01 * g[i]
		}
	}
	for i := range ref {
		if s.At(i) != ref[i] {
			t.Fatalf("Split-SGD diverged from FP32 SGD at %d: %g != %g", i, s.At(i), ref[i])
		}
	}
}

func TestSplitLoBits8LosesPrecision(t *testing.T) {
	// With only 8 LSBs, small-update accumulation stalls: repeatedly adding
	// a delta below the 24-bit mantissa resolution must leave w unchanged,
	// while the full split keeps accumulating — the §VII ablation.
	w := []float32{1.0}
	full := NewSplit(append([]float32(nil), w...))
	trunc := NewSplit(append([]float32(nil), w...))
	g := []float32{-1e-7} // w += lr*1e-7 per step with lr=1
	for i := 0; i < 1000; i++ {
		full.SGDStep(g, 1)
		trunc.SGDStep(g, 1)
		trunc.LoBits8()
	}
	if full.At(0) <= 1.0 {
		t.Fatal("full split failed to accumulate small updates")
	}
	if trunc.At(0) != 1.0 {
		t.Fatalf("8-LSB split unexpectedly accumulated: %g", trunc.At(0))
	}
}

func TestStochasticRoundBounds(t *testing.T) {
	f := float32(1.2345)
	lo := StochasticRound(f, 0.999999)
	hi := StochasticRound(f, 0)
	if ToFloat32(lo) > f || ToFloat32(hi) < f {
		t.Fatalf("stochastic round neighbours wrong: lo=%g hi=%g f=%g", ToFloat32(lo), ToFloat32(hi), f)
	}
	// Expectation is approximately unbiased.
	rng := rand.New(rand.NewSource(5))
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += float64(ToFloat32(StochasticRound(f, rng.Float32())))
	}
	mean := sum / trials
	if math.Abs(mean-float64(f)) > 1e-4 {
		t.Fatalf("stochastic rounding biased: mean %g want %g", mean, f)
	}
}

func TestStochasticRoundFP16Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 2000; trial++ {
		f := (rng.Float32()*2 - 1) * 100
		r := StochasticRoundFP16(f, rng.Float32())
		// Result must be exactly representable in FP16 and within one FP16
		// ulp of f.
		if RoundFP16(r) != r {
			t.Fatalf("result %g not an FP16 value (f=%g)", r, f)
		}
		if math.Abs(float64(r-f)) > math.Abs(float64(f))*math.Pow(2, -10)+1e-7 {
			t.Fatalf("result %g too far from %g", r, f)
		}
	}
}

func TestStochasticRoundFP16Unbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := float32(1.00037) // not representable in half
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(StochasticRoundFP16(f, rng.Float32()))
	}
	mean := sum / n
	if math.Abs(mean-float64(f)) > 5e-5 {
		t.Fatalf("biased: mean %g want %g", mean, f)
	}
}

func TestStochasticRoundFP16Exact(t *testing.T) {
	for _, f := range []float32{0, 1, -1, 0.5, 2048} {
		if StochasticRoundFP16(f, 0.5) != f {
			t.Fatalf("exact half value %g changed", f)
		}
	}
}

// Package bf16 provides the BFLOAT16 numerics behind §VII: round-to-nearest
// -even conversion, the split hi/lo representation that Split-SGD-BF16 uses
// to store FP32 master precision as two 16-bit tensors, a bit-accurate
// software emulation of the Cooper Lake vdpbf16ps dot-product instruction,
// and the FP24 (1-8-15) and FP16 quantizers the paper compares against.
package bf16

import "math"

// FromFloat32 converts an FP32 value to BF16 with round-to-nearest-even,
// returning the 16 most significant bits. NaNs are quieted so the truncated
// pattern stays a NaN.
func FromFloat32(f float32) uint16 {
	bits := math.Float32bits(f)
	if f != f { // NaN: force quiet bit, keep payload nonzero
		return uint16(bits>>16) | 0x0040
	}
	// RNE: add 0x7FFF + LSB of the surviving part.
	rounded := bits + 0x7FFF + (bits>>16)&1
	return uint16(rounded >> 16)
}

// ToFloat32 expands a BF16 value to FP32 (exact: BF16 aliases the upper half
// of FP32).
func ToFloat32(b uint16) float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// Round returns f rounded to BF16 precision as an FP32 value.
func Round(f float32) float32 { return ToFloat32(FromFloat32(f)) }

// RoundSlice rounds every element of x to BF16 precision in place — the
// "forward and backward passes exclusively use the 16 MSBs" behaviour.
func RoundSlice(x []float32) {
	for i := range x {
		x[i] = Round(x[i])
	}
}

// Dot emulates vdpbf16ps over two vectors: both operands are rounded to
// BF16 and the products are accumulated in FP32, matching the instruction's
// pairwise FP32 accumulation. The paper's Fig. 16 runs used exactly such a
// bit-accurate emulation ahead of silicon.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("bf16: Dot length mismatch")
	}
	var acc float32
	for i := range a {
		acc += Round(a[i]) * Round(b[i])
	}
	return acc
}

// RoundFP24 rounds f to the non-standard 1-8-15 FP24 format (8 exponent
// bits like FP32/BF16, 15 explicit mantissa bits) with RNE, returned as
// FP32. This is the "FP24" curve of Fig. 16.
func RoundFP24(f float32) float32 {
	bits := math.Float32bits(f)
	if f != f {
		return f
	}
	// Drop the low 8 mantissa bits with RNE.
	rounded := bits + 0x7F + (bits>>8)&1
	return math.Float32frombits(rounded &^ 0xFF)
}

// RoundFP24Slice rounds a slice to FP24 in place.
func RoundFP24Slice(x []float32) {
	for i := range x {
		x[i] = RoundFP24(x[i])
	}
}

// RoundFP16 rounds f to IEEE-754 binary16 precision and range (1-5-10),
// returned as FP32. Overflow saturates to ±Inf and subnormals flush through
// the usual half-precision denormal range — the limited range/mantissa that
// makes FP16 training need master weights and loss scaling (§VII).
func RoundFP16(f float32) float32 {
	return halfToFloat(floatToHalf(f))
}

// floatToHalf converts FP32 to IEEE binary16 bits with RNE.
func floatToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127 + 15
	man := bits & 0x7FFFFF
	switch {
	case f != f:
		return sign | 0x7E00
	case exp >= 0x1F: // overflow or Inf
		return sign | 0x7C00
	case exp <= 0:
		// subnormal half or underflow to zero
		if exp < -10 {
			return sign
		}
		man |= 0x800000 // implicit bit
		shift := uint32(14 - exp)
		half := man >> shift
		// RNE on the dropped bits
		rem := man & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return sign | uint16(half)
	default:
		half := uint16(exp)<<10 | uint16(man>>13)
		rem := man & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into exponent, which is correct rounding
		}
		return sign | half
	}
}

// halfToFloat expands IEEE binary16 bits to FP32.
func halfToFloat(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	man := uint32(h & 0x3FF)
	switch {
	case exp == 0x1F:
		if man != 0 {
			return math.Float32frombits(sign | 0x7FC00000)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3FF
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | man<<13)
	}
}

// StochasticRoundFP16 rounds f to FP16 stochastically: the result is one of
// the two neighbouring half-precision values, chosen with probability
// proportional to proximity, so rounding is unbiased in expectation. This
// is the quantizer of the low-precision embedding-table training the paper
// tried to replicate (§VII, [13]) and found insufficient for DLRM with SGD.
// u must be uniform in [0,1).
func StochasticRoundFP16(f float32, u float32) float32 {
	if f != f || f == 0 {
		return RoundFP16(f)
	}
	neg := f < 0
	mag := f
	if neg {
		mag = -f
	}
	// Truncate |f| toward zero in half precision: that is the lower
	// neighbour; the upper neighbour is one ulp up.
	loBits := floatToHalfTrunc(mag)
	lo := halfToFloat(loBits)
	if lo == mag || loBits >= 0x7C00 {
		if neg {
			return -lo
		}
		return lo
	}
	hi := halfToFloat(loBits + 1)
	p := (mag - lo) / (hi - lo)
	v := lo
	if u < p {
		v = hi
	}
	if neg {
		return -v
	}
	return v
}

// floatToHalfTrunc converts a positive FP32 magnitude to half bits rounding
// toward zero.
func floatToHalfTrunc(f float32) uint16 {
	bits := math.Float32bits(f)
	exp := int32(bits>>23&0xFF) - 127 + 15
	man := bits & 0x7FFFFF
	switch {
	case exp >= 0x1F:
		return 0x7C00
	case exp <= 0:
		if exp < -10 {
			return 0
		}
		man |= 0x800000
		return uint16(man >> uint32(14-exp))
	default:
		return uint16(exp)<<10 | uint16(man>>13)
	}
}

// StochasticRound rounds f to BF16 stochastically with probability
// proportional to the distance to the two neighbours, using u ∈ [0,1).
// Used by the FP16/low-precision embedding-training replication (§VII notes
// stochastic quantization was insufficient for DLRM with SGD).
func StochasticRound(f float32, u float32) uint16 {
	bits := math.Float32bits(f)
	if f != f {
		return FromFloat32(f)
	}
	frac := bits & 0xFFFF
	base := uint16(bits >> 16)
	if float32(frac) < u*65536 {
		return base
	}
	return base + 1
}

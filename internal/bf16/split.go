package bf16

import "math"

// Split stores an FP32 tensor as two 16-bit tensors: Hi holds the 16 MSBs
// of every value (a valid BF16 number, used by forward/backward) and Lo the
// 16 LSBs (optimizer-only state). Hi and Lo together reproduce the FP32
// value exactly, so SGD updates run at full FP32 accuracy without a
// separate master-weight copy — the core trick of Split-SGD-BF16 (§VII).
type Split struct {
	Hi []uint16
	Lo []uint16
}

// NewSplit builds the split representation of w.
func NewSplit(w []float32) *Split {
	s := &Split{Hi: make([]uint16, len(w)), Lo: make([]uint16, len(w))}
	for i, f := range w {
		bits := math.Float32bits(f)
		s.Hi[i] = uint16(bits >> 16)
		s.Lo[i] = uint16(bits)
	}
	return s
}

// Len returns the element count.
func (s *Split) Len() int { return len(s.Hi) }

// At reconstructs the exact FP32 value at index i.
func (s *Split) At(i int) float32 {
	return math.Float32frombits(uint32(s.Hi[i])<<16 | uint32(s.Lo[i]))
}

// SetFP32 stores the exact FP32 value at index i.
func (s *Split) SetFP32(i int, f float32) {
	bits := math.Float32bits(f)
	s.Hi[i] = uint16(bits >> 16)
	s.Lo[i] = uint16(bits)
}

// HiFloat returns the BF16 (Hi) part expanded to FP32 — the value the
// forward and backward passes see.
func (s *Split) HiFloat(i int) float32 { return ToFloat32(s.Hi[i]) }

// WriteHiTo materializes the BF16 view of the whole tensor into dst, which
// the model uses as its working weights. Two of the three training passes
// therefore move half the bytes of an FP32 model.
func (s *Split) WriteHiTo(dst []float32) {
	if len(dst) != len(s.Hi) {
		panic("bf16: WriteHiTo length mismatch")
	}
	for i := range dst {
		dst[i] = ToFloat32(s.Hi[i])
	}
}

// Compose materializes the exact FP32 tensor into dst.
func (s *Split) Compose(dst []float32) {
	if len(dst) != len(s.Hi) {
		panic("bf16: Compose length mismatch")
	}
	for i := range dst {
		dst[i] = s.At(i)
	}
}

// SGDStep applies w -= lr·g elementwise at full FP32 accuracy by
// recomposing hi|lo, updating, and re-splitting. This is the Split-SGD-BF16
// update kernel.
func (s *Split) SGDStep(g []float32, lr float32) {
	if len(g) != len(s.Hi) {
		panic("bf16: SGDStep length mismatch")
	}
	for i := range g {
		w := s.At(i) - lr*g[i]
		s.SetFP32(i, w)
	}
}

// LoBits8 truncates the Lo tensor to its top 8 bits (zeroing the rest),
// modelling the "only 8 additional LSBs" ablation that §VII reports is not
// enough to train DLRM to accuracy.
func (s *Split) LoBits8() {
	for i := range s.Lo {
		s.Lo[i] &= 0xFF00
	}
}

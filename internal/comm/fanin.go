package comm

import (
	"repro/internal/cluster"
	"repro/internal/fabric"
)

// FanIn prices request-scoped fan-in transfers: many sources each sending a
// payload to one destination socket, concurrently, with the slowest route
// pacing the whole gather. It is the communication primitive behind the
// serving tier's distributed embedding lookup — a model replica pulls each
// remote shard owner's bag outputs for one micro-batch — and deliberately
// does NOT ride the SPMD collective path: a request touches only the
// sockets it needs, at whatever virtual time the request dispatches, with
// no rendezvous against other ranks.
//
// Like the Comm collectives it is allocation-free after warmup: the flow
// list and link-load scratch are owned by the FanIn and reused across
// calls. A FanIn is not safe for concurrent use; the serving event loop is
// single-threaded, which is also what makes the contended variant sound
// (Engine.ChargeContended mutates the shared contention epoch and assumes
// leader-context serialization).
type FanIn struct {
	Topo fabric.Topology

	scratch fabric.Scratch
	loads   fabric.LoadSet
	flows   []fabric.Flow
}

// place rebuilds the flow list for gathering perSrc[s] bytes from each
// socket s into dst. Self and zero-byte entries are skipped.
func (f *FanIn) place(dst int, perSrc []float64) {
	f.flows = f.flows[:0]
	for src, bytes := range perSrc {
		if src == dst || bytes <= 0 {
			continue
		}
		f.flows = append(f.flows, fabric.Flow{Src: src, Dst: dst, Bytes: bytes})
	}
}

// Time returns the isolated (uncontended) duration of the gather: all
// flows placed on their routes at once, bottleneck link pacing, plus the
// worst route latency — fabric.Scratch.PhaseTime semantics. The duration
// is pre-backend-slowdown; callers charging a virtual clock multiply by
// cluster.Config.CommSlowdown, exactly as the collective leaders do.
func (f *FanIn) Time(dst int, perSrc []float64) float64 {
	f.place(dst, perSrc)
	if len(f.flows) == 0 {
		return 0
	}
	return f.scratch.PhaseTime(f.Topo, f.flows)
}

// TimeOn is Time charged against eng's contention epoch: the gather's
// per-link loads are registered as a flight starting at the given virtual
// time, and the returned duration is stretched by the residual bytes other
// in-flight operations still hold on shared links (and stretches them in
// turn). With contention disabled on eng — or no flows — it degrades to
// the isolated time. The result is pre-backend-slowdown, like Time.
func (f *FanIn) TimeOn(eng *cluster.Engine, dst int, perSrc []float64, start float64) float64 {
	f.place(dst, perSrc)
	if len(f.flows) == 0 {
		return 0
	}
	if eng == nil || !eng.Cfg.Contention {
		return f.scratch.PhaseTime(f.Topo, f.flows)
	}
	f.loads.Reset()
	prev := f.scratch.Accumulate(&f.loads)
	iso := f.scratch.PhaseTime(f.Topo, f.flows)
	f.scratch.Accumulate(prev)
	return eng.ChargeContended(f.Topo, &f.loads, start, iso)
}

// Property tests for the collectives: every data-moving primitive is
// checked against a naive single-threaded reference over random rank
// counts (2–8) and payload sizes. These pin the rewritten leader protocol
// (caller-owned receive buffers, reduction into rank 0's buffer, recycled
// rendezvous slots) to the mathematical definition of each collective, and
// TestCollectivesConcurrentStress is sized to run under -race in CI.
package comm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// randInputs builds one random []float32 per rank.
func randInputs(rng *rand.Rand, ranks, n int) [][]float32 {
	in := make([][]float32, ranks)
	for i := range in {
		in[i] = make([]float32, n)
		for j := range in[i] {
			in[i][j] = rng.Float32()*2 - 1
		}
	}
	return in
}

func TestAllreducePropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		ranks := 2 + rng.Intn(7) // 2..8
		n := 1 + rng.Intn(200)
		avg := rng.Intn(2) == 0
		in := randInputs(rng, ranks, n)

		want := make([]float64, n)
		for _, v := range in {
			for j, x := range v {
				want[j] += float64(x)
			}
		}
		if avg {
			for j := range want {
				want[j] /= float64(ranks)
			}
		}
		runComm(ranks, cluster.CCLBackend, func(c *Comm) {
			buf := append([]float32(nil), in[c.Rank()]...)
			h := c.Allreduce("ar", buf, avg)
			c.R.Wait(h)
			for j := range buf {
				if math.Abs(float64(buf[j])-want[j]) > 1e-4 {
					t.Errorf("trial %d ranks=%d avg=%v: rank %d elem %d = %g want %g",
						trial, ranks, avg, c.Rank(), j, buf[j], want[j])
					return
				}
			}
		})
	}
}

// TestAllreduceAlgoLeadersPropertyRandom pins the algorithm-selectable
// allreduce leader to the mathematical definition: whatever cost model is
// selected (ring, recursive halving, flat tree, hierarchical two-level,
// binary tree) and whatever CCL channel the collective is pinned to, the
// data movement must equal the naive single-threaded sum over random rank
// counts 2–8 — and the charged busy time must match the algorithm's cost
// model exactly.
func TestAllreduceAlgoLeadersPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 30; trial++ {
		ranks := 2 + rng.Intn(7) // 2..8
		n := 1 + rng.Intn(200)
		avg := rng.Intn(2) == 0
		algo := AllreduceAlgos[rng.Intn(len(AllreduceAlgos))]
		ch := rng.Intn(5) - 1 // -1 (label hash) .. 3 (pinned)
		backend := cluster.CCLBackend
		if rng.Intn(2) == 0 {
			backend = cluster.MPIBackend
		}
		in := randInputs(rng, ranks, n)

		want := make([]float64, n)
		for _, v := range in {
			for j, x := range v {
				want[j] += float64(x)
			}
		}
		if avg {
			for j := range want {
				want[j] /= float64(ranks)
			}
		}
		stats := runComm(ranks, backend, func(c *Comm) {
			buf := append([]float32(nil), in[c.Rank()]...)
			h := c.AllreduceAlgoCost("ar", ch, buf, avg, float64(4*n), algo)
			c.R.Wait(h)
			for j := range buf {
				if math.Abs(float64(buf[j])-want[j]) > 1e-4 {
					t.Errorf("trial %d ranks=%d algo=%v ch=%d: rank %d elem %d = %g want %g",
						trial, ranks, algo, ch, c.Rank(), j, buf[j], want[j])
					return
				}
			}
			wantT := c.AllreduceTimeAlgo(algo, float64(4*n))
			if wantT <= 0 {
				t.Errorf("trial %d: algo %v charged non-positive time %g", trial, algo, wantT)
			}
		})
		for rk, s := range stats {
			if s.CommBusy["ar"] <= 0 {
				t.Fatalf("trial %d algo=%v: rank %d recorded no allreduce busy time", trial, algo, rk)
			}
		}
	}
}

func TestAlltoallPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 20; trial++ {
		ranks := 2 + rng.Intn(7)
		bl := 1 + rng.Intn(16)
		in := randInputs(rng, ranks, ranks*bl)
		runComm(ranks, cluster.MPIBackend, func(c *Comm) {
			recv, h := c.Alltoall("a2a", in[c.Rank()], bl)
			c.R.Wait(h)
			for src := 0; src < ranks; src++ {
				for j := 0; j < bl; j++ {
					// Reference: recv block src = src's send block dst.
					if recv[src*bl+j] != in[src][c.Rank()*bl+j] {
						t.Errorf("trial %d ranks=%d bl=%d: rank %d block %d mismatch",
							trial, ranks, bl, c.Rank(), src)
						return
					}
				}
			}
		})
	}
}

func TestScatterGatherPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 20; trial++ {
		ranks := 2 + rng.Intn(7)
		bl := 1 + rng.Intn(16)
		root := rng.Intn(ranks)
		in := randInputs(rng, ranks, bl)
		rootBuf := randInputs(rng, 1, ranks*bl)[0]
		runComm(ranks, cluster.CCLBackend, func(c *Comm) {
			// Scatter: rank j must receive root's block j.
			var send []float32
			if c.Rank() == root {
				send = rootBuf
			}
			blk, h := c.Scatter("sc", root, send, bl)
			c.R.Wait(h)
			for j := 0; j < bl; j++ {
				if blk[j] != rootBuf[c.Rank()*bl+j] {
					t.Errorf("trial %d: scatter rank %d elem %d mismatch", trial, c.Rank(), j)
					return
				}
			}
			// Gather back: the root must see every rank's block in order.
			var recv []float32
			if c.Rank() == root {
				recv = make([]float32, ranks*bl)
			}
			h = c.GatherCost("ga", root, in[c.Rank()], recv, float64(4*bl))
			c.R.Wait(h)
			if c.Rank() == root {
				for src := 0; src < ranks; src++ {
					for j := 0; j < bl; j++ {
						if recv[src*bl+j] != in[src][j] {
							t.Errorf("trial %d: gather block %d elem %d mismatch", trial, src, j)
							return
						}
					}
				}
			}
		})
	}
}

func TestAllgatherBroadcastPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 20; trial++ {
		ranks := 2 + rng.Intn(7)
		n := 1 + rng.Intn(32)
		root := rng.Intn(ranks)
		in := randInputs(rng, ranks, n)
		runComm(ranks, cluster.MPIBackend, func(c *Comm) {
			out, h := c.Allgather("ag", in[c.Rank()])
			c.R.Wait(h)
			for src := 0; src < ranks; src++ {
				for j := 0; j < n; j++ {
					if out[src*n+j] != in[src][j] {
						t.Errorf("trial %d: allgather block %d mismatch", trial, src)
						return
					}
				}
			}
			buf := append([]float32(nil), in[c.Rank()]...)
			h = c.Broadcast("bc", root, buf)
			c.R.Wait(h)
			for j := range buf {
				if buf[j] != in[root][j] {
					t.Errorf("trial %d: broadcast rank %d elem %d mismatch", trial, c.Rank(), j)
					return
				}
			}
		})
	}
}

// TestCollectivesConcurrentStress drives 8 ranks through many iterations of
// interleaved, differently-labeled collectives with real payloads — the
// pattern that exercises rendezvous-slot recycling, the per-Comm reusable
// payload record, and CCL's concurrent channels. CI runs this package under
// -race; the data movement is verified so a lost update would also fail
// functionally.
func TestCollectivesConcurrentStress(t *testing.T) {
	const ranks, iters, n = 8, 25, 64
	pools := cluster.NewPools()
	defer pools.Close()
	topo := fabric.NewPrunedFatTree(ranks, 12.5e9)
	for _, backend := range []cluster.Backend{cluster.MPIBackend, cluster.CCLBackend} {
		cfg := cluster.Config{
			Ranks: ranks, Topo: topo, Socket: perfmodel.CLX8280,
			Backend: backend, CallOverhead: 1e-9, Pools: pools,
		}
		cluster.Run(cfg, func(r *cluster.Rank) {
			c := New(r, topo)
			buf := make([]float32, n)
			send := make([]float32, ranks*2)
			recv := make([]float32, ranks*2)
			for it := 0; it < iters; it++ {
				for j := range buf {
					buf[j] = float32(r.ID + it)
				}
				for j := range send {
					send[j] = float32(r.ID*1000 + it)
				}
				hA := c.AllreduceCost("allreduce", buf, false, 4*n)
				hB := c.AlltoallCost("alltoall", send, recv, 2, 8)
				r.Wait(hB)
				r.Wait(hA)
				wantAR := float32(ranks*it) + float32(ranks*(ranks-1))/2
				if buf[0] != wantAR {
					t.Errorf("iter %d rank %d: allreduce got %g want %g", it, r.ID, buf[0], wantAR)
					return
				}
				for src := 0; src < ranks; src++ {
					if recv[src*2] != float32(src*1000+it) {
						t.Errorf("iter %d rank %d: alltoall block %d stale", it, r.ID, src)
						return
					}
				}
				r.Barrier()
			}
		})
	}
}

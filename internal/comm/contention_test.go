package comm

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// runCommContention is runComm with the contention knob and channel count
// under test control.
func runCommContention(ranks int, contention bool, body func(c *Comm)) []cluster.Stats {
	topo := fabric.NewPrunedFatTree(ranks, 12.5e9)
	cfg := cluster.Config{
		Ranks: ranks, Topo: topo, Socket: perfmodel.CLX8280,
		Backend: cluster.CCLBackend, CallOverhead: 1e-9,
		CCLChannels: 4, Contention: contention,
	}
	return cluster.Run(cfg, func(r *cluster.Rank) {
		body(New(r, topo))
	})
}

// TestConcurrentAllreducesShareTrunk is the tentpole's end-to-end check at
// the comm layer: two 64 MiB allreduces issued concurrently on CCL channels
// 0 and 1 over the 64-socket pruned fat-tree cross the same 2:1 trunk.
// With contention off each is priced in isolation (the old, wrong optimism:
// both finish in one isolated duration); with contention on each op's busy
// time is ≥ its isolated time and the pair's combined finish stays ≤ the
// serialized sum.
func TestConcurrentAllreducesShareTrunk(t *testing.T) {
	const bytes = 64 << 20
	run := func(cont bool) (iso, busy1, busy2 float64) {
		stats := runCommContention(64, cont, func(c *Comm) {
			if c.R.ID == 0 { // one writer: 64 ranks storing iso is a data race
				iso = c.AllreduceTime(bytes)
			}
			buf1 := make([]float32, 1)
			buf2 := make([]float32, 1)
			h1 := c.AllreduceAlgoCost("ar0", 0, buf1, false, bytes, RingRSAG)
			h2 := c.AllreduceAlgoCost("ar1", 1, buf2, false, bytes, RingRSAG)
			c.R.Wait(h1)
			c.R.Wait(h2)
		})
		return iso, stats[0].CommBusy["ar0"], stats[0].CommBusy["ar1"]
	}

	iso, off1, off2 := run(false)
	if off1 != iso || off2 != iso {
		t.Fatalf("contention off must price in isolation: iso=%g got %g, %g", iso, off1, off2)
	}
	_, on1, on2 := run(true)
	if on1 < iso || on2 < iso {
		t.Fatalf("each concurrent op must take ≥ isolated %g: got %g, %g", iso, on1, on2)
	}
	if on2 <= iso {
		t.Fatal("second op must actually pay for the shared trunk")
	}
	// Combined finish (both start together, so the later busy time bounds
	// it) never exceeds running the two back to back.
	later := on1
	if on2 > later {
		later = on2
	}
	if later > 2*iso+1e-9 {
		t.Fatalf("combined finish %g exceeds serialized sum %g", later, 2*iso)
	}
}

// TestContentionOffBitIdentical: the knob off must leave every modeled
// duration exactly as it was — the charge bracket is a no-op, not a
// near-no-op.
func TestContentionOffBitIdentical(t *testing.T) {
	const bytes = 8 << 20
	collect := func(cont bool) map[string]float64 {
		var out map[string]float64
		stats := runCommContention(16, cont, func(c *Comm) {
			buf := make([]float32, 1)
			c.R.Wait(c.AllreduceCost("ar", buf, false, bytes))
			send := make([]float32, 16)
			recv := make([]float32, 16)
			c.R.Wait(c.AlltoallCost("a2a", send, recv, 1, bytes/16))
			c.R.Wait(c.AllreduceAlgoCost("auto", 0, buf, false, bytes, AllreduceAuto))
		})
		out = stats[0].CommBusy
		return out
	}
	off, ref := collect(false), collect(false)
	for k, v := range ref {
		if off[k] != v {
			t.Fatalf("non-deterministic baseline for %s", k)
		}
	}
	// Serialized ops (each waited before the next) with contention ON also
	// match exactly: nothing overlaps, so nothing is charged sharing.
	on := collect(true)
	for k, v := range off {
		if on[k] != v {
			t.Fatalf("serialized op %s changed under contention: off=%g on=%g", k, v, on[k])
		}
	}
}

// TestAutoAllreduceContentionChargesWinnerOnly: the Auto policy probes every
// candidate algorithm; only the winner's flows may land in the contention
// epoch. If losers leaked, a subsequent overlapping op would be charged for
// phantom traffic.
func TestAutoAllreduceContentionChargesWinnerOnly(t *testing.T) {
	const bytes = 64 << 20
	run := func(algo AllreduceAlgo) (second float64) {
		stats := runCommContention(64, true, func(c *Comm) {
			buf1 := make([]float32, 1)
			buf2 := make([]float32, 1)
			h1 := c.AllreduceAlgoCost("first", 0, buf1, false, bytes, algo)
			h2 := c.AllreduceAlgoCost("second", 1, buf2, false, bytes, RingRSAG)
			c.R.Wait(h1)
			c.R.Wait(h2)
		})
		return stats[0].CommBusy["second"]
	}
	// At 64 MiB the auto policy resolves to a concrete algorithm; the
	// second op must be charged exactly as if that algorithm had been
	// requested directly.
	// Only rank 0 publishes its Comm: every rank writing the shared
	// variable is a data race (cluster.Run's join is the read barrier,
	// but the 64 writers still race each other).
	var c0 *Comm
	runCommContention(64, false, func(c *Comm) {
		if c.R.ID == 0 {
			c0 = c
		}
	})
	best, _ := c0.BestAllreduceAlgo(bytes)
	if got, want := run(AllreduceAuto), run(best); got != want {
		t.Fatalf("auto leaked probe flows into the epoch: second=%g, want %g (winner %v)", got, want, best)
	}
}

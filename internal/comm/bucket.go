package comm

// Bucket plans carve an MLP's per-layer gradient volumes into allreduce
// buckets for the Fig. 2 overlap schedule: the backward pass visits layers
// last to first, and as soon as a bucket's lowest layer has materialized its
// gradients the bucket's allreduce is issued — while the remaining backward
// GEMMs still run. Small layers are coalesced so no collective falls below
// the bucket size (tiny messages pay pure latency), and consecutive buckets
// round-robin over a CCL channel set so several stay in flight concurrently
// instead of queueing on one FIFO.

// Bucket is one contiguous run of layers [Lo, Hi] (inclusive) reduced by a
// single allreduce. Because layers are flattened in order, a bucket is also
// a contiguous slice of the flat gradient buffer.
type Bucket struct {
	Lo, Hi  int           // inclusive layer index range, Lo ≤ Hi
	Bytes   float64       // modeled gradient volume of the bucket
	Channel int           // CCL channel the allreduce is pinned to (-1 = label hash)
	Algo    AllreduceAlgo // concrete algorithm the bucket's allreduce runs
}

// Layers returns the number of layers the bucket covers.
func (b Bucket) Layers() int { return b.Hi - b.Lo + 1 }

// BucketPlan is the ordered bucket list for one MLP. Buckets appear in
// ISSUE order: Buckets[0] covers the stack's last layers (the first ones the
// backward pass completes) and the final bucket ends at layer 0.
type BucketPlan struct {
	Buckets []Bucket
}

// TotalBytes returns the summed modeled volume — identical to the flat
// single-allreduce volume, only the segmentation differs.
func (p BucketPlan) TotalBytes() float64 {
	var t float64
	for _, b := range p.Buckets {
		t += b.Bytes
	}
	return t
}

// PlanBuckets partitions layers (layerBytes[i] = modeled gradient bytes of
// layer i) into buckets of at least bucketBytes each, walking from the last
// layer down — the backward execution order — and coalescing until the
// threshold is met. The final bucket (ending at layer 0) may stay below the
// threshold: there is nothing left to coalesce it with. bucketBytes ≤ 0
// yields a single bucket covering the whole stack (the flat allreduce,
// expressed in bucket form). Channels default to -1 (label-hash placement);
// use AssignChannels to round-robin a CCL channel set.
func PlanBuckets(layerBytes []float64, bucketBytes float64) BucketPlan {
	if len(layerBytes) == 0 {
		return BucketPlan{}
	}
	var buckets []Bucket
	hi := len(layerBytes) - 1
	var acc float64
	for lo := hi; lo >= 0; lo-- {
		acc += layerBytes[lo]
		if (bucketBytes > 0 && acc >= bucketBytes) || lo == 0 {
			buckets = append(buckets, Bucket{Lo: lo, Hi: hi, Bytes: acc, Channel: -1})
			hi, acc = lo-1, 0
		}
	}
	return BucketPlan{Buckets: buckets}
}

// SelectAlgos resolves each bucket's allreduce algorithm. A concrete algo
// is copied to every bucket; AllreduceAuto instead asks BestAllreduceAlgo
// per bucket volume, so a plan can mix algorithms — the large head buckets
// keep ring/hierarchical while a small tail bucket flips to halving/tree.
// The per-bucket choice is recorded in the plan (Bucket.Algo) so figures
// can expose what was selected.
func (p BucketPlan) SelectAlgos(c *Comm, algo AllreduceAlgo) {
	for i := range p.Buckets {
		if algo == AllreduceAuto {
			p.Buckets[i].Algo, _ = c.BestAllreduceAlgo(p.Buckets[i].Bytes)
		} else {
			p.Buckets[i].Algo = algo
		}
	}
}

// ModeledTime returns the summed cost-model time of the plan's allreduces
// under the per-bucket algorithms SelectAlgos recorded — the quantity the
// per-bucket-auto property ("never slower than the best single algorithm")
// is stated over.
func (p BucketPlan) ModeledTime(c *Comm) float64 {
	var t float64
	for _, b := range p.Buckets {
		t += c.AllreduceTimeAlgo(b.Algo, b.Bytes)
	}
	return t
}

// AssignChannels pins the plan's buckets round-robin onto the given CCL
// channel set, starting at rotation offset start, and returns the next
// offset — so a caller planning several MLPs (top then bottom) can continue
// the rotation across plans and keep adjacent buckets on distinct FIFOs. An
// empty channel set resets every bucket to label-hash placement.
func (p BucketPlan) AssignChannels(channels []int, start int) int {
	if len(channels) == 0 {
		for i := range p.Buckets {
			p.Buckets[i].Channel = -1
		}
		return start
	}
	for i := range p.Buckets {
		p.Buckets[i].Channel = channels[(start+i)%len(channels)]
	}
	return start + len(p.Buckets)
}

package comm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fabric"
)

// TestAutoAllreduceTimeIsMinimum pins the AllreduceAuto cost to the
// BestAllreduceAlgo minimum across volumes and rank counts.
func TestAutoAllreduceTimeIsMinimum(t *testing.T) {
	for _, ranks := range []int{2, 8, 64} {
		c, release := commAt(ranks)
		for _, bytes := range []float64{4e3, 1e6, 1e9} {
			auto := c.AllreduceTimeAlgo(AllreduceAuto, bytes)
			_, best := c.BestAllreduceAlgo(bytes)
			if auto != best {
				t.Errorf("%dR %g bytes: auto charge %g != best algo %g", ranks, bytes, auto, best)
			}
			for _, a := range AllreduceAlgos {
				if tt := c.AllreduceTimeAlgo(a, bytes); tt < auto-1e-15 {
					t.Errorf("%dR %g bytes: %v (%g) beats auto (%g)", ranks, bytes, a, tt, auto)
				}
			}
		}
		release()
	}
}

// TestSelectAlgosRecordsConcreteAlgos checks that SelectAlgos resolves
// AllreduceAuto to concrete per-bucket algorithms (never Auto itself) and
// copies a concrete request through unchanged.
func TestSelectAlgosRecordsConcreteAlgos(t *testing.T) {
	c, release := commAt(8)
	defer release()
	layers := []float64{4e3, 8e3, 64e6, 128e6}
	p := PlanBuckets(layers, 32e6)
	p.SelectAlgos(c, AllreduceAuto)
	for i, b := range p.Buckets {
		if b.Algo == AllreduceAuto {
			t.Errorf("bucket %d: Auto must resolve to a concrete algorithm", i)
		}
		if want, _ := c.BestAllreduceAlgo(b.Bytes); b.Algo != want {
			t.Errorf("bucket %d (%g bytes): selected %v, best is %v", i, b.Bytes, b.Algo, want)
		}
	}
	p.SelectAlgos(c, Hierarchical)
	for i, b := range p.Buckets {
		if b.Algo != Hierarchical {
			t.Errorf("bucket %d: concrete request not copied through (got %v)", i, b.Algo)
		}
	}
}

// TestAutoPlanNeverSlowerThanSingleAlgo is the per-bucket selection
// property: over ranks 2–8 on both modeled fabrics, for random layer-volume
// profiles and bucket sizes, the auto-selected plan's total modeled
// allreduce time is ≤ the same plan run under every single algorithm —
// per-bucket minima can only improve on any uniform choice.
func TestAutoPlanNeverSlowerThanSingleAlgo(t *testing.T) {
	fabrics := []struct {
		name string
		mk   func(ranks int) fabric.Topology
	}{
		{"fat-tree", func(ranks int) fabric.Topology { return fabric.NewPrunedFatTree(ranks, 12.5e9) }},
		{"twisted-hypercube", func(int) fabric.Topology { return fabric.NewTwistedHypercube(22e9) }},
	}
	for _, fb := range fabrics {
		for ranks := 2; ranks <= 8; ranks++ {
			t.Run(fmt.Sprintf("%s/%dR", fb.name, ranks), func(t *testing.T) {
				c, release := commOn(ranks, fb.mk(ranks))
				defer release()
				rng := rand.New(rand.NewSource(int64(ranks)))
				for trial := 0; trial < 20; trial++ {
					nLayers := 1 + rng.Intn(12)
					layers := make([]float64, nLayers)
					for i := range layers {
						// Volumes spanning the latency-bound to bandwidth-bound
						// regimes: 1 KB … 256 MB.
						layers[i] = float64(1<<10) * math.Pow(2, rng.Float64()*18)
					}
					bucketBytes := float64(0)
					if rng.Intn(4) > 0 {
						bucketBytes = float64(1<<16) * math.Pow(2, rng.Float64()*12)
					}
					p := PlanBuckets(layers, bucketBytes)
					p.SelectAlgos(c, AllreduceAuto)
					auto := p.ModeledTime(c)
					for _, a := range AllreduceAlgos {
						q := PlanBuckets(layers, bucketBytes)
						q.SelectAlgos(c, a)
						if single := q.ModeledTime(c); single < auto-1e-12 {
							t.Fatalf("trial %d: auto plan (%g) slower than uniform %v (%g); layers=%v bucket=%g",
								trial, auto, a, single, layers, bucketBytes)
						}
					}
				}
			})
		}
	}
}

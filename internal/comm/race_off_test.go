//go:build !race

package comm

// raceEnabled mirrors race_on_test.go for plain builds.
const raceEnabled = false

package comm

import (
	"math"
	"math/bits"

	"repro/internal/fabric"
)

// AllreduceAlgo selects the allreduce algorithm for the cost model. The
// paper (§II) calls for "the best possible allreduce algorithm"; which one
// that is depends on message size and scale, so the ablation harness sweeps
// these.
type AllreduceAlgo int

const (
	// RingRSAG is the bandwidth-optimal ring reduce-scatter + all-gather
	// the trainer uses by default: 2(R−1) neighbour phases of bytes/R.
	RingRSAG AllreduceAlgo = iota
	// RecursiveHalving is the latency-optimal recursive halving/doubling:
	// 2·log2(R) phases with geometrically shrinking volumes. Wins for small
	// messages where the ring's 2(R−1) latencies dominate.
	RecursiveHalving
	// FlatTree is the naive gather-to-root + broadcast: the root's link
	// carries (R−1)·bytes in each direction. The baseline a framework uses
	// when nobody tuned it.
	FlatTree
	// Hierarchical is the two-level allreduce matching the cluster's
	// dual-socket nodes (§V-B): an intra-node ring reduce-scatter leaves each
	// socket owning 1/G of the reduced node sum, G concurrent inter-node
	// rings allreduce the shards across nodes, and an intra-node all-gather
	// reassembles. Same total volume as the flat ring but 2(G−1)+2(R/G−1)
	// phases instead of 2(R−1) — it trades nothing to halve the latency term
	// at G=2, which is what makes it strictly faster on the OPA fat-tree.
	Hierarchical
	// BinaryTree is the NCCL-style pipelined double binary tree: two
	// complementary trees each reduce-and-broadcast half the message in
	// chunks, so every rank sends/receives at most two chunk streams per
	// step. Depth-many phases instead of R−1: latency-friendly at scale,
	// but the interior ranks' 2-child fan-in caps bandwidth below the ring.
	BinaryTree
	// AllreduceAuto is not an algorithm but a selection policy: each
	// allreduce (each bucket, under the bucketed schedule) runs whatever
	// concrete algorithm BestAllreduceAlgo picks for its volume — small
	// latency-bound tail buckets get halving/tree, large ones keep
	// ring/hierarchical. Deliberately NOT in AllreduceAlgos: it is resolved
	// to a concrete algorithm, never swept as one.
	AllreduceAuto
)

// String returns the algorithm name.
func (a AllreduceAlgo) String() string {
	switch a {
	case RingRSAG:
		return "ring RS+AG"
	case RecursiveHalving:
		return "recursive halving"
	case FlatTree:
		return "flat tree"
	case Hierarchical:
		return "hierarchical 2-level"
	case BinaryTree:
		return "binary tree"
	case AllreduceAuto:
		return "auto"
	default:
		return "unknown"
	}
}

// ShortString returns a compact algorithm tag for dense figure cells.
func (a AllreduceAlgo) ShortString() string {
	switch a {
	case RingRSAG:
		return "ring"
	case RecursiveHalving:
		return "halving"
	case FlatTree:
		return "flat"
	case Hierarchical:
		return "hier"
	case BinaryTree:
		return "tree"
	case AllreduceAuto:
		return "auto"
	default:
		return "?"
	}
}

// AllreduceAlgos lists the modeled algorithms.
var AllreduceAlgos = []AllreduceAlgo{RingRSAG, RecursiveHalving, FlatTree, Hierarchical, BinaryTree}

// HierGroupSize returns the intra-node group size of the Hierarchical
// allreduce for a communicator of r ranks: the paper's cluster packs two
// sockets (ranks) per node, so groups of 2 whenever r divides evenly; odd or
// trivial sizes fall back to 1 (plain ring).
func HierGroupSize(r int) int {
	if r > 2 && r%2 == 0 {
		return 2
	}
	return 1
}

// AllreduceTimeAlgo returns the modeled duration of an allreduce of bytes
// per rank under the chosen algorithm.
func (c *Comm) AllreduceTimeAlgo(algo AllreduceAlgo, bytes float64) float64 {
	r := c.size
	if r == 1 {
		return 0
	}
	switch algo {
	case RecursiveHalving:
		// Reduce-scatter by recursive halving then all-gather by recursive
		// doubling: at step k the partner distance is 2^k and the volume
		// halves; 2·ceil(log2 R) phases in total. For non-powers of two we
		// charge the power-of-two envelope (standard practice).
		steps := bits.Len(uint(r - 1))
		var total float64
		vol := bytes / 2
		for k := 0; k < steps; k++ {
			dist := 1 << k
			c.flows = c.flows[:0]
			for i := 0; i < r; i++ {
				c.flows = append(c.flows, fabric.Flow{Src: i, Dst: (i + dist) % r, Bytes: vol})
			}
			total += c.fab.PhaseTimeN(c.Topo, c.flows, 2) // RS phase + mirrored AG phase
			vol /= 2
		}
		return total
	case FlatTree:
		var total float64
		c.flows = c.flows[:0]
		for i := 1; i < r; i++ {
			c.flows = append(c.flows, fabric.Flow{Src: i, Dst: 0, Bytes: bytes})
		}
		total += c.fab.PhaseTime(c.Topo, c.flows)
		c.flows = c.flows[:0]
		for i := 1; i < r; i++ {
			c.flows = append(c.flows, fabric.Flow{Src: 0, Dst: i, Bytes: bytes})
		}
		return total + c.fab.PhaseTime(c.Topo, c.flows)
	case Hierarchical:
		g := HierGroupSize(r)
		if g <= 1 {
			return c.AllreduceTime(bytes)
		}
		n := r / g // nodes
		var total float64
		// Intra-node ring phase: rank i sends bytes/G to the next rank of its
		// group; G−1 such phases reduce-scatter, G−1 more all-gather at the
		// end. Group neighbours share a leaf, so these phases never cross the
		// trunk and pay the short latency.
		c.flows = c.flows[:0]
		for i := 0; i < r; i++ {
			base := (i / g) * g
			c.flows = append(c.flows, fabric.Flow{Src: i, Dst: base + (i-base+1)%g, Bytes: bytes / float64(g)})
		}
		total += c.fab.PhaseTimeN(c.Topo, c.flows, 2*float64(g-1))
		if n > 1 {
			// Inter-node phase: G concurrent rings (one per local shard
			// index), each allreducing bytes/G over the n nodes — every rank
			// sends bytes/R to its same-index peer in the next node.
			c.flows = c.flows[:0]
			for i := 0; i < r; i++ {
				c.flows = append(c.flows, fabric.Flow{Src: i, Dst: (i + g) % r, Bytes: bytes / float64(r)})
			}
			total += c.fab.PhaseTimeN(c.Topo, c.flows, 2*float64(n-1))
		}
		return total
	case BinaryTree:
		// Double binary tree, pipelined: tree A is the heap-order tree over
		// ranks, tree B its mirror (heap order over reversed ids), each
		// carrying half the message split into chunks. In steady state every
		// tree edge moves one chunk up (reduce) and one down (broadcast) per
		// step — full-duplex links charge the directions separately — and the
		// pipeline drains after depth-of-both-passes + chunks − 1 steps. The
		// chunk count adapts to the message size (see BinaryTreeChunks).
		depth := bits.Len(uint(r - 1))
		chunks := BinaryTreeChunks(bytes, r)
		per := bytes / 2 / float64(chunks)
		c.flows = c.flows[:0]
		for i := 1; i < r; i++ {
			pa := (i - 1) / 2 // tree A parent (heap order)
			c.flows = append(c.flows,
				fabric.Flow{Src: i, Dst: pa, Bytes: per},
				fabric.Flow{Src: pa, Dst: i, Bytes: per})
			// Tree B: the same heap shape over reversed rank ids, so interior
			// ranks of tree A are leaves of tree B and vice versa.
			child, pb := r-1-i, r-1-(i-1)/2
			c.flows = append(c.flows,
				fabric.Flow{Src: child, Dst: pb, Bytes: per},
				fabric.Flow{Src: pb, Dst: child, Bytes: per})
		}
		steps := 2*depth + chunks - 1
		return c.fab.PhaseTimeN(c.Topo, c.flows, float64(steps))
	case AllreduceAuto:
		// Resolve the policy to its concrete winner, then charge that one
		// algorithm: BestAllreduceAlgo evaluates every candidate with load
		// accumulation suspended, so only the winner's flows land in any
		// attached contention footprint.
		best, _ := c.BestAllreduceAlgo(bytes)
		return c.AllreduceTimeAlgo(best, bytes)
	default:
		return c.AllreduceTime(bytes)
	}
}

// binaryTreeChunkRef is the reference chunk volume of the pipelined binary
// tree's dynamic chunking: the per-chunk payload at which one phase's
// serialization time is comparable to its wire latency on the modeled
// fabrics, so chunks much smaller waste steps on latency and chunks much
// larger stall the pipeline fill.
const binaryTreeChunkRef = 256 << 10

// BinaryTreeChunks returns the pipeline chunk count for an allreduce of
// bytes per rank over r ranks. Like NCCL's dynamic chunking the count grows
// with the message instead of being fixed: balancing the pipeline-fill term
// (∝ 1/chunks) against the per-step latency term (∝ chunks) puts the
// optimum near √(half-message / reference chunk), clamped to one chunk for
// latency-bound messages and to 4·depth once the pipeline is saturated —
// beyond that, extra steps only add latency.
func BinaryTreeChunks(bytes float64, r int) int {
	depth := bits.Len(uint(r - 1))
	if depth < 1 {
		depth = 1
	}
	c := int(math.Ceil(math.Sqrt(bytes / 2 / binaryTreeChunkRef)))
	if c < 1 {
		c = 1
	}
	if lim := 4 * depth; c > lim {
		c = lim
	}
	return c
}

// BestAllreduceAlgo returns the fastest modeled algorithm and its time for
// the given volume — what a tuned communication library would pick. The
// candidate sweep runs with load accumulation suspended: probing must not
// count the losers' flows against an attached contention footprint.
func (c *Comm) BestAllreduceAlgo(bytes float64) (AllreduceAlgo, float64) {
	saved := c.fab.Accumulate(nil)
	best := RingRSAG
	bestT := math.Inf(1)
	for _, a := range AllreduceAlgos {
		if t := c.AllreduceTimeAlgo(a, bytes); t < bestT {
			best, bestT = a, t
		}
	}
	c.fab.Accumulate(saved)
	return best, bestT
}

package comm

import (
	"math"
	"math/bits"

	"repro/internal/fabric"
)

// AllreduceAlgo selects the allreduce algorithm for the cost model. The
// paper (§II) calls for "the best possible allreduce algorithm"; which one
// that is depends on message size and scale, so the ablation harness sweeps
// these.
type AllreduceAlgo int

const (
	// RingRSAG is the bandwidth-optimal ring reduce-scatter + all-gather
	// the trainer uses by default: 2(R−1) neighbour phases of bytes/R.
	RingRSAG AllreduceAlgo = iota
	// RecursiveHalving is the latency-optimal recursive halving/doubling:
	// 2·log2(R) phases with geometrically shrinking volumes. Wins for small
	// messages where the ring's 2(R−1) latencies dominate.
	RecursiveHalving
	// FlatTree is the naive gather-to-root + broadcast: the root's link
	// carries (R−1)·bytes in each direction. The baseline a framework uses
	// when nobody tuned it.
	FlatTree
)

// String returns the algorithm name.
func (a AllreduceAlgo) String() string {
	switch a {
	case RingRSAG:
		return "ring RS+AG"
	case RecursiveHalving:
		return "recursive halving"
	case FlatTree:
		return "flat tree"
	default:
		return "unknown"
	}
}

// AllreduceAlgos lists the modeled algorithms.
var AllreduceAlgos = []AllreduceAlgo{RingRSAG, RecursiveHalving, FlatTree}

// AllreduceTimeAlgo returns the modeled duration of an allreduce of bytes
// per rank under the chosen algorithm.
func (c *Comm) AllreduceTimeAlgo(algo AllreduceAlgo, bytes float64) float64 {
	r := c.size
	if r == 1 {
		return 0
	}
	switch algo {
	case RecursiveHalving:
		// Reduce-scatter by recursive halving then all-gather by recursive
		// doubling: at step k the partner distance is 2^k and the volume
		// halves; 2·ceil(log2 R) phases in total. For non-powers of two we
		// charge the power-of-two envelope (standard practice).
		steps := bits.Len(uint(r - 1))
		var total float64
		vol := bytes / 2
		for k := 0; k < steps; k++ {
			dist := 1 << k
			c.flows = c.flows[:0]
			for i := 0; i < r; i++ {
				c.flows = append(c.flows, fabric.Flow{Src: i, Dst: (i + dist) % r, Bytes: vol})
			}
			total += 2 * c.fab.PhaseTime(c.Topo, c.flows) // RS phase + mirrored AG phase
			vol /= 2
		}
		return total
	case FlatTree:
		var total float64
		c.flows = c.flows[:0]
		for i := 1; i < r; i++ {
			c.flows = append(c.flows, fabric.Flow{Src: i, Dst: 0, Bytes: bytes})
		}
		total += c.fab.PhaseTime(c.Topo, c.flows)
		c.flows = c.flows[:0]
		for i := 1; i < r; i++ {
			c.flows = append(c.flows, fabric.Flow{Src: 0, Dst: i, Bytes: bytes})
		}
		return total + c.fab.PhaseTime(c.Topo, c.flows)
	default:
		return c.AllreduceTime(bytes)
	}
}

// BestAllreduceAlgo returns the fastest modeled algorithm and its time for
// the given volume — what a tuned communication library would pick.
func (c *Comm) BestAllreduceAlgo(bytes float64) (AllreduceAlgo, float64) {
	best := RingRSAG
	bestT := math.Inf(1)
	for _, a := range AllreduceAlgos {
		if t := c.AllreduceTimeAlgo(a, bytes); t < bestT {
			best, bestT = a, t
		}
	}
	return best, bestT
}

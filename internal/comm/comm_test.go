package comm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

func runComm(ranks int, backend cluster.Backend, body func(c *Comm)) []cluster.Stats {
	topo := fabric.NewPrunedFatTree(ranks, 12.5e9)
	cfg := cluster.Config{
		Ranks: ranks, Topo: topo, Socket: perfmodel.CLX8280,
		Backend: backend, CallOverhead: 1e-9,
	}
	return cluster.Run(cfg, func(r *cluster.Rank) {
		body(New(r, topo))
	})
}

func TestAllreduceSums(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 7} {
		runComm(ranks, cluster.MPIBackend, func(c *Comm) {
			buf := []float32{float32(c.Rank()), 1, float32(2 * c.Rank())}
			h := c.Allreduce("ar", buf, false)
			c.R.Wait(h)
			sumIDs := float32(ranks*(ranks-1)) / 2
			want := []float32{sumIDs, float32(ranks), 2 * sumIDs}
			for i := range want {
				if buf[i] != want[i] {
					t.Errorf("ranks=%d buf[%d]=%g want %g", ranks, i, buf[i], want[i])
				}
			}
		})
	}
}

func TestAllreduceAverage(t *testing.T) {
	runComm(4, cluster.CCLBackend, func(c *Comm) {
		buf := []float32{float32(c.Rank())} // 0,1,2,3 → avg 1.5
		h := c.Allreduce("ar", buf, true)
		c.R.Wait(h)
		if buf[0] != 1.5 {
			t.Errorf("avg allreduce got %g want 1.5", buf[0])
		}
	})
}

func TestAlltoallTransposesBlocks(t *testing.T) {
	const ranks, bl = 4, 3
	runComm(ranks, cluster.MPIBackend, func(c *Comm) {
		send := make([]float32, ranks*bl)
		for j := 0; j < ranks; j++ {
			for i := 0; i < bl; i++ {
				send[j*bl+i] = float32(100*c.Rank() + 10*j + i)
			}
		}
		recv, h := c.Alltoall("a2a", send, bl)
		c.R.Wait(h)
		for src := 0; src < ranks; src++ {
			for i := 0; i < bl; i++ {
				want := float32(100*src + 10*c.Rank() + i)
				if recv[src*bl+i] != want {
					t.Errorf("rank %d recv[%d,%d]=%g want %g", c.Rank(), src, i, recv[src*bl+i], want)
				}
			}
		}
	})
}

func TestScatterDistributes(t *testing.T) {
	const ranks, bl = 5, 2
	runComm(ranks, cluster.MPIBackend, func(c *Comm) {
		var send []float32
		const root = 2
		if c.Rank() == root {
			send = make([]float32, ranks*bl)
			for i := range send {
				send[i] = float32(i)
			}
		}
		blk, h := c.Scatter("sc", root, send, bl)
		c.R.Wait(h)
		for i := 0; i < bl; i++ {
			if blk[i] != float32(c.Rank()*bl+i) {
				t.Errorf("rank %d blk[%d]=%g", c.Rank(), i, blk[i])
			}
		}
	})
}

func TestAllgatherConcatenates(t *testing.T) {
	const ranks = 3
	runComm(ranks, cluster.CCLBackend, func(c *Comm) {
		send := []float32{float32(c.Rank()), float32(c.Rank() * 10)}
		out, h := c.Allgather("ag", send)
		c.R.Wait(h)
		want := []float32{0, 0, 1, 10, 2, 20}
		for i := range want {
			if out[i] != want[i] {
				t.Errorf("rank %d out=%v", c.Rank(), out)
				break
			}
		}
	})
}

func TestBroadcastReplicates(t *testing.T) {
	runComm(4, cluster.MPIBackend, func(c *Comm) {
		buf := make([]float32, 8)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = float32(i) + 0.5
			}
		}
		h := c.Broadcast("bc", 0, buf)
		c.R.Wait(h)
		for i := range buf {
			if buf[i] != float32(i)+0.5 {
				t.Errorf("rank %d buf[%d]=%g", c.Rank(), i, buf[i])
			}
		}
	})
}

func TestAllreduceTimeScaling(t *testing.T) {
	// Ring allreduce volume per rank is 2(R−1)/R·bytes: nearly flat in R.
	// Therefore cost must grow slowly (and never shrink) with rank count —
	// this is why allreduce dominates strong scaling (§VI-D).
	times := map[int]float64{}
	for _, r := range []int{2, 4, 8, 16} {
		topo := fabric.NewPrunedFatTree(r, 12.5e9)
		cfg := cluster.Config{Ranks: r, Topo: topo, Socket: perfmodel.CLX8280, CallOverhead: 1e-9}
		cluster.Run(cfg, func(rk *cluster.Rank) {
			c := New(rk, topo)
			if rk.ID == 0 {
				times[r] = c.AllreduceTime(9.5e6) // small config's 9.5 MB
			}
		})
	}
	if times[4] < times[2]*0.9 {
		t.Fatalf("allreduce time should not shrink with ranks: %v", times)
	}
	if times[16] < times[8] {
		t.Fatalf("allreduce time should grow slowly: %v", times)
	}
	// And it stays within ~2x across 2→16 ranks (steady growth, not linear).
	if times[16] > 3*times[2] {
		t.Fatalf("allreduce grew too fast: %v", times)
	}
}

func TestAlltoallTimeStrongScalingDecreases(t *testing.T) {
	// Strong scaling: total alltoall volume constant ⇒ per-pair block is
	// vol/R², and with R concurrent adapters the time drops as R grows.
	const totalVol = 208e6 // MLPerf strong-scaling volume (Table II)
	times := map[int]float64{}
	for _, r := range []int{2, 4, 8, 16} {
		topo := fabric.NewPrunedFatTree(r, 12.5e9)
		cfg := cluster.Config{Ranks: r, Topo: topo, Socket: perfmodel.CLX8280, CallOverhead: 1e-9}
		cluster.Run(cfg, func(rk *cluster.Rank) {
			if rk.ID == 0 {
				c := New(rk, topo)
				times[r] = c.AlltoallTime(totalVol / float64(r*r))
			}
		})
	}
	if !(times[4] < times[2] && times[8] < times[4] && times[16] < times[8]) {
		t.Fatalf("strong-scaling alltoall must decrease with ranks: %v", times)
	}
	// Per-step improvement follows (R−1)/R²: 1.33× at 2→4, approaching 2×
	// per doubling at larger R.
	if times[2]/times[4] < 1.25 {
		t.Fatalf("2→4 ranks should cut alltoall: %v", times)
	}
	if times[8]/times[16] < 1.6 {
		t.Fatalf("8→16 ranks should approach 2× alltoall reduction: %v", times)
	}
}

func TestTwistedHypercubeAlltoallSaturates(t *testing.T) {
	// Fig. 15: on the 8-socket UPI node, alltoall barely improves from 4 to
	// 8 sockets because 2-hop pairs contend for the same UPI links.
	topo := fabric.NewTwistedHypercube(22e9)
	const totalVol = 1024e6
	times := map[int]float64{}
	for _, r := range []int{4, 8} {
		cfg := cluster.Config{Ranks: r, Topo: topo, Socket: perfmodel.SKX8180, CallOverhead: 1e-9}
		cluster.Run(cfg, func(rk *cluster.Rank) {
			if rk.ID == 0 {
				c := New(rk, topo)
				times[r] = c.AlltoallTime(totalVol / float64(r*r))
			}
		})
	}
	improvement := times[4] / times[8]
	if improvement > 1.8 {
		t.Fatalf("twisted hypercube alltoall improved %.2fx from 4→8 sockets; paper expects ≤1.5x", improvement)
	}
}

func TestScatterRootSerialization(t *testing.T) {
	// A scatter is paced by the root's injection link: its cost must be ≈
	// (R−1)× the single-block transfer, which is what makes ScatterList slow.
	const ranks = 8
	topo := fabric.NewPrunedFatTree(ranks, 12.5e9)
	cfg := cluster.Config{Ranks: ranks, Topo: topo, Socket: perfmodel.CLX8280, CallOverhead: 1e-9}
	cluster.Run(cfg, func(rk *cluster.Rank) {
		if rk.ID != 0 {
			return
		}
		c := New(rk, topo)
		block := 1e7
		scatter := c.ScatterTime(0, block)
		single := fabric.PhaseTime(topo, []fabric.Flow{{Src: 0, Dst: 1, Bytes: block}})
		ratio := scatter / single
		if ratio < float64(ranks-1)*0.8 {
			t.Fatalf("scatter root serialization ratio %.1f, want ≈%d", ratio, ranks-1)
		}
	})
}

func TestCollectivesUnderRandomData(t *testing.T) {
	// Allreduce result must equal the local sum of all rank contributions.
	const ranks, n = 6, 128
	rngs := make([]*rand.Rand, ranks)
	inputs := make([][]float32, ranks)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i + 1)))
		inputs[i] = make([]float32, n)
		for j := range inputs[i] {
			inputs[i][j] = rngs[i].Float32()
		}
	}
	want := make([]float32, n)
	for _, in := range inputs {
		for j, v := range in {
			want[j] += v
		}
	}
	runComm(ranks, cluster.CCLBackend, func(c *Comm) {
		buf := append([]float32(nil), inputs[c.Rank()]...)
		h := c.Allreduce("ar", buf, false)
		c.R.Wait(h)
		for j := range buf {
			if math.Abs(float64(buf[j]-want[j])) > 1e-4 {
				t.Errorf("rank %d mismatch at %d", c.Rank(), j)
				break
			}
		}
	})
}

func TestAlltoallInvolution(t *testing.T) {
	// Property: alltoall is its own inverse up to block transposition —
	// sending the received blocks back returns the original buffer.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := 2 + rng.Intn(5)
		bl := 1 + rng.Intn(4)
		inputs := make([][]float32, ranks)
		for i := range inputs {
			inputs[i] = make([]float32, ranks*bl)
			for j := range inputs[i] {
				inputs[i][j] = rng.Float32()
			}
		}
		okAll := true
		runComm(ranks, cluster.CCLBackend, func(c *Comm) {
			send := append([]float32(nil), inputs[c.Rank()]...)
			recv, h := c.Alltoall("a", send, bl)
			c.R.Wait(h)
			back, h2 := c.Alltoall("b", recv, bl)
			c.R.Wait(h2)
			for j := range back {
				if back[j] != inputs[c.Rank()][j] {
					okAll = false
					return
				}
			}
		})
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceLinearity(t *testing.T) {
	// Property: allreduce(αx) = α·allreduce(x).
	const ranks = 3
	runComm(ranks, cluster.MPIBackend, func(c *Comm) {
		x := []float32{float32(c.Rank() + 1), 2}
		ax := []float32{3 * float32(c.Rank()+1), 6}
		h1 := c.Allreduce("x", x, false)
		c.R.Wait(h1)
		h2 := c.Allreduce("ax", ax, false)
		c.R.Wait(h2)
		for i := range x {
			if math.Abs(float64(ax[i]-3*x[i])) > 1e-4 {
				t.Errorf("linearity violated at %d", i)
			}
		}
	})
}

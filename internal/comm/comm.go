// Package comm implements the communication primitives DLRM's hybrid
// parallelism needs (§II, §IV): allreduce (materialized as reduce-scatter +
// all-gather, the way the paper overlaps the SGD with backward GEMMs),
// alltoall for the model→data parallelism switch at the interaction op, and
// the scatter used by the ScatterList/FusedScatter variants.
//
// Every collective moves real data between the rank goroutines (tests check
// numerical correctness) while its duration is charged from the fabric
// topology: flows are placed on routes and the bottleneck link paces the
// phase. A scatter's root serialization, ring allreduce's 2(R−1)/R volume,
// pairwise alltoall's hop contention on the twisted hypercube — all fall
// out of the flow model rather than hand-tuned constants.
package comm

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

// Comm binds a rank to a topology, providing collectives.
type Comm struct {
	R    *cluster.Rank
	Topo fabric.Topology
	size int
}

// New returns the communicator for rank r over topo.
func New(r *cluster.Rank, topo fabric.Topology) *Comm {
	return &Comm{R: r, Topo: topo, size: r.Eng.Cfg.Ranks}
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.R.ID }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// ringFlows returns the neighbour-exchange flows of one ring phase.
func ringFlows(r int, bytes float64) []fabric.Flow {
	flows := make([]fabric.Flow, r)
	for i := 0; i < r; i++ {
		flows[i] = fabric.Flow{Src: i, Dst: (i + 1) % r, Bytes: bytes}
	}
	return flows
}

// AllreduceTime returns the modeled duration of a ring reduce-scatter +
// all-gather allreduce of bytes per rank: 2(R−1) neighbour phases moving
// bytes/R each.
func (c *Comm) AllreduceTime(bytes float64) float64 {
	r := c.size
	if r == 1 {
		return 0
	}
	per := bytes / float64(r)
	return 2 * float64(r-1) * fabric.PhaseTime(c.Topo, ringFlows(r, per))
}

// ReduceScatterTime and AllgatherTime are each half of the allreduce, used
// by the per-layer overlap schedule of Fig. 2.
func (c *Comm) ReduceScatterTime(bytes float64) float64 { return c.AllreduceTime(bytes) / 2 }

// AllgatherTime returns the modeled all-gather duration (see ReduceScatterTime).
func (c *Comm) AllgatherTime(bytes float64) float64 { return c.AllreduceTime(bytes) / 2 }

// AlltoallTime returns the modeled duration of a pairwise-exchange alltoall
// where every rank sends blockBytes to every other rank: R−1 phases, phase k
// pairing i with (i+k) mod R. Multi-hop partners load shared links, which is
// what keeps the 8-socket twisted hypercube from improving alltoall from 4
// to 8 sockets (Fig. 15).
func (c *Comm) AlltoallTime(blockBytes float64) float64 {
	r := c.size
	if r == 1 || blockBytes <= 0 {
		return 0
	}
	var total float64
	flows := make([]fabric.Flow, r)
	for k := 1; k < r; k++ {
		for i := 0; i < r; i++ {
			flows[i] = fabric.Flow{Src: i, Dst: (i + k) % r, Bytes: blockBytes}
		}
		total += fabric.PhaseTime(c.Topo, flows)
	}
	return total
}

// ScatterTime returns the modeled duration of one scatter: the root sends
// blockBytes to every other rank; the root's injection link is the
// bottleneck, so cost ≈ (R−1)·blockBytes / root bandwidth.
func (c *Comm) ScatterTime(root int, blockBytes float64) float64 {
	r := c.size
	if r == 1 || blockBytes <= 0 {
		return 0
	}
	flows := make([]fabric.Flow, 0, r-1)
	for j := 0; j < r; j++ {
		if j != root {
			flows = append(flows, fabric.Flow{Src: root, Dst: j, Bytes: blockBytes})
		}
	}
	return fabric.PhaseTime(c.Topo, flows)
}

// Allreduce sums buf elementwise across all ranks (in place) and returns a
// handle; the buffer contents are valid after Wait. If avg is true the
// result is divided by the rank count (DDP gradient averaging).
func (c *Comm) Allreduce(label string, buf []float32, avg bool) *cluster.Handle {
	bytes := float64(4 * len(buf))
	res, h := c.R.Collective(label, buf, func(payloads []any, start float64) ([]any, float64) {
		sum := make([]float32, len(buf))
		for _, p := range payloads {
			v := p.([]float32)
			if len(v) != len(sum) {
				panic(fmt.Sprintf("comm: allreduce size mismatch %d vs %d", len(v), len(sum)))
			}
			for i, x := range v {
				sum[i] += x
			}
		}
		if avg {
			inv := 1 / float32(len(payloads))
			for i := range sum {
				sum[i] *= inv
			}
		}
		results := make([]any, len(payloads))
		for i := range results {
			results[i] = sum
		}
		return results, c.AllreduceTime(bytes)
	})
	copy(buf, res.([]float32))
	return h
}

// Alltoall performs the personalized all-to-all: send holds Size()
// contiguous blocks of blockLen float32s (block j destined to rank j); the
// returned slice holds Size() blocks where block j came from rank j. The
// data is valid after Wait.
func (c *Comm) Alltoall(label string, send []float32, blockLen int) ([]float32, *cluster.Handle) {
	r := c.size
	if len(send) != r*blockLen {
		panic(fmt.Sprintf("comm: alltoall send len %d want %d", len(send), r*blockLen))
	}
	blockBytes := float64(4 * blockLen)
	res, h := c.R.Collective(label, send, func(payloads []any, start float64) ([]any, float64) {
		results := make([]any, r)
		for dst := 0; dst < r; dst++ {
			recv := make([]float32, r*blockLen)
			for src := 0; src < r; src++ {
				sb := payloads[src].([]float32)
				copy(recv[src*blockLen:(src+1)*blockLen], sb[dst*blockLen:(dst+1)*blockLen])
			}
			results[dst] = recv
		}
		return results, c.AlltoallTime(blockBytes)
	})
	return res.([]float32), h
}

// Scatter distributes root's send buffer (Size() blocks of blockLen) so
// that rank j receives block j. Non-root ranks pass send=nil. The returned
// slice is valid after Wait.
func (c *Comm) Scatter(label string, root int, send []float32, blockLen int) ([]float32, *cluster.Handle) {
	r := c.size
	if c.Rank() == root && len(send) != r*blockLen {
		panic(fmt.Sprintf("comm: scatter send len %d want %d", len(send), r*blockLen))
	}
	blockBytes := float64(4 * blockLen)
	res, h := c.R.Collective(label, send, func(payloads []any, start float64) ([]any, float64) {
		buf := payloads[root].([]float32)
		results := make([]any, r)
		for j := 0; j < r; j++ {
			blk := make([]float32, blockLen)
			copy(blk, buf[j*blockLen:(j+1)*blockLen])
			results[j] = blk
		}
		return results, c.ScatterTime(root, blockBytes)
	})
	return res.([]float32), h
}

// Allgather concatenates every rank's send block; rank j's data lands at
// block j of the result. Valid after Wait.
func (c *Comm) Allgather(label string, send []float32) ([]float32, *cluster.Handle) {
	r := c.size
	blockLen := len(send)
	res, h := c.R.Collective(label, send, func(payloads []any, start float64) ([]any, float64) {
		out := make([]float32, r*blockLen)
		for j := 0; j < r; j++ {
			sb := payloads[j].([]float32)
			if len(sb) != blockLen {
				panic("comm: allgather irregular block sizes")
			}
			copy(out[j*blockLen:(j+1)*blockLen], sb)
		}
		results := make([]any, r)
		for i := range results {
			results[i] = out
		}
		return results, c.AllgatherTime(float64(4 * r * blockLen))
	})
	return res.([]float32), h
}

// Broadcast copies root's buffer to every rank (in place on buf), valid
// after Wait. Used to replicate initial MLP weights so data-parallel ranks
// start identical.
func (c *Comm) Broadcast(label string, root int, buf []float32) *cluster.Handle {
	res, h := c.R.Collective(label, buf, func(payloads []any, start float64) ([]any, float64) {
		src := payloads[root].([]float32)
		results := make([]any, len(payloads))
		for i := range results {
			results[i] = src
		}
		// Tree broadcast ≈ log2(R) phases of root-link transfers.
		bytes := float64(4 * len(src))
		var dur float64
		for n := 1; n < c.size; n *= 2 {
			dur += fabric.PhaseTime(c.Topo, []fabric.Flow{{Src: 0, Dst: c.size - 1, Bytes: bytes}})
		}
		return results, dur
	})
	if c.Rank() != root {
		copy(buf, res.([]float32))
	}
	return h
}

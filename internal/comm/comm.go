// Package comm implements the communication primitives DLRM's hybrid
// parallelism needs (§II, §IV): allreduce (materialized as reduce-scatter +
// all-gather, the way the paper overlaps the SGD with backward GEMMs),
// alltoall for the model→data parallelism switch at the interaction op, and
// the scatter used by the ScatterList/FusedScatter variants.
//
// Every collective moves real data between the rank goroutines (tests check
// numerical correctness) while its duration is charged from the fabric
// topology: flows are placed on routes and the bottleneck link paces the
// phase. A scatter's root serialization, ring allreduce's 2(R−1)/R volume,
// pairwise alltoall's hop contention on the twisted hypercube — all fall
// out of the flow model rather than hand-tuned constants.
//
// Allocation discipline: collectives follow the same static-body convention
// as par's *Arg dispatch. Each Comm owns a single xchg record reused as the
// payload/args of every collective it issues (at most one is in flight per
// rank — the rendezvous is synchronous), leaders are package-level
// functions, data lands in caller-provided receive buffers, and the flow
// lists behind the time models are per-Comm scratch. After warmup a
// steady-state collective performs zero heap allocations, which is what
// keeps the distributed training iteration allocation-free in timing mode.
package comm

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

// Comm binds a rank to a topology, providing collectives.
type Comm struct {
	R    *cluster.Rank
	Topo fabric.Topology
	size int

	// pay is the reusable payload/args record (see package comment). Its
	// pointer is what travels through the cluster rendezvous, so issuing a
	// collective never boxes a slice or allocates a closure.
	pay xchg
	// flows and fab are the time-model scratch. They are also used by
	// leader functions running on this rank, which is safe: the leader runs
	// while this rank is inside its own Collective call.
	flows []fabric.Flow
	fab   fabric.Scratch
	// opLoads is the per-collective aggregate link footprint the charge
	// helpers collect (via fab's Accumulate hook) under contention-aware
	// pricing; reused across collectives like the rest of the scratch.
	opLoads fabric.LoadSet
}

// chargeBegin arms the contention charge for one collective: under
// Cfg.Contention the fabric scratch starts accumulating every subsequent
// phase's per-link loads into opLoads. Leaders bracket their cost-model
// evaluation with chargeBegin/chargeEnd; with the knob off both are
// no-ops and the isolated time passes through untouched, bit-identically.
func (c *Comm) chargeBegin() {
	if c.R.Eng.Cfg.Contention {
		c.opLoads.Reset()
		c.fab.Accumulate(&c.opLoads)
	}
}

// chargeEnd closes the bracket: iso is the isolated duration the cost
// model just produced (whose phases accumulated into opLoads), start the
// rendezvous start the leader received. It returns the contended duration
// from the engine's epoch — or iso unchanged when contention is off.
func (c *Comm) chargeEnd(start, iso float64) float64 {
	if !c.R.Eng.Cfg.Contention {
		return iso
	}
	c.fab.Accumulate(nil)
	return c.R.Eng.ChargeContended(c.Topo, &c.opLoads, start, iso)
}

// xchg is one rank's contribution to a collective: the data it sends, the
// caller-owned buffer it receives into, and — read from the leader rank's
// record, identical on every rank by SPMD — the collective's parameters.
// Timing-only runs leave the data fields nil/zero; leaders then skip data
// movement and only model time.
type xchg struct {
	c        *Comm
	send     []float32
	recv     []float32
	avg      bool
	bytes    float64 // modeled volume (total or per-block, per collective)
	blockLen int
	root     int
	algo     AllreduceAlgo // allreduce cost-model selector (AllreduceAlgoCost)
}

// New returns the communicator for rank r over topo.
func New(r *cluster.Rank, topo fabric.Topology) *Comm {
	c := &Comm{R: r, Topo: topo, size: r.Eng.Cfg.Ranks}
	c.pay.c = c
	return c
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.R.ID }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// issue resets the parameter fields of the reusable record and hands it to
// the cluster rendezvous.
func (c *Comm) issue(label string, lead cluster.LeaderFunc, p xchg) cluster.Handle {
	return c.issueOn(label, -1, lead, p)
}

// issueOn is issue with an explicit CCL channel hint (see
// cluster.Rank.CollectiveOn); ch < 0 keeps label-hash placement.
func (c *Comm) issueOn(label string, ch int, lead cluster.LeaderFunc, p xchg) cluster.Handle {
	c.pay = p
	return c.R.CollectiveOn(label, ch, &c.pay, &c.pay, lead)
}

// ringFlows fills the scratch flow list with the neighbour exchanges of one
// ring phase.
func (c *Comm) ringFlows(bytes float64) []fabric.Flow {
	c.flows = c.flows[:0]
	for i := 0; i < c.size; i++ {
		c.flows = append(c.flows, fabric.Flow{Src: i, Dst: (i + 1) % c.size, Bytes: bytes})
	}
	return c.flows
}

// AllreduceTime returns the modeled duration of a ring reduce-scatter +
// all-gather allreduce of bytes per rank: 2(R−1) neighbour phases moving
// bytes/R each.
func (c *Comm) AllreduceTime(bytes float64) float64 {
	r := c.size
	if r == 1 {
		return 0
	}
	per := bytes / float64(r)
	return c.fab.PhaseTimeN(c.Topo, c.ringFlows(per), 2*float64(r-1))
}

// ReduceScatterTime and AllgatherTime are each half of the allreduce, used
// by the per-layer overlap schedule of Fig. 2. They place their own R−1
// phases (rather than halving AllreduceTime) so an attached contention
// footprint counts exactly the phases charged; the value is bit-identical.
func (c *Comm) ReduceScatterTime(bytes float64) float64 {
	r := c.size
	if r == 1 {
		return 0
	}
	return c.fab.PhaseTimeN(c.Topo, c.ringFlows(bytes/float64(r)), float64(r-1))
}

// AllgatherTime returns the modeled all-gather duration (see ReduceScatterTime).
func (c *Comm) AllgatherTime(bytes float64) float64 { return c.ReduceScatterTime(bytes) }

// AlltoallTime returns the modeled duration of a pairwise-exchange alltoall
// where every rank sends blockBytes to every other rank: R−1 phases, phase k
// pairing i with (i+k) mod R. Multi-hop partners load shared links, which is
// what keeps the 8-socket twisted hypercube from improving alltoall from 4
// to 8 sockets (Fig. 15).
func (c *Comm) AlltoallTime(blockBytes float64) float64 {
	r := c.size
	if r == 1 || blockBytes <= 0 {
		return 0
	}
	var total float64
	for k := 1; k < r; k++ {
		c.flows = c.flows[:0]
		for i := 0; i < r; i++ {
			c.flows = append(c.flows, fabric.Flow{Src: i, Dst: (i + k) % r, Bytes: blockBytes})
		}
		total += c.fab.PhaseTime(c.Topo, c.flows)
	}
	return total
}

// ScatterTime returns the modeled duration of one scatter: the root sends
// blockBytes to every other rank; the root's injection link is the
// bottleneck, so cost ≈ (R−1)·blockBytes / root bandwidth.
func (c *Comm) ScatterTime(root int, blockBytes float64) float64 {
	r := c.size
	if r == 1 || blockBytes <= 0 {
		return 0
	}
	c.flows = c.flows[:0]
	for j := 0; j < r; j++ {
		if j != root {
			c.flows = append(c.flows, fabric.Flow{Src: root, Dst: j, Bytes: blockBytes})
		}
	}
	return c.fab.PhaseTime(c.Topo, c.flows)
}

// GatherTime returns the modeled duration of a gather: every rank sends
// blockBytes to the root, whose receive link is the bottleneck (the mirror
// image of ScatterTime).
func (c *Comm) GatherTime(root int, blockBytes float64) float64 {
	r := c.size
	if r == 1 || blockBytes <= 0 {
		return 0
	}
	c.flows = c.flows[:0]
	for j := 0; j < r; j++ {
		if j != root {
			c.flows = append(c.flows, fabric.Flow{Src: j, Dst: root, Bytes: blockBytes})
		}
	}
	return c.fab.PhaseTime(c.Topo, c.flows)
}

// Allreduce sums buf elementwise across all ranks (in place) and returns a
// handle; the buffer contents are valid after the call (the handle defers
// only virtual time). If avg is true the result is divided by the rank
// count (DDP gradient averaging).
func (c *Comm) Allreduce(label string, buf []float32, avg bool) cluster.Handle {
	return c.AllreduceCost(label, buf, avg, float64(4*len(buf)))
}

// Alltoall performs the personalized all-to-all: send holds Size()
// contiguous blocks of blockLen float32s (block j destined to rank j); the
// returned slice holds Size() blocks where block j came from rank j. This
// convenience wrapper allocates the receive buffer; steady-state callers
// use AlltoallCost with a reused one.
func (c *Comm) Alltoall(label string, send []float32, blockLen int) ([]float32, cluster.Handle) {
	recv := make([]float32, c.size*blockLen)
	h := c.AlltoallCost(label, send, recv, blockLen, float64(4*blockLen))
	return recv, h
}

// Scatter distributes root's send buffer (Size() blocks of blockLen) so
// that rank j receives block j. Non-root ranks pass send=nil. This
// convenience wrapper allocates the receive buffer; steady-state callers
// use ScatterCost with a reused one.
func (c *Comm) Scatter(label string, root int, send []float32, blockLen int) ([]float32, cluster.Handle) {
	recv := make([]float32, blockLen)
	h := c.ScatterCost(label, root, send, recv, blockLen, float64(4*blockLen))
	return recv, h
}

func allgatherLead(arg any, payloads []any, start float64) float64 {
	a := arg.(*xchg)
	if a.blockLen > 0 {
		bl := a.blockLen
		for j := range payloads {
			if len(payloads[j].(*xchg).send) != bl {
				panic(fmt.Sprintf("comm: allgather irregular block sizes: rank %d sent %d want %d",
					j, len(payloads[j].(*xchg).send), bl))
			}
		}
		for dst := range payloads {
			pd := payloads[dst].(*xchg)
			for j := range payloads {
				copy(pd.recv[j*bl:(j+1)*bl], payloads[j].(*xchg).send)
			}
		}
	}
	a.c.chargeBegin()
	return a.c.chargeEnd(start, a.c.AllgatherTime(float64(4*len(payloads)*a.blockLen)))
}

// AllgatherInto concatenates every rank's send block into recv (length
// Size()·len(send)); rank j's data lands at block j. Valid on return.
func (c *Comm) AllgatherInto(label string, send, recv []float32) cluster.Handle {
	if len(recv) != c.size*len(send) {
		panic(fmt.Sprintf("comm: allgather recv len %d want %d", len(recv), c.size*len(send)))
	}
	return c.issue(label, allgatherLead, xchg{c: c, send: send, recv: recv, blockLen: len(send)})
}

// Allgather is the allocating convenience form of AllgatherInto.
func (c *Comm) Allgather(label string, send []float32) ([]float32, cluster.Handle) {
	recv := make([]float32, c.size*len(send))
	h := c.AllgatherInto(label, send, recv)
	return recv, h
}

func broadcastLead(arg any, payloads []any, start float64) float64 {
	a := arg.(*xchg)
	root := payloads[a.root].(*xchg)
	for i := range payloads {
		if i != a.root {
			copy(payloads[i].(*xchg).send, root.send)
		}
	}
	// Tree broadcast ≈ log2(R) phases of root-link transfers.
	c := a.c
	c.chargeBegin()
	bytes := float64(4 * len(root.send))
	var dur float64
	for n := 1; n < c.size; n *= 2 {
		c.flows = c.flows[:0]
		c.flows = append(c.flows, fabric.Flow{Src: 0, Dst: c.size - 1, Bytes: bytes})
		dur += c.fab.PhaseTime(c.Topo, c.flows)
	}
	return c.chargeEnd(start, dur)
}

// Broadcast copies root's buffer to every rank (in place on buf), valid on
// return. Used to replicate initial MLP weights so data-parallel ranks
// start identical.
func (c *Comm) Broadcast(label string, root int, buf []float32) cluster.Handle {
	return c.issue(label, broadcastLead, xchg{c: c, send: buf, root: root})
}

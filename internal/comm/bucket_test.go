package comm

import (
	"math/rand"
	"testing"
)

// TestPlanBucketsPartition property-tests the plan over random layer-size
// vectors: buckets must exactly partition the layer range in backward order
// (first bucket ends at the last layer, last bucket starts at layer 0, no
// gaps or overlaps), carry the summed volume, and — except for the final
// bucket, which has nothing left to coalesce with — meet the bucket size.
func TestPlanBucketsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		layers := make([]float64, n)
		var total float64
		for i := range layers {
			layers[i] = float64(1 + rng.Intn(1000))
			total += layers[i]
		}
		bucketBytes := float64(1 + rng.Intn(3000))
		p := PlanBuckets(layers, bucketBytes)
		if len(p.Buckets) == 0 {
			t.Fatalf("trial %d: empty plan for %d layers", trial, n)
		}
		if p.Buckets[0].Hi != n-1 {
			t.Fatalf("trial %d: first bucket ends at %d, want last layer %d", trial, p.Buckets[0].Hi, n-1)
		}
		if last := p.Buckets[len(p.Buckets)-1]; last.Lo != 0 {
			t.Fatalf("trial %d: last bucket starts at %d, want 0", trial, last.Lo)
		}
		for i, b := range p.Buckets {
			if b.Lo > b.Hi {
				t.Fatalf("trial %d: bucket %d inverted [%d,%d]", trial, i, b.Lo, b.Hi)
			}
			if i > 0 && p.Buckets[i-1].Lo != b.Hi+1 {
				t.Fatalf("trial %d: bucket %d [%d,%d] not adjacent to previous Lo %d",
					trial, i, b.Lo, b.Hi, p.Buckets[i-1].Lo)
			}
			var want float64
			for l := b.Lo; l <= b.Hi; l++ {
				want += layers[l]
			}
			if b.Bytes != want {
				t.Fatalf("trial %d: bucket %d bytes %g want %g", trial, i, b.Bytes, want)
			}
			if i < len(p.Buckets)-1 && b.Bytes < bucketBytes {
				t.Fatalf("trial %d: non-final bucket %d below threshold: %g < %g",
					trial, i, b.Bytes, bucketBytes)
			}
			if b.Channel != -1 {
				t.Fatalf("trial %d: fresh plan bucket %d channel %d, want -1", trial, i, b.Channel)
			}
		}
		if got := p.TotalBytes(); got != total {
			t.Fatalf("trial %d: TotalBytes %g want %g", trial, got, total)
		}
	}
}

// TestPlanBucketsFlat checks the degenerate forms: a non-positive bucket
// size yields one bucket spanning the stack, and a threshold beyond the
// total volume coalesces everything too.
func TestPlanBucketsFlat(t *testing.T) {
	layers := []float64{10, 20, 30}
	for _, bb := range []float64{0, -1, 1e9} {
		p := PlanBuckets(layers, bb)
		if len(p.Buckets) != 1 {
			t.Fatalf("bucketBytes=%g: %d buckets, want 1", bb, len(p.Buckets))
		}
		if b := p.Buckets[0]; b.Lo != 0 || b.Hi != 2 || b.Bytes != 60 {
			t.Fatalf("bucketBytes=%g: bucket %+v", bb, b)
		}
	}
	if p := PlanBuckets(nil, 10); len(p.Buckets) != 0 {
		t.Fatal("empty layer list must give an empty plan")
	}
	// One bucket per layer when every layer meets the threshold alone.
	p := PlanBuckets([]float64{10, 20, 30}, 5)
	if len(p.Buckets) != 3 || p.Buckets[0].Hi != 2 || p.Buckets[0].Lo != 2 {
		t.Fatalf("per-layer plan wrong: %+v", p.Buckets)
	}
}

// TestAssignChannels checks the round-robin channel pinning and the
// cross-plan rotation handoff.
func TestAssignChannels(t *testing.T) {
	layers := []float64{1, 1, 1, 1, 1}
	top := PlanBuckets(layers, 1) // 5 buckets
	bot := PlanBuckets(layers[:3], 1)
	chans := []int{0, 1, 2}
	next := top.AssignChannels(chans, 0)
	if next != 5 {
		t.Fatalf("rotation offset after top: %d want 5", next)
	}
	for i, b := range top.Buckets {
		if b.Channel != chans[i%3] {
			t.Fatalf("top bucket %d on channel %d want %d", i, b.Channel, chans[i%3])
		}
	}
	bot.AssignChannels(chans, next)
	// Continuing at offset 5 ⇒ channels 2, 0, 1: the bottom MLP's first
	// bucket lands on a different FIFO than the top's last (channel 1).
	want := []int{2, 0, 1}
	for i, b := range bot.Buckets {
		if b.Channel != want[i] {
			t.Fatalf("bot bucket %d on channel %d want %d", i, b.Channel, want[i])
		}
	}
	// Empty set resets to label-hash placement.
	top.AssignChannels(nil, 0)
	for i, b := range top.Buckets {
		if b.Channel != -1 {
			t.Fatalf("bucket %d channel %d after reset, want -1", i, b.Channel)
		}
	}
}

// TestBinaryTreeChunksCalibration pins the dynamic chunk rule: one chunk in
// the latency-bound regime, the 4·depth pipeline cap once bandwidth-bound,
// monotone non-decreasing in between.
func TestBinaryTreeChunksCalibration(t *testing.T) {
	const r = 64
	if c := BinaryTreeChunks(4e3, r); c != 1 {
		t.Errorf("4KB should be a single chunk, got %d", c)
	}
	depth := 6 // bits.Len(63)
	if c := BinaryTreeChunks(1e9, r); c != 4*depth {
		t.Errorf("1GB should hit the 4·depth=%d pipeline cap, got %d", 4*depth, c)
	}
	prev := 0
	for _, bytes := range []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10} {
		c := BinaryTreeChunks(bytes, r)
		if c < prev {
			t.Fatalf("chunk count decreased: %d chunks at %g bytes after %d", c, bytes, prev)
		}
		prev = c
	}
	if c := BinaryTreeChunks(1e6, 2); c < 1 {
		t.Errorf("2-rank chunk count must stay positive, got %d", c)
	}
}

package comm

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

// The *Cost variants of the collectives decouple the modeled volume from the
// actual payload size. The distributed trainer runs in two regimes: the
// functional regime moves real (scaled-down) tensors to validate numerics,
// while the timing regime replays the paper-scale experiment with empty
// payloads and explicit byte counts from Table II. Both regimes issue the
// identical collective sequence, so the timing structure is exercised by the
// functional tests.

// AllreduceCost is Allreduce with an explicit modeled volume in bytes.
func (c *Comm) AllreduceCost(label string, buf []float32, avg bool, bytes float64) *cluster.Handle {
	res, h := c.R.Collective(label, buf, func(payloads []any, start float64) ([]any, float64) {
		sum := make([]float32, len(buf))
		for _, p := range payloads {
			v := p.([]float32)
			if len(v) != len(sum) {
				panic(fmt.Sprintf("comm: allreduce size mismatch %d vs %d", len(v), len(sum)))
			}
			for i, x := range v {
				sum[i] += x
			}
		}
		if avg {
			inv := 1 / float32(len(payloads))
			for i := range sum {
				sum[i] *= inv
			}
		}
		results := make([]any, len(payloads))
		for i := range results {
			results[i] = sum
		}
		return results, c.AllreduceTime(bytes)
	})
	copy(buf, res.([]float32))
	return h
}

// AlltoallCost is Alltoall with an explicit modeled per-block volume.
func (c *Comm) AlltoallCost(label string, send []float32, blockLen int, blockBytes float64) ([]float32, *cluster.Handle) {
	r := c.size
	if len(send) != r*blockLen {
		panic(fmt.Sprintf("comm: alltoall send len %d want %d", len(send), r*blockLen))
	}
	res, h := c.R.Collective(label, send, func(payloads []any, start float64) ([]any, float64) {
		results := make([]any, r)
		for dst := 0; dst < r; dst++ {
			recv := make([]float32, r*blockLen)
			for src := 0; src < r; src++ {
				sb := payloads[src].([]float32)
				copy(recv[src*blockLen:(src+1)*blockLen], sb[dst*blockLen:(dst+1)*blockLen])
			}
			results[dst] = recv
		}
		return results, c.AlltoallTime(blockBytes)
	})
	return res.([]float32), h
}

// ScatterCost is Scatter with an explicit modeled per-block volume.
func (c *Comm) ScatterCost(label string, root int, send []float32, blockLen int, blockBytes float64) ([]float32, *cluster.Handle) {
	r := c.size
	if c.Rank() == root && len(send) != r*blockLen {
		panic(fmt.Sprintf("comm: scatter send len %d want %d", len(send), r*blockLen))
	}
	res, h := c.R.Collective(label, send, func(payloads []any, start float64) ([]any, float64) {
		buf, _ := payloads[root].([]float32)
		results := make([]any, r)
		for j := 0; j < r; j++ {
			blk := make([]float32, blockLen)
			if buf != nil {
				copy(blk, buf[j*blockLen:(j+1)*blockLen])
			}
			results[j] = blk
		}
		return results, c.ScatterTime(root, blockBytes)
	})
	return res.([]float32), h
}

// GatherTime returns the modeled duration of a gather: every rank sends
// blockBytes to the root, whose receive link is the bottleneck (the mirror
// image of ScatterTime).
func (c *Comm) GatherTime(root int, blockBytes float64) float64 {
	r := c.size
	if r == 1 || blockBytes <= 0 {
		return 0
	}
	flows := make([]fabric.Flow, 0, r-1)
	for j := 0; j < r; j++ {
		if j != root {
			flows = append(flows, fabric.Flow{Src: j, Dst: root, Bytes: blockBytes})
		}
	}
	return fabric.PhaseTime(c.Topo, flows)
}

// GatherCost collects every rank's send block at root (concatenated in rank
// order); non-root ranks receive nil. Valid after Wait.
func (c *Comm) GatherCost(label string, root int, send []float32, blockBytes float64) ([]float32, *cluster.Handle) {
	r := c.size
	blockLen := len(send)
	res, h := c.R.Collective(label, send, func(payloads []any, start float64) ([]any, float64) {
		out := make([]float32, r*blockLen)
		for j := 0; j < r; j++ {
			sb := payloads[j].([]float32)
			copy(out[j*blockLen:(j+1)*blockLen], sb)
		}
		results := make([]any, r)
		results[root] = out
		return results, c.GatherTime(root, blockBytes)
	})
	if c.Rank() == root {
		return res.([]float32), h
	}
	return nil, h
}

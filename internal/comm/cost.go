package comm

import (
	"fmt"

	"repro/internal/cluster"
)

// The *Cost variants of the collectives decouple the modeled volume from the
// actual payload size. The distributed trainer runs in two regimes: the
// functional regime moves real (scaled-down) tensors to validate numerics,
// while the timing regime replays the paper-scale experiment with nil
// payloads and explicit byte counts from Table II. Both regimes issue the
// identical collective sequence, so the timing structure is exercised by the
// functional tests — and in the timing regime the leaders skip data movement
// entirely, keeping the steady-state iteration free of heap allocations.

// allreduceMove performs the allreduce data movement: accumulate every
// rank's buffer into rank 0's (so the summation order matches the
// sequential reference), optionally average, and fan the result back out.
// Timing-only collectives (nil send) skip it.
func allreduceMove(a *xchg, payloads []any) {
	if a.send == nil {
		return
	}
	sum := payloads[0].(*xchg).send
	for i := 1; i < len(payloads); i++ {
		v := payloads[i].(*xchg).send
		if len(v) != len(sum) {
			panic(fmt.Sprintf("comm: allreduce size mismatch %d vs %d", len(v), len(sum)))
		}
		for j, x := range v {
			sum[j] += x
		}
	}
	if a.avg {
		inv := 1 / float32(len(payloads))
		for j := range sum {
			sum[j] *= inv
		}
	}
	for i := 1; i < len(payloads); i++ {
		copy(payloads[i].(*xchg).send, sum)
	}
}

func allreduceLead(arg any, payloads []any, start float64) float64 {
	a := arg.(*xchg)
	allreduceMove(a, payloads)
	a.c.chargeBegin()
	return a.c.chargeEnd(start, a.c.AllreduceTime(a.bytes))
}

// allreduceAlgoLead moves data exactly like allreduceLead but charges the
// algorithm selected in the leader's xchg record — the static-leader hook
// that makes every modeled allreduce algorithm a drop-in for the trainer.
func allreduceAlgoLead(arg any, payloads []any, start float64) float64 {
	a := arg.(*xchg)
	allreduceMove(a, payloads)
	a.c.chargeBegin()
	return a.c.chargeEnd(start, a.c.AllreduceTimeAlgo(a.algo, a.bytes))
}

// AllreduceCost is Allreduce with an explicit modeled volume in bytes. The
// reduction accumulates into rank 0's buffer and fans the result back out,
// so the summation order matches the sequential reference.
func (c *Comm) AllreduceCost(label string, buf []float32, avg bool, bytes float64) cluster.Handle {
	return c.issue(label, allreduceLead, xchg{c: c, send: buf, avg: avg, bytes: bytes})
}

// AllreduceAlgoCost is AllreduceCost with an explicit algorithm for the cost
// model and a CCL channel hint (ch < 0 = label-hash placement): identical
// data movement for every algorithm, only the modeled duration differs.
// RingRSAG charges exactly what AllreduceCost does.
func (c *Comm) AllreduceAlgoCost(label string, ch int, buf []float32, avg bool, bytes float64, algo AllreduceAlgo) cluster.Handle {
	return c.issueOn(label, ch, allreduceAlgoLead, xchg{c: c, send: buf, avg: avg, bytes: bytes, algo: algo})
}

func alltoallLead(arg any, payloads []any, start float64) float64 {
	a := arg.(*xchg)
	if a.blockLen > 0 {
		bl := a.blockLen
		for dst := range payloads {
			pd := payloads[dst].(*xchg)
			for src := range payloads {
				ps := payloads[src].(*xchg)
				copy(pd.recv[src*bl:(src+1)*bl], ps.send[dst*bl:(dst+1)*bl])
			}
		}
	}
	a.c.chargeBegin()
	return a.c.chargeEnd(start, a.c.AlltoallTime(a.bytes))
}

// AlltoallCost is the alltoall with an explicit modeled per-block volume and
// a caller-owned receive buffer: send and recv each hold Size() blocks of
// blockLen float32s; after the call recv's block j came from rank j. Timing
// mode passes nil buffers and blockLen 0.
func (c *Comm) AlltoallCost(label string, send, recv []float32, blockLen int, blockBytes float64) cluster.Handle {
	return c.AlltoallCostOn(label, -1, send, recv, blockLen, blockBytes)
}

// AlltoallCostOn is AlltoallCost with a CCL channel hint (ch < 0 keeps
// label-hash placement), so the forward and backward redistributions can
// occupy distinct channels and overlap in flight.
func (c *Comm) AlltoallCostOn(label string, ch int, send, recv []float32, blockLen int, blockBytes float64) cluster.Handle {
	if blockLen > 0 && (len(send) != c.size*blockLen || len(recv) != c.size*blockLen) {
		panic(fmt.Sprintf("comm: alltoall send/recv len %d/%d want %d", len(send), len(recv), c.size*blockLen))
	}
	return c.issueOn(label, ch, alltoallLead, xchg{c: c, send: send, recv: recv, blockLen: blockLen, bytes: blockBytes})
}

func scatterLead(arg any, payloads []any, start float64) float64 {
	a := arg.(*xchg)
	root := payloads[a.root].(*xchg)
	if root.send != nil {
		bl := a.blockLen
		for j := range payloads {
			copy(payloads[j].(*xchg).recv, root.send[j*bl:(j+1)*bl])
		}
	}
	a.c.chargeBegin()
	return a.c.chargeEnd(start, a.c.ScatterTime(a.root, a.bytes))
}

// ScatterCost is the scatter with an explicit modeled per-block volume and a
// caller-owned receive buffer (length blockLen). Non-root ranks pass
// send=nil; timing mode passes nil buffers and blockLen 0.
func (c *Comm) ScatterCost(label string, root int, send, recv []float32, blockLen int, blockBytes float64) cluster.Handle {
	return c.ScatterCostOn(label, -1, root, send, recv, blockLen, blockBytes)
}

// ScatterCostOn is ScatterCost with a CCL channel hint (ch < 0 = label hash).
func (c *Comm) ScatterCostOn(label string, ch, root int, send, recv []float32, blockLen int, blockBytes float64) cluster.Handle {
	if c.Rank() == root && send != nil && len(send) != c.size*blockLen {
		panic(fmt.Sprintf("comm: scatter send len %d want %d", len(send), c.size*blockLen))
	}
	return c.issueOn(label, ch, scatterLead, xchg{c: c, send: send, recv: recv, blockLen: blockLen, root: root, bytes: blockBytes})
}

func gatherLead(arg any, payloads []any, start float64) float64 {
	a := arg.(*xchg)
	root := payloads[a.root].(*xchg)
	if root.recv != nil {
		bl := a.blockLen
		for j := range payloads {
			copy(root.recv[j*bl:(j+1)*bl], payloads[j].(*xchg).send)
		}
	}
	a.c.chargeBegin()
	return a.c.chargeEnd(start, a.c.GatherTime(a.root, a.bytes))
}

// GatherCost collects every rank's send block at root, concatenated in rank
// order into the root's caller-owned recv (length Size()·len(send));
// non-root ranks pass recv=nil. Timing mode passes nil buffers everywhere.
func (c *Comm) GatherCost(label string, root int, send, recv []float32, blockBytes float64) cluster.Handle {
	return c.GatherCostOn(label, -1, root, send, recv, blockBytes)
}

// GatherCostOn is GatherCost with a CCL channel hint (ch < 0 = label hash).
func (c *Comm) GatherCostOn(label string, ch, root int, send, recv []float32, blockBytes float64) cluster.Handle {
	if c.Rank() == root && recv != nil && len(recv) != c.size*len(send) {
		panic(fmt.Sprintf("comm: gather recv len %d want %d", len(recv), c.size*len(send)))
	}
	return c.issueOn(label, ch, gatherLead, xchg{c: c, send: send, recv: recv, blockLen: len(send), root: root, bytes: blockBytes})
}

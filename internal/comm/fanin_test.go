package comm

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

// TestFanInMatchesFlowModel checks the isolated gather time is exactly the
// fabric phase time of the equivalent flow list — FanIn adds placement and
// reuse, not a new cost model.
func TestFanInMatchesFlowModel(t *testing.T) {
	topo := fabric.NewPrunedFatTree(8, 12.5e9)
	f := &FanIn{Topo: topo}
	perSrc := []float64{1 << 20, 0, 2 << 20, 0, 4 << 20, 0, 0, 1 << 20}
	got := f.Time(3, perSrc)
	var flows []fabric.Flow
	for src, b := range perSrc {
		if src != 3 && b > 0 {
			flows = append(flows, fabric.Flow{Src: src, Dst: 3, Bytes: b})
		}
	}
	want := fabric.PhaseTime(topo, flows)
	if got != want {
		t.Fatalf("FanIn.Time = %v, want flow-model %v", got, want)
	}
	// Self and zero entries contribute nothing.
	if d := f.Time(2, []float64{0, 0, 5 << 20, 0, 0, 0, 0, 0}); d != 0 {
		t.Fatalf("self-only gather priced %v, want 0", d)
	}
	if d := f.Time(0, make([]float64, 8)); d != 0 {
		t.Fatalf("empty gather priced %v, want 0", d)
	}
	// More sources through the shared downlink cannot be faster.
	one := f.Time(0, []float64{0, 8 << 20, 0, 0, 0, 0, 0, 0})
	all := f.Time(0, []float64{0, 8 << 20, 8 << 20, 8 << 20, 0, 0, 0, 0})
	if all < one {
		t.Fatalf("gather from 3 sources (%v) faster than from 1 (%v)", all, one)
	}
}

// TestFanInContended checks the contended variant: with contention off (or
// a nil engine) it matches the isolated time; with contention on, a gather
// overlapping an identical in-flight gather on shared links takes longer,
// and the epoch drains — a later, non-overlapping gather is isolated again.
func TestFanInContended(t *testing.T) {
	topo := fabric.NewPrunedFatTree(8, 12.5e9)
	perSrc := []float64{0, 0, 0, 0, 32 << 20, 32 << 20, 32 << 20, 32 << 20}
	f := &FanIn{Topo: topo}
	iso := f.Time(0, perSrc)

	off := &FanIn{Topo: topo}
	if d := off.TimeOn(nil, 0, perSrc, 0); d != iso {
		t.Fatalf("nil engine: %v, want isolated %v", d, iso)
	}
	eng := cluster.NewEngine(cluster.Config{Ranks: 8, Topo: topo})
	if d := off.TimeOn(eng, 0, perSrc, 0); d != iso {
		t.Fatalf("contention off: %v, want isolated %v", d, iso)
	}

	// ChargeContended scales to post-slowdown time and back, so allow one
	// ulp-scale wobble where exact equality crossed that round trip.
	close := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= 1e-12*(1+b)
	}
	on := &FanIn{Topo: topo}
	engOn := cluster.NewEngine(cluster.Config{Ranks: 8, Topo: topo, Contention: true})
	first := on.TimeOn(engOn, 0, perSrc, 0)
	if !close(first, iso) {
		t.Fatalf("first flight on an empty epoch: %v, want isolated %v", first, iso)
	}
	// Destination 1 shares the sources' uplinks and the trunk with the
	// in-flight gather to 0.
	overlapped := on.TimeOn(engOn, 1, perSrc, 0)
	if overlapped <= iso {
		t.Fatalf("overlapping gather %v not slower than isolated %v", overlapped, iso)
	}
	// Far in the future the epoch has drained.
	later := on.TimeOn(engOn, 1, perSrc, 1e9)
	if !close(later, iso) {
		t.Fatalf("post-drain gather %v, want isolated %v", later, iso)
	}
}

// TestFanInZeroAllocs pins the steady-state allocation discipline for both
// variants (the serving event loop prices one fan-in per dispatched batch).
func TestFanInZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	topo := fabric.NewPrunedFatTree(8, 12.5e9)
	perSrc := []float64{1 << 20, 2 << 20, 0, 3 << 20, 0, 1 << 20, 0, 2 << 20}
	f := &FanIn{Topo: topo}
	eng := cluster.NewEngine(cluster.Config{Ranks: 8, Topo: topo, Contention: true})
	var start float64
	probe := func() {
		f.Time(2, perSrc)
		f.TimeOn(eng, 1, perSrc, start)
		start += 1e-3
	}
	probe()
	probe()
	if allocs := testing.AllocsPerRun(20, probe); allocs != 0 {
		t.Fatalf("steady-state fan-in: %v allocs, want 0", allocs)
	}
}

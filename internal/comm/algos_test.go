package comm

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

func commAt(ranks int) (*Comm, func()) {
	return commOn(ranks, fabric.NewPrunedFatTree(ranks, 12.5e9))
}

// commOn is commAt over an explicit topology, for tests that sweep fabrics.
func commOn(ranks int, topo fabric.Topology) (*Comm, func()) {
	done := make(chan *Comm, 1)
	release := make(chan struct{})
	go cluster.Run(cluster.Config{Ranks: ranks, Topo: topo, Socket: perfmodel.CLX8280, CallOverhead: 1e-9},
		func(r *cluster.Rank) {
			if r.ID == 0 {
				done <- New(r, topo)
				<-release
			} else {
				<-release
			}
		})
	return <-done, func() { close(release) }
}

func TestAllreduceAlgoLargeMessageRingWins(t *testing.T) {
	c, release := commAt(16)
	defer release()
	const bytes = 1e9 // 1 GB: bandwidth-dominated
	ring := c.AllreduceTimeAlgo(RingRSAG, bytes)
	rh := c.AllreduceTimeAlgo(RecursiveHalving, bytes)
	flat := c.AllreduceTimeAlgo(FlatTree, bytes)
	if ring > rh*1.05 {
		t.Fatalf("ring (%g) should not lose to recursive halving (%g) at 1 GB", ring, rh)
	}
	if flat < 2*ring {
		t.Fatalf("flat tree (%g) must be far worse than ring (%g): root link serializes", flat, ring)
	}
}

func TestAllreduceAlgoSmallMessageLatencyMatters(t *testing.T) {
	c, release := commAt(32)
	defer release()
	const bytes = 4e3 // 4 KB: latency-dominated
	ring := c.AllreduceTimeAlgo(RingRSAG, bytes)
	rh := c.AllreduceTimeAlgo(RecursiveHalving, bytes)
	// Ring pays 2(R−1)=62 latencies; recursive halving 2·log2(32)=10.
	if rh > ring {
		t.Fatalf("recursive halving (%g) should beat ring (%g) for tiny messages", rh, ring)
	}
}

func TestBestAllreduceAlgoPicksMinimum(t *testing.T) {
	c, release := commAt(16)
	defer release()
	for _, bytes := range []float64{1e3, 1e6, 1e9} {
		algo, best := c.BestAllreduceAlgo(bytes)
		for _, a := range AllreduceAlgos {
			if tt := c.AllreduceTimeAlgo(a, bytes); tt < best-1e-15 {
				t.Fatalf("BestAllreduceAlgo(%g) picked %v (%g) but %v is faster (%g)",
					bytes, algo, best, a, tt)
			}
		}
	}
}

func TestAllreduceAlgoSingleRankFree(t *testing.T) {
	c, release := commAt(1)
	defer release()
	for _, a := range AllreduceAlgos {
		if c.AllreduceTimeAlgo(a, 1e9) != 0 {
			t.Fatalf("%v: single-rank allreduce must be free", a)
		}
	}
}

func TestAllreduceAlgoNames(t *testing.T) {
	for _, a := range AllreduceAlgos {
		if a.String() == "" || a.String() == "unknown" {
			t.Fatalf("algo %d has no name", int(a))
		}
	}
	if AllreduceAlgo(99).String() != "unknown" {
		t.Fatal("unknown algo name")
	}
}

// TestHierarchicalBeatsRingOnFatTree pins the two-level algorithm's win:
// same total volume as the flat ring but 2(G−1)+2(R/G−1) phases instead of
// 2(R−1), so the per-phase latency term halves at G=2 — strictly faster on
// the OPA fat-tree at every volume, with the gap largest when latency
// dominates.
func TestHierarchicalBeatsRingOnFatTree(t *testing.T) {
	c, release := commAt(64)
	defer release()
	for _, bytes := range []float64{4e3, 9.5e6, 1e9} {
		ring := c.AllreduceTimeAlgo(RingRSAG, bytes)
		hier := c.AllreduceTimeAlgo(Hierarchical, bytes)
		if hier >= ring {
			t.Errorf("hierarchical (%g) must strictly beat ring (%g) at %g bytes", hier, ring, bytes)
		}
	}
	small := c.AllreduceTimeAlgo(Hierarchical, 4e3) / c.AllreduceTimeAlgo(RingRSAG, 4e3)
	large := c.AllreduceTimeAlgo(Hierarchical, 1e9) / c.AllreduceTimeAlgo(RingRSAG, 1e9)
	if small >= large {
		t.Errorf("hierarchical advantage should shrink as bandwidth dominates: ratio %.3f (4KB) vs %.3f (1GB)", small, large)
	}
}

// TestHierarchicalFallsBackToRing documents the group rule: with no even
// node grouping (odd or trivial rank counts) the hierarchical algorithm
// degenerates to the plain ring, charging the identical time.
func TestHierarchicalFallsBackToRing(t *testing.T) {
	for _, ranks := range []int{2, 7} {
		c, release := commAt(ranks)
		ring := c.AllreduceTimeAlgo(RingRSAG, 1e6)
		hier := c.AllreduceTimeAlgo(Hierarchical, 1e6)
		release()
		if hier != ring {
			t.Errorf("%dR: hierarchical (%g) must equal ring (%g) without an even grouping", ranks, hier, ring)
		}
	}
	if g := HierGroupSize(2); g != 1 {
		t.Errorf("HierGroupSize(2) = %d, want 1 (a 2-rank ring has nothing to nest)", g)
	}
	if g := HierGroupSize(64); g != 2 {
		t.Errorf("HierGroupSize(64) = %d, want 2 (dual-socket nodes)", g)
	}
}

// TestBinaryTreeTradeoffs pins the NCCL-style double binary tree to its
// regime: depth-many pipelined phases beat the ring's 2(R−1) latencies on
// tiny messages, while the interior fan-in keeps it behind the ring (but
// far ahead of the untuned flat tree) on bandwidth-bound volumes.
func TestBinaryTreeTradeoffs(t *testing.T) {
	c, release := commAt(64)
	defer release()
	const tiny, huge = 4e3, 1e9
	if tree, ring := c.AllreduceTimeAlgo(BinaryTree, tiny), c.AllreduceTimeAlgo(RingRSAG, tiny); tree >= ring {
		t.Errorf("binary tree (%g) must beat ring (%g) on 4KB: 2log2(R) phases vs 2(R-1)", tree, ring)
	}
	tree, ring := c.AllreduceTimeAlgo(BinaryTree, huge), c.AllreduceTimeAlgo(RingRSAG, huge)
	flat := c.AllreduceTimeAlgo(FlatTree, huge)
	if tree <= ring {
		t.Errorf("binary tree (%g) should trail ring (%g) on 1GB: 2-child fan-in caps bandwidth", tree, ring)
	}
	if tree >= flat/4 {
		t.Errorf("binary tree (%g) must be far ahead of the flat tree (%g) on 1GB", tree, flat)
	}
}

// TestAllreduceAlgoPositiveAcrossRanks guards the flow construction of the
// new algorithms over awkward sizes (odd, non-power-of-two, minimum).
func TestAllreduceAlgoPositiveAcrossRanks(t *testing.T) {
	for _, ranks := range []int{2, 3, 5, 6, 26, 64} {
		c, release := commAt(ranks)
		for _, a := range AllreduceAlgos {
			if d := c.AllreduceTimeAlgo(a, 1e6); d <= 0 {
				t.Errorf("%dR %v: non-positive duration %g", ranks, a, d)
			}
		}
		release()
	}
}

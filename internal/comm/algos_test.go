package comm

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

func commAt(ranks int) (*Comm, func()) {
	topo := fabric.NewPrunedFatTree(ranks, 12.5e9)
	done := make(chan *Comm, 1)
	release := make(chan struct{})
	go cluster.Run(cluster.Config{Ranks: ranks, Topo: topo, Socket: perfmodel.CLX8280, CallOverhead: 1e-9},
		func(r *cluster.Rank) {
			if r.ID == 0 {
				done <- New(r, topo)
				<-release
			} else {
				<-release
			}
		})
	return <-done, func() { close(release) }
}

func TestAllreduceAlgoLargeMessageRingWins(t *testing.T) {
	c, release := commAt(16)
	defer release()
	const bytes = 1e9 // 1 GB: bandwidth-dominated
	ring := c.AllreduceTimeAlgo(RingRSAG, bytes)
	rh := c.AllreduceTimeAlgo(RecursiveHalving, bytes)
	flat := c.AllreduceTimeAlgo(FlatTree, bytes)
	if ring > rh*1.05 {
		t.Fatalf("ring (%g) should not lose to recursive halving (%g) at 1 GB", ring, rh)
	}
	if flat < 2*ring {
		t.Fatalf("flat tree (%g) must be far worse than ring (%g): root link serializes", flat, ring)
	}
}

func TestAllreduceAlgoSmallMessageLatencyMatters(t *testing.T) {
	c, release := commAt(32)
	defer release()
	const bytes = 4e3 // 4 KB: latency-dominated
	ring := c.AllreduceTimeAlgo(RingRSAG, bytes)
	rh := c.AllreduceTimeAlgo(RecursiveHalving, bytes)
	// Ring pays 2(R−1)=62 latencies; recursive halving 2·log2(32)=10.
	if rh > ring {
		t.Fatalf("recursive halving (%g) should beat ring (%g) for tiny messages", rh, ring)
	}
}

func TestBestAllreduceAlgoPicksMinimum(t *testing.T) {
	c, release := commAt(16)
	defer release()
	for _, bytes := range []float64{1e3, 1e6, 1e9} {
		algo, best := c.BestAllreduceAlgo(bytes)
		for _, a := range AllreduceAlgos {
			if tt := c.AllreduceTimeAlgo(a, bytes); tt < best-1e-15 {
				t.Fatalf("BestAllreduceAlgo(%g) picked %v (%g) but %v is faster (%g)",
					bytes, algo, best, a, tt)
			}
		}
	}
}

func TestAllreduceAlgoSingleRankFree(t *testing.T) {
	c, release := commAt(1)
	defer release()
	for _, a := range AllreduceAlgos {
		if c.AllreduceTimeAlgo(a, 1e9) != 0 {
			t.Fatalf("%v: single-rank allreduce must be free", a)
		}
	}
}

func TestAllreduceAlgoNames(t *testing.T) {
	if RingRSAG.String() == "" || RecursiveHalving.String() == "" || FlatTree.String() == "" {
		t.Fatal("names missing")
	}
	if AllreduceAlgo(99).String() != "unknown" {
		t.Fatal("unknown algo name")
	}
}

package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimeAccumulates(t *testing.T) {
	p := NewProfile()
	p.Time("a", func() { time.Sleep(2 * time.Millisecond) })
	p.Time("a", func() { time.Sleep(2 * time.Millisecond) })
	if p.Total("a") < 4*time.Millisecond {
		t.Fatalf("total %v too small", p.Total("a"))
	}
	if p.Count("a") != 2 {
		t.Fatalf("count %d want 2", p.Count("a"))
	}
}

func TestAddAndSum(t *testing.T) {
	p := NewProfile()
	p.Add("x", time.Second)
	p.Add("y", 2*time.Second)
	if p.Sum() != 3*time.Second {
		t.Fatalf("sum %v", p.Sum())
	}
	keys := p.Keys()
	if len(keys) != 2 || keys[0] != "x" || keys[1] != "y" {
		t.Fatalf("keys %v", keys)
	}
}

func TestReset(t *testing.T) {
	p := NewProfile()
	p.Add("x", time.Second)
	p.Reset()
	if p.Sum() != 0 || p.Count("x") != 0 {
		t.Fatal("reset failed")
	}
}

func TestStringFormat(t *testing.T) {
	p := NewProfile()
	p.Add("embeddings", 300*time.Millisecond)
	p.Add("mlp", 700*time.Millisecond)
	s := p.String()
	if !strings.Contains(s, "embeddings") || !strings.Contains(s, "70.0%") {
		t.Fatalf("format wrong:\n%s", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	p := NewProfile()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Add("k", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if p.Count("k") != 800 {
		t.Fatalf("count %d want 800", p.Count("k"))
	}
}

// Package trace provides the lightweight phase profiler the end-to-end
// analysis uses — the analogue of the autograd profiling hooks the paper
// added to PyTorch (§IV-C) to attribute time to embeddings, MLPs, and the
// rest of the iteration (Fig. 8).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profile accumulates wall time per phase key. Safe for concurrent use.
type Profile struct {
	mu     sync.Mutex
	totals map[string]time.Duration
	counts map[string]int
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{totals: map[string]time.Duration{}, counts: map[string]int{}}
}

// Time runs fn, charging its wall time to key.
func (p *Profile) Time(key string, fn func()) {
	start := time.Now()
	fn()
	p.Add(key, time.Since(start))
}

// Add charges d to key.
func (p *Profile) Add(key string, d time.Duration) {
	p.mu.Lock()
	p.totals[key] += d
	p.counts[key]++
	p.mu.Unlock()
}

// Total returns the accumulated time for key.
func (p *Profile) Total(key string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals[key]
}

// Count returns how many times key was charged.
func (p *Profile) Count(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[key]
}

// Sum returns the total across all keys.
func (p *Profile) Sum() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s time.Duration
	for _, d := range p.totals {
		s += d
	}
	return s
}

// Reset clears all accumulated time.
func (p *Profile) Reset() {
	p.mu.Lock()
	p.totals = map[string]time.Duration{}
	p.counts = map[string]int{}
	p.mu.Unlock()
}

// Keys returns the phase keys in sorted order.
func (p *Profile) Keys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]string, 0, len(p.totals))
	for k := range p.totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String formats the profile as "key: dur (pct%)" lines.
func (p *Profile) String() string {
	sum := p.Sum()
	var b strings.Builder
	for _, k := range p.Keys() {
		d := p.Total(k)
		pct := 0.0
		if sum > 0 {
			pct = 100 * float64(d) / float64(sum)
		}
		fmt.Fprintf(&b, "%-14s %12v  %5.1f%%\n", k, d.Round(time.Microsecond), pct)
	}
	return b.String()
}

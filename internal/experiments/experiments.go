// Package experiments contains one harness per table and figure of the
// paper's evaluation (§V-§VII). Each Run* function regenerates the rows or
// series of its table/figure: single-socket experiments (Figs. 5, 7, 8, 16)
// execute the real kernels and report wall-clock numbers; multi-socket
// experiments (Figs. 2/6, 9-15) replay the paper-scale runs on the
// simulated cluster and report virtual times. DESIGN.md carries the index;
// EXPERIMENTS.md records paper-versus-measured for every entry.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
)

// Table is a generic result table: a title, column headers, and rows of
// formatted cells. All experiment results render through it.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ms formats seconds as milliseconds with sensible precision.
func ms(sec float64) string {
	v := sec * 1e3
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }

// newRand returns a seeded PRNG (hoisted so experiment files avoid
// repeating the import).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// timeIt returns the average seconds of fn over iters runs (after one
// warm-up).
func timeIt(iters int, fn func()) float64 {
	fn()
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Seconds() / float64(iters)
}

// mustRun executes a figure driver's distributed configuration through the
// validated entry point (core.DistConfig.Run). The drivers construct their
// configs statically, so a Validate error here is a programming bug —
// panic, exactly as the deprecated core.RunDistributed wrapper would.
func mustRun(dc core.DistConfig) *core.DistResult {
	res, err := dc.Run()
	if err != nil {
		panic(err)
	}
	return res
}

package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
	"repro/internal/serve"
)

// ServingFigOpts sizes the serving figure.
type ServingFigOpts struct {
	// Requests per run. A multiple of the largest max-batch keeps the
	// drain tail from skewing short-run throughput.
	Requests int
	// Loads are the offered rates, as multiples of each policy's modeled
	// capacity (Replicas·MaxBatch/ServiceTime(MaxBatch)).
	Loads []float64
}

// DefaultServingFigOpts returns the full-depth figure budget.
func DefaultServingFigOpts() ServingFigOpts {
	return ServingFigOpts{Requests: 30 * 128, Loads: []float64{0.5, 1.5, 3}}
}

// QuickServingFigOpts is the CI smoke budget.
func QuickServingFigOpts() ServingFigOpts {
	return ServingFigOpts{Requests: 6 * 128, Loads: []float64{0.5, 1.5, 3}}
}

// servingScale is one model scale of the sweep.
type servingScale struct {
	cfg      core.Config
	replicas int
}

// servingBase is the scale's serving config before policy and load.
func (s servingScale) base() serve.Config {
	return serve.Config{
		Cfg:      s.cfg,
		Replicas: s.replicas,
		Topo:     fabric.NewPrunedFatTree(s.replicas, 12.5e9),
		Socket:   perfmodel.CLX8280,
		Backend:  cluster.CCLBackend,
	}
}

// RunServing is the online-serving figure: p50/p99 latency vs sustained
// throughput for a batching-policy × offered-load sweep at two model
// scales (MLPerf sharded over 8 sockets, Large over 64 — the Fig. 9
// cluster shapes, forward-only). Three policies bracket the design space:
// max-batch 32 without an SLO (everything is served, however late),
// max-batch 32 under a 2×(wait+service) SLO (the dispatcher sheds what
// cannot make it, so p99 stays bounded at any load), and max-batch 128
// under its own SLO (the larger batch buys strictly more peak throughput).
func RunServing(o ServingFigOpts) *Table {
	t := &Table{
		Title: "Online serving: latency vs throughput under dynamic batching " +
			"(OPA cluster, CCL backend, Poisson arrivals)",
		Headers: []string{"model", "replicas", "policy", "load",
			"offered q/s", "served", "shed", "mean B", "p50 ms", "p99 ms", "served q/s"},
	}
	for _, sc := range []servingScale{{core.MLPerf, 8}, {core.Large, 64}} {
		ws := serve.NewWorkspaces()
		for _, maxBatch := range []int{32, 128} {
			base := sc.base()
			base.Policy = serve.Policy{MaxBatch: maxBatch, MaxWait: 2e-3}
			base.Requests = o.Requests
			base.OfferedQPS = 1 // placeholder for ServiceTime validation
			svc, err := base.ServiceTime(maxBatch)
			if err != nil {
				panic(err)
			}
			capacity := float64(sc.replicas) * float64(maxBatch) / svc
			policies := []serve.Policy{
				{MaxBatch: maxBatch, MaxWait: 2e-3, SLO: 2 * (2e-3 + svc)},
			}
			if maxBatch == 32 {
				// The unbounded policy rides the smaller batch only; one
				// pair is enough to show what the SLO buys.
				policies = append([]serve.Policy{{MaxBatch: maxBatch, MaxWait: 2e-3}}, policies...)
			}
			for _, pol := range policies {
				for _, load := range o.Loads {
					c := base
					c.Policy = pol
					c.OfferedQPS = load * capacity
					c.Workspaces = ws
					res, err := serve.Run(c)
					if err != nil {
						panic(err)
					}
					t.AddRow(sc.cfg.Name, fmt.Sprint(sc.replicas), pol.Name(),
						fmt.Sprintf("%.1fx", load),
						fmt.Sprintf("%.0f", res.OfferedQPS),
						fmt.Sprint(res.Served), fmt.Sprint(res.Shed),
						fmt.Sprintf("%.1f", res.MeanBatch),
						fmt.Sprintf("%.2f", res.P50*1e3),
						fmt.Sprintf("%.2f", res.P99*1e3),
						fmt.Sprintf("%.0f", res.Throughput))
				}
			}
			t.AddNote("%s x%d, B=%d: modeled service %.2f ms/batch, capacity %.0f q/s",
				sc.cfg.Name, sc.replicas, maxBatch, svc*1e3, capacity)
		}
	}
	t.AddNote("loads are multiples of each policy's modeled capacity; SLO policies shed " +
		"what cannot finish in time, so their p99 never exceeds the SLO")
	return t
}

// Fig9ServingCase returns the warmed-up serving benchmark fixture: the
// Fig. 9 cluster shape (Large over 64 sockets, CCL) serving at 1.5x
// capacity under the SLO policy — the workload behind the
// Fig9Strong64RServing entries of the root benchmarks and dlrmbench
// -benchjson. The returned cleanup is a no-op (timing-mode serving holds
// no pools); it keeps the Dist*Case call shape so the bench harnesses
// stay uniform.
func Fig9ServingCase() (serve.Config, func()) {
	c := servingScale{core.Large, 64}.base()
	c.Policy = serve.Policy{MaxBatch: 32, MaxWait: 2e-3}
	c.Requests = 1024
	c.OfferedQPS = 1
	svc, err := c.ServiceTime(c.Policy.MaxBatch)
	if err != nil {
		panic(err)
	}
	c.Policy.SLO = 2 * (c.Policy.MaxWait + svc)
	c.OfferedQPS = 1.5 * float64(c.Replicas) * float64(c.Policy.MaxBatch) / svc
	c.Workspaces = serve.NewWorkspaces()
	if _, err := serve.Run(c); err != nil { // warmup: size the workspace
		panic(err)
	}
	return c, func() {}
}

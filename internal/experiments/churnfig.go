package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// ChurnFigOpts sizes the elastic-training figure.
type ChurnFigOpts struct {
	// Iters is the productive iteration count of every run.
	Iters int
	// Intervals are the checkpoint cadences swept (iterations between
	// shard checkpoints).
	Intervals []int
	// Rates are the per-boundary failure probabilities of the randomized
	// churn schedules.
	Rates []float64
	// Seed drives the counter-based churn schedules (deterministic:
	// the same seed always injects the same failures).
	Seed uint64
	// Fig9Only drops the weak-scaling scale (CI smoke budget).
	Fig9Only bool
}

// DefaultChurnFigOpts returns the full-depth figure budget.
func DefaultChurnFigOpts() ChurnFigOpts {
	return ChurnFigOpts{Iters: 40, Intervals: []int{2, 5, 10}, Rates: []float64{0.05, 0.10}, Seed: 1}
}

// QuickChurnFigOpts is the CI smoke budget.
func QuickChurnFigOpts() ChurnFigOpts {
	return ChurnFigOpts{Iters: 12, Intervals: []int{3}, Rates: []float64{0.05}, Seed: 1, Fig9Only: true}
}

// churnScale is one cluster shape of the sweep — the Fig. 9 strong-scaling
// and Fig. 12 weak-scaling shapes, under churn.
type churnScale struct {
	name    string
	globalN int
}

// mustRunElastic panics on a driver error (the sweeps construct known-valid
// configurations).
func mustRunElastic(ec core.ElasticConfig) *core.ElasticResult {
	res, err := core.RunElastic(ec)
	if err != nil {
		panic(err)
	}
	return res
}

// RunChurn is the elastic-training figure: time-to-recover and
// throughput-under-churn versus checkpoint interval and failure rate at the
// Fig. 9/12 cluster shapes. Three case families per scale: the fault-free
// baseline (with and without the checkpoint cadence, isolating the pure
// checkpointing tax), a single mid-run rank failure per cadence (the
// recovery breakdown: detect + restore + replay), and a randomized churn
// schedule per cadence × rate (survival under repeated failures, down to
// MinRanks).
func RunChurn(o ChurnFigOpts) *Table {
	const ranks = 64
	t := &Table{
		Title: "Elastic training under churn: recovery time and effective throughput " +
			"(Large, 64 ranks, OPA cluster, CCL Alltoall, bucketed+overlapped)",
		Headers: []string{"scale", "case", "ckpt", "fails", "final R",
			"TTR ms", "detect/restore/replay ms", "eff ms/iter", "overhead"},
	}
	scales := []churnScale{{"Fig9 strong (GN=2048)", core.Large.GlobalMB}}
	if !o.Fig9Only {
		scales = append(scales, churnScale{"Fig12 weak (LN=32)", core.Large.LocalMB * ranks})
	}
	for _, sc := range scales {
		pools := cluster.NewPools()
		wss := core.NewDistWorkspaces()
		base := core.DistConfig{
			Cfg:        core.Large,
			Ranks:      ranks,
			GlobalN:    sc.globalN,
			Iters:      o.Iters,
			Variant:    ccl64,
			Topo:       fabric.NewPrunedFatTree(ranks, 12.5e9),
			Socket:     perfmodel.CLX8280,
			Pools:      pools,
			Workspaces: wss,
		}
		addRow := func(label string, every int, res *core.ElasticResult, baseline float64) {
			var ttr, det, rst, rep float64
			for _, r := range res.Recoveries {
				ttr += r.TimeToRecover()
				det += r.DetectSeconds
				rst += r.DrainSeconds + r.RestoreSeconds
				rep += r.ReplaySeconds
			}
			eff := res.EffectiveIterSeconds()
			over := "-"
			if baseline > 0 {
				over = pct(eff/baseline - 1)
			}
			ck := "off"
			if every > 0 {
				ck = fmt.Sprint(every)
			}
			t.AddRow(sc.name, label, ck, fmt.Sprint(len(res.Recoveries)),
				fmt.Sprint(res.FinalRanks), ms(ttr),
				fmt.Sprintf("%s/%s/%s", ms(det), ms(rst), ms(rep)),
				ms(eff), over)
		}

		faultFree := mustRunElastic(core.ElasticConfig{Base: base})
		baseline := faultFree.EffectiveIterSeconds()
		addRow("fault-free", 0, faultFree, baseline)
		for _, every := range o.Intervals {
			res := mustRunElastic(core.ElasticConfig{Base: base, CheckpointEvery: every})
			addRow("fault-free", every, res, baseline)
		}
		for _, every := range o.Intervals {
			res := mustRunElastic(core.ElasticConfig{
				Base: base,
				Plan: &cluster.FaultPlan{Events: []cluster.FaultEvent{
					{Kind: cluster.RankFail, Iter: o.Iters / 2, Rank: 13},
				}},
				CheckpointEvery: every,
			})
			addRow("1 failure", every, res, baseline)
		}
		for _, every := range o.Intervals {
			for _, rate := range o.Rates {
				plan := cluster.RandomChurn(o.Seed, ranks, ranks/2, o.Iters, rate)
				res := mustRunElastic(core.ElasticConfig{
					Base: base, Plan: plan,
					CheckpointEvery: every,
					MinRanks:        ranks / 2,
				})
				addRow(fmt.Sprintf("churn %.0f%%", rate*100), every, res, baseline)
			}
		}
		pools.Close()
	}
	t.AddNote("TTR sums detect (collective timeout, %.1fs) + checkpoint restore + replay over all failures", cluster.DefaultDetectSeconds)
	t.AddNote("overhead is effective ms/iter vs the fault-free, checkpoint-off baseline at the same scale")
	t.AddNote("churn rows inject failures at per-boundary rate from a counter-based schedule (seed %d), floored at %d ranks", o.Seed, ranks/2)
	return t
}

// Fig9ChurnCase returns the warmed-up elastic benchmark fixture behind the
// Fig9Strong64RChurn entries of the root benchmarks and dlrmbench
// -benchjson: the Fig. 9 shape losing rank 13 after iteration 4 of 8, with
// a 3-iteration checkpoint cadence — one full detect/restore/replay cycle
// per measured op. The returned cleanup closes the rank pools.
func Fig9ChurnCase() (core.ElasticConfig, func()) {
	pools := cluster.NewPools()
	ec := core.ElasticConfig{
		Base: core.DistConfig{
			Cfg:        core.Large,
			Ranks:      64,
			GlobalN:    core.Large.GlobalMB,
			Iters:      8,
			Variant:    ccl64,
			Topo:       fabric.NewPrunedFatTree(64, 12.5e9),
			Socket:     perfmodel.CLX8280,
			Pools:      pools,
			Workspaces: core.NewDistWorkspaces(),
		},
		Plan: &cluster.FaultPlan{Events: []cluster.FaultEvent{
			{Kind: cluster.RankFail, Iter: 5, Rank: 13},
		}},
		CheckpointEvery: 3,
	}
	mustRunElastic(ec) // warmup: size workspaces at both shapes, fill slot pools
	return ec, pools.Close
}

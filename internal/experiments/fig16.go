package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/par"
)

// Fig16Opts sizes the mixed-precision convergence experiment. The paper
// trains the MLPerf config on Criteo Terabyte to ROC AUC ≈ 0.8025; here a
// scaled MLPerf-shaped model trains on the synthetic click log, evaluating
// AUC at every 5% of one epoch for each precision.
type Fig16Opts struct {
	Iters       int // training iterations per epoch
	MB          int
	EvalN       int // held-out evaluation batch size
	LR          float32
	Include8LSB bool
	RowScale    float64 // Criteo table scaling
}

// DefaultFig16Opts returns host-sized defaults (~1 minute on one core).
func DefaultFig16Opts() Fig16Opts {
	return Fig16Opts{Iters: 400, MB: 128, EvalN: 4096, LR: 0.5, RowScale: 1.0 / 4096}
}

// fig16Config is the MLPerf-shaped model scaled for host execution: same 26
// Criteo tables (scaled), same 13 dense features, smaller embedding and MLP
// widths.
func fig16Config(rowScale float64) core.Config {
	return core.Config{
		Name:      "MLPerf-mini",
		MB:        128,
		GlobalMB:  128,
		LocalMB:   128,
		Lookups:   1,
		Tables:    26,
		EmbDim:    16,
		Rows:      data.ScaleRows(data.CriteoTBRows, rowScale),
		DenseIn:   13,
		BotHidden: []int{32},
		TopHidden: []int{64, 32},
	}
}

// RunFig16 reproduces the training-accuracy comparison of §VII: ROC AUC at
// every 5% of an epoch for FP32, BF16 Split-SGD, and FP24 (1-8-15), plus
// optionally the insufficient 8-LSB split.
func RunFig16(o Fig16Opts) *Table {
	cfg := fig16Config(o.RowScale)
	ds := data.NewClickLog(1234, cfg.DenseIn, cfg.Rows, cfg.Lookups)
	eval := ds.Batch(1<<20, o.EvalN)
	pool := par.Default

	precisions := []core.Precision{core.FP32, core.BF16Split, core.FP24}
	if o.Include8LSB {
		precisions = append(precisions, core.BF16Split8LSB)
	}

	headers := []string{"% of epoch"}
	for _, p := range precisions {
		headers = append(headers, p.String())
	}
	t := &Table{Title: "Fig. 16: training accuracy (ROC AUC) with mixed-precision BF16", Headers: headers}

	// Train each precision, recording AUC at every 5% checkpoint.
	checkpoints := 20
	aucs := make([][]float64, len(precisions))
	for pi, prec := range precisions {
		m := core.NewModel(cfg, 16, 77)
		tr := core.NewTrainer(m, pool, embedding.RaceFree, o.LR, prec)
		step := o.Iters / checkpoints
		if step == 0 {
			step = 1
		}
		for i := 0; i < o.Iters; i++ {
			tr.Step(ds.Batch(i, o.MB))
			if (i+1)%step == 0 && len(aucs[pi]) < checkpoints {
				aucs[pi] = append(aucs[pi], tr.EvalAUC(eval))
			}
		}
		for len(aucs[pi]) < checkpoints {
			aucs[pi] = append(aucs[pi], tr.EvalAUC(eval))
		}
	}
	for cp := 0; cp < checkpoints; cp++ {
		row := []string{fmt.Sprintf("%d%%", (cp+1)*5)}
		for pi := range precisions {
			row = append(row, fmt.Sprintf("%.4f", aucs[pi][cp]))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper (Criteo TB, full scale): FP32 0.8027, BF16 SplitSGD 0.8027 (<0.001%% gap), FP24 0.7947")
	t.AddNote("expected shape: BF16 SplitSGD tracks FP32; FP24 trails; 8-LSB split is insufficient (§VII)")
	return t
}

// Fig16FinalGap returns the final-AUC difference |FP32 − BF16Split| and
// (FP32 − FP24), used by the regression test that guards the §VII claim.
func Fig16FinalGap(o Fig16Opts) (bf16Gap, fp24Gap float64) {
	cfg := fig16Config(o.RowScale)
	ds := data.NewClickLog(1234, cfg.DenseIn, cfg.Rows, cfg.Lookups)
	eval := ds.Batch(1<<20, o.EvalN)
	pool := par.Default
	final := func(prec core.Precision) float64 {
		m := core.NewModel(cfg, 16, 77)
		tr := core.NewTrainer(m, pool, embedding.RaceFree, o.LR, prec)
		for i := 0; i < o.Iters; i++ {
			tr.Step(ds.Batch(i, o.MB))
		}
		return tr.EvalAUC(eval)
	}
	fp32 := final(core.FP32)
	bf := final(core.BF16Split)
	fp24 := final(core.FP24)
	if bf > fp32 {
		bf16Gap = bf - fp32
	} else {
		bf16Gap = fp32 - bf
	}
	fp24Gap = fp32 - fp24
	return bf16Gap, fp24Gap
}

package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
)

// RunLoaderPipeline contrasts the §VI-D2 data-loader artifact with the
// sharded streaming pipeline on the MLPerf weak-scaling sweep — the
// reproducible version of the Fig. 13 discussion: under the artifact every
// rank reads the full global minibatch, so loader time grows linearly with
// the rank count (≈20 ms at 26 ranks); the per-rank sharded loader reads
// only its sample slice plus its owned tables' index columns, pinning
// loader time at ≈2 local shares regardless of scale.
func RunLoaderPipeline(o ScalingOpts) *Table {
	t := &Table{
		Title: "Data pipeline: §VI-D2 global-read loader artifact vs sharded per-rank streaming loader " +
			"(MLPerf weak scaling, CCL Alltoall)",
		Headers: []string{"config", "ranks", "loader", "ms/iter", "loader ms/iter", "loader share"},
	}
	sw := newDistSweep()
	defer sw.close()
	cfg := core.MLPerf
	v := core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend}
	for _, r := range []int{2, 4, 8, 16, 26} {
		for _, mode := range []core.LoaderMode{core.LoaderGlobalMB, core.LoaderSharded} {
			gn := cfg.LocalMB * r
			res := sw.runDist(cfg, r, gn, v, false, mode, o.Iters)
			loader := res.PrepPerIter["loader"]
			t.AddRow(fmt.Sprintf("%s (LN=%d)", cfg.Name, cfg.LocalMB), fmt.Sprintf("%dR", r),
				mode.String(), ms(res.IterSeconds), ms(loader), pct(loader/res.IterSeconds))
		}
	}
	t.AddNote("artifact: loader grows with GN=LN·R (the paper's MLPerf weak-scaling distortion); " +
		"sharded: flat at ~2 local shares (sample slice + owned-table columns)")
	return t
}

package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// runDistBucket is runDistOpt with the bucketed-allreduce knob. Pass
// core.FlatBuckets for the flat per-MLP buffers; 0 is the library default
// (core.DefaultBucketBytes).
func (sw *distSweep) runDistBucket(cfg core.Config, ranks, globalN int, v core.Variant,
	loader core.LoaderMode, iters int, overlap bool, bucketBytes int) *core.DistResult {
	globalN -= globalN % ranks
	return mustRun(core.DistConfig{
		Cfg:         cfg,
		Ranks:       ranks,
		GlobalN:     globalN,
		Iters:       iters,
		Variant:     v,
		Topo:        fabric.NewPrunedFatTree(ranks, 12.5e9),
		Socket:      perfmodel.CLX8280,
		Loader:      loader,
		Sync:        !overlap,
		BucketBytes: bucketBytes,
		Pools:       sw.pools,
		Workspaces:  sw.wss,
	})
}

// bucketCount returns how many allreduce buckets the config's two MLPs
// produce at the given bucket size — the same plan the trainer builds,
// recomputed from the same per-layer volume model (core.MLPLayerGradBytes)
// for the figure's "buckets" column.
func bucketCount(cfg core.Config, bucketBytes int) (top, bot int) {
	plan := func(sizes []int) int {
		var layers []float64
		for i := 0; i+1 < len(sizes); i++ {
			layers = append(layers, core.MLPLayerGradBytes(sizes, i))
		}
		return len(comm.PlanBuckets(layers, float64(bucketBytes)).Buckets)
	}
	return plan(cfg.TopSizes()), plan(cfg.BotSizes())
}

// RunBucketFig reproduces Fig. 2's bucketed overlap as an ablation: the
// same strong- and weak-scaling runs under flat vs per-layer-bucketed
// gradient allreduce, each synchronous and overlapped. Flat rows report the
// single "allreduce" label's exposed/busy split; bucketed rows report the
// per-MLP "ar-top"/"ar-bot" labels — the headline being that under
// bucketed+overlapped both MLP allreduces all but vanish from the critical
// path, because every bucket is issued the moment its layers' backward
// completes and drains across round-robined CCL channels behind the
// remaining backward compute.
func RunBucketFig(o ScalingOpts) *Table {
	t := &Table{
		Title: "Bucketed gradient allreduce (Fig. 2): flat vs per-layer buckets × sync vs overlapped " +
			"(CCL Alltoall; exposed/busy ms per allreduce label)",
		Headers: []string{"scaling", "config", "ranks", "schedule", "buckets", "ms/iter", "vs flat-sync",
			"ar exp/busy", "ar-top exp/busy", "ar-bot exp/busy"},
	}
	sw := newDistSweep()
	defer sw.close()
	v := core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend}
	modes := []struct {
		name        string
		overlap     bool
		bucketBytes int
	}{
		{"flat sync", false, core.FlatBuckets},
		{"bucketed sync", false, core.DefaultBucketBytes},
		{"flat overlapped", true, core.FlatBuckets},
		{"bucketed overlapped", true, core.DefaultBucketBytes},
	}
	cases := []struct {
		scaling string
		cfg     core.Config
		ranks   []int
		gn      func(cfg core.Config, r int) int
		loader  core.LoaderMode
	}{
		{"strong (Fig9)", core.Large, []int{16, 32, 64},
			func(cfg core.Config, _ int) int { return cfg.GlobalMB }, core.LoaderNone},
		{"weak (Fig12)", core.Large, []int{16, 32, 64},
			func(cfg core.Config, r int) int { return cfg.LocalMB * r }, core.LoaderNone},
		{"weak (Fig12)", core.MLPerf, []int{16, 26},
			func(cfg core.Config, r int) int { return cfg.LocalMB * r }, core.LoaderSharded},
	}
	for _, c := range cases {
		topB, botB := bucketCount(c.cfg, core.DefaultBucketBytes)
		for _, r := range c.ranks {
			var flatSync float64
			for _, m := range modes {
				res := sw.runDistBucket(c.cfg, r, c.gn(c.cfg, r), v, c.loader, o.Iters, m.overlap, m.bucketBytes)
				delta := "-"
				if m.name == "flat sync" {
					flatSync = res.IterSeconds
				} else {
					delta = fmt.Sprintf("%+.1f%%", (res.IterSeconds/flatSync-1)*100)
				}
				buckets := "-"
				if m.bucketBytes > 0 {
					buckets = fmt.Sprintf("%d+%d", topB, botB)
				}
				t.AddRow(c.scaling, c.cfg.Name, fmt.Sprintf("%dR", r), m.name, buckets,
					ms(res.IterSeconds), delta,
					expCell(res, "allreduce"), expCell(res, "ar-top"), expCell(res, "ar-bot"))
			}
		}
	}
	t.AddNote("paper Fig. 2 / §IV-A: each MLP layer's gradient allreduce starts as soon as that layer's " +
		"backward completes, so the reductions hide behind the remaining backward GEMMs")
	t.AddNote("buckets coalesce layers up to %d MiB of gradients (paper-scale volumes); "+
		"under the overlapped schedule consecutive buckets round-robin over CCL channels 0-2", core.DefaultBucketBytes>>20)
	t.AddNote("%s", "flat rows carry the single \"allreduce\" label; bucketed rows split it into ar-top/ar-bot — "+
		"per-bucket waits land on that bucket's slice of the SGD")
	return t
}

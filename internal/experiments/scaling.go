package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// ScalingOpts controls the simulated multi-socket experiments (Figs. 9-14).
type ScalingOpts struct {
	Iters int
}

// DefaultScalingOpts returns the default iteration count.
func DefaultScalingOpts() ScalingOpts { return ScalingOpts{Iters: 3} }

// scalingCase describes one config's scaling sweep.
type scalingCase struct {
	cfg       core.Config
	strongR   []int
	baseRanks int
	loader    core.LoaderMode
}

func scalingCases() []scalingCase {
	return []scalingCase{
		{core.Small, []int{2, 4, 8}, 1, core.LoaderNone},
		{core.Large, []int{4, 8, 16, 32, 64}, 4, core.LoaderNone},
		{core.MLPerf, []int{2, 4, 8, 16, 26}, 1, core.LoaderGlobalMB},
	}
}

// distSweep owns the per-rank pools and workspaces a figure's many
// RunDistributed calls share, so worker goroutines and comm buffers persist
// across the whole sweep (see docs/PERF.md for the ownership rules).
type distSweep struct {
	pools *cluster.Pools
	wss   *core.DistWorkspaces
}

func newDistSweep() *distSweep {
	return &distSweep{pools: cluster.NewPools(), wss: core.NewDistWorkspaces()}
}

// close shuts the sweep's rank pools down; the workspaces are plain buffers
// reclaimed by the GC.
func (sw *distSweep) close() { sw.pools.Close() }

// runDist executes one timing-only distributed run on the OPA cluster.
// The paper figures instrument the synchronous flat-allreduce pipeline
// (§VI-D measures every collective on the critical path), so the schedule
// is pinned there rather than inheriting the bucketed+overlapped default.
func (sw *distSweep) runDist(cfg core.Config, ranks, globalN int, v core.Variant, blocking bool, loader core.LoaderMode, iters int) *core.DistResult {
	globalN -= globalN % ranks // the paper's 26-rank runs shard 16K unevenly; we trim
	return mustRun(core.DistConfig{
		Cfg:         cfg,
		Ranks:       ranks,
		GlobalN:     globalN,
		Iters:       iters,
		Variant:     v,
		Blocking:    blocking,
		Topo:        fabric.NewPrunedFatTree(ranks, 12.5e9),
		Socket:      perfmodel.CLX8280,
		Loader:      loader,
		Sync:        true,
		BucketBytes: core.FlatBuckets,
		Pools:       sw.pools,
		Workspaces:  sw.wss,
	})
}

// baselineSeconds returns each config's baseline iteration time: optimized
// single socket for Small/MLPerf, the 4-rank CCL-Alltoall run for Large
// (which cannot fit fewer sockets), as in §VI-D.
func baselineSeconds(sw *distSweep, c scalingCase, globalN func(r int) int, iters int) float64 {
	v := core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend}
	return sw.runDist(c.cfg, c.baseRanks, globalN(c.baseRanks), v, false, c.loader, iters).IterSeconds
}

// RunFig9 reproduces the strong-scaling speed-up and efficiency chart: all
// four communication variants per config and rank count, normalized to the
// optimized baseline.
func RunFig9(o ScalingOpts) *Table {
	t := &Table{
		Title:   "Fig. 9: DLRM strong scaling (speed-up and efficiency vs optimized baseline)",
		Headers: []string{"config", "ranks", "variant", "ms/iter", "speed-up", "efficiency"},
	}
	sw := newDistSweep()
	defer sw.close()
	for _, c := range scalingCases() {
		gn := func(int) int { return c.cfg.GlobalMB }
		base := baselineSeconds(sw, c, gn, o.Iters)
		for _, r := range c.strongR {
			for _, v := range core.Variants {
				res := sw.runDist(c.cfg, r, c.cfg.GlobalMB, v, false, c.loader, o.Iters)
				speedup := base / res.IterSeconds
				eff := speedup * float64(c.baseRanks) / float64(r)
				t.AddRow(fmt.Sprintf("%s (GN=%d)", c.cfg.Name, c.cfg.GlobalMB),
					fmt.Sprintf("%dR", r), v.Name(), ms(res.IterSeconds),
					fmt.Sprintf("%.2fx", speedup), pct(eff))
			}
		}
	}
	t.AddNote("paper: MLPerf up to 8.5x at 26 sockets (33%%); Small/Large 5-6x per 8x sockets (60-71%%)")
	return t
}

// RunFig12 reproduces the weak-scaling speed-up and efficiency chart
// (GlobalN = LocalMB × ranks).
func RunFig12(o ScalingOpts) *Table {
	t := &Table{
		Title:   "Fig. 12: DLRM weak scaling (speed-up and efficiency vs optimized baseline)",
		Headers: []string{"config", "ranks", "variant", "ms/iter", "speed-up", "efficiency"},
	}
	sw := newDistSweep()
	defer sw.close()
	for _, c := range scalingCases() {
		gn := func(r int) int { return c.cfg.LocalMB * r }
		base := baselineSeconds(sw, c, gn, o.Iters)
		for _, r := range c.strongR {
			for _, v := range core.Variants {
				res := sw.runDist(c.cfg, r, gn(r), v, false, c.loader, o.Iters)
				eff := base / res.IterSeconds
				speedup := eff * float64(r) / float64(c.baseRanks)
				t.AddRow(fmt.Sprintf("%s (LN=%d)", c.cfg.Name, c.cfg.LocalMB),
					fmt.Sprintf("%dR", r), v.Name(), ms(res.IterSeconds),
					fmt.Sprintf("%.2fx", speedup), pct(eff))
			}
		}
	}
	t.AddNote("paper: MLPerf 17x at 26 sockets (65%%); Large 13.5x per 16x sockets (84%%); Small 6.4x on 8 (80%%)")
	return t
}

// breakdown builds the compute/communication split tables of Figs. 10/13.
func breakdown(title string, weak bool, o ScalingOpts, cases []scalingCase) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"config", "mode", "backend", "ranks", "compute (ms)", "comm exposed (ms)"},
	}
	sw := newDistSweep()
	defer sw.close()
	for _, c := range cases {
		for _, blocking := range []bool{false, true} {
			mode := "overlapping"
			if blocking {
				mode = "blocking"
			}
			for _, backend := range []cluster.Backend{cluster.MPIBackend, cluster.CCLBackend} {
				for _, r := range c.strongR {
					gn := c.cfg.GlobalMB
					if weak {
						gn = c.cfg.LocalMB * r
					}
					v := core.Variant{Strategy: core.Alltoall, Backend: backend}
					res := sw.runDist(c.cfg, r, gn, v, blocking, c.loader, o.Iters)
					compute := res.ComputePerIter
					for _, p := range res.PrepPerIter {
						compute += p
					}
					t.AddRow(c.cfg.Name, mode, backend.String(), fmt.Sprintf("%dR", r),
						ms(compute), ms(res.TotalCommPerIter()))
				}
			}
		}
	}
	return t
}

// RunFig10 reproduces the strong-scaling compute/communication breakdown
// for the Large and MLPerf configs, MPI vs CCL, overlap vs blocking.
func RunFig10(o ScalingOpts) *Table {
	cs := scalingCases()
	t := breakdown("Fig. 10: compute/communication break-up, strong scaling", false, o, cs[1:])
	t.AddNote("paper: MPI overlap inflates compute (progress-thread interference); CCL does not")
	return t
}

// RunFig13 reproduces the weak-scaling compute/communication breakdown,
// including the data-loader growth artifact for MLPerf.
func RunFig13(o ScalingOpts) *Table {
	cs := scalingCases()
	t := breakdown("Fig. 13: compute/communication break-up, weak scaling", true, o, cs[1:])
	t.AddNote("paper: MLPerf compute grows with rank count — the loader reads the full global minibatch per rank")
	return t
}

// commBreakdown builds the communication-detail tables of Figs. 11/14.
func commBreakdown(title string, weak bool, o ScalingOpts, cases []scalingCase) *Table {
	t := &Table{
		Title: title,
		Headers: []string{"config", "mode", "backend", "ranks",
			"a2a-framework", "ar-framework", "a2a-wait", "ar-wait"},
	}
	sw := newDistSweep()
	defer sw.close()
	for _, c := range cases {
		for _, blocking := range []bool{false, true} {
			mode := "overlapping"
			if blocking {
				mode = "blocking"
			}
			for _, backend := range []cluster.Backend{cluster.MPIBackend, cluster.CCLBackend} {
				for _, r := range c.strongR {
					gn := c.cfg.GlobalMB
					if weak {
						gn = c.cfg.LocalMB * r
					}
					v := core.Variant{Strategy: core.Alltoall, Backend: backend}
					res := sw.runDist(c.cfg, r, gn, v, blocking, c.loader, o.Iters)
					t.AddRow(c.cfg.Name, mode, backend.String(), fmt.Sprintf("%dR", r),
						ms(res.PrepPerIter["alltoall"]), ms(res.PrepPerIter["allreduce"]),
						ms(res.WaitPerIter["alltoall"]), ms(res.WaitPerIter["allreduce"]))
				}
			}
		}
	}
	return t
}

// RunFig11 reproduces the strong-scaling communication-time break-up
// (framework pre/post-processing vs actual wait, per collective).
func RunFig11(o ScalingOpts) *Table {
	cs := scalingCases()
	t := commBreakdown("Fig. 11: communication time break-up, strong scaling", false, o, cs[1:])
	t.AddNote("paper: under MPI+overlap, allreduce completion surfaces at the alltoall wait (in-order queue)")
	return t
}

// RunFig14 reproduces the weak-scaling communication-time break-up.
func RunFig14(o ScalingOpts) *Table {
	cs := scalingCases()
	return commBreakdown("Fig. 14: communication time break-up, weak scaling", true, o, cs[1:])
}

// RunFig15 reproduces the 8-socket shared-memory strong scaling: per config
// and socket count, the compute / allreduce / alltoall composition over the
// UPI twisted hypercube.
func RunFig15(o ScalingOpts) *Table {
	t := &Table{
		Title:   "Fig. 15: strong scaling on the 8-socket shared-memory system (UPI twisted hypercube)",
		Headers: []string{"config", "ranks", "compute (ms)", "allreduce (ms)", "alltoall (ms)"},
	}
	topo := fabric.NewTwistedHypercube(22e9)
	sw := newDistSweep()
	defer sw.close()
	cases := []struct {
		cfg   core.Config
		ranks []int
	}{
		{core.Small, []int{1, 2, 4, 8}},
		{core.Large, []int{4, 8}}, // needs ≥4 sockets for capacity
		{core.MLPerf, []int{1, 2, 4, 8}},
	}
	for _, c := range cases {
		for _, r := range c.ranks {
			res := mustRun(core.DistConfig{
				Cfg:         c.cfg,
				Ranks:       r,
				GlobalN:     c.cfg.GlobalMB - c.cfg.GlobalMB%r,
				Iters:       o.Iters,
				Variant:     core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend},
				Blocking:    true, // expose components for the stacked bars
				Topo:        topo,
				Socket:      perfmodel.SKX8180,
				Sync:        true, // instrumented flat-sync schedule, as in the paper
				BucketBytes: core.FlatBuckets,
				Pools:       sw.pools,
				Workspaces:  sw.wss,
			})
			compute := res.ComputePerIter
			for _, p := range res.PrepPerIter {
				compute += p
			}
			t.AddRow(fmt.Sprintf("%s (GN=%d)", c.cfg.Name, c.cfg.GlobalMB), fmt.Sprintf("%dR", r),
				ms(compute), ms(res.WaitPerIter["allreduce"]), ms(res.WaitPerIter["alltoall"]))
		}
	}
	t.AddNote("paper: alltoall does not improve from 4 to 8 sockets — 2-hop pairs contend on UPI links")
	return t
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 7)
	s := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTable1HasAllParameters(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 9 {
		t.Fatalf("Table I rows = %d, want 9", len(tab.Rows))
	}
	s := tab.String()
	for _, want := range []string{"2048", "16384", "MLPerf", "[13 512 256 128]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestTable2MatchesPaperValues(t *testing.T) {
	tab := Table2()
	s := tab.String()
	// Spot values computed from the configs (close to the paper's).
	for _, want := range []string{"Mem capacity", "Maximum ranks", "26", "64", "1024"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table II missing %q:\n%s", want, s)
		}
	}
}

func cell(tab *Table, row, col int) string { return tab.Rows[row][col] }

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestFig5ShapeBlockedBeatsMKL(t *testing.T) {
	tab := RunFig5(Fig5Opts{N: 64, Sizes: []int{128, 256}, Repeats: 2})
	if len(tab.Rows) != 6 {
		t.Fatalf("Fig5 rows = %d want 6", len(tab.Rows))
	}
	// At the largest size, the blocked kernel must not lose to the
	// MKL-style large GEMM on any pass (the paper's ~18% advantage).
	wins := 0
	for _, row := range tab.Rows[3:] {
		blocked := parseF(t, row[2])
		mkl := parseF(t, row[4])
		if blocked >= mkl*0.9 {
			wins++
		}
	}
	if wins < 2 {
		t.Fatalf("blocked kernel lost to MKL-style on %d/3 large passes:\n%s", 3-wins, tab)
	}
}

func TestFig6CommunicationHidden(t *testing.T) {
	tab := RunFig6(DefaultFig6Opts())
	if len(tab.Rows) != 2 {
		t.Fatal("Fig6 must have BWD and UPD rows")
	}
	// The paper's point: communication is fully hidden behind the GEMMs.
	bwdCompute := parseF(t, cell(tab, 0, 1))
	bwdBusy := parseF(t, cell(tab, 0, 2))
	bwdExposed := parseF(t, cell(tab, 0, 3))
	if bwdBusy <= 0 {
		t.Fatal("no communication happened")
	}
	if bwdExposed > 0.05*bwdCompute {
		t.Fatalf("BWD communication not hidden: %v exposed of %v compute", bwdExposed, bwdCompute)
	}
	// Compute must dominate the communication (that is why hiding works).
	if bwdCompute < bwdBusy {
		t.Fatalf("BWD GEMMs (%v) should outweigh comm (%v)", bwdCompute, bwdBusy)
	}
}

func TestFig78ShapeReferenceSlowest(t *testing.T) {
	tab := RunFig78(Fig7Opts{Iters: 1, MB: 64, RowScale: 1.0 / 8})
	f7 := tab.Fig7
	if len(f7.Rows) != 8 {
		t.Fatalf("Fig7 rows = %d want 8", len(f7.Rows))
	}
	// Within each config, the Reference *embedding phase* (dense-gradient
	// update, cost ∝ table rows) must be far slower than every optimized
	// strategy (cost ∝ lookups), and end-to-end Reference must be slowest.
	for _, base := range []int{0, 4} {
		refEnd := parseF(t, cell(f7, base, 2))
		refEmb := parseF(t, cell(f7, base, 4))
		for i := base + 1; i < base+4; i++ {
			optEnd := parseF(t, cell(f7, i, 2))
			optEmb := parseF(t, cell(f7, i, 4))
			if refEmb < 3*optEmb {
				t.Fatalf("Reference emb (%.2fms) should be ≫ %s emb (%.2fms)\n%s",
					refEmb, cell(f7, i, 1), optEmb, f7)
			}
			if refEnd < optEnd*0.9 { // 10% wall-clock noise allowance
				t.Fatalf("Reference end-to-end (%.2fms) should exceed %s (%.2fms)",
					refEnd, cell(f7, i, 1), optEnd)
			}
		}
	}
	// Fig. 8 breakdown: Reference runs are embedding-dominated (the 99%
	// story); optimized runs are not.
	f8 := tab.Fig8
	refEmb := parseF(t, cell(f8, 0, 2))
	if refEmb < 35 { // pure-Go MLP inflates the non-embedding share; 35% is the noise floor here
		t.Fatalf("Reference should be embedding-heavy, got %v%%\n%s", refEmb, f8)
	}
	optEmb := parseF(t, cell(f8, 3, 2)) // Small / RaceFree
	if optEmb >= refEmb/2 {
		t.Fatalf("optimized embedding share %v%% should drop far below reference %v%%", optEmb, refEmb)
	}
}

func TestFig9ShapeSpeedupsAndOrdering(t *testing.T) {
	tab := RunFig9(ScalingOpts{Iters: 2})
	// Expect rows for all (config, ranks, variant) combos: 3+5+5=13 rank
	// points × 4 variants.
	if len(tab.Rows) != 13*4 {
		t.Fatalf("Fig9 rows = %d want 52", len(tab.Rows))
	}
	// For every rank point: Alltoall ≥ scatter variants, and CCL within 10%
	// of MPI (at low rank counts CCL's 4 reserved cores can cost more than
	// its communication savings; the win shows up at scale).
	for i := 0; i < len(tab.Rows); i += 4 {
		sl := parseF(t, cell(tab, i, 4))
		a2a := parseF(t, cell(tab, i+2, 4))
		ccl := parseF(t, cell(tab, i+3, 4))
		if ccl < a2a*0.9 {
			t.Fatalf("row %d: CCL Alltoall (%.2f) must be near MPI Alltoall (%.2f)\n%s", i, ccl, a2a, tab)
		}
		if a2a < sl*0.99 {
			t.Fatalf("row %d: Alltoall (%.2f) must beat ScatterList (%.2f)", i, a2a, sl)
		}
	}
	// At the largest rank count of the Large config, CCL must win outright.
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "Large") && row[1] == "64R" {
			if row[2] == "CCL Alltoall" {
				ccl := parseF(t, row[4])
				for _, r2 := range tab.Rows {
					if strings.HasPrefix(r2[0], "Large") && r2[1] == "64R" && r2[2] == "MPI Alltoall" {
						if ccl < parseF(t, r2[4]) {
							t.Fatalf("Large 64R: CCL (%.2f) must beat MPI (%.2f)", ccl, parseF(t, r2[4]))
						}
					}
				}
			}
		}
	}
	// Small config: speedup grows with ranks for the best variant.
	s2 := parseF(t, cell(tab, 3, 4))
	s8 := parseF(t, cell(tab, 11, 4))
	if s8 <= s2 {
		t.Fatalf("Small: 8R speedup %.2f must exceed 2R %.2f", s8, s2)
	}
}

func TestFig12WeakBeatsStrongEfficiency(t *testing.T) {
	weak := RunFig12(ScalingOpts{Iters: 2})
	strong := RunFig9(ScalingOpts{Iters: 2})
	// Compare the Large config's best variant at the top rank count:
	// weak-scaling efficiency must exceed strong-scaling efficiency.
	var weakEff, strongEff float64
	for _, tab := range []*Table{weak, strong} {
		for _, row := range tab.Rows {
			if strings.HasPrefix(row[0], "Large") && row[1] == "64R" && row[2] == "CCL Alltoall" {
				v := parseF(t, row[5])
				if tab == weak {
					weakEff = v
				} else {
					strongEff = v
				}
			}
		}
	}
	if weakEff == 0 || strongEff == 0 {
		t.Fatal("missing Large 64R rows")
	}
	if weakEff <= strongEff {
		t.Fatalf("weak efficiency %v%% must exceed strong %v%%", weakEff, strongEff)
	}
}

func TestFig11MPIInOrderArtifact(t *testing.T) {
	tab := RunFig11(ScalingOpts{Iters: 2})
	// Find Large overlapping rows at 16R for both backends and compare
	// alltoall waits: MPI (in-order) > CCL.
	var mpiWait, cclWait float64
	for _, row := range tab.Rows {
		if row[0] == "Large" && row[1] == "overlapping" && row[3] == "16R" {
			if row[2] == "MPI Backend" {
				mpiWait = parseF(t, row[4+2])
			} else {
				cclWait = parseF(t, row[4+2])
			}
		}
	}
	if mpiWait <= cclWait {
		t.Fatalf("MPI alltoall wait (%.2f) must exceed CCL (%.2f)\n%s", mpiWait, cclWait, tab)
	}
}

func TestFig15TwistedHypercubeAlltoallSaturation(t *testing.T) {
	tab := RunFig15(ScalingOpts{Iters: 2})
	// MLPerf rows: alltoall must NOT improve much from 4R to 8R.
	var a4, a8 float64
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "MLPerf") {
			if row[1] == "4R" {
				a4 = parseF(t, row[4])
			}
			if row[1] == "8R" {
				a8 = parseF(t, row[4])
			}
		}
	}
	if a4 == 0 || a8 == 0 {
		t.Fatalf("missing MLPerf alltoall rows:\n%s", tab)
	}
	if a4/a8 > 1.6 {
		t.Fatalf("alltoall improved %.2fx from 4R to 8R; twisted hypercube should limit to ≲1.5x", a4/a8)
	}
}

func TestFig16ShapeQuick(t *testing.T) {
	// Quick convergence check: BF16 Split-SGD must track FP32 closely and
	// FP24 must not surpass FP32 by the end.
	o := Fig16Opts{Iters: 120, MB: 128, EvalN: 4096, LR: 0.5, RowScale: 1.0 / 8192}
	bf16Gap, fp24Gap := Fig16FinalGap(o)
	if bf16Gap > 0.02 {
		t.Fatalf("BF16 SplitSGD gap vs FP32 = %.4f, want < 0.02", bf16Gap)
	}
	if fp24Gap < -0.02 {
		t.Fatalf("FP24 unexpectedly beats FP32 by %.4f", -fp24Gap)
	}
	tab := RunFig16(Fig16Opts{Iters: 60, MB: 128, EvalN: 2048, LR: 0.5, RowScale: 1.0 / 8192})
	if len(tab.Rows) != 20 {
		t.Fatalf("Fig16 rows = %d want 20 (5%% steps)", len(tab.Rows))
	}
}

func TestAblationAllreduceShape(t *testing.T) {
	tab := AblationAllreduce()
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d want 9", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ring := parseF(t, row[2])
		flat := parseF(t, row[4])
		hier := parseF(t, row[5])
		// The untuned flat tree must never win.
		if row[7] == "flat tree" {
			t.Fatalf("flat tree won a regime: %v", row)
		}
		if flat < ring*0.99 && row[0] != "4 KB (latency-bound)" {
			t.Fatalf("flat tree beat ring on a bandwidth volume: %v", row)
		}
		// The two-level algorithm never loses to the flat ring at even rank
		// counts (same volume, fewer phases).
		if hier > ring*1.001 {
			t.Fatalf("hierarchical lost to ring: %v", row)
		}
	}
	// Latency-bound regime: recursive halving wins at 64 ranks.
	last := tab.Rows[2]
	if last[0] != "4 KB (latency-bound)" || last[1] != "64R" {
		t.Fatalf("unexpected row order: %v", last)
	}
	if last[7] != "recursive halving" {
		t.Fatalf("recursive halving should win tiny messages at 64R, got %q", last[7])
	}
}

func TestAblationCommCoresTradeoff(t *testing.T) {
	tab := AblationCommCores(16, 2)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// More comm cores must monotonically raise compute time (fewer GEMM
	// cores)...
	c1 := parseF(t, tab.Rows[0][1])
	c12 := parseF(t, tab.Rows[4][1])
	if c12 <= c1 {
		t.Fatal("compute must grow as cores are taken away")
	}
	// ...while exposed communication must not increase.
	e1 := parseF(t, tab.Rows[0][2])
	e12 := parseF(t, tab.Rows[4][2])
	if e12 > e1*1.05 {
		t.Fatal("exposed comm should not grow with more comm cores")
	}
}

func TestAblationCapacityTable(t *testing.T) {
	tab := AblationCapacity()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][3] != "32" || tab.Rows[1][3] != "32" || tab.Rows[2][3] != "48" {
		t.Fatalf("bit accounting wrong: %v", tab.Rows)
	}
}

func TestAblationFusedEmbeddingFaster(t *testing.T) {
	tab := AblationFusedEmbedding(2)
	twoStep := parseF(t, tab.Rows[0][1])
	fused := parseF(t, tab.Rows[1][1])
	if fused > twoStep {
		t.Fatalf("fused (%.2fms) should not lose to two-step (%.2fms)", fused, twoStep)
	}
}

// TestBucketFigShape smoke-tests the bucketed-allreduce ablation: four
// schedules per (case, rank) row group, bucket counts only on bucketed
// rows, per-MLP allreduce labels only on bucketed rows, and — the figure's
// point — the bucketed overlapped schedule beating flat sync at Large 64R.
func TestBucketFigShape(t *testing.T) {
	tab := RunBucketFig(ScalingOpts{Iters: 2})
	if len(tab.Rows)%4 != 0 || len(tab.Rows) == 0 {
		t.Fatalf("expected 4 schedule rows per case, got %d rows", len(tab.Rows))
	}
	var flatSync, bucketedOvl float64
	for _, row := range tab.Rows {
		schedule, buckets := row[3], row[4]
		switch schedule {
		case "flat sync", "flat overlapped":
			if buckets != "-" {
				t.Fatalf("flat row carries bucket count %q", buckets)
			}
			if row[8] != "-" || row[9] != "-" {
				t.Fatalf("flat row carries ar-top/ar-bot cells: %v", row)
			}
		case "bucketed sync", "bucketed overlapped":
			if buckets == "-" {
				t.Fatalf("bucketed row missing bucket count: %v", row)
			}
			if row[7] != "-" {
				t.Fatalf("bucketed row carries the flat allreduce cell: %v", row)
			}
			if row[8] == "-" || row[9] == "-" {
				t.Fatalf("bucketed row missing ar-top/ar-bot cells: %v", row)
			}
		default:
			t.Fatalf("unknown schedule %q", schedule)
		}
		if row[0] == "strong (Fig9)" && row[2] == "64R" {
			v, err := strconv.ParseFloat(row[5], 64)
			if err != nil {
				t.Fatalf("bad ms cell %q: %v", row[5], err)
			}
			switch schedule {
			case "flat sync":
				flatSync = v
			case "bucketed overlapped":
				bucketedOvl = v
			}
		}
	}
	if flatSync == 0 || bucketedOvl == 0 {
		t.Fatal("missing Large strong 64R rows")
	}
	if bucketedOvl >= flatSync*0.85 {
		t.Fatalf("bucketed overlapped (%.0f ms) should beat flat sync (%.0f ms) by >15%% at Large 64R",
			bucketedOvl, flatSync)
	}
}

// TestAutotuneFigShape smoke-tests the self-tuning schedule figure: one row
// per Fig. 9/12 scale, tuned never worse than the shipped default on every
// row (the tuner's head-to-head contract holds even under a sampled pool),
// and — the figure's point — strictly better on at least one scale.
func TestAutotuneFigShape(t *testing.T) {
	tab := RunAutotune(AutotuneFigOpts{Iters: 2, MaxCandidates: 24, Seed: 5})
	if len(tab.Rows) != 8 {
		t.Fatalf("expected 8 scale rows, got %d", len(tab.Rows))
	}
	better := 0
	for _, row := range tab.Rows {
		def, err1 := strconv.ParseFloat(row[3], 64)
		tuned, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad ms cells in row %v", row)
		}
		if tuned > def*1.0001 {
			t.Errorf("tuned (%.1f ms) worse than default (%.1f ms): %v", tuned, def, row)
		}
		if tuned < def*0.999 {
			better++
		}
		if row[6] == "" {
			t.Errorf("missing schedule cell: %v", row)
		}
	}
	if better == 0 {
		t.Error("tuner strictly improved no scale; expected at least one (hierarchical beats ring at 64R)")
	}
}

func TestContentionFigShape(t *testing.T) {
	tab := RunContentionFig(ContentionFigOpts{Iters: 1, MaxCandidates: 16, Seed: 5})
	// 8 schedule rows + 8 trunk rows + 3 straggler + 4 autotune + 4 §VI-D1.
	if len(tab.Rows) != 27 {
		t.Fatalf("expected 27 rows, got %d", len(tab.Rows))
	}
	cell := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("bad ms cell %q in row %v", row[col], row)
		}
		return v
	}
	rows := func(section string) (out [][]string) {
		for _, r := range tab.Rows {
			if r[0] == section {
				out = append(out, r)
			}
		}
		return out
	}
	// Schedule section: contention never speeds a schedule up, the flat
	// synchronous schedule is priced identically, and at both scales the
	// bucketed+overlapped schedule still beats flat-sync under contention.
	sched := rows("schedule")
	for i := 0; i < len(sched); i += 2 {
		off, on := cell(sched[i], 5), cell(sched[i+1], 5)
		if on < off {
			t.Errorf("contention sped up %v: off %v on %v", sched[i][3], off, on)
		}
		if sched[i][3] == "flat-sync" && on != off {
			t.Errorf("flat-sync must be contention-free: off %v on %v", off, on)
		}
	}
	for i := 0; i < len(sched); i += 4 {
		flatOn, bucketOn := cell(sched[i+1], 5), cell(sched[i+3], 5)
		if bucketOn >= flatOn {
			t.Errorf("%s: overlap win must survive contention (bucketed %v vs flat-sync %v)",
				sched[i][1], bucketOn, flatOn)
		}
	}
	// Trunk section: more oversubscription never gets cheaper.
	trunk := rows("trunk")
	for i := 2; i < len(trunk); i += 2 {
		if cell(trunk[i], 5) < cell(trunk[i-2], 5) {
			t.Errorf("fewer uplinks must not be faster: %v vs %v", trunk[i], trunk[i-2])
		}
	}
	// Straggler section: a derated trunk only slows things down.
	strag := rows("straggler")
	for i := 1; i < len(strag); i++ {
		if cell(strag[i], 5) < cell(strag[0], 5) {
			t.Errorf("derated trunk must not be faster: %v", strag[i])
		}
	}
	// Autotune section: tuned never worse than default under contention.
	auto := rows("autotune")
	for i := 0; i < len(auto); i += 2 {
		if cell(auto[i+1], 5) > cell(auto[i], 5)*1.0001 {
			t.Errorf("tuned-under-contention worse than default: %v vs %v", auto[i+1], auto[i])
		}
	}
	// §VI-D1 section: both interference mechanisms inflate their baseline.
	vid := rows("§VI-D1")
	if cell(vid[1], 5) <= cell(vid[0], 5) {
		t.Errorf("flat interference factor must slow the MPI run: %v vs %v", vid[1], vid[0])
	}
	if cell(vid[3], 5) <= cell(vid[2], 5) {
		t.Errorf("link-level contention must slow the overlapped CCL run: %v vs %v", vid[3], vid[2])
	}
}

func TestServingFigShape(t *testing.T) {
	tab := RunServing(DefaultServingFigOpts())
	// 2 scales × (B32 unbounded + B32 SLO + B128 SLO) × 3 loads.
	if len(tab.Rows) != 18 {
		t.Fatalf("%d rows, want 18:\n%s", len(tab.Rows), tab)
	}
	if len(tab.Headers) != 11 {
		t.Fatalf("%d headers, want 11", len(tab.Headers))
	}
	num := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "x"), 64)
		if err != nil {
			t.Fatalf("cell %d of %v: %v", col, row, err)
		}
		return v
	}
	const (
		colShed, colP99, colQPS = 6, 9, 10
	)
	// MLPerf at 3.0x overload: the unbounded B32 policy (row 2) blows past
	// the SLO the bounded policy (row 5) holds, which sheds to stay there.
	if num(tab.Rows[5], colShed) == 0 {
		t.Errorf("SLO policy at 3x overload shed nothing: %v", tab.Rows[5])
	}
	if num(tab.Rows[5], colP99) >= num(tab.Rows[2], colP99) {
		t.Errorf("SLO policy p99 %v not below unbounded %v", tab.Rows[5], tab.Rows[2])
	}
	// Larger max-batch buys strictly more saturated throughput (B128 row 8
	// vs B32 row 2 at 3.0x), at both scales (rows 17 vs 11).
	for _, pair := range [][2]int{{8, 2}, {17, 11}} {
		if num(tab.Rows[pair[0]], colQPS) <= num(tab.Rows[pair[1]], colQPS) {
			t.Errorf("B128 throughput %v not above B32 %v", tab.Rows[pair[0]], tab.Rows[pair[1]])
		}
	}
	// Deterministic: a rerun renders bit-identically.
	if again := RunServing(DefaultServingFigOpts()); again.String() != tab.String() {
		t.Error("serving figure is not deterministic across reruns")
	}
}

func TestChurnFigShape(t *testing.T) {
	opts := ChurnFigOpts{Iters: 8, Intervals: []int{2}, Rates: []float64{0.05}, Seed: 1, Fig9Only: true}
	tab := RunChurn(opts)
	// Checkpoint-off baseline + fault-free per interval + 1-failure per
	// interval + churn per interval x rate.
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4:\n%s", len(tab.Rows), tab)
	}
	if len(tab.Headers) != 9 {
		t.Fatalf("%d headers, want 9", len(tab.Headers))
	}
	const (
		colFails, colFinalR, colTTR, colOver = 3, 4, 5, 8
	)
	// The checkpoint-off baseline defines 0% overhead and recovers nothing.
	if tab.Rows[0][colOver] != "0%" || tab.Rows[0][colFails] != "0" {
		t.Errorf("bad baseline row: %v", tab.Rows[0])
	}
	// The checkpointing tax alone must not beat the checkpoint-off baseline.
	if strings.HasPrefix(tab.Rows[1][colOver], "-") {
		t.Errorf("fault-free checkpointing beat the no-checkpoint baseline: %v", tab.Rows[1])
	}
	// The single mid-run failure loses exactly one of 64 ranks and pays a
	// positive time-to-recover.
	if tab.Rows[2][colFails] != "1" || tab.Rows[2][colFinalR] != "63" {
		t.Errorf("bad single-failure row: %v", tab.Rows[2])
	}
	if ttr, err := strconv.ParseFloat(tab.Rows[2][colTTR], 64); err != nil || ttr <= 0 {
		t.Errorf("single-failure TTR not positive: %v", tab.Rows[2])
	}
	// The churn schedule never drops below the floor of 32 ranks.
	if r, err := strconv.Atoi(tab.Rows[3][colFinalR]); err != nil || r < 32 || r > 64 {
		t.Errorf("churn final ranks out of [32,64]: %v", tab.Rows[3])
	}
	// Deterministic: a rerun renders bit-identically.
	if again := RunChurn(opts); again.String() != tab.String() {
		t.Error("churn figure is not deterministic across reruns")
	}
}

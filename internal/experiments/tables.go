package experiments

import (
	"fmt"

	"repro/internal/core"
)

// Table1 reproduces Table I: the three DLRM model specifications.
func Table1() *Table {
	t := &Table{
		Title:   "Table I: DLRM model specifications",
		Headers: []string{"Parameter", "Small", "Large", "MLPerf"},
	}
	get := func(f func(core.Config) string) []string {
		return []string{f(core.Small), f(core.Large), f(core.MLPerf)}
	}
	row := func(name string, f func(core.Config) string) {
		vals := get(f)
		t.AddRow(name, vals[0], vals[1], vals[2])
	}
	row("Minibatch (single socket)", func(c core.Config) string {
		if c.MB == 0 {
			return "-"
		}
		return fmt.Sprint(c.MB)
	})
	row("Global MB (strong scaling)", func(c core.Config) string { return fmt.Sprint(c.GlobalMB) })
	row("Local MB (weak scaling)", func(c core.Config) string { return fmt.Sprint(c.LocalMB) })
	row("Avg look-ups per table (P)", func(c core.Config) string { return fmt.Sprint(c.Lookups) })
	row("Number of tables (S)", func(c core.Config) string { return fmt.Sprint(c.Tables) })
	row("Embedding dimension (E)", func(c core.Config) string { return fmt.Sprint(c.EmbDim) })
	row("#rows per table (M)", func(c core.Config) string {
		mn, mx := c.Rows[0], c.Rows[0]
		for _, r := range c.Rows {
			if r < mn {
				mn = r
			}
			if r > mx {
				mx = r
			}
		}
		if mn == mx {
			return fmt.Sprintf("%.0e", float64(mx))
		}
		return fmt.Sprintf("up to %.0fM", float64(mx)/1e6)
	})
	row("Bottom MLP", func(c core.Config) string { return fmt.Sprint(c.BotSizes()) })
	row("Top MLP", func(c core.Config) string { return fmt.Sprint(c.TopSizes()) })
	return t
}

// Table2 reproduces Table II: DLRM model characteristics for distributed
// runs, computed from the configs via Eqs. 1 and 2.
func Table2() *Table {
	t := &Table{
		Title:   "Table II: DLRM model characteristics for distributed runs",
		Headers: []string{"Parameter", "Small", "Large", "MLPerf"},
	}
	cfgs := []core.Config{core.Small, core.Large, core.MLPerf}
	cells := func(f func(core.Config) string) []string {
		out := make([]string, len(cfgs))
		for i, c := range cfgs {
			out[i] = f(c)
		}
		return out
	}
	row := func(name string, f func(core.Config) string) {
		v := cells(f)
		t.AddRow(name, v[0], v[1], v[2])
	}
	row("Mem capacity for all tables (GB)", func(c core.Config) string {
		return fmt.Sprintf("%.0f", c.TableBytes()/1e9)
	})
	row("Minimum sockets required", func(c core.Config) string {
		return fmt.Sprint(c.MinSockets(128e9))
	})
	row("Maximum ranks to scale", func(c core.Config) string {
		return fmt.Sprint(c.MaxRanks())
	})
	row("Total allreduce size (MB)", func(c core.Config) string {
		return fmt.Sprintf("%.1f", c.AllreduceBytes()/1e6)
	})
	row("Strong-scaling alltoall volume (MiB)", func(c core.Config) string {
		return fmt.Sprintf("%.0f", c.AlltoallBytes(c.GlobalMB)/(1<<20))
	})
	t.AddNote("paper values: 2/384/98 GB; 1/4/1 sockets; 8/64/26 ranks; 9.5/1047/9.0 MB; 15.8/1024/208 MB")
	return t
}

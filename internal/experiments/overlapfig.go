package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// runDistOpt is runDist with the overlap-pipeline knobs: the overlapped
// schedule (async backward redistribution, deferred waits, prefetch-hidden
// loader, per-collective CCL channels) and the allreduce algorithm. The
// ablation isolates the schedule, so both arms run the flat per-MLP
// gradient buffers (core.FlatBuckets) rather than the bucketed default.
func (sw *distSweep) runDistOpt(cfg core.Config, ranks, globalN int, v core.Variant,
	loader core.LoaderMode, iters int, overlap bool, algo comm.AllreduceAlgo) *core.DistResult {
	globalN -= globalN % ranks
	return mustRun(core.DistConfig{
		Cfg:         cfg,
		Ranks:       ranks,
		GlobalN:     globalN,
		Iters:       iters,
		Variant:     v,
		Topo:        fabric.NewPrunedFatTree(ranks, 12.5e9),
		Socket:      perfmodel.CLX8280,
		Loader:      loader,
		Sync:        !overlap,
		Allreduce:   algo,
		BucketBytes: core.FlatBuckets,
		Pools:       sw.pools,
		Workspaces:  sw.wss,
	})
}

// overlapMode is one schedule of the RunOverlap ablation.
type overlapMode struct {
	name    string
	overlap bool
	algo    comm.AllreduceAlgo
}

func overlapModes() []overlapMode {
	return []overlapMode{
		{"sync", false, comm.RingRSAG},
		{"overlapped", true, comm.RingRSAG},
		{"overlapped+hier", true, comm.Hierarchical},
	}
}

// expCell formats one label's exposed-vs-busy communication split.
func expCell(res *core.DistResult, label string) string {
	for _, e := range res.Exposures() {
		if e.Label == label {
			if e.Busy == 0 && e.Exposed == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f/%.1f (%.0f%% hid)", e.Exposed*1e3, e.Busy*1e3, e.HiddenShare()*100)
		}
	}
	return "-"
}

// RunOverlap reproduces the overlap ablation of §IV-A/§VI-D as a
// first-class figure: the same strong- (Fig. 9) and weak-scaling (Fig. 12)
// runs under three schedules — the instrumented synchronous pipeline
// (backward redistribution waited where issued, loader charged serially),
// the overlap-aware pipeline (backward alltoall issued before the bottom-MLP
// allreduce and hidden behind its backward, waits deferred to the latest
// consumer, loader prefetch-hidden, concurrent collectives on distinct CCL
// channels), and the overlapped pipeline with the hierarchical two-level
// allreduce. Per label the exposed-vs-busy split quantifies exactly how
// much communication each schedule hides.
func RunOverlap(o ScalingOpts) *Table {
	t := &Table{
		Title: "Overlap ablation: sync vs overlapped pipeline vs overlapped + hierarchical allreduce " +
			"(CCL Alltoall; exposed/busy ms per collective)",
		Headers: []string{"scaling", "config", "ranks", "schedule", "ms/iter", "vs sync",
			"a2a exp/busy", "ar exp/busy", "loader exp/busy"},
	}
	sw := newDistSweep()
	defer sw.close()
	v := core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend}
	cases := []struct {
		scaling string
		cfg     core.Config
		ranks   []int
		gn      func(cfg core.Config, r int) int
		loader  core.LoaderMode
	}{
		{"strong (Fig9)", core.Large, []int{16, 32, 64},
			func(cfg core.Config, _ int) int { return cfg.GlobalMB }, core.LoaderNone},
		{"weak (Fig12)", core.Large, []int{16, 32, 64},
			func(cfg core.Config, r int) int { return cfg.LocalMB * r }, core.LoaderNone},
		{"weak (Fig12)", core.MLPerf, []int{16, 26},
			func(cfg core.Config, r int) int { return cfg.LocalMB * r }, core.LoaderSharded},
	}
	for _, c := range cases {
		for _, r := range c.ranks {
			var sync float64
			for _, m := range overlapModes() {
				res := sw.runDistOpt(c.cfg, r, c.gn(c.cfg, r), v, c.loader, o.Iters, m.overlap, m.algo)
				delta := "-"
				if m.name == "sync" {
					sync = res.IterSeconds
				} else {
					delta = fmt.Sprintf("%+.1f%%", (res.IterSeconds/sync-1)*100)
				}
				t.AddRow(c.scaling, c.cfg.Name, fmt.Sprintf("%dR", r), m.name,
					ms(res.IterSeconds), delta,
					expCell(res, "alltoall"), expCell(res, "allreduce"), expCell(res, "loader"))
			}
		}
	}
	t.AddNote("paper §IV-A: dense-MLP allreduces overlap the sparse backward, embedding alltoalls overlap MLP compute; " +
		"\"the communication is almost completely hidden unless compute is too short\"")
	t.AddNote("overlapped: backward alltoall issued right after the interaction backward and hidden behind the " +
		"bottom-MLP backward; waits deferred to the embedding update / SGD; loader prefetch-hidden (cold start only)")
	t.AddNote("MPI overlap is NOT shown as a win: its unpinned progress thread inflates overlapped compute " +
		"(§VI-D1 interference artifact) — run fig10/fig11 for that story")
	return t
}

package experiments

import (
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/fabric"
	"repro/internal/par"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Benchmark fixtures shared by the root go-test benchmarks (bench_test.go)
// and the dlrmbench -benchjson suite, so both always measure the same
// workloads: a drift between the two would make the archived BENCH_*.json
// trend a different kernel than the benchmarks developers run locally.

// Fig5BlockedCase returns the packed operands of the Fig. 5 blocked forward
// GEMM benchmark (N=256, C=K=512, the paper's mid-size layer shape).
func Fig5BlockedCase() (x *tensor.Acts, w *tensor.Weights, y *tensor.Acts) {
	rng := rand.New(rand.NewSource(1))
	xD := tensor.NewDense(256, 512)
	xD.Randomize(rng, 1)
	wD := tensor.NewDense(512, 512)
	wD.Randomize(rng, 1)
	return tensor.PackActs(xD, 16, 32), tensor.PackWeights(wD, 32, 32),
		tensor.NewActs(256, 512, 16, 32)
}

// Fig5Flops returns the per-call FLOP count of Fig5BlockedCase.
func Fig5Flops() float64 { return 2 * 256 * 512 * 512 }

// Fig7StepCase returns a warmed-up trainer and minibatch for one full
// training iteration of the scaled Small config with the given embedding
// update strategy — the workload behind the Fig. 7 benchmarks.
func Fig7StepCase(strat embedding.Strategy) (*core.Trainer, *data.MiniBatch) {
	cfg := core.Small.Scaled(1.0 / 64)
	ds := &data.Random{Seed: 1, D: cfg.DenseIn, Tables: cfg.Tables,
		Rows: cfg.Rows[0], Lookups: cfg.Lookups}
	m := core.NewModel(cfg, 16, 1)
	tr := core.NewTrainer(m, par.Default, strat, 0.1, core.FP32)
	mb := ds.Batch(0, 128)
	tr.Step(mb) // warmup: sizes the workspaces
	return tr, mb
}

// Fig16StepCase returns a warmed-up trainer and minibatch for the scaled
// MLPerf config at the given precision — the workload behind the Fig. 16
// benchmarks.
func Fig16StepCase(prec core.Precision) (*core.Trainer, *data.MiniBatch) {
	rows := data.ScaleRows(data.CriteoTBRows, 1.0/16384)
	cfg := core.Config{
		Name: "MLPerf-mini", MB: 128, GlobalMB: 128, LocalMB: 128,
		Lookups: 1, Tables: 26, EmbDim: 16, Rows: rows,
		DenseIn: 13, BotHidden: []int{32}, TopHidden: []int{64, 32},
	}
	ds := data.NewClickLog(1, cfg.DenseIn, cfg.Rows, cfg.Lookups)
	m := core.NewModel(cfg, 16, 1)
	tr := core.NewTrainer(m, par.Default, embedding.RaceFree, 0.5, prec)
	mb := ds.Batch(0, cfg.MB)
	tr.Step(mb)
	return tr, mb
}

// DistCase builds a warmed-up timing-mode distributed fixture on the OPA
// cluster with persistent per-rank pools and workspaces, so benchmarks
// measure the steady-state iteration rather than setup. It runs the library
// default schedule — bucketed+overlapped gradient allreduce at
// core.DefaultBucketBytes — so the headline benchmarks track what users get
// out of the box. All distributed benchmarks — the root go-test ones and
// dlrmbench -benchjson — go through this single recipe so they cannot drift
// apart. The returned cleanup closes the rank pools.
func DistCase(cfg core.Config, ranks, globalN int, v core.Variant) (core.DistConfig, func()) {
	return DistLoaderCase(cfg, ranks, globalN, v, core.LoaderNone)
}

// DistLoaderCase is DistCase with an explicit data-pipeline mode — the
// recipe behind the loader-artifact vs sharded-loader benchmark pairs.
func DistLoaderCase(cfg core.Config, ranks, globalN int, v core.Variant, mode core.LoaderMode) (core.DistConfig, func()) {
	return distFixture(cfg, ranks, globalN, v, mode, true, comm.RingRSAG, 0, false)
}

// DistFlatSyncCase is the pre-flip schedule kept as an explicit, measured
// baseline: synchronous pipeline, flat per-MLP gradient buffers — the
// paper's instrumented configuration and the reference the overlap and
// bucketing deltas are quoted against.
func DistFlatSyncCase(cfg core.Config, ranks, globalN int, v core.Variant) (core.DistConfig, func()) {
	return DistPipelineCase(cfg, ranks, globalN, v, core.LoaderNone, false, comm.RingRSAG)
}

// DistPipelineCase is the explicit flat-schedule fixture: loader mode,
// overlap-aware schedule, and allreduce algorithm over flat per-MLP
// gradient buffers — the recipe behind the overlap/hierarchical bench cases
// the regression gate tracks.
func DistPipelineCase(cfg core.Config, ranks, globalN int, v core.Variant,
	mode core.LoaderMode, overlap bool, algo comm.AllreduceAlgo) (core.DistConfig, func()) {
	return distFixture(cfg, ranks, globalN, v, mode, overlap, algo, core.FlatBuckets, false)
}

// DistBucketedCase is the bucketed gradient allreduce at an explicit bucket
// size: overlapped schedule, ring cost model, per-layer buckets coalesced to
// bucketBytes.
func DistBucketedCase(cfg core.Config, ranks, globalN int, v core.Variant, bucketBytes int) (core.DistConfig, func()) {
	return distFixture(cfg, ranks, globalN, v, core.LoaderNone, true, comm.RingRSAG, bucketBytes, false)
}

// DistContentionCase is the library default schedule with the
// contention-aware fabric charging enabled: concurrent bucket allreduces on
// CCL channels 0-2 pay for the shared 2:1 trunk instead of each being
// priced against an empty fabric.
func DistContentionCase(cfg core.Config, ranks, globalN int, v core.Variant) (core.DistConfig, func()) {
	return distFixture(cfg, ranks, globalN, v, core.LoaderNone, true, comm.RingRSAG, 0, true)
}

// distFixture builds the warmed-up fixture every Dist*Case variant shares.
// bucketBytes follows DistConfig semantics: 0 is the bucketed default,
// core.FlatBuckets the flat per-MLP buffers. contention enables the
// contention-aware fabric charging (off everywhere except the explicit
// contention cases, so the other archived numbers stay bit-identical).
func distFixture(cfg core.Config, ranks, globalN int, v core.Variant,
	mode core.LoaderMode, overlap bool, algo comm.AllreduceAlgo, bucketBytes int, contention bool) (core.DistConfig, func()) {
	pools := cluster.NewPools()
	dc := core.DistConfig{
		Cfg:         cfg,
		Ranks:       ranks,
		GlobalN:     globalN - globalN%ranks,
		Iters:       1,
		Variant:     v,
		Topo:        fabric.NewPrunedFatTree(ranks, 12.5e9),
		Socket:      perfmodel.CLX8280,
		Loader:      mode,
		Sync:        !overlap,
		Allreduce:   algo,
		BucketBytes: bucketBytes,
		Contention:  contention,
		Pools:       pools,
		Workspaces:  core.NewDistWorkspaces(),
	}
	mustRun(dc) // warmup: size workspaces, fill slot pools
	return dc, pools.Close
}

// ccl64 is the headline 64-rank CCL-Alltoall variant of Figs. 9/12.
var ccl64 = core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend}

// Fig9DistCase returns the strong-scaling headline run behind the Fig. 9
// benchmarks: Large config, 64 ranks, CCL Alltoall, fixed global batch,
// default (bucketed+overlapped) schedule.
func Fig9DistCase() (core.DistConfig, func()) {
	return DistCase(core.Large, 64, core.Large.GlobalMB, ccl64)
}

// Fig12DistCase returns the weak-scaling counterpart (GlobalN = LN×ranks)
// behind the Fig. 12 benchmarks.
func Fig12DistCase() (core.DistConfig, func()) {
	return DistCase(core.Large, 64, core.Large.LocalMB*64, ccl64)
}

// Fig9DistFlatSyncCase preserves the pre-flip strong-scaling baseline —
// synchronous flat-allreduce pipeline — as an explicitly-configured,
// still-measured row.
func Fig9DistFlatSyncCase() (core.DistConfig, func()) {
	return DistFlatSyncCase(core.Large, 64, core.Large.GlobalMB, ccl64)
}

// Fig12DistFlatSyncCase is the weak-scaling counterpart of
// Fig9DistFlatSyncCase.
func Fig12DistFlatSyncCase() (core.DistConfig, func()) {
	return DistFlatSyncCase(core.Large, 64, core.Large.LocalMB*64, ccl64)
}

// Fig9DistShardedCase is Fig9DistCase with the sharded streaming loader
// charged — the fixed-pipeline counterpart tracked alongside the headline
// strong-scaling run.
func Fig9DistShardedCase() (core.DistConfig, func()) {
	return DistLoaderCase(core.Large, 64, core.Large.GlobalMB, ccl64, core.LoaderSharded)
}

// Fig12DistShardedCase is the weak-scaling run with the sharded loader.
func Fig12DistShardedCase() (core.DistConfig, func()) {
	return DistLoaderCase(core.Large, 64, core.Large.LocalMB*64, ccl64, core.LoaderSharded)
}

// Fig12DistGlobalMBCase is the weak-scaling run carrying the §VI-D2
// global-read artifact; its virtual ms/iter vs Fig12DistShardedCase is the
// loader delta docs/PERF.md quotes.
func Fig12DistGlobalMBCase() (core.DistConfig, func()) {
	return DistLoaderCase(core.Large, 64, core.Large.LocalMB*64, ccl64, core.LoaderGlobalMB)
}

// Fig9DistOverlapCase is the strong-scaling headline run under the
// overlap-aware pipeline (async backward alltoall, deferred waits, distinct
// CCL channels) — its virtual ms/iter vs Fig9DistCase is the comm-hiding
// delta the PERF doc quotes.
func Fig9DistOverlapCase() (core.DistConfig, func()) {
	return DistPipelineCase(core.Large, 64, core.Large.GlobalMB, ccl64, core.LoaderNone, true, comm.RingRSAG)
}

// Fig12DistOverlapCase is the weak-scaling counterpart of
// Fig9DistOverlapCase.
func Fig12DistOverlapCase() (core.DistConfig, func()) {
	return DistPipelineCase(core.Large, 64, core.Large.LocalMB*64, ccl64, core.LoaderNone, true, comm.RingRSAG)
}

// Fig9DistHierCase is the overlapped strong-scaling run with the
// hierarchical two-level allreduce selected.
func Fig9DistHierCase() (core.DistConfig, func()) {
	return DistPipelineCase(core.Large, 64, core.Large.GlobalMB, ccl64, core.LoaderNone, true, comm.Hierarchical)
}

// Fig12DistHierCase is the overlapped weak-scaling run with the
// hierarchical two-level allreduce selected.
func Fig12DistHierCase() (core.DistConfig, func()) {
	return DistPipelineCase(core.Large, 64, core.Large.LocalMB*64, ccl64, core.LoaderNone, true, comm.Hierarchical)
}

// The former Fig9DistBucketedCase/Fig12DistBucketedCase fixtures are gone:
// bucketed+overlapped at core.DefaultBucketBytes IS the headline
// Fig9DistCase/Fig12DistCase now. The regression gate maps their archived
// benchmark names onto the headline ones via benchdiff -renamed.

// Fig9DistTunedCase is the strong-scaling headline run under the schedule
// the online autotuner picks (core.AutotuneDistConfig over schedule ×
// bucket size × algorithm × channels) — tracked against Fig9DistCase so a
// tuner regression that stops beating the default shows up in the gate.
func Fig9DistTunedCase() (core.DistConfig, func()) {
	return distTunedFixture(core.Large, 64, core.Large.GlobalMB, ccl64)
}

// Fig12DistTunedCase is the weak-scaling counterpart of Fig9DistTunedCase.
func Fig12DistTunedCase() (core.DistConfig, func()) {
	return distTunedFixture(core.Large, 64, core.Large.LocalMB*64, ccl64)
}

// Fig9DistContentionCase is the strong-scaling headline schedule charged
// under link contention — its virtual ms/iter vs Fig9DistCase is the
// honest-sharing cost of the overlapped schedule the PERF doc quotes.
func Fig9DistContentionCase() (core.DistConfig, func()) {
	return DistContentionCase(core.Large, 64, core.Large.GlobalMB, ccl64)
}

// Fig12DistContentionCase is the weak-scaling counterpart of
// Fig9DistContentionCase.
func Fig12DistContentionCase() (core.DistConfig, func()) {
	return DistContentionCase(core.Large, 64, core.Large.LocalMB*64, ccl64)
}

// distTunedFixture autotunes the schedule for the given shape, then builds
// the warmed-up fixture exactly like distFixture does. The probe runs share
// the fixture's pools and workspaces, so tuning warms the very state the
// benchmark then measures.
func distTunedFixture(cfg core.Config, ranks, globalN int, v core.Variant) (core.DistConfig, func()) {
	pools := cluster.NewPools()
	dc := core.DistConfig{
		Cfg:        cfg,
		Ranks:      ranks,
		GlobalN:    globalN - globalN%ranks,
		Iters:      1,
		Variant:    v,
		Topo:       fabric.NewPrunedFatTree(ranks, 12.5e9),
		Socket:     perfmodel.CLX8280,
		Pools:      pools,
		Workspaces: core.NewDistWorkspaces(),
	}
	dc, _ = core.AutotuneDistConfig(dc, core.AutotuneOpts{})
	mustRun(dc) // warmup: size workspaces, fill slot pools
	return dc, pools.Close
}

// LoaderNextCase returns a warmed-up sharded streaming loader over a
// 26-table click-log — rank 1 of 8, owning four tables — the fixture
// behind the loader-production benchmarks (host wall time per RankBatch:
// the N/R sample slice plus the owned columns over the global batch).
func LoaderNextCase() (*data.ShardedLoader, func()) {
	rows := data.ScaleRows(data.CriteoTBRows, 1.0/16384)
	ds := data.NewClickLog(1, 13, rows, 1)
	owned := []int{1, 9, 17, 25}
	ld := data.NewShardedLoader(data.LoaderConfig{
		DS: ds, GlobalN: 2048, Rank: 1, Ranks: 8, Owned: owned,
	})
	ld.Next() // warmup: size the staging buffers
	return ld, ld.Close
}

// FusedEmbeddingCase returns the table, batch, and output gradient of the
// §III-A fused backward+update sweep (500k×64 table, 2048 bags of 50).
func FusedEmbeddingCase() (*embedding.Table, *embedding.Batch, []float32) {
	rng := rand.New(rand.NewSource(4))
	tab := embedding.NewTable(500_000, 64, rng, 0.01)
	batch := embedding.MakeBatch(rng, embedding.Uniform{}, 2048, 50, tab.M)
	dOut := make([]float32, 2048*64)
	for i := range dOut {
		dOut[i] = rng.Float32()
	}
	return tab, batch, dOut
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/par"
	"repro/internal/trace"
)

// Fig7Opts sizes the single-socket end-to-end DLRM runs of Figs. 7 and 8.
// Tables are scaled by RowScale to fit host memory; the embedding-update
// cost comparison is unaffected in shape (Reference scales with table rows,
// the optimized strategies with lookups).
type Fig7Opts struct {
	Iters    int
	MB       int     // minibatch (0 → config default)
	RowScale float64 // table row scaling
	SkipRef  bool    // skip the slow Reference runs (quick mode)
}

// DefaultFig7Opts returns host-sized defaults. The row scale and minibatch
// are chosen so that table rows ≫ batch lookups, preserving the paper's
// regime where the Reference dense-gradient update dwarfs the optimized
// strategies (full scale: M=1e6 vs NS=102k per iteration).
func DefaultFig7Opts() Fig7Opts {
	return Fig7Opts{Iters: 2, MB: 256, RowScale: 1.0 / 4}
}

// Fig78Result carries both the per-strategy iteration times (Fig. 7) and
// the phase breakdown (Fig. 8), which come from the same runs.
type Fig78Result struct {
	Fig7 *Table
	Fig8 *Table
}

// RunFig78 executes single-socket DLRM training for the Small config
// (uniform indices) and the MLPerf config (Zipf click-log indices) under
// the four embedding-update strategies, really running every kernel, and
// reports ms/iteration (Fig. 7) plus the time split across embeddings, MLP
// and the rest (Fig. 8).
func RunFig78(o Fig7Opts) *Fig78Result {
	fig7 := &Table{
		Title:   "Fig. 7: DLRM single-socket performance (ms per iteration)",
		Headers: []string{"config", "strategy", "ms/iter", "speedup", "emb ms/iter", "emb speedup"},
	}
	fig8 := &Table{
		Title:   "Fig. 8: DLRM single-socket time split across key ops",
		Headers: []string{"config", "strategy", "embeddings", "mlp", "rest"},
	}
	pool := par.Default

	type caseDef struct {
		cfg  core.Config
		ds   data.Dataset
		name string
	}
	smallCfg := core.Small.Scaled(o.RowScale)
	mlperfCfg := core.MLPerf.Scaled(o.RowScale / 8) // Criteo tables are much larger
	cases := []caseDef{
		{smallCfg, &data.Random{Seed: 1, D: smallCfg.DenseIn, Tables: smallCfg.Tables,
			Rows: smallCfg.Rows[0], Lookups: smallCfg.Lookups}, "Small"},
		{mlperfCfg, data.NewClickLog(2, mlperfCfg.DenseIn, mlperfCfg.Rows, mlperfCfg.Lookups), "MLPerf"},
	}

	for _, cs := range cases {
		mb := o.MB
		if mb == 0 {
			mb = cs.cfg.MB
		}
		var refTime, refEmb float64
		strategies := embedding.Strategies
		if o.SkipRef {
			strategies = strategies[1:]
		}
		for _, strat := range strategies {
			m := core.NewModel(cs.cfg, 16, 99)
			tr := core.NewTrainer(m, pool, strat, 0.1, core.FP32)
			tr.Prof = trace.NewProfile()
			batches := make([]*data.MiniBatch, o.Iters)
			for i := range batches {
				batches[i] = cs.ds.Batch(i, mb)
			}
			tr.Step(batches[0]) // warm-up
			tr.Prof.Reset()
			start := time.Now()
			for _, b := range batches {
				tr.Step(b)
			}
			perIter := time.Since(start).Seconds() / float64(o.Iters)
			embIter := tr.Prof.Total("embeddings").Seconds() / float64(o.Iters)
			if strat == embedding.Reference {
				refTime, refEmb = perIter, embIter
			}
			speedup, embSpeedup := "-", "-"
			if refTime > 0 {
				speedup = fmt.Sprintf("%.1fx", refTime/perIter)
				embSpeedup = fmt.Sprintf("%.1fx", refEmb/embIter)
			}
			fig7.AddRow(cs.name, strat.String(), ms(perIter), speedup, ms(embIter), embSpeedup)

			sum := tr.Prof.Sum().Seconds()
			if sum > 0 {
				fig8.AddRow(cs.name, strat.String(),
					pct(tr.Prof.Total("embeddings").Seconds()/sum),
					pct(tr.Prof.Total("mlp").Seconds()/sum),
					pct(tr.Prof.Total("rest").Seconds()/sum))
			}
		}
	}
	fig7.AddNote("paper (full-scale SKX): Small 4288→38.3 ms (~110x); MLPerf 272→34.8 ms (~8x)")
	fig7.AddNote("tables scaled by %.3g to fit host memory; single-core hosts mute the contention gap between Atomic/RTM and RaceFree", o.RowScale)
	fig7.AddNote("pure-Go MLP kernels run ~100x below AVX512, so the end-to-end ratio compresses; the 'emb' columns isolate the kernel the paper optimizes")
	fig8.AddNote("paper: after optimization Small spends ~30%% in embeddings; MLPerf <20%%")
	return &Fig78Result{Fig7: fig7, Fig8: fig8}
}

package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// Fig6Opts sizes the MLP communication/computation overlap experiment of
// Figs. 2 and 6: a standalone multi-layer MLP trained data-parallel on a
// cluster, with the SGD's reduce-scatter and all-gather overlapped with the
// backward GEMMs, and 4 cores per socket dedicated to communication.
type Fig6Opts struct {
	Layers int
	N      int // global minibatch (paper: 1008)
	CK     int // feature width C=K (paper: 1024)
	Ranks  int // paper: 8 CLX nodes, 1 MPI process each
}

// DefaultFig6Opts returns the paper's configuration.
func DefaultFig6Opts() Fig6Opts {
	return Fig6Opts{Layers: 5, N: 1008, CK: 1024, Ranks: 8}
}

// RunFig6 simulates the Fig. 2 schedule and reports, for the backward and
// update passes, the GEMM/compute time versus the communication time and
// how much of it is exposed — the paper's point being that the allgather
// and reduce-scatter hide completely behind the GEMMs.
func RunFig6(o Fig6Opts) *Table {
	topo := fabric.NewPrunedFatTree(o.Ranks, 12.5e9)
	sock := perfmodel.CLX8280
	cfg := cluster.Config{
		Ranks:     o.Ranks,
		Topo:      topo,
		Socket:    sock,
		Backend:   cluster.CCLBackend, // 4 dedicated EPs per socket (§IV-A)
		CommCores: 4,
	}
	layerBytes := 4 * float64(o.CK) * float64(o.CK)
	localN := o.N / o.Ranks

	var bwdGemm, bwdBusy, bwdExposed, updCompute, updBusy, updExposed float64
	stats := cluster.Run(cfg, func(r *cluster.Rank) {
		cm := comm.New(r, topo)
		cores := r.ComputeCores()
		gemmT := sock.GemmTimeN(2*float64(localN)*float64(o.CK)*float64(o.CK),
			4*float64(o.CK)*(float64(o.CK)+2*float64(localN)), cores, localN)

		// Backward pass (Fig. 2 left): per layer, BWD-by-data and
		// BWD-by-weights GEMMs; the reduce-scatter of this layer's weight
		// gradients is enqueued right after they exist, and the all-gather
		// of the *previous* (upper) layer's reduced gradients rides along.
		rsHandles := make([]cluster.Handle, o.Layers)
		bwdStart := r.Now()
		for l := o.Layers - 1; l >= 0; l-- {
			r.Compute(gemmT) // backward by data
			r.Compute(gemmT) // backward by weights
			buf := make([]float32, 4)
			h := cm.AllreduceCost(fmt.Sprintf("reduce-scatter"), buf, false, layerBytes/2)
			rsHandles[l] = h
		}
		bwdEnd := r.Now()

		// Update pass (Fig. 2 right): per layer, wait for the
		// reduce-scatter, apply the SGD on the local shard, and all-gather
		// the updated weights, overlapped with the next layer's SGD.
		agHandles := make([]cluster.Handle, o.Layers)
		sgdT := sock.StreamTime(3*layerBytes/float64(o.Ranks), cores)
		// Process layers in the same top-down order the backward pass
		// enqueued their reduce-scatters, so completions arrive in order.
		for l := o.Layers - 1; l >= 0; l-- {
			r.Wait(rsHandles[l])
			r.Compute(sgdT)
			buf := make([]float32, 4)
			agHandles[l] = cm.AllreduceCost("allgather", buf, false, layerBytes/2)
		}
		for _, h := range agHandles {
			r.Wait(h)
		}
		updEnd := r.Now()
		_ = bwdStart
		_ = bwdEnd
		_ = updEnd
	})

	ranks := float64(o.Ranks)
	for _, s := range stats {
		bwdGemm += 0 // filled from stats below
		_ = s
	}
	// Aggregate: compute split is deterministic — recompute from stats.
	for _, s := range stats {
		updBusy += s.CommBusy["allgather"] / ranks
		bwdBusy += s.CommBusy["reduce-scatter"] / ranks
		updExposed += s.Wait["allgather"] / ranks
		bwdExposed += s.Wait["reduce-scatter"] / ranks
	}
	// Compute time split: the backward pass is 2 GEMMs per layer; the update
	// pass is the SGD sweeps.
	sockCores := sock.Cores - 4
	gemmT := sock.GemmTimeN(2*float64(localN)*float64(o.CK)*float64(o.CK),
		4*float64(o.CK)*(float64(o.CK)+2*float64(localN)), sockCores, localN)
	bwdGemm = 2 * gemmT * float64(o.Layers)
	updCompute = sock.StreamTime(3*layerBytes/float64(o.Ranks), sockCores) * float64(o.Layers)

	t := &Table{
		Title:   "Fig. 2/6: overlapping MLP GEMMs with SGD reduce-scatter/all-gather",
		Headers: []string{"pass", "compute (ms)", "comm busy (ms)", "comm exposed (ms)"},
	}
	t.AddRow("BWD pass", ms(bwdGemm), ms(bwdBusy), ms(bwdExposed))
	t.AddRow("UPD pass", ms(updCompute), ms(updBusy), ms(updExposed))
	t.AddNote("config: %d ranks, N=%d, C=K=%d, %d layers, 4 comm cores/socket", o.Ranks, o.N, o.CK, o.Layers)
	t.AddNote("paper (8 CLX nodes): BWD GEMMs 5.40/5.39 ms vs RS/AG 2.84/1.86 ms — fully hidden")
	return t
}

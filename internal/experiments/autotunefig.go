package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// AutotuneFigOpts bounds the self-tuning figure's searches.
type AutotuneFigOpts struct {
	// Iters is the deciding probe budget and the measurement length the
	// table reports (default 3, like the other scaling figures).
	Iters int
	// MaxCandidates caps each scale's first search round (0 = probe the
	// full ~130-candidate schedule space). The CI smoke run caps it.
	MaxCandidates int
	// Seed seeds the candidate-sampling stream when capped.
	Seed uint64
}

// DefaultAutotuneFigOpts returns the full-space search budget.
func DefaultAutotuneFigOpts() AutotuneFigOpts { return AutotuneFigOpts{Iters: 3} }

// RunAutotune is the self-tuning communication-schedule figure: at every
// Fig. 9/12 scale, core.AutotuneDistConfig searches schedule × bucket size
// × allreduce algorithm × channel count against the virtual-time model and
// the table compares its pick with the hand-picked default (bucketed +
// overlapped, 64 MiB buckets, ring) the library ships. The tuner's
// head-to-head contract makes "tuned" never worse than "default" under the
// model; where the defaults are already optimal for a shape the gain is 0
// and the schedule column names the incumbent.
func RunAutotune(o AutotuneFigOpts) *Table {
	t := &Table{
		Title: "Self-tuning communication schedule: autotuned vs default " +
			"(bucketed+overlapped, 64 MiB, ring) at every Fig. 9/12 scale (CCL Alltoall)",
		Headers: []string{"scaling", "config", "ranks", "default ms/iter", "tuned ms/iter",
			"delta", "tuned schedule", "probes"},
	}
	sw := newDistSweep()
	defer sw.close()
	v := core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend}
	cases := []struct {
		scaling string
		cfg     core.Config
		ranks   []int
		gn      func(cfg core.Config, r int) int
		loader  core.LoaderMode
	}{
		{"strong (Fig9)", core.Large, []int{16, 32, 64},
			func(cfg core.Config, _ int) int { return cfg.GlobalMB }, core.LoaderNone},
		{"weak (Fig12)", core.Large, []int{16, 32, 64},
			func(cfg core.Config, r int) int { return cfg.LocalMB * r }, core.LoaderNone},
		{"weak (Fig12)", core.MLPerf, []int{16, 26},
			func(cfg core.Config, r int) int { return cfg.LocalMB * r }, core.LoaderSharded},
	}
	for _, c := range cases {
		for _, r := range c.ranks {
			globalN := c.gn(c.cfg, r)
			globalN -= globalN % r
			base := core.DistConfig{
				Cfg:        c.cfg,
				Ranks:      r,
				GlobalN:    globalN,
				Iters:      o.Iters,
				Variant:    v,
				Topo:       fabric.NewPrunedFatTree(r, 12.5e9),
				Socket:     perfmodel.CLX8280,
				Loader:     c.loader,
				Pools:      sw.pools,
				Workspaces: sw.wss,
				// Schedule knobs left at their zero values: the incumbent the
				// tuner must beat IS the shipped default.
			}
			_, rep := core.AutotuneDistConfig(base, core.AutotuneOpts{
				FinalIters:    o.Iters,
				MaxCandidates: o.MaxCandidates,
				Seed:          o.Seed,
			})
			t.AddRow(c.scaling, c.cfg.Name, fmt.Sprintf("%dR", r),
				ms(rep.BaselineSeconds), ms(rep.TunedSeconds),
				fmt.Sprintf("%+.1f%%", (rep.TunedSeconds/rep.BaselineSeconds-1)*100),
				rep.Schedule, fmt.Sprintf("%d/%d", rep.Probes, rep.Candidates))
		}
	}
	t.AddNote("search space: {overlapped, sync} × {flat, 16-256 MiB buckets} × "+
		"{ring, halving, flat, hier, tree, auto} × {1-3 channels}; successive halving, "+
		"deciding round at %d iterations", o.Iters)
	t.AddNote("%s", "the tuner meets the incumbent head-to-head at the final budget, so tuned is "+
		"never worse than default under the virtual-time model; probes counts distinct "+
		"(candidate, budget) timing-mode runs")
	return t
}

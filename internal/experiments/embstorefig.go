package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/embstore"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// EmbStoreFigOpts sizes the tiered-embedding-store figure.
type EmbStoreFigOpts struct {
	// Iters per run; the virtual ms/iter column is the mean.
	Iters int
	// Budgets are the hot-cache byte budgets swept (0 is added implicitly
	// as the in-RAM baseline row).
	Budgets []int
	// Skews are the Zipf exponents of the modeled row traffic.
	Skews []float64
}

// DefaultEmbStoreFigOpts returns the full-depth figure budget.
func DefaultEmbStoreFigOpts() EmbStoreFigOpts {
	return EmbStoreFigOpts{
		Iters:   4,
		Budgets: []int{4 << 10, 64 << 20, 256 << 20, 1 << 30},
		Skews:   []float64{0.8, 1.05, 1.2},
	}
}

// QuickEmbStoreFigOpts is the CI smoke budget: same sweep shape, fewer
// iterations.
func QuickEmbStoreFigOpts() EmbStoreFigOpts {
	o := DefaultEmbStoreFigOpts()
	o.Iters = 1
	return o
}

// rank0Rows returns the row counts of the tables rank 0 owns at the given
// scale — the shard the figure's analytic hit-rate column describes (the
// round-robin layout makes every rank's shard statistically identical).
func rank0Rows(cfg core.Config, ranks int) []int {
	var rows []int
	for t := 0; t < cfg.Tables; t++ {
		if core.TableOwner(t, ranks) == 0 {
			rows = append(rows, cfg.Rows[t])
		}
	}
	return rows
}

// RunEmbStore is the tiered-parameter-store figure: virtual time per
// iteration of the Fig. 9 strong-scaling run (Large over 64 ranks, CCL
// alltoall, default bucketed+overlapped schedule) as the per-rank hot-row
// cache budget and the traffic skew sweep. The in-RAM row (budget 0) is the
// PR 9 baseline; every tiered row pays the cold tier for its miss mass, so
// a hot budget at high skew approaches — never beats — in-RAM, while a
// starved budget degenerates to streaming every batch's rows from the cold
// tier.
func RunEmbStore(o EmbStoreFigOpts) *Table {
	const ranks = 64
	cfg := core.Large
	t := &Table{
		Title: "Tiered embedding store: Fig. 9 strong scaling vs hot-cache budget x row skew " +
			"(Large, 64 ranks, CCL alltoall, cold tier " +
			fmt.Sprintf("%.0f GB/s + %.0f us)", core.DefaultColdTierBW/1e9, core.DefaultColdTierLat*1e6),
		Headers: []string{"budget", "skew", "model hit", "cold fetch ms", "cold wb ms",
			"virtual ms/iter", "vs in-RAM"},
	}
	pools := cluster.NewPools()
	defer pools.Close()
	wss := core.NewDistWorkspaces()
	run := func(budget int, skew float64) *core.DistResult {
		dc := core.DistConfig{
			Cfg:        cfg,
			Ranks:      ranks,
			GlobalN:    cfg.GlobalMB,
			Iters:      o.Iters,
			Variant:    ccl64,
			Topo:       fabric.NewPrunedFatTree(ranks, 12.5e9),
			Socket:     perfmodel.CLX8280,
			Pools:      pools,
			Workspaces: wss,
		}
		if budget > 0 {
			dc.EmbCacheBytes = budget
			dc.ColdTierBW = core.DefaultColdTierBW
			dc.EmbSkew = skew
		}
		return mustRun(dc)
	}
	humanBytes := func(b int) string {
		switch {
		case b >= 1<<30:
			return fmt.Sprintf("%d GiB", b>>30)
		case b >= 1<<20:
			return fmt.Sprintf("%d MiB", b>>20)
		default:
			return fmt.Sprintf("%d KiB", b>>10)
		}
	}
	inRAM := run(0, 0)
	t.AddRow("in-RAM", "-", "100%", "-", "-",
		fmt.Sprintf("%.2f", inRAM.IterSeconds*1e3), "1.00x")
	shard := rank0Rows(cfg, ranks)
	for _, skew := range o.Skews {
		for _, budget := range o.Budgets {
			res := run(budget, skew)
			hit := embstore.HitRate(budget, cfg.EmbDim, shard, skew)
			t.AddRow(humanBytes(budget), fmt.Sprintf("%.2f", skew),
				fmt.Sprintf("%.1f%%", hit*100),
				fmt.Sprintf("%.3f", res.PrepPerIter["coldtier"]*1e3),
				fmt.Sprintf("%.3f", res.BusyPerIter["coldtier-wb"]*1e3),
				fmt.Sprintf("%.2f", res.IterSeconds*1e3),
				fmt.Sprintf("%.2fx", res.IterSeconds/inRAM.IterSeconds))
		}
	}
	t.AddNote("model hit is the analytic Zipf head mass of a rank's shard at that budget; " +
		"cold fetch is charged before the embedding forward, the write-back drains in the background")
	t.AddNote("budget 0 (in-RAM) is bit-identical to the untiered PR 9 baseline; " +
		"the functional store's loss parity is pinned by core's TestEmbStoreLossParity")
	return t
}

// Fig9DistEmbStoreCase returns the strong-scaling headline run with a
// 256 MiB per-rank hot-row cache over the default cold tier — the workload
// behind the Fig9Strong64REmbStore benchmarks and the regression gate's
// tiered-store entry.
func Fig9DistEmbStoreCase() (core.DistConfig, func()) {
	dc, cleanup := Fig9DistCase()
	dc.EmbCacheBytes = 256 << 20
	dc.ColdTierBW = core.DefaultColdTierBW
	mustRun(dc) // re-warm: the tiered schedule adds a background write-back
	return dc, cleanup
}

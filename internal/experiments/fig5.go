package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/gemm"
	"repro/internal/par"
	"repro/internal/tensor"
)

// Fig5Opts sizes the single-socket MLP kernel comparison. The paper uses
// N=1024 and C=K ∈ {1024, 2048, 4096} on a 28-core SKX; pure-Go kernels on
// a small host want smaller defaults, which preserve the comparison's shape
// (blocked batch-reduce ≈ FB-style 2-D tiling > large unpacked GEMM).
type Fig5Opts struct {
	N       int
	Sizes   []int // C=K values
	Repeats int
}

// DefaultFig5Opts returns laptop-sized defaults.
func DefaultFig5Opts() Fig5Opts {
	return Fig5Opts{N: 256, Sizes: []int{256, 512, 1024}, Repeats: 3}
}

// RunFig5 reproduces Fig. 5: GFLOPS of the three training passes (FWD,
// BWD-by-data, BWD-by-weights) of a fully-connected layer for three
// implementations — this work's blocked batch-reduce GEMM, the FB-style
// thread-blocked GEMM, and the PyTorch/MKL-style large GEMM.
func RunFig5(o Fig5Opts) *Table {
	t := &Table{
		Title:   "Fig. 5: single-socket MLP training kernel performance (GFLOPS)",
		Headers: []string{"C=K", "pass", "this work", "FB-style", "MKL-style", "speedup vs MKL"},
	}
	pool := par.Default
	rng := rand.New(rand.NewSource(1))
	for _, ck := range o.Sizes {
		n, c, k := o.N, ck, ck
		xD := tensor.NewDense(n, c)
		xD.Randomize(rng, 1)
		wD := tensor.NewDense(k, c)
		wD.Randomize(rng, 1)
		dyD := tensor.NewDense(n, k)
		dyD.Randomize(rng, 1)

		bn, bc, bk := 16, 32, 32
		x := tensor.PackActs(xD, bn, bc)
		w := tensor.PackWeights(wD, bk, bc)
		wT := w.TransposeBlocked()
		dy := tensor.PackActs(dyD, bn, bk)
		y := tensor.NewActs(n, k, bn, bk)
		dx := tensor.NewActs(n, c, bn, bc)
		dw := tensor.NewWeights(k, c, bk, bc)
		yD := tensor.NewDense(n, k)
		dxD := tensor.NewDense(n, c)
		dwD := tensor.NewDense(k, c)

		flops := 2 * float64(n) * float64(c) * float64(k)
		gflops := func(fn func()) float64 {
			fn() // warm-up
			best := 0.0
			for r := 0; r < o.Repeats; r++ {
				start := time.Now()
				fn()
				if g := flops / time.Since(start).Seconds() / 1e9; g > best {
					best = g
				}
			}
			return best
		}

		passes := []struct {
			name             string
			blocked, fb, mkl func()
		}{
			{"FWD",
				func() { gemm.Forward(pool, w, x, y) },
				func() { gemm.FBStyleNT(pool, xD, wD, yD) },
				func() { gemm.MKLStyleNT(pool, xD, wD, yD) }},
			{"BWD_D",
				func() { gemm.BackwardData(pool, wT, dy, dx) },
				func() { gemm.FBStyleNN(pool, dyD, wD, dxD) },
				func() { gemm.MKLStyleNN(pool, dyD, wD, dxD) }},
			{"BWD_W",
				func() { gemm.BackwardWeights(pool, dy, x, dw) },
				func() { gemm.FBStyleTN(pool, dyD, xD, dwD) },
				func() { gemm.MKLStyleTN(pool, dyD, xD, dwD) }},
		}
		for _, p := range passes {
			gb := gflops(p.blocked)
			gf := gflops(p.fb)
			gm := gflops(p.mkl)
			t.AddRow(fmt.Sprint(ck), p.name,
				fmt.Sprintf("%.2f", gb), fmt.Sprintf("%.2f", gf), fmt.Sprintf("%.2f", gm),
				fmt.Sprintf("%.2fx", gb/gm))
		}
	}
	t.AddNote("paper: this-work and FB-style average 72%%/75%% of SKX peak; MKL-style 61%% (~18%% slower)")
	t.AddNote("pure-Go kernels: compare relative GFLOPS, not absolute AVX512 numbers")
	return t
}

package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/fabric"
	"repro/internal/par"
	"repro/internal/perfmodel"
)

// AblationAllreduce sweeps the allreduce algorithm over the paper's three
// gradient volumes (Table II: 9.5 MB, 1047 MB, 9.0 MB) and rank counts —
// the "best allreduce algorithm" requirement of §II made concrete: ring
// reduce-scatter+all-gather wins the bandwidth-bound regimes, recursive
// halving the latency-bound ones, and the untuned flat tree loses both.
func AblationAllreduce() *Table {
	t := &Table{
		Title: "Ablation: allreduce algorithm vs gradient volume (ms, OPA fat-tree)",
		Headers: []string{"volume", "ranks", "ring RS+AG", "recursive halving", "flat tree",
			"hierarchical", "binary tree", "best"},
	}
	vols := []struct {
		name  string
		bytes float64
	}{
		{"4 KB (latency-bound)", 4e3},
		{"9.5 MB (Small grads)", core.Small.AllreduceBytes()},
		{"1047 MB (Large grads)", core.Large.AllreduceBytes()},
	}
	for _, v := range vols {
		for _, ranks := range []int{8, 32, 64} {
			topo := fabric.NewPrunedFatTree(ranks, 12.5e9)
			var row []string
			cluster.Run(cluster.Config{Ranks: ranks, Topo: topo, Socket: perfmodel.CLX8280, CallOverhead: 1e-9},
				func(r *cluster.Rank) {
					if r.ID != 0 {
						return
					}
					c := comm.New(r, topo)
					best, _ := c.BestAllreduceAlgo(v.bytes)
					row = []string{v.name, fmt.Sprintf("%dR", ranks),
						ms(c.AllreduceTimeAlgo(comm.RingRSAG, v.bytes)),
						ms(c.AllreduceTimeAlgo(comm.RecursiveHalving, v.bytes)),
						ms(c.AllreduceTimeAlgo(comm.FlatTree, v.bytes)),
						ms(c.AllreduceTimeAlgo(comm.Hierarchical, v.bytes)),
						ms(c.AllreduceTimeAlgo(comm.BinaryTree, v.bytes)),
						best.String()}
				})
			t.AddRow(row...)
		}
	}
	return t
}

// AblationCommCores sweeps S, the number of cores per socket dedicated to
// communication (§IV-A: "we tune the value of S to balance the
// communication time in SGD and the computation time in GEMMs"), on the
// Large-config strong-scaling run. Too few comm cores leave communication
// exposed; too many starve the GEMMs.
func AblationCommCores(ranks, iters int) *Table {
	t := &Table{
		Title:   "Ablation: communication-core count S (Large config, CCL Alltoall)",
		Headers: []string{"comm cores", "compute (ms)", "comm exposed (ms)", "total (ms)"},
	}
	sw := newDistSweep()
	defer sw.close()
	for _, s := range []int{1, 2, 4, 8, 12} {
		res := mustRun(core.DistConfig{
			Cfg:        core.Large,
			Ranks:      ranks,
			GlobalN:    core.Large.GlobalMB,
			Iters:      iters,
			Variant:    core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend},
			Topo:       fabric.NewPrunedFatTree(ranks, 12.5e9),
			Socket:     perfmodel.CLX8280,
			CommCores:  s,
			Pools:      sw.pools,
			Workspaces: sw.wss,
		})
		t.AddRow(fmt.Sprint(s), ms(res.ComputePerIter), ms(res.TotalCommPerIter()), ms(res.IterSeconds))
	}
	t.AddNote("paper dedicates 4 of 28 cores; the sweet spot balances GEMM slowdown against exposed waits")
	return t
}

// AblationCapacity reproduces the §VII storage argument: bytes per weight of
// model+optimizer state for each training scheme. Split-SGD-BF16 matches
// FP32's total while FP16/BF16 master-weight schemes pay 3×16 bits.
func AblationCapacity() *Table {
	t := &Table{
		Title: "Ablation: storage per weight (model + optimizer state)",
		Headers: []string{"scheme", "working weights", "optimizer state", "total bits",
			"Large-config tables"},
	}
	tableWeights := core.Large.TableBytes() / 4 // weights count
	gb := func(bitsPerWeight float64) string {
		return fmt.Sprintf("%.0f GB", tableWeights*bitsPerWeight/8/1e9)
	}
	t.AddRow("FP32 SGD", "32b", "-", "32", gb(32))
	t.AddRow("BF16 Split-SGD", "16b (hi)", "16b (lo)", "32", gb(32))
	t.AddRow("BF16 + master weights", "16b", "32b (FP32 master)", "48", gb(48))
	t.AddRow("FP16 + master weights", "16b", "32b (FP32 master)", "48", gb(48))
	t.AddRow("FP16 stochastic (no master)", "16b", "-", "16", gb(16))
	t.AddNote("§VII: master weights cost 200%% extra on 16-bit models; Split-SGD stores the same 32 bits as FP32")
	t.AddNote("FP16-stochastic saves capacity but does not reach reference accuracy (see fig16 -quick with FP16)")
	return t
}

// AblationFusedEmbedding measures the fused backward+update against the
// two-step path (§III-A reports up to 1.6× standalone) in a real run.
func AblationFusedEmbedding(iters int) *Table {
	t := &Table{
		Title:   "Ablation: fused embedding backward+update vs two-step",
		Headers: []string{"variant", "ms/sweep"},
	}
	pool := par.Default
	rng := newRand(1)
	tab := embedding.NewTable(500_000, 64, rng, 0.01)
	batch := embedding.MakeBatch(rng, embedding.Uniform{}, 2048, 50, tab.M)
	dOut := make([]float32, 2048*64)
	for i := range dOut {
		dOut[i] = rng.Float32()
	}
	dW := make([]float32, batch.NumLookups()*64)

	twoStep := timeIt(iters, func() {
		tab.Backward(pool, batch, dOut, dW)
		tab.Update(pool, embedding.RaceFree, batch, dW, 1e-6)
	})
	fused := timeIt(iters, func() {
		tab.FusedBackwardUpdate(pool, batch, dOut, 1e-6)
	})
	t.AddRow("two-step (Alg. 2 + Alg. 4)", ms(twoStep))
	t.AddRow("fused (§III-A)", ms(fused))
	t.AddNote("paper: up to 1.6x standalone; fusing skips the NS×E gradient materialization")
	return t
}

package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// ContentionFigOpts bounds the contention figure's runs and its autotune
// section's search.
type ContentionFigOpts struct {
	// Iters is the timing length of every run (default 3).
	Iters int
	// MaxCandidates caps the autotune-under-contention search round
	// (0 = full space); the CI smoke run caps it.
	MaxCandidates int
	// Seed seeds the candidate sampling when capped.
	Seed uint64
}

// DefaultContentionFigOpts returns the full-depth figure budget.
func DefaultContentionFigOpts() ContentionFigOpts { return ContentionFigOpts{Iters: 3} }

// runDistContention is the figure's runner: explicit topology, schedule,
// contention knob, and MPI interference override.
func (sw *distSweep) runDistContention(cfg core.Config, ranks, globalN int, v core.Variant,
	topo fabric.Topology, iters int, overlap bool, bucketBytes int,
	contention bool, interference float64) *core.DistResult {
	globalN -= globalN % ranks
	return mustRun(core.DistConfig{
		Cfg:          cfg,
		Ranks:        ranks,
		GlobalN:      globalN,
		Iters:        iters,
		Variant:      v,
		Topo:         topo,
		Socket:       perfmodel.CLX8280,
		Sync:         !overlap,
		Allreduce:    comm.RingRSAG,
		BucketBytes:  bucketBytes,
		Contention:   contention,
		Interference: interference,
		Pools:        sw.pools,
		Workspaces:   sw.wss,
	})
}

// RunContentionFig is the contention-aware fabric figure: what the virtual
// cluster's collectives cost once simultaneously-in-flight operations have
// to share bottleneck links instead of each being priced against an empty
// fabric. Sections:
//
//	schedule   — flat-sync vs bucketed+overlapped, contention off/on, at the
//	             Fig. 9/12 64-rank scales: overlapping bucket allreduces on
//	             CCL channels 0-2 now pay for the shared 2:1 trunk, so the
//	             overlap win shrinks — but survives.
//	trunk      — the same pair under contention across trunk oversubscription
//	             (32 = non-blocking … 4 uplinks = 8:1) via
//	             fabric.NewPrunedFatTreeUplinks.
//	straggler  — a derated trunk (fabric.NewDegraded) under contention: a
//	             single slow cable drags every concurrent collective.
//	autotune   — core.AutotuneDistConfig with Contention on: honest link
//	             sharing shifts which schedule wins.
//	§VI-D1     — the MPI-interference artifact two ways: the paper's flat
//	             compute-inflation factor (1.3 vs off) next to the CCL
//	             link-level mechanics (contention off vs on), the same
//	             "communication interferes with the rest of the iteration"
//	             story derived from shared links instead of a constant.
func RunContentionFig(o ContentionFigOpts) *Table {
	t := &Table{
		Title: "Contention-aware fabric: concurrent collectives share bottleneck links " +
			"(Large, 64R, CCL Alltoall unless noted)",
		Headers: []string{"section", "scaling", "fabric", "schedule", "contention", "ms/iter", "delta"},
	}
	sw := newDistSweep()
	defer sw.close()
	v := core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend}
	const ranks = 64
	tree := fabric.NewPrunedFatTree(ranks, 12.5e9)

	type sched struct {
		name    string
		overlap bool
		bb      int
	}
	flatSync := sched{"flat-sync", false, core.FlatBuckets}
	bucketed := sched{"bucketed+overlapped", true, 0}

	// Section (a): schedule × contention at both Fig. 9/12 scales.
	scales := []struct {
		name    string
		globalN int
	}{
		{"strong (Fig9)", core.Large.GlobalMB},
		{"weak (Fig12)", core.Large.LocalMB * ranks},
	}
	for _, sc := range scales {
		for _, s := range []sched{flatSync, bucketed} {
			var off float64
			for _, cont := range []bool{false, true} {
				res := sw.runDistContention(core.Large, ranks, sc.globalN, v, tree,
					o.Iters, s.overlap, s.bb, cont, 0)
				delta := "-"
				if !cont {
					off = res.IterSeconds
				} else {
					delta = fmt.Sprintf("%+.1f%%", (res.IterSeconds/off-1)*100)
				}
				t.AddRow("schedule", sc.name, "2:1 trunk", s.name, onOff(cont),
					ms(res.IterSeconds), delta)
			}
		}
	}

	// Section (b): trunk oversubscription sweep, contention on.
	for _, uplinks := range []int{32, 16, 8, 4} {
		topo := fabric.NewPrunedFatTreeUplinks(ranks, 12.5e9, uplinks)
		label := fmt.Sprintf("%d uplinks (%s)", uplinks, trunkRatio(uplinks))
		var fs float64
		for _, s := range []sched{flatSync, bucketed} {
			res := sw.runDistContention(core.Large, ranks, core.Large.GlobalMB, v, topo,
				o.Iters, s.overlap, s.bb, true, 0)
			delta := "-"
			if s.name == flatSync.name {
				fs = res.IterSeconds
			} else {
				delta = fmt.Sprintf("%+.1f%%", (res.IterSeconds/fs-1)*100)
			}
			t.AddRow("trunk", "strong (Fig9)", label, s.name, "on", ms(res.IterSeconds), delta)
		}
	}

	// Section (c): straggler trunk link via fabric.NewDegraded.
	var healthy float64
	for _, factor := range []float64{1.0, 0.5, 0.25} {
		topo := fabric.Topology(tree)
		label := "healthy"
		if factor < 1 {
			factors := map[int]float64{}
			for _, id := range tree.TrunkLinks() {
				factors[id] = factor
			}
			topo = fabric.NewDegraded(tree, factors)
			label = fmt.Sprintf("trunk @ %.0f%%", factor*100)
		}
		res := sw.runDistContention(core.Large, ranks, core.Large.GlobalMB, v, topo,
			o.Iters, bucketed.overlap, bucketed.bb, true, 0)
		delta := "-"
		if factor == 1.0 {
			healthy = res.IterSeconds
		} else {
			delta = fmt.Sprintf("%+.1f%%", (res.IterSeconds/healthy-1)*100)
		}
		t.AddRow("straggler", "strong (Fig9)", label, bucketed.name, "on", ms(res.IterSeconds), delta)
	}

	// Section (d): the autotuner under contention.
	for _, sc := range scales {
		globalN := sc.globalN - sc.globalN%ranks
		base := core.DistConfig{
			Cfg:        core.Large,
			Ranks:      ranks,
			GlobalN:    globalN,
			Iters:      o.Iters,
			Variant:    v,
			Topo:       tree,
			Socket:     perfmodel.CLX8280,
			Contention: true,
			Pools:      sw.pools,
			Workspaces: sw.wss,
		}
		_, rep := core.AutotuneDistConfig(base, core.AutotuneOpts{
			FinalIters:    o.Iters,
			MaxCandidates: o.MaxCandidates,
			Seed:          o.Seed,
		})
		t.AddRow("autotune", sc.name, "2:1 trunk", "default", "on", ms(rep.BaselineSeconds), "-")
		t.AddRow("autotune", sc.name, "2:1 trunk", "tuned: "+rep.Schedule, "on", ms(rep.TunedSeconds),
			fmt.Sprintf("%+.1f%%", (rep.TunedSeconds/rep.BaselineSeconds-1)*100))
	}

	// Section (e): §VI-D1 interference, flat factor vs link-level mechanics.
	mpi := core.Variant{Strategy: core.Alltoall, Backend: cluster.MPIBackend}
	mpiOff := sw.runDistContention(core.Large, ranks, core.Large.GlobalMB, mpi, tree,
		o.Iters, bucketed.overlap, bucketed.bb, false, 1.0)
	mpiOn := sw.runDistContention(core.Large, ranks, core.Large.GlobalMB, mpi, tree,
		o.Iters, bucketed.overlap, bucketed.bb, false, 1.3)
	t.AddRow("§VI-D1", "strong (Fig9)", "2:1 trunk", "MPI overlapped, interference off", "n/a",
		ms(mpiOff.IterSeconds), "-")
	t.AddRow("§VI-D1", "strong (Fig9)", "2:1 trunk", "MPI overlapped, interference 1.3x", "n/a",
		ms(mpiOn.IterSeconds), fmt.Sprintf("%+.1f%%", (mpiOn.IterSeconds/mpiOff.IterSeconds-1)*100))
	cclOff := sw.runDistContention(core.Large, ranks, core.Large.GlobalMB, v, tree,
		o.Iters, bucketed.overlap, bucketed.bb, false, 0)
	cclOn := sw.runDistContention(core.Large, ranks, core.Large.GlobalMB, v, tree,
		o.Iters, bucketed.overlap, bucketed.bb, true, 0)
	t.AddRow("§VI-D1", "strong (Fig9)", "2:1 trunk", "CCL bucketed+overlapped", "off",
		ms(cclOff.IterSeconds), "-")
	t.AddRow("§VI-D1", "strong (Fig9)", "2:1 trunk", "CCL bucketed+overlapped", "on",
		ms(cclOn.IterSeconds), fmt.Sprintf("%+.1f%%", (cclOn.IterSeconds/cclOff.IterSeconds-1)*100))

	t.AddNote("sharing discipline: causal residual-drain — a collective pays its isolated time plus the " +
		"in-flight residual bytes of overlapping collectives on its bottleneck link (cluster.Engine.ChargeContended)")
	t.AddNote("contention off is the committed-baseline pricing (every collective against an empty fabric); " +
		"the knob defaults off so archived virtual numbers stay bit-identical")
	t.AddNote("§VI-D1 rows: the paper observes MPI communication interfering with the rest of the iteration; " +
		"the flat 1.3x factor imposes that by fiat on compute, the contention rows reproduce the same class of " +
		"slowdown from link-level mechanics on concurrent collectives")
	return t
}

// onOff renders the contention column.
func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// trunkRatio names the oversubscription of a 32-host leaf with the given
// uplink count.
func trunkRatio(uplinks int) string {
	if uplinks >= 32 {
		return "non-blocking"
	}
	return fmt.Sprintf("%d:1", 32/uplinks)
}

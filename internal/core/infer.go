package core

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/loss"
	"repro/internal/par"
	"repro/internal/tensor"
)

// Predictor is the forward-only inference path over a Model: embedding bag
// lookups, the dense forward (bottom MLP → interaction → top MLP), and the
// output sigmoid — with its own staging buffers, so a serving replica
// predicts without instantiating a Trainer (and without its optimizer and
// gradient state). The model's forward workspace and the staging rows
// follow the capacity-reuse discipline: after one pass at the largest
// batch, predictions for any batch size 1..B allocate nothing (steady
// state is pinned by the serving allocation tests).
//
// Like Trainer, a Predictor is single-threaded from the caller's view; the
// serving tier gives each replica its own Predictor over its own Model.
type Predictor struct {
	M    *Model
	Pool *par.Pool

	embOut [][]float32 // per-table bag-output staging, N×E each
}

// NewPredictor binds a model and a worker pool. The model must use BN that
// divides every batch size the caller will predict (serving replicas use
// BN=1, which accepts any micro-batch).
func NewPredictor(m *Model, pool *par.Pool) *Predictor {
	return &Predictor{M: m, Pool: pool}
}

// EmbOut returns the per-table bag-output staging rows sized for n
// samples, growing capacity monotonically. The serving path fills these —
// local tables from the replica's own shard, remote tables from the shard
// owner's — and then calls PredictDense; single-socket callers let
// PredictInto do both halves.
func (p *Predictor) EmbOut(n int) [][]float32 {
	return ensureRows(&p.embOut, p.M.Cfg.Tables, n*p.M.Cfg.EmbDim)
}

// PredictInto computes the click probabilities for mb into out (length
// mb.N). Every table must be present on the model (full replica); shard
// holders stage bag outputs themselves and use PredictDense.
func (p *Predictor) PredictInto(mb *data.MiniBatch, out []float32) {
	rows := p.EmbOut(mb.N)
	for t, tab := range p.M.Tables {
		if tab == nil {
			panic(fmt.Sprintf("core: PredictInto on a shard model missing table %d; stage bag outputs and use PredictDense", t))
		}
		tab.Forward(p.Pool, mb.Sparse[t], rows[t])
	}
	p.PredictDense(mb.Dense, rows, out)
}

// PredictDense runs the dense half of the forward — bottom MLP over the
// dense features, interaction with the staged per-table bag outputs, top
// MLP, sigmoid — writing probabilities into out (length dense.Rows). This
// is the serving entry: embOut rows for remote tables were filled by their
// shard owners before dispatch.
func (p *Predictor) PredictDense(dense *tensor.Dense, embOut [][]float32, out []float32) {
	logits := p.M.ForwardDense(p.Pool, dense, embOut)
	loss.Sigmoid(logits, out[:len(logits)])
}

package core

import (
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/mlp"
)

// forwardRedistribute switches the embedding outputs from model to data
// parallelism using the configured strategy. In functional mode it returns
// one shardN×E row-major view per table into the workspace's receive
// buffers (the data is in place when the collectives are issued; the
// handles defer only virtual time); in timing mode it returns nil outputs
// but the identical collective sequence. The handle slice is workspace
// storage reused across iterations. ch is the CCL channel hint (< 0 =
// label-hash placement).
func (dc DistConfig) forwardRedistribute(
	cm *comm.Comm, r *cluster.Rank, fn *funcState, ws *DistWorkspace,
	maxLoc, shardN int, a2aBlockBytes, scatterBlockBytes float64, ch int,
) ([][]float32, []cluster.Handle) {
	cfg := dc.Cfg
	ranks := dc.Ranks
	locT := ws.locT
	var embOut [][]float32
	if fn != nil {
		embOut = ws.embOut
	}
	handles := ws.handles[:0]

	switch dc.Variant.Strategy {
	case Alltoall:
		blockLen := 0
		var send, recv []float32
		if fn != nil {
			e := fn.cfg.EmbDim
			rowLen := shardN * e
			blockLen = maxLoc * rowLen
			send, recv = ws.a2aSendF, ws.a2aRecvF
			for dst := 0; dst < ranks; dst++ {
				for li := range locT {
					copy(send[dst*blockLen+li*rowLen:dst*blockLen+(li+1)*rowLen],
						ws.embFull[li][dst*rowLen:(dst+1)*rowLen])
				}
			}
		}
		r.Prep("alltoall", dc.Socket.StreamTime(2*a2aBlockBytes*float64(ranks), r.ComputeCores()))
		h := cm.AlltoallCostOn("alltoall", ch, send, recv, blockLen, a2aBlockBytes)
		handles = append(handles, h)
		if fn != nil {
			e := fn.cfg.EmbDim
			rowLen := shardN * e
			for src := 0; src < ranks; src++ {
				for li, t := range ws.tablesByRank[src] {
					embOut[t] = recv[src*blockLen+li*rowLen : src*blockLen+(li+1)*rowLen]
				}
			}
		}

	case ScatterList:
		for t := 0; t < cfg.Tables; t++ {
			root := TableOwner(t, ranks)
			blockLen := 0
			var send, recv []float32
			if fn != nil {
				blockLen = shardN * fn.cfg.EmbDim
				recv = ws.scRecv[t]
				if r.ID == root {
					send = ws.embFull[LocalTableIndex(t, ranks)]
				}
			}
			h := cm.ScatterCostOn("alltoall", ch, root, send, recv, blockLen, scatterBlockBytes)
			handles = append(handles, h)
			if fn != nil {
				embOut[t] = recv
			}
		}

	case FusedScatter:
		for root := 0; root < ranks; root++ {
			tabs := ws.tablesByRank[root]
			if len(tabs) == 0 {
				continue
			}
			blockLen := 0
			var send, recv []float32
			if fn != nil {
				e := fn.cfg.EmbDim
				rowLen := shardN * e
				blockLen = len(tabs) * rowLen
				recv = ws.fsRecv[root][:blockLen]
				if r.ID == root {
					// Coalesce the local tables into one buffer (the copy
					// the paper charges as framework time).
					send = ws.fsSend[:ranks*blockLen]
					for dst := 0; dst < ranks; dst++ {
						for li := range tabs {
							copy(send[dst*blockLen+li*rowLen:dst*blockLen+(li+1)*rowLen],
								ws.embFull[li][dst*rowLen:(dst+1)*rowLen])
						}
					}
				}
			}
			if r.ID == root {
				r.Prep("alltoall", dc.Socket.StreamTime(
					2*float64(len(tabs))*scatterBlockBytes*float64(ranks), r.ComputeCores()))
			}
			h := cm.ScatterCostOn("alltoall", ch, root, send, recv, blockLen,
				float64(len(tabs))*scatterBlockBytes)
			handles = append(handles, h)
			if fn != nil {
				e := fn.cfg.EmbDim
				rowLen := shardN * e
				for li, t := range tabs {
					embOut[t] = recv[li*rowLen : (li+1)*rowLen]
				}
			}
		}
	}
	ws.handles = handles
	return embOut, handles
}

// backwardRedistribute sends each table's output gradients back to the
// owning rank (data → model parallel), assembling the full-global-minibatch
// gradient rows of every owned table into ws.dOutFull (indexed by local
// table position). This is the synchronous schedule: every collective is
// waited where issued (waitEach), which is what the paper's instrumented
// runs measure; the overlapped pipeline calls the Issue/Finish halves
// directly with compute in between.
func (dc DistConfig) backwardRedistribute(
	cm *comm.Comm, r *cluster.Rank, fn *funcState, ws *DistWorkspace,
	maxLoc, shardN int, dEmb [][]float32, a2aBlockBytes, scatterBlockBytes float64,
) {
	dc.backwardRedistributeIssue(cm, r, fn, ws, maxLoc, shardN, dEmb, a2aBlockBytes, scatterBlockBytes, -1, true)
	dc.backwardRedistributeFinish(r, fn, ws, shardN)
}

// backwardRedistributeIssue stages the send buffers and issues every
// collective of the strategy onto CCL channel ch, recording the handles in
// ws.bwdHandles. With waitEach each collective is waited immediately (the
// synchronous schedule: under per-channel FIFO, issue-wait-issue-wait and
// issue-issue-wait-wait charge different queueing, so the sync path must
// keep its interleaving); without it the handles stay pending for
// backwardRedistributeFinish, and the data is already moved when each issue
// returns (the rendezvous is synchronous — only virtual time is deferred),
// so the compute that follows — the bottom-MLP backward — hides the
// collectives' modeled duration.
func (dc DistConfig) backwardRedistributeIssue(
	cm *comm.Comm, r *cluster.Rank, fn *funcState, ws *DistWorkspace,
	maxLoc, shardN int, dEmb [][]float32, a2aBlockBytes, scatterBlockBytes float64, ch int, waitEach bool,
) {
	cfg := dc.Cfg
	ranks := dc.Ranks
	handles := ws.bwdHandles[:0]

	switch dc.Variant.Strategy {
	case Alltoall:
		blockLen := 0
		var send, recv []float32
		if fn != nil {
			e := fn.cfg.EmbDim
			rowLen := shardN * e
			blockLen = maxLoc * rowLen
			send, recv = ws.a2aSendB, ws.a2aRecvB
			for dst := 0; dst < ranks; dst++ {
				for li, t := range ws.tablesByRank[dst] {
					copy(send[dst*blockLen+li*rowLen:dst*blockLen+(li+1)*rowLen], dEmb[t])
				}
			}
		}
		r.Prep("alltoall", dc.Socket.StreamTime(2*a2aBlockBytes*float64(ranks), r.ComputeCores()))
		h := cm.AlltoallCostOn("alltoall", ch, send, recv, blockLen, a2aBlockBytes)
		if waitEach {
			r.Wait(h)
		}
		handles = append(handles, h)

	case ScatterList:
		for t := 0; t < cfg.Tables; t++ {
			root := TableOwner(t, ranks)
			var send, recv []float32
			if fn != nil {
				send = dEmb[t]
				if r.ID == root {
					// A gather concatenates shard rows in rank order, which
					// is exactly the assembled full-batch layout.
					recv = ws.dOutFull[LocalTableIndex(t, ranks)]
				}
			}
			h := cm.GatherCostOn("alltoall", ch, root, send, recv, scatterBlockBytes)
			if waitEach {
				r.Wait(h)
			}
			handles = append(handles, h)
		}

	case FusedScatter:
		for root := 0; root < ranks; root++ {
			tabs := ws.tablesByRank[root]
			if len(tabs) == 0 {
				continue
			}
			var send, recv []float32
			if fn != nil {
				e := fn.cfg.EmbDim
				rowLen := shardN * e
				send = ws.gaSend[:len(tabs)*rowLen]
				for li, t := range tabs {
					copy(send[li*rowLen:(li+1)*rowLen], dEmb[t])
				}
				if r.ID == root {
					recv = ws.gaRecv[:ranks*len(tabs)*rowLen]
				}
			}
			h := cm.GatherCostOn("alltoall", ch, root, send, recv,
				float64(len(tabs))*scatterBlockBytes)
			if waitEach {
				r.Wait(h)
			}
			handles = append(handles, h)
		}
	}
	ws.bwdHandles = handles
}

// backwardRedistributeFinish waits out the handles issued by
// backwardRedistributeIssue — the redistribution's latest consumer is the
// embedding update that follows — and assembles the received gradient rows
// into ws.dOutFull for the strategies whose receive layout needs it.
func (dc DistConfig) backwardRedistributeFinish(
	r *cluster.Rank, fn *funcState, ws *DistWorkspace, shardN int,
) {
	for _, h := range ws.bwdHandles {
		r.Wait(h)
	}
	if fn == nil {
		return
	}
	ranks := dc.Ranks
	e := fn.cfg.EmbDim
	rowLen := shardN * e

	switch dc.Variant.Strategy {
	case Alltoall:
		blockLen := MaxLocalTables(dc.Cfg, ranks) * rowLen
		recv := ws.a2aRecvB
		for li := range ws.locT {
			full := ws.dOutFull[li]
			for src := 0; src < ranks; src++ {
				copy(full[src*rowLen:(src+1)*rowLen],
					recv[src*blockLen+li*rowLen:src*blockLen+(li+1)*rowLen])
			}
		}

	case ScatterList:
		// The gathers landed directly in ws.dOutFull; nothing to assemble.

	case FusedScatter:
		tabs := ws.locT
		if len(tabs) == 0 {
			return
		}
		recv := ws.gaRecv[:ranks*len(tabs)*rowLen]
		blockLen := len(tabs) * rowLen
		for li := range tabs {
			full := ws.dOutFull[li]
			for src := 0; src < ranks; src++ {
				copy(full[src*rowLen:(src+1)*rowLen],
					recv[src*blockLen+li*rowLen:src*blockLen+(li+1)*rowLen])
			}
		}
	}
}

// mlpGradLen returns the flat length of all gradient tensors of m.
func mlpGradLen(m *mlp.MLP) int {
	n := 0
	m.VisitGrads(func(_ string, g []float32) { n += len(g) })
	return n
}

// flattenGrads copies every gradient tensor of m into buf sequentially.
func flattenGrads(m *mlp.MLP, buf []float32) {
	off := 0
	m.VisitGrads(func(_ string, g []float32) {
		copy(buf[off:off+len(g)], g)
		off += len(g)
	})
}

// unflattenGradsAndStep writes the (reduced) flat gradients back into m and
// applies one SGD step.
func unflattenGradsAndStep(m *mlp.MLP, buf []float32, lr float32) {
	off := 0
	m.VisitGrads(func(_ string, g []float32) {
		copy(g, buf[off:off+len(g)])
		off += len(g)
	})
	m.Step(lr)
}

package core

import (
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/mlp"
)

// forwardRedistribute switches the embedding outputs from model to data
// parallelism using the configured strategy. In functional mode it returns
// one shardN×E row-major view per table into the workspace's receive
// buffers (the data is in place when the collectives are issued; the
// handles defer only virtual time); in timing mode it returns nil outputs
// but the identical collective sequence. The handle slice is workspace
// storage reused across iterations.
func (dc DistConfig) forwardRedistribute(
	cm *comm.Comm, r *cluster.Rank, fn *funcState, ws *DistWorkspace,
	maxLoc, shardN int, a2aBlockBytes, scatterBlockBytes float64,
) ([][]float32, []cluster.Handle) {
	cfg := dc.Cfg
	ranks := dc.Ranks
	locT := ws.locT
	var embOut [][]float32
	if fn != nil {
		embOut = ws.embOut
	}
	handles := ws.handles[:0]

	switch dc.Variant.Strategy {
	case Alltoall:
		blockLen := 0
		var send, recv []float32
		if fn != nil {
			e := fn.cfg.EmbDim
			rowLen := shardN * e
			blockLen = maxLoc * rowLen
			send, recv = ws.a2aSendF, ws.a2aRecvF
			for dst := 0; dst < ranks; dst++ {
				for li := range locT {
					copy(send[dst*blockLen+li*rowLen:dst*blockLen+(li+1)*rowLen],
						ws.embFull[li][dst*rowLen:(dst+1)*rowLen])
				}
			}
		}
		r.Prep("alltoall", dc.Socket.StreamTime(2*a2aBlockBytes*float64(ranks), r.ComputeCores()))
		h := cm.AlltoallCost("alltoall", send, recv, blockLen, a2aBlockBytes)
		handles = append(handles, h)
		if fn != nil {
			e := fn.cfg.EmbDim
			rowLen := shardN * e
			for src := 0; src < ranks; src++ {
				for li, t := range ws.tablesByRank[src] {
					embOut[t] = recv[src*blockLen+li*rowLen : src*blockLen+(li+1)*rowLen]
				}
			}
		}

	case ScatterList:
		for t := 0; t < cfg.Tables; t++ {
			root := TableOwner(t, ranks)
			blockLen := 0
			var send, recv []float32
			if fn != nil {
				blockLen = shardN * fn.cfg.EmbDim
				recv = ws.scRecv[t]
				if r.ID == root {
					send = ws.embFull[LocalTableIndex(t, ranks)]
				}
			}
			h := cm.ScatterCost("alltoall", root, send, recv, blockLen, scatterBlockBytes)
			handles = append(handles, h)
			if fn != nil {
				embOut[t] = recv
			}
		}

	case FusedScatter:
		for root := 0; root < ranks; root++ {
			tabs := ws.tablesByRank[root]
			if len(tabs) == 0 {
				continue
			}
			blockLen := 0
			var send, recv []float32
			if fn != nil {
				e := fn.cfg.EmbDim
				rowLen := shardN * e
				blockLen = len(tabs) * rowLen
				recv = ws.fsRecv[root][:blockLen]
				if r.ID == root {
					// Coalesce the local tables into one buffer (the copy
					// the paper charges as framework time).
					send = ws.fsSend[:ranks*blockLen]
					for dst := 0; dst < ranks; dst++ {
						for li := range tabs {
							copy(send[dst*blockLen+li*rowLen:dst*blockLen+(li+1)*rowLen],
								ws.embFull[li][dst*rowLen:(dst+1)*rowLen])
						}
					}
				}
			}
			if r.ID == root {
				r.Prep("alltoall", dc.Socket.StreamTime(
					2*float64(len(tabs))*scatterBlockBytes*float64(ranks), r.ComputeCores()))
			}
			h := cm.ScatterCost("alltoall", root, send, recv, blockLen,
				float64(len(tabs))*scatterBlockBytes)
			handles = append(handles, h)
			if fn != nil {
				e := fn.cfg.EmbDim
				rowLen := shardN * e
				for li, t := range tabs {
					embOut[t] = recv[li*rowLen : (li+1)*rowLen]
				}
			}
		}
	}
	ws.handles = handles
	return embOut, handles
}

// backwardRedistribute sends each table's output gradients back to the
// owning rank (data → model parallel), assembling the full-global-minibatch
// gradient rows of every owned table into ws.dOutFull (indexed by local
// table position).
func (dc DistConfig) backwardRedistribute(
	cm *comm.Comm, r *cluster.Rank, fn *funcState, ws *DistWorkspace,
	maxLoc, shardN int, dEmb [][]float32, a2aBlockBytes, scatterBlockBytes float64,
) {
	cfg := dc.Cfg
	ranks := dc.Ranks
	locT := ws.locT

	switch dc.Variant.Strategy {
	case Alltoall:
		blockLen := 0
		var send, recv []float32
		if fn != nil {
			e := fn.cfg.EmbDim
			rowLen := shardN * e
			blockLen = maxLoc * rowLen
			send, recv = ws.a2aSendB, ws.a2aRecvB
			for dst := 0; dst < ranks; dst++ {
				for li, t := range ws.tablesByRank[dst] {
					copy(send[dst*blockLen+li*rowLen:dst*blockLen+(li+1)*rowLen], dEmb[t])
				}
			}
		}
		r.Prep("alltoall", dc.Socket.StreamTime(2*a2aBlockBytes*float64(ranks), r.ComputeCores()))
		h := cm.AlltoallCost("alltoall", send, recv, blockLen, a2aBlockBytes)
		r.Wait(h)
		if fn != nil {
			e := fn.cfg.EmbDim
			rowLen := shardN * e
			for li := range locT {
				full := ws.dOutFull[li]
				for src := 0; src < ranks; src++ {
					copy(full[src*rowLen:(src+1)*rowLen],
						recv[src*blockLen+li*rowLen:src*blockLen+(li+1)*rowLen])
				}
			}
		}

	case ScatterList:
		for t := 0; t < cfg.Tables; t++ {
			root := TableOwner(t, ranks)
			var send, recv []float32
			if fn != nil {
				send = dEmb[t]
				if r.ID == root {
					// A gather concatenates shard rows in rank order, which
					// is exactly the assembled full-batch layout.
					recv = ws.dOutFull[LocalTableIndex(t, ranks)]
				}
			}
			h := cm.GatherCost("alltoall", root, send, recv, scatterBlockBytes)
			r.Wait(h)
		}

	case FusedScatter:
		for root := 0; root < ranks; root++ {
			tabs := ws.tablesByRank[root]
			if len(tabs) == 0 {
				continue
			}
			var send, recv []float32
			if fn != nil {
				e := fn.cfg.EmbDim
				rowLen := shardN * e
				send = ws.gaSend[:len(tabs)*rowLen]
				for li, t := range tabs {
					copy(send[li*rowLen:(li+1)*rowLen], dEmb[t])
				}
				if r.ID == root {
					recv = ws.gaRecv[:ranks*len(tabs)*rowLen]
				}
			}
			h := cm.GatherCost("alltoall", root, send, recv,
				float64(len(tabs))*scatterBlockBytes)
			r.Wait(h)
			if fn != nil && r.ID == root {
				e := fn.cfg.EmbDim
				rowLen := shardN * e
				blockLen := len(tabs) * rowLen
				for li := range tabs {
					full := ws.dOutFull[li]
					for src := 0; src < ranks; src++ {
						copy(full[src*rowLen:(src+1)*rowLen],
							recv[src*blockLen+li*rowLen:src*blockLen+(li+1)*rowLen])
					}
				}
			}
		}
	}
}

// mlpGradLen returns the flat length of all gradient tensors of m.
func mlpGradLen(m *mlp.MLP) int {
	n := 0
	m.VisitGrads(func(_ string, g []float32) { n += len(g) })
	return n
}

// flattenGrads copies every gradient tensor of m into buf sequentially.
func flattenGrads(m *mlp.MLP, buf []float32) {
	off := 0
	m.VisitGrads(func(_ string, g []float32) {
		copy(buf[off:off+len(g)], g)
		off += len(g)
	})
}

// unflattenGradsAndStep writes the (reduced) flat gradients back into m and
// applies one SGD step.
func unflattenGradsAndStep(m *mlp.MLP, buf []float32, lr float32) {
	off := 0
	m.VisitGrads(func(_ string, g []float32) {
		copy(g, buf[off:off+len(g)])
		off += len(g)
	})
	m.Step(lr)
}

package core

import (
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/mlp"
)

// forwardRedistribute switches the embedding outputs from model to data
// parallelism using the configured strategy. In functional mode it returns
// one shardN×E row-major slice per table (valid after the handles complete);
// in timing mode it returns nil outputs but the identical collective
// sequence.
func (dc DistConfig) forwardRedistribute(
	cm *comm.Comm, r *cluster.Rank, fn *funcState,
	locT []int, maxLoc, shardN int, embFull map[int][]float32,
	a2aBlockBytes, scatterBlockBytes float64,
) ([][]float32, []*cluster.Handle) {
	cfg := dc.Cfg
	ranks := dc.Ranks
	var embOut [][]float32
	if fn != nil {
		embOut = make([][]float32, cfg.Tables)
	}
	var handles []*cluster.Handle

	switch dc.Variant.Strategy {
	case Alltoall:
		blockLen := 0
		var send []float32
		if fn != nil {
			e := fn.cfg.EmbDim
			rowBytes := shardN * e
			blockLen = maxLoc * rowBytes
			send = make([]float32, ranks*blockLen)
			for dst := 0; dst < ranks; dst++ {
				for li, t := range locT {
					copy(send[dst*blockLen+li*rowBytes:dst*blockLen+(li+1)*rowBytes],
						embFull[t][dst*rowBytes:(dst+1)*rowBytes])
				}
			}
		}
		r.Prep("alltoall", dc.Socket.StreamTime(2*a2aBlockBytes*float64(ranks), r.ComputeCores()))
		recv, h := cm.AlltoallCost("alltoall", send, blockLen, a2aBlockBytes)
		handles = append(handles, h)
		if fn != nil {
			e := fn.cfg.EmbDim
			rowBytes := shardN * e
			for src := 0; src < ranks; src++ {
				for li, t := range LocalTables(cfg, src, ranks) {
					embOut[t] = recv[src*blockLen+li*rowBytes : src*blockLen+(li+1)*rowBytes]
				}
			}
		}

	case ScatterList:
		for t := 0; t < cfg.Tables; t++ {
			root := TableOwner(t, ranks)
			blockLen := 0
			var send []float32
			if fn != nil {
				blockLen = shardN * fn.cfg.EmbDim
				if r.ID == root {
					send = embFull[t]
				}
			}
			blk, h := cm.ScatterCost("alltoall", root, send, blockLen, scatterBlockBytes)
			handles = append(handles, h)
			if fn != nil {
				embOut[t] = blk
			}
		}

	case FusedScatter:
		for root := 0; root < ranks; root++ {
			tabs := LocalTables(cfg, root, ranks)
			if len(tabs) == 0 {
				continue
			}
			blockLen := 0
			var send []float32
			if fn != nil {
				e := fn.cfg.EmbDim
				rowBytes := shardN * e
				blockLen = len(tabs) * rowBytes
				if r.ID == root {
					// Coalesce the local tables into one buffer (the copy
					// the paper charges as framework time).
					send = make([]float32, ranks*blockLen)
					for dst := 0; dst < ranks; dst++ {
						for li, t := range tabs {
							copy(send[dst*blockLen+li*rowBytes:dst*blockLen+(li+1)*rowBytes],
								embFull[t][dst*rowBytes:(dst+1)*rowBytes])
						}
					}
				}
			}
			if r.ID == root {
				r.Prep("alltoall", dc.Socket.StreamTime(
					2*float64(len(tabs))*scatterBlockBytes*float64(ranks), r.ComputeCores()))
			}
			blk, h := cm.ScatterCost("alltoall", root, send, blockLen,
				float64(len(tabs))*scatterBlockBytes)
			handles = append(handles, h)
			if fn != nil {
				e := fn.cfg.EmbDim
				rowBytes := shardN * e
				for li, t := range tabs {
					embOut[t] = blk[li*rowBytes : (li+1)*rowBytes]
				}
			}
		}
	}
	return embOut, handles
}

// backwardRedistribute sends each table's output gradients back to the
// owning rank (data → model parallel) and returns, for owned tables, the
// assembled full-global-minibatch gradient rows.
func (dc DistConfig) backwardRedistribute(
	cm *comm.Comm, r *cluster.Rank, fn *funcState,
	locT []int, maxLoc, shardN int, dEmb [][]float32,
	a2aBlockBytes, scatterBlockBytes float64,
) map[int][]float32 {
	cfg := dc.Cfg
	ranks := dc.Ranks
	var dOutFull map[int][]float32
	if fn != nil {
		dOutFull = map[int][]float32{}
	}

	switch dc.Variant.Strategy {
	case Alltoall:
		blockLen := 0
		var send []float32
		if fn != nil {
			e := fn.cfg.EmbDim
			rowBytes := shardN * e
			blockLen = maxLoc * rowBytes
			send = make([]float32, ranks*blockLen)
			for dst := 0; dst < ranks; dst++ {
				for li, t := range LocalTables(cfg, dst, ranks) {
					copy(send[dst*blockLen+li*rowBytes:dst*blockLen+(li+1)*rowBytes], dEmb[t])
				}
			}
		}
		r.Prep("alltoall", dc.Socket.StreamTime(2*a2aBlockBytes*float64(ranks), r.ComputeCores()))
		recv, h := cm.AlltoallCost("alltoall", send, blockLen, a2aBlockBytes)
		r.Wait(h)
		if fn != nil {
			e := fn.cfg.EmbDim
			rowBytes := shardN * e
			for li, t := range locT {
				full := make([]float32, dc.GlobalN*e)
				for src := 0; src < ranks; src++ {
					copy(full[src*rowBytes:(src+1)*rowBytes],
						recv[src*blockLen+li*rowBytes:src*blockLen+(li+1)*rowBytes])
				}
				dOutFull[t] = full
			}
		}

	case ScatterList:
		for t := 0; t < cfg.Tables; t++ {
			root := TableOwner(t, ranks)
			var send []float32
			if fn != nil {
				send = dEmb[t]
			}
			full, h := cm.GatherCost("alltoall", root, send, scatterBlockBytes)
			r.Wait(h)
			if fn != nil && r.ID == root {
				dOutFull[t] = full
			}
		}

	case FusedScatter:
		for root := 0; root < ranks; root++ {
			tabs := LocalTables(cfg, root, ranks)
			if len(tabs) == 0 {
				continue
			}
			var send []float32
			if fn != nil {
				e := fn.cfg.EmbDim
				rowBytes := shardN * e
				send = make([]float32, len(tabs)*rowBytes)
				for li, t := range tabs {
					copy(send[li*rowBytes:(li+1)*rowBytes], dEmb[t])
				}
			}
			full, h := cm.GatherCost("alltoall", root, send,
				float64(len(tabs))*scatterBlockBytes)
			r.Wait(h)
			if fn != nil && r.ID == root {
				e := fn.cfg.EmbDim
				rowBytes := shardN * e
				blockLen := len(tabs) * rowBytes
				for li, t := range tabs {
					fullT := make([]float32, dc.GlobalN*e)
					for src := 0; src < ranks; src++ {
						copy(fullT[src*rowBytes:(src+1)*rowBytes],
							full[src*blockLen+li*rowBytes:src*blockLen+(li+1)*rowBytes])
					}
					dOutFull[t] = fullT
				}
			}
		}
	}
	return dOutFull
}

// mlpGradLen returns the flat length of all gradient tensors of m.
func mlpGradLen(m *mlp.MLP) int {
	n := 0
	m.VisitGrads(func(_ string, g []float32) { n += len(g) })
	return n
}

// flattenGrads copies every gradient tensor of m into buf sequentially.
func flattenGrads(m *mlp.MLP, buf []float32) {
	off := 0
	m.VisitGrads(func(_ string, g []float32) {
		copy(buf[off:off+len(g)], g)
		off += len(g)
	})
}

// unflattenGradsAndStep writes the (reduced) flat gradients back into m and
// applies one SGD step.
func unflattenGradsAndStep(m *mlp.MLP, buf []float32, lr float32) {
	off := 0
	m.VisitGrads(func(_ string, g []float32) {
		copy(g, buf[off:off+len(g)])
		off += len(g)
	})
	m.Step(lr)
}

// Tests for the tiered embedding parameter store wired through the
// distributed trainer: functional loss parity vs the in-RAM path at every
// strategy × backend combination, monotone timing in the cache budget and
// skew, and the zero-allocation convention for the tiered timing schedule.
package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/embstore"
)

// TestEmbStoreLossParity: routing the embedding forward and SGD write-back
// through the tiered store must not move a single bit of the functional
// math — at an eviction-heavy budget and at an everything-resident budget,
// for every strategy × backend combination, the mean shard loss matches the
// single-socket trainer at 1e-6 and the trained owned tables are
// bit-identical to the untiered distributed run.
func TestEmbStoreLossParity(t *testing.T) {
	cfg := tinyConfig()
	const globalN, iters = 64, 3
	_, ref := trainSingle(cfg, globalN, iters, 17, 0.5)
	rowBytes := 4*cfg.EmbDim + embstore.RowOverheadBytes

	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	for _, v := range Variants {
		for _, ranks := range []int{2, 4} {
			base := distTestConfig(cfg, ranks, globalN, iters, v, true)
			base.Pools = pools
			base.Workspaces = wss
			untiered := RunDistributed(base)
			for _, budget := range []int{8 * rowBytes, 1 << 20} {
				dc := base
				dc.EmbCacheBytes = budget
				dc.ColdTierBW = DefaultColdTierBW
				res := RunDistributed(dc)
				for it := 0; it < iters; it++ {
					var mean float64
					for rk := 0; rk < ranks; rk++ {
						if res.Losses[rk][it] != untiered.Losses[rk][it] {
							t.Errorf("%s R=%d budget=%d rank %d iter %d: tiered loss %v != untiered %v",
								v.Name(), ranks, budget, rk, it, res.Losses[rk][it], untiered.Losses[rk][it])
						}
						mean += res.Losses[rk][it]
					}
					mean /= float64(ranks)
					if d := math.Abs(mean - ref[it]); d > 1e-6 {
						t.Errorf("%s R=%d budget=%d iter %d: loss %v vs single-socket %v (|Δ|=%g > 1e-6)",
							v.Name(), ranks, budget, it, mean, ref[it], d)
					}
				}
				for rk := 0; rk < ranks; rk++ {
					for tb := 0; tb < cfg.Tables; tb++ {
						if TableOwner(tb, ranks) != rk {
							continue
						}
						a, b := res.Models[rk].Tables[tb].W, untiered.Models[rk].Tables[tb].W
						for i := range a {
							if a[i] != b[i] {
								t.Fatalf("%s R=%d budget=%d: table %d weight %d diverges: %v vs %v",
									v.Name(), ranks, budget, tb, i, a[i], b[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestEmbStoreLossParityDefaultSchedule repeats the parity check under the
// bucketed+overlapped default schedule (the store's flush points interleave
// with deferred waits there).
func TestEmbStoreLossParityDefaultSchedule(t *testing.T) {
	cfg := tinyConfig()
	const globalN, iters, ranks = 64, 3, 4
	_, ref := trainSingle(cfg, globalN, iters, 17, 0.5)
	dc := distTestConfig(cfg, ranks, globalN, iters, Variant{Alltoall, cluster.CCLBackend}, true)
	dc.Sync = false
	dc.BucketBytes = 0
	dc.EmbCacheBytes = 8 * (4*cfg.EmbDim + embstore.RowOverheadBytes)
	dc.ColdTierBW = DefaultColdTierBW
	res := RunDistributed(dc)
	for it := 0; it < iters; it++ {
		var mean float64
		for rk := 0; rk < ranks; rk++ {
			mean += res.Losses[rk][it]
		}
		mean /= float64(ranks)
		if d := math.Abs(mean - ref[it]); d > 1e-6 {
			t.Errorf("default schedule iter %d: loss %v vs single-socket %v (|Δ|=%g > 1e-6)", it, mean, ref[it], d)
		}
	}
}

// TestEmbStoreTimingMonotone pins the shape of the cost model the figure
// sweeps: a bigger hot budget strictly beats an all-cold-tier budget on
// virtual time, budgets never make iterations slower as they grow, hotter
// skew never makes them slower at a fixed budget, and the tiered run always
// carries the "coldtier"/"coldtier-wb" charges the untiered one lacks.
func TestEmbStoreTimingMonotone(t *testing.T) {
	run := func(budget int, skew float64) *DistResult {
		dc := distTestConfig(Small, 4, Small.GlobalMB, 2, Variant{Alltoall, cluster.CCLBackend}, false)
		dc.EmbCacheBytes = budget
		if budget > 0 {
			dc.ColdTierBW = DefaultColdTierBW
			dc.EmbSkew = skew
		}
		return RunDistributed(dc)
	}
	inRAM := run(0, 0)
	budgets := []int{4 << 10, 16 << 20, 64 << 20, 1 << 30}
	var prev float64
	for i, b := range budgets {
		res := run(b, 1.05)
		if res.PrepPerIter["coldtier"] <= 0 {
			t.Errorf("budget=%d: no coldtier fetch charged", b)
		}
		if res.BusyPerIter["coldtier-wb"] <= 0 {
			t.Errorf("budget=%d: no coldtier write-back charged", b)
		}
		if res.IterSeconds <= inRAM.IterSeconds {
			t.Errorf("budget=%d: tiered %v s/iter not slower than in-RAM %v", b, res.IterSeconds, inRAM.IterSeconds)
		}
		if i > 0 && res.IterSeconds > prev {
			t.Errorf("budget=%d: %v s/iter slower than smaller budget's %v", b, res.IterSeconds, prev)
		}
		prev = res.IterSeconds
	}
	if hot, cold := run(1<<30, 1.05), run(4<<10, 1.05); hot.IterSeconds >= cold.IterSeconds {
		t.Errorf("hot budget %v s/iter does not beat all-cold %v", hot.IterSeconds, cold.IterSeconds)
	}
	prev = math.Inf(1)
	for _, skew := range []float64{0.8, 1.05, 1.2} {
		res := run(64<<20, skew)
		if res.IterSeconds > prev {
			t.Errorf("skew=%v: %v s/iter slower than lower skew's %v", skew, res.IterSeconds, prev)
		}
		prev = res.IterSeconds
	}
}

// TestDistributedStepZeroAllocsEmbStore extends the repo's allocation
// convention to the tiered timing schedule: the per-iteration coldtier
// fetch, the background write-back wait/Async pair, and the analytic
// hit-rate scalars must add no steady-state allocations under either
// pipeline schedule.
func TestDistributedStepZeroAllocsEmbStore(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	v := Variant{Strategy: Alltoall, Backend: cluster.CCLBackend}
	for _, overlap := range []bool{false, true} {
		pools := cluster.NewPools()
		wss := NewDistWorkspaces()
		const ranks = 4
		run := func(iters int) func() {
			dc := distTestConfig(Small, ranks, Small.GlobalMB, iters, v, false)
			dc.Pools = pools
			dc.Workspaces = wss
			dc.Sync = !overlap
			dc.BucketBytes = FlatBuckets
			dc.EmbCacheBytes = 64 << 20
			dc.ColdTierBW = DefaultColdTierBW
			return func() { RunDistributed(dc) }
		}
		const short, long = 2, 12
		run(long)() // warmup: sizes workspaces, fills slot/sudog pools
		aShort := testing.AllocsPerRun(5, run(short))
		aLong := testing.AllocsPerRun(5, run(long))
		if got := (aLong - aShort) / float64(long-short); got != 0 {
			t.Errorf("overlap=%v embstore: %v allocs per steady-state iteration, want 0", overlap, got)
		}
		pools.Close()
	}
}

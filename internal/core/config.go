package core

import (
	"fmt"

	"repro/internal/data"
)

// Config is one DLRM model specification following Table I of the paper.
// The bottom MLP is [DenseIn, BotHidden..., EmbDim] (its output must match
// the embedding dimension so the dot interaction is well formed); the top
// MLP is [InterDim(), TopHidden..., 1].
type Config struct {
	Name string

	MB       int // single-socket minibatch N
	GlobalMB int // GN for strong scaling
	LocalMB  int // LN for weak scaling

	Lookups int   // P, average look-ups per table
	Tables  int   // S
	EmbDim  int   // E
	Rows    []int // per-table row counts M (paper scale)

	DenseIn   int
	BotHidden []int
	TopHidden []int

	// ConcatInteraction selects the simple concat op instead of the default
	// self dot product (§II lists both).
	ConcatInteraction bool
}

// uniformRows returns n copies of m.
func uniformRows(n, m int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = m
	}
	return rows
}

// Small is the model problem from DLRM's release paper (Table I, column 1).
var Small = Config{
	Name:     "Small",
	MB:       2048,
	GlobalMB: 8192,
	LocalMB:  1024,
	Lookups:  50,
	Tables:   8,
	EmbDim:   64,
	Rows:     uniformRows(8, 1_000_000),
	DenseIn:  512,
	// 2 bottom layers: 512→512, 512→64.
	BotHidden: []int{512},
	// 4 top layers: 100→1024, 1024→1024, 1024→1024, 1024→1.
	TopHidden: []int{1024, 1024, 1024},
}

// Large is the Small problem scaled in every aspect for scale-out runs
// (Table I, column 2).
var Large = Config{
	Name:     "Large",
	MB:       0, // needs ≥4 sockets; no single-socket runs
	GlobalMB: 16384,
	LocalMB:  512,
	Lookups:  100,
	Tables:   64,
	EmbDim:   256,
	Rows:     uniformRows(64, 6_000_000),
	DenseIn:  2048,
	// 8 bottom layers: 7×(…→2048) then 2048→256.
	BotHidden: []int{2048, 2048, 2048, 2048, 2048, 2048, 2048},
	// 16 top layers: 15×(…→4096) then 4096→1.
	TopHidden: []int{4096, 4096, 4096, 4096, 4096, 4096, 4096, 4096,
		4096, 4096, 4096, 4096, 4096, 4096, 4096},
}

// MLPerf is the benchmark configuration proposed to MLPerf (Table I, column
// 3), sized for the Criteo Terabyte dataset.
var MLPerf = Config{
	Name:     "MLPerf",
	MB:       2048,
	GlobalMB: 16384,
	LocalMB:  2048,
	Lookups:  1,
	Tables:   26,
	EmbDim:   128,
	Rows:     data.CriteoTBRows,
	DenseIn:  13,
	// Bottom 512-256-128 (ends at E=128).
	BotHidden: []int{512, 256},
	// Top 512-512-256-1.
	TopHidden: []int{512, 512, 256},
}

// Configs lists the three Table I configurations.
var Configs = []Config{Small, Large, MLPerf}

// BotSizes returns the bottom MLP layer sizes including input and output.
func (c Config) BotSizes() []int {
	s := append([]int{c.DenseIn}, c.BotHidden...)
	return append(s, c.EmbDim)
}

// InterDim returns the interaction output width: E + (S+1)·S/2 for the dot
// op, (S+1)·E for concat.
func (c Config) InterDim() int {
	if c.ConcatInteraction {
		return (c.Tables + 1) * c.EmbDim
	}
	return c.EmbDim + (c.Tables+1)*c.Tables/2
}

// TopSizes returns the top MLP layer sizes including input and output.
func (c Config) TopSizes() []int {
	s := append([]int{c.InterDim()}, c.TopHidden...)
	return append(s, 1)
}

// TableBytes returns the memory needed by all embedding tables (FP32),
// Table II row 1.
func (c Config) TableBytes() float64 {
	var rows float64
	for _, m := range c.Rows {
		rows += float64(m)
	}
	return rows * float64(c.EmbDim) * 4
}

// MinSockets returns the minimum socket count to fit the tables given the
// per-socket memory capacity in bytes (Table II row 2; the paper's sockets
// hold 192 GB).
func (c Config) MinSockets(capBytes float64) int {
	need := int((c.TableBytes() + capBytes - 1) / capBytes)
	if need < 1 {
		need = 1
	}
	return need
}

// MaxRanks returns the largest usable rank count: pure model parallelism
// over tables caps scaling at S ranks (Table II row 3).
func (c Config) MaxRanks() int { return c.Tables }

// MLPParams returns the total parameter count of both MLPs: Σ_l f_i·f_o+f_o
// (Eq. 1). AllreduceBytes is 4× this, Table II row 4.
func (c Config) MLPParams() int {
	count := 0
	for _, sizes := range [][]int{c.BotSizes(), c.TopSizes()} {
		for i := 0; i+1 < len(sizes); i++ {
			count += sizes[i]*sizes[i+1] + sizes[i+1]
		}
	}
	return count
}

// AllreduceBytes returns the per-rank allreduce volume in bytes (Eq. 1 × 4).
func (c Config) AllreduceBytes() float64 { return 4 * float64(c.MLPParams()) }

// AlltoallBytes returns the total alltoall volume across all ranks for a
// global minibatch of n (Eq. 2 × 4 bytes): S·N·E.
func (c Config) AlltoallBytes(n int) float64 {
	return 4 * float64(c.Tables) * float64(n) * float64(c.EmbDim)
}

// Scaled returns a copy with every table's rows multiplied by f (min 1),
// used to instantiate paper-scale configs in test-sized memory. Timing
// models should keep using the unscaled Config.
func (c Config) Scaled(f float64) Config {
	c.Rows = data.ScaleRows(c.Rows, f)
	return c
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if len(c.Rows) != c.Tables {
		return fmt.Errorf("core: %s has %d row counts for %d tables", c.Name, len(c.Rows), c.Tables)
	}
	if c.BotSizes()[len(c.BotSizes())-1] != c.EmbDim {
		return fmt.Errorf("core: %s bottom MLP must end at E=%d", c.Name, c.EmbDim)
	}
	if c.TopSizes()[len(c.TopSizes())-1] != 1 {
		return fmt.Errorf("core: %s top MLP must end at 1", c.Name)
	}
	return nil
}

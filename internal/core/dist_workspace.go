package core

import (
	"sync"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/data"
)

// distKey identifies the shape of a distributed run. A workspace whose key
// changes rebuilds its table map and lets the ensure helpers regrow the
// buffers; while the key is stable, every iteration — and every run in a
// sweep that reuses the same DistWorkspaces — reuses the same storage.
type distKey struct {
	ranks, globalN int
	tables, embDim int
	strategy       CommStrategy
	functional     bool
}

// DistWorkspace owns every buffer one simulated rank reuses across
// distributed training iterations: the alltoall / fused-scatter /
// scatter-list send and receive blocks of both redistribution phases, the
// per-table embedding outputs and assembled gradient rows, the per-table
// sparse gradient buffers, the loss gradient, and the flat MLP gradient
// buffers behind the two allreduces. Together with the rank's persistent
// par.Pool this makes the steady-state distributed iteration free of heap
// allocations in timing mode (enforced by dist_alloc_test.go) and
// allocation-light in functional mode.
//
// A DistWorkspace is owned by a DistWorkspaces set and used by exactly one
// rank goroutine per run; it is not safe for concurrent use.
type DistWorkspace struct {
	key distKey

	handles      []cluster.Handle // forward redistribution (reused per iter)
	bwdHandles   []cluster.Handle // overlapped backward redistribution
	tablesByRank [][]int          // rank → owned table ids (round-robin)
	locT         []int            // this rank's entry of tablesByRank

	// Functional-mode buffers; all indexed by local table position li
	// (table id t = rank + li·ranks) unless noted.
	embFull  [][]float32 // owned-table bag outputs over the GLOBAL batch, GlobalN×E
	embOut   [][]float32 // per table id: this rank's shard rows (views into recvs)
	dOutFull [][]float32 // owned-table assembled gradients, GlobalN×E
	dW       [][]float32 // owned-table per-lookup gradient rows
	dz       []float32   // loss gradient, length shardN

	a2aSendF, a2aRecvF []float32   // alltoall forward blocks
	a2aSendB, a2aRecvB []float32   // alltoall backward blocks
	scRecv             [][]float32 // per table id: scatter-list forward recv, shardN×E
	fsRecv             [][]float32 // per root rank: fused-scatter forward recv
	fsSend             []float32   // fused-scatter coalesced send (this rank as root)
	gaSend             []float32   // fused gather send (coalesced owned-table grads)
	gaRecv             []float32   // fused gather recv at root

	botGrad, topGrad []float32 // flat MLP gradients for the allreduces

	// Bucketed-allreduce state (DistConfig.BucketBytes > 0), rebuilt by
	// prepareBuckets at the start of every run (layer-count-sized work) and
	// reused across iterations: the per-MLP bucket plans over the
	// paper-scale layer volumes, the modeled per-layer backward times, the
	// per-layer offsets into the flat gradient buffers (functional mode),
	// and the issue-order bucket handles waited at the SGD.
	topBuckets, botBuckets comm.BucketPlan
	topBwdT, botBwdT       []float64
	topOff, botOff         []int
	layerBytes             []float64 // plan-construction scratch
	bktHandles             []cluster.Handle
	topBS, botBS           bucketState // per-iteration issue state (see bucketState)

	// loaderBufs is the staging storage behind the rank's data loader
	// (functional mode): the double-buffered RankBatch ring and, under the
	// global-read artifact, the full-minibatch buffer. Loader objects are
	// per-run; this memory persists with the workspace, so steady-state
	// batch production allocates nothing. Sized by fills, not by the key —
	// the ensure helpers inside grow monotonically like everything else
	// here.
	loaderBufs data.LoaderBuffers
}

// prepare sizes the workspace for one run: on a key change it rebuilds the
// table map and re-ensures every buffer for the new shape; on a key hit it
// only resets the handle list. Buffer growth is monotonic, so a sweep
// alternating shapes pays allocation only on first sight of each shape,
// never per iteration.
func (ws *DistWorkspace) prepare(dc *DistConfig, rank int) {
	key := distKey{
		ranks: dc.Ranks, globalN: dc.GlobalN,
		tables: dc.Cfg.Tables, strategy: dc.Variant.Strategy,
		functional: dc.RunCfg != nil,
	}
	if key.functional {
		key.embDim = dc.RunCfg.EmbDim
	}
	if key != ws.key {
		ws.resize(dc, key, rank)
		ws.key = key
	}
	ws.locT = ws.tablesByRank[rank]
	ws.handles = ws.handles[:0]
	ws.bwdHandles = ws.bwdHandles[:0]
}

// resize rebuilds the table map and re-ensures the strategy's buffers for a
// new key (every field of distKey feeds a size below, which is what makes
// the key the workspace's reuse unit).
func (ws *DistWorkspace) resize(dc *DistConfig, key distKey, rank int) {
	ws.tablesByRank = ws.tablesByRank[:0]
	for rk := 0; rk < key.ranks; rk++ {
		ws.tablesByRank = append(ws.tablesByRank, LocalTables(dc.Cfg, rk, key.ranks))
	}
	if !key.functional {
		return
	}

	e := key.embDim
	shardN := key.globalN / key.ranks
	rowLen := shardN * e
	nLoc := len(ws.tablesByRank[rank])
	maxLoc := MaxLocalTables(dc.Cfg, key.ranks)

	ws.embFull = ensureRows(&ws.embFull, nLoc, key.globalN*e)
	ws.dOutFull = ensureRows(&ws.dOutFull, nLoc, key.globalN*e)
	if len(ws.embOut) != key.tables {
		ws.embOut = make([][]float32, key.tables)
	}
	if len(ws.dW) != nLoc {
		ws.dW = make([][]float32, nLoc)
	}
	ws.dz = ensureF32(&ws.dz, shardN)

	switch key.strategy {
	case Alltoall:
		blockLen := maxLoc * rowLen
		ws.a2aSendF = ensureF32(&ws.a2aSendF, key.ranks*blockLen)
		ws.a2aRecvF = ensureF32(&ws.a2aRecvF, key.ranks*blockLen)
		ws.a2aSendB = ensureF32(&ws.a2aSendB, key.ranks*blockLen)
		ws.a2aRecvB = ensureF32(&ws.a2aRecvB, key.ranks*blockLen)
	case ScatterList:
		ws.scRecv = ensureRows(&ws.scRecv, key.tables, rowLen)
	case FusedScatter:
		// Per-root recv rows padded to the largest per-rank table count so
		// one rectangular allocation serves every root.
		ws.fsRecv = ensureRows(&ws.fsRecv, key.ranks, maxLoc*rowLen)
		ws.fsSend = ensureF32(&ws.fsSend, key.ranks*nLoc*rowLen)
		ws.gaSend = ensureF32(&ws.gaSend, maxLoc*rowLen)
		ws.gaRecv = ensureF32(&ws.gaRecv, key.ranks*nLoc*rowLen)
	}
}

// bindGrads sizes the flat MLP gradient buffers for this rank's model.
func (ws *DistWorkspace) bindGrads(m *Model) {
	ws.botGrad = ensureF32(&ws.botGrad, mlpGradLen(m.Bot))
	ws.topGrad = ensureF32(&ws.topGrad, mlpGradLen(m.Top))
}

// DistWorkspaces holds one DistWorkspace per simulated rank. Like
// cluster.Pools, a set passed through DistConfig persists across
// RunDistributed calls so figure sweeps and benchmarks reuse buffers; when
// DistConfig.Workspaces is nil each run builds (and abandons) its own.
type DistWorkspaces struct {
	mu sync.Mutex
	ws []*DistWorkspace
}

// NewDistWorkspaces returns an empty set; rank workspaces are created on
// first use.
func NewDistWorkspaces() *DistWorkspaces { return &DistWorkspaces{} }

// get returns rank's workspace, creating it on first use.
func (d *DistWorkspaces) get(rank int) *DistWorkspace {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.ws) <= rank {
		d.ws = append(d.ws, &DistWorkspace{})
	}
	return d.ws[rank]
}

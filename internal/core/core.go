// Package core assembles the paper's primary contribution: the optimized
// DLRM training system. It combines the substrate packages — blocked-GEMM
// MLPs, EmbeddingBag with the four update strategies, the dot interaction,
// and the communication stack — into (a) the single-socket trainer whose
// optimization story is Figs. 7/8, (b) the hybrid-parallel distributed
// trainer (data-parallel MLPs, model-parallel embeddings) whose scaling
// story is Figs. 9–15, and (c) the mixed-precision training modes of §VII
// (Fig. 16).
package core

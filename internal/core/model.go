package core

import (
	"math"
	"math/rand"

	"repro/internal/embedding"
	"repro/internal/interaction"
	"repro/internal/mlp"
)

// Model is one DLRM instance: bottom MLP over the dense features, S
// embedding tables over the sparse features, the dot interaction joining
// them, and the top MLP producing the click logit (Fig. 1).
type Model struct {
	Cfg Config
	BN  int // minibatch block size for the MLP tensors

	Bot, Top *mlp.MLP
	Tables   []*embedding.Table
	Inter    interaction.Op

	cache fwdCache
	ws    *Workspace
}

// NewModel builds a DLRM from cfg. Table t is seeded with seed+t so that a
// distributed trainer owning only a subset of tables initializes them
// bit-identically to a single-socket model — the replication the
// equivalence tests rely on. bn is the minibatch blocking; minibatches must
// be divisible by it.
func NewModel(cfg Config, bn int, seed int64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Model{Cfg: cfg, BN: bn, Inter: newInteraction(cfg)}
	rng := rand.New(rand.NewSource(seed))
	m.Bot = mlp.New(cfg.BotSizes(), bn, mlp.ReLU, mlp.ReLU, rng)
	m.Top = mlp.New(cfg.TopSizes(), bn, mlp.ReLU, mlp.None, rng)
	m.Tables = make([]*embedding.Table, cfg.Tables)
	for t := range m.Tables {
		m.Tables[t] = newTableSeeded(cfg, t, seed)
	}
	return m
}

// NewModelShard builds only the tables owned by rank r of ranks (tables are
// assigned round-robin: owner(t) = t mod ranks) plus full MLP replicas —
// the hybrid-parallel layout of §IV-B. Unowned table slots are nil.
func NewModelShard(cfg Config, bn int, seed int64, r, ranks int) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Model{Cfg: cfg, BN: bn, Inter: newInteraction(cfg)}
	rng := rand.New(rand.NewSource(seed))
	m.Bot = mlp.New(cfg.BotSizes(), bn, mlp.ReLU, mlp.ReLU, rng)
	m.Top = mlp.New(cfg.TopSizes(), bn, mlp.ReLU, mlp.None, rng)
	m.Tables = make([]*embedding.Table, cfg.Tables)
	for t := range m.Tables {
		if TableOwner(t, ranks) == r {
			m.Tables[t] = newTableSeeded(cfg, t, seed)
		}
	}
	return m
}

func newTableSeeded(cfg Config, t int, seed int64) *embedding.Table {
	tRng := rand.New(rand.NewSource(seed + int64(t)*7919))
	scale := float32(1 / math.Sqrt(float64(cfg.EmbDim)))
	return embedding.NewTable(cfg.Rows[t], cfg.EmbDim, tRng, scale)
}

// newInteraction builds the configured interaction operator.
func newInteraction(cfg Config) interaction.Op {
	if cfg.ConcatInteraction {
		return interaction.NewConcat(cfg.Tables, cfg.EmbDim)
	}
	return interaction.NewDot(cfg.Tables, cfg.EmbDim)
}

// TableOwner returns the rank owning table t under round-robin model
// parallelism.
func TableOwner(t, ranks int) int { return t % ranks }

// LocalTableIndex returns table t's position within its owning rank's
// LocalTables list — the inverse of the round-robin assignment, kept next
// to TableOwner so a sharding-policy change updates both together.
func LocalTableIndex(t, ranks int) int { return t / ranks }

// LocalTables returns the table indices owned by rank r.
func LocalTables(cfg Config, r, ranks int) []int {
	var out []int
	for t := 0; t < cfg.Tables; t++ {
		if TableOwner(t, ranks) == r {
			out = append(out, t)
		}
	}
	return out
}

// MaxLocalTables returns the largest per-rank table count, which sizes the
// (padded) alltoall blocks when S is not divisible by the rank count.
func MaxLocalTables(cfg Config, ranks int) int {
	return (cfg.Tables + ranks - 1) / ranks
}

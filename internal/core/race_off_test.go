//go:build !race

package core

// raceEnabled mirrors race_on_test.go for plain builds.
const raceEnabled = false

package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/comm"
)

// contentionCase is one 64-rank Large-config schedule point with its
// committed PR 6 virtual baseline (ms/iter, from BENCH_2026-08-08-pr6.json).
type contentionCase struct {
	name    string
	sync    bool
	bb      int
	algo    comm.AllreduceAlgo
	globalN int
	want    float64 // contention-off baseline, exact
}

func contentionCases() []contentionCase {
	strong, weak := Large.GlobalMB, Large.LocalMB*64
	return []contentionCase{
		{"strong/bucketed", false, 0, comm.RingRSAG, strong, 306.21284941835825},
		{"strong/flat-sync", true, FlatBuckets, comm.RingRSAG, strong, 447.3348780622385},
		{"strong/overlap-flat", false, FlatBuckets, comm.RingRSAG, strong, 423.5374092622385},
		{"strong/overlap-hier", false, FlatBuckets, comm.Hierarchical, strong, 423.4114092622385},
		{"weak/bucketed", false, 0, comm.RingRSAG, weak, 546.6140738367169},
		{"weak/flat-sync", true, FlatBuckets, comm.RingRSAG, weak, 615.5257685084057},
	}
}

func runContentionCase(c contentionCase, contention bool) float64 {
	dc := distTestConfig(Large, 64, c.globalN, 1, Variant{Alltoall, cluster.CCLBackend}, false)
	dc.Sync = c.sync
	dc.BucketBytes = c.bb
	dc.Allreduce = c.algo
	dc.Contention = contention
	return RunDistributed(dc).IterSeconds * 1e3
}

// TestContentionOffBitIdenticalToBaselines pins the knob's default: with
// Contention off, every strategy/schedule/algorithm combination must
// reproduce the committed PR 6 virtual numbers bit-identically — the
// contention machinery may not perturb the isolated pricing path at all.
func TestContentionOffBitIdenticalToBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank Large runs")
	}
	for _, c := range contentionCases() {
		if got := runContentionCase(c, false); got != c.want {
			t.Errorf("%s: contention off %v ms/iter, want committed baseline %v", c.name, got, c.want)
		}
	}
}

// TestContentionChargesOverlappedSchedules checks the tentpole's core
// effect: schedules that overlap collectives on distinct CCL channels slow
// down under contention-aware charging (the shared 2:1 trunk no longer
// carries three bucket allreduces for free), while the flat synchronous
// schedule — one collective in flight at a time — is priced identically,
// and the overlapped schedule keeps beating flat-sync even when charged
// honestly (the paper's overlap win shrinks but survives).
func TestContentionChargesOverlappedSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank Large runs")
	}
	results := map[string]struct{ off, on float64 }{}
	for _, c := range contentionCases() {
		off := runContentionCase(c, false)
		on := runContentionCase(c, true)
		if on < off {
			t.Errorf("%s: contention on %v faster than off %v", c.name, on, off)
		}
		results[c.name] = struct{ off, on float64 }{off, on}
	}
	if r := results["strong/flat-sync"]; r.on != r.off {
		t.Errorf("flat-sync must be unaffected by contention: off %v on %v", r.off, r.on)
	}
	if r := results["strong/bucketed"]; r.on <= r.off {
		t.Errorf("bucketed+overlapped must pay for the shared trunk: off %v on %v", r.off, r.on)
	}
	if results["strong/bucketed"].on >= results["strong/flat-sync"].on {
		t.Errorf("overlap win must survive contention: bucketed %v vs flat-sync %v",
			results["strong/bucketed"].on, results["strong/flat-sync"].on)
	}
	if results["weak/bucketed"].on >= results["weak/flat-sync"].on {
		t.Errorf("weak-scaling overlap win must survive contention: bucketed %v vs flat-sync %v",
			results["weak/bucketed"].on, results["weak/flat-sync"].on)
	}
}

// TestExposuresPropertyContention re-checks the Exposures() accounting
// invariants with contention-aware charging on: sharing stretches busy
// times, but busy must still split exactly into exposed + hidden and
// HiddenShare stay within [0, 1].
func TestExposuresPropertyContention(t *testing.T) {
	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	for _, strat := range []CommStrategy{ScatterList, FusedScatter, Alltoall} {
		for _, algo := range []comm.AllreduceAlgo{comm.RingRSAG, comm.Hierarchical, comm.AllreduceAuto} {
			for _, bucketBytes := range []int{FlatBuckets, 1 << 20} {
				dc := distTestConfig(Small, 8, Small.GlobalMB, 2, Variant{strat, cluster.CCLBackend}, false)
				dc.Sync = false
				dc.Allreduce = algo
				dc.BucketBytes = bucketBytes
				dc.Contention = true
				dc.Pools = pools
				dc.Workspaces = wss
				res := RunDistributed(dc)
				if len(res.Exposures()) == 0 {
					t.Fatalf("%v %v bucket=%d: no exposures recorded", strat, algo, bucketBytes)
				}
				for _, e := range res.Exposures() {
					if e.Busy < 0 || e.Exposed < 0 || e.Hidden < 0 {
						t.Fatalf("%v %v %s: negative component %+v", strat, algo, e.Label, e)
					}
					want := e.Busy - e.Exposed
					if want < 0 {
						want = 0
					}
					if math.Abs(e.Hidden-want) > 1e-12 {
						t.Fatalf("%v %v %s: hidden %.12f want %.12f (busy %.12f exposed %.12f)",
							strat, algo, e.Label, e.Hidden, want, e.Busy, e.Exposed)
					}
					if s := e.HiddenShare(); s < 0 || s > 1 {
						t.Fatalf("%v %v %s: hidden share %v outside [0,1]", strat, algo, e.Label, s)
					}
				}
			}
		}
	}
}

// TestInterferenceOverride pins the DistConfig.Interference knob the
// §VI-D1 contention figure uses: 1.0 disables the flat MPI interference
// factor (compute while communicating is not inflated), making the MPI run
// measurably faster than the default 1.3, while 0 keeps the default.
func TestInterferenceOverride(t *testing.T) {
	run := func(interf float64) float64 {
		dc := distTestConfig(Large, 16, Large.GlobalMB, 2, Variant{Alltoall, cluster.MPIBackend}, false)
		dc.Interference = interf
		return RunDistributed(dc).IterSeconds
	}
	def, none := run(0), run(1.0)
	if none >= def {
		t.Fatalf("interference 1.0 must beat the default 1.3: %g vs %g", none, def)
	}
	if run(1.3) != def {
		t.Fatal("explicit 1.3 must equal the default")
	}
}

package core

import (
	"fmt"

	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/comm"
)

// The online schedule autotuner. Which communication schedule is fastest —
// synchronous or overlapped, flat or bucketed and at what bucket size,
// which allreduce cost model, how many CCL channels the buckets round-robin
// over — depends on the workload shape (config, rank count, fabric,
// loader). Rather than hand-picking per shape, AutotuneDistConfig probes
// candidate schedules against the virtual-time model with a few timing-mode
// iterations each, under a successive-halving budget: every candidate gets
// a cheap probe, survivors re-run at doubled budgets, and the full budget
// decides among the contenders.

// AutotuneOpts bounds the schedule search. The zero value is the default
// budget: 1-iteration first probes, a 4-iteration deciding round, the full
// candidate space.
type AutotuneOpts struct {
	// ProbeIters is the probe length of the first round (default 1);
	// FinalIters that of the deciding round (default 4×ProbeIters).
	ProbeIters int
	FinalIters int
	// MaxCandidates caps the first round's pool by uniform sampling from
	// the counter-based stream seeded by Seed (0 = probe the full space).
	// The incumbent schedule always enters regardless.
	MaxCandidates int
	// Seed seeds the sampling stream; equal options replay the identical
	// search.
	Seed uint64
}

// AutotuneReport describes what the search measured.
type AutotuneReport struct {
	Candidates      int     // size of the enumerated schedule space
	Probed          int     // candidates that entered the first round
	Probes          int     // distinct (candidate, budget) probe runs
	BaselineSeconds float64 // incumbent schedule's virtual s/iter at the final budget
	TunedSeconds    float64 // chosen schedule's virtual s/iter at the final budget
	Schedule        string  // human-readable chosen schedule
}

// Gain returns the fractional virtual-time improvement over the incumbent
// schedule (0.1 = 10% faster; 0 when the incumbent was kept).
func (r *AutotuneReport) Gain() float64 {
	if r.BaselineSeconds <= 0 {
		return 0
	}
	return 1 - r.TunedSeconds/r.BaselineSeconds
}

// scheduleCandidate is one point of the searched schedule space.
type scheduleCandidate struct {
	sync        bool
	bucketBytes int // DistConfig semantics: FlatBuckets = flat buffers
	algo        comm.AllreduceAlgo
	channels    int // bucket channel-set size (0 where the knob is inert)
}

// autotuneBucketSizes is the BucketBytes sweep: flat, then a power-of-two
// ladder around the hand-tuned DefaultBucketBytes.
var autotuneBucketSizes = []int{
	FlatBuckets, 16 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20,
}

// scheduleCandidates enumerates the space: schedule × bucket size ×
// allreduce algorithm (the five concrete cost models plus per-bucket Auto),
// and — where buckets actually round-robin, i.e. overlapped+bucketed — the
// channel-set size 1..3. Elsewhere the channel knob is inert and pinned to
// 0 so equivalent configurations are not probed twice.
func scheduleCandidates() []scheduleCandidate {
	algos := append([]comm.AllreduceAlgo{comm.AllreduceAuto}, comm.AllreduceAlgos...)
	var out []scheduleCandidate
	for _, sync := range []bool{false, true} {
		for _, bb := range autotuneBucketSizes {
			for _, algo := range algos {
				if !sync && bb != FlatBuckets {
					for ch := 1; ch <= len(defaultBucketChannels); ch++ {
						out = append(out, scheduleCandidate{sync, bb, algo, ch})
					}
				} else {
					out = append(out, scheduleCandidate{sync, bb, algo, 0})
				}
			}
		}
	}
	return out
}

// apply returns dc with the candidate's schedule knobs set.
func (c scheduleCandidate) apply(dc DistConfig) DistConfig {
	dc.Sync = c.sync
	dc.BucketBytes = c.bucketBytes
	dc.Allreduce = c.algo
	dc.BucketChannels = nil
	if c.channels > 0 {
		dc.BucketChannels = defaultBucketChannels[:c.channels]
	}
	return dc
}

// String renders the candidate for reports and figure cells.
func (c scheduleCandidate) String() string {
	sched := "overlapped"
	if c.sync {
		sched = "sync"
	}
	buckets := "flat"
	if c.bucketBytes != FlatBuckets {
		buckets = fmt.Sprintf("%dMiB buckets", c.bucketBytes>>20)
	}
	s := fmt.Sprintf("%s, %s, %s", sched, buckets, c.algo.ShortString())
	if c.channels > 0 {
		s += fmt.Sprintf(", %dch", c.channels)
	}
	return s
}

// incumbent maps dc's current schedule onto the enumeration's normal form
// (resolved bucket size, channel-set length where the knob is live).
func incumbent(dc *DistConfig) scheduleCandidate {
	c := scheduleCandidate{sync: dc.Sync, algo: dc.Allreduce, bucketBytes: FlatBuckets}
	if eb := dc.EffectiveBucketBytes(); eb > 0 {
		c.bucketBytes = eb
	}
	if !c.sync && c.bucketBytes != FlatBuckets {
		c.channels = len(dc.BucketChannels)
		if dc.BucketChannels == nil {
			c.channels = len(defaultBucketChannels)
		}
	}
	return c
}

// AutotuneDistConfig searches the communication-schedule space for the
// fastest configuration of dc's workload shape and returns dc with the
// winning schedule knobs applied, plus a report of what the search
// measured. Probes are timing-mode runs (RunCfg/Dataset stripped) sharing
// dc's pools and workspaces — the workspace key excludes every schedule
// knob, so all candidates probe through the same buffers and probing
// allocates nothing per iteration after the first probes warm them. The
// result is never worse than dc's incumbent schedule under the model: the
// search winner meets the incumbent head-to-head at the final budget and
// the incumbent is kept on a tie.
func AutotuneDistConfig(dc DistConfig, opts AutotuneOpts) (DistConfig, *AutotuneReport) {
	probe := opts.ProbeIters
	if probe <= 0 {
		probe = 1
	}
	final := opts.FinalIters
	if final <= 0 {
		final = 4 * probe
	}
	if final < probe {
		final = probe
	}

	cands := scheduleCandidates()
	inc := incumbent(&dc)
	incIdx := -1
	for i, c := range cands {
		if c == inc {
			incIdx = i
			break
		}
	}
	if incIdx < 0 { // e.g. an off-ladder explicit bucket size
		incIdx = len(cands)
		cands = append(cands, inc)
	}

	probeCfg := dc
	probeCfg.RunCfg, probeCfg.Dataset = nil, nil
	// The functional checkpoint hooks ride with RunCfg; a timing probe has
	// no models to snapshot or restore.
	probeCfg.CheckpointSink, probeCfg.Restore = nil, nil
	if probeCfg.Pools == nil {
		pools := cluster.NewPools()
		defer pools.Close()
		probeCfg.Pools = pools
	}
	if probeCfg.Workspaces == nil {
		probeCfg.Workspaces = NewDistWorkspaces()
	}

	type probeKey struct{ cand, iters int }
	memo := make(map[probeKey]float64)
	obj := func(cand, iters int) float64 {
		k := probeKey{cand, iters}
		if v, ok := memo[k]; ok {
			return v
		}
		c := cands[cand].apply(probeCfg)
		c.Iters = iters
		v := RunDistributed(c).IterSeconds
		memo[k] = v
		return v
	}
	res := autotune.Search(len(cands), obj, autotune.Options{
		ProbeIters:    probe,
		FinalIters:    final,
		MaxCandidates: opts.MaxCandidates,
		Include:       []int{incIdx},
		Seed:          opts.Seed,
	})

	// Head-to-head at the final budget: the incumbent may have been halved
	// away on a cheap probe, so re-probe it (memoized if it survived) and
	// keep it unless the winner is strictly faster.
	base := obj(incIdx, final)
	best, bestT := res.Best, res.BestCost
	if base <= bestT {
		best, bestT = incIdx, base
	}
	rep := &AutotuneReport{
		Candidates:      len(cands),
		Probed:          res.Pool,
		Probes:          len(memo),
		BaselineSeconds: base,
		TunedSeconds:    bestT,
		Schedule:        cands[best].String(),
	}
	return cands[best].apply(dc), rep
}

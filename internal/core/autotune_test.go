package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// autotuneBase builds the timing-mode shape the autotuner tests probe:
// paper config, OPA fat-tree, CCL Alltoall, shared pools/workspaces.
func autotuneBase(cfg Config, ranks, globalN int, pools *cluster.Pools, wss *DistWorkspaces) DistConfig {
	return DistConfig{
		Cfg:        cfg,
		Ranks:      ranks,
		GlobalN:    globalN - globalN%ranks,
		Iters:      1,
		Variant:    Variant{Strategy: Alltoall, Backend: cluster.CCLBackend},
		Topo:       fabric.NewPrunedFatTree(ranks, 12.5e9),
		Socket:     perfmodel.CLX8280,
		Pools:      pools,
		Workspaces: wss,
	}
}

// measure runs the config for iters timing-mode iterations.
func measure(dc DistConfig, iters int) float64 {
	dc.Iters = iters
	return RunDistributed(dc).IterSeconds
}

// TestAutotuneNeverWorseThanIncumbent is the tuner's contract: whatever
// schedule dc starts from — the bucketed+overlapped default, the paper's
// flat-sync pipeline, or a deliberately bad pick — the tuned config's
// modeled iteration time at the final probe budget is never above the
// incumbent's.
func TestAutotuneNeverWorseThanIncumbent(t *testing.T) {
	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	incumbents := []struct {
		name string
		set  func(*DistConfig)
	}{
		{"default", func(*DistConfig) {}},
		{"flat-sync", func(dc *DistConfig) { dc.Sync = true; dc.BucketBytes = FlatBuckets }},
		{"sync-tree-1MiB", func(dc *DistConfig) {
			dc.Sync = true
			dc.BucketBytes = 1 << 20 // off the search ladder: exercises the appended incumbent
			dc.Allreduce = comm.BinaryTree
		}},
	}
	const final = 4
	for _, inc := range incumbents {
		dc := autotuneBase(Small, 4, Small.GlobalMB, pools, wss)
		inc.set(&dc)
		tuned, rep := AutotuneDistConfig(dc, AutotuneOpts{FinalIters: final, MaxCandidates: 12, Seed: 1})
		if rep.TunedSeconds > rep.BaselineSeconds {
			t.Errorf("%s: report claims tuned (%g) worse than incumbent (%g)",
				inc.name, rep.TunedSeconds, rep.BaselineSeconds)
		}
		got, want := measure(tuned, final), measure(dc, final)
		if got > want+1e-12 {
			t.Errorf("%s: tuned schedule %q measures %g s/iter, incumbent %g",
				inc.name, rep.Schedule, got, want)
		}
		if tuned.Iters != dc.Iters || tuned.Cfg.Name != dc.Cfg.Name {
			t.Errorf("%s: tuner must only touch schedule knobs", inc.name)
		}
	}
}

// TestAutotuneBeatsFlatSyncBaseline: from the paper's instrumented
// flat-sync schedule the tuner must find a strictly faster one (the
// overlapped schedules hide communication at every measured scale).
func TestAutotuneBeatsFlatSyncBaseline(t *testing.T) {
	pools := cluster.NewPools()
	defer pools.Close()
	dc := autotuneBase(Large, 16, Large.GlobalMB, pools, NewDistWorkspaces())
	dc.Sync = true
	dc.BucketBytes = FlatBuckets
	_, rep := AutotuneDistConfig(dc, AutotuneOpts{FinalIters: 3})
	if rep.Gain() <= 0 {
		t.Errorf("no gain over flat-sync at 16R: %+v", rep)
	}
}

// TestAutotuneBeatsDefaultAtHeadlineScale is the exposure the figure
// quotes: at the 64-rank strong-scaling headline, searching the full space
// strictly beats the hand-picked default (bucketed+overlapped 64 MiB ring)
// — the hierarchical two-level cost model wins on the pruned fat tree.
func TestAutotuneBeatsDefaultAtHeadlineScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-space 64-rank search")
	}
	pools := cluster.NewPools()
	defer pools.Close()
	dc := autotuneBase(Large, 64, Large.GlobalMB, pools, NewDistWorkspaces())
	tuned, rep := AutotuneDistConfig(dc, AutotuneOpts{FinalIters: 3})
	if rep.Gain() <= 0 {
		t.Fatalf("tuner found nothing better than the default at 64R: %+v", rep)
	}
	const iters = 6
	got, def := measure(tuned, iters), measure(dc, iters)
	if got >= def {
		t.Errorf("tuned %q = %g s/iter does not beat default %g", rep.Schedule, got, def)
	}
}

// TestAutotuneDeterminism: equal options replay the identical search —
// same schedule, same report — because sampling draws from the
// counter-based stream and the virtual-time objective is deterministic.
func TestAutotuneDeterminism(t *testing.T) {
	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	run := func() (DistConfig, AutotuneReport) {
		dc := autotuneBase(Small, 4, Small.GlobalMB, pools, wss)
		tuned, rep := AutotuneDistConfig(dc, AutotuneOpts{FinalIters: 2, MaxCandidates: 16, Seed: 42})
		return tuned, *rep
	}
	t1, r1 := run()
	t2, r2 := run()
	if r1 != r2 {
		t.Errorf("reports diverged:\n  %+v\n  %+v", r1, r2)
	}
	if t1.Sync != t2.Sync || t1.BucketBytes != t2.BucketBytes || t1.Allreduce != t2.Allreduce ||
		len(t1.BucketChannels) != len(t2.BucketChannels) {
		t.Errorf("tuned schedules diverged: %+v vs %+v", t1, t2)
	}
}

// TestAutotuneProbingZeroAllocsPerIter pins the probing cost: with shared
// pools and workspaces warmed, lengthening every probe adds no allocations
// — the probe runs reuse the same workspaces across all candidate
// schedules, so only the probe's virtual time grows with the budget.
// Structured like distAllocsPerIter: two searches identical except for the
// probe length are differenced, cancelling the fixed search bookkeeping.
func TestAutotuneProbingZeroAllocsPerIter(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	search := func(iters int) func() {
		o := AutotuneOpts{ProbeIters: iters, FinalIters: iters, MaxCandidates: 12, Seed: 7}
		return func() {
			dc := autotuneBase(Small, 4, Small.GlobalMB, pools, wss)
			AutotuneDistConfig(dc, o)
		}
	}
	search(12)() // warmup: sizes workspaces for every probed schedule
	short := testing.AllocsPerRun(5, search(2))
	long := testing.AllocsPerRun(5, search(12))
	// The two searches probe 13 candidates each (12 sampled + incumbent),
	// so the long one simulates 130 more iterations; a per-iteration
	// allocation would add ≥130 allocs. Scheduler jitter across the 13
	// cluster runs accounts for a few allocs either way, so the bound is
	// one alloc per added probe run rather than exact equality.
	if long-short >= 13 {
		t.Errorf("probing allocates per iteration: %v allocs at 2 iters vs %v at 12", short, long)
	}
}

package core

import (
	"repro/internal/tensor"
)

// Workspace preallocates every buffer the training iteration reuses across
// Step calls, making the steady state allocation-free: the embedding bag
// outputs and their gradients, the per-table sparse gradient rows consumed
// by the update strategies (including the BF16Split/FP24/FP16 paths), the
// loss gradient, and the dense-path pack/unpack and interaction
// intermediates of ForwardDense/BackwardDense. Buffers are keyed by shape
// and grown monotonically, so the first Step (or a batch-size change) pays
// the allocations and subsequent Steps pay none — the property the
// allocation-regression tests assert.
//
// A Workspace is owned by a Trainer and shared with its Model's dense
// passes; it is not safe for concurrent use, matching the one-region-at-a-
// time execution model of the paper's single-socket training loop.
type Workspace struct {
	// Sparse path (Trainer.Step).
	embOut [][]float32 // per table: bag outputs, N×E row-major
	dz     []float32   // loss gradient, length N
	embDW  [][]float32 // per table: per-lookup gradient rows, NS×E

	// Dense path (Model.ForwardDense / BackwardDense).
	botIn    *tensor.Acts  // packed bottom-MLP input
	botRows  *tensor.Dense // unpacked bottom-MLP output
	z        []float32     // interaction output, N×OutputDim
	zD       tensor.Dense  // header over z
	topIn    *tensor.Acts  // packed top-MLP input
	logitsD  *tensor.Dense // unpacked logits
	dzD      tensor.Dense  // header over the caller's dz
	dLogit   *tensor.Acts  // packed logit gradient
	dInter   *tensor.Dense // unpacked interaction gradient
	dBot     []float32     // bottom-feature gradient, N×E
	dBotD    tensor.Dense  // header over dBot
	dBotActs *tensor.Acts  // packed bottom-feature gradient
	dEmb     [][]float32   // per table: bag-output gradients, N×E
}

// ensureF32 returns *buf resized to n elements, reallocating only on
// capacity growth.
func ensureF32(buf *[]float32, n int) []float32 {
	s := *buf
	if cap(s) < n {
		s = make([]float32, n)
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}

// ensureDense returns *buf shaped rows×cols, reusing the data slice.
func ensureDense(buf **tensor.Dense, rows, cols int) *tensor.Dense {
	d := *buf
	if d == nil {
		d = &tensor.Dense{}
		*buf = d
	}
	d.Rows, d.Cols = rows, cols
	d.Data = ensureF32(&d.Data, rows*cols)
	return d
}

// ensureRows returns *rows resized to count slices of rowLen elements each.
func ensureRows(rows *[][]float32, count, rowLen int) [][]float32 {
	r := *rows
	if len(r) != count {
		grown := make([][]float32, count)
		copy(grown, r)
		r = grown
	}
	for t := range r {
		r[t] = ensureF32(&r[t], rowLen)
	}
	*rows = r
	return r
}

// EmbOut returns the per-table bag-output buffers for an N-sample batch.
func (ws *Workspace) EmbOut(tables, rowLen int) [][]float32 {
	return ensureRows(&ws.embOut, tables, rowLen)
}

// DEmb returns the per-table bag-gradient buffers for an N-sample batch.
func (ws *Workspace) DEmb(tables, rowLen int) [][]float32 {
	return ensureRows(&ws.dEmb, tables, rowLen)
}

// EmbDW returns table t's per-lookup gradient buffer holding n elements.
// Slots are grown on demand so tables of different lookup counts coexist.
func (ws *Workspace) EmbDW(t, tables, n int) []float32 {
	if len(ws.embDW) != tables {
		grown := make([][]float32, tables)
		copy(grown, ws.embDW)
		ws.embDW = grown
	}
	return ensureF32(&ws.embDW[t], n)
}

// Dz returns the loss-gradient buffer for an N-sample batch.
func (ws *Workspace) Dz(n int) []float32 {
	return ensureF32(&ws.dz, n)
}

package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/fabric"
	"repro/internal/par"
)

// validConfig is a baseline that must pass Validate; each rejection case
// below breaks exactly one thing.
func validConfig() DistConfig {
	return distTestConfig(Small, 4, Small.GlobalMB, 2, Variant{Alltoall, cluster.CCLBackend}, false)
}

func TestValidateAcceptsBaseline(t *testing.T) {
	dc := validConfig()
	if err := dc.Validate(); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	// The overlapped+bucketed default schedule with an explicit channel
	// set is the other blessed shape.
	dc.Sync = false
	dc.BucketBytes = 0
	dc.BucketChannels = []int{0, 1, 2}
	if err := dc.Validate(); err != nil {
		t.Fatalf("overlapped bucketed config rejected: %v", err)
	}
}

// TestValidateRejections is the table of incoherent knob combinations the
// API-redesign satellite turns from silent misbehavior (or deep panics in
// rank goroutines) into immediate, descriptive errors.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(dc *DistConfig)
		want string // substring of the error
	}{
		{"zero ranks", func(dc *DistConfig) { dc.Ranks = 0 }, "Ranks=0"},
		{"zero iters", func(dc *DistConfig) { dc.Iters = 0 }, "Iters=0"},
		{"zero globalN", func(dc *DistConfig) { dc.GlobalN = 0 }, "GlobalN=0"},
		{"indivisible globalN", func(dc *DistConfig) { dc.GlobalN = 100; dc.Ranks = 3; dc.Topo = nil }, "not divisible"},
		{"too many ranks", func(dc *DistConfig) {
			dc.Ranks = Small.Tables + 4
			dc.GlobalN = (Small.Tables + 4) * 8
			dc.Topo = fabric.NewPrunedFatTree(dc.Ranks, 12.5e9)
		}, "exceeds max"},
		{"broken model config", func(dc *DistConfig) { dc.Cfg.Rows = dc.Cfg.Rows[:2] }, "row counts"},
		{"unknown strategy", func(dc *DistConfig) { dc.Variant.Strategy = 99 }, "unknown comm strategy"},
		{"unknown backend", func(dc *DistConfig) { dc.Variant.Backend = 7 }, "unknown backend"},
		{"unknown loader mode", func(dc *DistConfig) { dc.Loader = 9 }, "unknown loader mode"},
		{"unknown allreduce", func(dc *DistConfig) { dc.Allreduce = comm.AllreduceAuto + 1 }, "unknown allreduce"},
		{"negative comm cores", func(dc *DistConfig) { dc.CommCores = -2 }, "CommCores=-2"},
		{"comm cores eat the socket", func(dc *DistConfig) { dc.CommCores = dc.Socket.Cores }, "no compute cores"},
		{"interference below 1", func(dc *DistConfig) { dc.Interference = 0.5 }, "Interference"},
		{"topology too small", func(dc *DistConfig) { dc.Topo = fabric.NewPrunedFatTree(2, 12.5e9) }, "topology has 2 sockets"},
		{"negative bucket bytes", func(dc *DistConfig) { dc.BucketBytes = -7 }, "BucketBytes=-7"},
		{"channels with flat buckets", func(dc *DistConfig) {
			dc.Sync = false
			dc.BucketBytes = FlatBuckets
			dc.BucketChannels = []int{0}
		}, "FlatBuckets"},
		{"channels with sync schedule", func(dc *DistConfig) {
			dc.Sync = true
			dc.BucketBytes = 0
			dc.BucketChannels = []int{0}
		}, "Sync"},
		{"channel out of range", func(dc *DistConfig) {
			dc.Sync = false
			dc.BucketBytes = 0
			dc.BucketChannels = []int{0, 4}
		}, "out of range"},
		{"negative emb cache", func(dc *DistConfig) { dc.EmbCacheBytes = -64 }, "EmbCacheBytes=-64"},
		{"negative cold bw", func(dc *DistConfig) {
			dc.EmbCacheBytes = 64 << 20
			dc.ColdTierBW = -1
		}, "ColdTierBW"},
		{"negative cold latency", func(dc *DistConfig) {
			dc.EmbCacheBytes = 64 << 20
			dc.ColdTierBW = DefaultColdTierBW
			dc.ColdTierLat = -1e-6
		}, "ColdTierLat"},
		{"negative emb skew", func(dc *DistConfig) {
			dc.EmbCacheBytes = 64 << 20
			dc.ColdTierBW = DefaultColdTierBW
			dc.EmbSkew = -0.5
		}, "EmbSkew"},
		{"cache without cold bw", func(dc *DistConfig) { dc.EmbCacheBytes = 64 << 20 }, "without ColdTierBW"},
		{"cold bw without cache", func(dc *DistConfig) { dc.ColdTierBW = DefaultColdTierBW }, "without EmbCacheBytes"},
		{"cold latency without cache", func(dc *DistConfig) { dc.ColdTierLat = 20e-6 }, "without EmbCacheBytes"},
		{"emb skew without cache", func(dc *DistConfig) { dc.EmbSkew = 1.05 }, "without EmbCacheBytes"},
		{"negative start iter", func(dc *DistConfig) { dc.StartIter = -1 }, "StartIter=-1"},
		{"negative checkpoint cadence", func(dc *DistConfig) { dc.CheckpointEvery = -2 }, "CheckpointEvery=-2"},
		{"negative checkpoint bw", func(dc *DistConfig) {
			dc.CheckpointEvery = 2
			dc.CheckpointBW = -1
		}, "CheckpointBW"},
		{"checkpoint bw without cadence", func(dc *DistConfig) { dc.CheckpointBW = 1e9 }, "without CheckpointEvery"},
		{"sink without cadence", func(dc *DistConfig) {
			run := dc.Cfg
			dc.RunCfg = &run
			dc.Dataset = data.NewClickLog(1, run.DenseIn, run.Rows, run.Lookups)
			dc.CheckpointSink = func(int, int, *Model) {}
		}, "without CheckpointEvery"},
		{"sink without models", func(dc *DistConfig) {
			dc.CheckpointEvery = 2
			dc.CheckpointSink = func(int, int, *Model) {}
		}, "without RunCfg"},
		{"restore without models", func(dc *DistConfig) {
			dc.Restore = func(int, *Model) {}
		}, "without RunCfg"},
		{"functional without dataset", func(dc *DistConfig) {
			run := dc.Cfg
			dc.RunCfg = &run
			dc.Dataset = nil
		}, "requires a Dataset"},
		{"functional table mismatch", func(dc *DistConfig) {
			run := dc.Cfg.Scaled(1)
			run.Tables = dc.Cfg.Tables / 2
			run.Rows = run.Rows[:run.Tables]
			dc.RunCfg = &run
			dc.Dataset = data.NewClickLog(1, run.DenseIn, run.Rows, run.Lookups)
		}, "shards would not line up"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dc := validConfig()
			tc.mut(&dc)
			err := dc.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The validated entry point must surface the same error.
			if _, runErr := dc.Run(); runErr == nil || runErr.Error() != err.Error() {
				t.Fatalf("DistConfig.Run error %v, want %v", runErr, err)
			}
		})
	}
}

// TestRunDistributedPanicsOnInvalid pins the deprecated wrapper's contract:
// the pre-validation panics became Validate errors, surfaced as a panic at
// the entry point rather than deep inside a rank goroutine.
func TestRunDistributedPanicsOnInvalid(t *testing.T) {
	dc := validConfig()
	dc.GlobalN++
	defer func() {
		if recover() == nil {
			t.Fatal("RunDistributed did not panic on an invalid config")
		}
	}()
	RunDistributed(dc)
}

// TestDistConfigRunMatchesWrapper checks the blessed entry and the
// deprecated wrapper execute identically.
func TestDistConfigRunMatchesWrapper(t *testing.T) {
	dc := validConfig()
	res, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if legacy := RunDistributed(dc); legacy.IterSeconds != res.IterSeconds {
		t.Fatalf("Run %v s/iter, RunDistributed %v s/iter", res.IterSeconds, legacy.IterSeconds)
	}
}

// TestExposuresOrderContract pins the documented Exposures() order: sorted
// ascending by label, covering both maps, no duplicates.
func TestExposuresOrderContract(t *testing.T) {
	res := &DistResult{
		BusyPerIter: map[string]float64{"fwd-a2a": 1, "allreduce": 2, "ar-top:1": 3},
		WaitPerIter: map[string]float64{"barrier": 4, "allreduce": 1},
	}
	exp := res.Exposures()
	var labels []string
	for _, e := range exp {
		labels = append(labels, e.Label)
	}
	if !sort.StringsAreSorted(labels) {
		t.Fatalf("labels not sorted: %v", labels)
	}
	want := []string{"allreduce", "ar-top:1", "barrier", "fwd-a2a"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	// And on a real run: two identical runs list identical labels in
	// identical order (map iteration must not leak through).
	dc := validConfig()
	a, b := RunDistributed(dc).Exposures(), RunDistributed(dc).Exposures()
	if len(a) != len(b) {
		t.Fatalf("exposure counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatalf("exposure order not deterministic: %q vs %q at %d", a[i].Label, b[i].Label, i)
		}
	}
}

// TestTrainerRunUnifiedEntry covers the RunOpts entry: loader-source and
// dataset-source runs train identically, and misconfigurations error.
func TestTrainerRunUnifiedEntry(t *testing.T) {
	cfg := Small.Scaled(1.0 / 64)
	cfg.MB = 32
	ds := data.NewClickLog(7, cfg.DenseIn, cfg.Rows, cfg.Lookups)

	train := func(o RunOpts) (*Model, []float64) {
		m := NewModel(cfg, 16, 5)
		tr := NewTrainer(m, par.Default, embedding.RaceFree, 0.5, FP32)
		var losses []float64
		prev := o.Each
		o.Each = func(it int, l float64) {
			losses = append(losses, l)
			if prev != nil {
				prev(it, l)
			}
		}
		if err := tr.Run(o); err != nil {
			t.Fatal(err)
		}
		return m, losses
	}

	ld := data.NewBatchLoader(ds, cfg.MB, 0)
	_, viaLoader := train(RunOpts{Loader: ld, Iters: 5})
	ld.Close()
	_, viaDataset := train(RunOpts{Dataset: ds, Iters: 5})
	if len(viaLoader) != 5 || len(viaDataset) != 5 {
		t.Fatalf("iteration counts: %d loader, %d dataset, want 5", len(viaLoader), len(viaDataset))
	}
	for i := range viaLoader {
		if viaLoader[i] != viaDataset[i] {
			t.Fatalf("iter %d: loss %v via loader, %v via dataset", i, viaLoader[i], viaDataset[i])
		}
	}

	m := NewModel(cfg, 16, 5)
	tr := NewTrainer(m, par.Default, embedding.RaceFree, 0.5, FP32)
	for _, tc := range []struct {
		name string
		o    RunOpts
	}{
		{"no source", RunOpts{Iters: 1}},
		{"both sources", RunOpts{Loader: ld, Dataset: ds, Iters: 1}},
		{"zero iters", RunOpts{Dataset: ds}},
	} {
		if err := tr.Run(tc.o); err == nil {
			t.Errorf("%s: Run accepted an invalid RunOpts", tc.name)
		}
	}
}

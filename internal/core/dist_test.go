package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/fabric"
	"repro/internal/par"
	"repro/internal/perfmodel"
)

func distTestConfig(cfg Config, ranks, globalN, iters int, v Variant, functional bool) DistConfig {
	// Pinned to the paper's instrumented flat-sync schedule: these tests
	// measure the reproduction semantics, not the (bucketed+overlapped)
	// defaults — tests that exercise a schedule knob set it explicitly.
	dc := DistConfig{
		Cfg:         cfg,
		Ranks:       ranks,
		GlobalN:     globalN,
		Iters:       iters,
		Variant:     v,
		Topo:        fabric.NewPrunedFatTree(ranks, 12.5e9),
		Socket:      perfmodel.CLX8280,
		Sync:        true,
		BucketBytes: FlatBuckets,
		Seed:        17,
		LR:          0.5,
	}
	if functional {
		run := cfg
		dc.RunCfg = &run
		dc.Dataset = data.NewClickLog(42, cfg.DenseIn, cfg.Rows, cfg.Lookups)
	}
	return dc
}

// trainSingle runs the single-socket trainer for comparison and returns the
// model plus the per-iteration losses.
func trainSingle(cfg Config, globalN, iters int, seed int64, lr float32) (*Model, []float64) {
	m := NewModel(cfg, mlpBlockFor(globalN), seed)
	pool := par.NewPool(2)
	defer pool.Close()
	tr := NewTrainer(m, pool, embedding.RaceFree, lr, FP32)
	ds := data.NewClickLog(42, cfg.DenseIn, cfg.Rows, cfg.Lookups)
	losses := make([]float64, iters)
	for i := 0; i < iters; i++ {
		losses[i] = tr.Step(ds.Batch(i, globalN))
	}
	return m, losses
}

// TestDistributedMatchesSingleSocket is the core hybrid-parallelism
// correctness check: R ranks training on shards of the same global batches
// must produce (nearly) the same model as one socket training on the full
// batches, for every communication strategy.
func TestDistributedMatchesSingleSocket(t *testing.T) {
	cfg := tinyConfig()
	const globalN, iters = 64, 3
	ref, _ := trainSingle(cfg, globalN, iters, 17, 0.5)

	for _, v := range Variants {
		for _, ranks := range []int{2, 4} {
			dc := distTestConfig(cfg, ranks, globalN, iters, v, true)
			res := RunDistributed(dc)

			// MLP replicas must agree across ranks and with the reference.
			for rk := 0; rk < ranks; rk++ {
				m := res.Models[rk]
				checkMLPClose(t, v.Name(), m, ref, 2e-3)
			}
			// Each owned table must match the reference's table.
			for rk := 0; rk < ranks; rk++ {
				m := res.Models[rk]
				for ti, tab := range m.Tables {
					if tab == nil {
						continue
					}
					for i := range tab.W {
						d := math.Abs(float64(tab.W[i] - ref.Tables[ti].W[i]))
						if d > 2e-3 {
							t.Fatalf("%s R=%d: table %d diverged by %g", v.Name(), ranks, ti, d)
						}
					}
				}
			}
		}
	}
}

func checkMLPClose(t *testing.T, label string, got, want *Model, tol float64) {
	t.Helper()
	var gotP, wantP [][]float32
	got.Bot.VisitParams(func(_ string, p []float32) { gotP = append(gotP, p) })
	got.Top.VisitParams(func(_ string, p []float32) { gotP = append(gotP, p) })
	want.Bot.VisitParams(func(_ string, p []float32) { wantP = append(wantP, p) })
	want.Top.VisitParams(func(_ string, p []float32) { wantP = append(wantP, p) })
	for pi := range gotP {
		for i := range gotP[pi] {
			d := math.Abs(float64(gotP[pi][i] - wantP[pi][i]))
			if d > tol {
				t.Fatalf("%s: MLP param %d diverged by %g", label, pi, d)
				return
			}
		}
	}
}

func TestDistributedRanksStayInSync(t *testing.T) {
	// Data-parallel MLP replicas must be identical across ranks after
	// training (they see the same reduced gradients).
	cfg := tinyConfig()
	dc := distTestConfig(cfg, 4, 64, 3, Variant{Alltoall, cluster.CCLBackend}, true)
	res := RunDistributed(dc)
	for rk := 1; rk < 4; rk++ {
		checkMLPClose(t, "replica sync", res.Models[rk], res.Models[0], 1e-7)
	}
}

func TestDistributedLossesRecorded(t *testing.T) {
	cfg := tinyConfig()
	dc := distTestConfig(cfg, 2, 64, 4, Variant{Alltoall, cluster.MPIBackend}, true)
	res := RunDistributed(dc)
	for rk := 0; rk < 2; rk++ {
		if len(res.Losses[rk]) != 4 {
			t.Fatalf("rank %d recorded %d losses want 4", rk, len(res.Losses[rk]))
		}
	}
}

func TestTimingOnlyModeRuns(t *testing.T) {
	// Paper-scale timing runs (no functional model) must work for all
	// configs and strategies and give sane positive times.
	for _, v := range Variants {
		dc := distTestConfig(Small, 8, Small.GlobalMB, 2, v, false)
		res := RunDistributed(dc)
		if res.IterSeconds <= 0 {
			t.Fatalf("%s: non-positive iteration time", v.Name())
		}
		if res.ComputePerIter <= 0 {
			t.Fatalf("%s: no compute time", v.Name())
		}
		if res.BusyPerIter["alltoall"] <= 0 {
			t.Fatalf("%s: no alltoall traffic recorded", v.Name())
		}
		if res.BusyPerIter["allreduce"] <= 0 {
			t.Fatalf("%s: no allreduce traffic recorded", v.Name())
		}
	}
}

func TestAlltoallBeatsScatterList(t *testing.T) {
	// Fig. 9: the native alltoall outperforms scatter-based redistribution
	// (the paper reports >2× end-to-end at scale; at minimum the comm time
	// must be clearly lower).
	mk := func(v Variant) *DistResult {
		return RunDistributed(distTestConfig(MLPerf, 16, MLPerf.GlobalMB, 3, v, false))
	}
	sl := mk(Variant{ScatterList, cluster.MPIBackend})
	a2a := mk(Variant{Alltoall, cluster.MPIBackend})
	if a2a.IterSeconds >= sl.IterSeconds {
		t.Fatalf("alltoall (%.1fms) must beat scatterlist (%.1fms)",
			a2a.IterSeconds*1e3, sl.IterSeconds*1e3)
	}
}

func TestCCLBeatsMPI(t *testing.T) {
	// Fig. 9/10: CCL-Alltoall beats MPI-Alltoall (no compute interference,
	// concurrent channels).
	mpi := RunDistributed(distTestConfig(Large, 16, Large.GlobalMB, 3, Variant{Alltoall, cluster.MPIBackend}, false))
	ccl := RunDistributed(distTestConfig(Large, 16, Large.GlobalMB, 3, Variant{Alltoall, cluster.CCLBackend}, false))
	if ccl.IterSeconds >= mpi.IterSeconds {
		t.Fatalf("CCL (%.1fms) must beat MPI (%.1fms)", ccl.IterSeconds*1e3, mpi.IterSeconds*1e3)
	}
	// And MPI's compute inflates under overlap versus blocking (the
	// progress-thread interference of Fig. 10), while CCL's does not.
	mpiCfg := distTestConfig(Large, 16, Large.GlobalMB, 3, Variant{Alltoall, cluster.MPIBackend}, false)
	mpiCfg.Blocking = true
	mpiBlocking := RunDistributed(mpiCfg)
	if mpi.ComputePerIter <= mpiBlocking.ComputePerIter*1.01 {
		t.Fatalf("MPI overlap compute %.2fms must exceed blocking %.2fms",
			mpi.ComputePerIter*1e3, mpiBlocking.ComputePerIter*1e3)
	}
	cclCfg := distTestConfig(Large, 16, Large.GlobalMB, 3, Variant{Alltoall, cluster.CCLBackend}, false)
	cclCfg.Blocking = true
	cclBlocking := RunDistributed(cclCfg)
	if rel := math.Abs(ccl.ComputePerIter-cclBlocking.ComputePerIter) / cclBlocking.ComputePerIter; rel > 0.01 {
		t.Fatalf("CCL compute must not change with overlap (rel diff %.3f)", rel)
	}
}

func TestBlockingExposesMoreCommunication(t *testing.T) {
	base := distTestConfig(Large, 8, Large.GlobalMB, 3, Variant{Alltoall, cluster.CCLBackend}, false)
	overlap := RunDistributed(base)
	base.Blocking = true
	blocking := RunDistributed(base)
	if blocking.TotalCommPerIter() <= overlap.TotalCommPerIter() {
		t.Fatalf("blocking comm %.2fms must exceed overlapped %.2fms",
			blocking.TotalCommPerIter()*1e3, overlap.TotalCommPerIter()*1e3)
	}
}

func TestStrongScalingSpeedup(t *testing.T) {
	// Strong scaling (Fig. 9): more ranks on a fixed problem must reduce
	// iteration time, with decaying efficiency.
	iterAt := func(ranks int) float64 {
		dc := distTestConfig(Large, ranks, Large.GlobalMB, 2, Variant{Alltoall, cluster.CCLBackend}, false)
		return RunDistributed(dc).IterSeconds
	}
	t4, t16, t64 := iterAt(4), iterAt(16), iterAt(64)
	if !(t16 < t4 && t64 < t16) {
		t.Fatalf("strong scaling broken: 4R=%.1fms 16R=%.1fms 64R=%.1fms", t4*1e3, t16*1e3, t64*1e3)
	}
	speedup := t4 / t64
	if speedup < 3 || speedup > 16 {
		t.Fatalf("4→64R speedup %.1f outside plausible range (paper: ~5-6x over 8x ranks)", speedup)
	}
}

func TestWeakScalingEfficiencyHigherThanStrong(t *testing.T) {
	// Fig. 12 vs Fig. 9: weak scaling sustains higher efficiency because
	// the alltoall volume grows with rank count while allreduce stays fixed.
	strong := func(r int) float64 {
		return RunDistributed(distTestConfig(Large, r, Large.GlobalMB, 2, Variant{Alltoall, cluster.CCLBackend}, false)).IterSeconds
	}
	weak := func(r int) float64 {
		return RunDistributed(distTestConfig(Large, r, Large.LocalMB*r, 2, Variant{Alltoall, cluster.CCLBackend}, false)).IterSeconds
	}
	strongEff := strong(4) / strong(32) / 8 // ideal = 1
	weakEff := weak(4) / weak(32)           // ideal = 1 (per-rank work constant)
	if weakEff < strongEff {
		t.Fatalf("weak efficiency %.2f must exceed strong %.2f", weakEff, strongEff)
	}
}

func TestLoaderArtifactGrowsWithGlobalMB(t *testing.T) {
	// §VI-D2: the data loader reads the full global minibatch on each rank,
	// so weak-scaling compute grows with rank count.
	mk := func(ranks int) *DistResult {
		dc := distTestConfig(MLPerf, ranks, MLPerf.LocalMB*ranks, 2, Variant{Alltoall, cluster.CCLBackend}, false)
		dc.Loader = LoaderGlobalMB
		return RunDistributed(dc)
	}
	small := mk(2)
	big := mk(16)
	if big.PrepPerIter["loader"] <= small.PrepPerIter["loader"] {
		t.Fatal("loader cost must grow with global minibatch")
	}
}

// TestShardedLoaderKillsWeakScalingArtifact pins the tentpole's timing
// story: under the global-read artifact, per-rank loader time grows with
// the rank count (weak scaling: GlobalN = LN·R); under the sharded
// pipeline it stays flat at ≈2 shares, so the Fig. 13 compute growth
// disappears.
func TestShardedLoaderKillsWeakScalingArtifact(t *testing.T) {
	mk := func(ranks int, mode LoaderMode) *DistResult {
		dc := distTestConfig(MLPerf, ranks, MLPerf.LocalMB*ranks, 2, Variant{Alltoall, cluster.CCLBackend}, false)
		dc.Loader = mode
		return RunDistributed(dc)
	}
	gSmall, gBig := mk(2, LoaderGlobalMB), mk(16, LoaderGlobalMB)
	if gBig.PrepPerIter["loader"] <= gSmall.PrepPerIter["loader"]*4 {
		t.Fatalf("artifact loader must grow ~8x from 2 to 16 ranks: %.3f vs %.3f ms",
			gSmall.PrepPerIter["loader"]*1e3, gBig.PrepPerIter["loader"]*1e3)
	}
	sSmall, sBig := mk(2, LoaderSharded), mk(16, LoaderSharded)
	if ratio := sBig.PrepPerIter["loader"] / sSmall.PrepPerIter["loader"]; ratio > 1.5 {
		t.Fatalf("sharded loader must stay ~flat across rank counts, grew %.2fx", ratio)
	}
	if sBig.PrepPerIter["loader"] >= gBig.PrepPerIter["loader"] {
		t.Fatalf("sharded loader (%.3f ms) must beat the artifact (%.3f ms) at 16 ranks",
			sBig.PrepPerIter["loader"]*1e3, gBig.PrepPerIter["loader"]*1e3)
	}
	// The artifact costs one global-batch read; sharded ≈ 2/R of it.
	if sBig.IterSeconds >= gBig.IterSeconds {
		t.Fatal("sharded loader must lower the weak-scaling iteration time")
	}
}

// TestLoaderModesLossParity is the functional half of the loader
// acceptance: training through the sharded streaming pipeline must produce
// the SAME losses as training through the global-read artifact (their
// batches are bit-identical by construction) and both must match the
// single-socket trainer on the full batches to float32 round-off, for
// every communication strategy at 2 and 4 ranks.
func TestLoaderModesLossParity(t *testing.T) {
	cfg := tinyConfig()
	const globalN, iters = 64, 3
	_, ref := trainSingle(cfg, globalN, iters, 17, 0.5)

	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	for _, v := range Variants {
		for _, ranks := range []int{2, 4} {
			meanLosses := map[LoaderMode][]float64{}
			for _, mode := range []LoaderMode{LoaderGlobalMB, LoaderSharded} {
				dc := distTestConfig(cfg, ranks, globalN, iters, v, true)
				dc.Loader = mode
				dc.Pools = pools
				dc.Workspaces = wss
				res := RunDistributed(dc)
				for it := 0; it < iters; it++ {
					var mean float64
					for rk := 0; rk < ranks; rk++ {
						mean += res.Losses[rk][it]
					}
					mean /= float64(ranks)
					meanLosses[mode] = append(meanLosses[mode], mean)
					if d := math.Abs(mean - ref[it]); d > 1e-6 {
						t.Errorf("%s %s R=%d iter %d: loss %v vs single-socket %v (|Δ|=%g > 1e-6)",
							v.Name(), mode, ranks, it, mean, ref[it], d)
					}
				}
			}
			for it := 0; it < iters; it++ {
				g, s := meanLosses[LoaderGlobalMB][it], meanLosses[LoaderSharded][it]
				if d := math.Abs(g - s); d > 1e-6 {
					t.Errorf("%s R=%d iter %d: global-read loss %v vs sharded %v (|Δ|=%g > 1e-6)",
						v.Name(), ranks, it, g, s, d)
				}
			}
		}
	}
}

func TestMPIInOrderAlltoallArtifact(t *testing.T) {
	// §VI-D1: with the MPI backend and overlapping communication, allreduce
	// cost shows up at the alltoall wait (in-order completion), so the
	// alltoall wait share under MPI exceeds that under CCL.
	mpi := RunDistributed(distTestConfig(Large, 16, Large.GlobalMB, 3, Variant{Alltoall, cluster.MPIBackend}, false))
	ccl := RunDistributed(distTestConfig(Large, 16, Large.GlobalMB, 3, Variant{Alltoall, cluster.CCLBackend}, false))
	if mpi.WaitPerIter["alltoall"] <= ccl.WaitPerIter["alltoall"] {
		t.Fatalf("MPI alltoall wait %.2fms must exceed CCL %.2fms (in-order artifact)",
			mpi.WaitPerIter["alltoall"]*1e3, ccl.WaitPerIter["alltoall"]*1e3)
	}
}

func TestDistPanicsOnBadRankCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: ranks beyond table count")
		}
	}()
	RunDistributed(distTestConfig(Small, 16, Small.GlobalMB, 1, Variant{Alltoall, cluster.MPIBackend}, false))
}

func TestDegradedFabricSlowsTraining(t *testing.T) {
	// Failure injection: derating one socket's uplink must slow the whole
	// job — collectives synchronize, so one slow link paces everyone.
	base := distTestConfig(MLPerf, 8, MLPerf.GlobalMB, 2, Variant{Alltoall, cluster.CCLBackend}, false)
	healthy := RunDistributed(base)
	base.Topo = fabric.NewDegraded(fabric.NewPrunedFatTree(8, 12.5e9), map[int]float64{2: 0.1})
	degraded := RunDistributed(base)
	if degraded.IterSeconds <= healthy.IterSeconds*1.2 {
		t.Fatalf("degraded link should slow iteration: %.2fms vs %.2fms",
			degraded.IterSeconds*1e3, healthy.IterSeconds*1e3)
	}
}

func TestCommCoresKnob(t *testing.T) {
	// The §IV-A S knob: 1 comm core exposes more communication than 4.
	mk := func(s int) *DistResult {
		dc := distTestConfig(Large, 16, Large.GlobalMB, 2, Variant{Alltoall, cluster.CCLBackend}, false)
		dc.CommCores = s
		return RunDistributed(dc)
	}
	one, four := mk(1), mk(4)
	if one.TotalCommPerIter() <= four.TotalCommPerIter() {
		t.Fatalf("1 comm core should expose more comm than 4: %.2f vs %.2f ms",
			one.TotalCommPerIter()*1e3, four.TotalCommPerIter()*1e3)
	}
	if one.ComputePerIter >= four.ComputePerIter {
		t.Fatal("1 comm core leaves more cores for compute")
	}
}

// TestOverlapReducesIterationTime pins the tentpole's timing claim: with
// the CCL backend and the native alltoall, the overlap-aware pipeline
// (async backward redistribution, deferred waits, distinct channels)
// strictly reduces the virtual iteration time versus the synchronous
// schedule on both the Fig. 9 strong-scaling and Fig. 12 weak-scaling runs
// at 16+ ranks.
func TestOverlapReducesIterationTime(t *testing.T) {
	v := Variant{Alltoall, cluster.CCLBackend}
	mk := func(ranks, gn int, overlap bool) *DistResult {
		dc := distTestConfig(Large, ranks, gn, 2, v, false)
		dc.Sync = !overlap
		return RunDistributed(dc)
	}
	for _, ranks := range []int{16, 32, 64} {
		for _, weak := range []bool{false, true} {
			gn := Large.GlobalMB
			label := "strong"
			if weak {
				gn = Large.LocalMB * ranks
				label = "weak"
			}
			sync := mk(ranks, gn, false)
			ovl := mk(ranks, gn, true)
			if ovl.IterSeconds >= sync.IterSeconds {
				t.Errorf("%s %dR: overlapped %.3fms must beat sync %.3fms",
					label, ranks, ovl.IterSeconds*1e3, sync.IterSeconds*1e3)
			}
		}
	}
}

// TestOverlapHidesBackwardAlltoall checks the mechanism, not just the
// outcome: under the overlapped schedule the alltoall's exposed wait drops
// (part of the backward redistribution hides behind the bottom-MLP
// backward) while its busy time is unchanged — the collective itself got
// no faster, it just stopped stalling the compute stream.
func TestOverlapHidesBackwardAlltoall(t *testing.T) {
	v := Variant{Alltoall, cluster.CCLBackend}
	mk := func(overlap bool) *DistResult {
		dc := distTestConfig(Large, 32, Large.GlobalMB, 2, v, false)
		dc.Sync = !overlap
		return RunDistributed(dc)
	}
	sync, ovl := mk(false), mk(true)
	if ovl.WaitPerIter["alltoall"] >= sync.WaitPerIter["alltoall"] {
		t.Errorf("overlap must reduce exposed alltoall wait: %.3f vs %.3f ms",
			ovl.WaitPerIter["alltoall"]*1e3, sync.WaitPerIter["alltoall"]*1e3)
	}
	rel := math.Abs(ovl.BusyPerIter["alltoall"]-sync.BusyPerIter["alltoall"]) / sync.BusyPerIter["alltoall"]
	if rel > 1e-9 {
		t.Errorf("alltoall busy time must not change with overlap (rel diff %g)", rel)
	}
}

// TestOverlapHidesLoaderCharge pins the prefetch-hidden loader model: the
// background-charged loader exposes only its cold start, so the exposed
// share shrinks with the iteration count while busy time stays one charge
// per iteration — matching the real double-buffered prefetch goroutine.
func TestOverlapHidesLoaderCharge(t *testing.T) {
	mk := func(iters int, overlap bool) *DistResult {
		dc := distTestConfig(MLPerf, 16, MLPerf.LocalMB*16, iters, Variant{Alltoall, cluster.CCLBackend}, false)
		dc.Loader = LoaderSharded
		dc.Sync = !overlap
		return RunDistributed(dc)
	}
	sync := mk(4, false)
	ovl := mk(4, true)
	if sync.PrepPerIter["loader"] <= 0 {
		t.Fatal("sync schedule must charge the loader serially")
	}
	if ovl.PrepPerIter["loader"] != 0 {
		t.Fatal("overlapped schedule must not charge the loader as serial Prep")
	}
	// Busy equals the serial charge (same work, different stream)…
	if d := math.Abs(ovl.BusyPerIter["loader"] - sync.PrepPerIter["loader"]); d > 1e-12 {
		t.Errorf("loader busy %.6fms must equal the serial charge %.6fms",
			ovl.BusyPerIter["loader"]*1e3, sync.PrepPerIter["loader"]*1e3)
	}
	// …but most of it hides behind the previous iteration's compute: only
	// the cold start is exposed, so 1/iters of the total.
	if ovl.WaitPerIter["loader"] >= ovl.BusyPerIter["loader"]*0.5 {
		t.Errorf("loader exposure %.3fms should be far below busy %.3fms (cold start only)",
			ovl.WaitPerIter["loader"]*1e3, ovl.BusyPerIter["loader"]*1e3)
	}
	long := mk(8, true)
	if long.WaitPerIter["loader"] >= ovl.WaitPerIter["loader"] {
		t.Error("amortized cold start: more iterations must reduce per-iter loader exposure")
	}
	if ovl.IterSeconds >= sync.IterSeconds {
		t.Errorf("hiding the loader must reduce iteration time: %.3f vs %.3f ms",
			ovl.IterSeconds*1e3, sync.IterSeconds*1e3)
	}
}

// TestExposuresAccounting checks the per-label breakdown the overlap
// ablation reports: Busy = Exposed + Hidden for every label (Hidden clamped
// at zero), and under the overlapped pipeline the allreduce label is mostly
// hidden on the CCL backend (the paper's §IV-A design point).
func TestExposuresAccounting(t *testing.T) {
	dc := distTestConfig(Large, 32, Large.GlobalMB, 2, Variant{Alltoall, cluster.CCLBackend}, false)
	dc.Sync = false
	res := RunDistributed(dc)
	seen := map[string]bool{}
	for _, e := range res.Exposures() {
		seen[e.Label] = true
		if e.Busy < 0 || e.Exposed < 0 || e.Hidden < 0 {
			t.Fatalf("%s: negative component %+v", e.Label, e)
		}
		if e.Busy > e.Exposed && math.Abs(e.Busy-e.Exposed-e.Hidden) > 1e-12 {
			t.Fatalf("%s: busy %.9f != exposed %.9f + hidden %.9f", e.Label, e.Busy, e.Exposed, e.Hidden)
		}
		if s := e.HiddenShare(); s < 0 || s > 1 {
			t.Fatalf("%s: hidden share %v out of range", e.Label, s)
		}
	}
	if !seen["alltoall"] || !seen["allreduce"] {
		t.Fatalf("expected alltoall and allreduce labels, got %v", seen)
	}
	for _, e := range res.Exposures() {
		if e.Label == "allreduce" && e.HiddenShare() < 0.5 {
			t.Errorf("CCL overlapped allreduce should be mostly hidden, share %.2f", e.HiddenShare())
		}
	}
}

// TestHierarchicalAllreduceSelectable checks the DistConfig algorithm knob:
// the hierarchical two-level allreduce must strictly reduce the allreduce
// busy time versus the ring on the fat-tree (it halves the latency term at
// identical volume), and the binary tree must change the charge too.
func TestHierarchicalAllreduceSelectable(t *testing.T) {
	mk := func(algo comm.AllreduceAlgo) *DistResult {
		dc := distTestConfig(Small, 8, Small.GlobalMB, 2, Variant{Alltoall, cluster.CCLBackend}, false)
		dc.Sync = false
		dc.Allreduce = algo
		return RunDistributed(dc)
	}
	ring, hier, tree := mk(comm.RingRSAG), mk(comm.Hierarchical), mk(comm.BinaryTree)
	if hier.BusyPerIter["allreduce"] >= ring.BusyPerIter["allreduce"] {
		t.Errorf("hierarchical allreduce busy %.4fms must beat ring %.4fms",
			hier.BusyPerIter["allreduce"]*1e3, ring.BusyPerIter["allreduce"]*1e3)
	}
	if tree.BusyPerIter["allreduce"] == ring.BusyPerIter["allreduce"] {
		t.Error("binary-tree allreduce must charge a different cost model than ring")
	}
}

// TestOverlapLossParity extends the loss-parity invariant to the overlapped
// pipeline and both new allreduce algorithms: reordering issue points and
// deferring waits must not move a single bit of the functional math — the
// mean shard loss must still match the single-socket trainer at 1e-6 for
// every strategy on both backends.
func TestOverlapLossParity(t *testing.T) {
	cfg := tinyConfig()
	const globalN, iters = 64, 3
	_, ref := trainSingle(cfg, globalN, iters, 17, 0.5)

	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	check := func(v Variant, ranks int, algo comm.AllreduceAlgo, loader LoaderMode) {
		dc := distTestConfig(cfg, ranks, globalN, iters, v, true)
		dc.Sync = false
		dc.Allreduce = algo
		dc.Loader = loader
		dc.Pools = pools
		dc.Workspaces = wss
		res := RunDistributed(dc)
		for it := 0; it < iters; it++ {
			var mean float64
			for rk := 0; rk < ranks; rk++ {
				mean += res.Losses[rk][it]
			}
			mean /= float64(ranks)
			if d := math.Abs(mean - ref[it]); d > 1e-6 {
				t.Errorf("%s R=%d %v %v iter %d: loss %v vs single-socket %v (|Δ|=%g > 1e-6)",
					v.Name(), ranks, algo, loader, it, mean, ref[it], d)
			}
		}
	}
	for _, v := range Variants {
		for _, ranks := range []int{2, 4} {
			check(v, ranks, comm.RingRSAG, LoaderNone)
		}
	}
	// Algorithm selection changes only the cost model; parity must survive
	// it, as must the prefetch-hidden loader modes.
	ccl := Variant{Alltoall, cluster.CCLBackend}
	check(ccl, 4, comm.Hierarchical, LoaderNone)
	check(ccl, 4, comm.BinaryTree, LoaderNone)
	check(ccl, 4, comm.RingRSAG, LoaderSharded)
	check(ccl, 2, comm.RingRSAG, LoaderGlobalMB)
}

// TestDistributedLossParity is the workspace-aliasing canary: with per-rank
// buffer reuse across iterations, any stale or cross-wired view (send
// overwritten before consumption, recv shared between tables, gradient rows
// assembled into the wrong slot) shifts the loss trajectory. The average of
// the per-rank shard losses is mathematically the global-batch loss, so a
// functional run must match the single-socket trainer on identical data to
// float32 round-off — far tighter than the parameter-level check above.
func TestDistributedLossParity(t *testing.T) {
	cfg := tinyConfig()
	const globalN, iters = 64, 3
	_, ref := trainSingle(cfg, globalN, iters, 17, 0.5)

	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	for _, v := range Variants {
		for _, ranks := range []int{2, 4} {
			dc := distTestConfig(cfg, ranks, globalN, iters, v, true)
			// Shared pools and workspaces across all variant × rank runs:
			// exactly the reuse pattern the figure sweeps rely on.
			dc.Pools = pools
			dc.Workspaces = wss
			res := RunDistributed(dc)
			for it := 0; it < iters; it++ {
				var mean float64
				for rk := 0; rk < ranks; rk++ {
					mean += res.Losses[rk][it]
				}
				mean /= float64(ranks)
				if d := math.Abs(mean - ref[it]); d > 1e-6 {
					t.Errorf("%s R=%d iter %d: loss %v vs single-socket %v (|Δ|=%g > 1e-6)",
						v.Name(), ranks, it, mean, ref[it], d)
				}
			}
		}
	}
}

// TestBucketedReducesIterationTime pins the tentpole's headline: at Large
// 64R strong scaling the bucketed+overlapped schedule must strictly beat
// the flat overlapped pipeline (which beats sync), because every bucket's
// allreduce starts as soon as its layers' backward completes and drains
// across the round-robined channels behind the remaining backward compute —
// instead of the whole flat buffer waiting for the full backward and one
// FIFO.
func TestBucketedReducesIterationTime(t *testing.T) {
	v := Variant{Alltoall, cluster.CCLBackend}
	mk := func(ranks, gn int, overlap bool, bucketBytes int) *DistResult {
		dc := distTestConfig(Large, ranks, gn, 2, v, false)
		dc.Sync = !overlap
		dc.BucketBytes = bucketBytes
		return RunDistributed(dc)
	}
	const bucket = 64 << 20
	for _, ranks := range []int{32, 64} {
		for _, weak := range []bool{false, true} {
			gn := Large.GlobalMB
			label := "strong"
			if weak {
				gn = Large.LocalMB * ranks
				label = "weak"
			}
			flat := mk(ranks, gn, true, FlatBuckets)
			bkt := mk(ranks, gn, true, bucket)
			if bkt.IterSeconds >= flat.IterSeconds {
				t.Errorf("%s %dR: bucketed %.1fms must beat flat overlapped %.1fms",
					label, ranks, bkt.IterSeconds*1e3, flat.IterSeconds*1e3)
			}
		}
	}
}

// TestBucketedHidesBothAllreduces checks the mechanism behind the win: at
// Large 64R both MLP gradient allreduces are ≥90% hidden behind compute
// under the bucketed+overlapped schedule, while their summed busy time
// matches the flat schedule's single allreduce label (the segmentation
// moves no extra bytes — RingRSAG's per-bucket costs are linear in volume).
func TestBucketedHidesBothAllreduces(t *testing.T) {
	v := Variant{Alltoall, cluster.CCLBackend}
	mk := func(bucketBytes int) *DistResult {
		dc := distTestConfig(Large, 64, Large.GlobalMB, 2, v, false)
		dc.Sync = false
		dc.BucketBytes = bucketBytes
		return RunDistributed(dc)
	}
	flat, bkt := mk(FlatBuckets), mk(64<<20)
	var top, bot Exposure
	for _, e := range bkt.Exposures() {
		switch e.Label {
		case "ar-top":
			top = e
		case "ar-bot":
			bot = e
		}
	}
	if top.Busy <= 0 || bot.Busy <= 0 {
		t.Fatalf("bucketed run must record ar-top/ar-bot busy time: %+v %+v", top, bot)
	}
	if s := top.HiddenShare(); s < 0.9 {
		t.Errorf("ar-top hidden share %.2f, want >= 0.90", s)
	}
	if s := bot.HiddenShare(); s < 0.9 {
		t.Errorf("ar-bot hidden share %.2f, want >= 0.90", s)
	}
	// Segmentation moves the same bytes but each bucket pays its own ring
	// latency phases, so summed busy sits slightly ABOVE the flat allreduce
	// — never below, and within a few percent (the latency term).
	sum := top.Busy + bot.Busy
	if ref := flat.BusyPerIter["allreduce"]; sum < ref || sum > ref*1.1 {
		t.Errorf("bucketed busy %.3fms outside [flat, flat+10%%] of %.3fms: segmentation changed the volume model",
			sum*1e3, ref*1e3)
	}
	if bkt.BusyPerIter["allreduce"] != 0 {
		t.Error("bucketed runs must not emit the flat 'allreduce' label")
	}
}

// TestBucketedLossParity is the functional acceptance of the bucketed
// pipeline: layer-stepped backward, per-bucket allreduces over flat-buffer
// segments, and per-bucket SGD slices must not move a single bit — the mean
// shard loss must match the single-socket trainer at 1e-6 for every
// communication strategy on both backends, under both schedules, through
// both real loader modes, and for the selectable allreduce algorithms. The
// small BucketBytes forces multi-layer coalescing on the tiny config, so
// buckets genuinely span layer groups.
func TestBucketedLossParity(t *testing.T) {
	cfg := tinyConfig()
	const globalN, iters = 64, 3
	const bucketBytes = 4096
	_, ref := trainSingle(cfg, globalN, iters, 17, 0.5)

	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	check := func(v Variant, ranks int, overlap bool, algo comm.AllreduceAlgo, loader LoaderMode) {
		t.Helper()
		dc := distTestConfig(cfg, ranks, globalN, iters, v, true)
		dc.Sync = !overlap
		dc.Allreduce = algo
		dc.Loader = loader
		dc.BucketBytes = bucketBytes
		dc.Pools = pools
		dc.Workspaces = wss
		res := RunDistributed(dc)
		for it := 0; it < iters; it++ {
			var mean float64
			for rk := 0; rk < ranks; rk++ {
				mean += res.Losses[rk][it]
			}
			mean /= float64(ranks)
			if d := math.Abs(mean - ref[it]); d > 1e-6 {
				t.Errorf("%s R=%d overlap=%v %v %v iter %d: loss %v vs single-socket %v (|Δ|=%g > 1e-6)",
					v.Name(), ranks, overlap, algo, loader, it, mean, ref[it], d)
			}
		}
	}
	for _, v := range Variants {
		for _, ranks := range []int{2, 4} {
			for _, overlap := range []bool{false, true} {
				for _, loader := range []LoaderMode{LoaderSharded, LoaderGlobalMB} {
					check(v, ranks, overlap, comm.RingRSAG, loader)
				}
			}
		}
	}
	ccl := Variant{Alltoall, cluster.CCLBackend}
	check(ccl, 4, true, comm.Hierarchical, LoaderNone)
	check(ccl, 4, true, comm.BinaryTree, LoaderNone)
}

// TestAutoLossParity extends the parity invariant to Allreduce=Auto: the
// per-bucket (and flat-path) cost-model selection changes only the charged
// time, never the data movement, so the mean shard loss must still match
// the single-socket trainer at 1e-6 for every strategy on both backends
// and through both real loader modes — bucketed (small buckets forcing
// per-bucket selection on real segment volumes) and flat.
func TestAutoLossParity(t *testing.T) {
	cfg := tinyConfig()
	const globalN, iters = 64, 3
	_, ref := trainSingle(cfg, globalN, iters, 17, 0.5)

	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	check := func(v Variant, ranks int, bucketBytes int, loader LoaderMode) {
		t.Helper()
		dc := distTestConfig(cfg, ranks, globalN, iters, v, true)
		dc.Sync = false
		dc.Allreduce = comm.AllreduceAuto
		dc.BucketBytes = bucketBytes
		dc.Loader = loader
		dc.Pools = pools
		dc.Workspaces = wss
		res := RunDistributed(dc)
		for it := 0; it < iters; it++ {
			var mean float64
			for rk := 0; rk < ranks; rk++ {
				mean += res.Losses[rk][it]
			}
			mean /= float64(ranks)
			if d := math.Abs(mean - ref[it]); d > 1e-6 {
				t.Errorf("%s R=%d bucket=%d %v iter %d: loss %v vs single-socket %v (|Δ|=%g > 1e-6)",
					v.Name(), ranks, bucketBytes, loader, it, mean, ref[it], d)
			}
		}
	}
	for _, v := range Variants {
		for _, loader := range []LoaderMode{LoaderSharded, LoaderGlobalMB} {
			check(v, 4, 4096, loader)
		}
	}
	ccl := Variant{Alltoall, cluster.CCLBackend}
	check(ccl, 2, 4096, LoaderNone)
	check(ccl, 4, FlatBuckets, LoaderNone)
}

// TestDefaultScheduleIsBucketedOverlapped pins the default flip: a
// DistConfig that sets no schedule knob runs the bucketed+overlapped
// pipeline — ar-top/ar-bot labels, no flat "allreduce" label — and beats
// the explicit flat-sync configuration the paper figures pin.
func TestDefaultScheduleIsBucketedOverlapped(t *testing.T) {
	mk := func(sync bool, bucketBytes int) *DistResult {
		dc := DistConfig{
			Cfg:         Large,
			Ranks:       64,
			GlobalN:     Large.GlobalMB,
			Iters:       2,
			Variant:     Variant{Alltoall, cluster.CCLBackend},
			Topo:        fabric.NewPrunedFatTree(64, 12.5e9),
			Socket:      perfmodel.CLX8280,
			Sync:        sync,
			BucketBytes: bucketBytes,
		}
		return RunDistributed(dc)
	}
	def := mk(false, 0) // all schedule knobs at their zero values
	if def.BusyPerIter["ar-top"] <= 0 || def.BusyPerIter["ar-bot"] <= 0 {
		t.Fatal("default schedule must run the bucketed allreduces (ar-top/ar-bot)")
	}
	if def.BusyPerIter["allreduce"] != 0 {
		t.Fatal("default schedule must not emit the flat 'allreduce' label")
	}
	flatSync := mk(true, FlatBuckets)
	if def.IterSeconds >= flatSync.IterSeconds {
		t.Errorf("default bucketed+overlapped (%.1fms) must beat flat sync (%.1fms)",
			def.IterSeconds*1e3, flatSync.IterSeconds*1e3)
	}
	// The tuned default bucket size must match the explicit constant.
	explicit := mk(false, DefaultBucketBytes)
	if d := math.Abs(def.IterSeconds - explicit.IterSeconds); d > 1e-12 {
		t.Errorf("zero-value BucketBytes must resolve to DefaultBucketBytes: %.6f vs %.6f ms",
			def.IterSeconds*1e3, explicit.IterSeconds*1e3)
	}
}

// TestBucketedReplicasStayInSync extends the replica-sync invariant to the
// bucketed pipeline: per-bucket reductions and per-bucket optimizer slices
// must leave every rank's MLP replica bit-identical.
func TestBucketedReplicasStayInSync(t *testing.T) {
	cfg := tinyConfig()
	dc := distTestConfig(cfg, 4, 64, 3, Variant{Alltoall, cluster.CCLBackend}, true)
	dc.Sync = false
	dc.BucketBytes = 4096
	res := RunDistributed(dc)
	for rk := 1; rk < 4; rk++ {
		checkMLPClose(t, "bucketed replica sync", res.Models[rk], res.Models[0], 1e-7)
	}
}

// TestExposuresProperty property-tests the Exposures() accounting across
// the whole schedule × algorithm × strategy space: for every label, busy
// splits exactly into exposed + hidden whenever busy ≥ exposed (hidden is
// clamped at zero when per-channel queueing pushes exposure past busy), and
// HiddenShare always lands in [0, 1].
func TestExposuresProperty(t *testing.T) {
	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	for _, strat := range []CommStrategy{ScatterList, FusedScatter, Alltoall} {
		for _, backend := range []cluster.Backend{cluster.MPIBackend, cluster.CCLBackend} {
			for _, overlap := range []bool{false, true} {
				for _, algo := range append([]comm.AllreduceAlgo{comm.AllreduceAuto}, comm.AllreduceAlgos...) {
					for _, bucketBytes := range []int{FlatBuckets, 1 << 20} {
						dc := distTestConfig(Small, 8, Small.GlobalMB, 2, Variant{strat, backend}, false)
						dc.Sync = !overlap
						dc.Allreduce = algo
						dc.BucketBytes = bucketBytes
						dc.Loader = LoaderSharded
						dc.Pools = pools
						dc.Workspaces = wss
						res := RunDistributed(dc)
						if len(res.Exposures()) == 0 {
							t.Fatalf("%v/%v overlap=%v %v: no exposures recorded", strat, backend, overlap, algo)
						}
						for _, e := range res.Exposures() {
							if e.Busy < 0 || e.Exposed < 0 || e.Hidden < 0 {
								t.Fatalf("%v/%v overlap=%v %v bucket=%d %s: negative component %+v",
									strat, backend, overlap, algo, bucketBytes, e.Label, e)
							}
							want := e.Busy - e.Exposed
							if want < 0 {
								want = 0
							}
							if math.Abs(e.Hidden-want) > 1e-12 {
								t.Fatalf("%v/%v overlap=%v %v bucket=%d %s: hidden %.12f want %.12f (busy %.12f exposed %.12f)",
									strat, backend, overlap, algo, bucketBytes, e.Label, e.Hidden, want, e.Busy, e.Exposed)
							}
							if e.Busy > e.Exposed && math.Abs(e.Busy-e.Exposed-e.Hidden) > 1e-12 {
								t.Fatalf("%v/%v %s: busy %.12f != exposed %.12f + hidden %.12f",
									strat, backend, e.Label, e.Busy, e.Exposed, e.Hidden)
							}
							if s := e.HiddenShare(); s < 0 || s > 1 {
								t.Fatalf("%v/%v %s: hidden share %v outside [0,1]", strat, backend, e.Label, s)
							}
						}
					}
				}
			}
		}
	}
}

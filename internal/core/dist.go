package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/embstore"
	"repro/internal/fabric"
	"repro/internal/loss"
	"repro/internal/par"
	"repro/internal/perfmodel"
)

// CommStrategy selects how embedding outputs switch from model to data
// parallelism at the interaction op (§IV-B).
type CommStrategy int

const (
	// ScatterList issues one scatter per embedding table — the original
	// multi-device DLRM pattern, many small backend calls.
	ScatterList CommStrategy = iota
	// FusedScatter coalesces each rank's local tables into one buffer and
	// issues one scatter per rank.
	FusedScatter
	// Alltoall uses the single native all-to-all collective.
	Alltoall
)

// String returns the paper's label.
func (s CommStrategy) String() string {
	switch s {
	case ScatterList:
		return "ScatterList"
	case FusedScatter:
		return "Fused Scatter"
	case Alltoall:
		return "Alltoall"
	default:
		return fmt.Sprintf("CommStrategy(%d)", int(s))
	}
}

// Variant couples a communication strategy with a backend — the four lines
// of Figs. 9/12.
type Variant struct {
	Strategy CommStrategy
	Backend  cluster.Backend
}

// Name returns the figure legend label (e.g. "CCL Alltoall").
func (v Variant) Name() string {
	prefix := "MPI"
	if v.Backend == cluster.CCLBackend {
		prefix = "CCL"
	}
	return prefix + " " + v.Strategy.String()
}

// Variants lists the four evaluated combinations in figure order.
var Variants = []Variant{
	{ScatterList, cluster.MPIBackend},
	{FusedScatter, cluster.MPIBackend},
	{Alltoall, cluster.MPIBackend},
	{Alltoall, cluster.CCLBackend},
}

// loaderPerSample is the per-sample cost of the framework data loader
// (§VI-D2), calibrated so 26 ranks × LN=2048 adds ≈20 ms as in Fig. 13
// under the global-read artifact.
const loaderPerSample = 400e-9

// LoaderMode selects how the data loader's cost — and, in functional mode,
// its actual execution — is modeled per rank.
type LoaderMode int

const (
	// LoaderNone does not model the dataset read (the paper's Small/Large
	// runs, where loading is negligible).
	LoaderNone LoaderMode = iota
	// LoaderGlobalMB is the §VI-D2 artifact: every rank reads the FULL
	// global minibatch, so loading grows with rank count under weak
	// scaling (the paper's MLPerf runs have it; Fig. 13's compute growth).
	LoaderGlobalMB
	// LoaderSharded is the fixed pipeline: every rank reads only its N/R
	// sample slice plus its owned tables' full-batch index columns —
	// ≈2 shares of the global batch, constant in rank count.
	LoaderSharded
)

// String returns the mode's experiment label.
func (m LoaderMode) String() string {
	switch m {
	case LoaderNone:
		return "none"
	case LoaderGlobalMB:
		return "global-read"
	case LoaderSharded:
		return "sharded"
	default:
		return fmt.Sprintf("LoaderMode(%d)", int(m))
	}
}

// DistConfig describes one distributed DLRM run.
type DistConfig struct {
	Cfg     Config // paper-scale config: drives all modeled times/volumes
	Ranks   int
	GlobalN int
	Iters   int

	Variant  Variant
	Blocking bool
	Topo     fabric.Topology
	Socket   perfmodel.Socket
	// CommCores overrides the number of cores dedicated to communication
	// (0 = backend default: 4 for CCL, none for MPI). The §IV-A tuning knob S.
	CommCores int
	// Loader selects the data-pipeline model: none, the §VI-D2 global-read
	// artifact, or the sharded streaming pipeline. In functional mode it
	// also selects which real loader feeds the ranks (LoaderNone trains
	// through the sharded pipeline without charging for it).
	Loader LoaderMode
	// Sync selects the paper's instrumented synchronous schedule: backward
	// redistribution waited where issued, loader charged serially, label-hash
	// channel placement. The zero value runs the overlap-aware pipeline
	// (§IV-A, §VI-D) — the best known schedule, and the default since the
	// bucketed+overlapped flip: the backward embedding redistribution is
	// issued as soon as the interaction backward produces its gradients and
	// waited only at the embedding update, the loader's per-iteration charge
	// runs on the background prefetch stream hidden behind the previous
	// iteration's compute, and concurrent collectives are pinned to distinct
	// CCL channels.
	Sync bool
	// Allreduce selects the MLP-gradient allreduce algorithm's cost model
	// (data movement is identical). The zero value is the ring
	// reduce-scatter+all-gather the paper's tuned runs use; AllreduceAuto
	// picks the cost-model minimum per allreduce (per bucket, under the
	// bucketed schedule).
	Allreduce comm.AllreduceAlgo
	// BucketBytes sizes the per-layer bucketed gradient allreduce of Fig. 2:
	// the backward pass is layer-stepped, each MLP's flat gradient buffer is
	// carved into per-layer buckets coalesced up to this many bytes
	// (paper-scale volumes), and every bucket's allreduce is issued the
	// moment its last layer's backward completes — labeled "ar-top" /
	// "ar-bot" — with the waits deferred per-bucket to that bucket's slice
	// of the SGD. The zero value selects the tuned DefaultBucketBytes
	// (bucketed is the default schedule); FlatBuckets keeps the flat per-MLP
	// buffers and the single "allreduce" label — the paper-reproduction
	// schedule the original figures measure.
	BucketBytes int
	// BucketChannels is the CCL channel set bucketed allreduces round-robin
	// over under Overlap, keeping several buckets in flight on distinct
	// FIFOs. Nil selects channels 0-2: the forward-alltoall channel (idle
	// during the backward) plus the flat schedule's two allreduce channels;
	// the backward alltoall keeps channel 3 to itself. Ignored without
	// Overlap (label-hash placement, like the sync schedule's collectives)
	// and on MPI, which has a single in-order channel.
	BucketChannels []int
	// Contention selects the contention-aware fabric charging mode
	// (cluster.Config.Contention): concurrently in-flight collectives —
	// e.g. the up-to-3 bucket allreduces round-robining over CCL channels
	// 0-2 — split bottleneck-link bandwidth instead of each being priced
	// against an idle fabric. Off by default, so the committed virtual
	// baselines stay bit-identical; the contention experiments turn it on.
	Contention bool
	// Interference overrides the MPI compute-interference factor (≥ 1; 0 =
	// the backend default, 1.3). The §VI-D1 figure sets it to 1 to isolate
	// the flat-factor artifact from the link-level mechanics. Ignored for
	// CCL.
	Interference float64

	// EmbCacheBytes enables the tiered embedding parameter store
	// (internal/embstore): each rank fronts its owned table shard with a
	// hot-row cache of this many bytes while cold rows live behind a
	// modeled slower tier, opening the larger-than-memory table scenario.
	// Timing mode charges the analytic miss traffic — Zipf head mass of
	// the per-rank cache via embstore.HitRate — as a synchronous
	// "coldtier" fetch before the embedding forward and an asynchronous
	// "coldtier-wb" dirty write-back drained on the rank's background
	// stream (the CheckpointBW pattern); functional mode routes the
	// embedding forward and SGD write-back through a real embstore.Store,
	// bit-identical to the in-RAM path. 0 disables tiering entirely —
	// today's all-in-RAM behavior, bit-identical to the committed virtual
	// baselines. When set, ColdTierBW must be set too.
	EmbCacheBytes int
	// ColdTierBW is the modeled cold-tier streaming bandwidth in bytes/s
	// (DefaultColdTierBW is the conventional value; there is no implicit
	// default — a tiered run must state its cold tier). Only meaningful
	// with EmbCacheBytes.
	ColdTierBW float64
	// ColdTierLat is the modeled per-iteration cold-tier access latency in
	// seconds (0 = DefaultColdTierLat). Only meaningful with EmbCacheBytes.
	ColdTierLat float64
	// EmbSkew is the Zipf exponent the cold-tier charge assumes for lookup
	// traffic (0 = DefaultEmbSkew, the Criteo-like 1.05). Only meaningful
	// with EmbCacheBytes.
	EmbSkew float64

	// StartIter places this run inside a longer training timeline: the
	// functional loaders start at this global batch index and the
	// checkpoint cadence counts global iterations (StartIter+i), so a run
	// split into segments — the elastic driver's resume after a failure —
	// trains on exactly the batches the unsegmented run would (the
	// counter-based data streams make any batch index re-materializable).
	// Zero for a standalone run.
	StartIter int
	// CheckpointEvery takes a periodic shard checkpoint every N global
	// iterations: each rank snapshots its MLP replica plus owned tables and
	// drains the write on its background stream (cluster.Rank.Async) at
	// CheckpointBW, so the write is exposed — a "checkpoint" stall — only
	// when it outlasts the following iterations' compute. At most one write
	// is in flight per rank: the next snapshot waits for the previous
	// drain. 0 disables checkpointing (the default; the committed virtual
	// baselines carry no checkpoint charge).
	CheckpointEvery int
	// CheckpointBW is the modeled per-rank drain bandwidth to durable
	// storage in bytes/s (0 = DefaultCheckpointBW). Only meaningful with
	// CheckpointEvery.
	CheckpointBW float64
	// CheckpointSink, in functional mode, receives each rank's model at
	// every checkpoint boundary (iter = the global iteration count just
	// completed). The sink must serialize synchronously before returning —
	// the rank keeps training afterwards — and must be safe for concurrent
	// calls from different rank goroutines. Requires RunCfg.
	CheckpointSink func(rank, iter int, m *Model)
	// Restore, in functional mode, is invoked on each rank's freshly
	// initialized shard model before training starts — the elastic driver
	// loads the durable shard checkpoints here. Requires RunCfg.
	Restore func(rank int, m *Model)

	// Functional execution: when RunCfg is non-nil, every rank instantiates
	// a scaled model shard and really trains on Dataset (used by the
	// equivalence tests). Timing-only runs leave it nil.
	RunCfg  *Config
	Dataset data.Dataset
	Seed    int64
	LR      float32

	// Pools supplies the per-rank persistent compute pools (one per
	// simulated socket, sized to its compute cores) and Workspaces the
	// per-rank iteration buffers. Both are optional: a nil field makes the
	// run self-contained (transient pool set, fresh workspaces). Drivers
	// that issue many runs — figure sweeps, benchmarks — pass shared sets
	// so worker goroutines and buffers persist across runs. The caller
	// owning a shared Pools is responsible for closing it.
	Pools      *cluster.Pools
	Workspaces *DistWorkspaces
}

// DefaultBucketBytes is the tuned gradient-allreduce bucket size the
// bucketed schedule coalesces layers up to when DistConfig.BucketBytes is
// zero — 64 MiB, the autotuner's pick at the headline Fig. 9/12 scales
// (Large's 4096-wide top layers land one per bucket, MLPerf's whole MLPs
// fold into one).
const DefaultBucketBytes = 64 << 20

// DefaultCheckpointBW is the modeled per-rank checkpoint drain bandwidth
// when DistConfig.CheckpointBW is zero — 2 GB/s, a burst-buffer/local-NVMe
// figure for the CLX-era clusters of the paper.
const DefaultCheckpointBW = 2e9

// DefaultColdTierBW is the conventional cold-tier streaming bandwidth the
// flag defaults and figure fixtures use — 8 GB/s, a PMEM/NVMe-over-fabric
// figure for the CLX era. DistConfig has no implicit fallback: a tiered run
// must set ColdTierBW explicitly (Validate rejects EmbCacheBytes without
// it), so configs state the tier they are pricing.
const DefaultColdTierBW = 8e9

// DefaultColdTierLat is the per-iteration cold-tier access latency when
// DistConfig.ColdTierLat is zero — 20 µs, one round of batched misses.
const DefaultColdTierLat = 20e-6

// DefaultEmbSkew is the Zipf exponent the cold-tier charge assumes when
// DistConfig.EmbSkew is zero — 1.05, the Criteo-like skew of the MLPerf
// logs (data.NewClickLog's default).
const DefaultEmbSkew = 1.05

// shardCheckpointBytes is the serialized size of rank r's shard checkpoint
// at paper scale: its full MLP replica plus the embedding tables it owns
// under TableOwner. (Format framing — lengths, header, CRC — is noise at
// these volumes and is not charged.)
func shardCheckpointBytes(cfg Config, rank, ranks int) float64 {
	n := mlpParamBytes(cfg.BotSizes()) + mlpParamBytes(cfg.TopSizes())
	for t := 0; t < cfg.Tables; t++ {
		if TableOwner(t, ranks) == rank {
			n += float64(cfg.Rows[t]) * float64(cfg.EmbDim) * 4
		}
	}
	return n
}

// maxShardCheckpointBytes is the largest per-rank shard checkpoint at the
// given rank count — the volume that bounds restore time, since survivors
// re-read every shard blob in parallel and the slowest read gates restart.
func maxShardCheckpointBytes(cfg Config, ranks int) float64 {
	var m float64
	for r := 0; r < ranks; r++ {
		if b := shardCheckpointBytes(cfg, r, ranks); b > m {
			m = b
		}
	}
	return m
}

// FlatBuckets disables gradient-allreduce bucketing: one flat allreduce per
// MLP under the single "allreduce" label, the paper-reproduction schedule
// the original figures measure. (BucketBytes = 0 means the tuned default,
// not flat, since the bucketed+overlapped flip.)
const FlatBuckets = -1

// Overlapped reports whether the run uses the overlap-aware schedule (the
// default; Sync selects the instrumented synchronous one).
func (dc *DistConfig) Overlapped() bool { return !dc.Sync }

// EffectiveBucketBytes resolves the BucketBytes knob: the tuned default for
// the zero value, 0 (flat) for FlatBuckets, the explicit size otherwise.
func (dc *DistConfig) EffectiveBucketBytes() int {
	switch {
	case dc.BucketBytes == 0:
		return DefaultBucketBytes
	case dc.BucketBytes < 0:
		return 0
	default:
		return dc.BucketBytes
	}
}

// DistResult aggregates a run: virtual-time metrics (always) and the
// trained per-rank models (functional mode).
type DistResult struct {
	IterSeconds float64 // max over ranks of total virtual time / iters

	// Per-iteration averages over ranks, in seconds.
	ComputePerIter float64
	WaitPerIter    map[string]float64
	BusyPerIter    map[string]float64
	PrepPerIter    map[string]float64

	Stats  []cluster.Stats
	Models []*Model    // rank models (functional mode only)
	Losses [][]float64 // [rank][iter] local losses (functional mode only)
}

// MeanLosses reduces the per-rank loss curves to one loss per iteration —
// the mean over ranks, which (with the 1/globalN gradient scaling) is the
// global-batch loss an equivalent single-socket run reports. Nil in
// timing-only mode.
func (r *DistResult) MeanLosses() []float64 {
	if len(r.Losses) == 0 || r.Losses[0] == nil {
		return nil
	}
	out := make([]float64, len(r.Losses[0]))
	for _, ls := range r.Losses {
		for i, l := range ls {
			out[i] += l
		}
	}
	for i := range out {
		out[i] /= float64(len(r.Losses))
	}
	return out
}

// TotalCommPerIter returns the exposed communication time per iteration.
func (r *DistResult) TotalCommPerIter() float64 {
	var t float64
	for _, v := range r.WaitPerIter {
		t += v
	}
	return t
}

// Exposure decomposes one collective label's per-iteration time: Busy is
// the raw in-flight duration the cost models charged, Exposed the part the
// compute stream actually stalled on, and Hidden the part overlapped behind
// compute — the "how much communication is hidden" figure of §IV-A/§VI-D.
// Exposed can exceed Busy when per-channel FIFO queueing delays an
// operation's start beyond its issue point; Hidden is clamped at zero.
type Exposure struct {
	Label   string
	Busy    float64
	Exposed float64
	Hidden  float64
}

// HiddenShare returns the fraction of the label's busy time hidden behind
// compute (0 when the label never went busy).
func (e Exposure) HiddenShare() float64 {
	if e.Busy <= 0 {
		return 0
	}
	return e.Hidden / e.Busy
}

// Exposures reports the per-label exposed-vs-hidden communication breakdown.
//
// Order contract: entries are sorted by Label in ascending lexicographic
// (byte-wise) order, one entry per label that appears in either per-iter
// map, with no duplicates. Callers may rely on this — drivers index and
// diff the listing across runs and schedules, and a fixed label list in a
// driver is exactly the bug this contract replaces (a schedule that emits
// different labels, e.g. bucketed "ar-top:0..n" vs flat "allreduce", would
// silently print zeros). Labels that only ever waited (e.g. a barrier)
// appear with zero busy time. The order is pinned by a test.
func (r *DistResult) Exposures() []Exposure {
	labels := make([]string, 0, len(r.BusyPerIter)+len(r.WaitPerIter))
	for l := range r.BusyPerIter {
		labels = append(labels, l)
	}
	for l := range r.WaitPerIter {
		if _, ok := r.BusyPerIter[l]; !ok {
			labels = append(labels, l)
		}
	}
	sort.Strings(labels)
	out := make([]Exposure, 0, len(labels))
	for _, l := range labels {
		e := Exposure{Label: l, Busy: r.BusyPerIter[l], Exposed: r.WaitPerIter[l]}
		if e.Hidden = e.Busy - e.Exposed; e.Hidden < 0 {
			e.Hidden = 0
		}
		out = append(out, e)
	}
	return out
}

// funcState holds the real-execution state of one rank; the reusable
// buffers (including the flat MLP gradients) live in the rank's
// DistWorkspace and the data pipeline's staging buffers behind loader.
type funcState struct {
	model  *Model
	pool   *par.Pool
	cfg    Config // scaled config
	shardN int
	loader data.Loader
}

// RunDistributed executes the hybrid-parallel DLRM training loop on the
// simulated cluster and returns timing (and, in functional mode, models).
//
// Deprecated: use DistConfig.Run, which surfaces configuration errors
// instead of panicking. This wrapper survives for the figure drivers and
// tests that predate validation.
func RunDistributed(dc DistConfig) *DistResult {
	res, err := dc.Run()
	if err != nil {
		panic(err)
	}
	return res
}

// run executes an already-validated configuration (DistConfig.Run is the
// public entry and the only caller).
func (dc DistConfig) run() *DistResult {
	res := &DistResult{
		WaitPerIter: map[string]float64{},
		BusyPerIter: map[string]float64{},
		PrepPerIter: map[string]float64{},
		Models:      make([]*Model, dc.Ranks),
		Losses:      make([][]float64, dc.Ranks),
	}
	wss := dc.Workspaces
	if wss == nil {
		wss = NewDistWorkspaces()
	}
	ccfg := cluster.Config{
		Ranks:        dc.Ranks,
		Topo:         dc.Topo,
		Socket:       dc.Socket,
		Backend:      dc.Variant.Backend,
		Blocking:     dc.Blocking,
		CommCores:    dc.CommCores,
		Contention:   dc.Contention,
		Interference: dc.Interference,
		Pools:        dc.Pools, // nil ⇒ cluster.Run owns a transient set
	}
	stats := cluster.Run(ccfg, func(r *cluster.Rank) {
		dc.rankBody(r, wss.get(r.ID), res)
	})
	res.Stats = stats
	iters := float64(dc.Iters)
	var maxNow float64
	for _, s := range stats {
		now := s.Compute + s.TotalWait()
		for _, v := range s.Prep {
			now += v
		}
		if now > maxNow {
			maxNow = now
		}
		res.ComputePerIter += s.Compute / iters / float64(dc.Ranks)
		for k, v := range s.Wait {
			res.WaitPerIter[k] += v / iters / float64(dc.Ranks)
		}
		for k, v := range s.CommBusy {
			res.BusyPerIter[k] += v / iters / float64(dc.Ranks)
		}
		for k, v := range s.Prep {
			res.PrepPerIter[k] += v / iters / float64(dc.Ranks)
		}
	}
	res.IterSeconds = maxNow / iters
	return res
}

// rankBody is the SPMD program every rank executes. All reusable iteration
// state lives in ws; compute kernels run on the rank's persistent pool.
func (dc DistConfig) rankBody(r *cluster.Rank, ws *DistWorkspace, res *DistResult) {
	cm := comm.New(r, dc.Topo)
	cfg := dc.Cfg
	ranks := dc.Ranks
	shardN := dc.GlobalN / ranks
	ws.prepare(&dc, r.ID)
	locT := ws.locT
	maxLoc := MaxLocalTables(cfg, ranks)
	cores := r.ComputeCores()
	sock := dc.Socket

	var fn *funcState
	if dc.RunCfg != nil {
		m := NewModelShard(*dc.RunCfg, mlpBlockFor(shardN), dc.Seed, r.ID, ranks)
		fn = &funcState{
			model:  m,
			pool:   r.Pool(),
			cfg:    *dc.RunCfg,
			shardN: shardN,
		}
		ws.bindGrads(m)
		if dc.Restore != nil {
			dc.Restore(r.ID, m)
		}
		res.Models[r.ID] = m
		// Every rank owns a data loader over its slice of the dataset. The
		// staging buffers live in the rank's workspace, so successive runs
		// refill the same memory; the loader objects themselves are cheap
		// and per-run. LoaderGlobalMB executes the real artifact (full
		// global read + shard copy); everything else streams the sharded
		// pipeline.
		lc := data.LoaderConfig{
			DS: dc.Dataset, GlobalN: dc.GlobalN,
			Rank: r.ID, Ranks: ranks, Owned: locT,
			Start:   dc.StartIter,
			Buffers: &ws.loaderBufs,
		}
		if dc.Loader == LoaderGlobalMB {
			fn.loader = data.NewGlobalReadLoader(lc)
		} else {
			fn.loader = data.NewShardedLoader(lc)
		}
		defer fn.loader.Close()
	}

	// Modeled per-pass times from the paper-scale config.
	botFwd := sock.GemmTime(perfmodel.MLPPassFlops(cfg.BotSizes(), shardN),
		perfmodel.MLPPassBytes(cfg.BotSizes(), shardN), cores)
	topFwd := sock.GemmTime(perfmodel.MLPPassFlops(cfg.TopSizes(), shardN),
		perfmodel.MLPPassBytes(cfg.TopSizes(), shardN), cores)
	interFwd := sock.GemmTime(
		2*float64(shardN)*float64(cfg.InterDim()-cfg.EmbDim)*float64(cfg.EmbDim),
		8*float64(shardN)*float64(cfg.Tables+1)*float64(cfg.EmbDim), cores)
	embFwd := sock.StreamTime(perfmodel.EmbeddingFwdBytes(len(locT), dc.GlobalN, cfg.Lookups, cfg.EmbDim), cores)
	embUpd := sock.StreamTime(perfmodel.EmbeddingUpdBytes(len(locT), dc.GlobalN, cfg.Lookups, cfg.EmbDim), cores)
	sgdTime := sock.StreamTime(3*cfg.AllreduceBytes(), cores)

	// Modeled communication volumes (Table II / Eqs. 1-2).
	a2aBlockBytes := float64(maxLoc) * float64(shardN) * float64(cfg.EmbDim) * 4
	scatterBlockBytes := float64(shardN) * float64(cfg.EmbDim) * 4
	arBytesBot, arBytesTop := mlpParamBytes(cfg.BotSizes()), mlpParamBytes(cfg.TopSizes())

	// Per-iteration loader cost. The §VI-D2 artifact reads the FULL global
	// minibatch on every rank — O(N·R) cluster-wide; the sharded pipeline
	// reads only this rank's N/R sample slice plus its owned tables'
	// full-batch index columns — ≈2 shares, constant in R.
	var loaderCost float64
	switch dc.Loader {
	case LoaderGlobalMB:
		loaderCost = loaderPerSample * float64(dc.GlobalN)
	case LoaderSharded:
		ownedShare := float64(dc.GlobalN) * float64(len(locT)) / float64(cfg.Tables)
		loaderCost = loaderPerSample * (float64(shardN) + ownedShare)
	}

	// CCL channel plan: the overlapped pipeline pins each concurrently
	// in-flight collective to its own channel so the per-channel FIFO model
	// charges true contention; the sync schedule keeps label-hash placement.
	chFwd, chTop, chBot, chBwd := -1, -1, -1, -1
	if dc.Overlapped() {
		chFwd, chTop, chBot, chBwd = 0, 1, 2, 3
	}

	// Bucketed gradient allreduce (Fig. 2): carve the per-layer volumes into
	// buckets and derive the per-layer backward charges once per run; the
	// flat path (BucketBytes = FlatBuckets) never consults any of it.
	bucketed := dc.EffectiveBucketBytes() > 0
	if bucketed {
		dc.prepareBuckets(cm, ws, fn, cores, shardN, 2*topFwd, 2*botFwd)
	}

	// Periodic shard checkpoints: each boundary snapshots this rank's MLP
	// replica plus owned tables and drains the write on the background
	// stream at CheckpointBW. The Wait on the previous drain's handle keeps
	// at most one write in flight (a zero Handle's Wait is free), so an
	// interval shorter than the drain surfaces as a "checkpoint" stall.
	var ckptH cluster.Handle
	var ckptCost float64
	if dc.CheckpointEvery > 0 {
		bw := dc.CheckpointBW
		if bw == 0 {
			bw = DefaultCheckpointBW
		}
		ckptCost = shardCheckpointBytes(cfg, r.ID, ranks) / bw
	}

	// Tiered embedding parameter store (ROADMAP direction 2): with a cache
	// budget set, the Zipf tail of each iteration's lookups misses the
	// hot-row cache and goes to the modeled cold tier — a synchronous
	// "coldtier" fetch of the analytic miss volume before the embedding
	// forward, and a "coldtier-wb" dirty write-back of the same volume
	// drained on the background stream after the update (at most one in
	// flight: the checkpoint pattern). Functional mode routes table access
	// through a real embstore.Store whose cached path is bit-identical to
	// the in-RAM one, so the loss curve is unchanged.
	tiered := dc.EmbCacheBytes > 0 && len(locT) > 0
	var coldCost float64
	var coldWBH cluster.Handle
	var st *embstore.Store
	if tiered {
		lat := dc.ColdTierLat
		if lat == 0 {
			lat = DefaultColdTierLat
		}
		skew := dc.EmbSkew
		if skew == 0 {
			skew = DefaultEmbSkew
		}
		rows := make([]int, len(locT))
		for li, t := range locT {
			rows[li] = cfg.Rows[t]
		}
		hit := embstore.HitRate(dc.EmbCacheBytes, cfg.EmbDim, rows, skew)
		missBytes := (1 - hit) * float64(dc.GlobalN) * float64(cfg.Lookups) *
			float64(len(locT)) * float64(cfg.EmbDim) * 4
		coldCost = lat + missBytes/dc.ColdTierBW
		if fn != nil {
			owned := make([]*embedding.Table, len(locT))
			for li, t := range locT {
				owned[li] = fn.model.Tables[t]
			}
			var err error
			if st, err = embstore.New(dc.EmbCacheBytes, owned); err != nil {
				panic(err) // unreachable: a config has one EmbDim
			}
		}
	}

	// In the overlapped pipeline the loader is the real double-buffered
	// prefetch goroutine: batch 0's fetch starts at t=0 and is exposed once
	// (cold start); every later batch is fetched on the background stream
	// while the previous iteration computes, surfacing only when compute is
	// too short to cover it.
	var loaderH cluster.Handle
	if dc.Overlapped() && loaderCost > 0 {
		loaderH = r.Async("loader", loaderCost)
	}

	for it := 0; it < dc.Iters; it++ {
		// (0) data loader: wait for the prefetched batch (overlapped) or
		// charge the read serially (the paper's framework path).
		if loaderCost > 0 {
			if dc.Overlapped() {
				r.Wait(loaderH)
			} else {
				r.Prep("loader", loaderCost)
			}
		}
		var rb *data.RankBatch
		if fn != nil {
			rb = fn.loader.Next()
		}
		if dc.Overlapped() && loaderCost > 0 && it+1 < dc.Iters {
			// Start prefetching the next batch behind this iteration (none
			// after the last one, so busy time stays one charge per iter).
			loaderH = r.Async("loader", loaderCost)
		}

		// (1) Embedding forward for LOCAL tables over the GLOBAL minibatch
		// (model parallelism), into the workspace's per-table buffers. Under
		// the tiered store the cold tail is fetched first.
		if tiered {
			r.Prep("coldtier", coldCost)
		}
		r.Compute(embFwd)
		if fn != nil {
			for li, t := range locT {
				if st != nil {
					st.Forward(li, rb.Owned[li], ws.embFull[li])
				} else {
					fn.model.Tables[t].Forward(fn.pool, rb.Owned[li], ws.embFull[li])
				}
			}
		}

		// (2) Redistribute embedding outputs (model → data parallel).
		embOut, embHandles := dc.forwardRedistribute(cm, r, fn, ws, maxLoc, shardN, a2aBlockBytes, scatterBlockBytes, chFwd)

		// (3) Bottom MLP forward on the local shard (overlaps the alltoall:
		// the only compute that can hide it, §VI-D).
		r.Compute(botFwd)

		// (4) Consume embedding outputs: wait for the redistribution.
		for _, h := range embHandles {
			r.Wait(h)
		}

		// (5) Interaction + top MLP forward + loss.
		r.Compute(interFwd + topFwd)
		var dz []float32
		if fn != nil {
			lmb := rb.Local
			logits := fn.model.ForwardDense(fn.pool, lmb.Dense, embOut)
			dz = ws.dz
			l := loss.BCEWithLogits(logits, lmb.Labels, dz)
			res.Losses[r.ID] = append(res.Losses[r.ID], l)
			// Rescale from 1/localN to 1/globalN so the allreduce SUM of
			// MLP grads equals the single-socket global-batch gradient.
			scale := float32(shardN) / float32(dc.GlobalN)
			for i := range dz {
				dz[i] *= scale
			}
		}

		var hTop, hBot cluster.Handle
		if bucketed {
			// (6-8) Layer-stepped backward (Fig. 2): each gradient bucket's
			// allreduce is issued the moment its last layer's backward
			// completes, the backward redistribution launches right after
			// the interaction backward under Overlap (waited where issued
			// otherwise), and every bucket's wait is deferred to its slice
			// of the SGD below.
			dc.backwardBucketed(cm, r, fn, ws, cores, maxLoc, shardN,
				interFwd, a2aBlockBytes, scatterBlockBytes, chBwd)
		} else {
			// (6) Top MLP backward, then enqueue its gradient allreduce so it
			// overlaps the remaining backward work (§IV-A).
			r.Compute(2 * topFwd)
			var dEmb [][]float32
			if fn != nil {
				dEmb = fn.model.BackwardDense(fn.pool, dz)
				flattenGrads(fn.model.Top, ws.topGrad)
			}
			r.Prep("allreduce", sock.StreamTime(2*arBytesTop, cores))
			hTop = cm.AllreduceAlgoCost("allreduce", chTop, grad(fn, ws, true), false, arBytesTop, dc.Allreduce)

			if dc.Overlapped() {
				// (7) The interaction backward is what produces the embedding
				// gradients, so the backward redistribution can launch right
				// after it — before the bottom-MLP backward and before its
				// allreduce is enqueued — and the remaining backward compute
				// hides it. Waits are deferred to the latest consumer: the
				// redistribution at the embedding update (step 8), the
				// allreduces at the SGD (step 9).
				r.Compute(interFwd)
				dc.backwardRedistributeIssue(cm, r, fn, ws, maxLoc, shardN, dEmb, a2aBlockBytes, scatterBlockBytes, chBwd, false)
				r.Compute(2 * botFwd)
				if fn != nil {
					flattenGrads(fn.model.Bot, ws.botGrad)
				}
				r.Prep("allreduce", sock.StreamTime(2*arBytesBot, cores))
				hBot = cm.AllreduceAlgoCost("allreduce", chBot, grad(fn, ws, false), false, arBytesBot, dc.Allreduce)
				dc.backwardRedistributeFinish(r, fn, ws, shardN)
			} else {
				// (7) Interaction backward + bottom MLP backward, enqueue its
				// allreduce.
				r.Compute(interFwd + 2*botFwd)
				if fn != nil {
					flattenGrads(fn.model.Bot, ws.botGrad)
				}
				r.Prep("allreduce", sock.StreamTime(2*arBytesBot, cores))
				hBot = cm.AllreduceAlgoCost("allreduce", chBot, grad(fn, ws, false), false, arBytesBot, dc.Allreduce)

				// (8) Redistribute embedding gradients back to their owners
				// (data → model parallel) into ws.dOutFull, waited where issued
				// (the instrumented synchronous schedule).
				dc.backwardRedistribute(cm, r, fn, ws, maxLoc, shardN, dEmb, a2aBlockBytes, scatterBlockBytes)
			}
		}
		r.Compute(embUpd)
		if fn != nil {
			for li, t := range locT {
				tab := fn.model.Tables[t]
				ob := rb.Owned[li]
				dW := ensureF32(&ws.dW[li], ob.NumLookups()*tab.E)
				tab.Backward(fn.pool, ob, ws.dOutFull[li], dW)
				if st != nil {
					st.Update(li, ob, dW, dc.LR)
				} else {
					tab.Update(fn.pool, embedding.RaceFree, ob, dW, dc.LR)
				}
			}
		}
		if tiered {
			// Drain the dirty rows the update left behind to the cold tier
			// on the background stream; the previous iteration's drain must
			// finish first (one write in flight per rank).
			r.Wait(coldWBH)
			coldWBH = r.Async("coldtier-wb", coldCost)
		}

		// (9) Wait for the gradient allreduces and run the MLP SGD — bucket
		// by bucket under the bucketed schedule, so each bucket's slice of
		// the optimizer sweep runs while later buckets still drain.
		if bucketed {
			dc.sgdBucketed(r, fn, ws, cores)
		} else {
			r.Wait(hTop)
			r.Wait(hBot)
			r.Compute(sgdTime)
			if fn != nil {
				unflattenGradsAndStep(fn.model.Top, ws.topGrad, dc.LR)
				unflattenGradsAndStep(fn.model.Bot, ws.botGrad, dc.LR)
			}
		}

		// (10) Periodic shard checkpoint at global-iteration boundaries.
		if dc.CheckpointEvery > 0 && (dc.StartIter+it+1)%dc.CheckpointEvery == 0 {
			r.Wait(ckptH)
			if fn != nil && dc.CheckpointSink != nil {
				if st != nil {
					// The cached copies are authoritative; flush so the
					// checkpointed tables hold the untiered values.
					st.Flush()
				}
				dc.CheckpointSink(r.ID, dc.StartIter+it+1, fn.model)
			}
			ckptH = r.Async("checkpoint", ckptCost)
		}
	}
	if st != nil {
		// Settle the tables before the run's models are inspected: after
		// the flush they hold exactly the values the untiered path trains.
		st.Flush()
	}
	if bucketed {
		// Drop the rank/comm references the issue states captured: the
		// workspace outlives this run, and must not keep its cluster state
		// (Rank, Comm payload records, flow scratch) reachable.
		ws.topBS, ws.botBS = bucketState{}, bucketState{}
	}
}

// grad returns the flat gradient buffer for the allreduce (nil in
// timing-only mode).
func grad(fn *funcState, ws *DistWorkspace, top bool) []float32 {
	if fn == nil {
		return nil
	}
	if top {
		return ws.topGrad
	}
	return ws.botGrad
}

func mlpParamBytes(sizes []int) float64 {
	var n float64
	for i := 0; i+1 < len(sizes); i++ {
		n += float64(sizes[i]*sizes[i+1] + sizes[i+1])
	}
	return 4 * n
}

// mlpBlockFor picks a minibatch block size dividing the shard size.
func mlpBlockFor(n int) int {
	for _, b := range []int{16, 8, 4, 2, 1} {
		if n%b == 0 {
			return b
		}
	}
	return 1
}

package core

import (
	"fmt"

	"repro/internal/mlp"
	"repro/internal/par"
	"repro/internal/tensor"
)

// fwdCache holds the intermediates ForwardDense saves for BackwardDense.
type fwdCache struct {
	n       int
	embOut  [][]float32
	interZ  []float32
	dInterD *tensor.Dense
}

// ForwardDense runs the dense half of DLRM — bottom MLP, dot interaction,
// top MLP — for a minibatch whose embedding outputs have already been
// computed (locally or received over the fabric). dense is N×DenseIn;
// embOut[t] is N×E row-major for every table t. Returns the click logits
// (length N). Intermediates are retained for BackwardDense.
func (m *Model) ForwardDense(p *par.Pool, dense *tensor.Dense, embOut [][]float32) []float32 {
	n := dense.Rows
	if n%m.BN != 0 {
		panic(fmt.Sprintf("core: minibatch %d not divisible by block %d", n, m.BN))
	}
	if len(embOut) != m.Cfg.Tables {
		panic(fmt.Sprintf("core: %d embedding outputs for %d tables", len(embOut), m.Cfg.Tables))
	}

	botIn := tensor.PackActs(dense, m.BN, mlp.BlockPick(dense.Cols, 64))
	botRows := m.Bot.Forward(p, botIn).Unpack() // N×E

	od := m.Inter.OutputDim()
	z := make([]float32, n*od)
	m.Inter.Forward(p, n, botRows.Data, embOut, z)

	zD := &tensor.Dense{Rows: n, Cols: od, Data: z}
	topIn := tensor.PackActs(zD, m.BN, mlp.BlockPick(od, 64))
	logitsActs := m.Top.Forward(p, topIn)
	logits := logitsActs.Unpack().Data // N×1 → flat length N

	m.cache = fwdCache{n: n, embOut: embOut, interZ: z}
	return logits
}

// BackwardDense backpropagates from the loss gradient dz (dL/dlogit, length
// N): through the top MLP, the interaction, and the bottom MLP, filling
// every layer's weight gradients, and returns the gradients of each table's
// bag outputs (dEmb[t], N×E row-major) for the sparse backward/update.
func (m *Model) BackwardDense(p *par.Pool, dz []float32) [][]float32 {
	n := m.cache.n
	if n == 0 {
		panic("core: BackwardDense before ForwardDense")
	}
	if len(dz) != n {
		panic(fmt.Sprintf("core: dz len %d want %d", len(dz), n))
	}
	dLogit := tensor.PackActs(&tensor.Dense{Rows: n, Cols: 1, Data: dz}, m.BN, 1)
	dInter := m.Top.Backward(p, dLogit, true).Unpack()

	e := m.Cfg.EmbDim
	dBot := make([]float32, n*e)
	dEmb := make([][]float32, m.Cfg.Tables)
	for t := range dEmb {
		dEmb[t] = make([]float32, n*e)
	}
	m.Inter.Backward(p, dInter.Data, dBot, dEmb)

	dBotActs := tensor.PackActs(&tensor.Dense{Rows: n, Cols: e, Data: dBot}, m.BN, mlp.BlockPick(e, 64))
	m.Bot.Backward(p, dBotActs, false)
	return dEmb
}

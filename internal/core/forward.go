package core

import (
	"fmt"

	"repro/internal/mlp"
	"repro/internal/par"
	"repro/internal/tensor"
)

// fwdCache holds the minibatch size ForwardDense saves for BackwardDense
// (the tensors themselves live in the Workspace and the MLP layers).
type fwdCache struct {
	n int
}

// workspace returns the model's lazily-created buffer workspace.
func (m *Model) workspace() *Workspace {
	if m.ws == nil {
		m.ws = &Workspace{}
	}
	return m.ws
}

// ForwardDense runs the dense half of DLRM — bottom MLP, dot interaction,
// top MLP — for a minibatch whose embedding outputs have already been
// computed (locally or received over the fabric). dense is N×DenseIn;
// embOut[t] is N×E row-major for every table t. Returns the click logits
// (length N). Intermediates are retained for BackwardDense; the returned
// slice is a workspace buffer overwritten by the next call.
func (m *Model) ForwardDense(p *par.Pool, dense *tensor.Dense, embOut [][]float32) []float32 {
	n := dense.Rows
	if n%m.BN != 0 {
		panic(fmt.Sprintf("core: minibatch %d not divisible by block %d", n, m.BN))
	}
	if len(embOut) != m.Cfg.Tables {
		panic(fmt.Sprintf("core: %d embedding outputs for %d tables", len(embOut), m.Cfg.Tables))
	}
	ws := m.workspace()

	botIn := tensor.EnsureActs(&ws.botIn, n, dense.Cols, m.BN, mlp.BlockPick(dense.Cols, 64))
	botIn.PackFrom(dense)
	botActs := m.Bot.Forward(p, botIn)
	botRows := ensureDense(&ws.botRows, n, botActs.C) // N×E
	botActs.UnpackInto(botRows)

	od := m.Inter.OutputDim()
	z := ensureF32(&ws.z, n*od)
	m.Inter.Forward(p, n, botRows.Data, embOut, z)

	ws.zD.Rows, ws.zD.Cols, ws.zD.Data = n, od, z
	topIn := tensor.EnsureActs(&ws.topIn, n, od, m.BN, mlp.BlockPick(od, 64))
	topIn.PackFrom(&ws.zD)
	logitsActs := m.Top.Forward(p, topIn)
	logitsD := ensureDense(&ws.logitsD, n, logitsActs.C)
	logitsActs.UnpackInto(logitsD)

	m.cache = fwdCache{n: n}
	return logitsD.Data // N×1 → flat length N
}

// BackwardDense backpropagates from the loss gradient dz (dL/dlogit, length
// N): through the top MLP, the interaction, and the bottom MLP, filling
// every layer's weight gradients, and returns the gradients of each table's
// bag outputs (dEmb[t], N×E row-major) for the sparse backward/update. The
// returned buffers are workspace storage overwritten by the next call.
func (m *Model) BackwardDense(p *par.Pool, dz []float32) [][]float32 {
	return m.BackwardDenseVisit(p, dz, nil, nil, nil)
}

// BackwardDenseVisit is the layer-stepped BackwardDense: identical math,
// but it fires onTopLayer(i)/onBotLayer(i) after each MLP layer's gradients
// are materialized (last layer first, the backward execution order) and
// onInter(dEmb) right after the interaction backward produces the embedding
// gradients. The bucketed distributed pipeline hangs its per-bucket
// allreduce issues and the backward redistribution launch on these hooks;
// all callbacks may be nil, making this exactly BackwardDense.
func (m *Model) BackwardDenseVisit(p *par.Pool, dz []float32,
	onTopLayer func(i int), onInter func(dEmb [][]float32), onBotLayer func(i int)) [][]float32 {
	n := m.cache.n
	if n == 0 {
		panic("core: BackwardDense before ForwardDense")
	}
	if len(dz) != n {
		panic(fmt.Sprintf("core: dz len %d want %d", len(dz), n))
	}
	ws := m.workspace()

	ws.dzD.Rows, ws.dzD.Cols, ws.dzD.Data = n, 1, dz
	dLogit := tensor.EnsureActs(&ws.dLogit, n, 1, m.BN, 1)
	dLogit.PackFrom(&ws.dzD)
	dInterActs := m.Top.BackwardVisit(p, dLogit, true, onTopLayer)
	od := m.Inter.OutputDim()
	dInter := ensureDense(&ws.dInter, n, od)
	dInterActs.UnpackInto(dInter)

	e := m.Cfg.EmbDim
	dBot := ensureF32(&ws.dBot, n*e)
	dEmb := ws.DEmb(m.Cfg.Tables, n*e)
	m.Inter.Backward(p, dInter.Data, dBot, dEmb)
	if onInter != nil {
		onInter(dEmb)
	}

	ws.dBotD.Rows, ws.dBotD.Cols, ws.dBotD.Data = n, e, dBot
	dBotActs := tensor.EnsureActs(&ws.dBotActs, n, e, m.BN, mlp.BlockPick(e, 64))
	dBotActs.PackFrom(&ws.dBotD)
	m.Bot.BackwardVisit(p, dBotActs, false, onBotLayer)
	return dEmb
}

// Allocation-regression tests for the distributed path, the multi-socket
// mirror of the root alloc_test.go: with per-rank persistent pools and
// DistWorkspaces, a warmed-up timing-mode iteration must perform zero heap
// allocations, so simulated-cluster wall time measures the modeled fabric
// and compute — not the Go allocator. Because an iteration spans all rank
// goroutines, per-iteration allocations are measured by differencing whole
// runs of different lengths (AllocsPerRun counts mallocs process-wide): the
// fixed per-run overhead (goroutines, stats maps, result assembly) cancels
// and only the steady-state per-iteration cost remains.
package core

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/embedding"
	"repro/internal/par"
)

// distAllocsPerIter returns the marginal allocations per timing-mode
// iteration for the given variant and pipeline schedule, after warming
// pools and workspaces. bucketBytes > 0 selects the bucketed gradient
// allreduce; FlatBuckets the flat one. contention enables the
// contention-aware fabric charging, whose epoch bookkeeping (flight
// records, load sets) must recycle rather than allocate in steady state.
func distAllocsPerIter(t *testing.T, v Variant, overlap bool, algo comm.AllreduceAlgo, bucketBytes int, contention bool) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	const ranks = 4
	run := func(iters int) func() {
		dc := distTestConfig(Small, ranks, Small.GlobalMB, iters, v, false)
		dc.Pools = pools
		dc.Workspaces = wss
		dc.Sync = !overlap
		dc.Allreduce = algo
		dc.BucketBytes = bucketBytes
		return func() { RunDistributed(dc) }
	}
	const short, long = 2, 12
	run(long)() // warmup: sizes workspaces, fills slot/sudog pools
	aShort := testing.AllocsPerRun(5, run(short))
	aLong := testing.AllocsPerRun(5, run(long))
	return (aLong - aShort) / float64(long-short)
}

// TestDistributedStepZeroAllocs pins the tentpole invariant: steady-state
// timing-mode iterations allocate nothing, for all three communication
// strategies on both backends, under both the synchronous and the
// overlapped pipeline schedule.
func TestDistributedStepZeroAllocs(t *testing.T) {
	for _, strat := range []CommStrategy{ScatterList, FusedScatter, Alltoall} {
		for _, backend := range []cluster.Backend{cluster.MPIBackend, cluster.CCLBackend} {
			for _, overlap := range []bool{false, true} {
				v := Variant{Strategy: strat, Backend: backend}
				if got := distAllocsPerIter(t, v, overlap, comm.RingRSAG, FlatBuckets, false); got != 0 {
					t.Errorf("%s overlap=%v: %v allocs per steady-state distributed iteration, want 0",
						v.Name(), overlap, got)
				}
			}
		}
	}
}

// TestDistributedStepZeroAllocsAllreduceAlgos extends the invariant to the
// selectable allreduce algorithms: the hierarchical two-level and the
// NCCL-style binary-tree cost models must stay allocation-free in steady
// state too (their flow lists live in the per-Comm scratch).
func TestDistributedStepZeroAllocsAllreduceAlgos(t *testing.T) {
	v := Variant{Strategy: Alltoall, Backend: cluster.CCLBackend}
	for _, algo := range []comm.AllreduceAlgo{comm.Hierarchical, comm.BinaryTree, comm.AllreduceAuto} {
		for _, overlap := range []bool{false, true} {
			if got := distAllocsPerIter(t, v, overlap, algo, FlatBuckets, false); got != 0 {
				t.Errorf("%s %v overlap=%v: %v allocs per steady-state iteration, want 0",
					v.Name(), algo, overlap, got)
			}
		}
	}
}

// TestDistributedStepZeroAllocsBucketed extends the invariant to the
// bucketed gradient-allreduce schedule: the per-bucket issue loop, the
// layer-stepped charges, and the per-bucket SGD waits must add no
// steady-state allocations either — the bucket plans and issue state live
// in the rank's DistWorkspace — for every strategy on both backends under
// both schedules, and for the selectable cost models.
func TestDistributedStepZeroAllocsBucketed(t *testing.T) {
	const bucketBytes = 1 << 20
	for _, strat := range []CommStrategy{ScatterList, FusedScatter, Alltoall} {
		for _, backend := range []cluster.Backend{cluster.MPIBackend, cluster.CCLBackend} {
			for _, overlap := range []bool{false, true} {
				v := Variant{Strategy: strat, Backend: backend}
				if got := distAllocsPerIter(t, v, overlap, comm.RingRSAG, bucketBytes, false); got != 0 {
					t.Errorf("%s overlap=%v bucketed: %v allocs per steady-state iteration, want 0",
						v.Name(), overlap, got)
				}
			}
		}
	}
	v := Variant{Strategy: Alltoall, Backend: cluster.CCLBackend}
	for _, algo := range []comm.AllreduceAlgo{comm.Hierarchical, comm.BinaryTree, comm.AllreduceAuto} {
		if got := distAllocsPerIter(t, v, true, algo, bucketBytes, false); got != 0 {
			t.Errorf("%s %v bucketed: %v allocs per steady-state iteration, want 0", v.Name(), algo, got)
		}
	}
}

// TestDistributedStepZeroAllocsContention extends the invariant to the
// contention-aware charging path: with the knob on, the per-collective
// load accumulation and the engine's flight epoch run through recycled
// scratch (LoadSet slices, the flight free list), so steady-state timing
// iterations must still allocate nothing — for the overlapped schedules
// that actually contend, flat and bucketed, across the cost models.
func TestDistributedStepZeroAllocsContention(t *testing.T) {
	v := Variant{Strategy: Alltoall, Backend: cluster.CCLBackend}
	for _, bucketBytes := range []int{FlatBuckets, 1 << 20} {
		for _, algo := range []comm.AllreduceAlgo{comm.RingRSAG, comm.Hierarchical, comm.AllreduceAuto} {
			if got := distAllocsPerIter(t, v, true, algo, bucketBytes, true); got != 0 {
				t.Errorf("%s %v bucket=%d contention: %v allocs per steady-state iteration, want 0",
					v.Name(), algo, bucketBytes, got)
			}
		}
	}
	// The MPI backend routes everything through one channel — contention
	// never fires — but the charge bracket still runs; it too must be free.
	mpi := Variant{Strategy: Alltoall, Backend: cluster.MPIBackend}
	if got := distAllocsPerIter(t, mpi, true, comm.RingRSAG, 1<<20, true); got != 0 {
		t.Errorf("%s contention: %v allocs per steady-state iteration, want 0", mpi.Name(), got)
	}
}

// TestDistributedRunReusesWorkspaces checks the cross-run half of the
// reuse story: with shared Pools and DistWorkspaces, repeated identical
// runs settle to a constant allocation count (no per-run buffer regrowth).
func TestDistributedRunReusesWorkspaces(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	dc := distTestConfig(Small, 4, Small.GlobalMB, 3, Variant{Alltoall, cluster.CCLBackend}, false)
	dc.Pools = pools
	dc.Workspaces = wss
	run := func() { RunDistributed(dc) }
	run()
	a := testing.AllocsPerRun(5, run)
	b := testing.AllocsPerRun(5, run)
	if a != b {
		t.Errorf("warmed-up run allocations drift: %v then %v", a, b)
	}
}

// TestEmbeddingStrategyAllocExemption documents and pins the one sanctioned
// steady-state allocator: the Reference embedding-update strategy, which
// reproduces the paper's pre-optimization framework path (Fig. 7's slow
// bar) by materializing a dense M×E scatter buffer every call. It MUST
// allocate — if someone "fixes" it the baseline bar loses its meaning —
// while every optimized strategy must stay at zero.
func TestEmbeddingStrategyAllocExemption(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	rng := rand.New(rand.NewSource(11))
	tab := embedding.NewTable(5_000, 16, rng, 0.01)
	batch := embedding.MakeBatch(rng, embedding.Uniform{}, 128, 4, tab.M)
	dW := make([]float32, batch.NumLookups()*tab.E)
	for _, strat := range embedding.Strategies {
		upd := func() { tab.Update(par.Default, strat, batch, dW, 1e-7) }
		upd()
		upd()
		allocs := testing.AllocsPerRun(10, upd)
		if strat == embedding.Reference {
			if allocs == 0 {
				t.Error("Reference must allocate its dense scatter buffer: it models the unoptimized framework path")
			}
			continue
		}
		if allocs != 0 {
			t.Errorf("%v: %v allocs per steady-state update, want 0 (only Reference is exempt)", strat, allocs)
		}
	}
}

// TestDistWorkspaceKeyedReuse checks the (ranks, shardN, variant) keying:
// alternating between two shapes after warmup must not grow buffers (the
// ensure helpers retain the larger capacity).
func TestDistWorkspaceKeyedReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	pools := cluster.NewPools()
	defer pools.Close()
	wss := NewDistWorkspaces()
	mk := func(ranks int, v Variant) func() {
		dc := distTestConfig(Small, ranks, Small.GlobalMB, 2, v, false)
		dc.Pools = pools
		dc.Workspaces = wss
		return func() { RunDistributed(dc) }
	}
	a := mk(4, Variant{Alltoall, cluster.CCLBackend})
	b := mk(8, Variant{FusedScatter, cluster.MPIBackend})
	a()
	b()
	a()
	b()
	a1 := testing.AllocsPerRun(5, a)
	b1 := testing.AllocsPerRun(5, b)
	a2 := testing.AllocsPerRun(5, a)
	b2 := testing.AllocsPerRun(5, b)
	if a1 != a2 || b1 != b2 {
		t.Errorf("alternating shapes regrow buffers: %v/%v then %v/%v", a1, b1, a2, b2)
	}
}

// TestDistributedStepZeroAllocsCheckpointed extends the invariant to the
// shard-checkpoint cadence: in timing mode a checkpoint is one wait on the
// previous drain plus one Async charge on the rank's background stream per
// cadence, both of which must recycle through the per-rank pools — a
// checkpoint every iteration adds no steady-state allocations under either
// schedule.
func TestDistributedStepZeroAllocsCheckpointed(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	v := Variant{Strategy: Alltoall, Backend: cluster.CCLBackend}
	for _, overlap := range []bool{false, true} {
		pools := cluster.NewPools()
		wss := NewDistWorkspaces()
		const ranks = 4
		run := func(iters int) func() {
			dc := distTestConfig(Small, ranks, Small.GlobalMB, iters, v, false)
			dc.Pools = pools
			dc.Workspaces = wss
			dc.Sync = !overlap
			dc.BucketBytes = FlatBuckets
			dc.CheckpointEvery = 1
			return func() { RunDistributed(dc) }
		}
		const short, long = 2, 12
		run(long)() // warmup: sizes workspaces, fills slot/sudog pools
		aShort := testing.AllocsPerRun(5, run(short))
		aLong := testing.AllocsPerRun(5, run(long))
		if got := (aLong - aShort) / float64(long-short); got != 0 {
			t.Errorf("overlap=%v checkpointed: %v allocs per steady-state iteration, want 0", overlap, got)
		}
		pools.Close()
	}
}

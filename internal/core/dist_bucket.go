package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/mlp"
	"repro/internal/perfmodel"
)

// The bucketed gradient-allreduce schedule (the default; FlatBuckets
// disables it) is
// Fig. 2's overlap story at layer granularity: the MLP backward is
// layer-stepped, each MLP's flat gradient buffer is carved into contiguous
// per-layer buckets coalesced up to BucketBytes, and a bucket's allreduce is
// issued the moment its last layer's dW is materialized — while the
// remaining backward GEMMs (and, under Overlap, the backward embedding
// redistribution) still run. The waits are deferred per-bucket to that
// bucket's slice of the SGD, so the earliest buckets drain behind the
// deepest layers' compute and only the final bucket's tail can expose.
//
// The segmentation changes no math: per-bucket allreduces sum rank buffers
// elementwise exactly like the flat allreduce, the per-layer charges are
// normalized so they total the flat schedule's whole-pass times, and the
// per-bucket SGD slices sum to the flat sgdTime. Flat (BucketBytes =
// FlatBuckets) runs never enter this file and stay bit-identical to the
// un-bucketed pipeline.

// MLPLayerGradBytes returns the modeled gradient volume of layer i of an
// MLP described by its sizes: 4·(f_i·f_o + f_o), the per-layer term of
// Eq. 1. Summed over layers this is mlpParamBytes. Exported so the figure
// harness reports exactly the bucket plan the trainer builds.
func MLPLayerGradBytes(sizes []int, i int) float64 {
	return 4 * float64(sizes[i]*sizes[i+1]+sizes[i+1])
}

// layerBackwardTimes fills dst with each layer's share of the MLP backward
// time: per-layer roofline estimates normalized so they sum to exactly
// total (the flat schedule's whole-stack charge), keeping the bucketed
// schedule's aggregate compute identical and only the interleaving
// different.
func layerBackwardTimes(dst []float64, sizes []int, n int, sock perfmodel.Socket, cores int, total float64) []float64 {
	layers := len(sizes) - 1
	dst = dst[:0]
	var sum float64
	for i := 0; i < layers; i++ {
		t := sock.GemmTime(perfmodel.MLPPassFlops(sizes[i:i+2], n),
			perfmodel.MLPPassBytes(sizes[i:i+2], n), cores)
		dst = append(dst, t)
		sum += t
	}
	if sum > 0 {
		scale := total / sum
		for i := range dst {
			dst[i] *= scale
		}
	}
	return dst
}

// gradOffsets fills dst with the flat-buffer offset of every layer's
// gradient block (len = layers+1; dst[layers] is the total), matching the
// VisitGrads order flattenGrads writes.
func gradOffsets(dst []int, m *mlp.MLP) []int {
	dst = dst[:0]
	off := 0
	for i := range m.Layers {
		dst = append(dst, off)
		off += m.LayerGradLen(i)
	}
	return append(dst, off)
}

// prepareBuckets rebuilds the workspace's bucket plans for this run: the
// paper-scale per-layer volumes are coalesced into buckets, each bucket's
// allreduce algorithm is resolved (per-bucket cost-model selection under
// AllreduceAuto), channels are round-robined over the configured set when
// overlapped (rotation continuing from the top plan into the bottom one so
// adjacent buckets sit on distinct FIFOs), the per-layer backward charges
// are derived from the flat totals, and — in functional mode — the
// per-layer offsets into the flat gradient buffers are recorded.
func (dc DistConfig) prepareBuckets(cm *comm.Comm, ws *DistWorkspace, fn *funcState,
	cores, shardN int, topBwdTotal, botBwdTotal float64) {
	sock := dc.Socket
	topSizes, botSizes := dc.Cfg.TopSizes(), dc.Cfg.BotSizes()
	bb := float64(dc.EffectiveBucketBytes())

	ws.layerBytes = ws.layerBytes[:0]
	for i := 0; i+1 < len(topSizes); i++ {
		ws.layerBytes = append(ws.layerBytes, MLPLayerGradBytes(topSizes, i))
	}
	ws.topBuckets = comm.PlanBuckets(ws.layerBytes, bb)
	ws.layerBytes = ws.layerBytes[:0]
	for i := 0; i+1 < len(botSizes); i++ {
		ws.layerBytes = append(ws.layerBytes, MLPLayerGradBytes(botSizes, i))
	}
	ws.botBuckets = comm.PlanBuckets(ws.layerBytes, bb)

	ws.topBuckets.SelectAlgos(cm, dc.Allreduce)
	ws.botBuckets.SelectAlgos(cm, dc.Allreduce)

	if dc.Overlapped() {
		chans := dc.BucketChannels
		if chans == nil {
			chans = defaultBucketChannels
		}
		next := ws.topBuckets.AssignChannels(chans, 0)
		ws.botBuckets.AssignChannels(chans, next)
	}

	ws.topBwdT = layerBackwardTimes(ws.topBwdT, topSizes, shardN, sock, cores, topBwdTotal)
	ws.botBwdT = layerBackwardTimes(ws.botBwdT, botSizes, shardN, sock, cores, botBwdTotal)

	if fn != nil {
		if got, want := len(fn.model.Top.Layers), len(topSizes)-1; got != want {
			panic(fmt.Sprintf("core: bucketed run: RunCfg top MLP has %d layers, paper config %d", got, want))
		}
		if got, want := len(fn.model.Bot.Layers), len(botSizes)-1; got != want {
			panic(fmt.Sprintf("core: bucketed run: RunCfg bottom MLP has %d layers, paper config %d", got, want))
		}
		ws.topOff = gradOffsets(ws.topOff, fn.model.Top)
		ws.botOff = gradOffsets(ws.botOff, fn.model.Bot)
	}
}

// defaultBucketChannels is the CCL channel set bucketed allreduces
// round-robin over under Overlap when DistConfig.BucketChannels is nil: the
// forward-alltoall channel (idle during the backward) plus the flat
// schedule's two allreduce channels, leaving channel 3 to the backward
// alltoall.
var defaultBucketChannels = []int{0, 1, 2}

// bucketState drives one MLP's layer-stepped backward bookkeeping for the
// bucketed schedule: per layer it charges the modeled backward time,
// captures the layer's gradients into the flat buffer (functional mode),
// and issues the bucket's allreduce when the layer closes one, appending
// the handle to the workspace's issue-order list for the SGD-time waits.
//
// The two states live in the rank's DistWorkspace (not on the stack): the
// functional callbacks capture them by pointer, and keeping them in the
// workspace prevents that capture from forcing a per-iteration heap
// allocation onto the timing-mode path, which must stay allocation-free.
type bucketState struct {
	cm    *comm.Comm
	r     *cluster.Rank
	ws    *DistWorkspace
	sock  perfmodel.Socket
	cores int

	label string
	plan  comm.BucketPlan
	times []float64 // per-layer modeled backward seconds
	off   []int     // per-layer flat-buffer offsets (nil in timing mode)
	flat  []float32 // flat gradient buffer (nil in timing mode)
	next  int       // next bucket to issue
}

// layerDone records layer i's backward completion. m is the MLP being
// stepped (nil in timing mode).
func (bs *bucketState) layerDone(i int, m *mlp.MLP) {
	bs.r.Compute(bs.times[i])
	if m != nil {
		pos := bs.off[i]
		m.VisitLayerGrads(i, func(_ string, g []float32) {
			copy(bs.flat[pos:pos+len(g)], g)
			pos += len(g)
		})
	}
	if bs.next >= len(bs.plan.Buckets) {
		return
	}
	b := bs.plan.Buckets[bs.next]
	if i != b.Lo {
		return
	}
	var seg []float32
	if m != nil {
		seg = bs.flat[bs.off[b.Lo]:bs.off[b.Hi+1]]
	}
	bs.r.Prep(bs.label, bs.sock.StreamTime(2*b.Bytes, bs.cores))
	h := bs.cm.AllreduceAlgoCost(bs.label, b.Channel, seg, false, b.Bytes, b.Algo)
	bs.ws.bktHandles = append(bs.ws.bktHandles, h)
	bs.next++
}

// backwardBucketed runs the whole backward half of the iteration under the
// bucketed schedule: top MLP layer-stepped with per-bucket allreduce
// issues, the interaction backward (with the backward redistribution
// launched right after it under Overlap, exactly as in the flat overlapped
// schedule), then the bottom MLP layer-stepped the same way. On return all
// buckets are issued (handles in ws.bktHandles, waited by sgdBucketed) and
// the embedding gradients are assembled in ws.dOutFull.
func (dc DistConfig) backwardBucketed(cm *comm.Comm, r *cluster.Rank, fn *funcState, ws *DistWorkspace,
	cores, maxLoc, shardN int, interBwd float64, a2aBlockBytes, scatterBlockBytes float64, chBwd int) {
	ws.bktHandles = ws.bktHandles[:0]
	ws.topBS = bucketState{cm: cm, r: r, ws: ws, sock: dc.Socket, cores: cores,
		label: "ar-top", plan: ws.topBuckets, times: ws.topBwdT}
	ws.botBS = bucketState{cm: cm, r: r, ws: ws, sock: dc.Socket, cores: cores,
		label: "ar-bot", plan: ws.botBuckets, times: ws.botBwdT}

	// The interaction backward sits between the two MLPs; under Overlap the
	// backward redistribution launches right after it — before the bottom
	// MLP's backward, whose compute (plus the bottom buckets' issue points)
	// hides it — and is finished at the embedding update, as in the flat
	// overlapped schedule. The sync schedule redistributes after the whole
	// backward, waited where issued.
	var dEmb [][]float32
	if fn != nil {
		ws.topBS.off, ws.topBS.flat = ws.topOff, ws.topGrad
		ws.botBS.off, ws.botBS.flat = ws.botOff, ws.botGrad
		top, bot := fn.model.Top, fn.model.Bot
		dEmb = fn.model.BackwardDenseVisit(fn.pool, ws.dz,
			func(i int) { ws.topBS.layerDone(i, top) },
			func(d [][]float32) {
				r.Compute(interBwd)
				if dc.Overlapped() {
					dc.backwardRedistributeIssue(cm, r, fn, ws, maxLoc, shardN, d,
						a2aBlockBytes, scatterBlockBytes, chBwd, false)
				}
			},
			func(i int) { ws.botBS.layerDone(i, bot) })
	} else {
		for i := len(ws.topBwdT) - 1; i >= 0; i-- {
			ws.topBS.layerDone(i, nil)
		}
		r.Compute(interBwd)
		if dc.Overlapped() {
			dc.backwardRedistributeIssue(cm, r, fn, ws, maxLoc, shardN, nil,
				a2aBlockBytes, scatterBlockBytes, chBwd, false)
		}
		for i := len(ws.botBwdT) - 1; i >= 0; i-- {
			ws.botBS.layerDone(i, nil)
		}
	}

	if dc.Overlapped() {
		dc.backwardRedistributeFinish(r, fn, ws, shardN)
	} else {
		dc.backwardRedistribute(cm, r, fn, ws, maxLoc, shardN, dEmb, a2aBlockBytes, scatterBlockBytes)
	}
}

// sgdBucketed waits the buckets in issue order — top MLP first, exactly the
// order they were enqueued — and applies each one's slice of the SGD as
// soon as it lands, so later buckets keep draining behind the earlier
// slices' optimizer sweeps. The slice charges sum to the flat schedule's
// sgdTime.
func (dc DistConfig) sgdBucketed(r *cluster.Rank, fn *funcState, ws *DistWorkspace, cores int) {
	hi := 0
	for half := 0; half < 2; half++ {
		plan := ws.topBuckets
		var m *mlp.MLP
		var off []int
		var flat []float32
		if half == 1 {
			plan = ws.botBuckets
		}
		if fn != nil {
			if half == 0 {
				m, off, flat = fn.model.Top, ws.topOff, ws.topGrad
			} else {
				m, off, flat = fn.model.Bot, ws.botOff, ws.botGrad
			}
		}
		for _, b := range plan.Buckets {
			r.Wait(ws.bktHandles[hi])
			hi++
			r.Compute(dc.Socket.StreamTime(3*b.Bytes, cores))
			if m == nil {
				continue
			}
			pos := off[b.Lo]
			for l := b.Lo; l <= b.Hi; l++ {
				m.VisitLayerGrads(l, func(_ string, g []float32) {
					copy(g, flat[pos:pos+len(g)])
					pos += len(g)
				})
			}
			m.StepLayers(b.Lo, b.Hi, dc.LR)
		}
	}
}

package core

import (
	"fmt"
	"time"

	"repro/internal/bf16"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/loss"
	"repro/internal/mlp"
	"repro/internal/optim"
	"repro/internal/par"
	"repro/internal/trace"
)

// Precision selects the training numerics of §VII.
type Precision int

const (
	// FP32 is the reference full-precision training.
	FP32 Precision = iota
	// BF16Split is Split-SGD-BF16: BF16 working weights, exact FP32 updates
	// through the hi/lo split, no master weights.
	BF16Split
	// BF16Split8LSB keeps only 8 extra LSBs — the §VII ablation that fails
	// to reach reference accuracy.
	BF16Split8LSB
	// FP24 stores weights in the 1-8-15 format, losing update bits below
	// its mantissa every step.
	FP24
	// FP16Stoch stores the embedding tables in FP16 with stochastic
	// rounding on every update (the [13] replication of §VII; the MLPs use
	// FP32 master weights as that scheme requires). The paper could not
	// train DLRM to state of the art this way.
	FP16Stoch
)

// String returns the Fig. 16 label.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "FP32 (Ref)"
	case BF16Split:
		return "BF16 (SplitSGD)"
	case BF16Split8LSB:
		return "BF16 (SplitSGD, 8 LSB)"
	case FP24:
		return "FP24 (1-8-15)"
	case FP16Stoch:
		return "FP16 (stochastic)"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// Trainer runs single-socket DLRM training — the system whose optimization
// Figs. 7/8 chart and whose mixed-precision variants Fig. 16 compares.
type Trainer struct {
	M        *Model
	Pool     *par.Pool
	Strategy embedding.Strategy
	// FusedEmbedding applies the fused backward+update of §III-A instead of
	// Backward followed by Update (valid for RaceFree semantics).
	FusedEmbedding bool
	LR             float32
	Prec           Precision
	// Prof, when non-nil, accumulates wall time per phase (embeddings, mlp,
	// rest) for the Fig. 8 breakdown.
	Prof *trace.Profile
	// Schedule, when set (non-zero Base), overrides LR per step with the
	// MLPerf warmup/decay policy.
	Schedule optim.LRSchedule

	step      int
	mlpOpts   []optim.Optimizer
	embSplits []*bf16.Split

	// ws owns every buffer Step reuses across iterations; it is shared with
	// the model's dense passes so the whole iteration is allocation-free in
	// steady state.
	ws *Workspace
}

// NewTrainer builds a trainer over model m with the given embedding-update
// strategy and precision.
func NewTrainer(m *Model, pool *par.Pool, strat embedding.Strategy, lr float32, prec Precision) *Trainer {
	tr := &Trainer{M: m, Pool: pool, Strategy: strat, LR: lr, Prec: prec, ws: m.workspace()}
	tr.initOptimizers()
	return tr
}

func (tr *Trainer) initOptimizers() {
	mk := func(params []float32) optim.Optimizer {
		switch tr.Prec {
		case BF16Split:
			return optim.NewSplitSGD(params)
		case BF16Split8LSB:
			s := optim.NewSplitSGD(params)
			s.LimitLoTo8Bits = true
			return s
		case FP24:
			return optim.NewQuantizedSGD(params, bf16.RoundFP24, "FP24")
		case FP16Stoch:
			// FP16 working weights with an FP32 master copy, as mixed
			// precision FP16 requires (§VII).
			return optim.NewMasterSGD(params, bf16.RoundFP16, "FP16+master")
		default:
			return optim.NewSGD(params)
		}
	}
	for _, m := range []interface {
		VisitParams(func(string, []float32))
	}{tr.M.Bot, tr.M.Top} {
		m.VisitParams(func(_ string, p []float32) {
			tr.mlpOpts = append(tr.mlpOpts, mk(p))
		})
	}
	tr.M.Bot.InvalidateTransposes()
	tr.M.Top.InvalidateTransposes()

	switch tr.Prec {
	case BF16Split, BF16Split8LSB:
		for _, t := range tr.M.Tables {
			if t == nil {
				tr.embSplits = append(tr.embSplits, nil)
				continue
			}
			s := bf16.NewSplit(t.W)
			if tr.Prec == BF16Split8LSB {
				s.LoBits8()
			}
			s.WriteHiTo(t.W)
			tr.embSplits = append(tr.embSplits, s)
		}
	case FP24:
		for _, t := range tr.M.Tables {
			if t != nil {
				t.QuantizeTable(bf16.RoundFP24)
			}
		}
	case FP16Stoch:
		for _, t := range tr.M.Tables {
			if t != nil {
				t.QuantizeTable(bf16.RoundFP16)
			}
		}
	}
}

// embForward computes every table's bag outputs for the batch into the
// workspace buffers.
func (tr *Trainer) embForward(mb *data.MiniBatch) [][]float32 {
	e := tr.M.Cfg.EmbDim
	out := tr.ws.EmbOut(tr.M.Cfg.Tables, mb.N*e)
	for t, tab := range tr.M.Tables {
		tab.Forward(tr.Pool, mb.Sparse[t], out[t])
	}
	return out
}

// embUpdate applies the sparse backward+update for table t. The per-lookup
// gradient rows live in the workspace, so the precision paths that
// materialize them (Split-SGD, FP24, FP16, and the unfused FP32 strategies)
// stay allocation-free.
func (tr *Trainer) embUpdate(t int, b *embedding.Batch, dOut []float32) {
	tab := tr.M.Tables[t]
	tables := tr.M.Cfg.Tables
	switch tr.Prec {
	case BF16Split, BF16Split8LSB:
		dW := tr.ws.EmbDW(t, tables, b.NumLookups()*tab.E)
		tab.Backward(tr.Pool, b, dOut, dW)
		tab.UpdateSplitRaceFree(tr.Pool, tr.embSplits[t], b, dW, tr.LR)
		if tr.Prec == BF16Split8LSB {
			tr.embSplits[t].LoBits8()
		}
	case FP24:
		dW := tr.ws.EmbDW(t, tables, b.NumLookups()*tab.E)
		tab.Backward(tr.Pool, b, dOut, dW)
		tab.UpdateQuantRaceFree(tr.Pool, b, dW, tr.LR, bf16.RoundFP24)
	case FP16Stoch:
		dW := tr.ws.EmbDW(t, tables, b.NumLookups()*tab.E)
		tab.Backward(tr.Pool, b, dOut, dW)
		tab.UpdateFP16StochasticRaceFree(tr.Pool, b, dW, tr.LR, uint64(t)<<32^0xD1CE)
	default:
		if tr.FusedEmbedding {
			tab.FusedBackwardUpdate(tr.Pool, b, dOut, tr.LR)
			return
		}
		dW := tr.ws.EmbDW(t, tables, b.NumLookups()*tab.E)
		tab.Backward(tr.Pool, b, dOut, dW)
		tab.Update(tr.Pool, tr.Strategy, b, dW, tr.LR)
	}
}

// mlpStep applies the per-tensor optimizers to both MLPs' gradients. The
// explicit layer walk (instead of VisitGrads) keeps the hot loop free of
// closure allocations; the optimizer order matches initOptimizers, which
// binds weights-then-bias per layer, bottom MLP first.
func (tr *Trainer) mlpStep() {
	i := 0
	for _, m := range [...]*mlp.MLP{tr.M.Bot, tr.M.Top} {
		for _, l := range m.Layers {
			tr.mlpOpts[i].Step(l.DW.Data, tr.LR)
			i++
			tr.mlpOpts[i].Step(l.DBias, tr.LR)
			i++
		}
	}
	tr.M.Bot.InvalidateTransposes()
	tr.M.Top.InvalidateTransposes()
}

// Step runs one training iteration and returns the minibatch loss. Phase
// timing is recorded with explicit start/stop stamps (not closures) so the
// steady-state step performs zero heap allocations.
func (tr *Trainer) Step(mb *data.MiniBatch) float64 {
	if tr.Schedule.Base != 0 {
		tr.LR = tr.Schedule.At(tr.step)
	}
	tr.step++
	prof := tr.Prof
	var t0 time.Time
	if prof != nil {
		t0 = time.Now()
	}
	embOut := tr.embForward(mb)
	if prof != nil {
		prof.Add("embeddings", time.Since(t0))
		t0 = time.Now()
	}

	logits := tr.M.ForwardDense(tr.Pool, mb.Dense, embOut)
	if prof != nil {
		prof.Add("mlp", time.Since(t0))
		t0 = time.Now()
	}

	dz := tr.ws.Dz(mb.N)
	lossVal := loss.BCEWithLogits(logits, mb.Labels, dz)
	if prof != nil {
		prof.Add("rest", time.Since(t0))
		t0 = time.Now()
	}

	dEmb := tr.M.BackwardDense(tr.Pool, dz)
	if prof != nil {
		prof.Add("mlp", time.Since(t0))
		t0 = time.Now()
	}

	for t := range tr.M.Tables {
		tr.embUpdate(t, mb.Sparse[t], dEmb[t])
	}
	if prof != nil {
		prof.Add("embeddings", time.Since(t0))
		t0 = time.Now()
	}

	tr.mlpStep()
	if prof != nil {
		prof.Add("mlp", time.Since(t0))
	}
	return lossVal
}

// RunOpts configures Trainer.Run: the data source is part of the run
// configuration — the same shape DistConfig gives the distributed runs —
// instead of a per-entry-point parameter list.
type RunOpts struct {
	// Loader streams the batches; the caller keeps ownership (and closes
	// it). Exactly one of Loader and Dataset must be set.
	Loader data.Loader
	// Dataset is a source the run should own: Run wraps it in a
	// prefetching BatchLoader (closed on return) reading Batch samples per
	// step — the model config's MB when Batch is 0 — starting at batch
	// index Start.
	Dataset data.Dataset
	Batch   int
	Start   int
	// Iters is the number of training steps (>= 1).
	Iters int
	// Each, when non-nil, observes every iteration's loss.
	Each func(it int, loss float64)
	// CheckpointEvery, with Checkpoint, saves the model every N global
	// steps — at step counts (Start+i+1) divisible by N, so a resumed run
	// keeps the original cadence. Both must be set together.
	CheckpointEvery int
	// Checkpoint persists the model at a checkpoint boundary; step is the
	// global step count just completed. A returned error aborts the run.
	Checkpoint func(step int, m *Model) error
}

// Run consumes o.Iters batches from the configured source and steps the
// trainer on each — the single-socket training loop, whose prefetch
// goroutine generates batch i+1 while Step trains on batch i. This is the
// blessed entry point; RunLoader is the deprecated positional wrapper.
func (tr *Trainer) Run(o RunOpts) error {
	if o.Iters < 1 {
		return fmt.Errorf("core: Iters=%d, want >= 1", o.Iters)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("core: CheckpointEvery=%d, want >= 0", o.CheckpointEvery)
	}
	if (o.CheckpointEvery > 0) != (o.Checkpoint != nil) {
		return fmt.Errorf("core: RunOpts needs CheckpointEvery and Checkpoint together")
	}
	ld := o.Loader
	switch {
	case ld != nil && o.Dataset != nil:
		return fmt.Errorf("core: RunOpts sets both Loader and Dataset; pick one source")
	case ld == nil && o.Dataset == nil:
		return fmt.Errorf("core: RunOpts needs a Loader or a Dataset")
	case ld == nil:
		batch := o.Batch
		if batch == 0 {
			batch = tr.M.Cfg.MB
		}
		if batch < 1 {
			return fmt.Errorf("core: batch size %d, want >= 1", batch)
		}
		owned := data.NewBatchLoader(o.Dataset, batch, o.Start)
		defer owned.Close()
		ld = owned
	}
	for i := 0; i < o.Iters; i++ {
		l := tr.Step(ld.Next().Local)
		if o.Each != nil {
			o.Each(i, l)
		}
		if o.CheckpointEvery > 0 && (o.Start+i+1)%o.CheckpointEvery == 0 {
			if err := o.Checkpoint(o.Start+i+1, tr.M); err != nil {
				return fmt.Errorf("core: checkpoint at step %d: %w", o.Start+i+1, err)
			}
		}
	}
	return nil
}

// RunLoader consumes iters batches from ld and steps the trainer on each.
// The caller keeps ownership of ld (and closes it).
//
// Deprecated: use Run with RunOpts{Loader: ld, Iters: iters, Each: each}.
// Kept for callers that predate the unified entry; iters < 1 remains the
// historical no-op instead of an error.
func (tr *Trainer) RunLoader(ld data.Loader, iters int, each func(it int, loss float64)) {
	if iters < 1 {
		return
	}
	if err := tr.Run(RunOpts{Loader: ld, Iters: iters, Each: each}); err != nil {
		panic(err)
	}
}

// Predict returns the click probabilities for a batch (no state change
// besides the saved forward cache).
func (tr *Trainer) Predict(mb *data.MiniBatch) []float32 {
	embOut := tr.embForward(mb)
	logits := tr.M.ForwardDense(tr.Pool, mb.Dense, embOut)
	out := make([]float32, mb.N)
	loss.Sigmoid(logits, out)
	return out
}

// EvalAUC computes ROC AUC over a batch.
func (tr *Trainer) EvalAUC(mb *data.MiniBatch) float64 {
	return loss.AUC(tr.Predict(mb), mb.Labels)
}

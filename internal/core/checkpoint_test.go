package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/par"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	ds := tinyDataset(cfg)
	m := NewModel(cfg, 16, 1)
	tr := NewTrainer(m, par.NewPool(2), embedding.RaceFree, 0.5, FP32)
	for i := 0; i < 3; i++ {
		tr.Step(ds.Batch(i, cfg.MB))
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewModel(cfg, 16, 999) // different init
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Weights must match bit for bit.
	var a, b [][]float32
	m.Bot.VisitParams(func(_ string, p []float32) { a = append(a, p) })
	m.Top.VisitParams(func(_ string, p []float32) { a = append(a, p) })
	restored.Bot.VisitParams(func(_ string, p []float32) { b = append(b, p) })
	restored.Top.VisitParams(func(_ string, p []float32) { b = append(b, p) })
	for pi := range a {
		for i := range a[pi] {
			if a[pi][i] != b[pi][i] {
				t.Fatalf("MLP param %d differs after restore", pi)
			}
		}
	}
	for ti := range m.Tables {
		for i := range m.Tables[ti].W {
			if m.Tables[ti].W[i] != restored.Tables[ti].W[i] {
				t.Fatalf("table %d differs after restore", ti)
			}
		}
	}
	// And the restored model must produce identical predictions.
	mb := ds.Batch(100, cfg.MB)
	trR := NewTrainer(restored, par.NewPool(2), embedding.RaceFree, 0.5, FP32)
	pa := tr.Predict(mb)
	pb := trR.Predict(mb)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs after restore", i)
		}
	}
}

func TestCheckpointShardComposition(t *testing.T) {
	// Shard checkpoints hold only owned tables; loading one into a full
	// model must update exactly those tables.
	cfg := tinyConfig()
	sh := NewModelShard(cfg, 16, 5, 1, 2)
	for _, tab := range sh.Tables {
		if tab != nil {
			tab.W[0] = 42
		}
	}
	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := NewModel(cfg, 16, 5)
	if err := full.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for ti, tab := range full.Tables {
		if TableOwner(ti, 2) == 1 {
			if tab.W[0] != 42 {
				t.Fatalf("owned table %d not restored", ti)
			}
		} else if tab.W[0] == 42 {
			t.Fatalf("unowned table %d overwritten", ti)
		}
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF // flip a payload byte
	if err := NewModel(cfg, 16, 1).Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

func TestCheckpointConfigMismatchRejected(t *testing.T) {
	m := NewModel(tinyConfig(), 16, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyConfig()
	other.EmbDim = 32
	other.BotHidden = []int{32}
	wrong := NewModel(other, 16, 1)
	err := wrong.Load(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("config mismatch not rejected: %v", err)
	}
}

func TestCheckpointRejectsNonFinite(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	m.Tables[0].W[3] = float32(math.NaN())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := NewModel(cfg, 16, 1).Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("NaN weights accepted")
	}
}

func TestCheckpointGarbageRejected(t *testing.T) {
	if err := NewModel(tinyConfig(), 16, 1).Load(bytes.NewReader([]byte("not a checkpoint at all........"))); err == nil {
		t.Fatal("garbage accepted")
	}
	_ = data.CriteoTBRows // keep import for symmetry with other tests
}

package core

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/par"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	ds := tinyDataset(cfg)
	m := NewModel(cfg, 16, 1)
	tr := NewTrainer(m, par.NewPool(2), embedding.RaceFree, 0.5, FP32)
	for i := 0; i < 3; i++ {
		tr.Step(ds.Batch(i, cfg.MB))
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewModel(cfg, 16, 999) // different init
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Weights must match bit for bit.
	var a, b [][]float32
	m.Bot.VisitParams(func(_ string, p []float32) { a = append(a, p) })
	m.Top.VisitParams(func(_ string, p []float32) { a = append(a, p) })
	restored.Bot.VisitParams(func(_ string, p []float32) { b = append(b, p) })
	restored.Top.VisitParams(func(_ string, p []float32) { b = append(b, p) })
	for pi := range a {
		for i := range a[pi] {
			if a[pi][i] != b[pi][i] {
				t.Fatalf("MLP param %d differs after restore", pi)
			}
		}
	}
	for ti := range m.Tables {
		for i := range m.Tables[ti].W {
			if m.Tables[ti].W[i] != restored.Tables[ti].W[i] {
				t.Fatalf("table %d differs after restore", ti)
			}
		}
	}
	// And the restored model must produce identical predictions.
	mb := ds.Batch(100, cfg.MB)
	trR := NewTrainer(restored, par.NewPool(2), embedding.RaceFree, 0.5, FP32)
	pa := tr.Predict(mb)
	pb := trR.Predict(mb)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs after restore", i)
		}
	}
}

func TestCheckpointShardComposition(t *testing.T) {
	// Shard checkpoints hold only owned tables; loading one into a full
	// model must update exactly those tables.
	cfg := tinyConfig()
	sh := NewModelShard(cfg, 16, 5, 1, 2)
	for _, tab := range sh.Tables {
		if tab != nil {
			tab.W[0] = 42
		}
	}
	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := NewModel(cfg, 16, 5)
	if err := full.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for ti, tab := range full.Tables {
		if TableOwner(ti, 2) == 1 {
			if tab.W[0] != 42 {
				t.Fatalf("owned table %d not restored", ti)
			}
		} else if tab.W[0] == 42 {
			t.Fatalf("unowned table %d overwritten", ti)
		}
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	// Flip one bit deep inside the last table's payload (past every length
	// field), so only the CRC can catch it.
	raw[len(raw)-8] ^= 0x01
	err := NewModel(cfg, 16, 1).Load(bytes.NewReader(raw))
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("flipped payload bit: got %v, want ErrCheckpointCorrupt", err)
	}
}

func TestCheckpointConfigMismatchRejected(t *testing.T) {
	m := NewModel(tinyConfig(), 16, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyConfig()
	other.EmbDim = 32
	other.BotHidden = []int{32}
	wrong := NewModel(other, 16, 1)
	err := wrong.Load(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("config mismatch not rejected as ErrCheckpointMismatch: %v", err)
	}
}

func TestCheckpointWrongTableLengthRejected(t *testing.T) {
	// Same dimensions everywhere except one table's row count: the header
	// validates, the MLP tensors line up, and the table length check is what
	// must reject the stream.
	m := NewModel(tinyConfig(), 16, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyConfig()
	other.Rows = append([]int(nil), other.Rows...)
	other.Rows[0] = 123
	err := NewModel(other, 16, 1).Load(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrCheckpointMismatch) || !strings.Contains(err.Error(), "table 0") {
		t.Fatalf("wrong table length: got %v, want ErrCheckpointMismatch for table 0", err)
	}
}

func TestCheckpointTruncationDetected(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Cut inside the header, inside the payload, and just before the CRC:
	// every prefix must fail with the typed truncation error, never panic.
	for _, cut := range []int{0, 3, 12, len(raw) / 3, len(raw) - 2} {
		err := NewModel(cfg, 16, 1).Load(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, ErrCheckpointTruncated) {
			t.Fatalf("cut at %d of %d: got %v, want ErrCheckpointTruncated", cut, len(raw), err)
		}
	}
}

func TestCheckpointBadMagicRejected(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	raw[0] ^= 0xFF
	err := NewModel(cfg, 16, 1).Load(bytes.NewReader(raw))
	if !errors.Is(err, ErrCheckpointMagic) {
		t.Fatalf("bad magic: got %v, want ErrCheckpointMagic", err)
	}
}

func TestCheckpointV1TrainerState(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	want := TrainerState{Iter: 42, Seed: 7, LR: 0.25}
	var buf bytes.Buffer
	if err := m.SaveWithState(&buf, want); err != nil {
		t.Fatal(err)
	}
	restored := NewModel(cfg, 16, 999)
	st, err := restored.LoadWithState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || *st != want {
		t.Fatalf("trainer state %+v, want %+v", st, want)
	}
	if m.Tables[0].W[0] != restored.Tables[0].W[0] {
		t.Fatal("v1 checkpoint did not restore weights")
	}
	// Load (state-discarding) accepts v1 streams too.
	if err := NewModel(cfg, 16, 999).Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// And a v0 weights-only stream reports no state.
	var v0 bytes.Buffer
	if err := m.Save(&v0); err != nil {
		t.Fatal(err)
	}
	st, err = NewModel(cfg, 16, 999).LoadWithState(bytes.NewReader(v0.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("v0 checkpoint returned state %+v, want nil", st)
	}
}

func TestCheckpointLoadsAcrossBlockings(t *testing.T) {
	// The header's BN word is informational: the packed MLP layout is
	// blocking-independent, and elastic restore loads an R-rank shard
	// (blocked for shard size N/R) into an R′-rank model (blocked for
	// N/R′). A blocking mismatch must therefore load cleanly.
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewModel(cfg, 8, 999)
	if err := other.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("cross-blocking load rejected: %v", err)
	}
	var a, b []float32
	m.Bot.VisitParams(func(_ string, p []float32) { a = append(a, p...) })
	other.Bot.VisitParams(func(_ string, p []float32) { b = append(b, p...) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cross-blocking load changed MLP weights")
		}
	}
}

func TestCheckpointRejectsNonFinite(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	m.Tables[0].W[3] = float32(math.NaN())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := NewModel(cfg, 16, 1).Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("NaN weights accepted")
	}
}

func TestCheckpointGarbageRejected(t *testing.T) {
	if err := NewModel(tinyConfig(), 16, 1).Load(bytes.NewReader([]byte("not a checkpoint at all........"))); err == nil {
		t.Fatal("garbage accepted")
	}
	_ = data.CriteoTBRows // keep import for symmetry with other tests
}

// TestTrainerCheckpointResume pins the single-socket resume contract: a run
// interrupted at a checkpoint boundary and resumed via RunOpts.Start trains
// the exact batches — and reaches the exact losses — of an uninterrupted
// run, because the counter-based data streams re-materialize any batch
// index.
func TestTrainerCheckpointResume(t *testing.T) {
	cfg := tinyConfig()
	ds := tinyDataset(cfg)
	newTrainer := func() *Trainer {
		return NewTrainer(NewModel(cfg, 16, 5), par.Default, embedding.RaceFree, 0.5, FP32)
	}

	// Uninterrupted 6-step reference.
	ref := newTrainer()
	var refLosses []float64
	if err := ref.Run(RunOpts{Dataset: ds, Iters: 6,
		Each: func(_ int, l float64) { refLosses = append(refLosses, l) }}); err != nil {
		t.Fatal(err)
	}

	// Checkpointed run, killed after 4 steps.
	ckpts := map[int][]byte{}
	first := newTrainer()
	err := first.Run(RunOpts{Dataset: ds, Iters: 4, CheckpointEvery: 2,
		Checkpoint: func(step int, m *Model) error {
			var buf bytes.Buffer
			if err := m.SaveWithState(&buf, TrainerState{Iter: int64(step), Seed: 42, LR: first.LR}); err != nil {
				return err
			}
			ckpts[step] = buf.Bytes()
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 2 || ckpts[2] == nil || ckpts[4] == nil {
		t.Fatalf("checkpoints at %v, want steps 2 and 4", ckpts)
	}

	// Resume from the step-4 checkpoint into a differently-seeded model.
	resumed := newTrainer()
	st, err := resumed.M.LoadWithState(bytes.NewReader(ckpts[4]))
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Iter != 4 {
		t.Fatalf("trainer state %+v, want Iter=4", st)
	}
	resumed.M.Bot.InvalidateTransposes()
	resumed.M.Top.InvalidateTransposes()
	var resLosses []float64
	if err := resumed.Run(RunOpts{Dataset: ds, Start: int(st.Iter), Iters: 2,
		Each: func(_ int, l float64) { resLosses = append(resLosses, l) }}); err != nil {
		t.Fatal(err)
	}
	for i, l := range resLosses {
		if l != refLosses[4+i] {
			t.Fatalf("resumed step %d loss %v, want bit-exact %v", 4+i, l, refLosses[4+i])
		}
	}

	// Misconfigurations: cadence without hook, hook without cadence.
	if err := newTrainer().Run(RunOpts{Dataset: ds, Iters: 1, CheckpointEvery: 2}); err == nil {
		t.Fatal("CheckpointEvery without Checkpoint accepted")
	}
	if err := newTrainer().Run(RunOpts{Dataset: ds, Iters: 1,
		Checkpoint: func(int, *Model) error { return nil }}); err == nil {
		t.Fatal("Checkpoint without CheckpointEvery accepted")
	}
}

package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/par"
)

// inferTestModel is a small full model plus a dataset for it.
func inferTestModel(bn int) (Config, *Model, data.Dataset) {
	cfg := Small.Scaled(1.0 / 64)
	m := NewModel(cfg, bn, 31)
	ds := data.NewClickLog(9, cfg.DenseIn, cfg.Rows, cfg.Lookups)
	return cfg, m, ds
}

// TestPredictorMatchesTrainerPredict pins forward parity: the forward-only
// Predictor and the Trainer's Predict produce bit-identical probabilities
// on the same weights.
func TestPredictorMatchesTrainerPredict(t *testing.T) {
	_, m, ds := inferTestModel(16)
	pr := NewPredictor(m, par.Default)
	tr := NewTrainer(m, par.Default, 0, 0.5, FP32)
	mb := ds.Batch(0, 64)
	got := make([]float32, mb.N)
	pr.PredictInto(mb, got)
	want := tr.Predict(mb)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: Predictor %v, Trainer.Predict %v", i, got[i], want[i])
		}
	}
}

// TestPredictorBatchSizeInvariance pins the property serving batching
// relies on: with BN=1, a sample's probability is bit-identical whether it
// is predicted alone or inside any larger batch (row-blocked GEMMs with
// per-row accumulation order, per-sample interaction and sigmoid).
func TestPredictorBatchSizeInvariance(t *testing.T) {
	cfg, m, ds := inferTestModel(1)
	pr := NewPredictor(m, par.Default)
	const B = 32
	full := ds.Batch(0, B)
	ref := make([]float32, B)
	pr.PredictInto(full, ref)
	var mb data.MiniBatch
	for _, n := range []int{1, B / 2, B} {
		for start := 0; start+n <= B; start += n {
			ds.FillRange(0, B, start, start+n, &mb)
			out := make([]float32, n)
			pr.PredictInto(&mb, out)
			for i := range out {
				if out[i] != ref[start+i] {
					t.Fatalf("batch %d sample %d: %v standalone vs %v in full batch",
						n, start+i, out[i], ref[start+i])
				}
			}
		}
	}
	_ = cfg
}

// TestPredictorZeroAllocs pins the steady-state allocation discipline,
// including alternating batch sizes through the same Predictor (the
// EnsureActs capacity reuse the serving tier needs).
func TestPredictorZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	_, m, ds := inferTestModel(1)
	pr := NewPredictor(m, par.Default)
	const B = 32
	var big, small data.MiniBatch
	ds.FillRange(0, B, 0, B, &big)
	ds.FillRange(0, B, 0, B/4, &small)
	out := make([]float32, B)
	probe := func() {
		pr.PredictInto(&big, out)
		pr.PredictInto(&small, out[:B/4])
	}
	probe()
	probe()
	if allocs := testing.AllocsPerRun(10, probe); allocs != 0 {
		t.Fatalf("steady-state Predictor: %v allocs per probe, want 0", allocs)
	}
}

package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpoint format: a little-endian binary stream with a magic header,
// the config dimensions (for validation), every MLP parameter tensor in
// VisitParams order, every owned embedding table, and a trailing CRC32 of
// all payload bytes. Unowned tables (distributed shards) are written as
// empty and skipped on load, so shard checkpoints compose — and compose
// ACROSS cluster shapes: restoring an R-rank run's shards into R′-rank
// models is exactly loading every old shard blob into each new shard model
// (the MLP replica is overwritten repeatedly with identical bytes; each
// table lands in the one new model that owns it).
//
// Two versions share the layout:
//
//	v0 ("DLRM"): header + tensors + CRC — weights only.
//	v1 ("DLR1"): header + a length-prefixed TrainerState record (iteration
//	  counter, dataset seed, learning rate) + tensors + CRC. The length
//	  prefix lets future fields append without breaking older readers.
//
// Load/LoadWithState accept both, so pre-v1 weight-only checkpoints keep
// working. Header word 4 records the writer's MLP minibatch blocking (BN);
// it is informational — the packed weight layout is blocking-independent,
// and elastic restore deliberately loads across blockings (shard size, and
// with it mlpBlockFor's pick, changes with the rank count) — so Load only
// sanity-checks it, never requires equality.

const (
	ckptMagic   = 0x444C524D // "DLRM": v0, weights only
	ckptMagicV1 = 0x444C5231 // "DLR1": v1, adds the trainer-state record
)

// Typed checkpoint errors, matchable with errors.Is. Every failure mode of
// Load/LoadWithState wraps exactly one of these; none panics.
var (
	// ErrCheckpointMagic: the stream does not start with a known magic.
	ErrCheckpointMagic = errors.New("not a DLRM checkpoint")
	// ErrCheckpointTruncated: the stream ended before the format did.
	ErrCheckpointTruncated = errors.New("checkpoint truncated")
	// ErrCheckpointCorrupt: the stream is structurally damaged — CRC
	// mismatch, an implausible length field, a nonsensical header value, or
	// non-finite weights.
	ErrCheckpointCorrupt = errors.New("checkpoint corrupt")
	// ErrCheckpointMismatch: a well-formed checkpoint for a different model
	// shape (config dimensions or tensor lengths disagree).
	ErrCheckpointMismatch = errors.New("checkpoint does not match model")
)

// TrainerState is the v1 self-describing resume record: everything a
// restarted trainer needs beyond the weights. Iter is the number of
// completed global iterations (the next batch index to train on), Seed the
// dataset seed whose counter-based streams regenerate any batch, LR the
// learning rate in effect.
type TrainerState struct {
	Iter int64
	Seed int64
	LR   float32
}

// trainerStateBytes is the serialized size of the known TrainerState
// fields; v1 readers accept longer records and skip the tail.
const trainerStateBytes = 8 + 8 + 4

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// readErr classifies a decode error: clean or unexpected EOF means the
// stream ended mid-format (truncated); anything else passes through.
func readErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("core: %w: %v", ErrCheckpointTruncated, err)
	}
	return err
}

// Save serializes the model (MLP weights and owned embedding tables) to w
// in the v0 weights-only format — byte-identical to what pre-v1 versions
// wrote. Use SaveWithState to record the resume state too.
func (m *Model) Save(w io.Writer) error {
	return m.save(w, nil)
}

// SaveWithState serializes the model plus the trainer-state resume record
// (v1 format).
func (m *Model) SaveWithState(w io.Writer, st TrainerState) error {
	return m.save(w, &st)
}

func (m *Model) save(w io.Writer, st *TrainerState) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	magic := uint32(ckptMagic)
	if st != nil {
		magic = ckptMagicV1
	}
	hdr := []uint32{magic, uint32(m.Cfg.Tables), uint32(m.Cfg.EmbDim),
		uint32(m.Cfg.DenseIn), uint32(m.BN)}
	if err := binary.Write(cw, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if st != nil {
		if err := binary.Write(cw, binary.LittleEndian, uint32(trainerStateBytes)); err != nil {
			return fmt.Errorf("core: checkpoint state: %w", err)
		}
		for _, v := range []any{st.Iter, st.Seed, st.LR} {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return fmt.Errorf("core: checkpoint state: %w", err)
			}
		}
	}
	writeTensor := func(p []float32) error {
		if err := binary.Write(cw, binary.LittleEndian, uint64(len(p))); err != nil {
			return err
		}
		return binary.Write(cw, binary.LittleEndian, p)
	}
	var err error
	for _, mlpNet := range []interface {
		VisitParams(func(string, []float32))
	}{m.Bot, m.Top} {
		mlpNet.VisitParams(func(_ string, p []float32) {
			if err == nil {
				err = writeTensor(p)
			}
		})
	}
	if err != nil {
		return fmt.Errorf("core: checkpoint MLP: %w", err)
	}
	for _, tab := range m.Tables {
		if tab == nil {
			if err := binary.Write(cw, binary.LittleEndian, uint64(0)); err != nil {
				return err
			}
			continue
		}
		if err := writeTensor(tab.W); err != nil {
			return fmt.Errorf("core: checkpoint table: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// Load restores a model previously saved with Save or SaveWithState into m;
// the model must have been constructed with the same config (the writer's
// MLP blocking need not match — see the format comment). Table slots that
// are empty in the checkpoint (unowned shards) are left untouched. Any
// trainer-state record is read and discarded; use LoadWithState to keep it.
func (m *Model) Load(r io.Reader) error {
	_, err := m.LoadWithState(r)
	return err
}

// LoadWithState restores a model like Load and returns the checkpoint's
// trainer-state record — nil for a v0 weights-only checkpoint.
func (m *Model) LoadWithState(r io.Reader) (*TrainerState, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	var hdr [5]uint32
	if err := binary.Read(cr, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", readErr(err))
	}
	if hdr[0] != ckptMagic && hdr[0] != ckptMagicV1 {
		return nil, fmt.Errorf("core: %w (magic %08x)", ErrCheckpointMagic, hdr[0])
	}
	if int(hdr[1]) != m.Cfg.Tables || int(hdr[2]) != m.Cfg.EmbDim || int(hdr[3]) != m.Cfg.DenseIn {
		return nil, fmt.Errorf("core: %w: S=%d E=%d D=%d vs model S=%d E=%d D=%d",
			ErrCheckpointMismatch, hdr[1], hdr[2], hdr[3], m.Cfg.Tables, m.Cfg.EmbDim, m.Cfg.DenseIn)
	}
	if hdr[4] < 1 {
		// The writer's blocking is informational, but zero is impossible —
		// a damaged header, not a different shape.
		return nil, fmt.Errorf("core: %w: header blocking %d", ErrCheckpointCorrupt, hdr[4])
	}
	var st *TrainerState
	if hdr[0] == ckptMagicV1 {
		var n uint32
		if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("core: checkpoint state: %w", readErr(err))
		}
		if n < trainerStateBytes || n > 4096 {
			return nil, fmt.Errorf("core: %w: trainer-state record of %d bytes", ErrCheckpointCorrupt, n)
		}
		st = &TrainerState{}
		for _, v := range []any{&st.Iter, &st.Seed, &st.LR} {
			if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
				return nil, fmt.Errorf("core: checkpoint state: %w", readErr(err))
			}
		}
		// Skip fields a future writer appended to the record.
		if _, err := io.CopyN(io.Discard, cr, int64(n)-trainerStateBytes); err != nil {
			return nil, fmt.Errorf("core: checkpoint state: %w", readErr(err))
		}
	}
	readTensor := func(p []float32) error {
		var n uint64
		if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
			return readErr(err)
		}
		if int(n) != len(p) {
			return fmt.Errorf("%w: tensor length %d, model expects %d", ErrCheckpointMismatch, n, len(p))
		}
		return readErr(binary.Read(cr, binary.LittleEndian, p))
	}
	var err error
	for _, mlpNet := range []interface {
		VisitParams(func(string, []float32))
	}{m.Bot, m.Top} {
		mlpNet.VisitParams(func(_ string, p []float32) {
			if err == nil {
				err = readTensor(p)
			}
		})
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint MLP: %w", err)
	}
	m.Bot.InvalidateTransposes()
	m.Top.InvalidateTransposes()
	for ti, tab := range m.Tables {
		var n uint64
		if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("core: checkpoint table %d: %w", ti, readErr(err))
		}
		if n == 0 {
			continue
		}
		if n > 1<<40 {
			// A flipped bit in a length field, not a real table: no table in
			// this codebase approaches 2^40 floats, and trusting the value
			// would turn a corrupt stream into a near-endless skip.
			return nil, fmt.Errorf("core: %w: table %d length %d", ErrCheckpointCorrupt, ti, n)
		}
		if tab == nil {
			// Skip an unowned table's payload.
			if _, err := io.CopyN(io.Discard, cr, int64(n)*4); err != nil {
				return nil, fmt.Errorf("core: checkpoint table %d: %w", ti, readErr(err))
			}
			continue
		}
		if int(n) != len(tab.W) {
			return nil, fmt.Errorf("core: %w: table %d length %d, model expects %d",
				ErrCheckpointMismatch, ti, n, len(tab.W))
		}
		if err := binary.Read(cr, binary.LittleEndian, tab.W); err != nil {
			return nil, fmt.Errorf("core: checkpoint table %d: %w", ti, readErr(err))
		}
	}
	want := cr.crc
	var got uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("core: checkpoint CRC: %w", readErr(err))
	}
	if got != want {
		return nil, fmt.Errorf("core: %w: crc %08x want %08x", ErrCheckpointCorrupt, got, want)
	}
	if err := m.validateFinite(); err != nil {
		return nil, err
	}
	return st, nil
}

// validateFinite rejects checkpoints holding NaN/Inf weights.
func (m *Model) validateFinite() error {
	bad := false
	check := func(p []float32) {
		for _, v := range p {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				bad = true
				return
			}
		}
	}
	m.Bot.VisitParams(func(_ string, p []float32) { check(p) })
	m.Top.VisitParams(func(_ string, p []float32) { check(p) })
	for _, tab := range m.Tables {
		if tab != nil {
			check(tab.W)
		}
	}
	if bad {
		return fmt.Errorf("core: %w: non-finite weights", ErrCheckpointCorrupt)
	}
	return nil
}

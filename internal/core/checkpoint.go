package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpoint format: a little-endian binary stream with a magic header,
// the config dimensions (for validation), every MLP parameter tensor in
// VisitParams order, every owned embedding table, and a trailing CRC32 of
// all payload bytes. Unowned tables (distributed shards) are written as
// empty and skipped on load, so shard checkpoints compose.

const ckptMagic = 0x444C524D // "DLRM"

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Save serializes the model (MLP weights and owned embedding tables) to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	hdr := []uint32{ckptMagic, uint32(m.Cfg.Tables), uint32(m.Cfg.EmbDim),
		uint32(m.Cfg.DenseIn), uint32(m.BN)}
	if err := binary.Write(cw, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	writeTensor := func(p []float32) error {
		if err := binary.Write(cw, binary.LittleEndian, uint64(len(p))); err != nil {
			return err
		}
		return binary.Write(cw, binary.LittleEndian, p)
	}
	var err error
	for _, mlpNet := range []interface {
		VisitParams(func(string, []float32))
	}{m.Bot, m.Top} {
		mlpNet.VisitParams(func(_ string, p []float32) {
			if err == nil {
				err = writeTensor(p)
			}
		})
	}
	if err != nil {
		return fmt.Errorf("core: checkpoint MLP: %w", err)
	}
	for _, tab := range m.Tables {
		if tab == nil {
			if err := binary.Write(cw, binary.LittleEndian, uint64(0)); err != nil {
				return err
			}
			continue
		}
		if err := writeTensor(tab.W); err != nil {
			return fmt.Errorf("core: checkpoint table: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// Load restores a model previously saved with Save into m; the model must
// have been constructed with the same config. Table slots that are empty in
// the checkpoint (unowned shards) are left untouched.
func (m *Model) Load(r io.Reader) error {
	cr := &crcReader{r: bufio.NewReader(r)}
	var hdr [5]uint32
	if err := binary.Read(cr, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if hdr[0] != ckptMagic {
		return fmt.Errorf("core: not a DLRM checkpoint (magic %08x)", hdr[0])
	}
	if int(hdr[1]) != m.Cfg.Tables || int(hdr[2]) != m.Cfg.EmbDim || int(hdr[3]) != m.Cfg.DenseIn {
		return fmt.Errorf("core: checkpoint config mismatch: S=%d E=%d D=%d vs model S=%d E=%d D=%d",
			hdr[1], hdr[2], hdr[3], m.Cfg.Tables, m.Cfg.EmbDim, m.Cfg.DenseIn)
	}
	readTensor := func(p []float32) error {
		var n uint64
		if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
			return err
		}
		if int(n) != len(p) {
			return fmt.Errorf("core: tensor length %d, model expects %d", n, len(p))
		}
		return binary.Read(cr, binary.LittleEndian, p)
	}
	var err error
	for _, mlpNet := range []interface {
		VisitParams(func(string, []float32))
	}{m.Bot, m.Top} {
		mlpNet.VisitParams(func(_ string, p []float32) {
			if err == nil {
				err = readTensor(p)
			}
		})
	}
	if err != nil {
		return fmt.Errorf("core: checkpoint MLP: %w", err)
	}
	m.Bot.InvalidateTransposes()
	m.Top.InvalidateTransposes()
	for ti, tab := range m.Tables {
		var n uint64
		if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
			return err
		}
		if n == 0 {
			continue
		}
		if tab == nil {
			// Skip an unowned table's payload.
			if _, err := io.CopyN(io.Discard, cr, int64(n)*4); err != nil {
				return err
			}
			continue
		}
		if int(n) != len(tab.W) {
			return fmt.Errorf("core: table %d length %d, model expects %d", ti, n, len(tab.W))
		}
		if err := binary.Read(cr, binary.LittleEndian, tab.W); err != nil {
			return err
		}
	}
	want := cr.crc
	var got uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return fmt.Errorf("core: checkpoint CRC: %w", err)
	}
	if got != want {
		return fmt.Errorf("core: checkpoint corrupt: crc %08x want %08x", got, want)
	}
	return m.validateFinite()
}

// validateFinite rejects checkpoints holding NaN/Inf weights.
func (m *Model) validateFinite() error {
	bad := false
	check := func(p []float32) {
		for _, v := range p {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				bad = true
				return
			}
		}
	}
	m.Bot.VisitParams(func(_ string, p []float32) { check(p) })
	m.Top.VisitParams(func(_ string, p []float32) { check(p) })
	for _, tab := range m.Tables {
		if tab != nil {
			check(tab.W)
		}
	}
	if bad {
		return fmt.Errorf("core: checkpoint contains non-finite weights")
	}
	return nil
}

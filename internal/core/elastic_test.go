package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/data"
)

// elasticTestConfig is distTestConfig at the elastic tests' shape: the
// flat-sync schedule (parity semantics, not schedule tuning).
func elasticTestConfig(ranks, globalN, iters int, v Variant, functional bool) ElasticConfig {
	return ElasticConfig{Base: distTestConfig(tinyConfig(), ranks, globalN, iters, v, functional)}
}

// TestElasticChurnLossParity is the headline tentpole check: a run that
// loses a rank mid-run — restored from a periodic shard checkpoint, lost
// iterations replayed — must match an uninterrupted run at the surviving
// shape to float-reassociation tolerance, for every communication strategy
// and both backends.
func TestElasticChurnLossParity(t *testing.T) {
	const globalN, iters = 48, 6
	for _, v := range Variants {
		// Uninterrupted reference at the surviving shape R' = 3.
		ref, err := distTestConfig(tinyConfig(), 3, globalN, iters, v, true).Run()
		if err != nil {
			t.Fatal(err)
		}
		refLosses := ref.MeanLosses()

		ec := elasticTestConfig(4, globalN, iters, v, true)
		ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{
			{Kind: cluster.RankFail, Iter: 4, Rank: 2},
		}}
		ec.CheckpointEvery = 2
		res, err := RunElastic(ec)
		if err != nil {
			t.Fatal(err)
		}

		if len(res.Recoveries) != 1 {
			t.Fatalf("%s: %d recoveries, want 1", v.Name(), len(res.Recoveries))
		}
		rec := res.Recoveries[0]
		if rec.CkptIter != 2 || rec.ReplayIters != 2 {
			t.Fatalf("%s: restored from iter %d replaying %d, want 2/2", v.Name(), rec.CkptIter, rec.ReplayIters)
		}
		if rec.DetectSeconds <= 0 || rec.RestoreSeconds <= 0 || rec.ReplaySeconds <= 0 {
			t.Fatalf("%s: degenerate recovery breakdown %+v", v.Name(), rec)
		}
		if res.FinalRanks != 3 {
			t.Fatalf("%s: final ranks %d, want 3", v.Name(), res.FinalRanks)
		}
		if got := rec.OldRanks*10 + rec.NewRanks; got != 43 {
			t.Fatalf("%s: recovery %d→%d ranks, want 4→3", v.Name(), rec.OldRanks, rec.NewRanks)
		}
		if len(res.Losses) != iters {
			t.Fatalf("%s: %d stitched losses, want %d", v.Name(), len(res.Losses), iters)
		}
		for i := range refLosses {
			if d := math.Abs(res.Losses[i] - refLosses[i]); d > 1e-6 {
				t.Fatalf("%s: iter %d loss %v vs uninterrupted %v (Δ=%g > 1e-6)",
					v.Name(), i, res.Losses[i], refLosses[i], d)
			}
		}
		// The final segment's models must match the uninterrupted run's to
		// the same tolerance.
		final := res.Segments[len(res.Segments)-1].Res
		for rk := 0; rk < 3; rk++ {
			checkMLPClose(t, v.Name(), final.Models[rk], ref.Models[rk], 1e-6)
		}
	}
}

// TestElasticNoCheckpointBitExact pins the strongest parity: with no
// checkpoints a failure restarts from a fresh seed re-init at the surviving
// shape — and because table seeding is rank-count independent, the restart
// IS an uninterrupted run at that shape, bit for bit.
func TestElasticNoCheckpointBitExact(t *testing.T) {
	const globalN, iters = 48, 5
	v := Variant{Alltoall, cluster.CCLBackend}
	ref, err := distTestConfig(tinyConfig(), 3, globalN, iters, v, true).Run()
	if err != nil {
		t.Fatal(err)
	}
	refLosses := ref.MeanLosses()

	ec := elasticTestConfig(4, globalN, iters, v, true)
	ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{
		{Kind: cluster.RankFail, Iter: 3, Rank: 0},
	}}
	res, err := RunElastic(ec)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recoveries[0]
	if rec.CkptIter != 0 || rec.ReplayIters != 3 || rec.RestoreSeconds != 0 {
		t.Fatalf("no-checkpoint recovery %+v, want full replay from 0 with no restore read", rec)
	}
	for i := range refLosses {
		if res.Losses[i] != refLosses[i] {
			t.Fatalf("iter %d loss %v, want bit-exact %v", i, res.Losses[i], refLosses[i])
		}
	}
}

// TestElasticRescale checks the graceful R → R' path: drain at the
// boundary, restart at the new shape, no replay — and the stitched run
// still tracks the single-socket reference.
func TestElasticRescale(t *testing.T) {
	const globalN, iters = 48, 6
	v := Variant{FusedScatter, cluster.MPIBackend}
	_, refLosses := trainSingle(tinyConfig(), globalN, iters, 17, 0.5)

	ec := elasticTestConfig(4, globalN, iters, v, true)
	ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{
		{Kind: cluster.Rescale, Iter: 3, NewRanks: 2},
	}}
	res, err := RunElastic(ec)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recoveries[0]
	if rec.Kind != cluster.Rescale || rec.ReplayIters != 0 || rec.DetectSeconds != 0 {
		t.Fatalf("rescale recovery %+v, want drain+restore only", rec)
	}
	if rec.DrainSeconds <= 0 || rec.RestoreSeconds <= 0 {
		t.Fatalf("rescale without drain/restore charge: %+v", rec)
	}
	if res.FinalRanks != 2 || len(res.Segments) != 2 || res.Segments[1].Ranks != 2 {
		t.Fatalf("rescale did not land on 2 ranks: final=%d segments=%+v", res.FinalRanks, res.Segments)
	}
	for i := range refLosses {
		if d := math.Abs(res.Losses[i] - refLosses[i]); d > 2e-3 {
			t.Fatalf("iter %d loss %v vs single-socket %v (Δ=%g)", i, res.Losses[i], refLosses[i], d)
		}
	}
}

// TestElasticDeterminism: two identical elastic runs — including a
// virtual-time-anchored event and randomized churn resolution — report
// identical virtual clocks and losses.
func TestElasticDeterminism(t *testing.T) {
	const globalN, iters = 48, 6
	run := func() *ElasticResult {
		ec := elasticTestConfig(4, globalN, iters, Variant{Alltoall, cluster.CCLBackend}, true)
		ec.CheckpointEvery = 2
		ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{
			{Kind: cluster.RankFail, At: 1e-3, Rank: 1}, // virtual-time anchored
		}}
		res, err := RunElastic(ec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalSeconds != b.TotalSeconds || a.OverheadSeconds != b.OverheadSeconds {
		t.Fatalf("virtual clocks differ: %v/%v vs %v/%v",
			a.TotalSeconds, a.OverheadSeconds, b.TotalSeconds, b.OverheadSeconds)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("iter %d losses differ: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
}

// TestElasticRetune: on a shape change the driver re-runs the schedule
// autotuner (memoized per rank count) and reports what it chose.
func TestElasticRetune(t *testing.T) {
	ec := elasticTestConfig(4, 64, 6, Variant{Alltoall, cluster.CCLBackend}, false)
	ec.Base.Sync = false
	ec.Base.BucketBytes = 0
	ec.Retune = true
	ec.Tune = AutotuneOpts{ProbeIters: 1, FinalIters: 1, MaxCandidates: 4}
	ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{
		{Kind: cluster.RankFail, Iter: 2, Rank: 3},
		{Kind: cluster.RankFail, Iter: 4, Rank: 0},
	}}
	res, err := RunElastic(ec)
	if err != nil {
		t.Fatal(err)
	}
	// Three rank counts (4, 3, 2) → three memoized tuner runs.
	if len(res.Retunes) != 3 {
		t.Fatalf("%d retune reports, want 3 (one per distinct rank count)", len(res.Retunes))
	}
	for _, rep := range res.Retunes {
		if rep == nil || rep.Schedule == "" {
			t.Fatalf("empty retune report: %+v", rep)
		}
	}
	for _, seg := range res.Segments {
		if seg.Schedule == "" {
			t.Fatal("segment without a schedule label")
		}
	}
}

// TestElasticValidate is the rejection table for incoherent elastic
// configurations and impossible fault plans.
func TestElasticValidate(t *testing.T) {
	base := func() ElasticConfig {
		return elasticTestConfig(4, 48, 6, Variant{Alltoall, cluster.CCLBackend}, true)
	}
	cases := []struct {
		name string
		mut  func(ec *ElasticConfig)
	}{
		{"driver-owned StartIter", func(ec *ElasticConfig) { ec.Base.StartIter = 2 }},
		{"driver-owned CheckpointEvery", func(ec *ElasticConfig) { ec.Base.CheckpointEvery = 2 }},
		{"negative cadence", func(ec *ElasticConfig) { ec.CheckpointEvery = -1 }},
		{"bw without cadence", func(ec *ElasticConfig) { ec.CheckpointBW = 1e9 }},
		{"negative detect", func(ec *ElasticConfig) { ec.DetectSeconds = -1 }},
		{"min ranks above start", func(ec *ElasticConfig) { ec.MinRanks = 9 }},
		{"kills nonexistent rank", func(ec *ElasticConfig) {
			ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{{Kind: cluster.RankFail, Iter: 2, Rank: 7}}}
		}},
		{"shrinks below min ranks", func(ec *ElasticConfig) {
			ec.MinRanks = 4
			ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{{Kind: cluster.RankFail, Iter: 2, Rank: 0}}}
		}},
		{"functional indivisible survivor shape", func(ec *ElasticConfig) {
			// 48 % 4 == 0 but a rescale to 5 ranks breaks divisibility.
			ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{{Kind: cluster.Rescale, Iter: 2, NewRanks: 5}}}
		}},
		{"rescale beyond table count", func(ec *ElasticConfig) {
			ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{{Kind: cluster.Rescale, Iter: 2, NewRanks: 12}}}
		}},
		{"invalid plan event", func(ec *ElasticConfig) {
			ec.Plan = &cluster.FaultPlan{Events: []cluster.FaultEvent{{Kind: cluster.RankFail, Iter: -1, Rank: 0}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ec := base()
			tc.mut(&ec)
			if _, err := RunElastic(ec); err == nil {
				t.Fatalf("RunElastic accepted %s", tc.name)
			}
		})
	}
}

// TestFailureRemapProperty is the resharding property test: for every
// cluster size 2–8, every failed rank, and every communication strategy,
// the survivors' implicit remap must (a) own every embedding table exactly
// once, (b) partition the global minibatch exactly, and (c) agree with the
// per-rank table lists the distributed workspaces prepare.
func TestFailureRemapProperty(t *testing.T) {
	cfg := tinyConfig()
	cfg.Tables = 11
	cfg.Rows = []int{200, 300, 100, 250, 150, 90, 210, 130, 170, 110, 240}
	const globalN = 8 * 9 * 7 * 5 // divisible by every count 2..9

	for ranks := 2; ranks <= 8; ranks++ {
		for failed := 0; failed < ranks; failed++ {
			newRanks := ranks - 1
			// (a) Table ownership after the remap: every table exactly once.
			owners := make([]int, cfg.Tables)
			for t2 := range owners {
				owners[t2] = -1
			}
			for r := 0; r < newRanks; r++ {
				for _, t2 := range LocalTables(cfg, r, newRanks) {
					if owners[t2] != -1 {
						t.Fatalf("R=%d fail=%d: table %d owned by ranks %d and %d", ranks, failed, t2, owners[t2], r)
					}
					owners[t2] = r
					if TableOwner(t2, newRanks) != r {
						t.Fatalf("R=%d: LocalTables and TableOwner disagree on table %d", newRanks, t2)
					}
				}
			}
			for t2, o := range owners {
				if o == -1 {
					t.Fatalf("R=%d fail=%d: table %d orphaned after remap", ranks, failed, t2)
				}
			}
			// (b) Survivor data shards partition [0, globalN) exactly.
			next := 0
			for r := 0; r < newRanks; r++ {
				lo, hi := data.ShardRange(globalN, r, newRanks)
				if lo != next || hi < lo {
					t.Fatalf("R=%d fail=%d: shard %d is [%d,%d), want to start at %d", ranks, failed, r, lo, hi, next)
				}
				next = hi
			}
			if next != globalN {
				t.Fatalf("R=%d fail=%d: shards cover %d of %d samples", ranks, failed, next, globalN)
			}
			// (c) The workspaces' prepared table lists match, per strategy.
			for _, v := range Variants {
				dc := distTestConfig(cfg, newRanks, globalN, 1, v, false)
				wss := NewDistWorkspaces()
				for r := 0; r < newRanks; r++ {
					ws := wss.get(r)
					ws.prepare(&dc, r)
					want := LocalTables(cfg, r, newRanks)
					if len(ws.locT) != len(want) {
						t.Fatalf("%s R=%d rank %d: workspace owns %d tables, want %d",
							v.Name(), newRanks, r, len(ws.locT), len(want))
					}
					for i := range want {
						if ws.locT[i] != want[i] {
							t.Fatalf("%s R=%d rank %d: workspace table list %v, want %v",
								v.Name(), newRanks, r, ws.locT, want)
						}
					}
				}
			}
		}
	}
}

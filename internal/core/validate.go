package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/comm"
)

// Validate checks the configuration for incoherent knob combinations and
// returns a descriptive error instead of letting them surface as silent
// misbehavior (an inert knob pretending to be measured) or a panic deep in
// a rank goroutine. Every Run* entry point calls it; drivers that assemble
// configurations programmatically (sweeps, autotuners) can call it early
// to reject a candidate before paying for pools and workspaces.
func (dc *DistConfig) Validate() error {
	if dc.Ranks < 1 {
		return fmt.Errorf("core: Ranks=%d, want >= 1", dc.Ranks)
	}
	if dc.Iters < 1 {
		return fmt.Errorf("core: Iters=%d, want >= 1", dc.Iters)
	}
	if dc.GlobalN < 1 {
		return fmt.Errorf("core: GlobalN=%d, want >= 1", dc.GlobalN)
	}
	if dc.GlobalN%dc.Ranks != 0 {
		return fmt.Errorf("core: global minibatch %d not divisible by %d ranks", dc.GlobalN, dc.Ranks)
	}
	if err := dc.Cfg.Validate(); err != nil {
		return err
	}
	if dc.Ranks > dc.Cfg.MaxRanks() {
		return fmt.Errorf("core: %d ranks exceeds max %d for %s (one table shard per rank)",
			dc.Ranks, dc.Cfg.MaxRanks(), dc.Cfg.Name)
	}
	if s := dc.Variant.Strategy; s < ScatterList || s > Alltoall {
		return fmt.Errorf("core: unknown comm strategy %d", int(s))
	}
	if b := dc.Variant.Backend; b != cluster.MPIBackend && b != cluster.CCLBackend {
		return fmt.Errorf("core: unknown backend %d", int(b))
	}
	if m := dc.Loader; m < LoaderNone || m > LoaderSharded {
		return fmt.Errorf("core: unknown loader mode %d", int(m))
	}
	if a := dc.Allreduce; a < comm.RingRSAG || a > comm.AllreduceAuto {
		return fmt.Errorf("core: unknown allreduce algorithm %d", int(a))
	}
	if dc.CommCores < 0 {
		return fmt.Errorf("core: CommCores=%d, want >= 0", dc.CommCores)
	}
	if dc.Socket.Cores > 0 && dc.CommCores >= dc.Socket.Cores {
		return fmt.Errorf("core: CommCores=%d leaves no compute cores on a %d-core socket",
			dc.CommCores, dc.Socket.Cores)
	}
	if dc.Interference != 0 && dc.Interference < 1 {
		return fmt.Errorf("core: Interference=%v, want >= 1 (or 0 for the backend default)", dc.Interference)
	}
	if dc.Topo != nil && dc.Topo.NumSockets() < dc.Ranks {
		return fmt.Errorf("core: topology has %d sockets for %d ranks", dc.Topo.NumSockets(), dc.Ranks)
	}
	if dc.BucketBytes < FlatBuckets {
		return fmt.Errorf("core: BucketBytes=%d, want FlatBuckets (%d), 0 (tuned default) or a positive size",
			dc.BucketBytes, FlatBuckets)
	}
	if len(dc.BucketChannels) > 0 {
		// The channel set only round-robins where buckets actually overlap:
		// the bucketed schedule under the overlap-aware pipeline. Anywhere
		// else the knob is inert — reject rather than silently ignore.
		if dc.BucketBytes == FlatBuckets {
			return fmt.Errorf("core: BucketChannels set with FlatBuckets — the flat schedule has no buckets to route")
		}
		if dc.Sync {
			return fmt.Errorf("core: BucketChannels set with Sync — the synchronous schedule places collectives by label hash")
		}
		channels := cluster.Config{Backend: dc.Variant.Backend}.WithDefaults().CCLChannels
		for _, ch := range dc.BucketChannels {
			if ch < 0 || ch >= channels {
				return fmt.Errorf("core: bucket channel %d out of range [0,%d)", ch, channels)
			}
		}
	}
	if dc.StartIter < 0 {
		return fmt.Errorf("core: StartIter=%d, want >= 0", dc.StartIter)
	}
	if dc.CheckpointEvery < 0 {
		return fmt.Errorf("core: CheckpointEvery=%d, want >= 0", dc.CheckpointEvery)
	}
	if dc.CheckpointBW < 0 {
		return fmt.Errorf("core: CheckpointBW=%v, want >= 0", dc.CheckpointBW)
	}
	if dc.CheckpointEvery == 0 {
		// Without a cadence the rest of the checkpoint knobs are inert —
		// reject rather than silently ignore.
		if dc.CheckpointBW != 0 {
			return fmt.Errorf("core: CheckpointBW set without CheckpointEvery — no checkpoints to drain")
		}
		if dc.CheckpointSink != nil {
			return fmt.Errorf("core: CheckpointSink set without CheckpointEvery — it would never be called")
		}
	}
	if dc.EmbCacheBytes < 0 {
		return fmt.Errorf("core: EmbCacheBytes=%d, want >= 0", dc.EmbCacheBytes)
	}
	if dc.ColdTierBW < 0 {
		return fmt.Errorf("core: ColdTierBW=%v, want >= 0", dc.ColdTierBW)
	}
	if dc.ColdTierLat < 0 {
		return fmt.Errorf("core: ColdTierLat=%v, want >= 0", dc.ColdTierLat)
	}
	if dc.EmbSkew < 0 {
		return fmt.Errorf("core: EmbSkew=%v, want >= 0", dc.EmbSkew)
	}
	if dc.EmbCacheBytes > 0 && dc.ColdTierBW == 0 {
		// A tiered run must state its cold tier: an implicit bandwidth here
		// would silently set the miss penalty the figure measures.
		return fmt.Errorf("core: EmbCacheBytes set without ColdTierBW — a tiered store needs a cold-tier bandwidth (DefaultColdTierBW is the conventional value)")
	}
	if dc.EmbCacheBytes == 0 {
		// Without a cache budget the rest of the tier knobs are inert —
		// reject rather than silently ignore.
		if dc.ColdTierBW != 0 {
			return fmt.Errorf("core: ColdTierBW set without EmbCacheBytes — no tiered store to charge")
		}
		if dc.ColdTierLat != 0 {
			return fmt.Errorf("core: ColdTierLat set without EmbCacheBytes — no tiered store to charge")
		}
		if dc.EmbSkew != 0 {
			return fmt.Errorf("core: EmbSkew set without EmbCacheBytes — no tiered store to model")
		}
	}
	if dc.RunCfg == nil {
		// The functional hooks only fire where real models exist.
		if dc.CheckpointSink != nil {
			return fmt.Errorf("core: CheckpointSink set without RunCfg — timing-only runs have no models to snapshot")
		}
		if dc.Restore != nil {
			return fmt.Errorf("core: Restore set without RunCfg — timing-only runs have no models to restore")
		}
	}
	if dc.RunCfg != nil {
		if err := dc.RunCfg.Validate(); err != nil {
			return fmt.Errorf("core: functional RunCfg: %w", err)
		}
		if dc.Dataset == nil {
			return fmt.Errorf("core: functional mode (RunCfg set) requires a Dataset")
		}
		if dc.RunCfg.Tables != dc.Cfg.Tables {
			return fmt.Errorf("core: functional RunCfg has %d tables, paper-scale Cfg %d — shards would not line up",
				dc.RunCfg.Tables, dc.Cfg.Tables)
		}
	}
	return nil
}

// Run validates the configuration and executes the simulated-cluster
// training run — the single blessed entry point for distributed training.
// RunDistributed is the thin deprecated wrapper that panics on a Validate
// error instead of returning it.
func (dc DistConfig) Run() (*DistResult, error) {
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	return dc.run(), nil
}

package core

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/comm"
)

// Elastic fault-tolerant training (the robustness layer over DistConfig):
// a run is split into segments at fault-plan boundaries. Within a segment
// every rank trains normally, taking periodic shard checkpoints priced
// through the cluster's background stream. When a rank fails, the survivors
// detect it (a timeout at the next collective, modeled as DetectSeconds),
// re-shard the dead rank's tables and data slice by restarting the run at
// R−1 ranks — TableOwner and data.ShardRange are pure functions of the rank
// count, so the remap is implicit — restore from the newest durable shard
// checkpoint, and replay the lost iterations from the counter-based data
// streams. A Rescale event is the graceful version: drain a checkpoint at
// the boundary, restart at the new rank count, no detection or replay.
//
// Because the hybrid-parallel gradient math is rank-count-independent (the
// allreduce SUM with 1/globalN scaling equals the single-socket global-batch
// gradient, and table shards see the full global batch wherever they live),
// a run that loses a rank continues on the SAME trajectory: restored from a
// checkpoint it matches an uninterrupted run at the surviving shape to float
// reassociation (~1e-6), and restarted from scratch (no checkpoints) it is
// bit-identical to one — the parity the elastic tests pin.

// ElasticConfig describes an elastic run: a base configuration (the shape
// the run starts at), a fault plan, and the recovery-model knobs.
type ElasticConfig struct {
	// Base is the initial run configuration. The elastic driver owns the
	// segmentation fields — StartIter, CheckpointEvery, CheckpointBW,
	// CheckpointSink, Restore must be zero; set the cadence on the
	// ElasticConfig instead.
	Base DistConfig
	// Plan is the fault schedule (nil = run uninterrupted).
	Plan *cluster.FaultPlan
	// CheckpointEvery is the shard-checkpoint cadence in global iterations
	// (0 = no checkpoints: every failure replays from iteration 0 with a
	// fresh seed re-init).
	CheckpointEvery int
	// CheckpointBW is the per-rank checkpoint drain/restore bandwidth in
	// bytes/s (0 = DefaultCheckpointBW).
	CheckpointBW float64
	// DetectSeconds models failure detection — the collective timeout the
	// survivors hit before agreeing a rank is dead (0 =
	// cluster.DefaultDetectSeconds).
	DetectSeconds float64
	// MinRanks aborts the run (at Validate time, from the plan's shape
	// walk) if churn would shrink the cluster below it (0 = 1).
	MinRanks int
	// Retune re-runs the schedule autotuner whenever the rank count
	// changes — the "re-tune mid-run when the shape changes" trigger —
	// memoized per rank count. Tune bounds each search.
	Retune bool
	Tune   AutotuneOpts
}

// Recovery describes one fault-plan event's cost breakdown.
type Recovery struct {
	Kind       cluster.FaultKind
	Iter       int // boundary: the event fired after iteration Iter-1
	FailedRank int // RankFail only; -1 for Rescale
	OldRanks   int
	NewRanks   int
	// CkptIter is the global iteration count of the durable checkpoint the
	// survivors restored from (0 = fresh re-init, full replay).
	CkptIter    int
	ReplayIters int // lost iterations re-trained at the new shape

	DetectSeconds  float64 // collective-timeout detection (RankFail only)
	DrainSeconds   float64 // boundary checkpoint drain (Rescale only)
	RestoreSeconds float64 // survivors re-reading the shard checkpoints
	ReplaySeconds  float64 // wall time of the replayed iterations
}

// TimeToRecover is the wall-clock cost of the event: everything an
// uninterrupted run would not have paid.
func (r *Recovery) TimeToRecover() float64 {
	return r.DetectSeconds + r.DrainSeconds + r.RestoreSeconds + r.ReplaySeconds
}

// ElasticSegment is one uninterrupted stretch of the run.
type ElasticSegment struct {
	StartIter int // first global iteration the segment trains
	Iters     int
	Ranks     int
	Schedule  string // schedule label (autotuned when Retune is set)
	Res       *DistResult
}

// ElasticResult aggregates an elastic run.
type ElasticResult struct {
	Segments   []ElasticSegment
	Recoveries []Recovery
	// Losses is the stitched global loss curve, one entry per global
	// iteration (functional mode only). Replayed iterations report the
	// replay's loss — the value the run actually trained through last.
	Losses []float64
	// TotalSeconds is the virtual wall clock of the whole run: segment
	// training time plus every recovery's detect/drain/restore charges.
	TotalSeconds float64
	// OverheadSeconds is the part an uninterrupted run would not have paid:
	// detect + drain + restore + replay over all recoveries.
	OverheadSeconds float64
	FinalRanks      int
	Iters           int // productive global iterations (Base.Iters)
	// Retunes lists the autotuner reports, one per distinct rank count
	// tuned (Retune mode only).
	Retunes []*AutotuneReport
}

// EffectiveIterSeconds is the throughput-under-churn metric: total wall
// clock over the productive iteration count.
func (r *ElasticResult) EffectiveIterSeconds() float64 {
	return r.TotalSeconds / float64(r.Iters)
}

// ckptStore is the functional runs' durable object store: per-boundary,
// per-rank serialized shard checkpoints. Rank goroutines write concurrently
// through sinkFor; the driver reads between segments.
type ckptStore struct {
	mu    sync.Mutex
	blobs map[int][][]byte // global iteration count → per-rank blob
}

// sinkFor returns a DistConfig.CheckpointSink recording each rank's shard
// under the segment's rank count. Serialization runs outside the lock, so
// concurrent ranks only contend on the map insert.
func (s *ckptStore) sinkFor(ranks int, seed int64, lr float32) func(rank, iter int, m *Model) {
	return func(rank, iter int, m *Model) {
		var buf bytes.Buffer
		if err := m.SaveWithState(&buf, TrainerState{Iter: int64(iter), Seed: seed, LR: lr}); err != nil {
			panic(fmt.Sprintf("core: elastic checkpoint sink: %v", err))
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		b := s.blobs[iter]
		if len(b) != ranks {
			b = make([][]byte, ranks)
			s.blobs[iter] = b
		}
		b[rank] = buf.Bytes()
	}
}

func (s *ckptStore) set(iter int, blobs [][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[iter] = blobs
}

func (s *ckptStore) at(iter int) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blobs[iter]
}

// restoreFromBlobs returns a DistConfig.Restore loading every old-shape
// shard blob into each new-shape shard model — the cross-shape composition
// the checkpoint format guarantees: the MLP replica is overwritten with
// identical bytes by every blob, and each table lands in exactly the new
// models that own it (unowned slots skip the payload).
func restoreFromBlobs(blobs [][]byte) func(rank int, m *Model) {
	return func(rank int, m *Model) {
		for _, blob := range blobs {
			if _, err := m.LoadWithState(bytes.NewReader(blob)); err != nil {
				panic(fmt.Sprintf("core: elastic restore: %v", err))
			}
		}
	}
}

// scheduleLabel names a segment's communication schedule.
func scheduleLabel(dc *DistConfig) string {
	s := "overlapped"
	if dc.Sync {
		s = "sync"
	}
	if bb := dc.EffectiveBucketBytes(); bb > 0 {
		return fmt.Sprintf("%s+bucketed(%dMiB)", s, bb>>20)
	}
	return s + "+flat"
}

// validate checks the elastic configuration and pre-walks the fault plan's
// shape sequence, returning the resolved (iteration-anchored, sorted)
// events.
func (ec *ElasticConfig) validate() ([]cluster.FaultEvent, error) {
	base := &ec.Base
	if base.StartIter != 0 || base.CheckpointEvery != 0 || base.CheckpointBW != 0 ||
		base.CheckpointSink != nil || base.Restore != nil {
		return nil, fmt.Errorf("core: elastic Base must leave StartIter/Checkpoint*/Restore zero — the driver owns segmentation; set the cadence on ElasticConfig")
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if ec.CheckpointEvery < 0 {
		return nil, fmt.Errorf("core: elastic CheckpointEvery=%d, want >= 0", ec.CheckpointEvery)
	}
	if ec.CheckpointBW < 0 {
		return nil, fmt.Errorf("core: elastic CheckpointBW=%v, want >= 0", ec.CheckpointBW)
	}
	if ec.CheckpointBW != 0 && ec.CheckpointEvery == 0 {
		return nil, fmt.Errorf("core: elastic CheckpointBW set without CheckpointEvery — no checkpoints to drain")
	}
	if ec.DetectSeconds < 0 {
		return nil, fmt.Errorf("core: elastic DetectSeconds=%v, want >= 0", ec.DetectSeconds)
	}
	minRanks := ec.MinRanks
	if minRanks == 0 {
		minRanks = 1
	}
	if minRanks < 1 || minRanks > base.Ranks {
		return nil, fmt.Errorf("core: elastic MinRanks=%d with %d starting ranks", ec.MinRanks, base.Ranks)
	}
	if ec.Plan == nil {
		return nil, nil
	}
	if err := ec.Plan.Validate(); err != nil {
		return nil, err
	}
	var iterSec float64
	if ec.Plan.NeedsTime() {
		// Anchor virtual-time events to iteration boundaries with a short
		// timing probe at the starting shape.
		probe := *base
		probe.RunCfg, probe.Dataset = nil, nil
		probe.Iters = 2
		pr, err := probe.Run()
		if err != nil {
			return nil, err
		}
		iterSec = pr.IterSeconds
	}
	events, err := ec.Plan.Resolved(iterSec, base.Iters)
	if err != nil {
		return nil, err
	}
	// Pre-walk the shape sequence so an impossible plan fails here, not
	// segments deep into the run.
	functional := base.RunCfg != nil
	ranks := base.Ranks
	for _, ev := range events {
		switch ev.Kind {
		case cluster.RankFail:
			if ev.Rank >= ranks {
				return nil, fmt.Errorf("core: elastic plan kills rank %d of a %d-rank cluster (%v)", ev.Rank, ranks, ev)
			}
			if ranks-1 < minRanks {
				return nil, fmt.Errorf("core: elastic plan shrinks below MinRanks=%d (%v)", minRanks, ev)
			}
			ranks--
		case cluster.Rescale:
			if ev.NewRanks < minRanks {
				return nil, fmt.Errorf("core: elastic plan rescales below MinRanks=%d (%v)", minRanks, ev)
			}
			if ev.NewRanks > base.Cfg.MaxRanks() {
				return nil, fmt.Errorf("core: elastic plan rescales to %d ranks, max %d for %s", ev.NewRanks, base.Cfg.MaxRanks(), base.Cfg.Name)
			}
			if base.Topo != nil && ev.NewRanks > base.Topo.NumSockets() {
				return nil, fmt.Errorf("core: elastic plan rescales to %d ranks on a %d-socket topology", ev.NewRanks, base.Topo.NumSockets())
			}
			ranks = ev.NewRanks
		}
		if base.GlobalN < ranks {
			return nil, fmt.Errorf("core: elastic plan leaves %d ranks sharing a global minibatch of %d", ranks, base.GlobalN)
		}
		if functional && base.GlobalN%ranks != 0 {
			return nil, fmt.Errorf("core: elastic functional run: global minibatch %d not divisible by %d survivor ranks (%v)", base.GlobalN, ranks, ev)
		}
	}
	return events, nil
}

// RunElastic executes the elastic run: segments between fault events, each
// a DistConfig run at the current shape, with recovery (detect + restore +
// replay) or rescaling (drain + restore) charged between them.
func RunElastic(ec ElasticConfig) (*ElasticResult, error) {
	events, err := ec.validate()
	if err != nil {
		return nil, err
	}
	base := ec.Base
	functional := base.RunCfg != nil
	bw := ec.CheckpointBW
	if bw == 0 {
		bw = DefaultCheckpointBW
	}
	detect := ec.DetectSeconds
	if detect == 0 {
		detect = cluster.DefaultDetectSeconds
	}

	res := &ElasticResult{Iters: base.Iters}
	if functional {
		res.Losses = make([]float64, base.Iters)
	}
	store := &ckptStore{blobs: map[int][][]byte{}}
	var durable [][]byte // blobs behind the current restore point
	type schedFields struct {
		sync           bool
		bucketBytes    int
		allreduce      comm.AllreduceAlgo
		bucketChannels []int
	}
	tuned := map[int]schedFields{}

	ranks := base.Ranks
	start := 0       // next global iteration to train
	pendingIdx := -1 // recovery awaiting the next segment's ReplaySeconds
	var drains []int // always-durable boundaries (graceful rescale drains)
	ei := 0
	for {
		end := base.Iters
		if ei < len(events) {
			end = events[ei].Iter
		}
		seg := base
		seg.Ranks = ranks
		seg.StartIter = start
		seg.Iters = end - start
		seg.CheckpointEvery = ec.CheckpointEvery
		seg.CheckpointBW = ec.CheckpointBW
		if !functional {
			// Timing mode tolerates non-divisible shapes by trimming the
			// global batch to the nearest multiple (the survivors train a
			// marginally smaller batch); functional mode rejected these in
			// the pre-walk.
			seg.GlobalN = base.GlobalN - base.GlobalN%ranks
		}
		if functional && ec.CheckpointEvery > 0 {
			seg.CheckpointSink = store.sinkFor(ranks, base.Seed, base.LR)
		}
		if functional && durable != nil {
			seg.Restore = restoreFromBlobs(durable)
		}
		if ec.Retune {
			ts, ok := tuned[ranks]
			if !ok {
				tunedCfg, rep := AutotuneDistConfig(seg, ec.Tune)
				ts = schedFields{tunedCfg.Sync, tunedCfg.BucketBytes, tunedCfg.Allreduce, tunedCfg.BucketChannels}
				tuned[ranks] = ts
				res.Retunes = append(res.Retunes, rep)
			}
			seg.Sync, seg.BucketBytes = ts.sync, ts.bucketBytes
			seg.Allreduce, seg.BucketChannels = ts.allreduce, ts.bucketChannels
		}

		segRes, err := seg.Run()
		if err != nil {
			return nil, err
		}
		res.Segments = append(res.Segments, ElasticSegment{
			StartIter: start, Iters: seg.Iters, Ranks: ranks,
			Schedule: scheduleLabel(&seg), Res: segRes,
		})
		res.TotalSeconds += segRes.IterSeconds * float64(seg.Iters)
		if functional {
			for i, l := range segRes.MeanLosses() {
				res.Losses[start+i] = l
			}
		}
		if pendingIdx >= 0 {
			rec := &res.Recoveries[pendingIdx]
			rec.ReplaySeconds = float64(rec.ReplayIters) * segRes.IterSeconds
			res.OverheadSeconds += rec.ReplaySeconds
			pendingIdx = -1
		}
		if ei >= len(events) {
			break
		}
		ev := events[ei]
		ei++
		oldRanks := ranks
		switch ev.Kind {
		case cluster.RankFail:
			f := ev.Iter
			// Newest durable checkpoint at or before the failure. A
			// boundary b is durable if its async drain finished before the
			// failure — conservatively, if (f−b) iterations of compute
			// covered the write — or if it predates this segment (the
			// survivors kept training while it drained) or was a graceful
			// rescale drain. b == f never qualifies: the rank died at that
			// boundary.
			c := 0
			if ec.CheckpointEvery > 0 {
				drainSec := maxShardCheckpointBytes(base.Cfg, oldRanks) / bw
				for b := (f - 1) / ec.CheckpointEvery * ec.CheckpointEvery; b > 0; b -= ec.CheckpointEvery {
					if b <= start || drainSec <= float64(f-b)*segRes.IterSeconds {
						c = b
						break
					}
				}
			}
			for _, d := range drains {
				if d <= f-1 && d > c {
					c = d
				}
			}
			ranks--
			rec := Recovery{
				Kind: ev.Kind, Iter: f, FailedRank: ev.Rank,
				OldRanks: oldRanks, NewRanks: ranks,
				CkptIter: c, ReplayIters: f - c,
				DetectSeconds: detect,
			}
			if c > 0 {
				rec.RestoreSeconds = maxShardCheckpointBytes(base.Cfg, ranks) / bw
			}
			res.TotalSeconds += rec.DetectSeconds + rec.RestoreSeconds
			res.OverheadSeconds += rec.DetectSeconds + rec.RestoreSeconds
			res.Recoveries = append(res.Recoveries, rec)
			pendingIdx = len(res.Recoveries) - 1
			start = c
			if functional {
				if c > 0 {
					durable = store.at(c)
					if durable == nil {
						panic(fmt.Sprintf("core: elastic: no stored checkpoint at durable boundary %d", c))
					}
				} else {
					// Fresh re-init from the seed: the rank-count-independent
					// table seeding makes the restart bit-identical to an
					// uninterrupted run at the surviving shape.
					durable = nil
				}
			}
		case cluster.Rescale:
			f := ev.Iter
			rec := Recovery{
				Kind: ev.Kind, Iter: f, FailedRank: -1,
				OldRanks: oldRanks, NewRanks: ev.NewRanks,
				CkptIter:     f,
				DrainSeconds: maxShardCheckpointBytes(base.Cfg, oldRanks) / bw,
			}
			rec.RestoreSeconds = maxShardCheckpointBytes(base.Cfg, ev.NewRanks) / bw
			res.TotalSeconds += rec.DrainSeconds + rec.RestoreSeconds
			res.OverheadSeconds += rec.DrainSeconds + rec.RestoreSeconds
			res.Recoveries = append(res.Recoveries, rec)
			if functional {
				// Graceful drain: snapshot the just-finished segment's
				// models at the boundary.
				blobs := make([][]byte, oldRanks)
				for rk, m := range segRes.Models {
					var buf bytes.Buffer
					if err := m.SaveWithState(&buf, TrainerState{Iter: int64(f), Seed: base.Seed, LR: base.LR}); err != nil {
						return nil, fmt.Errorf("core: elastic rescale drain: %w", err)
					}
					blobs[rk] = buf.Bytes()
				}
				store.set(f, blobs)
				durable = blobs
			}
			drains = append(drains, f)
			ranks = ev.NewRanks
			start = f
		}
	}
	res.FinalRanks = ranks
	return res, nil
}

package core

import (
	"math"
	"repro/internal/cluster"
	"testing"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/optim"
	"repro/internal/par"
	"repro/internal/trace"
)

// tinyConfig is a laptop-sized DLRM for functional tests.
func tinyConfig() Config {
	return Config{
		Name:      "Tiny",
		MB:        64,
		GlobalMB:  128,
		LocalMB:   32,
		Lookups:   3,
		Tables:    4,
		EmbDim:    16,
		Rows:      []int{200, 300, 100, 250},
		DenseIn:   8,
		BotHidden: []int{32},
		TopHidden: []int{64, 32},
	}
}

func tinyDataset(cfg Config) *data.ClickLog {
	return data.NewClickLog(42, cfg.DenseIn, cfg.Rows, cfg.Lookups)
}

func TestConfigsValid(t *testing.T) {
	for _, c := range Configs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if err := tinyConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableIValues(t *testing.T) {
	// Spot-check Table I constants.
	if Small.Tables != 8 || Small.EmbDim != 64 || Small.Lookups != 50 {
		t.Fatal("Small config wrong")
	}
	if len(Small.BotSizes()) != 3 || len(Small.TopSizes()) != 5 {
		t.Fatalf("Small MLP depths wrong: bot=%v top=%v", Small.BotSizes(), Small.TopSizes())
	}
	if Large.Tables != 64 || Large.EmbDim != 256 || Large.Lookups != 100 {
		t.Fatal("Large config wrong")
	}
	if len(Large.BotSizes())-1 != 8 || len(Large.TopSizes())-1 != 16 {
		t.Fatalf("Large MLP layer counts wrong: %d bot, %d top",
			len(Large.BotSizes())-1, len(Large.TopSizes())-1)
	}
	if MLPerf.Tables != 26 || MLPerf.EmbDim != 128 || MLPerf.DenseIn != 13 || MLPerf.Lookups != 1 {
		t.Fatal("MLPerf config wrong")
	}
	wantBot := []int{13, 512, 256, 128}
	for i, v := range MLPerf.BotSizes() {
		if v != wantBot[i] {
			t.Fatalf("MLPerf bottom %v want %v", MLPerf.BotSizes(), wantBot)
		}
	}
}

func TestTableIICharacteristics(t *testing.T) {
	// Memory capacity for all tables (Table II row 1).
	if gb := Small.TableBytes() / 1e9; math.Abs(gb-2.048) > 0.01 {
		t.Errorf("Small table capacity %.2f GB want ≈2", gb)
	}
	if gb := Large.TableBytes() / 1e9; math.Abs(gb-393.2) > 1 {
		t.Errorf("Large table capacity %.1f GB want ≈393 (paper: 384)", gb)
	}
	if gb := MLPerf.TableBytes() / 1e9; gb < 90 || gb > 105 {
		t.Errorf("MLPerf table capacity %.1f GB want ≈98", gb)
	}
	// Minimum sockets at 192 GB/socket (Table II row 2; Large needs 4... with
	// 96GB usable the paper says 4 sockets ⇒ they budget ~128 GB/socket).
	if Large.MinSockets(128e9) != 4 {
		t.Errorf("Large min sockets %d want 4", Large.MinSockets(128e9))
	}
	if Small.MinSockets(128e9) != 1 {
		t.Error("Small must fit one socket")
	}
	// Max ranks = table count (Table II row 3).
	if Small.MaxRanks() != 8 || Large.MaxRanks() != 64 || MLPerf.MaxRanks() != 26 {
		t.Error("max ranks wrong")
	}
	// Allreduce sizes (Table II row 4: 9.5 MB, 1047 MB, 9.0 MB).
	if mb := Small.AllreduceBytes() / 1e6; mb < 8 || mb > 12 {
		t.Errorf("Small allreduce %.1f MB want ≈9.5", mb)
	}
	if mb := Large.AllreduceBytes() / 1e6; mb < 900 || mb > 1200 {
		t.Errorf("Large allreduce %.0f MB want ≈1047", mb)
	}
	if mb := MLPerf.AllreduceBytes() / 1e6; mb < 2 || mb > 12 {
		t.Errorf("MLPerf allreduce %.1f MB want single-digit", mb)
	}
	// Alltoall volumes (Table II row 5: 15.8, 1024, 208 MB) in MiB.
	if mib := Small.AlltoallBytes(8192) / (1 << 20); math.Abs(mib-16) > 0.5 {
		t.Errorf("Small alltoall %.1f MiB want 16", mib)
	}
	if mib := Large.AlltoallBytes(16384) / (1 << 20); math.Abs(mib-1024) > 1 {
		t.Errorf("Large alltoall %.0f MiB want 1024", mib)
	}
	if mib := MLPerf.AlltoallBytes(16384) / (1 << 20); math.Abs(mib-208) > 1 {
		t.Errorf("MLPerf alltoall %.0f MiB want 208", mib)
	}
}

func TestScaledConfig(t *testing.T) {
	s := MLPerf.Scaled(1e-4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows[0] != int(float64(data.CriteoTBRows[0])*1e-4) {
		t.Fatal("scaling wrong")
	}
	if s.Rows[5] != 1 {
		t.Fatal("tiny tables must keep at least one row")
	}
}

func TestTrainingReducesLossAndLearns(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	tr := NewTrainer(m, par.NewPool(4), embedding.RaceFree, 1.0, FP32)
	ds := tinyDataset(cfg)

	eval := ds.Batch(1000, 2048)
	aucBefore := tr.EvalAUC(eval)

	const iters = 300
	var head, tail float64
	for i := 0; i < iters; i++ {
		l := tr.Step(ds.Batch(i, cfg.MB))
		if i < 50 {
			head += l
		}
		if i >= iters-50 {
			tail += l
		}
	}
	if !(tail < head) {
		t.Fatalf("avg loss did not decrease: %g -> %g", head/50, tail/50)
	}
	aucAfter := tr.EvalAUC(eval)
	if aucAfter < aucBefore+0.05 || aucAfter < 0.6 {
		t.Fatalf("AUC did not improve enough: %.4f -> %.4f", aucBefore, aucAfter)
	}
}

func TestAllStrategiesTrainEquivalently(t *testing.T) {
	// After a few iterations, every update strategy must land on (nearly)
	// the same model: they compute the same math.
	cfg := tinyConfig()
	ds := tinyDataset(cfg)
	var ref *Model
	for _, strat := range []embedding.Strategy{embedding.RaceFree, embedding.AtomicXchg, embedding.RTMStyle} {
		m := NewModel(cfg, 16, 7)
		tr := NewTrainer(m, par.NewPool(4), strat, 0.05, FP32)
		for i := 0; i < 5; i++ {
			tr.Step(ds.Batch(i, cfg.MB))
		}
		if ref == nil {
			ref = m
			continue
		}
		for ti := range m.Tables {
			for i := range m.Tables[ti].W {
				d := math.Abs(float64(m.Tables[ti].W[i] - ref.Tables[ti].W[i]))
				if d > 1e-3 {
					t.Fatalf("strategy %v table %d diverged by %g", strat, ti, d)
				}
			}
		}
	}
}

func TestFusedEmbeddingMatchesTwoStep(t *testing.T) {
	cfg := tinyConfig()
	ds := tinyDataset(cfg)
	a := NewModel(cfg, 16, 3)
	b := NewModel(cfg, 16, 3)
	trA := NewTrainer(a, par.NewPool(4), embedding.RaceFree, 0.05, FP32)
	trB := NewTrainer(b, par.NewPool(4), embedding.RaceFree, 0.05, FP32)
	trB.FusedEmbedding = true
	for i := 0; i < 5; i++ {
		trA.Step(ds.Batch(i, cfg.MB))
		trB.Step(ds.Batch(i, cfg.MB))
	}
	for ti := range a.Tables {
		for i := range a.Tables[ti].W {
			if d := math.Abs(float64(a.Tables[ti].W[i] - b.Tables[ti].W[i])); d > 1e-4 {
				t.Fatalf("fused diverged at table %d by %g", ti, d)
			}
		}
	}
}

func TestBF16SplitTrainsCloseToFP32(t *testing.T) {
	cfg := tinyConfig()
	ds := tinyDataset(cfg)
	eval := ds.Batch(999, 1024)

	train := func(prec Precision) float64 {
		m := NewModel(cfg, 16, 5)
		tr := NewTrainer(m, par.NewPool(4), embedding.RaceFree, 0.5, prec)
		for i := 0; i < 250; i++ {
			tr.Step(ds.Batch(i, cfg.MB))
		}
		return tr.EvalAUC(eval)
	}
	fp32 := train(FP32)
	bf16split := train(BF16Split)
	if fp32 < 0.6 {
		t.Fatalf("FP32 baseline too weak: AUC %.4f", fp32)
	}
	if math.Abs(fp32-bf16split) > 0.03 {
		t.Fatalf("BF16 SplitSGD AUC %.4f deviates from FP32 %.4f", bf16split, fp32)
	}
}

func TestProfilerBreakdownCoversPhases(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	tr := NewTrainer(m, par.NewPool(2), embedding.RaceFree, 0.05, FP32)
	tr.Prof = trace.NewProfile()
	tr.Step(tinyDataset(cfg).Batch(0, cfg.MB))
	for _, key := range []string{"embeddings", "mlp", "rest"} {
		if tr.Prof.Total(key) == 0 {
			t.Errorf("phase %q not profiled", key)
		}
	}
}

func TestModelShardOwnership(t *testing.T) {
	cfg := tinyConfig()
	const ranks = 3
	owned := map[int]int{}
	for r := 0; r < ranks; r++ {
		sh := NewModelShard(cfg, 16, 1, r, ranks)
		for t_, tab := range sh.Tables {
			if tab != nil {
				owned[t_]++
				if TableOwner(t_, ranks) != r {
					t.Fatalf("rank %d holds table %d owned by %d", r, t_, TableOwner(t_, ranks))
				}
			}
		}
	}
	for t_ := 0; t_ < cfg.Tables; t_++ {
		if owned[t_] != 1 {
			t.Fatalf("table %d owned by %d ranks", t_, owned[t_])
		}
	}
	if MaxLocalTables(cfg, ranks) != 2 {
		t.Fatal("MaxLocalTables wrong")
	}
}

func TestShardTablesMatchFullModel(t *testing.T) {
	// Seeded per-table init must make shard tables bit-identical to the full
	// model's tables.
	cfg := tinyConfig()
	full := NewModel(cfg, 16, 9)
	sh := NewModelShard(cfg, 16, 9, 1, 2)
	for ti, tab := range sh.Tables {
		if tab == nil {
			continue
		}
		for i := range tab.W {
			if tab.W[i] != full.Tables[ti].W[i] {
				t.Fatalf("table %d differs between shard and full model", ti)
			}
		}
	}
}

func TestConcatInteractionTrains(t *testing.T) {
	cfg := tinyConfig()
	cfg.ConcatInteraction = true
	if cfg.InterDim() != (cfg.Tables+1)*cfg.EmbDim {
		t.Fatalf("concat InterDim=%d", cfg.InterDim())
	}
	m := NewModel(cfg, 16, 1)
	tr := NewTrainer(m, par.NewPool(2), embedding.RaceFree, 1.0, FP32)
	ds := tinyDataset(cfg)
	eval := ds.Batch(999, 2048)
	before := tr.EvalAUC(eval)
	var head, tail float64
	for i := 0; i < 200; i++ {
		l := tr.Step(ds.Batch(i, cfg.MB))
		if i < 30 {
			head += l
		}
		if i >= 170 {
			tail += l
		}
	}
	if tail >= head {
		t.Fatalf("concat model loss did not decrease: %g -> %g", head/30, tail/30)
	}
	if after := tr.EvalAUC(eval); after < before+0.03 {
		t.Fatalf("concat model AUC did not improve: %.4f -> %.4f", before, after)
	}
}

func TestConcatDistributedMatchesSingle(t *testing.T) {
	cfg := tinyConfig()
	cfg.ConcatInteraction = true
	ref, _ := trainSingle(cfg, 64, 2, 17, 0.5)
	dc := distTestConfig(cfg, 2, 64, 2, Variant{Alltoall, cluster.CCLBackend}, true)
	res := RunDistributed(dc)
	checkMLPClose(t, "concat dist", res.Models[0], ref, 2e-3)
}

func TestTrainerLRSchedule(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 16, 1)
	tr := NewTrainer(m, par.NewPool(2), embedding.RaceFree, 0, FP32)
	tr.Schedule = optim.LRSchedule{Base: 1, WarmupSteps: 2, DecayStart: 4, DecaySteps: 2, EndLR: 0.1}
	ds := tinyDataset(cfg)
	wantLRs := []float32{0.5, 1, 1, 1, 1, 0.325}
	for i, want := range wantLRs {
		tr.Step(ds.Batch(i, cfg.MB))
		if tr.LR != want {
			t.Fatalf("step %d: LR=%g want %g", i, tr.LR, want)
		}
	}
}

package autotune

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// TestSearchFindsMinimum: with a full pool and an objective independent of
// the probe budget, the search must return the global minimum.
func TestSearchFindsMinimum(t *testing.T) {
	obj := func(c, _ int) float64 { return math.Abs(float64(c) - 37) }
	res := Search(100, obj, Options{})
	if res.Best != 37 {
		t.Errorf("Best = %d, want 37", res.Best)
	}
	if res.BestCost != 0 {
		t.Errorf("BestCost = %g, want 0", res.BestCost)
	}
	if res.Pool != 100 {
		t.Errorf("Pool = %d, want 100 (no cap)", res.Pool)
	}
}

// TestSearchHalvingBudget pins the round structure: with 8 candidates,
// ProbeIters 1 and FinalIters 4, the rounds probe 8@1, 4@2, 2@4 — cheap
// probes on everyone, the full budget only on the two contenders.
func TestSearchHalvingBudget(t *testing.T) {
	var evals []string
	obj := func(c, iters int) float64 {
		evals = append(evals, fmt.Sprintf("%d@%d", c, iters))
		return float64(c)
	}
	res := Search(8, obj, Options{ProbeIters: 1, FinalIters: 4})
	if res.Best != 0 || res.Probes != 14 {
		t.Errorf("Best=%d Probes=%d, want 0 and 14 (8+4+2)", res.Best, res.Probes)
	}
	want := []string{
		"0@1", "1@1", "2@1", "3@1", "4@1", "5@1", "6@1", "7@1",
		"0@2", "1@2", "2@2", "3@2",
		"0@4", "1@4",
	}
	if !reflect.DeepEqual(evals, want) {
		t.Errorf("evaluation sequence %v, want %v", evals, want)
	}
}

// TestSearchBudgetSensitiveObjective: a candidate that looks good on short
// probes but bad at the full budget must lose to one that holds up —
// the deciding round runs at FinalIters.
func TestSearchBudgetSensitiveObjective(t *testing.T) {
	// Candidates 0/2/3: cost 1 at any budget. Candidate 1: looks like 0.5
	// on 1-iter probes, degrades linearly with the budget.
	obj := func(c, iters int) float64 {
		if c == 1 {
			return 0.5 * float64(iters)
		}
		return 1
	}
	res := Search(4, obj, Options{ProbeIters: 1, FinalIters: 4})
	if res.Best != 0 {
		t.Errorf("Best = %d, want 0 (candidate 1 only wins on short probes)", res.Best)
	}
}

// TestSearchSampledPoolDeterminism: with a cap, the sampled pool — and the
// whole evaluation sequence — is a pure function of the seed.
func TestSearchSampledPoolDeterminism(t *testing.T) {
	run := func(seed uint64) (Result, []string) {
		var evals []string
		obj := func(c, iters int) float64 {
			evals = append(evals, fmt.Sprintf("%d@%d", c, iters))
			return float64((c*2654435761 + 12345) % 1000)
		}
		res := Search(1000, obj, Options{MaxCandidates: 16, Seed: seed})
		return res, evals
	}
	r1, e1 := run(7)
	r2, e2 := run(7)
	if r1 != r2 || !reflect.DeepEqual(e1, e2) {
		t.Errorf("same seed diverged: %+v vs %+v", r1, r2)
	}
	r3, e3 := run(8)
	if reflect.DeepEqual(e1, e3) {
		t.Errorf("seeds 7 and 8 sampled the identical pool: %+v vs %+v", r1, r3)
	}
	if r1.Pool != 16 || r3.Pool != 16 {
		t.Errorf("capped pools sized %d/%d, want 16", r1.Pool, r3.Pool)
	}
}

// TestSearchIncludeBypassesCap: a forced include enters the pool even when
// sampling would have missed it, and wins if it is the best candidate.
func TestSearchIncludeBypassesCap(t *testing.T) {
	obj := func(c, _ int) float64 { return float64(1000 - c) }
	res := Search(1000, obj, Options{MaxCandidates: 8, Include: []int{999}, Seed: 3})
	if res.Best != 999 {
		t.Errorf("Best = %d, want the forced include 999", res.Best)
	}
	// An include already sampled must not be double-counted.
	full := Search(4, obj, Options{MaxCandidates: 8, Include: []int{2}})
	if full.Pool != 4 {
		t.Errorf("Pool = %d, want 4 (include already present)", full.Pool)
	}
}

// TestSearchEmptySpace: n = 0 returns Best = -1 without probing.
func TestSearchEmptySpace(t *testing.T) {
	res := Search(0, func(int, int) float64 { panic("no candidates to probe") }, Options{})
	if res.Best != -1 || res.Probes != 0 {
		t.Errorf("empty space: %+v", res)
	}
}

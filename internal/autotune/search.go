package autotune

import "sort"

// Objective evaluates candidate i at the given probe budget (iterations)
// and returns its cost; lower is better. It must be deterministic in
// (candidate, iters): Search relies on identical answers if it asks again,
// so memoize inside the Objective when evaluation is expensive.
type Objective func(candidate, iters int) float64

// Options bounds the search.
type Options struct {
	// ProbeIters is the probe budget of the first, cheapest round
	// (default 1).
	ProbeIters int
	// FinalIters is the probe budget of the deciding round (default
	// 4×ProbeIters). The budget doubles each round until it reaches this.
	FinalIters int
	// MaxCandidates caps how many candidates enter the first round; when
	// the space is larger, a uniform sample is drawn from the counter-based
	// stream seeded by Seed. Zero probes the full space.
	MaxCandidates int
	// Include lists candidate indices that bypass the sampling cap — e.g.
	// an incumbent configuration the caller wants a head-to-head against.
	Include []int
	// Seed seeds the sampling stream. Searches with equal (n, Options) are
	// bit-identical.
	Seed uint64
}

// Result reports the winning candidate.
type Result struct {
	Best     int     // winning candidate index (-1 when n == 0)
	BestCost float64 // its cost at the deciding round's budget
	Probes   int     // objective evaluations performed
	Pool     int     // candidates that entered the first round
}

// Search runs successive halving over candidates 0..n-1: every surviving
// candidate is probed at the current budget, the better half advances, and
// the budget doubles until it reaches FinalIters, where the minimum over
// the survivors wins (ties break toward the lower index). Cheap first-round
// probes pay for broad coverage; the full budget is spent only on the
// contenders.
func Search(n int, obj Objective, opt Options) Result {
	res := Result{Best: -1}
	if n <= 0 {
		return res
	}
	probe := opt.ProbeIters
	if probe <= 0 {
		probe = 1
	}
	final := opt.FinalIters
	if final <= 0 {
		final = 4 * probe
	}
	if final < probe {
		final = probe
	}
	pool := pickPool(n, opt)
	res.Pool = len(pool)
	costs := make([]float64, len(pool))
	iters := probe
	for {
		for i, c := range pool {
			costs[i] = obj(c, iters)
			res.Probes++
		}
		sort.Sort(byCost{pool, costs})
		if iters >= final {
			res.Best, res.BestCost = pool[0], costs[0]
			return res
		}
		if len(pool) > 1 {
			keep := (len(pool) + 1) / 2
			pool, costs = pool[:keep], costs[:keep]
		}
		iters *= 2
		if iters > final {
			iters = final
		}
	}
}

// byCost sorts the candidate pool and its parallel cost slice by ascending
// cost, ties toward the lower candidate index, so the ranking (and with it
// the whole search) is deterministic.
type byCost struct {
	pool  []int
	costs []float64
}

func (b byCost) Len() int { return len(b.pool) }
func (b byCost) Less(i, j int) bool {
	if b.costs[i] != b.costs[j] {
		return b.costs[i] < b.costs[j]
	}
	return b.pool[i] < b.pool[j]
}
func (b byCost) Swap(i, j int) {
	b.pool[i], b.pool[j] = b.pool[j], b.pool[i]
	b.costs[i], b.costs[j] = b.costs[j], b.costs[i]
}

// pickPool selects the first-round candidate set: all of 0..n-1 when the
// space fits the cap, otherwise a MaxCandidates-sized uniform sample
// (partial Fisher-Yates over the counter-based stream) with the forced
// includes appended. The pool is returned in ascending index order so the
// evaluation sequence is deterministic.
func pickPool(n int, opt Options) []int {
	if opt.MaxCandidates <= 0 || n <= opt.MaxCandidates {
		pool := make([]int, n)
		for i := range pool {
			pool[i] = i
		}
		return pool
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	k := opt.MaxCandidates
	for i := 0; i < k; i++ {
		j := i + int(sampleDraw(opt.Seed, i)%uint64(n-i))
		idx[i], idx[j] = idx[j], idx[i]
	}
	pool := idx[:k]
	for _, inc := range opt.Include {
		if inc < 0 || inc >= n || contains(pool, inc) {
			continue
		}
		pool = append(pool, inc)
	}
	sort.Ints(pool)
	return pool
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

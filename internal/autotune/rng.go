// Package autotune provides a small deterministic configuration searcher:
// successive halving over an enumerated candidate space, with cheap probes
// weeding out bad candidates before the full probe budget is spent on the
// contenders. It knows nothing about what a candidate is — callers supply
// an Objective mapping (candidate index, probe budget) to a cost.
package autotune

// Candidate sampling draws from a counter-based splitmix64 stream, the same
// idiom as the data loaders' per-sample streams (internal/data/rng.go):
// draw i is derived purely from (seed, i), so the sampled pool is a pure
// function of Options.Seed and re-running a search replays it exactly — no
// sequential generator state threads through the searcher.

// splitmix64 is the stream generator: tiny state, cheap seeding, passes
// BigCrush.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// sampleTag keeps the searcher's draws disjoint from other stream families
// derived from the same seed.
const sampleTag = 0x53414D50 // "SAMP"

// sampleDraw returns draw i of the candidate-sampling stream for seed. Each
// coordinate passes through one splitmix round before mixing so adjacent
// draws land in unrelated states.
func sampleDraw(seed uint64, draw int) uint64 {
	s := seed ^ sampleTag
	splitmix64(&s)
	s ^= uint64(draw) * 0x5851F42D4C957F2D
	splitmix64(&s)
	return splitmix64(&s)
}

// Package loss provides the binary cross-entropy training loss (fused with
// the sigmoid for numerical stability, the way DLRM's final layer is
// evaluated) and the ROC AUC metric the paper's Fig. 16 convergence plot
// reports.
package loss

import (
	"math"
	"sort"
)

// BCEWithLogits returns the mean binary cross-entropy of logits z against
// labels y ∈ {0,1}, and writes dL/dz = (σ(z) − y)/N into dz if dz is
// non-nil. The log1p formulation avoids overflow for large |z|.
func BCEWithLogits(z, y, dz []float32) float64 {
	if len(z) != len(y) || (dz != nil && len(dz) != len(z)) {
		panic("loss: length mismatch")
	}
	n := float64(len(z))
	var total float64
	for i := range z {
		zi := float64(z[i])
		yi := float64(y[i])
		// loss = max(z,0) - z*y + log(1+exp(-|z|))
		l := math.Max(zi, 0) - zi*yi + math.Log1p(math.Exp(-math.Abs(zi)))
		total += l
		if dz != nil {
			s := 1 / (1 + math.Exp(-zi))
			dz[i] = float32((s - yi) / n)
		}
	}
	return total / n
}

// Sigmoid applies the logistic function elementwise into out.
func Sigmoid(z, out []float32) {
	for i := range z {
		out[i] = float32(1 / (1 + math.Exp(-float64(z[i]))))
	}
}

// AUC computes the ROC area under curve of scores against binary labels
// using the rank statistic (equivalent to the Mann-Whitney U), with average
// ranks for ties. Returns 0.5 when one class is absent.
func AUC(scores, labels []float32) float64 {
	if len(scores) != len(labels) {
		panic("loss: AUC length mismatch")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	var nPos, nNeg float64
	for _, l := range labels {
		if l > 0.5 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}

	var rankSumPos float64
	i := 0
	for i < n {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j), 1-based ranks
		avgRank := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if labels[idx[k]] > 0.5 {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}

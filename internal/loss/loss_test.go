package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBCEKnownValues(t *testing.T) {
	// z=0 ⇒ σ=0.5 ⇒ loss = ln2 regardless of label.
	l := BCEWithLogits([]float32{0, 0}, []float32{0, 1}, nil)
	if math.Abs(l-math.Ln2) > 1e-6 {
		t.Fatalf("loss=%g want ln2", l)
	}
	// Strong correct logit ⇒ near-zero loss; strong wrong ⇒ large.
	if l := BCEWithLogits([]float32{20}, []float32{1}, nil); l > 1e-6 {
		t.Fatalf("confident correct should be ~0, got %g", l)
	}
	if l := BCEWithLogits([]float32{20}, []float32{0}, nil); l < 19 {
		t.Fatalf("confident wrong should be ~20, got %g", l)
	}
}

func TestBCEGradNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 16
	z := make([]float32, n)
	y := make([]float32, n)
	for i := range z {
		z[i] = rng.Float32()*4 - 2
		if rng.Float32() > 0.5 {
			y[i] = 1
		}
	}
	dz := make([]float32, n)
	BCEWithLogits(z, y, dz)
	const eps = 1e-3
	for trial := 0; trial < 8; trial++ {
		i := rng.Intn(n)
		orig := z[i]
		z[i] = orig + eps
		lp := BCEWithLogits(z, y, nil)
		z[i] = orig - eps
		lm := BCEWithLogits(z, y, nil)
		z[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dz[i])) > 1e-4 {
			t.Errorf("dz[%d]: numeric %g analytic %g", i, num, dz[i])
		}
	}
}

func TestBCEOverflowSafe(t *testing.T) {
	l := BCEWithLogits([]float32{1000, -1000}, []float32{1, 0}, nil)
	if math.IsNaN(l) || math.IsInf(l, 0) || l > 1e-6 {
		t.Fatalf("extreme logits must be stable and ~0 loss, got %g", l)
	}
}

func TestAUCPerfectAndWorst(t *testing.T) {
	scores := []float32{0.9, 0.8, 0.2, 0.1}
	labels := []float32{1, 1, 0, 0}
	if a := AUC(scores, labels); a != 1 {
		t.Fatalf("perfect ranking AUC=%g want 1", a)
	}
	labels = []float32{0, 0, 1, 1}
	if a := AUC(scores, labels); a != 0 {
		t.Fatalf("inverted ranking AUC=%g want 0", a)
	}
}

func TestAUCTiesAndDegenerate(t *testing.T) {
	// All scores equal ⇒ AUC 0.5 by average-rank convention.
	if a := AUC([]float32{1, 1, 1, 1}, []float32{1, 0, 1, 0}); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("tied scores AUC=%g want 0.5", a)
	}
	// Single class ⇒ 0.5 sentinel.
	if a := AUC([]float32{0.1, 0.9}, []float32{1, 1}); a != 0.5 {
		t.Fatalf("single class AUC=%g want 0.5", a)
	}
}

func TestAUCRandomNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 20000
	scores := make([]float32, n)
	labels := make([]float32, n)
	for i := range scores {
		scores[i] = rng.Float32()
		if rng.Float32() > 0.5 {
			labels[i] = 1
		}
	}
	if a := AUC(scores, labels); math.Abs(a-0.5) > 0.02 {
		t.Fatalf("random scores AUC=%g want ≈0.5", a)
	}
}

func TestAUCInvariantToMonotoneTransform(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		scores := make([]float32, n)
		labels := make([]float32, n)
		scaled := make([]float32, n)
		for i := range scores {
			scores[i] = rng.Float32()*10 - 5
			scaled[i] = scores[i]*3 + 7 // strictly monotone transform
			if rng.Float32() > 0.6 {
				labels[i] = 1
			}
		}
		return math.Abs(AUC(scores, labels)-AUC(scaled, labels)) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	out := make([]float32, 3)
	Sigmoid([]float32{0, 100, -100}, out)
	if out[0] != 0.5 || out[1] < 0.999 || out[2] > 0.001 {
		t.Fatalf("sigmoid values wrong: %v", out)
	}
}

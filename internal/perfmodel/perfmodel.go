// Package perfmodel holds calibrated descriptions of the paper's two
// hardware platforms (§V) and roofline-style cost estimators for the DLRM
// operator mix. The multi-socket experiments in this repository execute
// their collectives and numerics for real but charge *time* from this model,
// which is what lets 64-socket scaling curves regenerate on a laptop. All
// absolute constants below are taken from §V of the paper.
package perfmodel

// Socket describes one CPU socket.
type Socket struct {
	Name      string
	Cores     int
	PeakFlops float64 // FP32 FLOP/s (AVX512 base clock × cores × 64 flop/cycle)
	MemBW     float64 // bytes/s STREAM-class bandwidth

	// Efficiency factors relating achievable to peak, calibrated from the
	// paper's single-socket measurements (Fig. 5 reports ~72% of peak for
	// the blocked GEMMs; embedding kernels run near STREAM bandwidth).
	GemmEff  float64
	EmbedEff float64
}

// SKX8180 is the Intel Xeon Platinum 8180 socket of the 8-socket Inspur
// TS860M5 node: 28 cores, 4.1 TFLOPS FP32 peak, 12×DDR4-2400 ⇒ 100 GB/s.
var SKX8180 = Socket{
	Name:      "Xeon Platinum 8180 (SKX)",
	Cores:     28,
	PeakFlops: 4.1e12,
	MemBW:     100e9,
	GemmEff:   0.72,
	EmbedEff:  0.80,
}

// CLX8280 is the Intel Xeon Platinum 8280 socket of the 64-socket OPA
// cluster: 28 cores, 4.3 TFLOPS FP32 peak, 6×DDR4-2666 ⇒ 105 GB/s.
var CLX8280 = Socket{
	Name:      "Xeon Platinum 8280 (CLX)",
	Cores:     28,
	PeakFlops: 4.3e12,
	MemBW:     105e9,
	GemmEff:   0.72,
	EmbedEff:  0.80,
}

// GemmTime estimates the wall time of a GEMM of the given FLOP count on
// coresUsed of the socket's cores, including a bandwidth term for tensors
// that do not fit in cache (bytes moved). The max of the compute and memory
// roofs is charged.
func (s Socket) GemmTime(flops, bytes float64, coresUsed int) float64 {
	if coresUsed <= 0 || coresUsed > s.Cores {
		coresUsed = s.Cores
	}
	frac := float64(coresUsed) / float64(s.Cores)
	tc := flops / (s.PeakFlops * s.GemmEff * frac)
	tm := bytes / (s.MemBW * 0.9)
	if tm > tc {
		return tm
	}
	return tc
}

// GemmTimeN is GemmTime with a minibatch-dependent efficiency roll-off:
// small per-rank minibatches cannot amortize packing and thread startup, so
// achievable efficiency scales roughly as n/(n+1024). The paper's Fig. 6
// measurements (264 MFLOP backward GEMMs at N=126 per rank taking ≈1.08 ms
// on a CLX socket, ≈6% of peak) calibrate the constant.
func (s Socket) GemmTimeN(flops, bytes float64, coresUsed, n int) float64 {
	if coresUsed <= 0 || coresUsed > s.Cores {
		coresUsed = s.Cores
	}
	frac := float64(coresUsed) / float64(s.Cores)
	eff := s.GemmEff * float64(n) / (float64(n) + 1024)
	tc := flops / (s.PeakFlops * eff * frac)
	tm := bytes / (s.MemBW * 0.9)
	if tm > tc {
		return tm
	}
	return tc
}

// StreamTime estimates the wall time of a bandwidth-bound sweep over the
// given byte count (embedding lookups and updates, SGD sweeps).
func (s Socket) StreamTime(bytes float64, coresUsed int) float64 {
	bw := s.MemBW * s.EmbedEff
	if coresUsed > 0 && coresUsed < s.Cores {
		// Bandwidth saturates at about half the cores; below that it scales.
		sat := float64(s.Cores) / 2
		if f := float64(coresUsed) / sat; f < 1 {
			bw *= f
		}
	}
	return bytes / bw
}

// MLPPassFlops returns the FLOPs of one forward pass over an MLP described
// by its layer sizes for a minibatch of n. Backward-by-data and
// backward-by-weights each cost the same again.
func MLPPassFlops(sizes []int, n int) float64 {
	var f float64
	for i := 0; i+1 < len(sizes); i++ {
		f += 2 * float64(sizes[i]) * float64(sizes[i+1])
	}
	return f * float64(n)
}

// MLPPassBytes approximates the bytes touched by one MLP pass (weights once,
// activations in and out) for a minibatch of n.
func MLPPassBytes(sizes []int, n int) float64 {
	var w, a float64
	for i := 0; i+1 < len(sizes); i++ {
		w += float64(sizes[i]) * float64(sizes[i+1])
		a += float64(n) * float64(sizes[i]+sizes[i+1])
	}
	return 4 * (w + a)
}

// EmbeddingFwdBytes returns the bytes read+written by an EmbeddingBag
// forward over nTables tables with n bags of p lookups of dimension e:
// p rows read and one row written per bag.
func EmbeddingFwdBytes(nTables, n, p, e int) float64 {
	return 4 * float64(nTables) * float64(n) * float64(e) * float64(p+1)
}

// EmbeddingUpdBytes returns the bytes of the backward+update sweep
// (gradient rows written, table rows read-modify-written).
func EmbeddingUpdBytes(nTables, n, p, e int) float64 {
	return 4 * float64(nTables) * float64(n) * float64(p) * float64(e) * 3
}

package perfmodel

import (
	"math"
	"testing"
)

func TestSocketSpecsMatchPaper(t *testing.T) {
	// §V-A/B: 8180 = 4.1 TFLOPS / 100 GB/s; 8280 = 4.3 TFLOPS / 105 GB/s;
	// both 28 cores.
	if SKX8180.Cores != 28 || CLX8280.Cores != 28 {
		t.Fatal("core counts wrong")
	}
	if SKX8180.PeakFlops != 4.1e12 || CLX8280.PeakFlops != 4.3e12 {
		t.Fatal("peak FLOPS wrong")
	}
	if SKX8180.MemBW != 100e9 || CLX8280.MemBW != 105e9 {
		t.Fatal("memory bandwidth wrong")
	}
}

func TestGemmTimeRoofline(t *testing.T) {
	s := CLX8280
	// Compute-bound: big flops, negligible bytes.
	tc := s.GemmTime(3.1e12, 1e3, 28)
	want := 3.1e12 / (4.3e12 * 0.72)
	if math.Abs(tc-want)/want > 1e-9 {
		t.Fatalf("compute roof wrong: %g want %g", tc, want)
	}
	// Memory-bound: negligible flops, big bytes.
	tm := s.GemmTime(1, 94.5e9, 28)
	if math.Abs(tm-1)/1 > 1e-9 {
		t.Fatalf("memory roof wrong: %g", tm)
	}
	// Fewer cores → proportionally slower compute roof.
	half := s.GemmTime(3.1e12, 1e3, 14)
	if math.Abs(half-2*tc)/tc > 1e-9 {
		t.Fatalf("core scaling wrong: %g vs %g", half, 2*tc)
	}
	// Out-of-range core counts clamp to the socket.
	if s.GemmTime(1e12, 0, 0) != s.GemmTime(1e12, 0, 28) {
		t.Fatal("core clamp wrong")
	}
}

func TestGemmTimeNSmallBatchPenalty(t *testing.T) {
	s := CLX8280
	flops := 264e6 // one Fig. 6 backward GEMM: 2·126·1024·1024
	small := s.GemmTimeN(flops, 1e6, 24, 126)
	big := s.GemmTimeN(flops, 1e6, 24, 100000)
	if small < 3*big {
		t.Fatalf("small-N GEMM must be far less efficient: %g vs %g", small, big)
	}
	// Calibration: the paper measured ≈1.08 ms for this GEMM.
	if small < 0.5e-3 || small > 2e-3 {
		t.Fatalf("Fig. 6 GEMM calibration off: %g s, want ≈1.08e-3", small)
	}
}

func TestStreamTime(t *testing.T) {
	s := SKX8180
	full := s.StreamTime(80e9, 28)
	if math.Abs(full-1) > 1e-9 {
		t.Fatalf("stream roof wrong: %g", full)
	}
	// Few cores cannot saturate bandwidth.
	one := s.StreamTime(80e9, 1)
	if one < 10*full {
		t.Fatalf("single-core stream should be ≫ slower: %g vs %g", one, full)
	}
	// Half the cores saturate.
	if s.StreamTime(80e9, 14) != full {
		t.Fatal("half cores should already saturate bandwidth")
	}
}

func TestMLPPassCosts(t *testing.T) {
	sizes := []int{10, 20, 5}
	if MLPPassFlops(sizes, 3) != 3*2*(10*20+20*5) {
		t.Fatal("MLPPassFlops wrong")
	}
	wantBytes := 4.0 * ((10*20 + 20*5) + 3*(10+20+20+5))
	if MLPPassBytes(sizes, 3) != wantBytes {
		t.Fatalf("MLPPassBytes=%g want %g", MLPPassBytes(sizes, 3), wantBytes)
	}
}

func TestEmbeddingBytes(t *testing.T) {
	// 2 tables × 8 bags × 4 lookups of dim 16: fwd reads 4 rows + writes 1
	// per bag.
	if EmbeddingFwdBytes(2, 8, 4, 16) != 4*2*8*16*5 {
		t.Fatal("EmbeddingFwdBytes wrong")
	}
	if EmbeddingUpdBytes(2, 8, 4, 16) != 4*2*8*4*16*3 {
		t.Fatal("EmbeddingUpdBytes wrong")
	}
}

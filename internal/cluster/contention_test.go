package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fabric"
)

// TestChargeContendedProperties drives ChargeContended with random flow
// sets in causal (issue-order) start time order — the only order leader
// context ever produces — and checks the documented bounds for every
// operation:
//
//  1. dur ≥ iso: sharing never makes an operation faster than isolation;
//  2. dur ≤ iso + Σ iso of the flights in the epoch at its start: each
//     overlapping operation contributes at most its own isolated duration,
//     so concurrent collectives never finish later than serialized;
//  3. an operation that overlaps nothing is charged exactly iso.
func TestChargeContendedProperties(t *testing.T) {
	topo := fabric.NewPrunedFatTree(64, 12.5e9)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		e := &Engine{Cfg: testCfg(64, CCLBackend).WithDefaults()}
		var sc fabric.Scratch
		// Registered windows mirrored by the test for the overlap bound.
		type win struct{ start, finish, iso float64 }
		var wins []win
		start := 0.0
		for op := 0; op < 40; op++ {
			// Random flow set: a handful of flows between random sockets,
			// charged over a random phase multiplicity like real collectives.
			flows := make([]fabric.Flow, 1+rng.Intn(6))
			for i := range flows {
				a, b := rng.Intn(64), rng.Intn(64)
				if a == b {
					b = (b + 1) % 64
				}
				flows[i] = fabric.Flow{Src: a, Dst: b, Bytes: float64(1+rng.Intn(64)) * 1e6}
			}
			var loads fabric.LoadSet
			sc.Accumulate(&loads)
			iso := sc.PhaseTimeN(topo, flows, float64(1+rng.Intn(8)))
			sc.Accumulate(nil)

			dur := e.ChargeContended(topo, &loads, start, iso)
			if dur < iso-1e-12 {
				t.Fatalf("trial %d op %d: dur %g < iso %g", trial, op, dur, iso)
			}
			var bound float64
			overlapped := false
			for _, w := range wins {
				if w.finish > start {
					bound += w.iso
					overlapped = true
				}
			}
			if dur > iso+bound+1e-9 {
				t.Fatalf("trial %d op %d: dur %g exceeds serialized bound iso %g + %g",
					trial, op, dur, iso, bound)
			}
			if !overlapped && dur != iso {
				t.Fatalf("trial %d op %d: no overlap but dur %g != iso %g", trial, op, dur, iso)
			}
			wins = append(wins, win{start, start + dur, iso})
			// Starts advance non-decreasingly (issue order); sometimes jump
			// past everything to exercise epoch pruning.
			if rng.Intn(8) == 0 {
				start += dur * 3
			} else {
				start += dur * rng.Float64() * 0.5
			}
		}
	}
}

// TestChargeContendedSharesBottleneck pins the exact two-op case: two
// identical operations over the same bottleneck link, second issued at the
// first's start, must pay the first's full byte drain on top of its own
// isolated time (the fair-share 2x, minus the latency term which is not
// paid twice) — while a disjoint-link operation pays nothing.
func TestChargeContendedSharesBottleneck(t *testing.T) {
	topo := fabric.NewPrunedFatTree(64, 12.5e9)
	e := &Engine{Cfg: testCfg(64, CCLBackend).WithDefaults()}
	var sc fabric.Scratch
	charge := func(flows []fabric.Flow, start float64) float64 {
		var loads fabric.LoadSet
		sc.Accumulate(&loads)
		iso := sc.PhaseTime(topo, flows)
		sc.Accumulate(nil)
		return e.ChargeContended(topo, &loads, start, iso)
	}
	cross := []fabric.Flow{{Src: 0, Dst: 32, Bytes: 1e9}} // trunk crossing
	d1 := charge(cross, 0)
	d2 := charge(cross, 0)
	drain := 1e9 * topo.CopyOverhead() / topo.LinkBandwidth(0) // uplink is the bottleneck
	if math.Abs(d2-(d1+drain)) > 1e-9 {
		t.Fatalf("fully overlapped identical op must pay the first's drain: d1=%g d2=%g want %g", d1, d2, d1+drain)
	}
	// An op on disjoint links (intra-leaf, other leaf) is unaffected.
	other := []fabric.Flow{{Src: 40, Dst: 41, Bytes: 1e9}}
	iso := fabric.PhaseTime(topo, other)
	if d := charge(other, 0); d != iso {
		t.Fatalf("disjoint links must charge iso %g, got %g", iso, d)
	}
	// After both drain, a third op is back to isolated pricing.
	if d := charge(cross, d1+d2+1); d != d1 {
		t.Fatalf("post-drain op must charge iso %g, got %g", d1, d)
	}
}

// TestChargeContendedScaledTime checks commSlowdown consistency: the
// returned duration is in pre-slowdown units (the leader's contract) while
// the registered window lives in scaled time, so a second identical op
// still sees exactly one isolated duration of residual.
func TestChargeContendedScaledTime(t *testing.T) {
	topo := fabric.NewPrunedFatTree(64, 12.5e9)
	cfg := testCfg(64, CCLBackend)
	cfg.CommCores = 2 // commSlowdown = 2
	e := &Engine{Cfg: cfg.WithDefaults()}
	var sc fabric.Scratch
	cross := []fabric.Flow{{Src: 0, Dst: 32, Bytes: 1e9}}
	charge := func(start float64) float64 {
		var loads fabric.LoadSet
		sc.Accumulate(&loads)
		iso := sc.PhaseTime(topo, cross)
		sc.Accumulate(nil)
		return e.ChargeContended(topo, &loads, start, iso)
	}
	d1 := charge(0)
	d2 := charge(0)
	drain := 1e9 * topo.CopyOverhead() / topo.LinkBandwidth(0)
	if math.Abs(d2-(d1+drain)) > 1e-9 {
		t.Fatalf("slowdown must not distort sharing: d1=%g d2=%g want %g", d1, d2, d1+drain)
	}
}

// TestHandleChannelResolution pins the Handle.Channel contract: resolved
// CCL channel (hint mod CCLChannels), 0 under MPI's single channel, -1 for
// the Async background stream.
func TestHandleChannelResolution(t *testing.T) {
	cfg := testCfg(2, CCLBackend)
	cfg.CCLChannels = 4
	Run(cfg, func(r *Rank) {
		x := &sumXchg{dur: 0.01}
		if h := r.CollectiveOn("op", 2, x, x, sumLead); h.Channel != 2 {
			t.Errorf("pinned channel 2 resolved to %d", h.Channel)
		}
		y := &sumXchg{dur: 0.01}
		if h := r.CollectiveOn("op", 6, y, y, sumLead); h.Channel != 2 {
			t.Errorf("channel hint 6 mod 4 should resolve to 2, got %d", h.Channel)
		}
		z := &sumXchg{dur: 0.01}
		if h := r.Collective("op", z, z, sumLead); h.Channel < 0 || h.Channel >= 4 {
			t.Errorf("label-hash channel %d outside [0,4)", h.Channel)
		}
		if h := r.Async("bg", 0.01); h.Channel != -1 {
			t.Errorf("async channel %d, want -1", h.Channel)
		}
	})
	Run(testCfg(2, MPIBackend), func(r *Rank) {
		x := &sumXchg{dur: 0.01}
		if h := r.CollectiveOn("op", 3, x, x, sumLead); h.Channel != 0 {
			t.Errorf("MPI drops hints and has one channel; resolved to %d", h.Channel)
		}
	})
}

// TestContentionOffIdenticalPricing: with the knob off the engine never
// consults the epoch — a Run with Contention=false must produce exactly
// the same virtual times as one that never heard of the knob (the
// zero-value Config), for overlapped multi-channel traffic.
func TestContentionOffIdenticalPricing(t *testing.T) {
	run := func(cont bool) []Stats {
		cfg := testCfg(2, CCLBackend)
		cfg.CCLChannels = 4
		cfg.Contention = cont
		return Run(cfg, func(r *Rank) {
			x1 := &sumXchg{dur: 0.4}
			h1 := r.CollectiveOn("a", 0, x1, x1, sumLead)
			x2 := &sumXchg{dur: 0.3}
			h2 := r.CollectiveOn("b", 1, x2, x2, sumLead)
			r.Wait(h1)
			r.Wait(h2)
		})
	}
	off, on := run(false), run(true)
	for i := range off {
		// The raw sumLead collective registers no loads, so even with the
		// knob on nothing contends — but the point here is the off path.
		if off[i].TotalWait() != on[i].TotalWait() {
			t.Fatalf("rank %d: off %g vs on %g", i, off[i].TotalWait(), on[i].TotalWait())
		}
	}
}

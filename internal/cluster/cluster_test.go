package cluster

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/fabric"
	"repro/internal/par"
	"repro/internal/perfmodel"
)

func testCfg(ranks int, b Backend) Config {
	return Config{
		Ranks:        ranks,
		Topo:         fabric.NewPrunedFatTree(max(ranks, 1), 12.5e9),
		Socket:       perfmodel.CLX8280,
		Backend:      b,
		CallOverhead: 1e-9, // negligible for the logic tests
		Interference: 1.3,
	}
}

// sumXchg is the payload/args record of the test collective: v carries one
// rank's contribution in and the reduced sum out; dur is the modeled
// duration (read from the leader rank's record, identical on all ranks).
type sumXchg struct{ v, dur float64 }

func sumLead(arg any, payloads []any, _ float64) float64 {
	a := arg.(*sumXchg)
	var sum float64
	for _, p := range payloads {
		sum += p.(*sumXchg).v
	}
	for _, p := range payloads {
		p.(*sumXchg).v = sum
	}
	return a.dur
}

// sumCollective issues the test collective and returns the reduced value.
func sumCollective(r *Rank, label string, v, dur float64) (float64, Handle) {
	x := &sumXchg{v: v, dur: dur}
	h := r.Collective(label, x, x, sumLead)
	return x.v, h
}

func TestCollectiveMovesData(t *testing.T) {
	stats := Run(testCfg(4, MPIBackend), func(r *Rank) {
		res, h := sumCollective(r, "sum", float64(r.ID+1), 0.001)
		r.Wait(h)
		if res != 10 { // 1+2+3+4
			t.Errorf("rank %d got %v want 10", r.ID, res)
		}
	})
	if len(stats) != 4 {
		t.Fatalf("expected 4 stats, got %d", len(stats))
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	// CCL with 4 comm cores has no comm slowdown, so durations are exact.
	stats := Run(testCfg(2, CCLBackend), func(r *Rank) {
		r.Compute(0.5)
		_, h := sumCollective(r, "op", 0, 0.25)
		r.Wait(h)
		if got := r.Now(); math.Abs(got-0.75) > 1e-6 {
			t.Errorf("rank %d time %g want 0.75", r.ID, got)
		}
	})
	for _, s := range stats {
		if math.Abs(s.Compute-0.5) > 1e-9 {
			t.Fatalf("compute time %g want 0.5", s.Compute)
		}
		if math.Abs(s.Wait["op"]-0.25) > 1e-6 {
			t.Fatalf("wait %g want 0.25", s.Wait["op"])
		}
	}
}

func TestCollectiveStartsAtSlowestRank(t *testing.T) {
	Run(testCfg(3, CCLBackend), func(r *Rank) {
		r.Compute(float64(r.ID) * 0.1) // rank 2 arrives at 0.2
		_, h := sumCollective(r, "op", 0, 0.05)
		r.Wait(h)
		want := 0.25
		if math.Abs(r.Now()-want) > 1e-6 {
			t.Errorf("rank %d finishes at %g want %g", r.ID, r.Now(), want)
		}
	})
}

func TestOverlapHidesCommunication(t *testing.T) {
	// Enqueue a 0.2s collective, compute 0.3s, then wait: exposed wait ≈ 0.
	stats := Run(testCfg(2, CCLBackend), func(r *Rank) {
		_, h := sumCollective(r, "ar", 0, 0.2)
		r.Compute(0.3)
		r.Wait(h)
	})
	for _, s := range stats {
		if s.Wait["ar"] > 1e-6 {
			t.Fatalf("overlapped wait should be ~0, got %g", s.Wait["ar"])
		}
	}
	// Blocking config exposes the full communication.
	cfg := testCfg(2, CCLBackend)
	cfg.Blocking = true
	stats = Run(cfg, func(r *Rank) {
		_, h := sumCollective(r, "ar", 0, 0.2)
		r.Compute(0.3)
		r.Wait(h) // no-op: already waited at enqueue
	})
	for _, s := range stats {
		if math.Abs(s.Wait["ar"]-0.2) > 1e-6 {
			t.Fatalf("blocking wait %g want 0.2", s.Wait["ar"])
		}
	}
}

func TestMPIFIFOInOrderCompletion(t *testing.T) {
	// Under MPI, a wait on the second collective (alltoall) pays for the
	// first (allreduce) queued before it — §VI-D's in-order artifact.
	stats := Run(testCfg(2, MPIBackend), func(r *Rank) {
		_, h1 := sumCollective(r, "allreduce", 0, 0.4)
		_, h2 := sumCollective(r, "alltoall", 0, 0.1)
		r.Wait(h2) // only waits the alltoall handle
		r.Wait(h1)
	})
	for _, s := range stats {
		// With the MPI single-progress-thread slowdown (1.5×), the alltoall
		// finishes at 0.6 + 0.15 = 0.75, all exposed at the alltoall wait.
		if math.Abs(s.Wait["alltoall"]-0.75) > 1e-3 {
			t.Fatalf("MPI in-order: alltoall wait %g want ≈0.75", s.Wait["alltoall"])
		}
		if s.Wait["allreduce"] > 1e-6 {
			t.Fatalf("allreduce wait should be absorbed, got %g", s.Wait["allreduce"])
		}
	}
}

func TestCCLChannelsOverlapIndependentOps(t *testing.T) {
	// Under CCL, differently-labeled collectives use different channels and
	// proceed concurrently.
	cfg := testCfg(2, CCLBackend)
	cfg.CCLChannels = 4
	stats := Run(cfg, func(r *Rank) {
		_, h1 := sumCollective(r, "allreduce", 0, 0.4)
		_, h2 := sumCollective(r, "alltoall", 0, 0.1)
		r.Wait(h2)
		r.Wait(h1)
	})
	for _, s := range stats {
		// alltoall finishes at ~0.1 — not after the allreduce.
		if s.Wait["alltoall"] > 0.11 {
			t.Fatalf("CCL alltoall wait %g, want ≈0.1 (concurrent channels)", s.Wait["alltoall"])
		}
	}
}

func TestCollectiveOnPinsChannel(t *testing.T) {
	// Same label, explicit distinct channels: the two operations must run
	// concurrently instead of serializing on the label-hash channel.
	cfg := testCfg(2, CCLBackend)
	cfg.CCLChannels = 4
	pinned := Run(cfg, func(r *Rank) {
		x1 := &sumXchg{dur: 0.4}
		h1 := r.CollectiveOn("redist", 0, x1, x1, sumLead)
		x2 := &sumXchg{dur: 0.4}
		h2 := r.CollectiveOn("redist", 1, x2, x2, sumLead)
		r.Wait(h1)
		r.Wait(h2)
	})
	hashed := Run(cfg, func(r *Rank) {
		_, h1 := sumCollective(r, "redist", 0, 0.4)
		_, h2 := sumCollective(r, "redist", 0, 0.4)
		r.Wait(h1)
		r.Wait(h2)
	})
	for i := range pinned {
		pw, hw := pinned[i].TotalWait(), hashed[i].TotalWait()
		if pw >= hw {
			t.Fatalf("rank %d: pinned channels wait %g must beat same-channel FIFO %g", i, pw, hw)
		}
	}
	// MPI has a single channel: a hint must not change anything.
	mpi := Run(testCfg(2, MPIBackend), func(r *Rank) {
		x1 := &sumXchg{dur: 0.4}
		h1 := r.CollectiveOn("redist", 0, x1, x1, sumLead)
		x2 := &sumXchg{dur: 0.4}
		h2 := r.CollectiveOn("redist", 3, x2, x2, sumLead)
		r.Wait(h1)
		r.Wait(h2)
	})
	for i := range mpi {
		if mpi[i].TotalWait() < 0.79 {
			t.Fatalf("rank %d: MPI must serialize regardless of channel hints (wait %g)", i, mpi[i].TotalWait())
		}
	}
}

func TestAsyncBackgroundCharge(t *testing.T) {
	// Async work is hidden behind compute issued before its Wait, exposed
	// only when compute is too short, and FIFO on its one background thread.
	Run(testCfg(1, CCLBackend), func(r *Rank) {
		h := r.Async("loader", 0.3)
		r.Compute(0.5) // longer than the prefetch: fully hidden
		t0 := r.Now()
		r.Wait(h)
		if r.Now() != t0 {
			t.Errorf("hidden async work advanced the clock: %g → %g", t0, r.Now())
		}

		h = r.Async("loader", 0.3)
		r.Compute(0.1) // too short: 0.2 exposed
		t0 = r.Now()
		r.Wait(h)
		if d := r.Now() - t0; !close1e9(d, 0.2) {
			t.Errorf("exposed async time %g, want 0.2", d)
		}

		// Two charges queue on the single background thread: the second
		// starts when the first finishes, not at issue time.
		start := r.Now()
		h1 := r.Async("loader", 0.2)
		h2 := r.Async("loader", 0.2)
		r.Wait(h1)
		r.Wait(h2)
		if d := r.Now() - start; !close1e9(d, 0.4) {
			t.Errorf("queued async charges took %g, want 0.4 (FIFO background thread)", d)
		}
	})
	// Accounting: busy under the label, exposure under Wait.
	stats := Run(testCfg(1, CCLBackend), func(r *Rank) {
		h := r.Async("loader", 0.3)
		r.Compute(0.1)
		r.Wait(h)
	})
	if b := stats[0].CommBusy["loader"]; !close1e9(b, 0.3) {
		t.Errorf("async busy %g, want 0.3", b)
	}
	if w := stats[0].Wait["loader"]; !close1e9(w, 0.2) {
		t.Errorf("async exposed wait %g, want 0.2", w)
	}
}

func close1e9(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestMPIInterferenceInflatesOverlappedCompute(t *testing.T) {
	stats := Run(testCfg(2, MPIBackend), func(r *Rank) {
		_, h := sumCollective(r, "ar", 0, 1.0)
		r.Compute(0.5) // overlaps the in-flight allreduce → inflated 1.3×
		r.Wait(h)
	})
	for _, s := range stats {
		if math.Abs(s.Compute-0.65) > 1e-6 {
			t.Fatalf("MPI overlapped compute %g want 0.65", s.Compute)
		}
	}
	// CCL does not inflate.
	stats = Run(testCfg(2, CCLBackend), func(r *Rank) {
		_, h := sumCollective(r, "ar", 0, 1.0)
		r.Compute(0.5)
		r.Wait(h)
	})
	for _, s := range stats {
		if math.Abs(s.Compute-0.5) > 1e-6 {
			t.Fatalf("CCL overlapped compute %g want 0.5", s.Compute)
		}
	}
}

func TestComputeCores(t *testing.T) {
	Run(testCfg(1, MPIBackend), func(r *Rank) {
		if r.ComputeCores() != perfmodel.CLX8280.Cores {
			t.Errorf("MPI compute cores %d want all %d", r.ComputeCores(), perfmodel.CLX8280.Cores)
		}
	})
	cfg := testCfg(1, CCLBackend)
	Run(cfg, func(r *Rank) {
		if r.ComputeCores() != perfmodel.CLX8280.Cores-4 {
			t.Errorf("CCL compute cores %d want %d", r.ComputeCores(), perfmodel.CLX8280.Cores-4)
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	Run(testCfg(4, MPIBackend), func(r *Rank) {
		r.Compute(float64(r.ID) * 0.1)
		r.Barrier()
		if math.Abs(r.Now()-0.3) > 1e-6 {
			t.Errorf("rank %d after barrier at %g want 0.3", r.ID, r.Now())
		}
	})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []Stats {
		return Run(testCfg(8, CCLBackend), func(r *Rank) {
			for i := 0; i < 5; i++ {
				r.Compute(0.01 * float64(r.ID+1))
				_, h := sumCollective(r, "a2a", float64(r.ID), 0.02)
				r.Compute(0.005)
				r.Wait(h)
			}
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Compute != b[i].Compute || a[i].TotalWait() != b[i].TotalWait() {
			t.Fatalf("simulation not deterministic at rank %d", i)
		}
	}
}

func TestLeaderRunsExactlyOnce(t *testing.T) {
	var calls int32
	Run(testCfg(6, MPIBackend), func(r *Rank) {
		h := r.Collective("x", nil, nil, func(arg any, p []any, start float64) float64 {
			atomic.AddInt32(&calls, 1)
			return 0.001
		})
		r.Wait(h)
	})
	if calls != 1 {
		t.Fatalf("leader ran %d times, want 1", calls)
	}
}

func TestPrepAccounting(t *testing.T) {
	stats := Run(testCfg(1, MPIBackend), func(r *Rank) {
		r.Prep("alltoall", 0.002)
	})
	if math.Abs(stats[0].Prep["alltoall"]-0.002) > 1e-12 {
		t.Fatal("prep not recorded")
	}
}

func TestSingleRankCollectives(t *testing.T) {
	Run(testCfg(1, CCLBackend), func(r *Rank) {
		res, h := sumCollective(r, "solo", 7, 0.01)
		r.Wait(h)
		if res != 7 {
			t.Fatalf("single-rank collective result %v", res)
		}
	})
}

func TestConfigValidationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 ranks")
		}
	}()
	Run(Config{Ranks: 0}, func(r *Rank) {})
}

func TestRankPoolsPersistAcrossRuns(t *testing.T) {
	ps := NewPools()
	defer ps.Close()
	cfg := testCfg(2, CCLBackend)
	cfg.Pools = ps
	grab := func() [2]any {
		var got [2]any
		Run(cfg, func(r *Rank) { got[r.ID] = r.Pool() })
		return got
	}
	a, b := grab(), grab()
	for id := range a {
		if a[id] == nil || a[id] != b[id] {
			t.Fatalf("rank %d pool not persistent across runs: %p vs %p", id, a[id], b[id])
		}
	}
	if a[0] == a[1] {
		t.Fatal("ranks must own distinct pools")
	}
}

func TestRankPoolsResizeOnCoreChange(t *testing.T) {
	ps := NewPools()
	defer ps.Close()
	// Worker counts are capped at GOMAXPROCS, so exercise the resize path
	// directly through Get.
	p1 := ps.Get(0, 1)
	if p1.NumWorkers() != 1 {
		t.Fatalf("want 1 worker, got %d", p1.NumWorkers())
	}
	if again := ps.Get(0, 1); again != p1 {
		t.Fatal("same size must return the same pool")
	}
	mx := runtime.GOMAXPROCS(0)
	if mx < 2 {
		return // resize unobservable on a single-proc host
	}
	p2 := ps.Get(0, 2)
	if p2 == p1 {
		t.Fatal("core-count change must rebuild the pool")
	}
	if p2.NumWorkers() != 2 {
		t.Fatalf("want 2 workers, got %d", p2.NumWorkers())
	}
}

func TestTransientPoolsClosedAfterRun(t *testing.T) {
	// With no Config.Pools, Run owns the set and closes it on exit; the
	// rank body can still use its pool during the run.
	var pool *par.Pool
	Run(testCfg(1, MPIBackend), func(r *Rank) {
		pool = r.Pool()
		if pool.Closed() {
			t.Error("transient pool closed during its own run")
		}
		n := 0
		pool.ForN(4, func(tid, lo, hi int) { n += hi - lo })
		if n != 4 {
			t.Errorf("pool region covered %d items, want 4", n)
		}
	})
	if pool == nil {
		t.Fatal("rank had no pool")
	}
	if !pool.Closed() {
		t.Fatal("transient pool set must be closed when Run returns (worker-goroutine leak)")
	}
	// A shared set, by contrast, stays open across Run.
	ps := NewPools()
	defer ps.Close()
	cfg := testCfg(1, MPIBackend)
	cfg.Pools = ps
	Run(cfg, func(r *Rank) { pool = r.Pool() })
	if pool.Closed() {
		t.Fatal("Run must not close a caller-owned Pools set")
	}
}

package cluster

import (
	"strings"
	"testing"
)

func TestRandomChurnDeterministic(t *testing.T) {
	a := RandomChurn(7, 16, 4, 200, 0.1)
	b := RandomChurn(7, 16, 4, 200, 0.1)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed, different schedules: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	if len(a.Events) == 0 {
		t.Fatal("rate 0.1 over 200 boundaries produced no failures")
	}
	c := RandomChurn(8, 16, 4, 200, 0.1)
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRandomChurnRespectsBounds(t *testing.T) {
	const ranks, minRanks = 8, 3
	p := RandomChurn(1, ranks, minRanks, 500, 0.5)
	if got, max := len(p.Events), ranks-minRanks; got > max {
		t.Fatalf("%d failures exceed the %d allowed before minRanks", got, max)
	}
	live := ranks
	prev := 0
	for _, ev := range p.Events {
		if ev.Kind != RankFail {
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
		if ev.Iter <= prev {
			t.Fatalf("events not strictly increasing: %d after %d", ev.Iter, prev)
		}
		if ev.Rank < 0 || ev.Rank >= live {
			t.Fatalf("rank %d out of range for %d live ranks", ev.Rank, live)
		}
		live--
		prev = ev.Iter
	}
	if live < minRanks {
		t.Fatalf("schedule drops below minRanks: %d < %d", live, minRanks)
	}
	// Counter-based draws: a longer horizon extends the schedule without
	// perturbing the earlier boundaries.
	long := RandomChurn(1, ranks, 1, 1000, 0.5)
	for i, ev := range p.Events {
		if i >= len(long.Events) || long.Events[i] != ev {
			t.Fatalf("longer horizon rewrote boundary %d", ev.Iter)
		}
	}
}

func TestFaultPlanResolved(t *testing.T) {
	p := &FaultPlan{Events: []FaultEvent{
		{At: 0.75, Kind: RankFail, Rank: 2}, // inside iteration 1 at 0.5s/iter
		{Iter: 3, Kind: Rescale, NewRanks: 4},
		{Iter: 99, Kind: RankFail, Rank: 0}, // past the run: dropped
	}}
	evs, err := p.Resolved(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (the iter-99 one never fires)", len(evs))
	}
	if evs[0].Iter != 2 || evs[0].Kind != RankFail {
		t.Fatalf("time-based event resolved to %v, want rank-fail at iter 2", evs[0])
	}
	if evs[1].Iter != 3 || evs[1].Kind != Rescale {
		t.Fatalf("second event %v, want rescale at iter 3", evs[1])
	}

	// A time-based event without a measured iteration time is an error.
	if _, err := p.Resolved(0, 10); err == nil {
		t.Fatal("time-based event accepted without an iteration time")
	}

	// Two events on one boundary are rejected.
	dup := &FaultPlan{Events: []FaultEvent{
		{Iter: 3, Kind: RankFail, Rank: 0},
		{Iter: 3, Kind: RankFail, Rank: 1},
	}}
	if _, err := dup.Resolved(0, 10); err == nil || !strings.Contains(err.Error(), "iteration 3") {
		t.Fatalf("duplicate boundary not rejected: %v", err)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		ev   FaultEvent
	}{
		{"unknown kind", FaultEvent{Iter: 1, Kind: FaultKind(9)}},
		{"neither Iter nor At", FaultEvent{Kind: RankFail}},
		{"both Iter and At", FaultEvent{Iter: 2, At: 1.5, Kind: RankFail}},
		{"negative rank", FaultEvent{Iter: 1, Kind: RankFail, Rank: -1}},
		{"bad NewRanks", FaultEvent{Iter: 1, Kind: Rescale, NewRanks: 0}},
	} {
		p := &FaultPlan{Events: []FaultEvent{tc.ev}}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	ok := &FaultPlan{Events: []FaultEvent{{Iter: 1, Kind: RankFail, Rank: 0}, {At: 2.5, Kind: Rescale, NewRanks: 2}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

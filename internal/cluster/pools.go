package cluster

import (
	"runtime"
	"sync"

	"repro/internal/par"
)

// Pools owns one persistent par.Pool per simulated rank — the NUMA-style
// "one worker team per socket" layout the paper's OpenMP runs pin. Pools
// are created lazily on first use (timing-only simulations never touch
// them) and persist across cluster.Run calls, so a figure sweep or a
// benchmark loop reuses the same worker goroutines for every run instead of
// spawning and draining a team per run.
//
// Ownership: whoever constructs a Pools closes it. cluster.Run closes only
// the transient set it creates itself when Config.Pools is nil; a shared
// set passed in by a driver stays alive until the driver's Close.
type Pools struct {
	mu    sync.Mutex
	pools []*par.Pool
	sizes []int
}

// NewPools returns an empty pool set; rank pools are created on first Get.
func NewPools() *Pools { return &Pools{} }

// Get returns rank's pool, creating it on first use with min(cores,
// GOMAXPROCS) workers (at least 1): `cores` is the socket's compute-core
// count — the T−S split with communication cores already excluded — and the
// GOMAXPROCS cap avoids parking worker goroutines the host could never run.
// A rank whose core count changes (e.g. an MPI run followed by a CCL run)
// gets its pool rebuilt at the new size.
func (ps *Pools) Get(rank, cores int) *par.Pool {
	want := cores
	if mx := runtime.GOMAXPROCS(0); want > mx {
		want = mx
	}
	if want < 1 {
		want = 1
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for len(ps.pools) <= rank {
		ps.pools = append(ps.pools, nil)
		ps.sizes = append(ps.sizes, 0)
	}
	if ps.pools[rank] != nil && ps.sizes[rank] != want {
		ps.pools[rank].Close()
		ps.pools[rank] = nil
	}
	if ps.pools[rank] == nil {
		ps.pools[rank] = par.NewPool(want)
		ps.sizes[rank] = want
	}
	return ps.pools[rank]
}

// Close shuts down every created pool's workers. The set is reusable after
// Close (pools are simply recreated on the next Get).
func (ps *Pools) Close() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for i, p := range ps.pools {
		if p != nil {
			p.Close()
			ps.pools[i] = nil
			ps.sizes[i] = 0
		}
	}
}

// Package cluster is the multi-socket execution substrate: every rank (one
// per socket, as in the paper's runs) is a goroutine, collectives move real
// data between ranks, and *time* is virtual — charged from the perfmodel
// and fabric cost models. This is the substitution that lets the paper's 8-
// and 64-socket experiments regenerate on any machine: functional behaviour
// is executed, hardware speed is simulated.
//
// Each rank owns a compute stream (its virtual clock, advanced by Compute)
// and one or more communication channels (advanced by collectives). The two
// progress semantics of §IV-C/§VI-D are modeled:
//
//   - MPIBackend: a single communication channel processed FIFO, so a wait
//     on operation k implicitly waits for everything enqueued before it (the
//     in-order-completion artifact that surfaces allreduce cost at the
//     alltoall wait), and compute issued while communication is in flight is
//     inflated by an interference factor (the unpinned progress thread
//     stealing cycles from compute threads).
//   - CCLBackend: several channels driven by dedicated, pinned cores; no
//     compute interference, out-of-order waits — but CommCores cores are
//     excluded from compute.
package cluster

import (
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/par"
	"repro/internal/perfmodel"
)

// Backend selects the communication-progress semantics.
type Backend int

const (
	// MPIBackend models PyTorch's MPI process group (§IV-C).
	MPIBackend Backend = iota
	// CCLBackend models the oneCCL integration (§IV-C).
	CCLBackend
)

// String returns the paper's label for the backend.
func (b Backend) String() string {
	if b == CCLBackend {
		return "CCL Backend"
	}
	return "MPI Backend"
}

// Config describes a simulated machine and software stack.
type Config struct {
	Ranks  int
	Topo   fabric.Topology
	Socket perfmodel.Socket

	Backend  Backend
	Blocking bool // wait immediately after every collective (the instrumented "blocking" runs)

	// CommCores is the number of cores dedicated to communication. For CCL
	// these are pinned and excluded from compute; for MPI the progress
	// thread is unpinned, so CommCores is 0 and Interference applies.
	CommCores int
	// CCLChannels is the number of parallel communication channels for the
	// CCL backend (oneCCL workers). MPI always has exactly one.
	CCLChannels int
	// Interference inflates compute issued while MPI communication is in
	// flight (≥ 1). Ignored for CCL.
	Interference float64
	// CallOverhead is the per-collective framework cost in seconds (enqueue,
	// flat-buffer bookkeeping); the "Framework" component of Figs. 11/14.
	CallOverhead float64
	// Contention selects the contention-aware charging mode: collectives
	// that register their per-link loads (comm's leaders do) are charged
	// extra time for the residual bytes of concurrently in-flight
	// collectives on shared links, via Engine.ChargeContended. Off by
	// default — every collective is then priced in isolation, exactly as
	// before the knob existed, so committed virtual baselines stay
	// bit-identical.
	Contention bool

	// Pools supplies each rank's persistent compute worker pool (the
	// NUMA-style one-pool-per-socket layout). When nil, Run creates a
	// transient set and closes it when the job finishes; callers running
	// many jobs (figure sweeps, benchmarks) pass a shared *Pools so the
	// worker goroutines persist across runs.
	Pools *Pools
}

// commSlowdown returns the factor by which collective durations stretch
// because the backend cannot saturate the fabric: the MPI backend drives
// communication from a single progress thread (§VI-D1 observes its pure
// communication cost exceeds CCL's), while the CCL backend saturates at
// about 4 dedicated workers (§IV-C: "we need multiple threads to saturate
// the full communication bandwidth").
func (c Config) commSlowdown() float64 {
	return c.CommSlowdown()
}

// CommSlowdown is the exported view of the backend slowdown factor, for
// holders that price transfers outside the SPMD collective path (the
// serving tier charges request-scoped shard fetches with it).
func (c Config) CommSlowdown() float64 {
	if c.Backend == MPIBackend {
		return 1.5
	}
	workers := c.CommCores
	if workers < 1 {
		workers = 1
	}
	if workers >= 4 {
		return 1
	}
	return 4 / float64(workers)
}

// WithDefaults fills unset tuning fields with the values used throughout the
// experiments: 4 CCL channels/comm cores, 30% MPI interference, 25 µs per
// framework call.
func (c Config) WithDefaults() Config {
	if c.CCLChannels == 0 {
		c.CCLChannels = 4
	}
	if c.Backend == CCLBackend && c.CommCores == 0 {
		c.CommCores = 4
	}
	if c.Interference == 0 {
		c.Interference = 1.3
	}
	if c.CallOverhead == 0 {
		c.CallOverhead = 25e-6
	}
	return c
}

// Stats accumulates per-rank virtual-time accounting, keyed by the labels
// the trainer passes (e.g. "alltoall", "allreduce").
type Stats struct {
	Compute  float64            // seconds in compute (after any inflation)
	Wait     map[string]float64 // exposed wait per collective label
	CommBusy map[string]float64 // raw collective durations (busy time)
	Prep     map[string]float64 // framework pre/post processing per label
}

func newStats() Stats {
	return Stats{
		Wait:     map[string]float64{},
		CommBusy: map[string]float64{},
		Prep:     map[string]float64{},
	}
}

// TotalWait sums exposed waits over all labels.
func (s *Stats) TotalWait() float64 {
	var t float64
	for _, v := range s.Wait {
		t += v
	}
	return t
}

// Engine coordinates the rank goroutines of one simulated job.
type Engine struct {
	Cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	active []*slot // in-flight collectives (at most a handful; linear scan)
	free   *slot   // recycled slot free list — steady state allocates none
	pools  *Pools

	// The contention epoch (Cfg.Contention): time windows and link loads of
	// charged collectives still in flight, shared across all channels and
	// ranks. Mutated only from ChargeContended, which runs in leader
	// context — under e.mu — so no further locking is needed. Records are
	// recycled through a free list; steady state allocates none.
	inflight   []*flight
	flightFree *flight
}

// NewEngine builds an engine for cfg with the tuning defaults applied.
// Run constructs its engine through this; standalone holders — the serving
// tier prices request-scoped shard fetches through ChargeContended on the
// same contention epoch — construct one directly, without launching rank
// goroutines.
func NewEngine(cfg Config) *Engine {
	e := &Engine{Cfg: cfg.WithDefaults()}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// flight is one charged collective's window on the contention epoch.
type flight struct {
	start, finish float64 // scaled (post-commSlowdown) virtual time
	loads         fabric.LoadSet
	next          *flight // free-list link
}

type slot struct {
	seq      int64
	payloads []any
	ready    []float64
	arrived  int
	done     bool
	finish   float64
	dur      float64
	next     *slot // free-list link
}

// LeaderFunc computes a collective's virtual duration — and, for data-moving
// collectives, performs the data movement by writing into the per-rank
// payload records — from the gathered per-rank payloads. It runs exactly
// once per collective, on the last-arriving rank, with that rank's arg.
// Bodies are SPMD, so every rank's arg must describe the same collective;
// leaders should be package-level functions and args pointers to persistent
// per-rank state so that issuing a collective performs no heap allocation
// (the same static-body convention as par.ForNArg).
type LeaderFunc func(arg any, payloads []any, start float64) (dur float64)

// Rank is the per-goroutine handle: virtual clocks plus statistics.
type Rank struct {
	ID  int
	Eng *Engine

	now       float64
	commFree  []float64
	asyncFree float64 // background-thread stream (Async): busy until here
	seq       int64
	Stats     Stats
}

// Pool returns this rank's persistent compute worker pool, lazily created
// from the engine's Pools set and sized to the socket's compute cores
// (communication cores excluded under CCL), capped at GOMAXPROCS.
func (r *Rank) Pool() *par.Pool {
	return r.Eng.pools.Get(r.ID, r.ComputeCores())
}

// Handle identifies an in-flight collective for a later Wait. It is a plain
// value (the zero Handle is an already-complete no-op), so issuing and
// waiting on collectives never allocates.
type Handle struct {
	Label string
	// Channel is the physical communication channel the operation was
	// placed on: the resolved CCL channel (an explicit CollectiveOn hint
	// taken mod CCLChannels, or the label-hash pick), always 0 for MPI —
	// which has a single channel and drops hints entirely — and -1 for
	// Async work, which runs on the rank-local background stream rather
	// than a communication channel. Placement tests and the contention
	// figures read it to verify where an operation actually ran.
	Channel int
	finish  float64
}

// Run executes body on Ranks goroutines and returns the per-rank statistics
// once all complete. Bodies must be SPMD: every rank issues the same
// sequence of collectives.
func Run(cfg Config, body func(r *Rank)) []Stats {
	cfg = cfg.WithDefaults()
	if cfg.Ranks < 1 {
		panic(fmt.Sprintf("cluster: Ranks=%d", cfg.Ranks))
	}
	if cfg.Topo != nil && cfg.Topo.NumSockets() < cfg.Ranks {
		panic(fmt.Sprintf("cluster: topology has %d sockets for %d ranks", cfg.Topo.NumSockets(), cfg.Ranks))
	}
	e := NewEngine(cfg)
	e.pools = cfg.Pools
	ownedPools := e.pools == nil
	if ownedPools {
		e.pools = NewPools()
	}
	channels := 1
	if cfg.Backend == CCLBackend {
		channels = cfg.CCLChannels
	}
	stats := make([]Stats, cfg.Ranks)
	var wg sync.WaitGroup
	wg.Add(cfg.Ranks)
	for id := 0; id < cfg.Ranks; id++ {
		go func(id int) {
			defer wg.Done()
			r := &Rank{ID: id, Eng: e, commFree: make([]float64, channels), Stats: newStats()}
			body(r)
			stats[id] = r.Stats
		}(id)
	}
	wg.Wait()
	if ownedPools {
		e.pools.Close()
	}
	return stats
}

// Now returns the rank's current compute-stream virtual time.
func (r *Rank) Now() float64 { return r.now }

// ComputeCores returns the cores available to compute kernels: all of them
// under MPI (the progress thread is not reserved — hence interference) and
// Cores−CommCores under CCL.
func (r *Rank) ComputeCores() int {
	if r.Eng.Cfg.Backend == CCLBackend {
		return r.Eng.Cfg.Socket.Cores - r.Eng.Cfg.CommCores
	}
	return r.Eng.Cfg.Socket.Cores
}

// Compute advances the rank's clock by seconds of kernel time. Under the
// MPI backend, compute that overlaps in-flight communication is inflated by
// the interference factor.
func (r *Rank) Compute(seconds float64) {
	if seconds < 0 {
		panic("cluster: negative compute time")
	}
	if r.Eng.Cfg.Backend == MPIBackend && r.Eng.Cfg.Interference > 1 {
		busy := false
		for _, f := range r.commFree {
			if f > r.now {
				busy = true
				break
			}
		}
		if busy {
			seconds *= r.Eng.Cfg.Interference
		}
	}
	r.now += seconds
	r.Stats.Compute += seconds
}

// Prep charges framework pre/post-processing (flat-buffer packing, gradient
// averaging) to compute time, attributed to the given label.
func (r *Rank) Prep(label string, seconds float64) {
	r.now += seconds
	r.Stats.Prep[label] += seconds
}

// Async charges seconds of background work — a prefetching loader goroutine,
// a double-buffered staging copy — to a single per-rank background stream
// that runs concurrently with the compute clock. The work starts now, or
// when the previous Async operation finishes (one background thread, FIFO),
// and the returned Handle exposes on Wait only whatever outlasts the compute
// issued in the meantime. Busy time is recorded under label in CommBusy, so
// hidden-vs-exposed accounting works exactly as for collectives; unlike a
// collective it involves no rendezvous (the work is rank-local) and charges
// no call overhead.
func (r *Rank) Async(label string, seconds float64) Handle {
	if seconds < 0 {
		panic("cluster: negative async time")
	}
	start := r.now
	if r.asyncFree > start {
		start = r.asyncFree
	}
	finish := start + seconds
	r.asyncFree = finish
	r.Stats.CommBusy[label] += seconds
	return Handle{Label: label, Channel: -1, finish: finish}
}

// Collective issues one collective operation. payload carries this rank's
// contribution (a pointer to real data and/or receive buffers); lead runs
// once, on the last-arriving rank with that rank's arg, moving data between
// the payload records and returning the operation's virtual duration. The
// call returns a Handle for Wait; the moved data is already in place when
// Collective returns (the rendezvous is synchronous — only *time* is
// deferred to Wait). Under Blocking configs the wait happens before
// returning.
//
// Channel selection: MPI has one FIFO channel; CCL spreads labels across
// its channels so independent collectives progress concurrently.
func (r *Rank) Collective(label string, payload, arg any, lead LeaderFunc) Handle {
	return r.CollectiveOn(label, -1, payload, arg, lead)
}

// CollectiveOn is Collective with an explicit channel hint: channel ≥ 0 pins
// the operation to that CCL channel (taken mod CCLChannels), so callers that
// issue several concurrent collectives can place them on distinct FIFOs and
// have the per-channel queueing model charge true contention instead of
// whatever the label hash happens to collide. channel < 0 keeps the default
// label-hash placement. The MPI backend has exactly one in-order channel,
// so any hint — like the label hash — is dropped and the operation queues
// FIFO behind everything already issued; either way the channel the
// operation actually landed on is recorded on the returned Handle.
func (r *Rank) CollectiveOn(label string, channel int, payload, arg any, lead LeaderFunc) Handle {
	cfg := r.Eng.Cfg
	r.now += cfg.CallOverhead
	r.Stats.Prep[label] += cfg.CallOverhead

	ch := 0
	if cfg.Backend == CCLBackend {
		if channel >= 0 {
			ch = channel % len(r.commFree)
		} else {
			ch = hashLabel(label) % len(r.commFree)
		}
	}
	ready := r.now
	if r.commFree[ch] > ready {
		ready = r.commFree[ch]
	}
	seq := r.seq
	r.seq++
	finish, dur := r.Eng.exchange(seq, r.ID, payload, ready, arg, lead)
	r.commFree[ch] = finish
	r.Stats.CommBusy[label] += dur
	h := Handle{Label: label, Channel: ch, finish: finish}
	if cfg.Blocking {
		r.Wait(h)
	}
	return h
}

// Wait blocks the compute stream until the collective completes, recording
// the exposed wait time under the handle's label. The zero Handle is a
// no-op.
func (r *Rank) Wait(h Handle) {
	if h.finish > r.now {
		r.Stats.Wait[h.Label] += h.finish - r.now
		r.now = h.finish
	}
}

func barrierLead(any, []any, float64) float64 { return 0 }

// Barrier synchronizes all ranks' compute clocks (zero-duration collective)
// and waits immediately.
func (r *Rank) Barrier() {
	r.Wait(r.Collective("barrier", nil, nil, barrierLead))
}

// slotFor returns the rendezvous slot for sequence number seq, reusing a
// recycled slot (or allocating one, only until the free list warms up) when
// this rank is the first to arrive. Caller holds e.mu.
func (e *Engine) slotFor(seq int64) *slot {
	for _, s := range e.active {
		if s.seq == seq {
			return s
		}
	}
	s := e.free
	if s != nil {
		e.free = s.next
		s.next = nil
	} else {
		s = &slot{
			payloads: make([]any, e.Cfg.Ranks),
			ready:    make([]float64, e.Cfg.Ranks),
		}
	}
	s.seq, s.arrived, s.done, s.finish, s.dur = seq, 0, false, 0, 0
	e.active = append(e.active, s)
	return s
}

// release clears a drained slot's payload references and recycles it.
// Caller holds e.mu.
func (e *Engine) release(s *slot) {
	for i := range s.payloads {
		s.payloads[i] = nil
	}
	last := len(e.active) - 1
	for i, a := range e.active {
		if a == s {
			e.active[i] = e.active[last]
			e.active[last] = nil
			e.active = e.active[:last]
			break
		}
	}
	s.next = e.free
	e.free = s
}

// exchange is the rendezvous: gathers payloads and ready times from all
// ranks, runs the leader once, and releases everyone once the data has
// moved and the duration is known.
func (e *Engine) exchange(seq int64, rank int, payload any, ready float64, arg any, lead LeaderFunc) (float64, float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.slotFor(seq)
	s.payloads[rank] = payload
	s.ready[rank] = ready
	s.arrived++
	if s.arrived == e.Cfg.Ranks {
		start := s.ready[0]
		for _, t := range s.ready[1:] {
			if t > start {
				start = t
			}
		}
		dur := lead(arg, s.payloads, start) * e.Cfg.commSlowdown()
		s.dur = dur
		s.finish = start + dur
		s.done = true
		e.cond.Broadcast()
	} else {
		for !s.done {
			e.cond.Wait()
		}
	}
	finish, dur := s.finish, s.dur
	// Last rank out recycles the slot.
	s.arrived--
	if s.arrived == 0 {
		e.release(s)
	}
	return finish, dur
}

// ChargeContended prices a collective against the contention epoch and
// registers it there. start is the operation's virtual start (the
// rendezvous start the leader received), iso its isolated duration from
// the unchanged cost model (pre-commSlowdown, i.e. exactly what the leader
// would have returned), and loads its aggregate per-link byte footprint
// (every phase summed, copy overhead included — what Scratch.Accumulate
// collected). topo supplies the link bandwidths. The return value replaces
// iso as the leader's result; the caller's commSlowdown multiply then
// reproduces the registered finish time.
//
// Sharing discipline — causal residual-drain (work-conserving shared
// queue): each already-charged collective still in flight at start is
// assumed to drain its link bytes at a uniform rate across its own window,
// and the newcomer's bottleneck link additionally carries every such
// operation's residual bytes — the fraction of its load falling inside
// [start, its finish). The newcomer's duration becomes
//
//	iso + max over its links l of  Σ_f residual_f(l) / bandwidth(l)
//
// Earlier operations keep their already-charged finishes: their Waits may
// already have resolved, so retroactive stretching would break causality —
// instead the op that arrives second pays for the sharing. The discipline
// is deterministic (leaders run in global issue order: every rank blocks
// in each rendezvous, so collective k's leader always runs before
// k+1's) and bounded both ways: the result is ≥ iso (the residual term is
// non-negative) and each overlapping flight contributes at most its own
// isolated duration (its per-link bytes/bandwidth never exceed its phase
// times), so concurrent operations never finish later than they would
// serialized. Operations whose windows do not overlap — including
// everything on MPI's single in-order channel — are charged exactly iso.
//
// ChargeContended must only be called from leader context: leaders run
// under e.mu inside the rendezvous, which is what makes the epoch safe to
// mutate without further locking.
func (e *Engine) ChargeContended(topo fabric.Topology, loads *fabric.LoadSet, start, iso float64) float64 {
	slow := e.Cfg.commSlowdown()
	isoS := iso * slow
	// Drop flights that ended before this operation starts. (A later
	// charge on another channel can still start earlier in virtual time;
	// a flight pruned here that would have overlapped it slightly
	// under-counts that rare inversion, in exchange for a bounded epoch.)
	kept := e.inflight[:0]
	for _, f := range e.inflight {
		if f.finish <= start {
			f.loads.Reset()
			f.next = e.flightFree
			e.flightFree = f
			continue
		}
		kept = append(kept, f)
	}
	for i := len(kept); i < len(e.inflight); i++ {
		e.inflight[i] = nil
	}
	e.inflight = kept

	var delta float64
	for _, link := range loads.Links() {
		var resid float64
		for _, f := range e.inflight {
			if l := f.loads.Load(link); l > 0 {
				// Overlap window within f, as a fraction of f's drain.
				lo := start
				if f.start > lo {
					lo = f.start
				}
				resid += l * (f.finish - lo) / (f.finish - f.start)
			}
		}
		// Residual bytes drain at the backend's effective rate: commSlowdown
		// models a backend that cannot saturate the wire, so in scaled time
		// every link runs at bandwidth/slow — for the queued residual just
		// like for the newcomer's own bytes.
		if d := resid * slow / topo.LinkBandwidth(link); d > delta {
			delta = d
		}
	}

	durS := isoS + delta
	if durS > 0 && len(loads.Links()) > 0 {
		f := e.flightFree
		if f != nil {
			e.flightFree = f.next
			f.next = nil
		} else {
			f = &flight{}
		}
		f.start, f.finish = start, start+durS
		f.loads.CopyFrom(loads)
		e.inflight = append(e.inflight, f)
	}
	return durS / slow
}

func hashLabel(s string) int {
	h := 0
	for i := 0; i < len(s); i++ {
		h = h*31 + int(s[i])
	}
	if h < 0 {
		h = -h
	}
	return h
}

package cluster

import (
	"fmt"
	"sort"
)

// The deterministic failure injector. A FaultPlan scripts which ranks die
// (or how the fleet rescales) during a simulated run; the elastic driver in
// core replays the plan against the virtual clock. Failures take effect at
// iteration boundaries: a rank that dies mid-iteration is only *noticed*
// when the survivors next rendezvous with it — a collective that times out
// after DefaultDetectSeconds — so the boundary is where the cluster's state
// forks. Events are either pinned to an iteration directly (Iter) or to a
// virtual time (At), which the driver resolves onto the boundary following
// that instant using the measured iteration time.

// FaultKind classifies a fault-plan event.
type FaultKind int

const (
	// RankFail kills one rank: survivors detect the death at their next
	// collective (a modeled timeout), roll back to the latest durable
	// checkpoint, take over the dead rank's table and data shards, and
	// replay the lost iterations at the surviving shape.
	RankFail FaultKind = iota
	// Rescale is a *graceful* shape change R → R′ at an iteration boundary:
	// the fleet drains a synchronous checkpoint, re-shards, and continues —
	// no detection timeout and no replay.
	Rescale
)

// String returns the event-kind label used in figures and logs.
func (k FaultKind) String() string {
	switch k {
	case RankFail:
		return "rank-fail"
	case Rescale:
		return "rescale"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// DefaultDetectSeconds is the modeled failure-detection latency: how long
// the survivors' next collective blocks before the runtime declares the
// missing rank dead (the MPI/CCL watchdog timeout). Charged once per
// RankFail on top of restore and replay.
const DefaultDetectSeconds = 1.0

// FaultEvent is one scripted fault. Exactly one of Iter (≥ 1, the global
// iteration at whose start the event takes effect) and At (> 0, a virtual
// time resolved onto the following iteration boundary) must be set.
type FaultEvent struct {
	Iter int
	At   float64
	Kind FaultKind
	// Rank is the rank id that dies (RankFail), under the shape in effect
	// when the event fires.
	Rank int
	// NewRanks is the target rank count (Rescale).
	NewRanks int
}

// String renders the event for logs and figure notes.
func (ev FaultEvent) String() string {
	when := fmt.Sprintf("iter %d", ev.Iter)
	if ev.Iter == 0 {
		when = fmt.Sprintf("t=%.3fs", ev.At)
	}
	if ev.Kind == Rescale {
		return fmt.Sprintf("%s: rescale to %d ranks", when, ev.NewRanks)
	}
	return fmt.Sprintf("%s: rank %d fails", when, ev.Rank)
}

// FaultPlan is a deterministic schedule of fault events for one run.
type FaultPlan struct {
	Events []FaultEvent
}

// Validate checks every event for internal coherence (shape-dependent
// checks — rank ids against the live rank count, divisibility — are the
// driver's, which knows the evolving shape).
func (p *FaultPlan) Validate() error {
	for i, ev := range p.Events {
		if ev.Kind != RankFail && ev.Kind != Rescale {
			return fmt.Errorf("cluster: fault event %d: unknown kind %d", i, int(ev.Kind))
		}
		if ev.Iter < 0 {
			return fmt.Errorf("cluster: fault event %d: Iter=%d, want >= 1 (or 0 with At set)", i, ev.Iter)
		}
		if ev.Iter == 0 && ev.At <= 0 {
			return fmt.Errorf("cluster: fault event %d: needs Iter >= 1 or At > 0", i)
		}
		if ev.Iter > 0 && ev.At != 0 {
			return fmt.Errorf("cluster: fault event %d: Iter and At both set; pick one", i)
		}
		if ev.Kind == RankFail && ev.Rank < 0 {
			return fmt.Errorf("cluster: fault event %d: Rank=%d, want >= 0", i, ev.Rank)
		}
		if ev.Kind == Rescale && ev.NewRanks < 1 {
			return fmt.Errorf("cluster: fault event %d: NewRanks=%d, want >= 1", i, ev.NewRanks)
		}
	}
	return nil
}

// NeedsTime reports whether any event is pinned to a virtual time rather
// than an iteration — in which case Resolved needs a measured per-iteration
// time to place it.
func (p *FaultPlan) NeedsTime() bool {
	for _, ev := range p.Events {
		if ev.Iter == 0 {
			return true
		}
	}
	return false
}

// Resolved validates the plan and returns its events normalized for a run
// of `iters` iterations: time-based events are mapped onto the iteration
// boundary following their instant (a rank dying at virtual time t inside
// iteration i takes effect at boundary i+1), events at or past the run's
// end are dropped (they never fire), and the rest are sorted by iteration.
// Two events on one boundary are rejected — the recovery protocol handles
// one shape change per boundary.
func (p *FaultPlan) Resolved(iterSeconds float64, iters int) ([]FaultEvent, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]FaultEvent, 0, len(p.Events))
	for _, ev := range p.Events {
		if ev.Iter == 0 {
			if iterSeconds <= 0 {
				return nil, fmt.Errorf("cluster: time-based fault event (%s) needs a positive iteration time", ev)
			}
			ev.Iter = int(ev.At/iterSeconds) + 1
			ev.At = 0
		}
		if ev.Iter >= iters {
			continue
		}
		out = append(out, ev)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Iter < out[j].Iter })
	for i := 1; i < len(out); i++ {
		if out[i].Iter == out[i-1].Iter {
			return nil, fmt.Errorf("cluster: two fault events at iteration %d; one shape change per boundary", out[i].Iter)
		}
	}
	return out, nil
}

// splitmix64 is the same counter-based generator the data streams use
// (internal/data): tiny state, cheap seeding, no allocation — so a churn
// schedule, like a minibatch, is a pure function of its coordinates.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// RandomChurn builds a deterministic randomized churn schedule: at every
// iteration boundary, with probability rate, one uniformly-chosen live rank
// fails — until only minRanks survive. The draws for boundary i derive
// purely from (seed, i), so the schedule is reproducible, two plans with
// equal arguments are identical, and changing iters does not perturb the
// draws of earlier boundaries.
func RandomChurn(seed uint64, ranks, minRanks, iters int, rate float64) *FaultPlan {
	if minRanks < 1 {
		minRanks = 1
	}
	p := &FaultPlan{}
	live := ranks
	for it := 1; it < iters; it++ {
		if live <= minRanks {
			break
		}
		s := seed ^ uint64(it)*0x5851F42D4C957F2D
		splitmix64(&s)
		if float64(splitmix64(&s)>>11)/(1<<53) >= rate {
			continue
		}
		p.Events = append(p.Events, FaultEvent{
			Iter: it,
			Kind: RankFail,
			Rank: int(splitmix64(&s) % uint64(live)),
		})
		live--
	}
	return p
}

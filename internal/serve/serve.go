// Package serve models the online inference tier over a trained DLRM: a
// front-end dispatcher batches individual click-prediction requests under a
// latency SLO and spreads the batches across model replicas, each replica a
// socket of the same simulated cluster the training side runs on.
//
// The paper's training story (hybrid parallelism: replicated MLPs,
// model-parallel embedding tables) dictates the serving story. Every
// replica holds the full MLPs but only its round-robin shard of the
// embedding tables, so serving one batch is: the shard owners stream their
// bag lookups, the remote owners' outputs fan in to the serving replica
// over the fabric (comm.FanIn — a request-scoped gather, not an SPMD
// collective), and the replica runs the dense forward. All of it is priced
// on the virtual clock by the same perfmodel/fabric/cluster stack as
// training, so serving latencies and training iteration times are in the
// same currency — and, with Contention enabled, serving fan-ins contend
// for fabric links like any other in-flight transfer.
//
// The simulator is a single-threaded discrete-event loop, deterministic by
// construction: arrivals are a counter-based Poisson stream (a pure
// function of Seed and request index), dispatch is max-batch/max-wait,
// replica choice is least-loaded with lowest-id tie-break, and SLO
// shedding is an arrival-prefix fixed point. Run with a functional model
// (RunCfg + Dataset) additionally computes every served request's click
// probability through core.Predictor replicas — bit-identical to the same
// request through the full single-socket model, which the parity tests
// pin.
package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embstore"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// Policy is the dispatcher's batching rule.
type Policy struct {
	// MaxBatch dispatches the queue as soon as it holds this many
	// requests. Must be at least 1; 1 disables batching.
	MaxBatch int
	// MaxWait (seconds) bounds how long the oldest queued request may
	// wait before the queue is dispatched regardless of occupancy. 0
	// dispatches every request the moment it arrives.
	MaxWait float64
	// SLO (seconds) is the end-to-end latency objective. When positive,
	// the dispatcher sheds (drops) the oldest queued requests that could
	// not complete within SLO of their arrival, so no served request ever
	// exceeds it. 0 disables shedding: everything is served, however
	// late.
	SLO float64
}

// Name renders the policy for experiment tables, e.g. "B32/w2.0ms/slo25ms".
func (p Policy) Name() string {
	s := fmt.Sprintf("B%d/w%.1fms", p.MaxBatch, p.MaxWait*1e3)
	if p.SLO > 0 {
		s += fmt.Sprintf("/slo%.0fms", p.SLO*1e3)
	}
	return s
}

// Config describes one serving run: the model and cluster being priced,
// the batching policy, and the offered load.
type Config struct {
	// Cfg is the model whose serving cost is priced (tables, MLP shapes).
	Cfg core.Config
	// Replicas is the number of serving sockets; tables are sharded
	// round-robin across them exactly as training ranks shard
	// (core.TableOwner). At most Cfg.MaxRanks().
	Replicas int
	// Topo is the fabric connecting the replicas. Required when Replicas
	// > 1 (the embedding fan-in crosses it); ignored for a single
	// replica.
	Topo fabric.Topology
	// Socket is the per-replica socket model.
	Socket perfmodel.Socket
	// Backend selects the communication backend personality: CCL pins
	// CommCores out of the compute budget and runs at full fabric speed
	// with enough workers; MPI keeps all cores for compute but pays the
	// 1.5x single-threaded-progress slowdown on transfers — the same
	// trade as training (cluster.Config.CommSlowdown).
	Backend cluster.Backend
	// CommCores overrides the backend's communication-core count
	// (0 = backend default, 4 for CCL).
	CommCores int
	// CallOverhead overrides the per-batch framework cost in seconds
	// (0 = the cluster default, 25 µs).
	CallOverhead float64
	// Contention charges each batch's embedding fan-in against the shared
	// contention epoch, so concurrent batches stretch each other on
	// shared links. Off by default: fan-ins are then priced in isolation
	// and results are bit-reproducible run to run regardless of what else
	// the engine carried.
	Contention bool
	// EmbCacheBytes prices each replica's shard pulls through the tiered
	// embedding parameter store (internal/embstore): the Zipf head of the
	// lookup volume — the analytic hit rate of a per-replica cache this
	// many bytes large — streams at socket speed, the cold tail pays the
	// cold tier's latency and bandwidth. The same knob set as
	// core.DistConfig; 0 keeps today's all-in-RAM pricing, bit-identical.
	// When set, ColdTierBW must be set too.
	EmbCacheBytes int
	// ColdTierBW is the modeled cold-tier streaming bandwidth in bytes/s.
	// Only meaningful with EmbCacheBytes (core.DefaultColdTierBW is the
	// conventional value).
	ColdTierBW float64
	// ColdTierLat is the per-batch cold-tier access latency in seconds
	// (0 = core.DefaultColdTierLat). Only meaningful with EmbCacheBytes.
	ColdTierLat float64
	// EmbSkew is the Zipf exponent of the request traffic the hit rate is
	// computed under (0 = core.DefaultEmbSkew). Only meaningful with
	// EmbCacheBytes.
	EmbSkew float64

	// Policy is the dispatcher's batching rule.
	Policy Policy
	// OfferedQPS is the Poisson arrival rate, requests per second.
	OfferedQPS float64
	// Requests is how many requests to replay.
	Requests int
	// Seed drives the arrival stream and, in functional runs, the replica
	// model initialization.
	Seed int64

	// RunCfg, when set (with Dataset), runs the tier functionally: real
	// replica shard models are built (host-sized, typically a Scaled
	// config) and every served request's probability is computed through
	// core.Predictor. RunCfg.Tables must match Cfg.Tables so the
	// functional sharding matches the priced one.
	RunCfg *core.Config
	// Dataset supplies request features for functional runs: request k is
	// sample k of one Requests-sized batch.
	Dataset data.Dataset
	// Pools supplies the replicas' compute worker pools in functional
	// runs; nil creates a transient set per Run. Share one across a sweep
	// to keep worker teams warm.
	Pools *cluster.Pools
	// Workspaces carries the event-loop and staging buffers across runs;
	// nil allocates per Run. Share one across a sweep for steady-state
	// allocation-free serving.
	Workspaces *Workspaces
}

// Validate reports the first problem that would make the run panic or mean
// something other than intended. Run calls it; entry points that accept a
// Config should too.
func (c Config) Validate() error {
	if err := c.Cfg.Validate(); err != nil {
		return fmt.Errorf("serve: model config: %w", err)
	}
	if c.Replicas < 1 {
		return fmt.Errorf("serve: Replicas %d, need at least 1", c.Replicas)
	}
	if max := c.Cfg.MaxRanks(); c.Replicas > max {
		return fmt.Errorf("serve: %d replicas but %s shards at most %d ways (one table per replica minimum)", c.Replicas, c.Cfg.Name, max)
	}
	if c.Replicas > 1 {
		if c.Topo == nil {
			return fmt.Errorf("serve: %d replicas need a fabric topology for the embedding fan-in", c.Replicas)
		}
		if n := c.Topo.NumSockets(); n < c.Replicas {
			return fmt.Errorf("serve: topology %s has %d sockets, fewer than %d replicas", c.Topo.Name(), n, c.Replicas)
		}
	}
	if c.Backend != cluster.MPIBackend && c.Backend != cluster.CCLBackend {
		return fmt.Errorf("serve: unknown backend %v", c.Backend)
	}
	if c.CommCores < 0 {
		return fmt.Errorf("serve: negative CommCores %d", c.CommCores)
	}
	if cc := c.clusterConfig(); c.Socket.Cores > 0 && cc.CommCores >= c.Socket.Cores {
		return fmt.Errorf("serve: CommCores %d leaves no compute cores on a %d-core socket", cc.CommCores, c.Socket.Cores)
	}
	if c.CallOverhead < 0 {
		return fmt.Errorf("serve: negative CallOverhead %g", c.CallOverhead)
	}
	if c.EmbCacheBytes < 0 {
		return fmt.Errorf("serve: EmbCacheBytes=%d, want >= 0", c.EmbCacheBytes)
	}
	if c.ColdTierBW < 0 {
		return fmt.Errorf("serve: ColdTierBW=%v, want >= 0", c.ColdTierBW)
	}
	if c.ColdTierLat < 0 {
		return fmt.Errorf("serve: ColdTierLat=%v, want >= 0", c.ColdTierLat)
	}
	if c.EmbSkew < 0 {
		return fmt.Errorf("serve: EmbSkew=%v, want >= 0", c.EmbSkew)
	}
	if c.EmbCacheBytes > 0 && c.ColdTierBW == 0 {
		return fmt.Errorf("serve: EmbCacheBytes set without ColdTierBW — a tiered store needs a cold-tier bandwidth")
	}
	if c.EmbCacheBytes == 0 {
		if c.ColdTierBW != 0 {
			return fmt.Errorf("serve: ColdTierBW set without EmbCacheBytes — no tiered store to price")
		}
		if c.ColdTierLat != 0 {
			return fmt.Errorf("serve: ColdTierLat set without EmbCacheBytes — no tiered store to price")
		}
		if c.EmbSkew != 0 {
			return fmt.Errorf("serve: EmbSkew set without EmbCacheBytes — no tiered store to model")
		}
	}
	if c.Policy.MaxBatch < 1 {
		return fmt.Errorf("serve: Policy.MaxBatch %d, need at least 1", c.Policy.MaxBatch)
	}
	if c.Policy.MaxWait < 0 {
		return fmt.Errorf("serve: negative Policy.MaxWait %g", c.Policy.MaxWait)
	}
	if c.Policy.SLO < 0 {
		return fmt.Errorf("serve: negative Policy.SLO %g", c.Policy.SLO)
	}
	if !(c.OfferedQPS > 0) {
		return fmt.Errorf("serve: OfferedQPS %g, need > 0", c.OfferedQPS)
	}
	if c.Requests < 1 {
		return fmt.Errorf("serve: Requests %d, need at least 1", c.Requests)
	}
	if (c.RunCfg == nil) != (c.Dataset == nil) {
		return fmt.Errorf("serve: functional runs need both RunCfg and Dataset (got RunCfg=%v, Dataset=%v)", c.RunCfg != nil, c.Dataset != nil)
	}
	if c.RunCfg != nil {
		if err := c.RunCfg.Validate(); err != nil {
			return fmt.Errorf("serve: functional model config: %w", err)
		}
		if c.RunCfg.Tables != c.Cfg.Tables {
			return fmt.Errorf("serve: functional model has %d tables, priced model %d — shard layouts would diverge", c.RunCfg.Tables, c.Cfg.Tables)
		}
		if d := c.Dataset.DenseDim(); d != c.RunCfg.DenseIn {
			return fmt.Errorf("serve: dataset dense width %d, functional model wants %d", d, c.RunCfg.DenseIn)
		}
		if n := c.Dataset.NumTables(); n != c.RunCfg.Tables {
			return fmt.Errorf("serve: dataset has %d tables, functional model wants %d", n, c.RunCfg.Tables)
		}
	}
	return nil
}

// clusterConfig resolves the backend personality the cost model prices
// with (defaults applied).
func (c Config) clusterConfig() cluster.Config {
	return cluster.Config{
		Ranks:        c.Replicas,
		Topo:         c.Topo,
		Socket:       c.Socket,
		Backend:      c.Backend,
		CommCores:    c.CommCores,
		CallOverhead: c.CallOverhead,
		Contention:   c.Contention,
	}.WithDefaults()
}

// computeCores mirrors cluster.Rank.ComputeCores: CCL pins its
// communication cores out of the compute budget, MPI computes on all of
// them.
func (c Config) computeCores(cc cluster.Config) int {
	if cc.Backend == cluster.CCLBackend {
		return cc.Socket.Cores - cc.CommCores
	}
	return cc.Socket.Cores
}

// costModel prices one batch's service on a replica. All durations are
// virtual seconds.
type costModel struct {
	cc       cluster.Config
	cores    int
	slow     float64 // backend transfer slowdown, applied to the fan-in
	bot, top []int
	inter    float64 // interaction flops per sample
	lookups  int
	embDim   int
	owned    []int // tables owned per replica (round-robin)
	maxOwned int

	// Tiered embedding store pricing (Config.EmbCacheBytes): the hit
	// fraction of the busiest owner's lookup volume streams at socket
	// speed, the rest pays the cold tier.
	tiered  bool
	hit     float64
	coldBW  float64
	coldLat float64
}

func (c Config) newCostModel() costModel {
	cc := c.clusterConfig()
	cm := costModel{
		cc:      cc,
		cores:   c.computeCores(cc),
		slow:    cc.CommSlowdown(),
		bot:     c.Cfg.BotSizes(),
		top:     c.Cfg.TopSizes(),
		lookups: c.Cfg.Lookups,
		embDim:  c.Cfg.EmbDim,
		owned:   make([]int, c.Replicas),
	}
	if !c.Cfg.ConcatInteraction {
		s := float64(c.Cfg.Tables)
		cm.inter = (s + 1) * s / 2 * 2 * float64(c.Cfg.EmbDim)
	}
	for t := 0; t < c.Cfg.Tables; t++ {
		cm.owned[core.TableOwner(t, c.Replicas)]++
	}
	for _, n := range cm.owned {
		if n > cm.maxOwned {
			cm.maxOwned = n
		}
	}
	if c.EmbCacheBytes > 0 {
		cm.tiered = true
		cm.coldBW = c.ColdTierBW
		cm.coldLat = c.ColdTierLat
		if cm.coldLat == 0 {
			cm.coldLat = core.DefaultColdTierLat
		}
		skew := c.EmbSkew
		if skew == 0 {
			skew = core.DefaultEmbSkew
		}
		// The busiest owner paces the lookup phase; its tables' head mass
		// under the per-replica budget is the hit rate the split prices.
		busiest := 0
		for o, n := range cm.owned {
			if n == cm.maxOwned {
				busiest = o
				break
			}
		}
		var rows []int
		for t := 0; t < c.Cfg.Tables; t++ {
			if core.TableOwner(t, c.Replicas) == busiest {
				rows = append(rows, c.Cfg.Rows[t])
			}
		}
		cm.hit = embstore.HitRate(c.EmbCacheBytes, c.Cfg.EmbDim, rows, skew)
	}
	return cm
}

// lookupTime is the shard-owner phase: the busiest owner streams its bag
// lookups for b samples (owners work concurrently, so the max paces it).
// Under the tiered store the Zipf head streams from the hot cache at
// socket speed while the cold tail pays the cold tier's latency and
// bandwidth — cache hits vs cold-tier misses, priced per batch.
func (cm *costModel) lookupTime(b int) float64 {
	bytes := perfmodel.EmbeddingFwdBytes(cm.maxOwned, b, cm.lookups, cm.embDim)
	if !cm.tiered {
		return cm.cc.Socket.StreamTime(bytes, cm.cores)
	}
	return cm.cc.Socket.StreamTime(bytes*cm.hit, cm.cores) +
		cm.coldLat + bytes*(1-cm.hit)/cm.coldBW
}

// mlpTime is the dense forward on the serving replica: bottom MLP,
// interaction, top MLP for b samples. GemmTimeN's batch-dependent GEMM
// efficiency is what makes per-sample service time shrink with batch size
// — the entire reason the dispatcher batches.
func (cm *costModel) mlpTime(b int) float64 {
	flops := perfmodel.MLPPassFlops(cm.bot, b) + perfmodel.MLPPassFlops(cm.top, b) +
		cm.inter*float64(b)
	bytes := perfmodel.MLPPassBytes(cm.bot, b) + perfmodel.MLPPassBytes(cm.top, b)
	return cm.cc.Socket.GemmTimeN(flops, bytes, cm.cores, b)
}

// placeFanIn fills perSrc with the bytes each remote shard owner sends the
// serving replica r for a b-sample batch: its owned tables' bag outputs,
// b·E floats per table.
func (cm *costModel) placeFanIn(r, b int, perSrc []float64) {
	for o := range perSrc {
		if o == r || o >= len(cm.owned) {
			perSrc[o] = 0
			continue
		}
		perSrc[o] = float64(cm.owned[o]) * float64(b) * float64(cm.embDim) * 4
	}
}

// server is one Run's live state: cost model, fan-in pricer, contention
// engine, and (functionally) the replica models.
type server struct {
	c   Config
	cm  costModel
	ws  *Workspaces
	eng *cluster.Engine

	// functional state, nil in timing-only runs
	models []*core.Model
	preds  []*core.Predictor
	pools  *cluster.Pools
	ownPls bool
}

// serviceIso prices a b-sample batch on replica r in isolation (no
// contention epoch): framework call, shard lookups, fabric fan-in, dense
// forward. Used for the shedding fixed point and by ServiceTime.
func (s *server) serviceIso(r, b int) float64 {
	pre := s.cm.cc.CallOverhead + s.cm.lookupTime(b)
	fetch := 0.0
	if s.c.Replicas > 1 {
		s.cm.placeFanIn(r, b, s.ws.perSrc)
		fetch = s.ws.fanin.Time(r, s.ws.perSrc) * s.cm.slow
	}
	return pre + fetch + s.cm.mlpTime(b)
}

// service prices the batch for real, registering the fan-in on the
// contention epoch at its actual start time. With Contention off this is
// exactly serviceIso.
func (s *server) service(r, b int, start float64) float64 {
	pre := s.cm.cc.CallOverhead + s.cm.lookupTime(b)
	fetch := 0.0
	if s.c.Replicas > 1 {
		s.cm.placeFanIn(r, b, s.ws.perSrc)
		fetch = s.ws.fanin.TimeOn(s.eng, r, s.ws.perSrc, start+pre) * s.cm.slow
	}
	return pre + fetch + s.cm.mlpTime(b)
}

// ServiceTime returns the isolated service time of one b-sample batch on
// the worst-placed replica: the latency floor a request in a b-batch pays,
// and the capacity anchor (peak throughput ≈ Replicas·b/ServiceTime(b)).
// Drivers use it to derive SLOs and offered-load sweeps from the config
// itself. It allocates; it is not for the event loop.
func (c Config) ServiceTime(b int) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	s := &server{c: c, cm: c.newCostModel(), ws: NewWorkspaces()}
	s.ws.prepare(c)
	worst := 0.0
	for r := 0; r < c.Replicas; r++ {
		if t := s.serviceIso(r, b); t > worst {
			worst = t
		}
	}
	return worst, nil
}

// Result is one serving run's outcome. All times are virtual seconds.
type Result struct {
	Policy     Policy
	OfferedQPS float64

	Requests int // offered
	Served   int // completed within policy
	Shed     int // dropped by SLO shedding
	Batches  int // dispatched (non-empty) batches

	MeanBatch float64 // Served / Batches
	Makespan  float64 // first arrival to last completion
	// Throughput is served requests per second of makespan — the
	// sustained rate, saturating at the capacity ServiceTime implies.
	Throughput float64

	// Latency quantiles over served requests (arrival to batch
	// completion), nearest-rank on the sorted sample.
	P50, P95, P99, Max float64
	// Latencies holds every served request's latency, sorted ascending —
	// the sample the quantiles are read from.
	Latencies []float64

	// Preds, in functional runs, holds request k's click probability at
	// index k, NaN where the request was shed. Nil in timing-only runs.
	Preds []float32
}

// quantile reads the nearest-rank p-quantile from the sorted sample.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// pending is one queued request.
type pending struct {
	id  int
	arr float64
}

// Run replays the configured request stream through the serving tier and
// returns its latency/throughput profile. Deterministic: the result is a
// pure function of the Config (workspace reuse and pool sharing included).
func Run(c Config) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &server{c: c, cm: c.newCostModel(), ws: c.Workspaces}
	if s.ws == nil {
		s.ws = NewWorkspaces()
	}
	s.ws.prepare(c)
	s.eng = cluster.NewEngine(c.clusterConfig())
	res := &Result{Policy: c.Policy, OfferedQPS: c.OfferedQPS, Requests: c.Requests}

	if c.RunCfg != nil {
		s.pools = c.Pools
		if s.pools == nil {
			s.pools = cluster.NewPools()
			s.ownPls = true
		}
		s.models = make([]*core.Model, c.Replicas)
		s.preds = make([]*core.Predictor, c.Replicas)
		for r := 0; r < c.Replicas; r++ {
			if c.Replicas == 1 {
				s.models[r] = core.NewModel(*c.RunCfg, 1, c.Seed)
			} else {
				s.models[r] = core.NewModelShard(*c.RunCfg, 1, c.Seed, r, c.Replicas)
			}
			s.preds[r] = core.NewPredictor(s.models[r], s.pools.Get(r, s.cm.cores))
		}
		res.Preds = make([]float32, c.Requests)
		nan := float32(math.NaN())
		for i := range res.Preds {
			res.Preds[i] = nan
		}
		if s.ownPls {
			defer s.pools.Close()
		}
	}

	queue := s.ws.queue[:0]
	repFree := s.ws.repFree
	lats := s.ws.lat[:0]
	var firstArr, lastDone float64
	servedSum := 0

	dispatch := func(t float64) {
		b := len(queue)
		// Least-loaded replica, lowest id on ties.
		r := 0
		for j := 1; j < c.Replicas; j++ {
			if repFree[j] < repFree[r] {
				r = j
			}
		}
		start := t
		if repFree[r] > start {
			start = repFree[r]
		}
		// SLO shedding: drop the arrival prefix that cannot finish in
		// time. Dropping shrinks the batch, which shrinks the service
		// time, so this is an increase-only fixed point on the drop
		// count; arrivals are ascending, so survivors form a suffix.
		d := 0
		if c.Policy.SLO > 0 {
			for d < b {
				done := start + s.serviceIso(r, b-d)
				if done-queue[d].arr <= c.Policy.SLO {
					break
				}
				d++
			}
		}
		if bb := b - d; bb > 0 {
			done := start + s.service(r, bb, start)
			// Contention can stretch the real fan-in past the isolated
			// estimate; requests the stretch pushed over the deadline are
			// dropped after the fact (the transfer already happened —
			// only the answer is discarded).
			if c.Policy.SLO > 0 {
				for d < b && done-queue[d].arr > c.Policy.SLO {
					d++
				}
			}
			repFree[r] = done
			if done > lastDone {
				lastDone = done
			}
			if bb = b - d; bb > 0 {
				res.Batches++
				servedSum += bb
				for _, q := range queue[d:] {
					lats = append(lats, done-q.arr)
				}
				if s.preds != nil {
					s.evalBatch(r, queue[d].id, queue[b-1].id+1, res.Preds)
				}
			}
		}
		res.Shed += d
		queue = queue[:0]
	}

	arr := 0.0
	for i := 0; i < c.Requests; i++ {
		arr += interarrival(c.Seed, i, c.OfferedQPS)
		if i == 0 {
			firstArr = arr
		}
		// Deadlines that expired before this arrival fire first.
		for len(queue) > 0 && queue[0].arr+c.Policy.MaxWait <= arr {
			dispatch(queue[0].arr + c.Policy.MaxWait)
		}
		queue = append(queue, pending{i, arr})
		if len(queue) >= c.Policy.MaxBatch {
			dispatch(arr)
		} else if c.Policy.MaxWait == 0 {
			dispatch(arr)
		}
	}
	for len(queue) > 0 {
		dispatch(queue[0].arr + c.Policy.MaxWait)
	}

	s.ws.queue = queue
	s.ws.lat = lats

	res.Served = servedSum
	if res.Batches > 0 {
		res.MeanBatch = float64(servedSum) / float64(res.Batches)
	}
	if lastDone > firstArr {
		res.Makespan = lastDone - firstArr
	}
	if res.Makespan > 0 {
		res.Throughput = float64(res.Served) / res.Makespan
	}
	sort.Float64s(lats)
	res.Latencies = append([]float64(nil), lats...)
	res.P50 = quantile(lats, 0.50)
	res.P95 = quantile(lats, 0.95)
	res.P99 = quantile(lats, 0.99)
	if n := len(lats); n > 0 {
		res.Max = lats[n-1]
	}
	return res, nil
}

// evalBatch computes probabilities for requests [k0, k1) (samples k0..k1 of
// the one Requests-wide batch) on replica r: each shard owner runs its own
// tables' bag lookups into the serving replica's staging rows, then the
// replica runs the dense forward. BN=1 replicas make every probability
// bit-identical to the same sample through the full single-socket model,
// whatever batch it rode in.
func (s *server) evalBatch(r, k0, k1 int, preds []float32) {
	rep := s.ws.reps[r]
	bb := k1 - k0
	s.c.Dataset.FillRange(0, s.c.Requests, k0, k1, &rep.mb)
	rows := s.preds[r].EmbOut(bb)
	for t := 0; t < s.c.Cfg.Tables; t++ {
		o := core.TableOwner(t, s.c.Replicas)
		s.models[o].Tables[t].Forward(s.preds[o].Pool, rep.mb.Sparse[t], rows[t])
	}
	out := rep.out[:bb]
	s.preds[r].PredictDense(rep.mb.Dense, rows, out)
	copy(preds[k0:k1], out)
}

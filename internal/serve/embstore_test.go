// Tests for the tiered embedding-store pricing of replica shard pulls:
// validation of the knob set, monotone service time in the cache budget
// and skew, and the zero-value path staying bit-identical.
package serve

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// tieredConfig returns the timing baseline with a tiered store of the
// given budget.
func tieredConfig(budget int, skew float64) Config {
	c := timingConfig()
	c.OfferedQPS = 1000
	c.EmbCacheBytes = budget
	if budget > 0 {
		c.ColdTierBW = core.DefaultColdTierBW
		c.EmbSkew = skew
	}
	return c
}

func TestServeValidateEmbStore(t *testing.T) {
	if err := tieredConfig(256<<20, 1.05).Validate(); err != nil {
		t.Fatalf("tiered baseline rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative emb cache", func(c *Config) { c.EmbCacheBytes = -1 }, "EmbCacheBytes=-1"},
		{"cache without cold bw", func(c *Config) { c.EmbCacheBytes = 64 << 20 }, "without ColdTierBW"},
		{"negative cold bw", func(c *Config) { c.EmbCacheBytes = 64 << 20; c.ColdTierBW = -2 }, "ColdTierBW"},
		{"negative cold latency", func(c *Config) {
			c.EmbCacheBytes = 64 << 20
			c.ColdTierBW = core.DefaultColdTierBW
			c.ColdTierLat = -1e-6
		}, "ColdTierLat"},
		{"negative skew", func(c *Config) {
			c.EmbCacheBytes = 64 << 20
			c.ColdTierBW = core.DefaultColdTierBW
			c.EmbSkew = -1
		}, "EmbSkew"},
		{"cold bw without cache", func(c *Config) { c.ColdTierBW = 8e9 }, "without EmbCacheBytes"},
		{"cold latency without cache", func(c *Config) { c.ColdTierLat = 20e-6 }, "without EmbCacheBytes"},
		{"skew without cache", func(c *Config) { c.EmbSkew = 1.05 }, "without EmbCacheBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := timingConfig()
			c.OfferedQPS = 1000
			tc.mut(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTieredServiceTimeMonotone pins the pricing shape: any tiered config
// is at least as slow as the in-RAM baseline (a cache over RAM cannot beat
// RAM), growing the budget never slows a batch, hotter skew never slows a
// batch, and an all-cold store is strictly slower than a hot-budget one.
func TestTieredServiceTimeMonotone(t *testing.T) {
	const b = 32
	svc := func(c Config) float64 {
		t.Helper()
		s, err := c.ServiceTime(b)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	inRAM := svc(tieredConfig(0, 0))
	var prev float64
	for i, budget := range []int{4 << 10, 64 << 20, 1 << 30, 8 << 30} {
		got := svc(tieredConfig(budget, 1.05))
		if got < inRAM {
			t.Errorf("budget=%d: tiered service %v beats in-RAM %v", budget, got, inRAM)
		}
		if i > 0 && got > prev {
			t.Errorf("budget=%d: service %v slower than smaller budget's %v", budget, got, prev)
		}
		prev = got
	}
	if hot, cold := svc(tieredConfig(8<<30, 1.05)), svc(tieredConfig(4<<10, 1.05)); hot >= cold {
		t.Errorf("hot budget service %v does not beat all-cold %v", hot, cold)
	}
	prev = svc(tieredConfig(256<<20, 0.8))
	for _, skew := range []float64{1.05, 1.2} {
		got := svc(tieredConfig(256<<20, skew))
		if got > prev {
			t.Errorf("skew=%v: service %v slower than lower skew's %v", skew, got, prev)
		}
		prev = got
	}
}

// TestTieredServeRunDeterministic runs the full dispatcher with tiered
// pricing twice and demands identical results — and a strictly worse p50
// than the untiered run at the same offered load (the cold tail is paid on
// every batch).
func TestTieredServeRunDeterministic(t *testing.T) {
	base := timingConfig()
	base.Requests = 200
	base.OfferedQPS = loadQPS(t, base, 0.8)
	tiered := base
	tiered.EmbCacheBytes = 64 << 20
	tiered.ColdTierBW = core.DefaultColdTierBW
	a, b := mustRun(t, tiered), mustRun(t, tiered)
	if a.P50 != b.P50 || a.P99 != b.P99 || a.Served != b.Served {
		t.Fatalf("tiered run not deterministic: p50 %v/%v p99 %v/%v served %d/%d",
			a.P50, b.P50, a.P99, b.P99, a.Served, b.Served)
	}
	plain := mustRun(t, base)
	if a.P50 <= plain.P50 {
		t.Errorf("tiered p50 %v not above in-RAM p50 %v", a.P50, plain.P50)
	}
}

package serve

import (
	"testing"

	"repro/internal/cluster"
)

// Steady-state allocation discipline, by differencing: per-run constants
// (engine, result, replica models in functional runs) appear in both the
// short and long run and cancel; anything the per-request path allocates
// would show up in the difference. Counter-based arrivals make the short
// run an exact prefix of the long one, so both see the same batch-size
// trajectory and the workspace warms identically.

func serveAllocProbe(t *testing.T, c Config, short, long int) {
	t.Helper()
	run := func(n int) {
		c2 := c
		c2.Requests = n
		if _, err := Run(c2); err != nil {
			t.Fatal(err)
		}
	}
	run(long) // warm the shared workspace at the larger size
	shortAllocs := testing.AllocsPerRun(5, func() { run(short) })
	longAllocs := testing.AllocsPerRun(5, func() { run(long) })
	if diff := longAllocs - shortAllocs; diff != 0 {
		t.Fatalf("steady state leaks: long run %v allocs, short %v (+%v across %d extra requests)",
			longAllocs, shortAllocs, diff, long-short)
	}
}

func TestServeZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	c := timingConfig()
	c.Policy.SLO = 30e-3
	c.OfferedQPS = loadQPS(t, c, 1.5)
	c.Workspaces = NewWorkspaces()
	serveAllocProbe(t, c, 200, 800)
}

func TestServeFunctionalZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	c := functionalConfig(8)
	c.Workspaces = NewWorkspaces()
	c.Pools = cluster.NewPools()
	defer c.Pools.Close()
	serveAllocProbe(t, c, 32, 96)
}

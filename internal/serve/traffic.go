package serve

import "math"

// Counter-based Poisson arrivals.
//
// The request stream follows the data package's per-sample RNG discipline:
// every interarrival gap is a pure function of (seed, request index), so
// arrival time k never depends on having generated 0..k-1 in order, runs
// are bit-reproducible whatever the workspace carried before, and two runs
// over different request counts see the same arrival prefix — the property
// the differencing allocation tests lean on.

// mix64 is one splitmix64 output round over a fixed state.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// interarrival returns the exponential gap (seconds) in front of request i
// of a Poisson stream with the given rate.
func interarrival(seed int64, i int, qps float64) float64 {
	// Two mixing rounds so adjacent request indices land in unrelated
	// states, mirroring data.streamSeed.
	u := mix64(mix64(uint64(seed)^0x53657276) + uint64(i))
	// 53-bit mantissa → uniform in [0, 1); -log1p(-u) is then finite and
	// non-negative.
	f := float64(u>>11) / (1 << 53)
	return -math.Log1p(-f) / qps
}

package serve

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
)

// timingConfig is the paper-scale serving baseline: the MLPerf model
// sharded over 8 CLX sockets of the OPA cluster, CCL-style backend.
func timingConfig() Config {
	return Config{
		Cfg:      core.MLPerf,
		Replicas: 8,
		Topo:     fabric.NewPrunedFatTree(8, 12.5e9),
		Socket:   perfmodel.CLX8280,
		Backend:  cluster.CCLBackend,
		Policy:   Policy{MaxBatch: 32, MaxWait: 2e-3},
		Requests: 400,
	}
}

// loadQPS returns an offered rate at `factor` times the modeled capacity
// of c's policy batch size.
func loadQPS(t *testing.T, c Config, factor float64) float64 {
	t.Helper()
	probe := c
	probe.OfferedQPS = 1 // Validate needs a positive rate
	svc, err := probe.ServiceTime(c.Policy.MaxBatch)
	if err != nil {
		t.Fatal(err)
	}
	return factor * float64(c.Replicas) * float64(c.Policy.MaxBatch) / svc
}

func mustRun(t *testing.T, c Config) *Result {
	t.Helper()
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestServeValidate(t *testing.T) {
	base := timingConfig()
	base.OfferedQPS = 1000
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero replicas", func(c *Config) { c.Replicas = 0 }, "Replicas"},
		{"too many replicas", func(c *Config) { c.Replicas = 27; c.Topo = fabric.NewPrunedFatTree(27, 12.5e9) }, "shards at most"},
		{"nil topo", func(c *Config) { c.Topo = nil }, "topology"},
		{"topo too small", func(c *Config) { c.Topo = fabric.NewPrunedFatTree(4, 12.5e9) }, "fewer than"},
		{"bad backend", func(c *Config) { c.Backend = cluster.Backend(99) }, "backend"},
		{"negative comm cores", func(c *Config) { c.CommCores = -1 }, "CommCores"},
		{"comm cores eat socket", func(c *Config) { c.CommCores = perfmodel.CLX8280.Cores }, "no compute cores"},
		{"negative overhead", func(c *Config) { c.CallOverhead = -1e-6 }, "CallOverhead"},
		{"zero max batch", func(c *Config) { c.Policy.MaxBatch = 0 }, "MaxBatch"},
		{"negative max wait", func(c *Config) { c.Policy.MaxWait = -1 }, "MaxWait"},
		{"negative slo", func(c *Config) { c.Policy.SLO = -1 }, "SLO"},
		{"zero qps", func(c *Config) { c.OfferedQPS = 0 }, "OfferedQPS"},
		{"zero requests", func(c *Config) { c.Requests = 0 }, "Requests"},
		{"dataset without runcfg", func(c *Config) { c.Dataset = serveDataset(functionalModel()) }, "both RunCfg and Dataset"},
		{"broken model", func(c *Config) { c.Cfg.Tables = 0 }, "model config"},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, runErr := Run(c); runErr == nil || runErr.Error() != err.Error() {
			t.Errorf("%s: Run error %v, want the Validate error %v", tc.name, runErr, err)
		}
	}
}

// TestServeDeterministic pins that a run is a pure function of its config:
// a fresh-workspace run and a reused-workspace rerun agree bit for bit.
func TestServeDeterministic(t *testing.T) {
	c := timingConfig()
	c.Policy.SLO = 30e-3
	c.OfferedQPS = loadQPS(t, c, 1.5)
	ws := NewWorkspaces()
	c.Workspaces = ws
	a := mustRun(t, c)
	warm := mustRun(t, c) // same workspace, now warm
	c.Workspaces = NewWorkspaces()
	fresh := mustRun(t, c)
	for _, got := range []*Result{warm, fresh} {
		if got.Served != a.Served || got.Shed != a.Shed || got.Batches != a.Batches {
			t.Fatalf("counts diverge: %+v vs %+v", got, a)
		}
		if got.Throughput != a.Throughput || got.P50 != a.P50 || got.P99 != a.P99 || got.Max != a.Max {
			t.Fatalf("stats diverge: %+v vs %+v", got, a)
		}
		if len(got.Latencies) != len(a.Latencies) {
			t.Fatalf("latency sample sizes diverge: %d vs %d", len(got.Latencies), len(a.Latencies))
		}
		for i := range a.Latencies {
			if got.Latencies[i] != a.Latencies[i] {
				t.Fatalf("latency %d diverges: %v vs %v", i, got.Latencies[i], a.Latencies[i])
			}
		}
	}
}

// TestServeSLONeverExceeded pins the shedding guarantee across under- and
// overload: no served request's latency exceeds the SLO, and at overload
// the bound binds (requests are shed, and the same load without an SLO
// blows through it).
func TestServeSLONeverExceeded(t *testing.T) {
	base := timingConfig()
	svc, err := func() (float64, error) {
		p := base
		p.OfferedQPS = 1
		return p.ServiceTime(base.Policy.MaxBatch)
	}()
	if err != nil {
		t.Fatal(err)
	}
	slo := 2 * (base.Policy.MaxWait + svc)
	for _, factor := range []float64{0.5, 1.5, 3} {
		c := base
		// Long enough for overload to build a real backlog: at 3x the
		// untreated queueing delay is several times the SLO.
		c.Requests = 4000
		c.Policy.SLO = slo
		c.OfferedQPS = loadQPS(t, c, factor)
		res := mustRun(t, c)
		if res.Served == 0 {
			t.Fatalf("load %.1fx: nothing served", factor)
		}
		if res.Max > slo {
			t.Fatalf("load %.1fx: max latency %.3gms exceeds SLO %.3gms", factor, res.Max*1e3, slo*1e3)
		}
		if factor >= 3 && res.Shed == 0 {
			t.Errorf("load %.1fx: expected shedding at overload", factor)
		}
		if factor >= 3 {
			free := c
			free.Policy.SLO = 0
			unbounded := mustRun(t, free)
			if unbounded.Max <= slo {
				t.Errorf("load %.1fx without SLO: max %.3gms never exceeds %.3gms — the bound is vacuous here", factor, unbounded.Max*1e3, slo*1e3)
			}
			if unbounded.Shed != 0 || unbounded.Served != free.Requests {
				t.Errorf("no-SLO run shed %d of %d requests", unbounded.Shed, free.Requests)
			}
		}
	}
}

// TestServePeakThroughputMonotone pins the reason the dispatcher batches:
// at saturation, a larger max-batch strictly increases sustained
// throughput (per-sample GEMM efficiency and call-overhead amortization).
func TestServePeakThroughputMonotone(t *testing.T) {
	prev := 0.0
	for _, b := range []int{1, 8, 32, 128} {
		c := timingConfig()
		c.Policy = Policy{MaxBatch: b, MaxWait: 5e-3}
		// A multiple of every batch size: no ragged tail waiting out
		// MaxWait to skew the short-run makespan.
		c.Requests = 30 * 128
		c.OfferedQPS = loadQPS(t, c, 3) // saturate
		res := mustRun(t, c)
		if res.Throughput <= prev {
			t.Fatalf("MaxBatch %d: throughput %.0f qps, not above the smaller MaxBatch %.0f", b, res.Throughput, prev)
		}
		prev = res.Throughput
	}
}

// TestServeMaxWaitBound pins the other half of the policy: under light
// load, no request waits past MaxWait plus one worst-case service.
func TestServeMaxWaitBound(t *testing.T) {
	c := timingConfig()
	c.OfferedQPS = loadQPS(t, c, 0.2)
	res := mustRun(t, c)
	probe := c
	svc, err := probe.ServiceTime(c.Policy.MaxBatch)
	if err != nil {
		t.Fatal(err)
	}
	bound := c.Policy.MaxWait + svc + 1e-12
	if res.Max > bound {
		t.Fatalf("light load: max latency %.4gms exceeds MaxWait+service %.4gms", res.Max*1e3, bound*1e3)
	}
	if res.Served != c.Requests || res.Shed != 0 {
		t.Fatalf("light load without SLO: served %d shed %d of %d", res.Served, res.Shed, c.Requests)
	}
}

// TestServiceTimeShape sanity-checks the cost anchor drivers build sweeps
// from: positive, increasing in batch size, sublinear per sample.
func TestServiceTimeShape(t *testing.T) {
	c := timingConfig()
	c.OfferedQPS = 1
	s1, err := c.ServiceTime(1)
	if err != nil {
		t.Fatal(err)
	}
	s64, err := c.ServiceTime(64)
	if err != nil {
		t.Fatal(err)
	}
	if !(s1 > 0) || !(s64 > s1) {
		t.Fatalf("service times not increasing: s(1)=%g s(64)=%g", s1, s64)
	}
	if s64/64 >= s1 {
		t.Fatalf("no batching economy: per-sample s(64)=%g not below s(1)=%g", s64/64, s1)
	}
	if math.IsNaN(s1) || math.IsInf(s64, 0) {
		t.Fatalf("degenerate service times: %g %g", s1, s64)
	}
}

package serve

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fabric"
	"repro/internal/par"
	"repro/internal/perfmodel"
)

// functionalModel is the host-sized model functional runs execute: the
// Small config scaled to fit, BN=1 so probabilities are batch-size
// invariant.
func functionalModel() core.Config {
	return core.Small.Scaled(1.0 / 64)
}

func serveDataset(cfg core.Config) data.Dataset {
	return data.NewClickLog(9, cfg.DenseIn, cfg.Rows, cfg.Lookups)
}

// functionalConfig prices the full Small model while executing its scaled
// sibling across 3 replicas.
func functionalConfig(b int) Config {
	run := functionalModel()
	return Config{
		Cfg:        core.Small,
		Replicas:   3,
		Topo:       fabric.NewPrunedFatTree(3, 12.5e9),
		Socket:     perfmodel.CLX8280,
		Backend:    cluster.CCLBackend,
		Policy:     Policy{MaxBatch: b, MaxWait: 5e-3},
		OfferedQPS: 1e9, // near-simultaneous arrivals: every batch fills
		Requests:   32,
		Seed:       17,
		RunCfg:     &run,
		Dataset:    serveDataset(run),
	}
}

// TestServeFunctionalParity pins the functional guarantee: whatever batch a
// request rides in (1, B/2, or B), and whichever backend prices the run,
// its served probability is bit-identical to the same sample through the
// full single-socket model.
func TestServeFunctionalParity(t *testing.T) {
	run := functionalModel()
	ds := serveDataset(run)
	full := core.NewPredictor(core.NewModel(run, 1, 17), par.Default)
	const R = 32
	var mb data.MiniBatch
	ref := make([]float32, R)
	for k := 0; k < R; k++ {
		ds.FillRange(0, R, k, k+1, &mb)
		full.PredictInto(&mb, ref[k:k+1])
	}
	const B = 8
	for _, b := range []int{1, B / 2, B} {
		var lastPreds []float32
		for _, backend := range []cluster.Backend{cluster.CCLBackend, cluster.MPIBackend} {
			c := functionalConfig(b)
			c.Backend = backend
			res := mustRun(t, c)
			if res.Served != c.Requests || res.Shed != 0 {
				t.Fatalf("b=%d %v: served %d shed %d of %d", b, backend, res.Served, res.Shed, c.Requests)
			}
			if want := c.Requests / b; res.Batches != want {
				t.Fatalf("b=%d %v: %d batches, want %d full ones", b, backend, res.Batches, want)
			}
			for k := 0; k < R; k++ {
				if res.Preds[k] != ref[k] {
					t.Fatalf("b=%d %v request %d: served %v, full model %v", b, backend, k, res.Preds[k], ref[k])
				}
			}
			if lastPreds != nil {
				for k := range lastPreds {
					if res.Preds[k] != lastPreds[k] {
						t.Fatalf("b=%d: predictions differ across backends at request %d", b, k)
					}
				}
			}
			lastPreds = res.Preds
		}
	}
}

// TestServeFunctionalShedMarksNaN pins the Preds contract: shed requests
// stay NaN, served ones do not.
func TestServeFunctionalShedMarksNaN(t *testing.T) {
	c := functionalConfig(8)
	// A hopeless SLO with a huge offered rate: only the head of each
	// batch window can ever make it, the rest shed.
	svc, err := c.ServiceTime(1)
	if err != nil {
		t.Fatal(err)
	}
	c.Policy.SLO = 1.5 * svc
	res := mustRun(t, c)
	if res.Shed == 0 {
		t.Fatal("expected shedding under a tight SLO at overload")
	}
	if res.Served+res.Shed != c.Requests {
		t.Fatalf("served %d + shed %d != offered %d", res.Served, res.Shed, c.Requests)
	}
	nan, served := 0, 0
	for _, p := range res.Preds {
		if math.IsNaN(float64(p)) {
			nan++
		} else {
			served++
			if p < 0 || p > 1 {
				t.Fatalf("served probability %v out of range", p)
			}
		}
	}
	if nan != res.Shed || served != res.Served {
		t.Fatalf("Preds mark %d NaN / %d served, result says %d / %d", nan, served, res.Shed, res.Served)
	}
}

//go:build !race

package serve

// raceEnabled mirrors race_on_test.go for plain builds.
const raceEnabled = false

package serve

import (
	"repro/internal/comm"
	"repro/internal/data"
)

// Workspaces carries the serving tier's reusable buffers across runs: the
// dispatcher queue, per-replica busy-until clock, the latency sample, the
// fan-in pricer's flow scratch, and per-replica functional staging
// (minibatch and output buffers). Replica models are NOT cached — they
// belong to a run's RunCfg, exactly like core.DistWorkspaces rebuilds
// models per run — so sharing one Workspaces across a sweep is always
// sound and makes steady-state serving allocation-free (pinned by the
// differencing test).
type Workspaces struct {
	queue   []pending
	repFree []float64
	lat     []float64
	perSrc  []float64
	fanin   comm.FanIn
	reps    []*replicaSpace
}

// replicaSpace is one replica's functional staging.
type replicaSpace struct {
	mb  data.MiniBatch
	out []float32
}

// NewWorkspaces returns an empty workspace set; buffers grow on first use.
func NewWorkspaces() *Workspaces { return &Workspaces{} }

// prepare sizes the workspace for one run's config.
func (ws *Workspaces) prepare(c Config) {
	if cap(ws.queue) < c.Policy.MaxBatch {
		ws.queue = make([]pending, 0, c.Policy.MaxBatch)
	}
	if cap(ws.repFree) < c.Replicas {
		ws.repFree = make([]float64, c.Replicas)
	}
	ws.repFree = ws.repFree[:c.Replicas]
	for i := range ws.repFree {
		ws.repFree[i] = 0
	}
	if cap(ws.perSrc) < c.Replicas {
		ws.perSrc = make([]float64, c.Replicas)
	}
	ws.perSrc = ws.perSrc[:c.Replicas]
	ws.fanin.Topo = c.Topo
	if c.RunCfg != nil {
		for len(ws.reps) < c.Replicas {
			ws.reps = append(ws.reps, &replicaSpace{})
		}
		for _, rep := range ws.reps[:c.Replicas] {
			if cap(rep.out) < c.Policy.MaxBatch {
				rep.out = make([]float32, c.Policy.MaxBatch)
			}
			rep.out = rep.out[:c.Policy.MaxBatch]
		}
	}
}

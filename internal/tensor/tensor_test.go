package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(3, 4)
	d.Set(1, 2, 5)
	if d.At(1, 2) != 5 {
		t.Fatal("Set/At mismatch")
	}
	if got := d.Row(1)[2]; got != 5 {
		t.Fatal("Row aliasing broken")
	}
	d.Fill(2)
	for _, v := range d.Data {
		if v != 2 {
			t.Fatal("Fill failed")
		}
	}
	d.Zero()
	if d.At(0, 0) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestDenseCloneIndependent(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(0, 0, 1)
	c := d.Clone()
	c.Set(0, 0, 9)
	if d.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestDenseTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(5, 7)
	d.Randomize(rng, 1)
	tr := d.Transpose()
	for r := 0; r < 5; r++ {
		for c := 0; c < 7; c++ {
			if d.At(r, c) != tr.At(c, r) {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
	back := tr.Transpose()
	if MaxAbsDiff(d, back) != 0 {
		t.Fatal("double transpose must be identity")
	}
}

func TestAllClose(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 2)
	a.Fill(1)
	b.Fill(1.0000001)
	if !AllClose(a, b, 1e-5, 1e-5) {
		t.Fatal("near-equal matrices reported different")
	}
	b.Fill(2)
	if AllClose(a, b, 1e-5, 1e-5) {
		t.Fatal("different matrices reported close")
	}
	c := NewDense(2, 3)
	if AllClose(a, c, 1, 1) {
		t.Fatal("shape mismatch must not be close")
	}
}

func TestActsPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, c, bn, bc int }{
		{8, 8, 2, 4}, {16, 32, 16, 8}, {64, 64, 8, 16}, {4, 4, 4, 4},
	} {
		d := NewDense(tc.n, tc.c)
		d.Randomize(rng, 1)
		a := PackActs(d, tc.bn, tc.bc)
		back := a.Unpack()
		if MaxAbsDiff(d, back) != 0 {
			t.Fatalf("round trip failed for %+v", tc)
		}
	}
}

func TestActsAtMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(12, 20)
	d.Randomize(rng, 1)
	a := PackActs(d, 4, 5)
	for n := 0; n < 12; n++ {
		for c := 0; c < 20; c++ {
			if a.At(n, c) != d.At(n, c) {
				t.Fatalf("Acts.At(%d,%d) mismatch", n, c)
			}
		}
	}
	a.Set(3, 7, 42)
	if a.At(3, 7) != 42 {
		t.Fatal("Acts.Set failed")
	}
}

func TestActsBlockLayout(t *testing.T) {
	// Element (n, c) must live in block (c/bc, n/bn) at (n%bn)*bc + c%bc.
	a := NewActs(8, 8, 4, 2)
	a.Set(5, 3, 1)
	blk := a.Block(1, 1) // cb=3/2=1, nb=5/4=1
	if blk[(5%4)*2+(3%2)] != 1 {
		t.Fatal("blocked layout formula violated")
	}
}

func TestWeightsPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ k, c, bk, bc int }{
		{8, 8, 4, 2}, {32, 16, 16, 8}, {64, 64, 16, 16},
	} {
		d := NewDense(tc.k, tc.c)
		d.Randomize(rng, 1)
		w := PackWeights(d, tc.bk, tc.bc)
		back := w.Unpack()
		if MaxAbsDiff(d, back) != 0 {
			t.Fatalf("round trip failed for %+v", tc)
		}
	}
}

func TestWeightsBlockLayout(t *testing.T) {
	// Element (k, c) lives in block (k/bk, c/bc) at (c%bc)*bk + k%bk.
	w := NewWeights(8, 8, 4, 2)
	w.Set(6, 5, 1)
	blk := w.Block(1, 2)
	if blk[(5%2)*4+(6%4)] != 1 {
		t.Fatal("weight block layout formula violated")
	}
}

func TestWeightsTransposeBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(16, 24)
	d.Randomize(rng, 1)
	w := PackWeights(d, 8, 4)
	wt := w.TransposeBlocked()
	if wt.K != 24 || wt.C != 16 || wt.BK != 4 || wt.BC != 8 {
		t.Fatalf("transposed dims wrong: %+v", wt)
	}
	for k := 0; k < 16; k++ {
		for c := 0; c < 24; c++ {
			if w.At(k, c) != wt.At(c, k) {
				t.Fatalf("transpose mismatch at (%d,%d)", k, c)
			}
		}
	}
}

func TestBlockedRoundTripProperty(t *testing.T) {
	// Property: pack/unpack is the identity for any matrix whose dims are
	// multiples of the block sizes.
	prop := func(seed int64, nbIdx, cbIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bns := []int{2, 4, 8}
		bcs := []int{2, 4, 8}
		bn := bns[int(nbIdx)%len(bns)]
		bc := bcs[int(cbIdx)%len(bcs)]
		n := bn * (1 + rng.Intn(4))
		c := bc * (1 + rng.Intn(4))
		d := NewDense(n, c)
		d.Randomize(rng, 10)
		if MaxAbsDiff(d, PackActs(d, bn, bc).Unpack()) != 0 {
			return false
		}
		return MaxAbsDiff(d, PackWeights(d, bn, bc).Unpack()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBadBlockingPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewActs(10, 8, 4, 4) },   // N not divisible
		func() { NewActs(8, 10, 4, 4) },   // C not divisible
		func() { NewWeights(8, 8, 0, 4) }, // zero block
		func() { NewDense(-1, 3) },        // negative dims
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestEnsureActsCapacityReuse pins the serving-tier contract: once a
// workspace tensor has been sized for the largest batch, alternating
// through smaller batch shapes reshapes in place — same backing array, no
// allocation — and the reshaped tensor is correct after a full overwrite.
func TestEnsureActsCapacityReuse(t *testing.T) {
	var buf *Acts
	big := EnsureActs(&buf, 32, 16, 4, 4)
	bigData := &big.Data[0]
	for _, n := range []int{4, 16, 8, 32, 12} {
		a := EnsureActs(&buf, n, 16, 4, 4)
		if a != big || &a.Data[0] != bigData {
			t.Fatalf("EnsureActs(n=%d) reallocated despite sufficient capacity", n)
		}
		if a.N != n || a.Nb != n/4 || len(a.Data) != n*16 {
			t.Fatalf("EnsureActs(n=%d) bad reshape: N=%d Nb=%d len=%d", n, a.N, a.Nb, len(a.Data))
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		EnsureActs(&buf, 8, 16, 4, 4)
		EnsureActs(&buf, 32, 16, 4, 4)
	})
	if allocs != 0 {
		t.Fatalf("EnsureActs alternating shapes: %v allocs, want 0", allocs)
	}
	// A reshape past capacity still allocates (and the old data survives
	// elsewhere untouched).
	grown := EnsureActs(&buf, 64, 16, 4, 4)
	if grown == big {
		t.Fatal("EnsureActs must allocate when capacity is exceeded")
	}
	// Round-trip correctness through a reshaped tensor.
	rng := rand.New(rand.NewSource(3))
	d := NewDense(12, 16)
	d.Randomize(rng, 5)
	a := EnsureActs(&buf, 12, 16, 4, 4)
	a.PackFrom(d)
	if MaxAbsDiff(d, a.Unpack()) != 0 {
		t.Fatal("reshaped Acts round-trip diverges")
	}
}

// Package tensor provides the dense and blocked tensor containers used by
// the MLP and embedding kernels. The blocked layouts follow §III-B of the
// paper: 2-D tensors are transformed to 4-D by blocking the minibatch
// dimension N with factor bn and the feature dimensions C and K with factors
// bc and bk, exposing locality and avoiding large power-of-two strides.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major 2-D float32 matrix. It is the "framework" layout the
// blocked kernels pack from and unpack to, and the layout used by the
// reference (naive) GEMMs.
type Dense struct {
	Rows, Cols int
	Data       []float32
}

// NewDense allocates a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (r, c).
func (d *Dense) At(r, c int) float32 { return d.Data[r*d.Cols+c] }

// Set stores v at element (r, c).
func (d *Dense) Set(r, c int, v float32) { d.Data[r*d.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (d *Dense) Row(r int) []float32 { return d.Data[r*d.Cols : (r+1)*d.Cols] }

// Fill sets every element to v.
func (d *Dense) Fill(v float32) {
	for i := range d.Data {
		d.Data[i] = v
	}
}

// Zero clears the matrix.
func (d *Dense) Zero() { d.Fill(0) }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// CopyFrom copies src into d; the shapes must match.
func (d *Dense) CopyFrom(src *Dense) {
	if d.Rows != src.Rows || d.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: copy shape mismatch %dx%d <- %dx%d", d.Rows, d.Cols, src.Rows, src.Cols))
	}
	copy(d.Data, src.Data)
}

// Randomize fills the matrix with values uniform in [-scale, scale] drawn
// from rng. Deterministic given the rng seed, which the training
// reproducibility tests rely on.
func (d *Dense) Randomize(rng *rand.Rand, scale float32) {
	for i := range d.Data {
		d.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Transpose returns a newly allocated transpose.
func (d *Dense) Transpose() *Dense {
	t := NewDense(d.Cols, d.Rows)
	for r := 0; r < d.Rows; r++ {
		base := r * d.Cols
		for c := 0; c < d.Cols; c++ {
			t.Data[c*d.Rows+r] = d.Data[base+c]
		}
	}
	return t
}

// MaxAbsDiff returns the max elementwise |a-b|; shapes must match.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether a and b agree elementwise within atol + rtol*|b|.
func AllClose(a, b *Dense, rtol, atol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		av, bv := float64(a.Data[i]), float64(b.Data[i])
		if math.Abs(av-bv) > atol+rtol*math.Abs(bv) {
			return false
		}
	}
	return true
}

package tensor

import "fmt"

// Acts is an activation tensor in the paper's [Cb][Nb][bn][bc] blocked
// layout (§III-B): the logical matrix is N×C (one row per sample), blocked
// into Cb×Nb tiles of bn×bc, with the feature-block index outermost. The
// same layout serves layer outputs: a layer's Y (logical N×K, stored
// [Kb][Nb][bn][bk]) is exactly the Acts tensor of the next layer.
//
// This layout, in contrast to earlier work, makes the backward-by-weights
// pass (where activations play the role weights play in forward) see the
// same favorable blocking as the forward pass.
type Acts struct {
	N, C   int // logical dims: N samples × C features
	BN, BC int // block sizes
	Nb, Cb int // block counts: Nb = N/BN, Cb = C/BC
	Data   []float32
}

// NewActs allocates a zeroed blocked activation tensor. N must be divisible
// by bn and C by bc; the paper's configs use power-of-two features and
// minibatches so the kernels do not carry remainder-tile code.
func NewActs(n, c, bn, bc int) *Acts {
	if bn <= 0 || bc <= 0 || n%bn != 0 || c%bc != 0 {
		panic(fmt.Sprintf("tensor: bad activation blocking N=%d C=%d bn=%d bc=%d", n, c, bn, bc))
	}
	return &Acts{
		N: n, C: c, BN: bn, BC: bc,
		Nb: n / bn, Cb: c / bc,
		Data: make([]float32, n*c),
	}
}

// EnsureActs returns *buf if it already has the requested blocked shape;
// on a shape change it reshapes the existing tensor in place when the
// backing storage has capacity for n*c elements, and only allocates a
// replacement when it does not — the shape-keyed workspace reuse every
// steady-state activation tensor goes through (see docs/PERF.md). The
// capacity reuse is what lets a serving-style caller alternate batch
// sizes 1..B through the same workspace without reallocating: after one
// pass at the largest batch, every smaller batch reshapes for free.
//
// After a reshape the tensor's contents are unspecified (stale bytes from
// the previous shape): every consumer must fully overwrite it, which the
// kernels do (gemm clears each output tile before accumulating, PackFrom
// writes every block).
func EnsureActs(buf **Acts, n, c, bn, bc int) *Acts {
	a := *buf
	if a != nil && a.N == n && a.C == c && a.BN == bn && a.BC == bc {
		return a
	}
	if a != nil && cap(a.Data) >= n*c {
		if bn <= 0 || bc <= 0 || n%bn != 0 || c%bc != 0 {
			panic(fmt.Sprintf("tensor: bad activation blocking N=%d C=%d bn=%d bc=%d", n, c, bn, bc))
		}
		a.N, a.C, a.BN, a.BC = n, c, bn, bc
		a.Nb, a.Cb = n/bn, c/bc
		a.Data = a.Data[:n*c]
		return a
	}
	a = NewActs(n, c, bn, bc)
	*buf = a
	return a
}

// Block returns the (cb, nb) tile as a bn*bc slice, sample-major (row n is
// tile[n*bc : n*bc+bc]).
func (a *Acts) Block(cb, nb int) []float32 {
	sz := a.BN * a.BC
	off := (cb*a.Nb + nb) * sz
	return a.Data[off : off+sz : off+sz]
}

// At returns logical element (n, c) — used by tests and pack/unpack only;
// kernels address whole blocks.
func (a *Acts) At(n, c int) float32 {
	nb, ni := n/a.BN, n%a.BN
	cb, ci := c/a.BC, c%a.BC
	return a.Block(cb, nb)[ni*a.BC+ci]
}

// Set stores logical element (n, c).
func (a *Acts) Set(n, c int, v float32) {
	nb, ni := n/a.BN, n%a.BN
	cb, ci := c/a.BC, c%a.BC
	a.Block(cb, nb)[ni*a.BC+ci] = v
}

// Zero clears the tensor.
func (a *Acts) Zero() {
	for i := range a.Data {
		a.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (a *Acts) Clone() *Acts {
	c := *a
	c.Data = make([]float32, len(a.Data))
	copy(c.Data, a.Data)
	return &c
}

// PackActs converts a row-major N×C matrix into the blocked layout.
func PackActs(d *Dense, bn, bc int) *Acts {
	a := NewActs(d.Rows, d.Cols, bn, bc)
	a.PackFrom(d)
	return a
}

// PackFrom fills the blocked tensor from a row-major matrix of the same
// logical shape, reusing a's storage — the steady-state counterpart of
// PackActs.
func (a *Acts) PackFrom(d *Dense) {
	if d.Rows != a.N || d.Cols != a.C {
		panic(fmt.Sprintf("tensor: PackFrom shape %dx%d into %dx%d", d.Rows, d.Cols, a.N, a.C))
	}
	bn, bc := a.BN, a.BC
	for cb := 0; cb < a.Cb; cb++ {
		for nb := 0; nb < a.Nb; nb++ {
			blk := a.Block(cb, nb)
			for ni := 0; ni < bn; ni++ {
				n := nb*bn + ni
				src := d.Data[n*d.Cols+cb*bc:]
				copy(blk[ni*bc:(ni+1)*bc], src[:bc])
			}
		}
	}
}

// Unpack converts the blocked tensor back to a row-major N×C matrix.
func (a *Acts) Unpack() *Dense {
	d := NewDense(a.N, a.C)
	a.UnpackInto(d)
	return d
}

// UnpackInto writes the row-major image of the blocked tensor into d,
// reusing d's storage — the steady-state counterpart of Unpack.
func (a *Acts) UnpackInto(d *Dense) {
	if d.Rows != a.N || d.Cols != a.C {
		panic(fmt.Sprintf("tensor: UnpackInto shape %dx%d into %dx%d", a.N, a.C, d.Rows, d.Cols))
	}
	for cb := 0; cb < a.Cb; cb++ {
		for nb := 0; nb < a.Nb; nb++ {
			blk := a.Block(cb, nb)
			for ni := 0; ni < a.BN; ni++ {
				n := nb*a.BN + ni
				copy(d.Data[n*d.Cols+cb*a.BC:n*d.Cols+(cb+1)*a.BC], blk[ni*a.BC:(ni+1)*a.BC])
			}
		}
	}
}

// Weights is a weight tensor in the paper's [Kb][Cb][bc][bk] blocked layout
// (Algorithm 5): the logical matrix is K×C (output × input features),
// blocked into Kb×Cb tiles of bc×bk with the input-feature index major
// inside a tile and the output feature contiguous. That inner layout lets
// the micro-kernel broadcast one input scalar against a contiguous run of
// bk outputs — the shape the batch-reduce GEMM wants.
type Weights struct {
	K, C   int // logical dims: K outputs × C inputs
	BK, BC int
	Kb, Cb int
	Data   []float32
}

// NewWeights allocates a zeroed blocked weight tensor; K%bk and C%bc must be 0.
func NewWeights(k, c, bk, bc int) *Weights {
	if bk <= 0 || bc <= 0 || k%bk != 0 || c%bc != 0 {
		panic(fmt.Sprintf("tensor: bad weight blocking K=%d C=%d bk=%d bc=%d", k, c, bk, bc))
	}
	return &Weights{
		K: k, C: c, BK: bk, BC: bc,
		Kb: k / bk, Cb: c / bc,
		Data: make([]float32, k*c),
	}
}

// Block returns the (kb, cb) tile as a bc*bk slice: element (ci, ki) of the
// tile is tile[ci*bk+ki].
func (w *Weights) Block(kb, cb int) []float32 {
	sz := w.BK * w.BC
	off := (kb*w.Cb + cb) * sz
	return w.Data[off : off+sz : off+sz]
}

// At returns logical element (k, c).
func (w *Weights) At(k, c int) float32 {
	kb, ki := k/w.BK, k%w.BK
	cb, ci := c/w.BC, c%w.BC
	return w.Block(kb, cb)[ci*w.BK+ki]
}

// Set stores logical element (k, c).
func (w *Weights) Set(k, c int, v float32) {
	kb, ki := k/w.BK, k%w.BK
	cb, ci := c/w.BC, c%w.BC
	w.Block(kb, cb)[ci*w.BK+ki] = v
}

// Zero clears the tensor.
func (w *Weights) Zero() {
	for i := range w.Data {
		w.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (w *Weights) Clone() *Weights {
	c := *w
	c.Data = make([]float32, len(w.Data))
	copy(c.Data, w.Data)
	return &c
}

// PackWeights converts a row-major K×C matrix into the blocked layout.
func PackWeights(d *Dense, bk, bc int) *Weights {
	w := NewWeights(d.Rows, d.Cols, bk, bc)
	for k := 0; k < w.K; k++ {
		for c := 0; c < w.C; c++ {
			w.Set(k, c, d.At(k, c))
		}
	}
	return w
}

// Unpack converts the blocked weights back to a row-major K×C matrix.
func (w *Weights) Unpack() *Dense {
	d := NewDense(w.K, w.C)
	for k := 0; k < w.K; k++ {
		for c := 0; c < w.C; c++ {
			d.Set(k, c, w.At(k, c))
		}
	}
	return d
}

// TransposeBlocked returns the logical transpose (C×K) as a new blocked
// weight tensor with swapped block factors. The backward-by-data pass
// computes dX = dY · Wᵀ and reuses the forward kernel with this tensor.
func (w *Weights) TransposeBlocked() *Weights {
	t := NewWeights(w.C, w.K, w.BC, w.BK)
	w.TransposeBlockedInto(t)
	return t
}

// TransposeBlockedInto writes the logical transpose into t, which must have
// the swapped shape and block factors. Layers re-transpose after every
// weight update, so the steady-state path reuses one buffer.
func (w *Weights) TransposeBlockedInto(t *Weights) {
	if t.K != w.C || t.C != w.K || t.BK != w.BC || t.BC != w.BK {
		panic(fmt.Sprintf("tensor: TransposeBlockedInto %dx%d/%dx%d into %dx%d/%dx%d",
			w.K, w.C, w.BK, w.BC, t.K, t.C, t.BK, t.BC))
	}
	for kb := 0; kb < w.Kb; kb++ {
		for cb := 0; cb < w.Cb; cb++ {
			src := w.Block(kb, cb)
			dst := t.Block(cb, kb)
			// src is (bc×bk) ci-major; dst is (bk×bc) ki-major.
			for ci := 0; ci < w.BC; ci++ {
				for ki := 0; ki < w.BK; ki++ {
					dst[ki*w.BC+ci] = src[ci*w.BK+ki]
				}
			}
		}
	}
}

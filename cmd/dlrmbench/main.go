// Command dlrmbench regenerates every table and figure of the paper's
// evaluation. Single-socket experiments (Figs. 5, 7, 8, 16) execute the
// real kernels on this host; multi-socket experiments (Figs. 2/6, 9-15)
// replay the paper-scale runs on the simulated UPI/OPA cluster.
//
// Usage:
//
//	dlrmbench -exp table1|table2|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|loader|overlap|all
//	dlrmbench -exp fig16 -iters 800        # more training iterations
//	dlrmbench -exp fig7 -quick             # skip the slow Reference runs
//	dlrmbench -benchjson BENCH_2026-07-27.json   # machine-readable kernel benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, table2, fig5..fig16, all)")
	iters := flag.Int("iters", 0, "override iteration count where applicable")
	quick := flag.Bool("quick", false, "reduce sizes for a fast smoke run")
	benchJSON := flag.String("benchjson", "", "run the kernel micro-benchmarks and write results as JSON to this file, then exit")
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func() fmt.Stringer) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Println(fn().String())
	}

	scale := experiments.DefaultScalingOpts()
	if *iters > 0 {
		scale.Iters = *iters
	}

	run("table1", func() fmt.Stringer { return experiments.Table1() })
	run("table2", func() fmt.Stringer { return experiments.Table2() })
	run("fig5", func() fmt.Stringer {
		o := experiments.DefaultFig5Opts()
		if *quick {
			o = experiments.Fig5Opts{N: 64, Sizes: []int{128, 256}, Repeats: 2}
		}
		return experiments.RunFig5(o)
	})
	run("fig6", func() fmt.Stringer { return experiments.RunFig6(experiments.DefaultFig6Opts()) })
	fig78 := func() *experiments.Fig78Result {
		o := experiments.DefaultFig7Opts()
		if *quick {
			o = experiments.Fig7Opts{Iters: 1, MB: 64, RowScale: 1.0 / 64}
		}
		if *iters > 0 {
			o.Iters = *iters
		}
		return experiments.RunFig78(o)
	}
	run("fig7", func() fmt.Stringer { return fig78().Fig7 })
	run("fig8", func() fmt.Stringer { return fig78().Fig8 })
	run("fig9", func() fmt.Stringer { return experiments.RunFig9(scale) })
	run("fig10", func() fmt.Stringer { return experiments.RunFig10(scale) })
	run("fig11", func() fmt.Stringer { return experiments.RunFig11(scale) })
	run("fig12", func() fmt.Stringer { return experiments.RunFig12(scale) })
	run("fig13", func() fmt.Stringer { return experiments.RunFig13(scale) })
	run("fig14", func() fmt.Stringer { return experiments.RunFig14(scale) })
	run("fig15", func() fmt.Stringer { return experiments.RunFig15(scale) })
	run("loader", func() fmt.Stringer { return experiments.RunLoaderPipeline(scale) })
	run("overlap", func() fmt.Stringer { return experiments.RunOverlap(scale) })
	run("fig16", func() fmt.Stringer {
		o := experiments.DefaultFig16Opts()
		if *quick {
			o.Iters, o.EvalN = 100, 2048
		}
		if *iters > 0 {
			o.Iters = *iters
		}
		o.Include8LSB = true
		return experiments.RunFig16(o)
	})
	run("ablation-allreduce", func() fmt.Stringer { return experiments.AblationAllreduce() })
	run("ablation-commcores", func() fmt.Stringer { return experiments.AblationCommCores(16, scale.Iters) })
	run("ablation-capacity", func() fmt.Stringer { return experiments.AblationCapacity() })
	run("ablation-fused", func() fmt.Stringer { return experiments.AblationFusedEmbedding(3) })

	known := "table1 table2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 loader overlap " +
		"ablation-allreduce ablation-commcores ablation-capacity ablation-fused all"
	if !slices.Contains(strings.Fields(known), *exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: %s\n", *exp, known)
		os.Exit(2)
	}
}

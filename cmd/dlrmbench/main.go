// Command dlrmbench regenerates every table and figure of the paper's
// evaluation. Single-socket experiments (Figs. 5, 7, 8, 16) execute the
// real kernels on this host; multi-socket experiments (Figs. 2/6, 9-15)
// replay the paper-scale runs on the simulated UPI/OPA cluster.
//
// Usage:
//
//	dlrmbench -exp list                    # print every experiment with a description
//	dlrmbench -exp fig9                    # one experiment (see -exp list for names)
//	dlrmbench -exp fig16 -iters 800        # more training iterations
//	dlrmbench -exp fig7 -quick             # skip the slow Reference runs
//	dlrmbench -benchjson BENCH_2026-07-27.json   # machine-readable kernel benchmarks
//	dlrmbench -benchjson out.json -benchfilter '^Fig9'  # subset of the bench suite
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// expOpts carries the command-line tuning every experiment may consult.
type expOpts struct {
	scale experiments.ScalingOpts
	iters int
	quick bool
}

// experiment is one registered entry of the -exp table. The -exp flag's
// help text, the `-exp list` output, and the unknown-name error are all
// generated from this table, so registering an experiment here is the only
// step to expose it.
type experiment struct {
	name string
	desc string
	run  func(o expOpts) fmt.Stringer
}

// experimentTable lists every experiment in presentation order.
func experimentTable() []experiment {
	return []experiment{
		{"table1", "Table I: DLRM model specifications", func(o expOpts) fmt.Stringer {
			return experiments.Table1()
		}},
		{"table2", "Table II: model characteristics for distributed runs (Eqs. 1-2)", func(o expOpts) fmt.Stringer {
			return experiments.Table2()
		}},
		{"fig5", "single-socket MLP kernel GFLOPS: blocked GEMM vs FB/MKL styles", func(o expOpts) fmt.Stringer {
			opts := experiments.DefaultFig5Opts()
			if o.quick {
				opts = experiments.Fig5Opts{N: 64, Sizes: []int{128, 256}, Repeats: 2}
			}
			return experiments.RunFig5(opts)
		}},
		{"fig6", "overlapping MLP GEMMs with the SGD reduce-scatter/all-gather (Fig. 2/6)", func(o expOpts) fmt.Stringer {
			return experiments.RunFig6(experiments.DefaultFig6Opts())
		}},
		{"fig7", "single-socket iteration time per embedding-update strategy", func(o expOpts) fmt.Stringer {
			return runFig78(o).Fig7
		}},
		{"fig8", "single-socket time split across key ops", func(o expOpts) fmt.Stringer {
			return runFig78(o).Fig8
		}},
		{"fig9", "strong scaling: speed-up/efficiency, all four comm variants", func(o expOpts) fmt.Stringer {
			return experiments.RunFig9(o.scale)
		}},
		{"fig10", "strong-scaling compute/communication break-up, MPI vs CCL", func(o expOpts) fmt.Stringer {
			return experiments.RunFig10(o.scale)
		}},
		{"fig11", "strong-scaling communication-time break-up (framework vs wait)", func(o expOpts) fmt.Stringer {
			return experiments.RunFig11(o.scale)
		}},
		{"fig12", "weak scaling: speed-up/efficiency, all four comm variants", func(o expOpts) fmt.Stringer {
			return experiments.RunFig12(o.scale)
		}},
		{"fig13", "weak-scaling compute/communication break-up (incl. loader artifact)", func(o expOpts) fmt.Stringer {
			return experiments.RunFig13(o.scale)
		}},
		{"fig14", "weak-scaling communication-time break-up", func(o expOpts) fmt.Stringer {
			return experiments.RunFig14(o.scale)
		}},
		{"fig15", "8-socket shared-memory scaling on the UPI twisted hypercube", func(o expOpts) fmt.Stringer {
			return experiments.RunFig15(o.scale)
		}},
		{"fig16", "mixed-precision training accuracy (ROC AUC), BF16/FP24 variants", func(o expOpts) fmt.Stringer {
			opts := experiments.DefaultFig16Opts()
			if o.quick {
				opts.Iters, opts.EvalN = 100, 2048
			}
			if o.iters > 0 {
				opts.Iters = o.iters
			}
			opts.Include8LSB = true
			return experiments.RunFig16(opts)
		}},
		{"loader", "data pipeline: global-read loader artifact vs sharded streaming loader", func(o expOpts) fmt.Stringer {
			return experiments.RunLoaderPipeline(o.scale)
		}},
		{"overlap", "overlap ablation: sync vs overlapped pipeline vs +hierarchical allreduce", func(o expOpts) fmt.Stringer {
			return experiments.RunOverlap(o.scale)
		}},
		{"buckets", "bucketed gradient allreduce (Fig. 2): flat vs per-layer buckets × sync vs overlapped", func(o expOpts) fmt.Stringer {
			return experiments.RunBucketFig(o.scale)
		}},
		{"autotune", "self-tuning communication schedule: autotuned vs default at every Fig. 9/12 scale", func(o expOpts) fmt.Stringer {
			opts := experiments.DefaultAutotuneFigOpts()
			if o.quick {
				opts.Iters, opts.MaxCandidates = 2, 16
			}
			if o.iters > 0 {
				opts.Iters = o.iters
			}
			return experiments.RunAutotune(opts)
		}},
		{"contention", "contention-aware fabric: schedules under shared-link charging, trunk/straggler sweeps, §VI-D1 from link mechanics", func(o expOpts) fmt.Stringer {
			opts := experiments.DefaultContentionFigOpts()
			if o.quick {
				opts.Iters, opts.MaxCandidates = 1, 16
			}
			if o.iters > 0 {
				opts.Iters = o.iters
			}
			return experiments.RunContentionFig(opts)
		}},
		{"serving", "online serving: p50/p99 latency vs throughput, batching policy × offered load", func(o expOpts) fmt.Stringer {
			opts := experiments.DefaultServingFigOpts()
			if o.quick {
				opts = experiments.QuickServingFigOpts()
			}
			return experiments.RunServing(opts)
		}},
		{"embstore", "tiered embedding store: Fig. 9 virtual ms/iter vs hot-cache budget × row skew", func(o expOpts) fmt.Stringer {
			opts := experiments.DefaultEmbStoreFigOpts()
			if o.quick {
				opts = experiments.QuickEmbStoreFigOpts()
			}
			if o.iters > 0 {
				opts.Iters = o.iters
			}
			return experiments.RunEmbStore(opts)
		}},
		{"churn", "elastic training under churn: recovery time and throughput vs checkpoint interval and failure rate", func(o expOpts) fmt.Stringer {
			opts := experiments.DefaultChurnFigOpts()
			if o.quick {
				opts = experiments.QuickChurnFigOpts()
			}
			if o.iters > 0 {
				opts.Iters = o.iters
			}
			return experiments.RunChurn(opts)
		}},
		{"ablation-allreduce", "allreduce algorithm sweep vs gradient volume", func(o expOpts) fmt.Stringer {
			return experiments.AblationAllreduce()
		}},
		{"ablation-commcores", "communication-core count S sweep (Large, CCL Alltoall)", func(o expOpts) fmt.Stringer {
			return experiments.AblationCommCores(16, o.scale.Iters)
		}},
		{"ablation-capacity", "storage per weight: model + optimizer state", func(o expOpts) fmt.Stringer {
			return experiments.AblationCapacity()
		}},
		{"ablation-fused", "fused embedding backward+update vs two-step", func(o expOpts) fmt.Stringer {
			return experiments.AblationFusedEmbedding(3)
		}},
	}
}

// runFig78 shares the Fig. 7/8 sweep between both entries.
func runFig78(o expOpts) *experiments.Fig78Result {
	opts := experiments.DefaultFig7Opts()
	if o.quick {
		opts = experiments.Fig7Opts{Iters: 1, MB: 64, RowScale: 1.0 / 64}
	}
	if o.iters > 0 {
		opts.Iters = o.iters
	}
	return experiments.RunFig78(opts)
}

func main() {
	table := experimentTable()
	names := make([]string, len(table))
	for i, e := range table {
		names[i] = e.name
	}
	exp := flag.String("exp", "all",
		"experiment to run: all, list, or one of "+strings.Join(names, " "))
	iters := flag.Int("iters", 0, "override iteration count where applicable")
	quick := flag.Bool("quick", false, "reduce sizes for a fast smoke run")
	benchJSON := flag.String("benchjson", "", "run the kernel micro-benchmarks and write results as JSON to this file, then exit")
	benchFilter := flag.String("benchfilter", "", "with -benchjson: only run benchmark cases matching this regexp")
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *benchFilter); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "list" {
		for _, e := range table {
			fmt.Printf("%-20s %s\n", e.name, e.desc)
		}
		return
	}

	o := expOpts{scale: experiments.DefaultScalingOpts(), iters: *iters, quick: *quick}
	if *iters > 0 {
		o.scale.Iters = *iters
	}

	known := false
	for _, e := range table {
		if *exp == "all" || *exp == e.name {
			known = true
			fmt.Println(e.run(o).String())
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: %s all list\n",
			*exp, strings.Join(names, " "))
		os.Exit(2)
	}
}

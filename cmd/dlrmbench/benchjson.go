package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/gemm"
	"repro/internal/par"
	"repro/internal/serve"
)

// benchEntry is one benchmark's machine-readable result.
type benchEntry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the file-level JSON envelope. Future PRs append one file
// per run (BENCH_<date>.json) and diff ns_per_op/allocs_per_op across
// commits to track the perf trajectory.
type benchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	GOARCH     string       `json:"goarch"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// runBench executes fn under testing.Benchmark and records the result.
func runBench(report *benchReport, name string, fn func(b *testing.B)) {
	res := testing.Benchmark(fn)
	entry := benchEntry{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if len(res.Extra) > 0 {
		entry.Metrics = map[string]float64{}
		for k, v := range res.Extra {
			entry.Metrics[k] = v
		}
	}
	report.Benchmarks = append(report.Benchmarks, entry)
	fmt.Printf("%-28s %12.0f ns/op %8d B/op %6d allocs/op\n",
		name, entry.NsPerOp, entry.BytesPerOp, entry.AllocsPerOp)
}

// writeBenchJSON runs the curated micro-benchmark suite — the same fixtures
// (internal/experiments benchcases) the root go-test benchmarks use, so the
// archived numbers and the local `go test -bench` numbers always measure
// identical workloads — and writes the results as JSON to path. A non-empty
// filter regexp restricts the suite to matching case names (and skips
// building the other fixtures): scripts/bench.sh -quick uses it to measure
// only the gate-relevant distributed/loader cases.
func writeBenchJSON(path, filter string) error {
	match := func(string) bool { return true }
	if filter != "" {
		re, err := regexp.Compile(filter)
		if err != nil {
			return fmt.Errorf("bad -benchfilter: %w", err)
		}
		match = re.MatchString
	}
	// Fail fast on an unwritable destination before minutes of measuring.
	// If the probe had to CREATE the file, remember that: error paths below
	// must not leave a stray empty BENCH_*.json behind for benchdiff's
	// baseline discovery to trip over.
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	report := &benchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOARCH:     runtime.GOARCH,
	}

	// Fig. 5: blocked forward GEMM (batch-reduce kernel).
	if match("Fig5BlockedFWD") {
		x, w, y := experiments.Fig5BlockedCase()
		runBench(report, "Fig5BlockedFWD", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemm.Forward(par.Default, w, x, y)
			}
			b.ReportMetric(experiments.Fig5Flops()*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}

	// Fig. 7: one full training iteration, race-free embedding update.
	if match("Fig7RaceFreeStep") {
		tr, mb := experiments.Fig7StepCase(embedding.RaceFree)
		runBench(report, "Fig7RaceFreeStep", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr.Step(mb)
			}
		})
	}

	// Fig. 16: the mixed-precision training steps.
	for _, c := range []struct {
		name string
		prec core.Precision
	}{
		{"Fig16FP32Step", core.FP32},
		{"Fig16BF16SplitStep", core.BF16Split},
	} {
		if !match(c.name) {
			continue
		}
		tr, mb := experiments.Fig16StepCase(c.prec)
		runBench(report, c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr.Step(mb)
			}
		})
	}

	// §III-A: fused embedding backward+update sweep.
	if match("EmbeddingFusedUpdate") {
		tab, batch, dOut := experiments.FusedEmbeddingCase()
		runBench(report, "EmbeddingFusedUpdate", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab.FusedBackwardUpdate(par.Default, batch, dOut, 1e-6)
			}
		})
	}

	// Figs. 9/12: the 64-rank simulated-cluster runs (host wall time; the
	// virtual iteration time rides along as a metric). These track the
	// distributed-path allocation/dispatch overhead across commits the same
	// way the Fig. 7/16 entries track the single-socket step.
	for _, c := range []struct {
		name string
		mk   func() (core.DistConfig, func())
	}{
		// Headline cases run the library default schedule — bucketed +
		// overlapped at core.DefaultBucketBytes — since the default flip.
		{"Fig9Strong64R", experiments.Fig9DistCase},
		{"Fig12Weak64R", experiments.Fig12DistCase},
		// The pre-flip flat-sync schedule stays a measured baseline row so
		// the paper-reproduction path keeps its own regression trail.
		{"Fig9Strong64RFlatSync", experiments.Fig9DistFlatSyncCase},
		{"Fig12Weak64RFlatSync", experiments.Fig12DistFlatSyncCase},
		// Data-pipeline variants: the same runs with the sharded streaming
		// loader charged, and the weak-scaling run with the §VI-D2
		// global-read artifact — their virtual ms/iter difference is the
		// loader delta the PERF doc tracks.
		{"Fig9Strong64RSharded", experiments.Fig9DistShardedCase},
		{"Fig12Weak64RSharded", experiments.Fig12DistShardedCase},
		{"Fig12Weak64RGlobalMB", experiments.Fig12DistGlobalMBCase},
		// Overlap-aware pipeline variants: the same headline runs with the
		// async backward redistribution / deferred waits / channel routing,
		// and with the hierarchical two-level allreduce selected — their
		// virtual ms/iter deltas vs the sync cases are the comm-hiding
		// figures the PERF doc quotes, and the regression gate keeps the
		// overlapped dispatch path allocation-free and fast.
		{"Fig9Strong64ROverlap", experiments.Fig9DistOverlapCase},
		{"Fig12Weak64ROverlap", experiments.Fig12DistOverlapCase},
		{"Fig9Strong64RHier", experiments.Fig9DistHierCase},
		{"Fig12Weak64RHier", experiments.Fig12DistHierCase},
		// Autotuned schedule: the headline runs under whatever schedule
		// core.AutotuneDistConfig picks for the shape — tracked alongside
		// the default-schedule cases so a tuner regression (stops beating,
		// or stops matching, the default) shows up in the gate. The former
		// Fig9Strong64RBucketed/Fig12Weak64RBucketed entries are the
		// headline cases now; benchdiff -renamed maps the archived names.
		{"Fig9Strong64RTuned", experiments.Fig9DistTunedCase},
		{"Fig12Weak64RTuned", experiments.Fig12DistTunedCase},
		// Contention-charged variants: the headline schedule priced under
		// the contention-aware fabric model (concurrent bucket allreduces
		// share the 2:1 trunk) — the gap vs the headline cases is the
		// honest-sharing cost; the contention-off cases stay bit-identical.
		{"Fig9Strong64RContention", experiments.Fig9DistContentionCase},
		{"Fig12Weak64RContention", experiments.Fig12DistContentionCase},
		// Tiered embedding store: the headline run with a 256 MiB per-rank
		// hot-row cache over the default cold tier — the gap vs Fig9Strong64R
		// is the modeled miss cost, and the gate keeps the tiered schedule's
		// host-side dispatch allocation-free.
		{"Fig9Strong64REmbStore", experiments.Fig9DistEmbStoreCase},
	} {
		if !match(c.name) {
			continue
		}
		dc, done := c.mk()
		runBench(report, c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.RunDistributed(dc)
				b.ReportMetric(res.IterSeconds*1e3, "virtual-ms/iter")
			}
		})
		done()
	}

	// Online serving at the Fig. 9 cluster shape: host wall time of one
	// replay (Large over 64 sockets, SLO policy, 1.5x capacity), with the
	// virtual p99 latency riding along as the virtual-ms/iter metric so
	// the regression gate flags serving cost-model drift.
	if match("Fig9Strong64RServing") {
		sc, done := experiments.Fig9ServingCase()
		runBench(report, "Fig9Strong64RServing", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := serve.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.P99*1e3, "virtual-ms/iter")
			}
		})
		done()
	}

	// Elastic training under churn at the Fig. 9 cluster shape: host wall
	// time of one full fail/recover cycle (rank 13 dies mid-run, survivors
	// restore from the newest durable shard checkpoint and replay), with the
	// effective virtual ms/iter — recovery overhead amortized over the
	// productive iterations — riding along so the gate flags drift in the
	// detect/restore/replay cost model.
	if match("Fig9Strong64RChurn") {
		ec, done := experiments.Fig9ChurnCase()
		runBench(report, "Fig9Strong64RChurn", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunElastic(ec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.EffectiveIterSeconds()*1e3, "virtual-ms/iter")
			}
		})
		done()
	}

	// Sharded streaming loader: host wall time to produce one per-rank
	// batch (N/R sample slice + owned-table columns), steady state.
	if match("LoaderShardedNext") {
		ld, done := experiments.LoaderNextCase()
		runBench(report, "LoaderShardedNext", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ld.Next()
			}
		})
		done()
	}

	if len(report.Benchmarks) == 0 {
		// Never write an empty report: committed as a baseline it would make
		// the CI gate trivially green (nothing left to compare or lose).
		if created {
			os.Remove(path)
		}
		return fmt.Errorf("-benchfilter %q matched no benchmark cases", filter)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(report.Benchmarks))
	return nil
}

// Command dlrmdata generates synthetic click-log dataset files in the
// binary record format — the stand-in for downloading Criteo Terabyte day
// files. The output can be consumed by data.OpenFileDataset (see
// examples/file_dataset).
//
// Usage:
//
//	dlrmdata -out train.clog -samples 100000 -tables 26 -rows 10000 -dense 13
//	dlrmdata -out tiny.clog -samples 1000 -tables 4 -rows 500 -lookups 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/data"
)

func main() {
	out := flag.String("out", "train.clog", "output file")
	samples := flag.Int("samples", 100_000, "number of samples to generate")
	dense := flag.Int("dense", 13, "dense feature count")
	tables := flag.Int("tables", 26, "embedding table count")
	rows := flag.Int("rows", 100_000, "rows per table (0 = scaled Criteo TB cardinalities)")
	lookups := flag.Int("lookups", 1, "lookups per table per sample")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	var rowCounts []int
	if *rows == 0 {
		rowCounts = data.ScaleRows(data.CriteoTBRows, 1.0/1024)
		*tables = len(rowCounts)
	} else {
		rowCounts = make([]int, *tables)
		for i := range rowCounts {
			rowCounts[i] = *rows
		}
	}
	ds := data.NewClickLog(*seed, *dense, rowCounts, *lookups)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := data.WriteDataset(f, ds, *samples, 4096, *lookups); err != nil {
		log.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d samples, %d dense features, %d tables × %d lookups (%.1f MB)\n",
		*out, *samples, *dense, *tables, *lookups, float64(info.Size())/1e6)
}

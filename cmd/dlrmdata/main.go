// Command dlrmdata generates synthetic click-log dataset files in the
// binary record format — the stand-in for downloading Criteo Terabyte day
// files. The output can be consumed by data.OpenFileDataset (see
// examples/file_dataset).
//
// Usage:
//
//	dlrmdata -out train.clog -samples 100000 -tables 26 -rows 10000 -dense 13
//	dlrmdata -out tiny.clog -samples 1000 -tables 4 -rows 500 -lookups 3
//	dlrmdata -out train.clog -samples 100000 -shards 4   # per-rank shard files
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/data"
)

func main() {
	out := flag.String("out", "train.clog", "output file")
	samples := flag.Int("samples", 100_000, "number of samples to generate")
	dense := flag.Int("dense", 13, "dense feature count")
	tables := flag.Int("tables", 26, "embedding table count")
	rows := flag.Int("rows", 100_000, "rows per table (0 = scaled Criteo TB cardinalities)")
	lookups := flag.Int("lookups", 1, "lookups per table per sample")
	seed := flag.Int64("seed", 1, "generator seed")
	batchN := flag.Int("mb", 4096, "global minibatch size used to lay out samples")
	shards := flag.Int("shards", 1, "write one shard file per rank (<out>.rK-of-R), sharded at the source")
	flag.Parse()

	var rowCounts []int
	if *rows == 0 {
		rowCounts = data.ScaleRows(data.CriteoTBRows, 1.0/1024)
		*tables = len(rowCounts)
	} else {
		rowCounts = make([]int, *tables)
		for i := range rowCounts {
			rowCounts[i] = *rows
		}
	}
	ds := data.NewClickLog(*seed, *dense, rowCounts, *lookups)

	write := func(path string, r, R int) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		// Shard at the source: rank r's writer materializes only its slice
		// of each global minibatch, never the full batch.
		if err := data.WriteDatasetShard(f, ds, r, R, *samples, *batchN, *lookups); err != nil {
			log.Fatal(err)
		}
		info, err := f.Stat()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d dense features, %d tables × %d lookups (%.1f MB)\n",
			path, *dense, *tables, *lookups, float64(info.Size())/1e6)
	}

	if *shards <= 1 {
		write(*out, 0, 1)
		return
	}
	for r := 0; r < *shards; r++ {
		write(fmt.Sprintf("%s.r%d-of-%d", *out, r, *shards), r, *shards)
	}
}

// Command dlrmserve replays Zipf-skewed click traffic against the online
// serving tier: a dispatcher batches Poisson request arrivals under a
// max-batch/max-wait policy (optionally an SLO with deadline shedding) and
// spreads the batches across model replicas on the simulated cluster,
// where each replica pulls remote embedding shards over the fabric. It
// prints the p50/p99-latency vs throughput curve across offered loads.
//
// Usage:
//
//	dlrmserve                                   # MLPerf on 8 sockets, SLO on/off × 3 loads
//	dlrmserve -config large -replicas 64 -maxbatch 64
//	dlrmserve -loads 0.25,1,2,4 -slo 8ms        # explicit sweep and SLO
//	dlrmserve -qps 150000 -maxwait 1ms          # one absolute offered rate
//	dlrmserve -functional -requests 512         # really execute the scaled model
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fabric"
	"repro/internal/perfmodel"
	"repro/internal/serve"
)

func main() {
	configName := flag.String("config", "mlperf", "model config: small, large, mlperf")
	replicas := flag.Int("replicas", 8, "serving sockets (embedding tables shard round-robin)")
	maxBatch := flag.Int("maxbatch", 32, "dispatch a batch at this many queued requests")
	maxWait := flag.Duration("maxwait", 2*time.Millisecond, "dispatch when the oldest request has waited this long")
	slo := flag.Duration("slo", 0, "latency SLO; 0 derives 2x(maxwait+service) for the SLO rows")
	requests := flag.Int("requests", 3840, "requests to replay per run")
	loads := flag.String("loads", "0.5,1.5,3", "offered loads as multiples of modeled capacity")
	qps := flag.Float64("qps", 0, "absolute offered rate in requests/s (overrides -loads)")
	backendName := flag.String("backend", "ccl", "communication backend: ccl, mpi")
	contention := flag.Bool("contention", false, "charge embedding fan-ins against the shared contention epoch")
	seed := flag.Int64("seed", 0, "arrival-stream (and functional model) seed")
	functional := flag.Bool("functional", false, "execute a scaled model for real and report predictions")
	rowScale := flag.Float64("rowscale", 1.0/64, "embedding row scaling for -functional")
	embCache := flag.Int("emb-cache-bytes", 0, "hot-row cache budget per replica; 0 keeps shards in RAM")
	coldBW := flag.Float64("cold-bw", 0, "cold-tier bandwidth in B/s (required with -emb-cache-bytes)")
	flag.Parse()

	cfg, ok := map[string]core.Config{
		"small":  core.Small,
		"large":  core.Large,
		"mlperf": core.MLPerf,
	}[strings.ToLower(*configName)]
	if !ok {
		log.Fatalf("unknown config %q", *configName)
	}
	backend, ok := map[string]cluster.Backend{
		"mpi": cluster.MPIBackend,
		"ccl": cluster.CCLBackend,
	}[strings.ToLower(*backendName)]
	if !ok {
		log.Fatalf("unknown backend %q", *backendName)
	}

	base := serve.Config{
		Cfg:        cfg,
		Replicas:   *replicas,
		Topo:       fabric.NewPrunedFatTree(*replicas, 12.5e9),
		Socket:     perfmodel.CLX8280,
		Backend:    backend,
		Contention: *contention,
		Policy:     serve.Policy{MaxBatch: *maxBatch, MaxWait: maxWait.Seconds()},
		Requests:   *requests,
		Seed:       *seed,
		OfferedQPS: 1, // placeholder until the sweep sets the real rate
		Workspaces: serve.NewWorkspaces(),
	}
	if *embCache > 0 {
		base.EmbCacheBytes = *embCache
		base.ColdTierBW = *coldBW
	}
	if *functional {
		// The functional model is the priced config scaled to host memory;
		// its RequestLog dataset keys each request to a Zipf-drawn entity
		// whose table rows are a pure function of the entity — hot requests
		// recur with identical row sets, the reuse a tiered store exploits.
		run := cfg.Scaled(*rowScale)
		base.RunCfg = &run
		base.Dataset = data.NewRequestLog(*seed+9, run.DenseIn, run.Rows, run.Lookups)
		base.Pools = cluster.NewPools()
		defer base.Pools.Close()
	}

	svc, err := base.ServiceTime(*maxBatch)
	if err != nil {
		log.Fatal(err)
	}
	capacity := float64(*replicas) * float64(*maxBatch) / svc
	sloSec := slo.Seconds()
	if sloSec == 0 {
		sloSec = 2 * (maxWait.Seconds() + svc)
	}

	var offered []float64
	if *qps > 0 {
		offered = []float64{*qps}
	} else {
		for _, f := range strings.Split(*loads, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || x <= 0 {
				log.Fatalf("bad -loads entry %q", f)
			}
			offered = append(offered, x*capacity)
		}
	}

	fmt.Printf("serving %s across %d replicas (%s backend), policy B%d/w%s\n",
		cfg.Name, *replicas, strings.ToUpper(*backendName), *maxBatch, maxWait)
	fmt.Printf("modeled service %.3f ms per full batch, capacity %.0f req/s, SLO %.2f ms\n",
		svc*1e3, capacity, sloSec*1e3)
	fmt.Printf("\n%-18s  %-12s  %7s  %6s  %6s  %8s  %8s  %8s  %10s\n",
		"policy", "offered q/s", "served", "shed", "mean B", "p50 ms", "p99 ms", "max ms", "served q/s")
	for _, pol := range []serve.Policy{
		{MaxBatch: *maxBatch, MaxWait: maxWait.Seconds()},
		{MaxBatch: *maxBatch, MaxWait: maxWait.Seconds(), SLO: sloSec},
	} {
		for _, rate := range offered {
			c := base
			c.Policy = pol
			c.OfferedQPS = rate
			res, err := serve.Run(c)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s  %12.0f  %7d  %6d  %6.1f  %8.2f  %8.2f  %8.2f  %10.0f\n",
				pol.Name(), rate, res.Served, res.Shed, res.MeanBatch,
				res.P50*1e3, res.P99*1e3, res.Max*1e3, res.Throughput)
			if *functional {
				reportPredictions(res)
			}
		}
	}
	fmt.Println("\nSLO rows shed what cannot finish in time, so their p99/max never exceed the SLO.")
}

// reportPredictions summarizes a functional run's served probabilities.
func reportPredictions(res *serve.Result) {
	var sum float64
	served := 0
	for _, p := range res.Preds {
		if !math.IsNaN(float64(p)) {
			sum += float64(p)
			served++
		}
	}
	if served == 0 {
		fmt.Fprintln(os.Stderr, "  (functional: every request was shed)")
		return
	}
	fmt.Printf("  functional: %d predictions computed, mean click probability %.4f\n",
		served, sum/float64(served))
}

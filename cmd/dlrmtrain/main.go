// Command dlrmtrain trains a DLRM end to end: single-socket for real on
// this host, or hybrid-parallel on the simulated multi-socket cluster.
//
// Usage:
//
//	dlrmtrain -config small -iters 100 -strategy racefree
//	dlrmtrain -config mlperf -precision bf16split -iters 400 -eval 50
//	dlrmtrain -config large -ranks 16 -dist -iters 5       # simulated cluster
//	dlrmtrain -config mlperf -dist -ranks 26 -loader global # §VI-D2 loader artifact
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/fabric"
	"repro/internal/par"
	"repro/internal/perfmodel"
)

func main() {
	configName := flag.String("config", "small", "model config: small, large, mlperf, tiny")
	iters := flag.Int("iters", 50, "training iterations")
	mb := flag.Int("mb", 0, "minibatch (0 = config default)")
	lr := flag.Float64("lr", 0.5, "learning rate")
	rowScale := flag.Float64("rowscale", 1.0/64, "embedding-table row scaling to fit host memory")
	stratName := flag.String("strategy", "racefree", "embedding update: reference, atomic, rtm, racefree")
	precName := flag.String("precision", "fp32", "numerics: fp32, bf16split, bf16split8, fp24")
	evalEvery := flag.Int("eval", 0, "evaluate ROC AUC every N iterations (0 = off)")
	dist := flag.Bool("dist", false, "run on the simulated multi-socket cluster")
	ranks := flag.Int("ranks", 8, "simulated rank count (with -dist)")
	loaderName := flag.String("loader", "sharded", "data pipeline (with -dist): none, global, sharded")
	tune := flag.Bool("autotune", false, "with -dist: autotune the communication schedule before running")
	ckptEvery := flag.Int("checkpoint-every", 0, "save a checkpoint every N steps (0 = off)")
	ckptPath := flag.String("checkpoint", "dlrm.ckpt", "checkpoint file (with -checkpoint-every / -resume)")
	resume := flag.Bool("resume", false, "resume training from -checkpoint")
	churn := flag.Bool("churn", false, "with -dist: inject a mid-run rank failure and recover elastically")
	embCache := flag.Int("emb-cache-bytes", 0, "with -dist: per-rank hot-row cache budget; 0 keeps shards in RAM")
	coldBW := flag.Float64("cold-bw", 0, "with -dist: cold-tier bandwidth in B/s (required with -emb-cache-bytes)")
	flag.Parse()

	cfg, ok := map[string]core.Config{
		"small":  core.Small,
		"large":  core.Large,
		"mlperf": core.MLPerf,
		"tiny": {
			Name: "Tiny", MB: 128, GlobalMB: 256, LocalMB: 64,
			Lookups: 4, Tables: 8, EmbDim: 32,
			Rows:    []int{5000, 5000, 5000, 5000, 5000, 5000, 5000, 5000},
			DenseIn: 16, BotHidden: []int{64}, TopHidden: []int{128, 64},
		},
	}[strings.ToLower(*configName)]
	if !ok {
		log.Fatalf("unknown config %q", *configName)
	}

	if *dist {
		mode, ok := map[string]core.LoaderMode{
			"none":    core.LoaderNone,
			"global":  core.LoaderGlobalMB,
			"sharded": core.LoaderSharded,
		}[strings.ToLower(*loaderName)]
		if !ok {
			log.Fatalf("unknown loader %q", *loaderName)
		}
		runDistributed(cfg, *ranks, *iters, mode, *tune, *churn, *embCache, *coldBW)
		return
	}

	strat, ok := map[string]embedding.Strategy{
		"reference": embedding.Reference,
		"atomic":    embedding.AtomicXchg,
		"rtm":       embedding.RTMStyle,
		"racefree":  embedding.RaceFree,
	}[strings.ToLower(*stratName)]
	if !ok {
		log.Fatalf("unknown strategy %q", *stratName)
	}
	prec, ok := map[string]core.Precision{
		"fp32":       core.FP32,
		"bf16split":  core.BF16Split,
		"bf16split8": core.BF16Split8LSB,
		"fp24":       core.FP24,
	}[strings.ToLower(*precName)]
	if !ok {
		log.Fatalf("unknown precision %q", *precName)
	}

	scaled := cfg.Scaled(*rowScale)
	batch := *mb
	if batch == 0 {
		batch = scaled.MB
	}
	if batch == 0 {
		batch = 512
	}
	const dataSeed = 7
	ds := data.NewClickLog(dataSeed, scaled.DenseIn, scaled.Rows, scaled.Lookups)
	model := core.NewModel(scaled, 16, 1)
	tr := core.NewTrainer(model, par.Default, strat, float32(*lr), prec)
	eval := ds.Batch(1<<20, 4096)

	startIter := 0
	if *resume {
		st, err := loadCheckpoint(model, *ckptPath)
		if err != nil {
			log.Fatalf("resume from %s: %v", *ckptPath, err)
		}
		if st != nil {
			startIter = int(st.Iter)
			if st.LR > 0 {
				tr.LR = st.LR
			}
		}
		fmt.Printf("resumed from %s at step %d (lr=%g)\n", *ckptPath, startIter, tr.LR)
	}

	fmt.Printf("training %s (rows x%.3g), MB=%d, %s, %s, lr=%g\n",
		scaled.Name, *rowScale, batch, strat, prec, *lr)
	start := time.Now()
	// The run owns its streaming loader (RunOpts.Dataset): batch i+1 is
	// prefetched on its own goroutine while Step trains on batch i,
	// staging into two reused buffers — the single-socket form of the
	// sharded pipeline. Start places a resumed run at the checkpoint's
	// batch index, so it trains the exact stream the original would have.
	o := core.RunOpts{
		Dataset: ds,
		Batch:   batch,
		Start:   startIter,
		Iters:   *iters,
		Each: func(i int, l float64) {
			if *evalEvery > 0 && (i+1)%*evalEvery == 0 {
				fmt.Printf("iter %4d  loss %.4f  auc %.4f\n", startIter+i+1, l, tr.EvalAUC(eval))
			} else if (i+1)%10 == 0 {
				fmt.Printf("iter %4d  loss %.4f\n", startIter+i+1, l)
			}
		},
	}
	if *ckptEvery > 0 {
		o.CheckpointEvery = *ckptEvery
		o.Checkpoint = func(step int, m *core.Model) error {
			if err := saveCheckpoint(m, *ckptPath, core.TrainerState{
				Iter: int64(step), Seed: dataSeed, LR: tr.LR,
			}); err != nil {
				return err
			}
			fmt.Printf("iter %4d  checkpoint -> %s\n", step, *ckptPath)
			return nil
		}
	}
	if err := tr.Run(o); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("done: %d iters in %v (%.1f ms/iter), final AUC %.4f\n",
		*iters, elapsed.Round(time.Millisecond),
		elapsed.Seconds()*1e3/float64(*iters), tr.EvalAUC(eval))
}

// saveCheckpoint writes the model + trainer state atomically: a temp file
// in the target's directory, synced, then renamed over the destination — a
// crash mid-write can never leave a torn checkpoint behind.
func saveCheckpoint(m *core.Model, path string, st core.TrainerState) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := m.SaveWithState(tmp, st); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadCheckpoint restores model weights and returns the trainer state (nil
// for a v0 weights-only file).
func loadCheckpoint(m *core.Model, path string) (*core.TrainerState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return m.LoadWithState(f)
}

func runDistributed(cfg core.Config, ranks, iters int, mode core.LoaderMode, tune, churn bool, embCache int, coldBW float64) {
	if ranks > cfg.MaxRanks() {
		log.Fatalf("%s supports at most %d ranks (one table per rank minimum)", cfg.Name, cfg.MaxRanks())
	}
	gn := cfg.GlobalMB - cfg.GlobalMB%ranks
	fmt.Printf("simulating %s on %d sockets (OPA cluster), GN=%d, CCL-Alltoall, %s loader\n",
		cfg.Name, ranks, gn, mode)
	dc := core.DistConfig{
		Cfg:     cfg,
		Ranks:   ranks,
		GlobalN: gn,
		Iters:   iters,
		Variant: core.Variant{Strategy: core.Alltoall, Backend: cluster.CCLBackend},
		Topo:    fabric.NewPrunedFatTree(ranks, 12.5e9),
		Socket:  perfmodel.CLX8280,
		Loader:  mode,
		// Schedule knobs at their zero values: bucketed+overlapped default.
	}
	if embCache > 0 {
		dc.EmbCacheBytes = embCache
		dc.ColdTierBW = coldBW
		fmt.Printf("tiered embedding store: %d MiB hot cache, cold tier %.1f GB/s\n",
			embCache>>20, coldBW/1e9)
	}
	if churn {
		runChurn(dc)
		return
	}
	if tune {
		var rep *core.AutotuneReport
		dc, rep = core.AutotuneDistConfig(dc, core.AutotuneOpts{})
		fmt.Printf("autotuned schedule: %s (%+.1f%% vs default, %d probes over %d candidates)\n",
			rep.Schedule, (rep.TunedSeconds/rep.BaselineSeconds-1)*100, rep.Probes, rep.Candidates)
	}
	res, err := dc.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual time per iteration: %.2f ms\n", res.IterSeconds*1e3)
	fmt.Printf("  compute: %.2f ms\n", res.ComputePerIter*1e3)
	if l := res.PrepPerIter["loader"]; l > 0 { // serial charge (sync schedule only)
		fmt.Printf("  loader: %.2f ms\n", l*1e3)
	}
	// Per-label exposed-vs-busy split: "ar-top"/"ar-bot" under the bucketed
	// default, "allreduce" under the flat schedules, "loader" when the
	// prefetch stream carries the read.
	for _, e := range res.Exposures() {
		fmt.Printf("  %s: busy %.2f ms, exposed %.2f ms (%.0f%% hidden)\n",
			e.Label, e.Busy*1e3, e.Exposed*1e3, e.HiddenShare()*100)
	}
}

// runChurn is the -churn demo: kill a rank halfway through the run and let
// the elastic driver recover — detect, restore from the newest durable
// shard checkpoint, replay, continue at R-1 ranks.
func runChurn(dc core.DistConfig) {
	every := dc.Iters / 5
	if every < 1 {
		every = 1
	}
	failAt := dc.Iters / 2
	if failAt < 1 {
		failAt = 1
	}
	ec := core.ElasticConfig{
		Base: dc,
		Plan: &cluster.FaultPlan{Events: []cluster.FaultEvent{
			{Kind: cluster.RankFail, Iter: failAt, Rank: dc.Ranks / 2},
		}},
		CheckpointEvery: every,
	}
	fmt.Printf("churn: checkpoint every %d iters; rank %d fails after iter %d\n",
		every, dc.Ranks/2, failAt-1)
	res, err := core.RunElastic(ec)
	if err != nil {
		log.Fatal(err)
	}
	for _, seg := range res.Segments {
		fmt.Printf("  segment @%d: %d iters on %d ranks, %.2f virtual-ms/iter (%s)\n",
			seg.StartIter, seg.Iters, seg.Ranks, seg.Res.IterSeconds*1e3, seg.Schedule)
	}
	for _, rec := range res.Recoveries {
		fmt.Printf("  %s at iter %d: %d->%d ranks, restored from ckpt %d, replayed %d iters\n",
			rec.Kind, rec.Iter, rec.OldRanks, rec.NewRanks, rec.CkptIter, rec.ReplayIters)
		fmt.Printf("    time-to-recover %.2f ms (detect %.2f + restore %.2f + replay %.2f)\n",
			rec.TimeToRecover()*1e3, rec.DetectSeconds*1e3, rec.RestoreSeconds*1e3, rec.ReplaySeconds*1e3)
	}
	fmt.Printf("effective virtual time per iteration under churn: %.2f ms (%.1f%% overhead)\n",
		res.EffectiveIterSeconds()*1e3, res.OverheadSeconds/res.TotalSeconds*100)
}

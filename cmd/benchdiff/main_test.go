package main

import (
	"os"
	"path/filepath"
	"testing"
)

func mkReport(entries ...benchEntry) *benchReport {
	return &benchReport{Date: "t", GoVersion: "go", Benchmarks: entries}
}

func verdicts(rs []result) map[string]string {
	m := map[string]string{}
	for _, r := range rs {
		m[r.name] = r.verdict
	}
	return m
}

// TestSyntheticSlowdownFails is the acceptance check for the gate: a 2×
// wall-time slowdown in a virtual-time-stable case must fail the diff.
func TestSyntheticSlowdownFails(t *testing.T) {
	old := mkReport(
		benchEntry{Name: "Fig7RaceFreeStep", NsPerOp: 1000},
		benchEntry{Name: "Fig9Strong64R", NsPerOp: 5000, Metrics: map[string]float64{virtualMetric: 447.3}},
	)
	fresh := mkReport(
		benchEntry{Name: "Fig7RaceFreeStep", NsPerOp: 2000}, // 2x slowdown
		benchEntry{Name: "Fig9Strong64R", NsPerOp: 10000, Metrics: map[string]float64{virtualMetric: 447.3}},
	)
	v := verdicts(compare(old, fresh, 0.25, 0.05, nil))
	if v["Fig7RaceFreeStep"] != "fail" {
		t.Errorf("kernel 2x slowdown: verdict %q want fail", v["Fig7RaceFreeStep"])
	}
	if v["Fig9Strong64R"] != "fail" {
		t.Errorf("dist 2x slowdown with stable virtual time: verdict %q want fail", v["Fig9Strong64R"])
	}
}

// TestVirtualDriftSkipsWallGate: when the modeled iteration time moved, the
// workload changed, so wall time is not comparable and must be skipped —
// not failed, not silently passed.
func TestVirtualDriftSkipsWallGate(t *testing.T) {
	old := mkReport(benchEntry{Name: "Fig12Weak64R", NsPerOp: 5000,
		Metrics: map[string]float64{virtualMetric: 615.5}})
	fresh := mkReport(benchEntry{Name: "Fig12Weak64R", NsPerOp: 20000,
		Metrics: map[string]float64{virtualMetric: 900.0}})
	v := verdicts(compare(old, fresh, 0.25, 0.05, nil))
	if v["Fig12Weak64R"] != "skip" {
		t.Errorf("virtual drift: verdict %q want skip", v["Fig12Weak64R"])
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	old := mkReport(benchEntry{Name: "Fig16FP32Step", NsPerOp: 1000})
	fresh := mkReport(benchEntry{Name: "Fig16FP32Step", NsPerOp: 1200}) // +20% < 25%
	v := verdicts(compare(old, fresh, 0.25, 0.05, nil))
	if v["Fig16FP32Step"] != "ok" {
		t.Errorf("+20%% within threshold: verdict %q want ok", v["Fig16FP32Step"])
	}
}

func TestNewBenchmarkIsNotGated(t *testing.T) {
	old := mkReport(benchEntry{Name: "A", NsPerOp: 1})
	fresh := mkReport(benchEntry{Name: "A", NsPerOp: 1}, benchEntry{Name: "B", NsPerOp: 999999})
	v := verdicts(compare(old, fresh, 0.25, 0.05, nil))
	if v["B"] != "new" {
		t.Errorf("unknown benchmark: verdict %q want new", v["B"])
	}
}

func TestAllocRegressionFails(t *testing.T) {
	old := mkReport(benchEntry{Name: "Fig7RaceFreeStep", NsPerOp: 1000, AllocsPerOp: 0})
	fresh := mkReport(benchEntry{Name: "Fig7RaceFreeStep", NsPerOp: 1000, AllocsPerOp: 7})
	v := verdicts(compare(old, fresh, 0.25, 0.05, nil))
	if v["Fig7RaceFreeStep"] != "fail" {
		t.Errorf("alloc 0→7: verdict %q want fail", v["Fig7RaceFreeStep"])
	}
}

func TestLatestBaselinePicksNewestDate(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-07-27.json", "BENCH_2026-07-27-pr2.json", "BENCH_2026-01-01.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBaseline(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-07-27-pr2.json" {
		t.Errorf("latest baseline %s, want BENCH_2026-07-27-pr2.json", got)
	}
	if _, err := latestBaseline(t.TempDir(), ""); err == nil {
		t.Error("empty dir must error")
	}
	// A fresh report written into the baseline directory (scripts/bench.sh)
	// must never be picked as its own baseline.
	got, err = latestBaseline(dir, filepath.Join(dir, "BENCH_2026-07-27-pr2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-07-27.json" {
		t.Errorf("self-excluding baseline %s, want BENCH_2026-07-27.json", got)
	}
}

// TestAllocRegressionFailsEvenUnderDrift: the zero-alloc invariant is
// host- and workload-independent, so a 0→N regression must fail even when
// the virtual metric drifted (which only skips the wall gate).
func TestAllocRegressionFailsEvenUnderDrift(t *testing.T) {
	old := mkReport(benchEntry{Name: "Fig12Weak64R", NsPerOp: 5000, AllocsPerOp: 0,
		Metrics: map[string]float64{virtualMetric: 615.5}})
	fresh := mkReport(benchEntry{Name: "Fig12Weak64R", NsPerOp: 5000, AllocsPerOp: 9,
		Metrics: map[string]float64{virtualMetric: 900.0}})
	v := verdicts(compare(old, fresh, 0.25, 0.05, nil))
	if v["Fig12Weak64R"] != "fail" {
		t.Errorf("alloc regression under virtual drift: verdict %q want fail", v["Fig12Weak64R"])
	}
}

// TestHostShapeMismatchSkipsWallGate: wall times recorded on different
// machine shapes are not comparable; allocs stay enforced.
func TestHostShapeMismatchSkipsWallGate(t *testing.T) {
	old := mkReport(benchEntry{Name: "Fig7RaceFreeStep", NsPerOp: 1000})
	old.GOMAXPROCS, old.GOARCH = 1, "amd64"
	fresh := mkReport(benchEntry{Name: "Fig7RaceFreeStep", NsPerOp: 5000})
	fresh.GOMAXPROCS, fresh.GOARCH = 4, "amd64"
	v := verdicts(compare(old, fresh, 0.25, 0.05, nil))
	if v["Fig7RaceFreeStep"] != "skip" {
		t.Errorf("cross-host wall diff: verdict %q want skip", v["Fig7RaceFreeStep"])
	}
	fresh.Benchmarks[0].AllocsPerOp = 3
	v = verdicts(compare(old, fresh, 0.25, 0.05, nil))
	if v["Fig7RaceFreeStep"] != "fail" {
		t.Errorf("cross-host alloc regression: verdict %q want fail", v["Fig7RaceFreeStep"])
	}
}

// TestMissingBenchmarkFails: coverage silently lost from the fresh report
// must surface as a failure, not vanish.
func TestMissingBenchmarkFails(t *testing.T) {
	old := mkReport(benchEntry{Name: "A", NsPerOp: 1}, benchEntry{Name: "B", NsPerOp: 1})
	fresh := mkReport(benchEntry{Name: "A", NsPerOp: 1})
	v := verdicts(compare(old, fresh, 0.25, 0.05, nil))
	if v["B"] != "fail" {
		t.Errorf("benchmark gone from fresh report: verdict %q want fail", v["B"])
	}
}

// TestRenamedCaseIsSupersededNotLost: a baseline case with a -renamed
// mapping whose new name appears in the fresh report is a deliberate
// rename — skip, not lost coverage. The mapping must not shadow a genuine
// loss: if the new name is missing too, the gate still fails.
func TestRenamedCaseIsSupersededNotLost(t *testing.T) {
	old := mkReport(
		benchEntry{Name: "Fig9Strong64RBucketed", NsPerOp: 1},
		benchEntry{Name: "Other", NsPerOp: 1},
	)
	fresh := mkReport(
		benchEntry{Name: "Fig9Strong64R", NsPerOp: 1},
		benchEntry{Name: "Other", NsPerOp: 1},
	)
	ren := map[string]string{"Fig9Strong64RBucketed": "Fig9Strong64R"}
	v := verdicts(compare(old, fresh, 0.25, 0.05, ren))
	if v["Fig9Strong64RBucketed"] != "skip" {
		t.Errorf("renamed case with present target: verdict %q want skip", v["Fig9Strong64RBucketed"])
	}
	if v["Fig9Strong64R"] != "new" {
		t.Errorf("rename target without its own baseline: verdict %q want new", v["Fig9Strong64R"])
	}

	gone := mkReport(benchEntry{Name: "Other", NsPerOp: 1})
	v = verdicts(compare(old, gone, 0.25, 0.05, ren))
	if v["Fig9Strong64RBucketed"] != "fail" {
		t.Errorf("renamed case with missing target: verdict %q want fail", v["Fig9Strong64RBucketed"])
	}
}

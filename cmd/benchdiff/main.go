// Command benchdiff is the bench-regression gate: it compares a fresh
// `dlrmbench -benchjson` report against a committed baseline BENCH_*.json
// and fails (exit 1) when any benchmark's wall time regresses beyond the
// threshold.
//
// The simulated-cluster benchmarks carry a virtual-ms/iter metric — the
// modeled iteration time, which only moves when the *model* changes. A case
// whose virtual time drifted is measuring a different workload, so its wall
// time is not comparable and the gate skips it with a note; wall-time
// regressions are enforced only for virtual-time-stable cases (and for
// pure-kernel benchmarks, which have no virtual metric). Allocation-count
// growth in a zero-alloc case is reported as a failure too — allocs_per_op
// is deterministic, so any increase is a real regression.
//
// Usage:
//
//	benchdiff -new bench-pr.json                 # baseline = newest BENCH_*.json in the repo
//	benchdiff -old BENCH_2026-07-27-pr2.json -new bench-pr.json -threshold 25
//	benchdiff -new bench-pr.json -renamed OldCase=NewCase,OldCase2=NewCase2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchEntry mirrors the dlrmbench -benchjson record.
type benchEntry struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	GOARCH     string       `json:"goarch"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

const virtualMetric = "virtual-ms/iter"

// result is one benchmark's comparison verdict.
type result struct {
	name    string
	verdict string // "ok", "fail", "skip", "new"
	detail  string
}

// compare evaluates new against old: wallTol and virtTol are fractional
// (0.25 = 25%). Wall times are only comparable when both reports come from
// the same machine shape, so a GOARCH or GOMAXPROCS mismatch skips the
// wall gate (allocation counts are deterministic and stay enforced).
// renamed maps baseline case names to the fresh-report names that supersede
// them (-renamed old=new): a mapped baseline case missing from the fresh
// report is a deliberate rename, not lost coverage, as long as its
// replacement actually appears on the fresh side.
func compare(old, fresh *benchReport, wallTol, virtTol float64, renamed map[string]string) []result {
	baseline := map[string]benchEntry{}
	for _, b := range old.Benchmarks {
		baseline[b.Name] = b
	}
	freshNames := map[string]bool{}
	for _, b := range fresh.Benchmarks {
		freshNames[b.Name] = true
	}
	sameHost := old.GOARCH == fresh.GOARCH && old.GOMAXPROCS == fresh.GOMAXPROCS
	var out []result
	for _, b := range fresh.Benchmarks {
		prev, ok := baseline[b.Name]
		if !ok {
			out = append(out, result{b.Name, "new", "no baseline entry"})
			continue
		}
		delete(baseline, b.Name)
		// The zero-allocation invariant holds for any workload shape on any
		// host, so it is checked before every comparability skip.
		if prev.AllocsPerOp == 0 && b.AllocsPerOp > 0 {
			out = append(out, result{b.Name, "fail",
				fmt.Sprintf("allocs/op regressed 0 → %d (zero-allocation invariant broken)", b.AllocsPerOp)})
			continue
		}
		if !sameHost {
			out = append(out, result{b.Name, "skip",
				fmt.Sprintf("host shape changed (%s/%d → %s/%d): wall time not comparable, allocs still enforced",
					old.GOARCH, old.GOMAXPROCS, fresh.GOARCH, fresh.GOMAXPROCS)})
			continue
		}
		wallDelta := b.NsPerOp/prev.NsPerOp - 1
		if pv, ok := prev.Metrics[virtualMetric]; ok {
			nv, ok2 := b.Metrics[virtualMetric]
			if !ok2 {
				out = append(out, result{b.Name, "skip", "virtual metric disappeared"})
				continue
			}
			virtDelta := nv/pv - 1
			if virtDelta > virtTol || virtDelta < -virtTol {
				out = append(out, result{b.Name, "skip",
					fmt.Sprintf("virtual ms/iter moved %+.1f%% (%.1f→%.1f): workload changed, wall time not comparable",
						virtDelta*100, pv, nv)})
				continue
			}
		}
		if wallDelta > wallTol {
			out = append(out, result{b.Name, "fail",
				fmt.Sprintf("wall time regressed %+.1f%% (%.0f → %.0f ns/op, threshold %.0f%%)",
					wallDelta*100, prev.NsPerOp, b.NsPerOp, wallTol*100)})
			continue
		}
		out = append(out, result{b.Name, "ok", fmt.Sprintf("wall %+.1f%%", wallDelta*100)})
	}
	// Baseline cases absent from the fresh report mean the gate silently
	// lost coverage — fail them so a rename/removal ships with an updated
	// committed baseline.
	for _, prev := range old.Benchmarks {
		if _, lost := baseline[prev.Name]; !lost {
			continue
		}
		if to, ok := renamed[prev.Name]; ok {
			if freshNames[to] {
				out = append(out, result{prev.Name, "skip",
					fmt.Sprintf("superseded by %s (renamed)", to)})
				continue
			}
			out = append(out, result{prev.Name, "fail",
				fmt.Sprintf("renamed to %s, but that case is missing from the fresh report too", to)})
			continue
		}
		out = append(out, result{prev.Name, "fail",
			"present in baseline but missing from fresh report (commit an updated BENCH_*.json if removed intentionally)"})
	}
	return out
}

// baselineKey orders committed baselines named BENCH_<date>[-prN].json:
// primarily by date, then by PR number (a bare date is PR 0, so a same-day
// -prN file is newer — plain lexical order would get that backwards, since
// '-' sorts before '.').
var baselineRe = regexp.MustCompile(`^BENCH_(\d{4}-\d{2}-\d{2})(?:-pr(\d+))?\.json$`)

func baselineKey(path string) (date string, pr int) {
	m := baselineRe.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return filepath.Base(path), 0
	}
	pr, _ = strconv.Atoi(m[2])
	return m[1], pr
}

// latestBaseline returns the newest committed BENCH_*.json by (date, PR),
// skipping exclude (the fresh report itself, when it was written into the
// baseline directory — scripts/bench.sh does exactly that, and a report
// must never gate against itself).
func latestBaseline(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if exclude != "" {
		if abs, err := filepath.Abs(exclude); err == nil {
			kept := matches[:0]
			for _, m := range matches {
				if am, err := filepath.Abs(m); err == nil && am == abs {
					continue
				}
				kept = append(kept, m)
			}
			matches = kept
		}
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline found in %s", dir)
	}
	sort.Slice(matches, func(i, j int) bool {
		di, pi := baselineKey(matches[i])
		dj, pj := baselineKey(matches[j])
		if di != dj {
			return di < dj
		}
		return pi < pj
	})
	return matches[len(matches)-1], nil
}

func load(path string) (*benchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &benchReport{}
	if err := json.Unmarshal(raw, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return r, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline report (default: newest BENCH_*.json in -dir)")
	newPath := flag.String("new", "", "fresh report to gate (required)")
	dir := flag.String("dir", ".", "directory holding the committed baselines")
	threshold := flag.Float64("threshold", 25, "max wall-time regression in percent")
	virtTol := flag.Float64("virtual-tol", 5, "virtual ms/iter drift in percent beyond which a case is skipped")
	filter := flag.String("filter", "", "only compare cases matching this regexp on BOTH sides (for partial reports, e.g. scripts/bench.sh -quick)")
	renamedFlag := flag.String("renamed", "", "comma-separated old=new case renames: a mapped baseline case missing from the fresh report is skipped as superseded (not failed) when its new name is present")
	flag.Parse()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	renamed := map[string]string{}
	if *renamedFlag != "" {
		for _, pair := range strings.Split(*renamedFlag, ",") {
			from, to, ok := strings.Cut(pair, "=")
			if !ok || from == "" || to == "" {
				fmt.Fprintf(os.Stderr, "benchdiff: bad -renamed entry %q (want old=new)\n", pair)
				os.Exit(2)
			}
			renamed[from] = to
		}
	}
	if *oldPath == "" {
		p, err := latestBaseline(*dir, *newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		*oldPath = p
	}
	old, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	if *filter != "" {
		// A filtered comparison trims BOTH reports, so a deliberately
		// partial fresh report (quick mode) is not flagged as lost
		// baseline coverage.
		re, err := regexp.Compile(*filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: bad -filter: %v\n", err)
			os.Exit(2)
		}
		keep := func(in []benchEntry) []benchEntry {
			var out []benchEntry
			for _, b := range in {
				if re.MatchString(b.Name) {
					out = append(out, b)
				}
			}
			return out
		}
		old.Benchmarks = keep(old.Benchmarks)
		fresh.Benchmarks = keep(fresh.Benchmarks)
		if len(fresh.Benchmarks) == 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: -filter %q matches no cases in %s\n", *filter, *newPath)
			os.Exit(2)
		}
	}

	fmt.Printf("baseline %s (%s, %s)\n", *oldPath, old.Date, old.GoVersion)
	fmt.Printf("fresh    %s (%s, %s)\n\n", *newPath, fresh.Date, fresh.GoVersion)
	results := compare(old, fresh, *threshold/100, *virtTol/100, renamed)
	failed := 0
	for _, r := range results {
		mark := map[string]string{"ok": "  ok ", "fail": " FAIL", "skip": " skip", "new": "  new"}[r.verdict]
		fmt.Printf("%s  %-28s %s\n", mark, r.name, r.detail)
		if r.verdict == "fail" {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d benchmark(s) regressed beyond %.0f%%\n", failed, *threshold)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: no wall-time regressions beyond %.0f%%\n", *threshold)
}
